//! Quickstart: boot a HarDTAPE device, attest, and pre-execute a small
//! transaction bundle with every protection enabled.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hardtape::{Bundle, HarDTape, SecurityConfig, ServiceConfig};
use tape_evm::{Env, Transaction};
use tape_primitives::{Address, U256};
use tape_sim::format_ns;
use tape_state::{Account, InMemoryState};
use tape_workload::contracts;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. A world state: one user, one ERC-20 token -------------------
    let user_addr = Address::from_low_u64(0xA11CE);
    let friend = Address::from_low_u64(0xB0B);
    let token = Address::from_low_u64(0x70CE);

    let mut genesis = InMemoryState::new();
    genesis.put_account(user_addr, Account::with_balance(U256::from(u64::MAX)));
    let mut t = Account::with_code(contracts::erc20_runtime());
    t.storage.insert(contracts::balance_slot(&user_addr), U256::from(1_000_000u64));
    genesis.put_account(token, t);

    // --- 2. Boot the device at the -full security level ------------------
    // (secure boot, attestation keys, ORAM built from the genesis state)
    let config = ServiceConfig { oram_height: 12, ..ServiceConfig::at_level(SecurityConfig::Full) };
    let mut device = HarDTape::new(config, Env::default(), &genesis).expect("device boots");
    println!("device booted at {} security", device.security());

    // --- 3. Remote attestation + DHKE secure channel ---------------------
    let mut session = device.connect_user(b"quickstart user seed")?;
    println!("attestation verified; session {} established", session.session);

    // --- 4. Pre-execute a bundle: ETH transfer + ERC-20 transfer ---------
    let bundle = Bundle {
        transactions: vec![
            Transaction::transfer(user_addr, friend, U256::from(1_000u64)),
            Transaction {
                gas_limit: 300_000,
                ..Transaction::call(
                    user_addr,
                    token,
                    contracts::encode_call(
                        contracts::sel::transfer(),
                        &[friend.into_word(), U256::from(2_500u64)],
                    ),
                )
            },
        ],
    };
    let report = device.pre_execute(&mut session, &bundle)?;

    // --- 5. The trace the user receives ----------------------------------
    println!("\nbundle report:");
    for (i, (result, ns)) in report.results.iter().zip(&report.per_tx_ns).enumerate() {
        println!(
            "  tx {i}: success={} gas={} logs={} time={}",
            result.success,
            result.gas_used,
            result.logs.len(),
            format_ns(*ns),
        );
    }
    println!("  storage modifications: {}", report.changes.storage.len());
    println!("  balance changes:       {}", report.changes.balances.len());
    println!("  device signature:      {}", report.signature.is_some());
    println!("  end-to-end:            {}", format_ns(report.total_ns));

    // The world state itself is untouched: pre-execution is a simulation.
    use tape_state::StateReader;
    assert_eq!(genesis.account(&friend), None);
    println!("\non-chain state untouched: pre-execution discards all modifications");
    Ok(())
}
