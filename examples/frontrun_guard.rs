//! The paper's motivating attack (§I-A): a dishonest SP watches an HFT
//! user's pre-execution queries to learn *which token* they are about to
//! trade, then front-runs them on-chain.
//!
//! This example pre-executes two different trading intentions — swapping
//! token A vs swapping token B — and prints everything the SP can
//! observe at the ORAM server: a sequence of uniformly random leaves and
//! fixed-size ciphertexts. The two intentions are statistically
//! indistinguishable, so the MEV opportunity is gone.
//!
//! ```sh
//! cargo run --release --example frontrun_guard
//! ```

use hardtape::{Bundle, HarDTape, SecurityConfig, ServiceConfig};
use tape_evm::{Env, Transaction};
use tape_oram::ObservedAccess;
use tape_primitives::{Address, U256};
use tape_state::{Account, InMemoryState};
use tape_workload::contracts;

fn build_world(user: Address) -> (InMemoryState, Address, Address, Address) {
    let token_a = Address::from_low_u64(0xAAAA);
    let token_b = Address::from_low_u64(0xBBBB);
    let router = Address::from_low_u64(0xDE);

    let mut genesis = InMemoryState::new();
    genesis.put_account(user, Account::with_balance(U256::from(u64::MAX)));
    for token in [token_a, token_b] {
        let mut t = Account::with_code(contracts::erc20_runtime());
        t.storage.insert(contracts::balance_slot(&user), U256::from(1_000_000u64));
        t.storage.insert(contracts::balance_slot(&router), U256::from(1_000_000u64));
        t.storage.insert(contracts::allowance_slot(&user, &router), U256::from(u64::MAX));
        genesis.put_account(token, t);
    }
    let mut r = Account::with_code(contracts::router_runtime());
    r.storage.insert(U256::ZERO, U256::from(1_000_000u64));
    r.storage.insert(U256::ONE, U256::from(1_000_000u64));
    genesis.put_account(router, r);
    (genesis, token_a, token_b, router)
}

/// Pre-executes a swap of `token_in` and returns what the SP observed.
fn observe_intention(
    user: Address,
    genesis: &InMemoryState,
    router: Address,
    token_in: Address,
    token_out: Address,
    seed: u64,
) -> Vec<ObservedAccess> {
    let config = ServiceConfig {
        oram_height: 12,
        seed,
        ..ServiceConfig::at_level(SecurityConfig::Full)
    };
    let mut device = HarDTape::new(config, Env::default(), genesis).expect("device boots");
    let mut session = device.connect_user(b"hft user").expect("attestation");

    let before = device.oram_stats().expect("full config").total();
    let swap = Transaction {
        gas_limit: 600_000,
        ..Transaction::call(
            user,
            router,
            contracts::encode_call(
                contracts::sel::swap(),
                &[token_in.into_word(), token_out.into_word(), U256::from(500u64)],
            ),
        )
    };
    device
        .pre_execute(&mut session, &Bundle::single(swap))
        .expect("bundle accepted");
    let after = device.oram_stats().expect("full config").total();
    println!("  ORAM queries during the bundle: {}", after - before);

    // Everything the SP sees: (time, leaf) pairs on the ORAM wire.
    device.observed_oram_accesses()
}

fn summarize(label: &str, accesses: &[ObservedAccess]) -> (f64, usize) {
    let leaves: Vec<u64> = accesses.iter().map(|a| a.leaf).collect();
    let mean = leaves.iter().sum::<u64>() as f64 / leaves.len().max(1) as f64;
    println!(
        "  {label}: {} accesses, leaf mean {:.1} (uniform expectation {:.1})",
        leaves.len(),
        mean,
        ((1u64 << 12) - 1) as f64 / 2.0
    );
    (mean, leaves.len())
}

fn main() {
    let user = Address::from_low_u64(0xA11CE);
    let (genesis, token_a, token_b, router) = build_world(user);

    println!("intention 1: swap 500 of token A -> B");
    let view_a = observe_intention(user, &genesis, router, token_a, token_b, 42);
    println!("intention 2: swap 500 of token B -> A");
    let view_b = observe_intention(user, &genesis, router, token_b, token_a, 43);

    println!("\nthe SP's complete view of each intention:");
    let (mean_a, n_a) = summarize("intention 1", &view_a);
    let (mean_b, n_b) = summarize("intention 2", &view_b);

    let uniform = ((1u64 << 12) - 1) as f64 / 2.0;
    let indistinguishable =
        n_a == n_b && (mean_a - uniform).abs() < uniform * 0.2 && (mean_b - uniform).abs() < uniform * 0.2;
    println!(
        "\nverdict: the two intentions are {} — the SP cannot tell which token the user will trade",
        if indistinguishable { "INDISTINGUISHABLE" } else { "DISTINGUISHABLE (!)"}
    );
    if !indistinguishable {
        std::process::exit(1);
    }
}
