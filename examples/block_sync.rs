//! Block synchronization (paper Fig. 3 step 11 and §IV-C): the untrusted
//! Node produces blocks; HarDTAPE verifies the Merkle-proof-carrying
//! state deltas against the block headers before admitting them into the
//! ORAM — and rejects a forged delta outright.
//!
//! ```sh
//! cargo run --release --example block_sync
//! ```

use hardtape::{Bundle, HarDTape, SecurityConfig, ServiceConfig, ServiceError};
use tape_evm::{Env, Transaction};
use tape_node::Node;
use tape_primitives::{Address, U256};
use tape_state::{Account, InMemoryState};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let whale = Address::from_low_u64(0x3A1E);
    let exchange = Address::from_low_u64(0xE0C);

    let mut genesis = InMemoryState::new();
    genesis.put_account(whale, Account::with_balance(U256::from(u64::MAX)));

    // The SP runs an ordinary full node...
    let mut node = Node::new(genesis.clone(), Env::default());
    // ...and a HarDTAPE device synchronized from the same genesis.
    let config = ServiceConfig { oram_height: 12, ..ServiceConfig::at_level(SecurityConfig::Full) };
    let mut device = HarDTape::new(config, Env::default(), &genesis).expect("device boots");
    let mut session = device.connect_user(b"sync watcher")?;

    // Three blocks land on-chain.
    for i in 1..=3u64 {
        let block = node.produce_block(vec![Transaction::transfer(
            whale,
            exchange,
            U256::from(i * 1_000_000u64),
        )]);
        let header = block.header.clone();
        let delta = node.head_state_delta().expect("head delta");
        println!(
            "block #{}: {} accounts in delta, state root {}",
            header.number,
            delta.accounts.len(),
            header.state_root
        );
        device.sync_block(&header, &delta)?;
        println!("  proofs verified; synchronized into the ORAM");
    }

    // Pre-execution runs against the synchronized head state: the
    // exchange's accumulated balance is visible.
    let mut probe = Transaction::transfer(exchange, whale, U256::from(6_000_000u64));
    probe.gas_price = U256::ZERO; // the exchange holds exactly the synced 6M wei
    let report = device.pre_execute(&mut session, &Bundle::single(probe))?;
    println!(
        "\npre-execution against the synced head: exchange can send 6,000,000 wei -> success={}",
        report.results[0].success
    );
    assert!(report.results[0].success);

    // A dishonest node forges the next delta (A6).
    node.produce_block(vec![Transaction::transfer(whale, exchange, U256::ONE)]);
    let header = node.head().expect("head").header.clone();
    let mut forged = node.head_state_delta().expect("delta");
    forged
        .accounts
        .iter_mut()
        .find(|a| a.address == exchange)
        .expect("exchange touched")
        .account
        .balance = U256::MAX;
    match device.sync_block(&header, &forged) {
        Err(ServiceError::BadDelta(e)) => {
            println!("\nforged delta rejected before touching the ORAM: {e}")
        }
        other => panic!("forgery accepted?! {other:?}"),
    }

    // The honest delta still applies.
    let honest = node.head_state_delta().expect("delta");
    device.sync_block(&header, &honest)?;
    println!("honest delta for the same block accepted");
    Ok(())
}
