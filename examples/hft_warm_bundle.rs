//! The paper's "practical case" (§VI-C, local execution performance):
//! an HFT designer repeatedly tests strategies against the *same*
//! contract and storage records. After the first access, everything is
//! found in the on-chip caches — no ORAM traffic, no security overhead —
//! so HarDTAPE performs like TSC-VEE despite supporting the full world
//! state.
//!
//! ```sh
//! cargo run --release --example hft_warm_bundle
//! ```

use hardtape::{Bundle, HarDTape, SecurityConfig, ServiceConfig};
use tape_evm::{Env, Transaction};
use tape_primitives::{Address, U256};
use tape_sim::format_ns;
use tape_state::{Account, InMemoryState};
use tape_workload::contracts;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trader = Address::from_low_u64(0xA11CE);
    let counterparty = Address::from_low_u64(0xB0B);
    let token = Address::from_low_u64(0x70CE);

    let mut genesis = InMemoryState::new();
    genesis.put_account(trader, Account::with_balance(U256::from(u64::MAX)));
    let mut t = Account::with_code(contracts::erc20_runtime());
    t.storage.insert(contracts::balance_slot(&trader), U256::from(10_000_000u64));
    genesis.put_account(token, t);

    let config = ServiceConfig { oram_height: 12, ..ServiceConfig::at_level(SecurityConfig::Full) };
    let mut device = HarDTape::new(config, Env::default(), &genesis).expect("device boots");
    let mut session = device.connect_user(b"hft warm user")?;

    // The strategy under test: a 10-transfer bundle against one token.
    let strategy = Bundle {
        transactions: (0..10)
            .map(|i| Transaction {
                gas_limit: 300_000,
                ..Transaction::call(
                    trader,
                    token,
                    contracts::encode_call(
                        contracts::sel::transfer(),
                        &[counterparty.into_word(), U256::from(100 + i as u64)],
                    ),
                )
            })
            .collect(),
    };

    let queries_before = device.oram_stats().expect("full config").total();
    let report = device.pre_execute(&mut session, &strategy)?;
    let queries = device.oram_stats().expect("full config").total() - queries_before;

    println!("strategy bundle: 10 ERC-20 transfers against one token\n");
    println!("per-transaction time (first tx pays the ORAM fetches, the rest hit on-chip caches):");
    for (i, ns) in report.per_tx_ns.iter().enumerate() {
        let bar = "#".repeat((ns / 400_000).max(1) as usize);
        println!("  tx {i}: {:>12}  {bar}", format_ns(*ns));
    }

    let first = report.per_tx_ns[0];
    let warm_mean: u64 =
        report.per_tx_ns[1..].iter().sum::<u64>() / (report.per_tx_ns.len() - 1) as u64;
    println!("\n  cold first tx:   {}", format_ns(first));
    println!("  warm mean (2-10): {}", format_ns(warm_mean));
    println!("  ORAM queries for the whole bundle: {queries}");
    println!(
        "\nwarm transactions run {:.1}x faster — the §VI-C local-execution case",
        first as f64 / warm_mean as f64
    );
    assert!(first > warm_mean * 2, "expected a pronounced cold/warm split");
    Ok(())
}
