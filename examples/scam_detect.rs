//! The paper's opening motivation (§I): scam contracts — phishing,
//! Ponzi schemes, honeypots — defraud users who cannot quantify the risk
//! of a transaction before sending it. Pre-execution simulates the whole
//! bundle first, exposing the malicious behavior in the trace.
//!
//! Here a honeypot token accepts deposits from anyone but silently
//! reverts withdrawals for everyone except its owner. The victim
//! pre-executes a deposit + withdraw bundle and sees the withdrawal fail
//! *before* risking funds on-chain.
//!
//! ```sh
//! cargo run --release --example scam_detect
//! ```

use hardtape::{Bundle, HarDTape, SecurityConfig, ServiceConfig};
use tape_evm::asm::Asm;
use tape_evm::opcode::op;
use tape_evm::{Env, Transaction};
use tape_primitives::{Address, U256};
use tape_state::{Account, InMemoryState};
use tape_workload::contracts::selector;

/// The honeypot: `deposit()` credits slot[caller]; `withdraw()` pays out
/// only when `caller == owner` (slot 0) — and otherwise reverts deep in
/// the payout path, invisible without simulating it.
fn honeypot_runtime(owner: Address) -> Vec<u8> {
    let deposit = selector("deposit()") as u64;
    let withdraw = selector("withdraw()") as u64;
    Asm::new()
        .push(0u64)
        .op(op::CALLDATALOAD)
        .push(224u64)
        .op(op::SHR)
        .op(op::DUP1)
        .push(deposit)
        .op(op::EQ)
        .jumpi("deposit")
        .op(op::DUP1)
        .push(withdraw)
        .op(op::EQ)
        .jumpi("withdraw")
        .jump("reject")
        // deposit(): balances[caller] += callvalue
        .label("deposit")
        .op(op::POP)
        .op(op::CALLER)
        .op(op::SLOAD) // slot keyed directly by caller address
        .op(op::CALLVALUE)
        .op(op::ADD)
        .op(op::CALLER)
        .op(op::SSTORE)
        .push(1u64)
        .ret_top()
        // withdraw(): the trap — only the owner passes the hidden check.
        .label("withdraw")
        .op(op::POP)
        .op(op::CALLER)
        .push_address(owner)
        .op(op::EQ)
        .jumpi("payout")
        .jump("reject") // everyone else reverts: the honeypot
        .label("payout")
        .op(op::CALLER)
        .op(op::SLOAD) // amount
        .push(0u64)
        .push(0u64)
        .push(0u64)
        .push(0u64)
        // stack: [amount, 0, 0, 0, 0] -> CALL(gas, caller, amount, ...)
        .op(op::SWAP4) // [0, 0, 0, 0, amount]
        .op(op::CALLER)
        .op(op::GAS)
        .op(op::CALL)
        .ret_top()
        .label("reject")
        .push(0u64)
        .push(0u64)
        .op(op::REVERT)
        .build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let victim = Address::from_low_u64(0x71C71);
    let scammer = Address::from_low_u64(0x5CA4);
    let honeypot = Address::from_low_u64(0x40EE);

    let mut genesis = InMemoryState::new();
    genesis.put_account(victim, Account::with_balance(U256::from(u64::MAX)));
    let mut pot = Account::with_code(honeypot_runtime(scammer));
    pot.balance = U256::from(50_000_000u64); // bait: "look, it pays out"
    genesis.put_account(honeypot, pot);

    let mut device = HarDTape::new(
        ServiceConfig { oram_height: 12, ..ServiceConfig::at_level(SecurityConfig::Full) },
        Env::default(),
        &genesis,
    ).expect("device boots");
    let mut session = device.connect_user(b"cautious victim")?;

    // The victim's plan: deposit 1,000,000 wei, then withdraw it back.
    let deposit = Transaction {
        value: U256::from(1_000_000u64),
        gas_limit: 300_000,
        ..Transaction::call(victim, honeypot, selector("deposit()").to_be_bytes().to_vec())
    };
    let withdraw = Transaction {
        gas_limit: 300_000,
        ..Transaction::call(victim, honeypot, selector("withdraw()").to_be_bytes().to_vec())
    };
    let bundle = Bundle { transactions: vec![deposit, withdraw] };

    let report = device.pre_execute(&mut session, &bundle)?;
    println!("pre-execution trace of the planned bundle:");
    println!(
        "  tx 0 deposit(1,000,000): success={} gas={}",
        report.results[0].success, report.results[0].gas_used
    );
    println!(
        "  tx 1 withdraw():         success={} gas={}",
        report.results[1].success, report.results[1].gas_used
    );

    assert!(report.results[0].success, "the bait works: deposits are accepted");
    assert!(!report.results[1].success, "the trap: withdrawal reverts");

    println!(
        "\nverdict: deposits enter but never come back out — HONEYPOT.\n\
         The victim walks away without ever sending funds on-chain, and\n\
         because the whole simulation ran inside the attested device over\n\
         the ORAM, the scammer's SP learned neither the victim's interest\n\
         in this contract nor the amount probed."
    );
    Ok(())
}
