use tape_evm::{Env, Evm, Transaction};
use tape_primitives::{Address, U256};
use tape_state::{Account, InMemoryState};

fn main() {
    let mut backend = InMemoryState::new();
    let alice = Address::from_low_u64(1);
    backend.put_account(alice, Account::with_balance(U256::from(10u64).wrapping_pow(U256::from(18u64))));
    let mut evm = Evm::new(Env::default(), &backend);
    let tx = Transaction::transfer(alice, Address::from_low_u64(2), U256::from(1_000u64));
    let result = evm.transact(&tx).unwrap();
    println!("{result:?}");
}
