//! Fleet-level tests: multiple HarDTAPE devices serving users in
//! parallel (the §VI-D deployment: one device per ~18 tx/s, scaled
//! horizontally), ORAM-key sharing between trusted Hypervisors,
//! end-to-end trace-signature verification by the user, and the
//! [`FleetRouter`] fault-tolerance contract:
//!
//! * rendezvous-sharded tenants survive the loss of 1 of K devices via
//!   live migration (re-attestation on a survivor through the fleet
//!   ORAM-key escrow, queued bundles resubmitted under their original
//!   fleet tickets);
//! * in-flight paused work on a crashed device — whose `BundlePause`
//!   is not `Clone` by construction — is shed with exactly one typed
//!   `DeviceFailed` completion, never silently dropped or doubled;
//! * all surviving devices sync from one `FeedSet` and converge on the
//!   same adopted head, through a mid-soak reorg;
//! * the whole fleet schedule is deterministic per seed — the
//!   `FLEET_DIGEST` line below is compared across processes by
//!   `scripts/verify.sh --soak` (seed override: `HARDTAPE_SOAK_SEED`).

use std::collections::{BTreeMap, BTreeSet};

use hardtape::{
    Bundle, Gateway, GatewayConfig, GatewayError, HarDTape, SecurityConfig, ServiceConfig,
};
use tape_evm::{Env, Transaction};
use tape_fleet::{FleetCompletion, FleetConfig, FleetError, FleetRouter, FleetStats, HealthState};
use tape_node::{BlockFeed, FeedSet, FeedSetConfig, Node};
use tape_primitives::{Address, B256, U256};
use tape_sim::fault::{FaultKind, FaultPlan, FaultSite};
use tape_sim::queue::interleave;
use tape_sim::telemetry::audit::{audit_events, AuditConfig};
use tape_sim::telemetry::CounterId;
use tape_state::{Account, InMemoryState};
use tape_tee::channel::verify_bundle;

fn genesis() -> InMemoryState {
    let mut state = InMemoryState::new();
    for i in 0..8 {
        state.put_account(
            Address::from_low_u64(0x1000 + i),
            Account::with_balance(U256::from(u64::MAX)),
        );
    }
    state
}

#[test]
fn three_devices_serve_bundles_in_parallel() {
    let genesis = genesis();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for device_id in 0..3u64 {
            let genesis = &genesis;
            handles.push(scope.spawn(move || {
                let config = ServiceConfig {
                    oram_height: 10,
                    seed: 0x1000 + device_id,
                    ..ServiceConfig::at_level(SecurityConfig::Full)
                };
                let mut device = HarDTape::new(config, Env::default(), genesis).expect("device boots");
                let mut user = device
                    .connect_user(format!("fleet user {device_id}").as_bytes())
                    .expect("attestation");
                let from = Address::from_low_u64(0x1000 + device_id);
                let to = Address::from_low_u64(0x1000 + (device_id + 1) % 8);
                let mut total = 0u64;
                for i in 0..5u64 {
                    let tx = Transaction::transfer(from, to, U256::from(i + 1));
                    let report = device
                        .pre_execute(&mut user, &Bundle::single(tx))
                        .expect("bundle accepted");
                    assert!(report.results[0].success);
                    total += report.total_ns;
                }
                total
            }));
        }
        for handle in handles {
            let total = handle.join().expect("device thread");
            assert!(total > 0);
        }
    });
}

#[test]
fn user_verifies_the_device_trace_signature() {
    let mut device = HarDTape::new(
        ServiceConfig { oram_height: 10, ..ServiceConfig::at_level(SecurityConfig::Es) },
        Env::default(),
        &genesis(),
    ).expect("device boots");
    let mut user = device.connect_user(b"verifying user").unwrap();
    let tx = Transaction::transfer(
        Address::from_low_u64(0x1000),
        Address::from_low_u64(0x1001),
        U256::ONE,
    );
    let report = device.pre_execute(&mut user, &Bundle::single(tx)).unwrap();

    // The user verifies the trace against the attested device session key.
    let signature = report.signature.expect("-ES signs traces");
    let trace = report.encode();
    verify_bundle(&user.device_key(), &trace, &signature).expect("honest trace verifies");

    // A tampered trace (SP edits the reported gas) fails verification —
    // attack "mislead the user with fake results" is detectable.
    let mut forged = report.clone();
    forged.results[0].gas_used += 1;
    assert!(verify_bundle(&user.device_key(), &forged.encode(), &signature).is_err());

    // A signature from a different session does not transfer.
    let mut other_user = device.connect_user(b"other user").unwrap();
    assert_ne!(user.device_key(), other_user.device_key());
    let _ = &mut other_user;
}

#[test]
fn oram_key_is_shared_across_the_fleet() {
    use tape_crypto::SecureRng;
    use tape_tee::attestation::{Attester, Manufacturer};
    use tape_tee::hypervisor::Hypervisor;

    let manufacturer = Manufacturer::new(b"fleet fab");
    let boot = |id: u64| {
        let mut rng = SecureRng::from_seed(&id.to_be_bytes());
        let (puf, cert) = manufacturer.provision(id, &mut rng);
        Hypervisor::boot(Attester::new(puf, cert, b"fw"), 3, rng)
    };
    let first = boot(1);
    let mut second = boot(2);
    // Distinct until the newcomer fetches the fleet key over the
    // device-to-device channel (both ends trusted Hypervisors).
    assert_ne!(first.oram_key(), second.oram_key());
    second.share_oram_key(first.oram_key());
    assert_eq!(first.oram_key(), second.oram_key());
}

// ---------------------------------------------------------------------------
// FleetRouter: fault-tolerant fleet soak and directed failover tests.
// ---------------------------------------------------------------------------

const FLEET_DEVICES: usize = 4;
const FLEET_TENANTS: usize = 1_000;
/// The device the chaos soak kills mid-run (1 of 4).
const CRASH_DEVICE: usize = 1;
const FLEET_BOMB_GAS: u64 = 2_000_000;

fn fleet_tenant_addr(i: usize) -> Address {
    Address::from_low_u64(0xA000 + i as u64)
}

fn fleet_sink_addr(i: usize) -> Address {
    Address::from_low_u64(0x2_0000 + i as u64)
}

/// The account chain blocks spend from. Deliberately *not* a tenant
/// account: pre-execution receipts must depend only on genesis + the
/// tenant's own bundle, never on how far a device has synced, so the
/// crash run's migrated receipts stay byte-comparable to the clean
/// run's regardless of sync timing.
fn chain_producer() -> Address {
    Address::from_low_u64(0xC0DE)
}

fn fleet_bomb_contract() -> Address {
    Address::from_low_u64(0x6A5B)
}

/// Genesis with one funded account per tenant, the chain producer, and
/// the gas-bomb contract (for exercising in-flight paused work).
fn fleet_genesis() -> InMemoryState {
    let mut state = InMemoryState::new();
    for i in 0..FLEET_TENANTS {
        state.put_account(fleet_tenant_addr(i), Account::with_balance(U256::from(u64::MAX)));
    }
    state.put_account(chain_producer(), Account::with_balance(U256::from(u64::MAX)));
    state.put_account(
        fleet_bomb_contract(),
        Account::with_code(tape_workload::contracts::gasbomb_runtime()),
    );
    state
}

fn fleet_transfer(tenant: usize, step: usize) -> Bundle {
    Bundle::single(Transaction::transfer(
        fleet_tenant_addr(tenant),
        fleet_sink_addr(tenant),
        U256::from(1 + step as u64),
    ))
}

/// A 2M-gas bomb from `tenant`: at a 100k gas slice it yields ~20
/// times, so at crash time its `BundlePause` checkpoint is sitting in
/// the dead device's queue.
fn fleet_bomb(tenant: usize) -> Bundle {
    let mut tx = Transaction::call(
        fleet_tenant_addr(tenant),
        fleet_bomb_contract(),
        U256::from(FLEET_BOMB_GAS / 20).to_be_bytes().to_vec(),
    );
    tx.gas_limit = FLEET_BOMB_GAS;
    Bundle::single(tx)
}

/// Three independent feeds over identical nodes; the whole fleet syncs
/// from this one set.
fn fleet_feedset() -> FeedSet {
    FeedSet::new(
        (0..3).map(|_| BlockFeed::new(Node::new(fleet_genesis(), Env::default()))).collect(),
        FeedSetConfig::default(),
    )
}

fn fleet_produce_on_all(feeds: &mut FeedSet, step: u64) {
    for i in 0..feeds.len() {
        feeds.feed_mut(i).expect("feed exists").node_mut().produce_block(vec![
            Transaction::transfer(chain_producer(), fleet_sink_addr(0), U256::from(900 + step)),
        ]);
    }
}

/// Rewinds every feed to one block and builds a heavier replacement
/// branch of `blocks` blocks, salted for per-seed variety.
fn fleet_reorg_all(feeds: &mut FeedSet, blocks: u64, salt: u64) {
    for i in 0..feeds.len() {
        let node = feeds.feed_mut(i).expect("feed exists").node_mut();
        assert!(node.revert_to(1), "every fleet chain keeps its first block");
        for s in 0..blocks {
            node.produce_block(vec![Transaction::transfer(
                chain_producer(),
                fleet_sink_addr(1),
                U256::from(700 + salt % 97 + s),
            )]);
        }
    }
}

/// A K-device fleet over `-ES` devices with a 100k gas slice (so gas
/// bombs actually pause) and effectively unbounded admission — the
/// soak stresses failover, not overload, which has its own soak.
fn fleet_router_with(devices: usize, seed: u64, config: GatewayConfig) -> FleetRouter {
    let genesis = fleet_genesis();
    let gateways = (0..devices)
        .map(|d| {
            let mut service = ServiceConfig {
                oram_height: 10,
                seed: seed ^ (0xD00D + d as u64),
                ..ServiceConfig::at_level(SecurityConfig::Es)
            };
            service.hevm.gas_slice = Some(100_000);
            Gateway::new(
                HarDTape::new(service, Env::default(), &genesis).expect("device boots"),
                config.clone(),
            )
        })
        .collect();
    FleetRouter::new(gateways, FleetConfig::default())
}

fn fleet_router(seed: u64) -> FleetRouter {
    fleet_router_with(
        FLEET_DEVICES,
        seed,
        GatewayConfig { queue_depth: 8, admission_budget: 10_000, ..GatewayConfig::default() },
    )
}

fn fleet_seed() -> u64 {
    match std::env::var("HARDTAPE_SOAK_SEED") {
        Ok(v) => v.parse().expect("HARDTAPE_SOAK_SEED must be a u64"),
        Err(_) => 0xC0FFEE,
    }
}

/// Everything one chaos run produces that the determinism and
/// crash-vs-clean comparisons need.
struct FleetRunOutcome {
    digest: String,
    head: Option<B256>,
    /// (tenant, step) → `Debug` rendering of the report's per-tx
    /// results for every OK completion. Signatures and timings
    /// legitimately differ across devices and sessions; the execution
    /// receipt must not.
    receipts: BTreeMap<(usize, usize), String>,
    /// Tenants that were homed on the crashed device (empty for a
    /// clean run).
    migrated: BTreeSet<usize>,
    /// Migrated tenants' (tenant, step) pairs that completed OK on a
    /// *surviving* device — the set whose receipts must be
    /// byte-identical to the clean run's.
    post_crash_ok: BTreeSet<(usize, usize)>,
    stats: FleetStats,
    health_transitions: u64,
    shed_device_failed: usize,
}

/// One seeded fleet chaos run: ~10³ tenants sharded over 4 devices,
/// two bundles each in a seeded interleave, periodic fleet-wide rounds
/// and quorum syncs, seeded `DeviceHang` faults, a mid-soak
/// `DeviceCrash` of 1 of 4 devices (when `crash`), and a mid-soak
/// depth reorg. Asserts the fleet exactly-once contract, head
/// convergence, and the §IV-D audit on every surviving device.
fn fleet_chaos_run(seed: u64, crash: bool) -> FleetRunOutcome {
    let mut router = fleet_router(seed);
    if crash {
        // Seeded availability adversary: sporadic hangs (watchdog
        // strikes) on top of the deterministic mid-soak crash below.
        let plan = FaultPlan::new(seed ^ 0xF1EE7, router.gateway(0).device().clock());
        plan.arm(FaultSite::Device, &[FaultKind::DeviceHang], 9, 5);
        router.arm_faults(plan);
    }

    let mut sessions = Vec::with_capacity(FLEET_TENANTS);
    let mut owner = BTreeMap::new();
    for i in 0..FLEET_TENANTS {
        let session = router
            .connect(format!("fleet tenant {i}").as_bytes())
            .expect("attestation of a fresh tenant succeeds");
        owner.insert(session, i);
        sessions.push(session);
    }

    let mut feeds = fleet_feedset();
    fleet_produce_on_all(&mut feeds, 0);
    let sync = router.sync_all(&mut feeds);
    assert!(sync.outcomes.iter().all(|(_, o)| o.is_ok()), "initial fleet sync failed");

    let counts = vec![2usize; FLEET_TENANTS];
    let order = interleave(&counts, seed);
    let crash_at = order.len() / 2;
    let reorg_at = order.len() * 3 / 4;

    let mut admitted = BTreeSet::new();
    let mut ticket_meta: BTreeMap<u64, (usize, usize)> = BTreeMap::new();
    let mut bomb_tickets = BTreeSet::new();
    let mut completions: Vec<FleetCompletion> = Vec::new();
    let mut steps = vec![0usize; FLEET_TENANTS];
    let mut migrated: BTreeSet<usize> = BTreeSet::new();
    let mut produced = 0u64;

    for (op, &tenant) in order.iter().enumerate() {
        let step = steps[tenant];
        steps[tenant] += 1;
        match router.submit(sessions[tenant], fleet_transfer(tenant, step)) {
            Ok(ticket) => {
                assert!(admitted.insert(ticket), "fleet ticket {ticket} issued twice");
                ticket_meta.insert(ticket, (tenant, step));
            }
            Err(FleetError::Gateway(GatewayError::Overloaded { retry_after })) => {
                assert!(retry_after > 0, "overload must carry a usable retry hint");
                // Shed pressure, retry once; a second rejection is
                // accepted as final (typed, not silent). Only a
                // hang-quarantined home produces this in the soak.
                completions.extend(router.run_round());
                if let Ok(ticket) = router.submit(sessions[tenant], fleet_transfer(tenant, step)) {
                    assert!(admitted.insert(ticket), "fleet ticket {ticket} issued twice");
                    ticket_meta.insert(ticket, (tenant, step));
                }
            }
            Err(other) => panic!("unexpected submit error: {other}"),
        }

        if op % 8 == 7 {
            completions.extend(router.run_round());
        }
        if op % 250 == 249 {
            produced += 1;
            fleet_produce_on_all(&mut feeds, produced);
            let sync = router.sync_all(&mut feeds);
            assert!(sync.outcomes.iter().all(|(_, o)| o.is_ok()), "extension sync failed");
            completions.extend(sync.shed);
        }

        if op == crash_at {
            // Both runs plant two gas bombs on the doomed device and
            // run one round, leaving their pause checkpoints in its
            // queue — the in-flight work a crash must shed typed.
            let victims: Vec<usize> = (0..FLEET_TENANTS)
                .filter(|&i| router.tenant_device(sessions[i]) == Some(CRASH_DEVICE))
                .take(2)
                .collect();
            assert_eq!(victims.len(), 2, "rendezvous left the crash device nearly empty");
            for &victim in &victims {
                let ticket =
                    router.submit(sessions[victim], fleet_bomb(victim)).expect("bomb admitted");
                assert!(admitted.insert(ticket), "fleet ticket {ticket} issued twice");
                ticket_meta.insert(ticket, (victim, 9_999));
                bomb_tickets.insert(ticket);
            }
            completions.extend(router.run_round());
            if crash {
                migrated = (0..FLEET_TENANTS)
                    .filter(|&i| router.tenant_device(sessions[i]) == Some(CRASH_DEVICE))
                    .collect();
                assert!(!migrated.is_empty(), "the crash device must be hosting tenants");
                completions.extend(router.fail_device(CRASH_DEVICE));
            }
        }

        if op == reorg_at {
            // Every feed rewrites history with a strictly heavier
            // branch; every surviving device must roll back and adopt.
            fleet_reorg_all(&mut feeds, 12, seed);
            let sync = router.sync_all(&mut feeds);
            for (device, outcome) in &sync.outcomes {
                assert!(
                    matches!(outcome, Ok(hardtape::SyncOutcome::Reorged { .. })),
                    "device {device} missed the reorg: {outcome:?}"
                );
            }
            completions.extend(sync.shed);
        }
    }
    completions.extend(router.run_until_idle());
    assert_eq!(router.queued_total(), 0, "drain left fleet work queued");

    // Exactly-once across migration, shedding, hangs, and the reorg:
    // the completed ticket set IS the admitted ticket set.
    let completed: BTreeSet<u64> = completions.iter().map(|c| c.ticket).collect();
    assert_eq!(completed.len(), completions.len(), "a fleet ticket completed twice");
    assert_eq!(completed, admitted, "admitted and completed fleet tickets diverge");
    let stats = router.stats();
    assert_eq!(stats.admitted as usize, admitted.len());
    assert_eq!(
        stats.completed_ok + stats.completed_err,
        stats.admitted,
        "every admitted fleet bundle must be accounted to exactly one outcome"
    );

    // All surviving devices converged on the same adopted head.
    let head = router.converged_head().expect("surviving devices agree on the head");

    // §IV-D auditor green on every surviving device.
    for device in 0..router.device_count() {
        if router.health_state(device) == HealthState::Failed {
            continue;
        }
        let telemetry = router.gateway(device).device().telemetry().clone();
        let report =
            audit_events(&telemetry.events(), telemetry.dropped(), &AuditConfig::default());
        assert!(
            report.passed(),
            "seed {seed}: device {device} failed the leakage audit: {:?}",
            report.violations
        );
    }

    // Receipts, isolation, and the post-crash comparison set.
    let mut receipts = BTreeMap::new();
    let mut post_crash_ok = BTreeSet::new();
    let mut shed_device_failed = 0usize;
    for completion in &completions {
        let tenant = *owner.get(&completion.session).expect("completion for unknown session");
        let (meta_tenant, step) =
            *ticket_meta.get(&completion.ticket).expect("completion for unknown ticket");
        assert_eq!(meta_tenant, tenant, "ticket resolved under the wrong tenant");
        match &completion.outcome {
            Ok(report) => {
                if !bomb_tickets.contains(&completion.ticket) {
                    let own = [fleet_tenant_addr(tenant), fleet_sink_addr(tenant)];
                    for (addr, _, _) in &report.changes.balances {
                        assert!(own.contains(addr), "tenant {tenant} report leaked {addr}");
                    }
                }
                receipts.insert((tenant, step), format!("{:?}", report.results));
                if migrated.contains(&tenant) && completion.device != CRASH_DEVICE {
                    post_crash_ok.insert((tenant, step));
                }
            }
            Err(FleetError::DeviceFailed { device }) => {
                assert_eq!(*device, CRASH_DEVICE, "only the killed device may shed");
                assert!(crash, "a clean run must not shed DeviceFailed");
                shed_device_failed += 1;
            }
            Err(_) => {}
        }
    }

    FleetRunOutcome {
        digest: router.digest(),
        head,
        receipts,
        migrated,
        post_crash_ok,
        stats,
        health_transitions: router.telemetry().counter(CounterId::FleetHealthTransitions),
        shed_device_failed,
    }
}

#[test]
fn fleet_chaos_soak_is_deterministic_and_survives_device_loss() {
    let seed = fleet_seed();
    let crash_a = fleet_chaos_run(seed, true);
    let crash_b = fleet_chaos_run(seed, true);
    assert_eq!(crash_a.digest, crash_b.digest, "seed {seed}: fleet schedules diverged");
    assert_eq!(crash_a.stats, crash_b.stats, "seed {seed}: fleet stats diverged");
    assert_eq!(crash_a.head, crash_b.head, "seed {seed}: adopted heads diverged");

    // The crash actually exercised every failover path.
    assert_eq!(crash_a.stats.device_failures, 1, "exactly 1 of {FLEET_DEVICES} devices died");
    assert!(!crash_a.migrated.is_empty(), "the dead device hosted no tenants");
    assert_eq!(
        crash_a.stats.migrations,
        crash_a.migrated.len() as u64,
        "every tenant on the dead device re-attested on a survivor"
    );
    assert!(
        crash_a.stats.shed_on_failure >= 1,
        "at least one in-flight paused bundle must be shed typed"
    );
    assert_eq!(
        crash_a.stats.shed_on_failure as usize, crash_a.shed_device_failed,
        "every shed-on-failure surfaced as a DeviceFailed completion"
    );
    assert!(crash_a.health_transitions >= 1, "health transitions must be observable");

    // Migrated tenants' post-crash receipts are byte-identical to a
    // crash-free fleet run: migration moved the session, not the
    // execution semantics.
    let clean = fleet_chaos_run(seed, false);
    assert_eq!(clean.stats.device_failures, 0);
    assert_eq!(clean.stats.shed_on_failure, 0);
    assert!(
        !crash_a.post_crash_ok.is_empty(),
        "no migrated tenant completed work on a survivor"
    );
    for key in &crash_a.post_crash_ok {
        let migrated_receipt = crash_a.receipts.get(key);
        let clean_receipt = clean.receipts.get(key);
        assert!(clean_receipt.is_some(), "clean run never completed {key:?}");
        assert_eq!(migrated_receipt, clean_receipt, "migrated receipt diverged for {key:?}");
    }

    // Greppable witnesses for scripts/verify.sh --soak; the per-device
    // audits are asserted inside `fleet_chaos_run`.
    println!("FLEET_DIGEST seed={seed} digest={}", crash_a.digest);
    println!("FLEET_AUDIT seed={seed} passed=1");
}

#[test]
fn seeded_device_crash_fails_over_queued_work() {
    // Seeded DeviceCrash (budget 1, fires on the first armed draw):
    // device 0 dies on the first round with every queue full of fresh
    // work — everything is resubmitted on the survivor and completes.
    let mut router = fleet_router_with(2, 0xFA11, GatewayConfig::default());
    let plan = FaultPlan::new(0xFA11, router.gateway(0).device().clock());
    plan.arm(FaultSite::Device, &[FaultKind::DeviceCrash], 1, 1);
    router.arm_faults(plan);

    let mut sessions = Vec::new();
    for i in 0..6 {
        sessions.push(router.connect(format!("crash tenant {i}").as_bytes()).expect("attested"));
    }
    let mut admitted = BTreeSet::new();
    for (i, &session) in sessions.iter().enumerate() {
        admitted.insert(router.submit(session, fleet_transfer(i, 0)).expect("admitted"));
    }

    let completions = router.run_until_idle();
    assert_eq!(router.stats().device_failures, 1, "the armed crash fired");
    let completed: BTreeSet<u64> = completions.iter().map(|c| c.ticket).collect();
    assert_eq!(completed, admitted, "failover lost or invented tickets");
    for completion in &completions {
        let report = completion.outcome.as_ref().expect("fresh queued work survives a crash");
        assert!(report.results[0].success);
    }
    assert!(router.stats().migrations > 0, "the dead device hosted tenants that migrated");
    assert_eq!(
        router.stats().completed_ok + router.stats().completed_err,
        router.stats().admitted
    );
}

#[test]
fn crash_sheds_in_flight_paused_work_with_typed_completions() {
    let mut router = fleet_router_with(2, 0x9A5B, GatewayConfig::default());
    // Find a tenant homed on device 0.
    let mut victim = None;
    for i in 0..8 {
        let session = router.connect(format!("pause tenant {i}").as_bytes()).expect("attested");
        if router.tenant_device(session) == Some(0) {
            victim = Some((session, i));
            break;
        }
    }
    let (victim, index) = victim.expect("8 tenants always land one on device 0");

    let ticket = router.submit(victim, fleet_bomb(index)).expect("bomb admitted");
    // One round: the bomb burns one 100k slice, pauses, re-queues.
    assert!(router.run_round().is_empty(), "the bomb must still be in flight");

    // The crash converts the unreplayable pause into one typed shed.
    let completions = router.fail_device(0);
    let shed: Vec<_> = completions.iter().filter(|c| c.ticket == ticket).collect();
    assert_eq!(shed.len(), 1, "the paused bomb completes exactly once");
    assert!(
        matches!(shed[0].outcome, Err(FleetError::DeviceFailed { device: 0 })),
        "expected a typed DeviceFailed shed, got {:?}",
        shed[0].outcome
    );
    assert_eq!(router.stats().shed_on_failure, 1);

    // The migrated tenant keeps working on the survivor.
    let next =
        router.submit(victim, fleet_transfer(index, 1)).expect("survivor serves the tenant");
    let completions = router.run_until_idle();
    let done = completions.iter().find(|c| c.ticket == next).expect("completes");
    assert_eq!(done.device, 1, "post-migration work runs on the survivor");
    assert!(done.outcome.as_ref().expect("succeeds").results[0].success);
    assert!(router.run_round().is_empty(), "nothing left in flight");
}

#[test]
fn hang_faults_walk_quarantine_and_probation_back_to_healthy() {
    let genesis = fleet_genesis();
    let gateways = (0..2)
        .map(|d| {
            let service = ServiceConfig {
                oram_height: 10,
                seed: 0x4A6 + d as u64,
                ..ServiceConfig::at_level(SecurityConfig::Es)
            };
            Gateway::new(
                HarDTape::new(service, Env::default(), &genesis).expect("device boots"),
                GatewayConfig::default(),
            )
        })
        .collect();
    let mut router = FleetRouter::new(
        gateways,
        FleetConfig {
            failure_threshold: 2,
            cooldown_ns: 1_000_000_000,
            idle_tick_ns: 600_000_000,
        },
    );
    // every=1, budget=4: rounds 1 and 2 hang both devices — two
    // consecutive strikes each, tripping the threshold-2 quarantine.
    let plan = FaultPlan::new(7, router.gateway(0).device().clock());
    plan.arm(FaultSite::Device, &[FaultKind::DeviceHang], 1, 4);
    router.arm_faults(plan);

    let session = router.connect(b"hang tenant").expect("attested");
    let home = router.tenant_device(session).expect("tenant is homed");

    assert!(router.run_round().is_empty());
    assert_eq!(router.health_state(0), HealthState::Suspect);
    assert!(router.run_round().is_empty());
    assert_eq!(router.health_state(0), HealthState::Quarantined);
    assert_eq!(router.health_state(1), HealthState::Quarantined);

    // A quarantined home refuses new work with a typed, nonzero hint.
    match router.submit(session, fleet_transfer(0, 0)) {
        Err(FleetError::Gateway(GatewayError::Overloaded { retry_after })) => {
            assert!(retry_after > 0, "quarantine must say when to come back");
        }
        other => panic!("expected Overloaded from a quarantined home, got {other:?}"),
    }

    // Skipped rounds burn idle time; after the cooldown the next round
    // is a probation probe, which passes (the hang budget is spent).
    assert!(router.run_round().is_empty());
    assert!(router.run_round().is_empty());
    assert!(matches!(
        router.health_state(home),
        HealthState::Probation | HealthState::Healthy
    ));
    let ticket = router.submit(session, fleet_transfer(0, 0)).expect("healed home admits");
    let completions = router.run_until_idle();
    assert!(completions.iter().any(|c| c.ticket == ticket && c.outcome.is_ok()));
    assert_eq!(router.health_state(home), HealthState::Healthy);
    assert!(
        router.telemetry().counter(CounterId::FleetHealthTransitions) >= 4,
        "healthy->suspect->quarantined->probation->healthy must all be observable"
    );
}

#[test]
fn overload_hint_reflects_least_loaded_eligible_device() {
    // Device 0 is congested (a deep backlog behind a bounded queue),
    // device 1 is idle: a rejection from a tenant homed on device 0
    // must carry the fleet's best hint — the idle sibling's one-bundle
    // floor — not device 0's multi-bundle sequential-drain estimate.
    let genesis = fleet_genesis();
    let configs = [
        GatewayConfig { queue_depth: 6, admission_budget: 6, ..GatewayConfig::default() },
        GatewayConfig::default(),
    ];
    let gateways = configs
        .iter()
        .enumerate()
        .map(|(d, config)| {
            let service = ServiceConfig {
                oram_height: 10,
                seed: 0xB157 + d as u64,
                ..ServiceConfig::at_level(SecurityConfig::Es)
            };
            Gateway::new(
                HarDTape::new(service, Env::default(), &genesis).expect("device boots"),
                config.clone(),
            )
        })
        .collect();
    let mut router = FleetRouter::new(gateways, FleetConfig::default());

    // Find a tenant homed on the tiny device.
    let mut victim = None;
    for i in 0..16 {
        let session = router.connect(format!("hint tenant {i}").as_bytes()).expect("attested");
        if router.tenant_device(session) == Some(0) {
            victim = Some(session);
            break;
        }
    }
    let victim = victim.expect("16 tenants always land one on device 0");

    for step in 0..6 {
        router.submit(victim, fleet_transfer(0, step)).expect("backlog fits the queue");
    }
    let home_hint = router.gateway(0).retry_after_hint();
    // Six bundles over three cores: strictly above the idle sibling's
    // one-bundle floor.
    assert!(home_hint > router.gateway(1).retry_after_hint());
    match router.submit(victim, fleet_transfer(0, 6)) {
        Err(FleetError::Gateway(GatewayError::Overloaded { retry_after })) => {
            assert!(retry_after > 0, "the fleet hint must stay usable");
            assert!(
                retry_after < home_hint,
                "fleet hint {retry_after} must beat the congested home's {home_hint}"
            );
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
}

#[test]
fn split_heads_surface_as_typed_divergence() {
    let mut router = fleet_router_with(2, 0x5EAD, GatewayConfig::default());
    let mut feeds = fleet_feedset();
    fleet_produce_on_all(&mut feeds, 0);

    // Sync only device 0 (out-of-band): the fleet now disagrees.
    router.gateway_mut(0).sync_set(&mut feeds).expect("device 0 syncs");
    match router.converged_head() {
        Err(FleetError::SplitHead { heads }) => {
            assert_eq!(heads.len(), 2);
            assert!(heads[0].1.is_some() && heads[1].1.is_none());
        }
        other => panic!("expected SplitHead, got {other:?}"),
    }

    // A fleet-wide sync against the same FeedSet restores convergence.
    let sync = router.sync_all(&mut feeds);
    assert!(sync.outcomes.iter().all(|(_, o)| o.is_ok()));
    let head = router.converged_head().expect("fleet re-converged");
    assert!(head.is_some());
}

#[test]
fn lone_device_failure_orphans_tenants_with_typed_errors() {
    let mut router = fleet_router_with(1, 0x0127, GatewayConfig::default());
    let session = router.connect(b"orphan tenant").expect("attested");
    let ticket = router.submit(session, fleet_transfer(0, 0)).expect("admitted");

    // No survivor: queued work completes with a typed error, never
    // silently — exactly-once holds even when the whole fleet is gone.
    let completions = router.fail_device(0);
    assert_eq!(completions.len(), 1);
    assert_eq!(completions[0].ticket, ticket);
    assert!(
        matches!(completions[0].outcome, Err(FleetError::NoEligibleDevice)),
        "expected NoEligibleDevice, got {:?}",
        completions[0].outcome
    );

    assert!(matches!(
        router.submit(session, fleet_transfer(0, 1)),
        Err(FleetError::NoEligibleDevice)
    ));
    assert!(matches!(router.connect(b"late tenant"), Err(FleetError::NoEligibleDevice)));
    assert_eq!(router.stats().completed_ok + router.stats().completed_err, 1);
}

#[test]
fn sequential_sessions_reuse_devices_cleanly() {
    // One device, many users in sequence: no state bleeds between
    // sessions (each bundle sees the pristine backend).
    let genesis = genesis();
    let mut device = HarDTape::new(
        ServiceConfig { oram_height: 10, ..ServiceConfig::at_level(SecurityConfig::Full) },
        Env::default(),
        &genesis,
    ).expect("device boots");
    let from = Address::from_low_u64(0x1000);
    let to = Address::from_low_u64(0x1001);
    let mut first_report = None;
    for i in 0..4 {
        let mut user = device.connect_user(format!("serial user {i}").as_bytes()).unwrap();
        let tx = Transaction::transfer(from, to, U256::from(100u64));
        let report = device.pre_execute(&mut user, &Bundle::single(tx)).unwrap();
        assert!(report.results[0].success);
        match &first_report {
            None => first_report = Some(report.results.clone()),
            Some(expected) => assert_eq!(&report.results, expected, "session {i} saw leakage"),
        }
    }
}
