//! Fleet-level tests: multiple HarDTAPE devices serving users in
//! parallel (the §VI-D deployment: one device per ~18 tx/s, scaled
//! horizontally), ORAM-key sharing between trusted Hypervisors, and
//! end-to-end trace-signature verification by the user.

use hardtape::{Bundle, HarDTape, SecurityConfig, ServiceConfig};
use tape_evm::{Env, Transaction};
use tape_primitives::{Address, U256};
use tape_state::{Account, InMemoryState};
use tape_tee::channel::verify_bundle;

fn genesis() -> InMemoryState {
    let mut state = InMemoryState::new();
    for i in 0..8 {
        state.put_account(
            Address::from_low_u64(0x1000 + i),
            Account::with_balance(U256::from(u64::MAX)),
        );
    }
    state
}

#[test]
fn three_devices_serve_bundles_in_parallel() {
    let genesis = genesis();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for device_id in 0..3u64 {
            let genesis = &genesis;
            handles.push(scope.spawn(move || {
                let config = ServiceConfig {
                    oram_height: 10,
                    seed: 0x1000 + device_id,
                    ..ServiceConfig::at_level(SecurityConfig::Full)
                };
                let mut device = HarDTape::new(config, Env::default(), genesis).expect("device boots");
                let mut user = device
                    .connect_user(format!("fleet user {device_id}").as_bytes())
                    .expect("attestation");
                let from = Address::from_low_u64(0x1000 + device_id);
                let to = Address::from_low_u64(0x1000 + (device_id + 1) % 8);
                let mut total = 0u64;
                for i in 0..5u64 {
                    let tx = Transaction::transfer(from, to, U256::from(i + 1));
                    let report = device
                        .pre_execute(&mut user, &Bundle::single(tx))
                        .expect("bundle accepted");
                    assert!(report.results[0].success);
                    total += report.total_ns;
                }
                total
            }));
        }
        for handle in handles {
            let total = handle.join().expect("device thread");
            assert!(total > 0);
        }
    });
}

#[test]
fn user_verifies_the_device_trace_signature() {
    let mut device = HarDTape::new(
        ServiceConfig { oram_height: 10, ..ServiceConfig::at_level(SecurityConfig::Es) },
        Env::default(),
        &genesis(),
    ).expect("device boots");
    let mut user = device.connect_user(b"verifying user").unwrap();
    let tx = Transaction::transfer(
        Address::from_low_u64(0x1000),
        Address::from_low_u64(0x1001),
        U256::ONE,
    );
    let report = device.pre_execute(&mut user, &Bundle::single(tx)).unwrap();

    // The user verifies the trace against the attested device session key.
    let signature = report.signature.expect("-ES signs traces");
    let trace = report.encode();
    verify_bundle(&user.device_key(), &trace, &signature).expect("honest trace verifies");

    // A tampered trace (SP edits the reported gas) fails verification —
    // attack "mislead the user with fake results" is detectable.
    let mut forged = report.clone();
    forged.results[0].gas_used += 1;
    assert!(verify_bundle(&user.device_key(), &forged.encode(), &signature).is_err());

    // A signature from a different session does not transfer.
    let mut other_user = device.connect_user(b"other user").unwrap();
    assert_ne!(user.device_key(), other_user.device_key());
    let _ = &mut other_user;
}

#[test]
fn oram_key_is_shared_across_the_fleet() {
    use tape_crypto::SecureRng;
    use tape_tee::attestation::{Attester, Manufacturer};
    use tape_tee::hypervisor::Hypervisor;

    let manufacturer = Manufacturer::new(b"fleet fab");
    let boot = |id: u64| {
        let mut rng = SecureRng::from_seed(&id.to_be_bytes());
        let (puf, cert) = manufacturer.provision(id, &mut rng);
        Hypervisor::boot(Attester::new(puf, cert, b"fw"), 3, rng)
    };
    let first = boot(1);
    let mut second = boot(2);
    // Distinct until the newcomer fetches the fleet key over the
    // device-to-device channel (both ends trusted Hypervisors).
    assert_ne!(first.oram_key(), second.oram_key());
    second.share_oram_key(first.oram_key());
    assert_eq!(first.oram_key(), second.oram_key());
}

#[test]
fn sequential_sessions_reuse_devices_cleanly() {
    // One device, many users in sequence: no state bleeds between
    // sessions (each bundle sees the pristine backend).
    let genesis = genesis();
    let mut device = HarDTape::new(
        ServiceConfig { oram_height: 10, ..ServiceConfig::at_level(SecurityConfig::Full) },
        Env::default(),
        &genesis,
    ).expect("device boots");
    let from = Address::from_low_u64(0x1000);
    let to = Address::from_low_u64(0x1001);
    let mut first_report = None;
    for i in 0..4 {
        let mut user = device.connect_user(format!("serial user {i}").as_bytes()).unwrap();
        let tx = Transaction::transfer(from, to, U256::from(100u64));
        let report = device.pre_execute(&mut user, &Bundle::single(tx)).unwrap();
        assert!(report.results[0].success);
        match &first_report {
            None => first_report = Some(report.results.clone()),
            Some(expected) => assert_eq!(&report.results, expected, "session {i} saw leakage"),
        }
    }
}
