//! Full-service integration tests: the Fig. 3 lifecycle across every
//! security configuration, bundle semantics, block synchronization, and
//! the Fig. 4 cost ordering.

use hardtape::{Bundle, HarDTape, SecurityConfig, ServiceConfig, ServiceError};
use tape_evm::{Env, Transaction};
use tape_primitives::{Address, U256};
use tape_state::{Account, InMemoryState};
use tape_workload::contracts;

fn alice() -> Address {
    Address::from_low_u64(0xA11CE)
}

fn bob() -> Address {
    Address::from_low_u64(0xB0B)
}

fn token() -> Address {
    Address::from_low_u64(0x70CE)
}

fn genesis() -> InMemoryState {
    let mut state = InMemoryState::new();
    state.put_account(alice(), Account::with_balance(U256::from(u64::MAX)));
    state.put_account(bob(), Account::with_balance(U256::from(u64::MAX)));
    let mut t = Account::with_code(contracts::erc20_runtime());
    t.storage.insert(contracts::balance_slot(&alice()), U256::from(1_000_000u64));
    state.put_account(token(), t);
    state
}

fn erc20_transfer_bundle() -> Bundle {
    Bundle::single(Transaction {
        gas_limit: 300_000,
        ..Transaction::call(
            alice(),
            token(),
            contracts::encode_call(
                contracts::sel::transfer(),
                &[bob().into_word(), U256::from(250u64)],
            ),
        )
    })
}

fn small_service(level: SecurityConfig) -> HarDTape {
    let config = ServiceConfig { oram_height: 10, ..ServiceConfig::at_level(level) };
    HarDTape::new(config, Env::default(), &genesis()).expect("device boots")
}

#[test]
fn all_security_levels_agree_on_results() {
    let bundle = erc20_transfer_bundle();
    let mut reference: Option<Vec<tape_evm::TxResult>> = None;
    for level in SecurityConfig::ALL {
        let mut device = small_service(level);
        let mut user = device.connect_user(b"results user").unwrap();
        let report = device.pre_execute(&mut user, &bundle).unwrap();
        assert!(report.results[0].success, "{level}: tx failed");
        match &reference {
            None => reference = Some(report.results.clone()),
            Some(expected) => assert_eq!(&report.results, expected, "{level} diverged"),
        }
        // Storage modifications reported in the trace.
        assert_eq!(report.changes.storage.len(), 2, "{level}");
    }
}

#[test]
fn fig4_cost_ladder_is_monotonic() {
    // Each added security feature strictly increases per-transaction
    // virtual time — the shape of Fig. 4.
    let bundle = erc20_transfer_bundle();
    let mut times = Vec::new();
    for level in SecurityConfig::ALL {
        let mut device = small_service(level);
        let mut user = device.connect_user(b"ladder user").unwrap();
        let report = device.pre_execute(&mut user, &bundle).unwrap();
        times.push((level, report.total_ns));
    }
    for pair in times.windows(2) {
        assert!(
            pair[0].1 < pair[1].1,
            "{} ({} ns) should cost less than {} ({} ns)",
            pair[0].0,
            pair[0].1,
            pair[1].0,
            pair[1].1
        );
    }
    // The ECDSA step dominates (paper: ~80 ms of the 164 ms total).
    let es = times[2].1;
    let e = times[1].1;
    assert!(es - e > 50_000_000, "ECDSA step too small: {} ns", es - e);
}

#[test]
fn signature_present_only_with_es_and_above() {
    let bundle = erc20_transfer_bundle();
    for level in SecurityConfig::ALL {
        let mut device = small_service(level);
        let mut user = device.connect_user(b"sig user").unwrap();
        let report = device.pre_execute(&mut user, &bundle).unwrap();
        assert_eq!(report.signature.is_some(), level.signature(), "{level}");
    }
}

#[test]
fn bundle_transactions_see_cumulative_state() {
    // Three transfers in one bundle: each sees the previous one's
    // effects; the backend stays untouched.
    let mut device = small_service(SecurityConfig::Full);
    let mut user = device.connect_user(b"bundle user").unwrap();
    let tx = |amount: u64| Transaction {
        gas_limit: 300_000,
        ..Transaction::call(
            alice(),
            token(),
            contracts::encode_call(
                contracts::sel::transfer(),
                &[bob().into_word(), U256::from(amount)],
            ),
        )
    };
    let bundle = Bundle { transactions: vec![tx(100), tx(200), tx(300)] };
    let report = device.pre_execute(&mut user, &bundle).unwrap();
    assert!(report.results.iter().all(|r| r.success));
    assert_eq!(report.per_tx_ns.len(), 3);
    // Bob's final balance change reflects all three transfers.
    let bob_slot = contracts::balance_slot(&bob());
    let (_, _, final_value) = report
        .changes
        .storage
        .iter()
        .find(|(_, key, _)| *key == bob_slot)
        .expect("bob's balance changed");
    assert_eq!(*final_value, U256::from(600u64));

    // A second bundle starts from the clean backend again (pre-execution
    // discards modifications, paper step 10).
    let report2 = device.pre_execute(&mut user, &bundle).unwrap();
    assert_eq!(report2.results, report.results);
}

#[test]
fn hevm_slots_exhaust_and_recover() {
    // hevm_count = 2: a third concurrent bundle must queue (Busy)...
    let config = ServiceConfig {
        hevm_count: 2,
        oram_height: 10,
        ..ServiceConfig::at_level(SecurityConfig::Raw)
    };
    let mut device = HarDTape::new(config, Env::default(), &genesis()).expect("device boots");
    let mut u1 = device.connect_user(b"u1").unwrap();
    let _u2 = device.connect_user(b"u2").unwrap();

    // pre_execute assigns and releases internally, so sequential bundles
    // reuse slots; verify by running more bundles than slots.
    for _ in 0..5 {
        let report = device.pre_execute(&mut u1, &erc20_transfer_bundle()).unwrap();
        assert!(report.results[0].success);
    }
}

#[test]
fn block_sync_applies_verified_deltas() {
    let mut node = tape_node::Node::new(genesis(), Env::default());
    let mut device = small_service(SecurityConfig::Full);
    let mut user = device.connect_user(b"sync user").unwrap();

    // The chain moves: alice sends 500 to bob on-chain.
    node.produce_block(vec![Transaction::transfer(alice(), bob(), U256::from(500u64))]);
    let header = node.head().unwrap().header.clone();
    let delta = node.head_state_delta().unwrap();
    device.sync_block(&header, &delta).unwrap();
    assert_eq!(device.head(), Some(header.hash()));

    // Pre-execution now sees the post-block nonce of alice.
    let mut tx = Transaction::transfer(alice(), bob(), U256::ONE);
    tx.nonce = Some(1); // alice's nonce after the on-chain tx
    let report = device.pre_execute(&mut user, &Bundle::single(tx)).unwrap();
    assert!(report.results[0].success);
}

#[test]
fn forged_block_sync_rejected_without_side_effects() {
    let mut node = tape_node::Node::new(genesis(), Env::default());
    let mut device = small_service(SecurityConfig::Full);

    node.produce_block(vec![Transaction::transfer(alice(), bob(), U256::from(500u64))]);
    let header = node.head().unwrap().header.clone();

    // A6: the SP inflates bob's balance in the delta.
    let mut forged = node.head_state_delta().unwrap();
    let entry = forged.accounts.iter_mut().find(|a| a.address == bob()).unwrap();
    entry.account.balance = U256::MAX;
    match device.sync_block(&header, &forged) {
        Err(ServiceError::BadDelta(_)) => {}
        other => panic!("expected BadDelta, got {other:?}"),
    }
    assert_eq!(device.head(), None, "forged sync must not advance the head");

    // Mismatched header is also rejected.
    let honest = node.head_state_delta().unwrap();
    let mut wrong_header = header.clone();
    wrong_header.number += 1;
    assert_eq!(
        device.sync_block(&wrong_header, &honest),
        Err(ServiceError::HeaderMismatch)
    );

    // The honest delta still applies afterwards.
    device.sync_block(&header, &honest).unwrap();
}

#[test]
fn distinct_users_get_isolated_sessions() {
    let mut device = small_service(SecurityConfig::Full);
    let u1 = device.connect_user(b"isolated 1").unwrap();
    let u2 = device.connect_user(b"isolated 2").unwrap();
    assert_ne!(u1.session, u2.session);
    assert_ne!(u1.public_key(), u2.public_key());
}

#[test]
fn oram_configs_issue_oram_queries() {
    let bundle = erc20_transfer_bundle();
    // Raw: no ORAM at all.
    let device = small_service(SecurityConfig::Raw);
    assert!(device.oram_stats().is_none());

    // ESO: K-V queries only.
    let mut device = small_service(SecurityConfig::Eso);
    let mut user = device.connect_user(b"eso").unwrap();
    let sync_stats = device.oram_stats().unwrap();
    device.pre_execute(&mut user, &bundle).unwrap();
    let stats = device.oram_stats().unwrap();
    assert!(stats.kv_queries > sync_stats.kv_queries);
    assert_eq!(stats.code_queries, sync_stats.code_queries, "ESO must not fetch code via ORAM");

    // Full: code travels through ORAM too — either as demand code
    // queries or via the prefetcher's indistinguishable prefetch
    // queries (both are 1 KB wire accesses).
    let mut device = small_service(SecurityConfig::Full);
    let mut user = device.connect_user(b"full").unwrap();
    let sync_stats = device.oram_stats().unwrap();
    device.pre_execute(&mut user, &bundle).unwrap();
    let stats = device.oram_stats().unwrap();
    assert!(
        stats.code_queries + stats.prefetch_queries
            > sync_stats.code_queries + sync_stats.prefetch_queries,
        "Full must fetch code through ORAM: {stats:?} vs {sync_stats:?}"
    );
}

#[test]
fn memory_overflow_bundle_reported_as_attack() {
    use tape_evm::asm::Asm;
    use tape_evm::opcode::op;
    let mut state = genesis();
    let hog = Address::from_low_u64(0x406);
    state.put_account(
        hog,
        Account::with_code(
            Asm::new().push(1u64).push(600u64 * 1024).op(op::MSTORE).stop().build(),
        ),
    );
    let config = ServiceConfig { oram_height: 10, ..ServiceConfig::at_level(SecurityConfig::Raw) };
    let mut device = HarDTape::new(config, Env::default(), &state).expect("device boots");
    let mut user = device.connect_user(b"attacker").unwrap();
    let mut tx = Transaction::call(alice(), hog, vec![]);
    tx.gas_limit = 10_000_000;
    match device.pre_execute(&mut user, &Bundle::single(tx)) {
        Err(ServiceError::Hevm(tape_hevm::HevmAbort::MemoryOverflow { .. })) => {}
        other => panic!("expected MemoryOverflow, got {other:?}"),
    }
    // The device recovers: the slot was released despite the abort.
    let report = device.pre_execute(&mut user, &erc20_transfer_bundle()).unwrap();
    assert!(report.results[0].success);
}
