//! Adversarial fault-injection suite: every untrusted boundary of the
//! device gets a seeded, reproducible adversary, and every injected
//! fault must surface as a typed [`ServiceError`] (or recover via
//! retry/quarantine) — never as a panic. Boundary classes covered:
//! the layer-3 page store (A4), the ORAM server (A5), the secure
//! channel (A3), and the full-node block feed (A1/A6).

use hardtape::{Bundle, HarDTape, SecurityConfig, ServiceConfig, ServiceError};
use tape_evm::asm::Asm;
use tape_evm::opcode::op;
use tape_evm::{Env, Transaction};
use tape_hevm::HevmAbort;
use tape_node::{BlockFeed, Node};
use tape_oram::OramError;
use tape_primitives::{Address, U256};
use tape_sim::fault::{FaultKind, FaultPlan, FaultSite};
use tape_sim::resources::MemoryConfig;
use tape_state::{Account, InMemoryState};
use tape_tee::ChannelError;
use tape_workload::contracts;

fn alice() -> Address {
    Address::from_low_u64(0xA11CE)
}

fn bob() -> Address {
    Address::from_low_u64(0xB0B)
}

fn token() -> Address {
    Address::from_low_u64(0x70CE)
}

fn hog() -> Address {
    Address::from_low_u64(0x406)
}

fn genesis() -> InMemoryState {
    let mut state = InMemoryState::new();
    state.put_account(alice(), Account::with_balance(U256::from(u64::MAX)));
    state.put_account(bob(), Account::with_balance(U256::from(u64::MAX)));
    let mut t = Account::with_code(contracts::erc20_runtime());
    t.storage.insert(contracts::balance_slot(&alice()), U256::from(1_000_000u64));
    state.put_account(token(), t);
    state
}

/// Adds a contract that expands memory then self-calls — deep frames
/// that force layer-3 swap traffic under a tiny layer 2.
fn genesis_with_hog() -> InMemoryState {
    let mut state = genesis();
    let code = Asm::new()
        .push(1u64)
        .push(2u64 * 1024 - 32)
        .op(op::MSTORE)
        .push(0u64)
        .push(0u64)
        .push(0u64)
        .push(0u64)
        .push(0u64)
        .push_address(hog())
        .op(op::GAS)
        .op(op::CALL)
        .stop()
        .build();
    state.put_account(hog(), Account::with_code(code));
    state
}

fn erc20_transfer_bundle() -> Bundle {
    Bundle::single(Transaction {
        gas_limit: 300_000,
        ..Transaction::call(
            alice(),
            token(),
            contracts::encode_call(
                contracts::sel::transfer(),
                &[bob().into_word(), U256::from(250u64)],
            ),
        )
    })
}

fn small_service(level: SecurityConfig) -> HarDTape {
    let config = ServiceConfig { oram_height: 10, ..ServiceConfig::at_level(level) };
    HarDTape::new(config, Env::default(), &genesis()).expect("device boots")
}

/// Arms `plan` on a fresh device at `level` (after genesis sync, so the
/// initial ORAM load is honest).
fn armed_service(level: SecurityConfig, seed: u64, arm: impl Fn(&FaultPlan)) -> (HarDTape, FaultPlan) {
    let mut device = small_service(level);
    let plan = FaultPlan::new(seed, device.clock());
    arm(&plan);
    device.arm_faults(plan.clone());
    (device, plan)
}

// ---------------------------------------------------------------------
// Secure channel (A3)
// ---------------------------------------------------------------------

#[test]
fn channel_tamper_aborts_bundle_and_forces_reattestation() {
    let (mut device, plan) = armed_service(SecurityConfig::Full, 11, |p| {
        p.arm(FaultSite::Channel, &[FaultKind::ChannelTamper], 1, 1);
    });
    let mut user = device.connect_user(b"tamper victim").unwrap();

    match device.pre_execute(&mut user, &erc20_transfer_bundle()) {
        Err(ServiceError::Channel(ChannelError::Sealed)) => {}
        other => panic!("expected Channel(Sealed), got {other:?}"),
    }
    assert_eq!(plan.injected(), 1);

    // The session is revoked until the user re-attests.
    match device.pre_execute(&mut user, &erc20_transfer_bundle()) {
        Err(ServiceError::ReattestationRequired) => {}
        other => panic!("expected ReattestationRequired, got {other:?}"),
    }

    // Budget exhausted: a fresh attestation serves cleanly.
    let mut fresh = device.connect_user(b"tamper victim 2").unwrap();
    let report = device.pre_execute(&mut fresh, &erc20_transfer_bundle()).unwrap();
    assert!(report.results[0].success);
}

#[test]
fn channel_replay_detected_and_session_revoked() {
    let (mut device, _plan) = armed_service(SecurityConfig::Full, 12, |p| {
        p.arm(FaultSite::Channel, &[FaultKind::ChannelReplay], 1, 1);
    });
    let mut user = device.connect_user(b"replay victim").unwrap();

    match device.pre_execute(&mut user, &erc20_transfer_bundle()) {
        Err(ServiceError::Channel(ChannelError::Sequence { .. })) => {}
        other => panic!("expected Channel(Sequence), got {other:?}"),
    }
    match device.pre_execute(&mut user, &erc20_transfer_bundle()) {
        Err(ServiceError::ReattestationRequired) => {}
        other => panic!("expected ReattestationRequired, got {other:?}"),
    }
    let mut fresh = device.connect_user(b"replay victim 2").unwrap();
    assert!(device.pre_execute(&mut fresh, &erc20_transfer_bundle()).unwrap().results[0].success);
}

#[test]
fn channel_drop_recovers_transparently_by_retransmission() {
    let (mut device, plan) = armed_service(SecurityConfig::Full, 13, |p| {
        p.arm(FaultSite::Channel, &[FaultKind::ChannelDrop], 1, 1);
    });
    let mut user = device.connect_user(b"drop victim").unwrap();

    // A dropped message costs only (virtual) time — the bundle succeeds.
    let report = device.pre_execute(&mut user, &erc20_transfer_bundle()).unwrap();
    assert!(report.results[0].success);
    assert_eq!(plan.injected(), 1, "the drop was injected");

    // Session NOT revoked: the next bundle runs without re-attestation.
    assert!(device.pre_execute(&mut user, &erc20_transfer_bundle()).unwrap().results[0].success);
}

// ---------------------------------------------------------------------
// ORAM server (A5)
// ---------------------------------------------------------------------

#[test]
fn oram_wrong_path_yields_missing_block_and_revokes_session() {
    let (mut device, plan) = armed_service(SecurityConfig::Full, 21, |p| {
        p.arm(FaultSite::OramServer, &[FaultKind::WrongPath], 1, 2);
    });
    let mut user = device.connect_user(b"oram victim").unwrap();

    match device.pre_execute(&mut user, &erc20_transfer_bundle()) {
        Err(ServiceError::Oram(OramError::MissingBlock(_))) => {}
        other => panic!("expected Oram(MissingBlock), got {other:?}"),
    }
    assert!(plan.injected() >= 1);

    // Integrity failure: the session is revoked.
    match device.pre_execute(&mut user, &erc20_transfer_bundle()) {
        Err(ServiceError::ReattestationRequired) => {}
        other => panic!("expected ReattestationRequired, got {other:?}"),
    }

    // The device survives: with the adversary disarmed, a fresh session
    // gets a *typed* answer — success, or a residual ORAM error from the
    // poisoned tree — never a panic.
    plan.disarm(FaultSite::OramServer);
    let mut fresh = device.connect_user(b"oram victim 2").unwrap();
    match device.pre_execute(&mut fresh, &erc20_transfer_bundle()) {
        Ok(report) => assert_eq!(report.results.len(), 1),
        Err(ServiceError::Oram(_)) => {}
        other => panic!("expected Ok or Oram(_), got {other:?}"),
    }
}

#[test]
fn oram_dropped_write_back_yields_typed_error() {
    let (mut device, plan) = armed_service(SecurityConfig::Full, 22, |p| {
        p.arm(FaultSite::OramServer, &[FaultKind::DropWrite], 1, 4);
    });
    let mut user = device.connect_user(b"dropwrite victim").unwrap();

    // Dropped write-backs starve *later* reads of their blocks (the
    // position map still points at the path the write never reached), so
    // the violation may only surface a few bundles in. Detection is the
    // honest-server invariant: a mapped block must be on its path.
    let mut detected = false;
    for _ in 0..10 {
        match device.pre_execute(&mut user, &erc20_transfer_bundle()) {
            Ok(_) => {}
            Err(ServiceError::Oram(OramError::MissingBlock(_))) => {
                detected = true;
                break;
            }
            other => panic!("expected Ok or Oram(MissingBlock), got {other:?}"),
        }
    }
    assert!(detected, "dropped write-backs never detected");
    assert!(plan.injected() >= 1);
}

#[test]
fn oram_tampered_bucket_yields_typed_error() {
    let (mut device, _plan) = armed_service(SecurityConfig::Full, 23, |p| {
        p.arm(FaultSite::OramServer, &[FaultKind::BitFlip], 1, 2);
    });
    let mut user = device.connect_user(b"bitflip victim").unwrap();

    match device.pre_execute(&mut user, &erc20_transfer_bundle()) {
        Err(ServiceError::Oram(OramError::Tampered)) => {}
        other => panic!("expected Oram(Tampered), got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Layer-3 page store (A4)
// ---------------------------------------------------------------------

#[test]
fn layer3_tamper_aborts_bundle_and_device_recovers() {
    let mut config =
        ServiceConfig { oram_height: 10, ..ServiceConfig::at_level(SecurityConfig::Raw) };
    // Tiny layer 2: the self-calling hog forces swap traffic to layer 3.
    config.hevm.mem = MemoryConfig { layer2_bytes: 128 * 1024, ..MemoryConfig::default() };
    let mut device = HarDTape::new(config, Env::default(), &genesis_with_hog()).expect("device boots");
    let plan = FaultPlan::new(31, device.clock());
    plan.arm(
        FaultSite::PageStore,
        &[FaultKind::BitFlip, FaultKind::Truncate, FaultKind::Replay],
        1,
        64,
    );
    device.arm_faults(plan.clone());
    let mut user = device.connect_user(b"layer3 victim").unwrap();

    let mut tx = Transaction::call(alice(), hog(), vec![]);
    tx.gas_limit = 8_000_000;
    match device.pre_execute(&mut user, &Bundle::single(tx.clone())) {
        Err(ServiceError::Hevm(HevmAbort::Layer3Tampered)) => {}
        other => panic!("expected Hevm(Layer3Tampered), got {other:?}"),
    }
    assert!(plan.injected() >= 1, "no page-store fault landed");

    // Layer-3 integrity failure revokes the session...
    match device.pre_execute(&mut user, &erc20_transfer_bundle()) {
        Err(ServiceError::ReattestationRequired) => {}
        other => panic!("expected ReattestationRequired, got {other:?}"),
    }

    // ...but the device itself recovers: disarm, re-attest, and the same
    // workload completes (layer-3 state is per-bundle, nothing persists).
    plan.disarm(FaultSite::PageStore);
    let mut fresh = device.connect_user(b"layer3 victim 2").unwrap();
    let report = device.pre_execute(&mut fresh, &Bundle::single(tx)).unwrap();
    assert!(report.results[0].success);
}

// ---------------------------------------------------------------------
// Watchdog + quarantine
// ---------------------------------------------------------------------

#[test]
fn watchdog_aborts_runaway_execution() {
    let mut state = genesis();
    let spin = Address::from_low_u64(0x5417);
    state.put_account(
        spin,
        Account::with_code(Asm::new().label("top").push(1u64).op(op::POP).jump("top").build()),
    );
    let mut config =
        ServiceConfig { oram_height: 10, ..ServiceConfig::at_level(SecurityConfig::Raw) };
    // 5 virtual ms: an honest bundle finishes well under it at Raw, the
    // 30M-gas spin loop burns tens of virtual ms.
    config.hevm.watchdog_ns = Some(5_000_000);
    let mut device = HarDTape::new(config, Env::default(), &state).expect("device boots");
    let mut user = device.connect_user(b"spinner").unwrap();

    let mut tx = Transaction::call(alice(), spin, vec![]);
    tx.gas_limit = 30_000_000;
    match device.pre_execute(&mut user, &Bundle::single(tx)) {
        Err(ServiceError::Hevm(HevmAbort::Watchdog { budget_ns })) => {
            assert_eq!(budget_ns, 5_000_000);
        }
        other => panic!("expected Hevm(Watchdog), got {other:?}"),
    }

    // A watchdog trip is not an integrity failure: the same session keeps
    // working, and the slot was returned to the pool.
    let report = device.pre_execute(&mut user, &erc20_transfer_bundle()).unwrap();
    assert!(report.results[0].success);
}

#[test]
fn persistently_failing_core_is_quarantined_and_the_rest_keep_serving() {
    let mut state = genesis();
    let spin = Address::from_low_u64(0x5417);
    state.put_account(
        spin,
        Account::with_code(Asm::new().label("top").push(1u64).op(op::POP).jump("top").build()),
    );
    let mut config = ServiceConfig {
        oram_height: 10,
        hevm_count: 2,
        ..ServiceConfig::at_level(SecurityConfig::Raw)
    };
    config.hevm.watchdog_ns = Some(5_000_000);
    let mut device = HarDTape::new(config, Env::default(), &state).expect("device boots");
    let mut user = device.connect_user(b"quarantine driver").unwrap();

    let spin_bundle = || {
        let mut tx = Transaction::call(alice(), spin, vec![]);
        tx.gas_limit = 30_000_000;
        Bundle::single(tx)
    };
    // Three consecutive watchdog trips on core 0 quarantine it. (Cores
    // are assigned lowest-idle-first, so each trip lands on core 0.)
    for _ in 0..3 {
        match device.pre_execute(&mut user, &spin_bundle()) {
            Err(ServiceError::Hevm(HevmAbort::Watchdog { .. })) => {}
            other => panic!("expected Hevm(Watchdog), got {other:?}"),
        }
    }

    // Core 1 still serves honest bundles.
    let report = device.pre_execute(&mut user, &erc20_transfer_bundle()).unwrap();
    assert!(report.results[0].success);

    // Three more trips quarantine core 1 too: the device reports it.
    for _ in 0..3 {
        match device.pre_execute(&mut user, &spin_bundle()) {
            Err(ServiceError::Hevm(HevmAbort::Watchdog { .. })) => {}
            other => panic!("expected Hevm(Watchdog), got {other:?}"),
        }
    }
    match device.pre_execute(&mut user, &erc20_transfer_bundle()) {
        Err(ServiceError::AllCoresQuarantined) => {}
        other => panic!("expected AllCoresQuarantined, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Full-node block feed (A1/A6)
// ---------------------------------------------------------------------

fn feed_with_block() -> BlockFeed {
    let mut node = Node::new(genesis(), Env::default());
    node.produce_block(vec![Transaction::transfer(alice(), bob(), U256::from(500u64))]);
    BlockFeed::new(node)
}

#[test]
fn transient_node_outage_recovered_by_backoff_retries() {
    let mut device = small_service(SecurityConfig::Full);
    let mut feed = feed_with_block();
    let plan = FaultPlan::new(41, device.clock());
    plan.arm(FaultSite::NodeFeed, &[FaultKind::Unavailable], 1, 3);
    feed.arm_faults(plan.clone());

    let before = device.clock().now();
    device.sync_from_feed(&mut feed).unwrap();
    assert_eq!(plan.injected(), 3, "three fetches dropped before success");
    // Deterministic capped backoff on the virtual clock: 2 + 4 + 8 ms.
    assert!(device.clock().now() - before >= 14_000_000);
    assert_eq!(device.head(), Some(feed.node().head().unwrap().header.hash()));
}

#[test]
fn persistent_node_outage_reported_after_retries() {
    let mut device = small_service(SecurityConfig::Full);
    let mut feed = feed_with_block();
    let plan = FaultPlan::new(42, device.clock());
    plan.arm(FaultSite::NodeFeed, &[FaultKind::Unavailable], 1, 64);
    feed.arm_faults(plan.clone());

    match device.sync_from_feed(&mut feed) {
        Err(ServiceError::NodeUnavailable) => {}
        other => panic!("expected NodeUnavailable, got {other:?}"),
    }
    assert_eq!(device.head(), None, "failed sync must not advance the head");

    // Outage over: the next sync succeeds.
    plan.disarm(FaultSite::NodeFeed);
    device.sync_from_feed(&mut feed).unwrap();
    assert!(device.head().is_some());
}

#[test]
fn forged_feed_responses_rejected_with_typed_errors() {
    let cases: &[(FaultKind, fn(&ServiceError) -> bool)] = &[
        (FaultKind::BadProof, |e| matches!(e, ServiceError::BadDelta(_))),
        (FaultKind::ContentLie, |e| {
            matches!(e, ServiceError::BadDelta(tape_node::DeltaError::ContentMismatch(_)))
        }),
        (FaultKind::HeaderMismatch, |e| matches!(e, ServiceError::HeaderMismatch)),
    ];
    for (seed, (kind, is_expected)) in cases.iter().enumerate() {
        let mut device = small_service(SecurityConfig::Full);
        let mut feed = feed_with_block();
        let plan = FaultPlan::new(50 + seed as u64, device.clock());
        plan.arm(FaultSite::NodeFeed, &[*kind], 1, 1);
        feed.arm_faults(plan);

        let err = device.sync_from_feed(&mut feed).unwrap_err();
        assert!(is_expected(&err), "{kind:?}: unexpected error {err:?}");
        assert_eq!(device.head(), None, "{kind:?}: forged sync advanced the head");

        // The forgery budget is spent; the honest retry applies cleanly.
        device.sync_from_feed(&mut feed).unwrap();
        assert_eq!(device.head(), Some(feed.node().head().unwrap().header.hash()));
    }
}

// ---------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------

#[test]
fn same_seed_produces_identical_fault_schedule_and_outcomes() {
    fn run() -> (Vec<tape_sim::fault::FaultEvent>, Vec<String>) {
        let (mut device, plan) = armed_service(SecurityConfig::Full, 99, |p| {
            p.arm(
                FaultSite::Channel,
                &[FaultKind::ChannelTamper, FaultKind::ChannelDrop, FaultKind::ChannelReplay],
                2,
                8,
            );
        });
        let mut feed = feed_with_block();
        let feed_plan = FaultPlan::new(7, device.clock());
        feed_plan.arm(
            FaultSite::NodeFeed,
            &[FaultKind::BadProof, FaultKind::Unavailable],
            2,
            8,
        );
        feed.arm_faults(feed_plan.clone());

        let mut outcomes = Vec::new();
        let mut user = device.connect_user(b"determinism").unwrap();
        for round in 0..6 {
            let outcome = device.pre_execute(&mut user, &erc20_transfer_bundle());
            // Detected channel attacks revoke the session; re-attest
            // (with a fixed seed) so later rounds keep executing.
            let revoked = matches!(outcome, Err(ServiceError::Channel(_)));
            outcomes.push(format!("bundle {round}: {:?}", outcome.map(|r| r.results)));
            if revoked {
                user = device.connect_user(b"determinism-re").unwrap();
            }
            let sync = device.sync_from_feed(&mut feed);
            outcomes.push(format!("sync {round}: {sync:?}"));
        }
        let mut log = plan.log();
        log.extend(feed_plan.log());
        (log, outcomes)
    }

    let (log_a, outcomes_a) = run();
    let (log_b, outcomes_b) = run();
    assert_eq!(log_a, log_b, "fault schedules diverged across runs");
    assert_eq!(outcomes_a, outcomes_b, "outcomes diverged across runs");
}
