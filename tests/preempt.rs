//! Segmented, preemptible execution through the service and gateway:
//! bounded tail latency for short bundles under gas-bomb saturation,
//! byte-identical receipts across suspend/resume hops, remaining-segment
//! `retry_after` hints, the watchdog's demotion to a per-segment
//! backstop, and the §IV-D segment-lens negative control (checkpoint
//! cover ablation must fail the audit).
//!
//! Everything runs on the deterministic virtual clock, so every
//! latency, hint, and digest below is exact — no flake margins needed.

use hardtape::{
    Bundle, Gateway, GatewayConfig, GatewayError, HarDTape, PreExecOutcome, SecurityConfig,
    ServiceConfig, ServiceError,
};
use std::collections::HashMap;
use tape_evm::{Env, Transaction};
use tape_hevm::HevmAbort;
use tape_primitives::{Address, U256};
use tape_sim::queue::EventLog;
use tape_sim::telemetry::audit::{audit_events, AuditConfig, Violation};
use tape_state::{Account, InMemoryState};
use tape_workload::contracts;

/// Bomb gas budget: large enough that one unsliced bomb dwarfs a short
/// bundle's service time (the tail-latency negative control relies on
/// the contrast).
const BOMB_GAS: u64 = 8_000_000;
const GAS_SLICE: u64 = 100_000;

fn tenant_addr(i: usize) -> Address {
    Address::from_low_u64(0xA100 + i as u64)
}

fn sink_addr(i: usize) -> Address {
    Address::from_low_u64(0xE100 + i as u64)
}

fn bomb_contract() -> Address {
    Address::from_low_u64(0x6A5B)
}

/// Funded tenants (index 0..=3; 3 is the bomber) plus the gas-bomb
/// contract.
fn genesis() -> InMemoryState {
    let mut state = InMemoryState::new();
    for i in 0..4 {
        state.put_account(tenant_addr(i), Account::with_balance(U256::from(u64::MAX)));
    }
    state.put_account(bomb_contract(), Account::with_code(contracts::gasbomb_runtime()));
    state
}

fn transfer_bundle(tenant: usize, step: usize) -> Bundle {
    Bundle::single(Transaction::transfer(
        tenant_addr(tenant),
        sink_addr(tenant),
        U256::from(1 + step as u64),
    ))
}

fn bomb_tx(gas_limit: u64) -> Transaction {
    let mut tx = Transaction::call(
        tenant_addr(3),
        bomb_contract(),
        U256::from(gas_limit / 20).to_be_bytes().to_vec(),
    );
    tx.gas_limit = gas_limit;
    tx
}

fn bomb_bundle() -> Bundle {
    Bundle::single(bomb_tx(BOMB_GAS))
}

/// An `-ES` service (scheduling is under test, not the ORAM) with the
/// given gas slice.
fn service_config(gas_slice: Option<u64>) -> ServiceConfig {
    let mut config =
        ServiceConfig { oram_height: 10, ..ServiceConfig::at_level(SecurityConfig::Es) };
    config.hevm.gas_slice = gas_slice;
    config
}

fn device(gas_slice: Option<u64>) -> HarDTape {
    HarDTape::new(service_config(gas_slice), Env::default(), &genesis())
        .expect("device boots")
}

/// Admit→complete virtual latencies for `sessions`, parsed from the
/// gateway's deterministic event log ("t=<ns> admit/complete
/// session=<s> ticket=<k> ..." lines).
fn latencies(log: &EventLog, sessions: &[u64]) -> Vec<u64> {
    let mut admits: HashMap<u64, u64> = HashMap::new();
    let mut out = Vec::new();
    for line in log.lines() {
        let mut parts = line.split_whitespace();
        let Some(t) = parts
            .next()
            .and_then(|p| p.strip_prefix("t="))
            .and_then(|v| v.parse::<u64>().ok())
        else {
            continue;
        };
        let Some(verb) = parts.next() else { continue };
        let Some(session) = parts
            .next()
            .and_then(|p| p.strip_prefix("session="))
            .and_then(|v| v.parse::<u64>().ok())
        else {
            continue;
        };
        let ticket = parts
            .next()
            .and_then(|p| p.strip_prefix("ticket="))
            .and_then(|v| v.parse::<u64>().ok());
        match (verb, ticket) {
            ("admit", Some(k)) => {
                admits.insert(k, t);
            }
            ("complete", Some(k)) if sessions.contains(&session) => {
                if let Some(&at) = admits.get(&k) {
                    out.push(t - at);
                }
            }
            _ => {}
        }
    }
    out
}

fn p99(mut samples: Vec<u64>) -> u64 {
    assert!(!samples.is_empty(), "p99 of an empty sample set");
    samples.sort_unstable();
    samples[(samples.len() * 99).div_ceil(100) - 1]
}

/// Tail-latency bomb sizing: a short `-ES` bundle costs ~80M virtual ns
/// of fixed service overhead (crypto prologue/epilogue), so the bomb's
/// *execution* must dwarf that for the unsliced negative control to
/// show — 60M gas ≈ 300M ns. The slice is coarser here (2M gas ≈ 10M
/// ns per segment) to keep segment count per bomb moderate.
const TAIL_BOMB_GAS: u64 = 60_000_000;
const TAIL_SLICE: u64 = 2_000_000;

/// One deterministic load schedule: the bomber (connected FIRST, so DRR
/// serves it ahead of honest tenants inside each round — the worst case
/// for honest latency) keeps its queue saturated with gas bombs while
/// three honest tenants each submit ten short bundles. Returns the
/// honest tenants' admit→complete latencies.
fn tail_latency_run(bombs: bool, gas_slice: Option<u64>) -> Vec<u64> {
    let mut gateway = Gateway::new(
        device(gas_slice),
        GatewayConfig { queue_depth: 8, admission_budget: 40, ..GatewayConfig::default() },
    );
    let bomber = gateway.connect(b"tail bomber").expect("attestation succeeds");
    let honest: Vec<u64> = (0..3)
        .map(|i| {
            gateway
                .connect(format!("tail honest {i}").as_bytes())
                .expect("attestation succeeds")
        })
        .collect();

    for step in 0..10usize {
        if bombs {
            // Keep the bomber's queue non-empty (a round retires at most
            // one bomb segment, so one refill per step saturates);
            // tenant-local overload on the refill is expected and fine.
            match gateway.submit(bomber, Bundle::single(bomb_tx(TAIL_BOMB_GAS))) {
                Ok(_) | Err(GatewayError::Overloaded { .. }) => {}
                Err(other) => panic!("unexpected bomber submit error: {other}"),
            }
        }
        for (i, &session) in honest.iter().enumerate() {
            gateway
                .submit(session, transfer_bundle(i, step))
                .expect("honest short bundle admitted");
        }
        gateway.run_round();
    }
    gateway.run_until_idle();
    if bombs && gas_slice.is_some() {
        assert!(gateway.stats().preempted > 0, "bombs never preempted under slicing");
    }
    latencies(gateway.log(), &honest)
}

#[test]
fn short_bundle_p99_stays_flat_under_gas_bomb_saturation() {
    let baseline = p99(tail_latency_run(false, Some(TAIL_SLICE)));
    let sliced = p99(tail_latency_run(true, Some(TAIL_SLICE)));
    // The ISSUE acceptance bound: honest p99 under one saturating bomb
    // tenant stays within 2x the no-adversary baseline.
    assert!(
        sliced <= 2 * baseline,
        "sliced p99 {sliced} exceeds 2x baseline {baseline}"
    );
    // Negative control: with slicing off, the same bombs monopolize a
    // core for whole-bundle durations and blow the honest tail — the
    // bound above is not vacuous.
    let unsliced = p99(tail_latency_run(true, None));
    assert!(
        unsliced > 2 * baseline,
        "unsliced p99 {unsliced} should blow the 2x bound over baseline {baseline}"
    );
}

#[test]
fn preempted_then_resumed_bundle_matches_uninterrupted_receipt() {
    // A mixed bundle: short transfer, gas bomb, short transfer — the
    // resume path must cross both a mid-transaction checkpoint and
    // completed-transaction boundaries.
    let bundle = Bundle {
        transactions: vec![
            Transaction::transfer(tenant_addr(0), sink_addr(0), U256::from(7u64)),
            bomb_tx(1_000_000),
            Transaction::transfer(tenant_addr(0), sink_addr(0), U256::from(9u64)),
        ],
    };

    let mut plain = device(None);
    let mut user = plain.connect_user(b"receipt user").expect("attestation succeeds");
    let expected = plain.pre_execute(&mut user, &bundle).expect("uninterrupted run");

    // Drive every pause through the public suspend/resume API, as the
    // gateway does between DRR rounds.
    let mut sliced = device(Some(GAS_SLICE));
    let mut user = sliced.connect_user(b"receipt user").expect("attestation succeeds");
    let mut outcome = sliced
        .pre_execute_preemptible(&mut user, &bundle, None)
        .expect("first segment runs");
    let mut pauses = 0u32;
    let actual = loop {
        match outcome {
            PreExecOutcome::Done(report) => break report,
            PreExecOutcome::Preempted(pause) => {
                pauses += 1;
                assert!(pause.remaining_gas(&bundle) > 0, "a pause must have work left");
                outcome = sliced
                    .pre_execute_preemptible(&mut user, &bundle, Some(pause))
                    .expect("resumed segment runs");
            }
        }
    };
    assert!(pauses >= 5, "a 1M-gas bomb over 100k slices must pause repeatedly: {pauses}");
    assert_eq!(expected.results, actual.results);
    assert_eq!(
        expected.encode(),
        actual.encode(),
        "preempted receipt must be byte-identical to the uninterrupted one"
    );
    // The bomb burned its limit and failed; the transfers around it
    // succeeded — same shape in both receipts.
    assert!(actual.results[0].success && actual.results[2].success);
    assert!(!actual.results[1].success);
    assert_eq!(actual.results[1].gas_used, 1_000_000);
}

#[test]
fn retry_hints_shrink_as_preempted_bombs_near_completion() {
    // One core and a bomb-only backlog: the hint must track the
    // *remaining-segment* estimate down as segments retire, even though
    // the queue length never changes.
    let mut config = service_config(Some(GAS_SLICE));
    config.hevm_count = 1;
    let mut gateway = Gateway::new(
        HarDTape::new(config, Env::default(), &genesis()).expect("device boots"),
        GatewayConfig { queue_depth: 4, admission_budget: 4, ..GatewayConfig::default() },
    );
    let bomber = gateway.connect(b"hint bomber").expect("attestation succeeds");
    for _ in 0..4 {
        gateway.submit(bomber, bomb_bundle()).expect("bomb admitted");
    }
    let mut reject_hint = |gateway: &mut Gateway| -> u64 {
        match gateway.submit(bomber, bomb_bundle()) {
            Err(GatewayError::Overloaded { retry_after }) => retry_after,
            other => panic!("expected Overloaded, got {other:?}"),
        }
    };

    let hint_fresh = reject_hint(&mut gateway);
    gateway.run_round(); // head bomb runs one segment, re-queues paused
    assert_eq!(gateway.queued(), 4, "preempted bomb re-queued, not completed");
    let hint_one_segment = reject_hint(&mut gateway);
    gateway.run_round();
    assert_eq!(gateway.queued(), 4);
    let hint_two_segments = reject_hint(&mut gateway);

    assert!(
        hint_fresh > hint_one_segment && hint_one_segment > hint_two_segments,
        "hints must shrink with remaining segments: \
         {hint_fresh} -> {hint_one_segment} -> {hint_two_segments}"
    );
    assert!(hint_two_segments > 0, "a shrinking hint must stay usable");
    assert!(gateway.stats().preempted >= 2, "both rounds must have preempted a bomb");
}

#[test]
fn watchdog_is_a_per_segment_backstop_through_the_service() {
    // A watchdog budget far below one whole bomb but far above one
    // segment: unsliced execution trips it (runaway core reclaimed),
    // sliced execution completes — the watchdog now bounds *segments*.
    let watchdog = Some(3_000_000);

    let mut config = service_config(None);
    config.hevm.watchdog_ns = watchdog;
    let mut unsliced =
        HarDTape::new(config, Env::default(), &genesis()).expect("device boots");
    let mut user = unsliced.connect_user(b"watchdog user").expect("attestation succeeds");
    let err = unsliced
        .pre_execute(&mut user, &Bundle::single(bomb_tx(2_000_000)))
        .expect_err("a whole 2M-gas bomb must out-run a 3ms watchdog");
    assert!(
        matches!(err, ServiceError::Hevm(HevmAbort::Watchdog { .. })),
        "expected a watchdog abort, got {err:?}"
    );

    let mut config = service_config(Some(GAS_SLICE));
    config.hevm.watchdog_ns = watchdog;
    let mut sliced = HarDTape::new(config, Env::default(), &genesis()).expect("device boots");
    let mut user = sliced.connect_user(b"watchdog user").expect("attestation succeeds");
    let report = sliced
        .pre_execute(&mut user, &Bundle::single(bomb_tx(2_000_000)))
        .expect("no single 100k-gas segment can trip the watchdog");
    // The bomb still burns its whole budget (out-of-gas, not success) —
    // the watchdog no longer fires on long-but-live executions.
    assert!(!report.results[0].success);
    assert_eq!(report.results[0].gas_used, 2_000_000);
}

#[test]
fn checkpoint_cover_ablation_fails_the_segment_audit() {
    // Positive control: with checkpoint cover on (default), a preempted
    // bundle's telemetry passes the §IV-D audit, segment lens included.
    let mut covered = device(Some(GAS_SLICE));
    let mut user = covered.connect_user(b"cover user").expect("attestation succeeds");
    covered
        .pre_execute(&mut user, &Bundle::single(bomb_tx(1_000_000)))
        .expect("covered run completes");
    let telemetry = covered.telemetry().clone();
    let report =
        audit_events(&telemetry.events(), telemetry.dropped(), &AuditConfig::default());
    assert!(report.passed(), "covered checkpoints must pass: {:?}", report.violations);
    assert!(report.stats.segments > 0, "the sliced bomb must have yielded");
    assert!(report.stats.segment_cover_swaps > 0, "cover traffic must be on the bus");

    // Negative control (the ISSUE's ablation): same run with checkpoint
    // cover skipped — frames are captured silently in-enclave, and the
    // audit must flag every advertised-but-uncovered checkpoint.
    let mut ablated = device(Some(GAS_SLICE));
    ablated.set_checkpoint_ablation(true);
    let mut user = ablated.connect_user(b"ablation user").expect("attestation succeeds");
    ablated
        .pre_execute(&mut user, &Bundle::single(bomb_tx(1_000_000)))
        .expect("ablated run still completes");
    let telemetry = ablated.telemetry().clone();
    let report =
        audit_events(&telemetry.events(), telemetry.dropped(), &AuditConfig::default());
    assert!(!report.passed(), "uncovered checkpoints must fail the audit");
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::CheckpointUncovered { .. })),
        "expected CheckpointUncovered, got {:?}",
        report.violations
    );
}

#[test]
fn preempted_bomb_completes_exactly_once_through_the_gateway() {
    let mut gateway = Gateway::new(
        device(Some(GAS_SLICE)),
        GatewayConfig { queue_depth: 4, admission_budget: 8, ..GatewayConfig::default() },
    );
    let bomber = gateway.connect(b"once bomber").expect("attestation succeeds");
    let honest = gateway.connect(b"once honest").expect("attestation succeeds");
    let bomb_ticket = gateway.submit(bomber, bomb_bundle()).expect("bomb admitted");
    let honest_ticket =
        gateway.submit(honest, transfer_bundle(0, 0)).expect("transfer admitted");

    let completions = gateway.run_until_idle();
    assert_eq!(completions.len(), 2, "one completion per admitted bundle");
    let stats = gateway.stats();
    assert!(
        stats.preempted as u64 >= BOMB_GAS / GAS_SLICE / 2,
        "an {BOMB_GAS}-gas bomb must preempt many times, saw {}",
        stats.preempted
    );
    assert_eq!(stats.completed_ok, 2);

    let bomb = completions
        .iter()
        .find(|c| c.ticket == bomb_ticket)
        .expect("bomb completed");
    let report = bomb.outcome.as_ref().expect("bomb bundle serves (tx fails inside)");
    assert!(!report.results[0].success, "the bomb burns out, it does not succeed");
    assert_eq!(report.results[0].gas_used, BOMB_GAS);
    let short = completions
        .iter()
        .find(|c| c.ticket == honest_ticket)
        .expect("short bundle completed");
    assert!(short.outcome.as_ref().expect("short bundle serves").results[0].success);
}
