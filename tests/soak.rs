//! Chaos soak harness for the multi-tenant gateway: hundreds of
//! interleaved bundles from competing tenants, replayed under a seeded
//! [`FaultPlan`], asserting the gateway's overload contract:
//!
//! * every admitted bundle terminates in **exactly one** completion —
//!   a report or a typed error, never a silent drop;
//! * no cross-tenant leakage: a tenant's reports only ever mention that
//!   tenant's accounts;
//! * overload surfaces as `Overloaded { retry_after }`, deadline misses
//!   as `DeadlineExceeded`, feed outages as breaker trips with
//!   staleness-bounded reports;
//! * the whole schedule is deterministic per seed: two runs produce
//!   byte-identical event logs (compared by keccak digest).
//!
//! `scripts/verify.sh --soak` replays the chaos run under three fixed
//! seeds (each twice) and fails on any digest mismatch; the digest is
//! printed as a greppable `SOAK_DIGEST` line for that purpose. Override
//! the default seed with `HARDTAPE_SOAK_SEED=<u64>`.

use hardtape::{
    Bundle, BreakerConfig, Completion, Gateway, GatewayConfig, GatewayError, HarDTape,
    SecurityConfig, ServiceConfig, ServiceError, SyncOutcome,
};
use std::collections::{BTreeMap, BTreeSet};
use tape_evm::{Env, Transaction};
use tape_node::{BlockFeed, BreakerState, FeedSet, FeedSetConfig, Node};
use tape_primitives::{Address, U256};
use tape_sim::fault::{FaultKind, FaultPlan, FaultSite};
use tape_sim::queue::interleave;
use tape_sim::telemetry::audit::{audit_events, AuditConfig};
use tape_state::{Account, InMemoryState};

const TENANTS: usize = 4;

fn tenant_addr(i: usize) -> Address {
    Address::from_low_u64(0xA000 + i as u64)
}

fn sink_addr(i: usize) -> Address {
    Address::from_low_u64(0xE000 + i as u64)
}

/// Genesis with one funded account per tenant. Sinks start empty, so
/// any balance a sink gains traces back to exactly one tenant.
fn soak_genesis() -> InMemoryState {
    let mut state = InMemoryState::new();
    for i in 0..TENANTS {
        state.put_account(tenant_addr(i), Account::with_balance(U256::from(u64::MAX)));
    }
    state
}

fn transfer_bundle(tenant: usize, step: usize) -> Bundle {
    Bundle::single(Transaction::transfer(
        tenant_addr(tenant),
        sink_addr(tenant),
        U256::from(1 + step as u64),
    ))
}

/// A gateway over an `-ES` device (signatures + encryption, no ORAM —
/// the soak exercises scheduling, not the memory hierarchy).
fn soak_gateway(config: GatewayConfig) -> Gateway {
    let service = ServiceConfig { oram_height: 10, ..ServiceConfig::at_level(SecurityConfig::Es) };
    Gateway::new(HarDTape::new(service, Env::default(), &soak_genesis()).expect("device boots"), config)
}

fn soak_feed() -> BlockFeed {
    let mut node = Node::new(soak_genesis(), Env::default());
    node.produce_block(vec![Transaction::transfer(
        tenant_addr(0),
        sink_addr(0),
        U256::from(500u64),
    )]);
    BlockFeed::new(node)
}

/// Three independent feeds over identical nodes (a fresh quorum).
fn soak_feedset() -> FeedSet {
    FeedSet::new(
        (0..3).map(|_| BlockFeed::new(Node::new(soak_genesis(), Env::default()))).collect(),
        FeedSetConfig::default(),
    )
}

/// Produces one identical block on every feed in the set.
fn produce_on_all(feeds: &mut FeedSet, step: u64) {
    for i in 0..feeds.len() {
        feeds.feed_mut(i).expect("feed exists").node_mut().produce_block(vec![
            Transaction::transfer(tenant_addr(0), sink_addr(0), U256::from(500 + step)),
        ]);
    }
}

/// Rewinds every feed to one block and builds a heavier replacement
/// branch of `blocks` blocks, salted by `salt` for per-seed variety.
fn reorg_all(feeds: &mut FeedSet, blocks: u64, salt: u64) {
    for i in 0..feeds.len() {
        let node = feeds.feed_mut(i).expect("feed exists").node_mut();
        assert!(node.revert_to(1), "every soak chain keeps its first block");
        for s in 0..blocks {
            node.produce_block(vec![Transaction::transfer(
                tenant_addr(1),
                sink_addr(1),
                U256::from(700 + salt % 97 + s),
            )]);
        }
    }
}

fn soak_seed() -> u64 {
    match std::env::var("HARDTAPE_SOAK_SEED") {
        Ok(v) => v.parse().expect("HARDTAPE_SOAK_SEED must be a u64"),
        Err(_) => 0xC0FFEE,
    }
}

/// One full chaos run: interleaved submissions from all tenants, armed
/// channel + feed adversaries, periodic breaker-guarded syncs, DRR
/// drains under pressure. Returns `(log digest, per-tenant completion
/// counts)` and asserts the exactly-once and isolation contracts.
fn chaos_run(seed: u64) -> (String, Vec<(u64, usize)>) {
    let mut gateway = soak_gateway(GatewayConfig {
        queue_depth: 6,
        admission_budget: 18,
        ..GatewayConfig::default()
    });

    // Seeded adversaries on both untrusted boundaries: the secure
    // channel (tamper = session revocation, drop = retransmission
    // latency) and the full-node feed (outages that trip retries and,
    // if persistent, the breaker).
    let plan = FaultPlan::new(seed, gateway.device().clock());
    plan.arm(
        FaultSite::Channel,
        &[FaultKind::ChannelTamper, FaultKind::ChannelDrop],
        16,
        6,
    );
    gateway.device_mut().arm_faults(plan.clone());

    let mut feed = soak_feed();
    let feed_plan = FaultPlan::new(seed ^ 0xFEED, gateway.device().clock());
    feed_plan.arm(FaultSite::NodeFeed, &[FaultKind::Unavailable], 2, 12);
    feed.arm_faults(feed_plan.clone());

    let mut sessions = Vec::new();
    // Sessions rotate on revocation; remember every one a tenant held.
    let mut session_owner = BTreeMap::new();
    for i in 0..TENANTS {
        let session = gateway
            .connect(format!("soak tenant {i}").as_bytes())
            .expect("attestation of a fresh tenant succeeds");
        sessions.push(session);
        session_owner.insert(session, i);
    }

    // Per-tenant load, heaviest first: 220 bundles total, interleaved
    // by the seeded shuffle so every run stresses a different order.
    let counts = [90usize, 60, 40, 30];
    let order = interleave(&counts, seed);
    assert_eq!(order.len(), 220);

    let mut admitted = BTreeSet::new();
    let mut rejected = 0usize;
    let mut completions: Vec<Completion> = Vec::new();
    let mut steps = vec![0usize; TENANTS];
    let mut reattests = vec![0usize; TENANTS];

    for (op, &tenant) in order.iter().enumerate() {
        let step = steps[tenant];
        steps[tenant] += 1;
        match gateway.submit(sessions[tenant], transfer_bundle(tenant, step)) {
            Ok(ticket) => {
                assert!(admitted.insert(ticket), "ticket {ticket} issued twice");
            }
            Err(GatewayError::Overloaded { retry_after }) => {
                assert!(retry_after > 0, "overload must carry a usable retry hint");
                rejected += 1;
                // Shed pressure, then retry once — second rejection is
                // accepted as final (typed, accounted, not silent).
                completions.extend(gateway.run_round());
                match gateway.submit(sessions[tenant], transfer_bundle(tenant, step)) {
                    Ok(ticket) => {
                        assert!(admitted.insert(ticket), "ticket {ticket} issued twice");
                    }
                    Err(GatewayError::Overloaded { .. }) => rejected += 1,
                    Err(other) => panic!("unexpected resubmit error: {other}"),
                }
            }
            Err(other) => panic!("unexpected submit error: {other}"),
        }

        // Periodic pressure relief and feed sync; both go through the
        // gateway so they land in the same deterministic event log.
        if op % 4 == 3 {
            completions.extend(gateway.run_round());
        }
        if op % 16 == 15 {
            let _ = gateway.sync(&mut feed);
        }

        // A detected channel attack revokes the session; re-attest with
        // a deterministic seed so the tenant keeps submitting.
        let revoked = completions.iter().any(|c| {
            c.session == sessions[tenant]
                && matches!(c.outcome, Err(GatewayError::Service(ServiceError::Channel(_))))
        });
        if revoked {
            let n = reattests[tenant];
            reattests[tenant] += 1;
            sessions[tenant] = gateway
                .reconnect(sessions[tenant], format!("soak tenant {tenant} re {n}").as_bytes())
                .expect("re-attestation succeeds");
            session_owner.insert(sessions[tenant], tenant);
        }
    }
    completions.extend(gateway.run_until_idle());
    assert_eq!(gateway.queued(), 0, "drain left work queued");

    // Exactly-once: the set of completed tickets IS the set of admitted
    // tickets — nothing lost, nothing duplicated, nothing invented.
    let completed: BTreeSet<u64> = completions.iter().map(|c| c.ticket).collect();
    assert_eq!(completed.len(), completions.len(), "a ticket completed twice");
    assert_eq!(completed, admitted, "admitted and completed tickets diverge");
    let stats = gateway.stats();
    assert_eq!(stats.admitted as usize, admitted.len());
    assert_eq!(stats.rejected_overloaded as usize, rejected);
    assert_eq!(
        stats.completed_ok + stats.completed_err + stats.shed_deadline + stats.shed_reorg,
        stats.admitted,
        "every admitted bundle must be accounted to exactly one outcome"
    );

    // Isolation: a tenant's successful reports only ever touch that
    // tenant's own accounts — overload and interleaving never leak
    // another tenant's state into a report.
    let mut per_tenant = vec![0usize; TENANTS];
    for completion in &completions {
        let tenant = *session_owner
            .get(&completion.session)
            .expect("completion for an unknown session");
        per_tenant[tenant] += 1;
        if let Ok(report) = &completion.outcome {
            let own = [tenant_addr(tenant), sink_addr(tenant)];
            for (addr, _, _) in &report.changes.balances {
                assert!(own.contains(addr), "tenant {tenant} report leaked {addr}");
            }
            for (addr, _, _) in &report.changes.nonces {
                assert!(own.contains(addr), "tenant {tenant} report leaked {addr}");
            }
        }
    }
    for (tenant, &count) in per_tenant.iter().enumerate() {
        assert!(count > 0, "tenant {tenant} starved: no completions at all");
    }

    // Leakage audit over the device's full telemetry stream. On `-ES`
    // the ORAM-query invariants are vacuous, but the swap-noise and
    // truncation checks still bind, and a clean report here pins the
    // auditor's false-positive rate to zero on the soak workload.
    let telemetry = gateway.device().telemetry().clone();
    let report = audit_events(&telemetry.events(), telemetry.dropped(), &AuditConfig::default());
    assert!(
        report.passed(),
        "seed {seed}: leakage audit failed on the soak workload: {:?}",
        report.violations
    );

    // The digest covers both the gateway event log and the telemetry
    // stream — scheduling *and* instrumentation must replay identically.
    let digest = format!("{}:{}", gateway.log().digest(), telemetry.digest());
    let final_sessions = gateway.tenant_queue_stats().iter().map(|s| s.0).collect::<Vec<_>>();
    (digest, final_sessions.into_iter().zip(per_tenant).collect())
}

#[test]
fn chaos_soak_is_deterministic_and_exactly_once() {
    let seed = soak_seed();
    let (digest_a, tenants_a) = chaos_run(seed);
    let (digest_b, tenants_b) = chaos_run(seed);
    assert_eq!(digest_a, digest_b, "seed {seed}: schedules diverged across runs");
    assert_eq!(tenants_a, tenants_b, "seed {seed}: per-tenant outcomes diverged");
    // Greppable witnesses for scripts/verify.sh --soak. The audit is
    // asserted inside `chaos_run`; reaching this line means it passed.
    println!("SOAK_DIGEST seed={seed} digest={digest_a}");
    println!("SOAK_AUDIT seed={seed} passed=1");
}

#[test]
fn full_queue_burst_rejects_with_typed_overload_only() {
    let mut gateway = soak_gateway(GatewayConfig {
        queue_depth: 4,
        admission_budget: 4,
        ..GatewayConfig::default()
    });
    let session = gateway.connect(b"burst tenant").expect("attestation succeeds");

    let mut tickets = BTreeSet::new();
    let mut rejections = Vec::new();
    for step in 0..10 {
        match gateway.submit(session, transfer_bundle(0, step)) {
            Ok(ticket) => {
                tickets.insert(ticket);
            }
            Err(err) => rejections.push(err),
        }
    }
    assert_eq!(tickets.len(), 4, "exactly the queue capacity is admitted");
    assert_eq!(rejections.len(), 6, "everything past capacity is refused");
    for err in &rejections {
        match err {
            GatewayError::Overloaded { retry_after } => {
                assert!(*retry_after > 0, "rejection must say when to come back");
            }
            other => panic!("burst rejection must be Overloaded, got {other}"),
        }
    }

    // Nothing admitted is dropped: the burst drains to exactly the
    // admitted tickets, all successful.
    let completions = gateway.run_until_idle();
    let completed: BTreeSet<u64> = completions.iter().map(|c| c.ticket).collect();
    assert_eq!(completed, tickets);
    for completion in &completions {
        assert!(completion.outcome.is_ok(), "burst bundle failed: {completion:?}");
    }
    // The queue is free again: a new submission is admitted.
    assert!(gateway.submit(session, transfer_bundle(0, 99)).is_ok());
}

#[test]
fn heavy_tenant_cannot_starve_light_tenant() {
    // Quantum 4: the heavy tenant's 4-tx bundles cost a full round of
    // credit, the light tenant's singles cost 1 — DRR serves the light
    // tenant four bundles for every heavy one.
    let mut gateway = soak_gateway(GatewayConfig {
        queue_depth: 8,
        admission_budget: 16,
        quantum: 4,
        ..GatewayConfig::default()
    });
    let heavy = gateway.connect(b"heavy tenant").expect("attestation succeeds");
    let light = gateway.connect(b"light tenant").expect("attestation succeeds");

    for step in 0..8usize {
        let txs: Vec<Transaction> = (0..4usize)
            .map(|k| {
                Transaction::transfer(
                    tenant_addr(0),
                    sink_addr(0),
                    U256::from(1 + (step * 4 + k) as u64),
                )
            })
            .collect();
        gateway
            .submit(heavy, Bundle { transactions: txs })
            .expect("heavy queue has room");
        gateway.submit(light, transfer_bundle(1, step)).expect("light queue has room");
    }

    let completions = gateway.run_until_idle();
    assert_eq!(completions.len(), 16);
    // The light tenant's backlog (8 bundles) drains within two rounds —
    // at most 2 heavy bundles may complete first. Under FIFO-by-arrival
    // the heavy tenant (which enqueued first each step) would have
    // drained all 8 first.
    let light_done = completions
        .iter()
        .rposition(|c| c.session == light)
        .expect("light tenant completed");
    let heavy_before = completions[..light_done]
        .iter()
        .filter(|c| c.session == heavy)
        .count();
    assert!(
        heavy_before <= 2,
        "light tenant waited behind {heavy_before} heavy bundles"
    );
    // No starvation in the other direction either: everything completes.
    assert_eq!(completions.iter().filter(|c| c.session == heavy).count(), 8);
}

#[test]
fn feed_outage_opens_breaker_and_reports_carry_staleness_bounds() {
    let mut gateway = soak_gateway(GatewayConfig {
        breaker: BreakerConfig { failure_threshold: 2, cooldown_ns: 50_000_000 },
        ..GatewayConfig::default()
    });
    let session = gateway.connect(b"stale tenant").expect("attestation succeeds");

    // A healthy sync first, so staleness is measured against a real head.
    let mut feed = soak_feed();
    gateway.sync(&mut feed).expect("honest sync succeeds");
    let attested_head = gateway.device().head().expect("sync set the head");

    // Fresh reports carry no staleness bound.
    let completions = {
        gateway.submit(session, transfer_bundle(0, 0)).expect("admitted");
        gateway.run_until_idle()
    };
    let report = completions[0].outcome.as_ref().expect("bundle succeeds");
    assert!(report.staleness.is_none(), "healthy path must not claim staleness");

    // Persistent outage: enough budget to exhaust every inline retry of
    // two sync attempts, tripping the threshold-2 breaker.
    let plan = FaultPlan::new(7, gateway.device().clock());
    plan.arm(FaultSite::NodeFeed, &[FaultKind::Unavailable], 1, 64);
    feed.arm_faults(plan.clone());
    for _ in 0..2 {
        match gateway.sync(&mut feed) {
            Err(GatewayError::Service(ServiceError::NodeUnavailable)) => {}
            other => panic!("expected NodeUnavailable, got {other:?}"),
        }
    }
    assert_eq!(gateway.breaker_state(), BreakerState::Open);

    // Open breaker: refused without touching the feed (no new injections).
    let injected_before = plan.injected();
    match gateway.sync(&mut feed) {
        Err(GatewayError::FeedBreakerOpen { retry_after }) => assert!(retry_after > 0),
        other => panic!("expected FeedBreakerOpen, got {other:?}"),
    }
    assert_eq!(plan.injected(), injected_before, "open breaker must not probe the feed");

    // Degraded service: bundles still execute, but every report now
    // carries an explicit staleness bound against the last attested head.
    gateway.submit(session, transfer_bundle(0, 1)).expect("admitted while degraded");
    let completions = gateway.run_until_idle();
    let report = completions[0].outcome.as_ref().expect("degraded bundle still serves");
    let bound = report.staleness.expect("degraded report must carry a staleness bound");
    assert_eq!(bound.head, Some(attested_head));
    assert!(bound.age_ns > 0, "age must reflect time since the last sync");
    assert!(gateway.stats().served_stale >= 1);

    // Outage ends; after the cooldown a half-open probe closes the
    // breaker and reports are fresh again.
    plan.disarm(FaultSite::NodeFeed);
    gateway.device().clock().advance(50_000_000);
    assert_eq!(gateway.breaker_state(), BreakerState::HalfOpen);
    gateway.sync(&mut feed).expect("half-open probe succeeds");
    assert_eq!(gateway.breaker_state(), BreakerState::Closed);
    gateway.submit(session, transfer_bundle(0, 2)).expect("admitted");
    let completions = gateway.run_until_idle();
    let report = completions[0].outcome.as_ref().expect("bundle succeeds");
    assert!(report.staleness.is_none(), "recovered path must drop the staleness bound");
}

#[test]
fn expired_bundles_are_shed_at_dequeue_with_typed_errors() {
    let mut gateway = soak_gateway(GatewayConfig {
        deadline_ns: 1_000_000, // 1 virtual ms: nothing queued survives a stall
        ..GatewayConfig::default()
    });
    let session = gateway.connect(b"deadline tenant").expect("attestation succeeds");

    let mut tickets = BTreeSet::new();
    for step in 0..3 {
        tickets.insert(gateway.submit(session, transfer_bundle(0, step)).expect("admitted"));
    }
    // The gateway stalls past every deadline (an operator pause, a long
    // sync — any virtual-time gap).
    gateway.device().clock().advance(2_000_000);

    let completions = gateway.run_until_idle();
    assert_eq!(completions.len(), 3, "shed bundles still complete (typed)");
    for completion in &completions {
        match &completion.outcome {
            Err(GatewayError::DeadlineExceeded { admitted_at, deadline, now }) => {
                assert!(tickets.remove(&completion.ticket), "unknown ticket shed");
                assert_eq!(*deadline, admitted_at + 1_000_000);
                assert!(now > deadline, "shed before the deadline actually passed");
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }
    assert!(tickets.is_empty(), "every admitted ticket was shed exactly once");
    assert_eq!(gateway.stats().shed_deadline, 3);
    assert_eq!(gateway.stats().completed_ok, 0, "no expired bundle reached a core");

    // Fresh work after the stall is admitted and served normally.
    gateway.submit(session, transfer_bundle(0, 9)).expect("admitted after stall");
    let completions = gateway.run_until_idle();
    assert!(completions[0].outcome.is_ok());
}

#[test]
fn tenant_local_rejection_hints_shrink_as_the_backlog_drains() {
    use tape_sim::telemetry::{CounterId, TelemetryEvent};

    // One core makes the hint arithmetic exact — hint = queued_total ×
    // per-bundle estimate — so a drained backlog must shrink the hint.
    let service = ServiceConfig {
        oram_height: 10,
        hevm_count: 1,
        ..ServiceConfig::at_level(SecurityConfig::Es)
    };
    let mut gateway = Gateway::new(
        HarDTape::new(service, Env::default(), &soak_genesis()).expect("device boots"),
        GatewayConfig { queue_depth: 4, admission_budget: 24, ..GatewayConfig::default() },
    );
    let victim = gateway.connect(b"hint tenant A").expect("attestation succeeds");
    let other = gateway.connect(b"hint tenant B").expect("attestation succeeds");

    // Fill the victim's queue (depth 4) plus backlog from the other
    // tenant; the global budget (24) stays clear, so every rejection
    // below is tenant-local, not an admission-budget refusal.
    for step in 0..4 {
        gateway.submit(victim, transfer_bundle(0, step)).expect("victim queue has room");
        gateway.submit(other, transfer_bundle(1, step)).expect("other queue has room");
    }
    let reject_hint = |gateway: &mut Gateway, step: usize| -> u64 {
        match gateway.submit(victim, transfer_bundle(0, step)) {
            Err(GatewayError::Overloaded { retry_after }) => retry_after,
            other => panic!("expected tenant-local Overloaded, got {other:?}"),
        }
    };
    let hint_full = reject_hint(&mut gateway, 90);
    assert!(hint_full > 0, "tenant-local rejection must carry a nonzero hint");

    // Drain one DRR round (one bundle per tenant), refill only the
    // victim's queue: the rejection now sees a smaller global backlog.
    assert!(!gateway.run_round().is_empty(), "round must serve queued work");
    gateway.submit(victim, transfer_bundle(0, 91)).expect("readmitted after drain");
    let hint_drained = reject_hint(&mut gateway, 92);

    // And again: the other tenant's backlog keeps draining while the
    // victim's queue is held full, so the hint keeps falling.
    assert!(!gateway.run_round().is_empty(), "round must serve queued work");
    gateway.submit(victim, transfer_bundle(0, 93)).expect("readmitted after drain");
    let hint_drained_more = reject_hint(&mut gateway, 94);

    assert!(
        hint_full > hint_drained && hint_drained > hint_drained_more,
        "hints must shrink with the backlog: {hint_full} -> {hint_drained} -> {hint_drained_more}"
    );
    assert!(hint_drained_more > 0, "a shrinking hint must stay usable (nonzero)");

    // The telemetry stream saw every rejection, flagged tenant-local.
    let telemetry = gateway.device().telemetry().clone();
    assert_eq!(telemetry.counter(CounterId::GwRejected), 3);
    let tenant_local_rejects = telemetry
        .events()
        .iter()
        .filter(|e| matches!(e, TelemetryEvent::Reject { tenant_local: true, .. }))
        .count();
    assert_eq!(tenant_local_rejects, 3, "rejections must be recorded as tenant-local");
}

#[test]
fn reorged_pins_are_revalidated_and_fork_point_reaches_degraded_reports() {
    let mut gateway = soak_gateway(GatewayConfig {
        breaker: BreakerConfig { failure_threshold: 2, cooldown_ns: 50_000_000 },
        ..GatewayConfig::default()
    });
    let session = gateway.connect(b"reorg tenant").expect("attestation succeeds");
    let mut feeds = soak_feedset();
    produce_on_all(&mut feeds, 0);
    gateway.sync_set(&mut feeds).expect("first quorum sync succeeds");
    produce_on_all(&mut feeds, 1);
    gateway.sync_set(&mut feeds).expect("extension sync succeeds");
    let pinned_head = gateway.device().head().expect("sync set the head");

    // Queue a bundle against the current head — and leave it queued
    // while the chain underneath it is rewritten.
    let ticket = gateway.submit(session, transfer_bundle(0, 0)).expect("admitted");

    // Every feed adopts a heavier branch forking one block down.
    reorg_all(&mut feeds, 2, 0);
    let sync = gateway.sync_set(&mut feeds).expect("quorum resolves the reorg");
    let SyncOutcome::Reorged { fork, ref orphaned, .. } = sync.outcome else {
        panic!("expected a reorg, got {:?}", sync.outcome);
    };
    assert!(orphaned.contains(&pinned_head), "the pinned head was orphaned");
    assert_eq!(sync.revalidated, vec![ticket], "queued bundle re-validated, not shed");
    assert!(sync.shed.is_empty(), "revalidation policy sheds nothing");
    assert_eq!(gateway.last_fork(), Some(fork));

    // A persistent outage opens the breaker (two failed quorum syncs).
    for i in 0..feeds.len() {
        let plan = FaultPlan::new(21 + i as u64, gateway.device().clock());
        plan.arm(FaultSite::NodeFeed, &[FaultKind::Unavailable], 1, 64);
        feeds.feed_mut(i).expect("feed exists").arm_faults(plan);
    }
    for _ in 0..2 {
        match gateway.sync_set(&mut feeds) {
            Err(GatewayError::Service(ServiceError::NodeUnavailable)) => {}
            other => panic!("expected NodeUnavailable, got {other:?}"),
        }
    }
    assert_eq!(gateway.breaker_state(), BreakerState::Open);

    // The pre-reorg bundle finally executes, degraded: its report's
    // staleness bound carries the fork point — the user learns both how
    // old the head is and that the chain behind it was rewritten.
    let completions = gateway.run_until_idle();
    let completion = completions
        .iter()
        .find(|c| c.ticket == ticket)
        .expect("queued bundle completes exactly once");
    let report = completion.outcome.as_ref().expect("revalidated bundle executes");
    let bound = report.staleness.expect("degraded report must carry a staleness bound");
    assert_eq!(bound.head, gateway.device().head());
    assert_eq!(bound.fork_point, Some(fork), "fork point survives queueing into the report");

    let stats = gateway.stats();
    assert_eq!(stats.shed_reorg, 0);
    assert_eq!(
        stats.completed_ok + stats.completed_err + stats.shed_deadline + stats.shed_reorg,
        stats.admitted,
        "exactly-once must hold across the reorg"
    );
}

#[test]
fn reorged_pins_are_shed_with_typed_errors_when_revalidation_is_off() {
    let mut gateway = soak_gateway(GatewayConfig {
        revalidate_on_reorg: false,
        ..GatewayConfig::default()
    });
    let session = gateway.connect(b"shed tenant").expect("attestation succeeds");
    let mut feeds = soak_feedset();
    produce_on_all(&mut feeds, 0);
    gateway.sync_set(&mut feeds).expect("first quorum sync succeeds");
    produce_on_all(&mut feeds, 1);
    gateway.sync_set(&mut feeds).expect("extension sync succeeds");
    let pinned_head = gateway.device().head().expect("sync set the head");

    let tickets = [
        gateway.submit(session, transfer_bundle(0, 0)).expect("admitted"),
        gateway.submit(session, transfer_bundle(0, 1)).expect("admitted"),
    ];

    reorg_all(&mut feeds, 2, 1);
    let sync = gateway.sync_set(&mut feeds).expect("quorum resolves the reorg");
    let SyncOutcome::Reorged { fork, .. } = sync.outcome else {
        panic!("expected a reorg, got {:?}", sync.outcome);
    };
    assert!(sync.revalidated.is_empty(), "shed policy re-validates nothing");
    assert_eq!(sync.shed.len(), 2, "both queued bundles shed");
    for completion in &sync.shed {
        assert!(tickets.contains(&completion.ticket));
        match &completion.outcome {
            Err(GatewayError::PinnedHeadReorged { pinned, fork: shed_fork }) => {
                assert_eq!(*pinned, pinned_head);
                assert_eq!(*shed_fork, fork);
            }
            other => panic!("expected PinnedHeadReorged, got {other:?}"),
        }
    }
    assert_eq!(gateway.queued(), 0, "shed bundles freed their queue slots");
    let stats = gateway.stats();
    assert_eq!(stats.shed_reorg, 2);
    assert_eq!(
        stats.completed_ok + stats.completed_err + stats.shed_deadline + stats.shed_reorg,
        stats.admitted,
        "every admitted bundle is accounted to exactly one outcome"
    );

    // The gateway is fully operational on the new branch.
    gateway.submit(session, transfer_bundle(0, 2)).expect("admitted after the reorg");
    let completions = gateway.run_until_idle();
    assert!(completions.iter().all(|c| c.outcome.is_ok()));
}

/// One seeded chaos run with a mid-schedule depth-3 reorg: interleaved
/// submissions, periodic quorum syncs, the reorg shedding pinned work
/// (revalidation off, so the typed shed path lands in the digest), and
/// a full drain. Returns the combined schedule + telemetry digest.
fn reorg_chaos_run(seed: u64) -> String {
    let mut gateway = soak_gateway(GatewayConfig {
        queue_depth: 6,
        admission_budget: 18,
        revalidate_on_reorg: false,
        ..GatewayConfig::default()
    });
    let mut feeds = soak_feedset();
    let mut sessions = Vec::new();
    for i in 0..TENANTS {
        sessions.push(
            gateway
                .connect(format!("reorg soak tenant {i}").as_bytes())
                .expect("attestation succeeds"),
        );
    }

    let counts = [30usize, 24, 18, 12];
    let order = interleave(&counts, seed);
    let mut steps = vec![0usize; TENANTS];
    let mut completions: Vec<Completion> = Vec::new();
    let mut produced = 0u64;
    let mut reorged = false;

    for (op, &tenant) in order.iter().enumerate() {
        let step = steps[tenant];
        steps[tenant] += 1;
        match gateway.submit(sessions[tenant], transfer_bundle(tenant, step)) {
            Ok(_) => {}
            Err(GatewayError::Overloaded { .. }) => {
                completions.extend(gateway.run_round());
            }
            Err(other) => panic!("unexpected submit error: {other}"),
        }
        if op % 5 == 4 {
            completions.extend(gateway.run_round());
        }
        if op % 12 == 11 && produced < 4 {
            produced += 1;
            produce_on_all(&mut feeds, produced);
            gateway.sync_set(&mut feeds).expect("quorum sync succeeds");
        }
        if op == 60 && !reorged {
            reorged = true;
            // Depth-3 rewrite: blocks 2..4 abandoned for a heavier branch.
            reorg_all(&mut feeds, 5, seed);
            let sync = gateway.sync_set(&mut feeds).expect("reorg sync succeeds");
            match sync.outcome {
                SyncOutcome::Reorged { depth, .. } => assert_eq!(depth, 3),
                other => panic!("schedule must produce a depth-3 reorg, got {other:?}"),
            }
            completions.extend(sync.shed);
        }
    }
    completions.extend(gateway.run_until_idle());
    assert!(reorged, "the schedule must have hit the reorg point");

    // Exactly-once across the reorg: admitted = ok + err + shed
    // (deadline and reorg), and no ticket completes twice.
    let stats = gateway.stats();
    assert_eq!(
        stats.completed_ok + stats.completed_err + stats.shed_deadline + stats.shed_reorg,
        stats.admitted,
        "seed {seed}: exactly-once broke across the reorg"
    );
    let tickets: BTreeSet<u64> = completions.iter().map(|c| c.ticket).collect();
    assert_eq!(tickets.len(), completions.len(), "seed {seed}: a ticket completed twice");
    assert_eq!(stats.admitted as usize, completions.len(), "seed {seed}: lost completions");

    format!("{}:{}", gateway.log().digest(), gateway.device().telemetry().digest())
}

#[test]
fn seeded_reorg_schedule_is_deterministic_and_exactly_once() {
    let seed = soak_seed();
    let digest_a = reorg_chaos_run(seed);
    let digest_b = reorg_chaos_run(seed);
    assert_eq!(digest_a, digest_b, "seed {seed}: reorg schedules diverged across runs");
    // Greppable witness for scripts/verify.sh --soak.
    println!("REORG_DIGEST seed={seed} digest={digest_a}");
}

const BOMB_GAS: u64 = 2_000_000;

fn bomb_contract() -> Address {
    Address::from_low_u64(0x6A5B)
}

/// Soak genesis plus the gas-bomb contract and a funded bomb tenant.
fn preempt_genesis() -> InMemoryState {
    let mut state = soak_genesis();
    state.put_account(
        bomb_contract(),
        Account::with_code(tape_workload::contracts::gasbomb_runtime()),
    );
    state.put_account(tenant_addr(TENANTS), Account::with_balance(U256::from(u64::MAX)));
    state
}

/// A saturating gas bomb from the adversarial tenant (index `TENANTS`):
/// well-formed, burns its entire 2M-gas budget in a compute loop.
fn bomb_bundle() -> Bundle {
    let mut tx = Transaction::call(
        tenant_addr(TENANTS),
        bomb_contract(),
        U256::from(BOMB_GAS / 20).to_be_bytes().to_vec(),
    );
    tx.gas_limit = BOMB_GAS;
    Bundle::single(tx)
}

/// One seeded preemption chaos run: three honest tenants submitting
/// short transfer bundles interleaved with one adversarial tenant whose
/// gas bombs are drawn from a seeded [`FaultPlan`] at the new
/// [`FaultSite::Tenant`] site. The device runs with a 100k gas slice,
/// so every bomb yields repeatedly and re-queues with its checkpoint.
/// Asserts exactly-once across preemptions, that bombs actually
/// preempted, and that the §IV-D audit (segment lens included) passes;
/// returns the combined schedule + telemetry digest.
fn preempt_chaos_run(seed: u64) -> String {
    let mut service =
        ServiceConfig { oram_height: 10, ..ServiceConfig::at_level(SecurityConfig::Es) };
    service.hevm.gas_slice = Some(100_000);
    let mut gateway = Gateway::new(
        HarDTape::new(service, Env::default(), &preempt_genesis()).expect("device boots"),
        GatewayConfig { queue_depth: 6, admission_budget: 24, ..GatewayConfig::default() },
    );

    // The gas-bomb adversary: a seeded tenant-site plan decides, per
    // adversarial submission slot, whether the bomb tenant attacks or
    // behaves (an honest transfer).
    let plan = FaultPlan::new(seed ^ 0xB04B, gateway.device().clock());
    plan.arm(FaultSite::Tenant, &[FaultKind::GasBomb], 2, 24);

    let mut sessions = Vec::new();
    for i in 0..3 {
        sessions.push(
            gateway
                .connect(format!("preempt soak tenant {i}").as_bytes())
                .expect("attestation succeeds"),
        );
    }
    let bomber = gateway.connect(b"preempt soak bomber").expect("attestation succeeds");

    let counts = [36usize, 27, 18];
    let order = interleave(&counts, seed);
    let mut steps = vec![0usize; 3];
    let mut bomb_steps = 0usize;
    let mut completions: Vec<Completion> = Vec::new();

    for (op, &tenant) in order.iter().enumerate() {
        let step = steps[tenant];
        steps[tenant] += 1;
        match gateway.submit(sessions[tenant], transfer_bundle(tenant, step)) {
            Ok(_) => {}
            Err(GatewayError::Overloaded { retry_after }) => {
                assert!(retry_after > 0, "overload must carry a usable retry hint");
                completions.extend(gateway.run_round());
            }
            Err(other) => panic!("unexpected submit error: {other}"),
        }
        // Every third op the adversarial tenant submits: a gas bomb when
        // the seeded plan fires, an honest transfer otherwise.
        if op % 3 == 2 {
            let attack = plan.decide(FaultSite::Tenant).is_some();
            let bundle = if attack {
                bomb_bundle()
            } else {
                bomb_steps += 1;
                Bundle::single(Transaction::transfer(
                    tenant_addr(TENANTS),
                    sink_addr(TENANTS),
                    U256::from(bomb_steps as u64),
                ))
            };
            match gateway.submit(bomber, bundle) {
                Ok(_) | Err(GatewayError::Overloaded { .. }) => {}
                Err(other) => panic!("unexpected bomber submit error: {other}"),
            }
        }
        if op % 4 == 3 {
            completions.extend(gateway.run_round());
        }
    }
    completions.extend(gateway.run_until_idle());
    assert_eq!(gateway.queued(), 0, "drain left work queued");

    // Exactly-once must survive preemption: a bundle that yielded N
    // times still resolves to exactly one completion, and every
    // admitted ticket is accounted to exactly one outcome.
    let stats = gateway.stats();
    assert!(stats.preempted > 0, "seed {seed}: no bomb was ever preempted");
    let tickets: BTreeSet<u64> = completions.iter().map(|c| c.ticket).collect();
    assert_eq!(tickets.len(), completions.len(), "seed {seed}: a ticket completed twice");
    assert_eq!(stats.admitted as usize, completions.len(), "seed {seed}: lost completions");
    assert_eq!(
        stats.completed_ok + stats.completed_err + stats.shed_deadline + stats.shed_reorg,
        stats.admitted,
        "seed {seed}: exactly-once broke under preemption"
    );

    // The §IV-D audit — segment-boundary lens included — must hold on
    // the preempted stream: every advertised checkpoint is covered.
    let telemetry = gateway.device().telemetry().clone();
    let report = audit_events(&telemetry.events(), telemetry.dropped(), &AuditConfig::default());
    assert!(
        report.passed(),
        "seed {seed}: leakage audit failed under preemption: {:?}",
        report.violations
    );
    assert!(report.stats.segments > 0, "seed {seed}: audit saw no segment windows");

    format!("{}:{}", gateway.log().digest(), telemetry.digest())
}

#[test]
fn seeded_preemption_schedule_is_deterministic_and_exactly_once() {
    let seed = soak_seed();
    let digest_a = preempt_chaos_run(seed);
    let digest_b = preempt_chaos_run(seed);
    assert_eq!(digest_a, digest_b, "seed {seed}: preemption schedules diverged across runs");
    // Greppable witness for scripts/verify.sh --soak.
    println!("PREEMPT_DIGEST seed={seed} digest={digest_a}");
}
