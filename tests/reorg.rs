//! Acceptance tests for reorg-aware Byzantine block sync (paper step 11
//! under threats A1/A6): a depth-3 reorg served by a 2-of-3 quorum with
//! one equivocating feed must roll the world state back to the verified
//! fork point, replay the winning branch through the normal ORAM sync
//! path, and leave the device byte-identical — receipt and all — to a
//! device that only ever saw the winning chain. The telemetry auditor's
//! reorg lens (§IV-D) must pass over the rollback window, and the
//! mirror-only ablation (rollback applied *outside* the ORAM path) must
//! fail it.

use hardtape::{
    Bundle, ForkPoint, HarDTape, SecurityConfig, ServiceConfig, ServiceError, SyncOutcome,
};
use tape_evm::{Env, Transaction};
use tape_node::{BlockFeed, FeedSet, FeedSetConfig, Node, QuarantineReason};
use tape_primitives::{Address, U256};
use tape_sim::fault::{FaultKind, FaultPlan, FaultSite};
use tape_sim::telemetry::audit::{audit_events, AuditConfig, Violation};
use tape_sim::telemetry::CounterId;
use tape_state::{Account, InMemoryState};

fn payer() -> Address {
    Address::from_low_u64(0xFEE0)
}

fn user() -> Address {
    Address::from_low_u64(0x1000)
}

fn genesis() -> InMemoryState {
    let mut state = InMemoryState::new();
    state.put_account(payer(), Account::with_balance(U256::from(u64::MAX)));
    state.put_account(user(), Account::with_balance(U256::from(u64::MAX)));
    state
}

/// Branch A (the chain that gets orphaned): one transfer per block.
fn branch_a_txs(h: u64) -> Vec<Transaction> {
    vec![Transaction::transfer(payer(), Address::from_low_u64(0xB000 + h), U256::from(100 + h))]
}

/// Branch B (the winning branch): different recipients and values, so
/// the two branches produce genuinely different world states.
fn branch_b_txs(h: u64) -> Vec<Transaction> {
    vec![Transaction::transfer(payer(), Address::from_low_u64(0xC000 + h), U256::from(900 + h))]
}

fn full_device() -> HarDTape {
    HarDTape::new(
        ServiceConfig { oram_height: 10, ..ServiceConfig::at_level(SecurityConfig::Full) },
        Env::default(),
        &genesis(),
    )
    .expect("device boots")
}

fn three_feeds() -> FeedSet {
    FeedSet::new(
        (0..3).map(|_| BlockFeed::new(Node::new(genesis(), Env::default()))).collect(),
        FeedSetConfig::default(),
    )
}

/// Grows branch A on every feed and syncs the device after each block.
fn grow_branch_a(device: &mut HarDTape, feeds: &mut FeedSet, blocks: u64) {
    for h in 1..=blocks {
        for i in 0..feeds.len() {
            feeds.feed_mut(i).expect("feed exists").node_mut().produce_block(branch_a_txs(h));
        }
        let outcome = device.sync_from_feeds(feeds).expect("honest quorum sync succeeds");
        assert_eq!(outcome, SyncOutcome::Advanced { blocks: 1 });
    }
}

/// Rewinds feed `i` to one block and produces `blocks` branch-B blocks
/// on top, leaving it one block taller than the 4-block branch A.
fn adopt_branch_b(feeds: &mut FeedSet, i: usize, blocks: u64) {
    let node = feeds.feed_mut(i).expect("feed exists").node_mut();
    assert!(node.revert_to(1), "rewind to the first block");
    for h in 1..=blocks {
        node.produce_block(branch_b_txs(h));
    }
}

#[test]
fn depth_three_reorg_rolls_back_replays_and_matches_clean_run() {
    let mut feeds = three_feeds();
    let mut device = full_device();
    grow_branch_a(&mut device, &mut feeds, 4);

    let base = Env::default().block_number;
    let old_head = device.head().expect("synced head");
    let fork_hash = feeds.feed_mut(0).expect("feed exists").node().block(0).expect("block 1").header.hash();
    assert_eq!(device.head_height(), Some(base + 3));

    // Feed 2 turns Byzantine: it alternates between the old head and a
    // verified sibling of it (same height, same state root).
    let plan = FaultPlan::new(7, device.clock());
    plan.arm(FaultSite::NodeFeed, &[FaultKind::Equivocate], 1, 1_000);
    feeds.feed_mut(2).expect("feed exists").arm_faults(plan);

    // Feeds 0 and 1 adopt a heavier branch forking right above block 1:
    // the old chain's blocks 2..4 are orphaned (depth 3).
    adopt_branch_b(&mut feeds, 0, 4);
    adopt_branch_b(&mut feeds, 1, 4);

    let outcome = device.sync_from_feeds(&mut feeds).expect("quorum resolves the reorg");
    let SyncOutcome::Reorged { fork, depth, orphaned, adopted } = outcome else {
        panic!("expected a reorg, got {outcome:?}");
    };
    assert_eq!(depth, 3, "fork point is three blocks below the old head");
    assert_eq!(fork, ForkPoint { height: base, hash: fork_hash });
    assert_eq!(orphaned.len(), 3, "three abandoned blocks");
    assert_eq!(orphaned[0], old_head, "orphans are reported newest first");
    assert_eq!(device.head(), Some(adopted));
    assert_eq!(device.head_height(), Some(base + 4), "winning branch is one taller");

    // The next poll catches feed 2 revisiting the abandoned old head:
    // equivocation evidence, quarantine, counters.
    let outcome = device.sync_from_feeds(&mut feeds).expect("already on the winning head");
    assert_eq!(outcome, SyncOutcome::AlreadySynced);
    assert_eq!(feeds.quarantined_count(), 1, "the equivocator is out");
    assert_eq!(
        feeds.status(2).expect("feed 2 status").quarantined,
        Some(QuarantineReason::Equivocation)
    );
    let telemetry = device.telemetry().clone();
    assert!(telemetry.counter(CounterId::EquivocationsDetected) >= 1);
    assert!(telemetry.counter(CounterId::FeedsQuarantined) >= 1);
    assert_eq!(telemetry.counter(CounterId::ReorgsApplied), 1);

    // Receipt equivalence: a bundle pre-executed after the reorg must be
    // byte-identical to one from a device that only ever synced the
    // winning chain — rollback + replay leaves no residue.
    let bundle = Bundle::single(Transaction::transfer(
        user(),
        Address::from_low_u64(0xDEAD),
        U256::from(7u64),
    ));
    let mut session = device.connect_user(b"reorg user").expect("attestation succeeds");
    let report = device.pre_execute(&mut session, &bundle).expect("pre-execution succeeds");

    let mut clean = full_device();
    {
        let winner = feeds.feed_mut(0).expect("feed exists").node();
        for i in 0..winner.height() {
            let header = winner.block(i).expect("block exists").header.clone();
            let delta = winner.state_delta(i).expect("delta exists");
            clean.sync_block(&header, &delta).expect("clean sync succeeds");
        }
    }
    assert_eq!(clean.head(), device.head(), "both devices attest the same head");
    let mut clean_session = clean.connect_user(b"reorg user").expect("attestation succeeds");
    let clean_report =
        clean.pre_execute(&mut clean_session, &bundle).expect("pre-execution succeeds");
    assert_eq!(
        report.encode(),
        clean_report.encode(),
        "post-reorg receipt must be byte-identical to a clean-sync run"
    );

    // §IV-D: the rollback window is indistinguishable from forward sync
    // on the ORAM bus — the auditor's reorg lens passes.
    let audit = audit_events(&telemetry.events(), telemetry.dropped(), &AuditConfig::default());
    assert!(audit.passed(), "reorg audit failed: {:?}", audit.violations);
    assert_eq!(audit.stats.rollbacks, 1);
    assert!(
        audit.stats.rollback_sync_writes > 0,
        "rollback must produce sync-shaped page writes"
    );
}

#[test]
fn rollback_outside_oram_path_fails_the_audit() {
    // Negative control for the §IV-D lens: same depth-3 reorg, but the
    // rollback restores only the local mirror (ORAM writes skipped while
    // still advertised). The auditor must flag the uncovered window.
    let mut feeds = three_feeds();
    let mut device = full_device();
    grow_branch_a(&mut device, &mut feeds, 4);

    device.set_rollback_ablation(true);
    for i in 0..3 {
        adopt_branch_b(&mut feeds, i, 4);
    }
    let outcome = device.sync_from_feeds(&mut feeds).expect("reorg still applies");
    assert!(matches!(outcome, SyncOutcome::Reorged { depth: 3, .. }));

    let telemetry = device.telemetry().clone();
    let audit = audit_events(&telemetry.events(), telemetry.dropped(), &AuditConfig::default());
    assert!(!audit.passed(), "mirror-only rollback must not pass the audit");
    assert!(
        audit
            .violations
            .iter()
            .any(|v| matches!(v, Violation::RollbackUncovered { observed: 0, .. })),
        "expected RollbackUncovered, got {:?}",
        audit.violations
    );
}

#[test]
fn reorg_below_finality_depth_is_refused() {
    let mut feeds = three_feeds();
    let mut device = HarDTape::new(
        ServiceConfig {
            oram_height: 10,
            finality_depth: 2,
            ..ServiceConfig::at_level(SecurityConfig::Full)
        },
        Env::default(),
        &genesis(),
    )
    .expect("device boots");
    grow_branch_a(&mut device, &mut feeds, 4);
    let head_before = device.head();

    // A depth-3 rewrite against finality depth 2: the device must refuse
    // and keep its head rather than unwind finalized state.
    for i in 0..3 {
        adopt_branch_b(&mut feeds, i, 4);
    }
    let err = device.sync_from_feeds(&mut feeds).expect_err("finality must hold");
    assert!(
        matches!(err, ServiceError::FinalityViolation { depth: 3, finality: 2 }),
        "expected a finality violation, got {err:?}"
    );
    assert_eq!(device.head(), head_before, "refused reorg must not move the head");
}

#[test]
fn equivocation_without_quorum_is_a_typed_error() {
    // Two feeds, both armed to equivocate from the start of the fork:
    // once both are quarantined there is no verified winner, and the
    // service surfaces the evidence instead of a generic outage.
    let mut feeds = FeedSet::new(
        (0..2).map(|_| BlockFeed::new(Node::new(genesis(), Env::default()))).collect(),
        FeedSetConfig::default(),
    );
    let mut device = full_device();
    grow_branch_a(&mut device, &mut feeds, 2);

    for i in 0..2 {
        let plan = FaultPlan::new(11 + i as u64, device.clock());
        plan.arm(FaultSite::NodeFeed, &[FaultKind::Equivocate], 1, 1_000);
        feeds.feed_mut(i).expect("feed exists").arm_faults(plan);
    }
    // Poll until both equivocators are caught (the revisit rule needs a
    // couple of alternations), then assert the typed terminal error.
    let mut saw_equivocation_error = false;
    for _ in 0..4 {
        match device.sync_from_feeds(&mut feeds) {
            Ok(_) => {}
            Err(ServiceError::Equivocation { .. }) => {
                saw_equivocation_error = true;
                break;
            }
            Err(ServiceError::NodeUnavailable) => break,
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(
        saw_equivocation_error || feeds.quarantined_count() == 2,
        "equivocators must be caught and surfaced"
    );
    assert!(device.telemetry().counter(CounterId::EquivocationsDetected) >= 1);
}
