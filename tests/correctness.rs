//! §VI-B pre-execution correctness: HarDTAPE's behavior must be
//! identical to a standard node. We replay the synthetic evaluation set
//! through (a) the node's `debug_traceTransaction` ground truth and
//! (b) the HEVM under the `-full` security configuration, comparing
//! step-by-step traces and results.

use hardtape::{HybridState, SecurityConfig};
use tape_evm::{Env, Evm, StructTracer, Transaction};
use tape_hevm::{Hevm, HevmConfig};
use tape_node::Node;
use tape_oram::{ObliviousState, OramClient, OramConfig, OramServer};
use tape_sim::Clock;
use tape_state::InMemoryState;
use tape_workload::{EvalSet, EvalSetConfig};

fn build_oram(genesis: &InMemoryState, height: u32) -> ObliviousState {
    let config = OramConfig { block_size: 1024, bucket_capacity: 4, height };
    let server = OramServer::new(config.clone());
    let client = OramClient::new(
        config,
        &[0x0Au8; 16],
        tape_crypto::SecureRng::from_seed(b"correctness"),
    );
    let state = ObliviousState::new(client, server, Clock::new(), tape_sim::CostModel::default());
    state
        .sync_full_state(genesis.iter().map(|(a, acc)| (*a, acc.clone())))
        .unwrap();
    state
}

/// Replays the evaluation set on both engines — the reference EVM over
/// plain state and the HEVM over the ORAM — transaction by transaction,
/// comparing structured traces.
#[test]
fn evalset_traces_identical_on_both_engines() {
    let set = EvalSet::generate(&EvalSetConfig::small());
    let oram = build_oram(&set.genesis, 12);
    let local = InMemoryState::new(); // empty: -full uses only the ORAM
    let reader = HybridState::new(SecurityConfig::Full, &local, Some(&oram));

    let mut reference = Evm::with_inspector(set.env.clone(), &set.genesis, StructTracer::new());
    let mut hevm = Hevm::with_inspector(
        HevmConfig { charge_local_fetch: false, ..HevmConfig::default() },
        set.env.clone(),
        reader,
        Clock::new(),
        StructTracer::new(),
    );

    let mut compared = 0;
    for (i, tx) in set.all_transactions().enumerate() {
        reference.inspector_mut().clear();
        hevm.inspector_mut().clear();
        let expected = reference.transact(tx).expect("reference accepts");
        let actual = hevm.transact(tx).expect("hevm accepts");
        assert_eq!(expected, actual, "tx {i} result differs");

        let ref_trace = reference.inspector();
        let hevm_trace = hevm.inspector();
        if let Some(step) = ref_trace.first_divergence(hevm_trace) {
            panic!(
                "tx {i} trace diverges at step {step}:\n  ref:  {:?}\n  hevm: {:?}",
                ref_trace.steps().get(step),
                hevm_trace.steps().get(step)
            );
        }
        assert_eq!(ref_trace.digest(), hevm_trace.digest(), "tx {i} digest");
        compared += 1;
    }
    assert_eq!(compared, set.len());
    // Final cumulative state identical as well.
    assert_eq!(reference.state().changes(), hevm.state().changes());
}

/// The node's debug_traceTransaction ground truth matches a fresh
/// pre-execution of the same transactions in block order.
#[test]
fn node_ground_truth_matches_pre_execution() {
    let set = EvalSet::generate(&EvalSetConfig {
        blocks: 2,
        txs_per_block: 10,
        ..EvalSetConfig::small()
    });
    let mut node = Node::new(set.genesis.clone(), set.env.clone());
    for block in &set.blocks {
        node.produce_block(block.clone());
    }

    // For each transaction, the node's trace equals the HEVM's trace when
    // pre-executing the same prefix of the block.
    for (block_idx, block) in set.blocks.iter().enumerate() {
        let mut env = set.env.clone();
        env.block_number += block_idx as u64;
        env.timestamp += 12 * block_idx as u64;

        // The HEVM pre-executes the whole block as one bundle, starting
        // from the node's pre-block snapshot == our incremental state.
        let snapshot = if block_idx == 0 {
            set.genesis.clone()
        } else {
            // Rebuild by replaying earlier blocks on the reference EVM.
            let mut state = set.genesis.clone();
            let mut node_replay = Node::new(std::mem::take(&mut state), set.env.clone());
            for earlier in &set.blocks[..block_idx] {
                node_replay.produce_block(earlier.clone());
            }
            node_replay.state().clone()
        };

        let mut hevm = Hevm::with_inspector(
            HevmConfig::default(),
            env,
            &snapshot,
            Clock::new(),
            StructTracer::new(),
        );
        for (tx_idx, tx) in block.transactions_iter().enumerate() {
            hevm.inspector_mut().clear();
            let actual = hevm.transact(tx).expect("hevm accepts");
            let (expected_trace, expected_result) = node
                .debug_trace_transaction(block_idx, tx_idx)
                .expect("node has the tx");
            assert_eq!(expected_result, actual, "block {block_idx} tx {tx_idx}");
            let hevm_trace = hevm.inspector();
            assert_eq!(
                expected_trace.digest(),
                hevm_trace.digest(),
                "block {block_idx} tx {tx_idx}: trace digest"
            );
        }
    }
}

/// Convenience: iterate transactions of a generated block.
trait BlockTxs {
    fn transactions_iter(&self) -> std::slice::Iter<'_, Transaction>;
}

impl BlockTxs for Vec<Transaction> {
    fn transactions_iter(&self) -> std::slice::Iter<'_, Transaction> {
        self.iter()
    }
}

/// Gas usage across the evaluation set is identical between engines —
/// the strongest aggregate check on gas metering.
#[test]
fn aggregate_gas_identical() {
    let set = EvalSet::generate(&EvalSetConfig::small());
    let mut reference = Evm::new(set.env.clone(), &set.genesis);
    let mut hevm = Hevm::new(HevmConfig::default(), set.env.clone(), &set.genesis, Clock::new());
    let mut ref_gas = 0u64;
    let mut hevm_gas = 0u64;
    for tx in set.all_transactions() {
        ref_gas += reference.transact(tx).unwrap().gas_used;
        hevm_gas += hevm.transact(tx).unwrap().gas_used;
    }
    assert_eq!(ref_gas, hevm_gas);
    assert!(ref_gas > 21_000 * set.len() as u64);
}

/// The dedicated environment check used by `Env::default()` matches the
/// paper's first evaluation block.
#[test]
fn evaluation_env_constants() {
    assert_eq!(Env::default().block_number, 19_145_194);
}
