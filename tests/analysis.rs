//! Tier-1 integration tests for the static-analysis admission gate:
//! bundles whose callees cannot satisfy the Layer-1/Layer-2 budgets are
//! rejected with a typed error *before* any HEVM cycle or ORAM query is
//! spent — at the service and at the multi-tenant gateway — while
//! admissible bundles carry the analyzer's secret-dependency lints in
//! their reports.

use hardtape::{
    Bundle, Gateway, GatewayConfig, GatewayError, HarDTape, SecurityConfig, ServiceConfig,
    ServiceError,
};
use tape_analysis::AnalysisReject;
use tape_evm::opcode::op;
use tape_evm::{Env, Transaction};
use tape_primitives::{Address, U256};
use tape_state::{Account, InMemoryState, StateReader};
use tape_workload::contracts;

fn alice() -> Address {
    Address::from_low_u64(0xA11CE)
}

fn token() -> Address {
    Address::from_low_u64(0x70CE)
}

fn hog() -> Address {
    Address::from_low_u64(0x906)
}

/// Code whose statically derived worst-case stack exceeds the 32 KB
/// (1024-word) Layer-1 runtime stack: 1100 consecutive pushes.
fn stack_hog_code() -> Vec<u8> {
    let mut code = Vec::new();
    for _ in 0..1100 {
        code.push(op::PUSH1);
        code.push(0x01);
    }
    code.push(op::STOP);
    code
}

/// An infinite push loop: `JUMPDEST; PUSH1 1; PUSH1 0; JUMP` grows the
/// stack every iteration — no finite bound exists.
fn push_loop_code() -> Vec<u8> {
    vec![op::JUMPDEST, op::PUSH1, 0x01, op::PUSH1, 0x00, op::JUMP]
}

fn genesis(hog_code: Vec<u8>) -> InMemoryState {
    let mut state = InMemoryState::new();
    state.put_account(alice(), Account::with_balance(U256::from(u64::MAX)));
    let mut t = Account::with_code(contracts::erc20_runtime());
    t.storage.insert(contracts::balance_slot(&alice()), U256::from(1_000_000u64));
    state.put_account(token(), t);
    state.put_account(hog(), Account::with_code(hog_code));
    state
}

fn device(genesis: &InMemoryState) -> HarDTape {
    let config = ServiceConfig {
        oram_height: 10,
        ..ServiceConfig::at_level(SecurityConfig::Full)
    };
    HarDTape::new(config, Env::default(), genesis).expect("device boots")
}

fn hog_bundle() -> Bundle {
    Bundle::single(Transaction {
        gas_limit: 300_000,
        ..Transaction::call(alice(), hog(), vec![])
    })
}

#[test]
fn oversized_stack_is_rejected_at_admission() {
    let genesis = genesis(stack_hog_code());
    let mut dev = device(&genesis);
    let mut user = dev.connect_user(b"admission user").expect("attestation");
    let err = dev.pre_execute(&mut user, &hog_bundle()).expect_err("must reject");
    match err {
        ServiceError::AnalysisReject {
            address,
            reason: AnalysisReject::StackOverflow { bound_words, limit_words },
        } => {
            assert_eq!(address, hog());
            assert!(bound_words > limit_words, "{bound_words} vs {limit_words}");
        }
        other => panic!("expected a static stack-overflow reject, got {other}"),
    }
}

#[test]
fn unbounded_push_loop_is_rejected_at_admission() {
    let genesis = genesis(push_loop_code());
    let mut dev = device(&genesis);
    let mut user = dev.connect_user(b"admission user").expect("attestation");
    let err = dev.pre_execute(&mut user, &hog_bundle()).expect_err("must reject");
    assert!(
        matches!(
            err,
            ServiceError::AnalysisReject { reason: AnalysisReject::UnboundedStack { .. }, .. }
        ),
        "expected an unbounded-stack reject, got {err}"
    );
}

#[test]
fn gateway_rejects_before_spending_cycles() {
    let genesis = genesis(stack_hog_code());
    let mut gateway = Gateway::new(device(&genesis), GatewayConfig::default());
    let session = gateway.connect(b"tenant").expect("attestation");
    let err = gateway.submit(session, hog_bundle()).expect_err("must reject");
    assert!(
        matches!(err, GatewayError::Service(ServiceError::AnalysisReject { .. })),
        "expected the admission gate at the gateway, got {err}"
    );
}

#[test]
fn admissible_bundle_reports_dispatch_lints() {
    let genesis = genesis(stack_hog_code());
    let mut dev = device(&genesis);
    let mut user = dev.connect_user(b"lint user").expect("attestation");
    let bundle = Bundle::single(Transaction {
        gas_limit: 300_000,
        ..Transaction::call(
            alice(),
            token(),
            contracts::encode_call(
                contracts::sel::transfer(),
                &[Address::from_low_u64(0xB0B).into_word(), U256::from(250u64)],
            ),
        )
    });
    let report = dev.pre_execute(&mut user, &bundle).expect("admissible");
    assert!(report.results[0].success, "transfer must execute");
    assert!(
        report.lints.iter().any(|(addr, _)| *addr == token()),
        "CALLDATA-driven ERC-20 dispatch must surface lints"
    );
}

#[test]
fn admission_verdict_matches_direct_analysis() {
    // The service's gate and a standalone analyzer run agree — the
    // admission decision is a pure function of the callee bytecode.
    let genesis = genesis(stack_hog_code());
    let analysis = tape_analysis::analyze(&genesis.code(&hog()));
    assert!(analysis.max_stack > 1024, "hog must exceed the Layer-1 budget");
    let token_analysis = tape_analysis::analyze(&genesis.code(&token()));
    assert!(tape_analysis::Limits::default().admit(&token_analysis).is_ok());
    assert!(!token_analysis.lints.is_empty());
}
