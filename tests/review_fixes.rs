//! Regression tests for the issues surfaced by the adversarial code
//! review: CREATE-with-STOP initcode, selfdestruct block-sync
//! propagation, stale storage-group clearing, ORAM nonce-space
//! separation, calldata offset wraparound, and full-trace signatures.

use hardtape::{Bundle, HarDTape, SecurityConfig, ServiceConfig};
use tape_crypto::SecureRng;
use tape_evm::asm::Asm;
use tape_evm::opcode::op;
use tape_evm::{Env, Evm, Transaction};
use tape_hevm::{Hevm, HevmConfig};
use tape_oram::{ObliviousState, OramClient, OramConfig, OramServer};
use tape_primitives::{Address, U256};
use tape_sim::{Clock, CostModel};
use tape_state::{Account, InMemoryState, StateReader};

fn funded(addr: Address) -> InMemoryState {
    let mut s = InMemoryState::new();
    s.put_account(addr, Account::with_balance(U256::from(u64::MAX)));
    s
}

/// Initcode that simply STOPs must deploy an *empty* contract and push
/// the created address — on both engines identically.
#[test]
fn create_with_stop_initcode_deploys_empty_contract() {
    let sender = Address::from_low_u64(0xAA);
    let backend = funded(sender);
    let tx = Transaction::create(sender, vec![op::STOP]);

    let mut reference = Evm::new(Env::default(), &backend);
    let ref_result = reference.transact(&tx).unwrap();
    assert!(ref_result.success);
    let created = ref_result.created.expect("STOP initcode still deploys");
    assert_eq!(created, tape_evm::create_address(&sender, 0));
    assert!(reference.state_mut().code(&created).is_empty());
    assert_eq!(reference.state_mut().nonce(&created), 1);

    let mut hevm = Hevm::new(HevmConfig::default(), Env::default(), &backend, Clock::new());
    let hevm_result = hevm.transact(&tx).unwrap();
    assert_eq!(ref_result, hevm_result);

    // Same via the CREATE opcode: the factory receives the address, not 0.
    let factory_code = Asm::new()
        .push(0u64) // initcode len 0 -> empty initcode -> empty deploy
        .push(0u64)
        .push(0u64)
        .op(op::CREATE)
        .ret_top()
        .build();
    let mut backend = funded(sender);
    let factory = Address::from_low_u64(0xFAC);
    backend.put_account(factory, Account::with_code(factory_code));
    let mut evm = Evm::new(Env::default(), &backend);
    let result = evm.transact(&Transaction::call(sender, factory, vec![])).unwrap();
    assert!(result.success);
    let reported = Address::from_word(U256::from_be_slice(&result.output));
    assert_ne!(reported, Address::ZERO, "CREATE must push the address");
}

/// On-chain SELFDESTRUCT propagates through the proof-carrying delta:
/// the device's mirror and ORAM forget the account.
#[test]
fn selfdestruct_propagates_through_block_sync() {
    let owner = Address::from_low_u64(0xA11CE);
    let doomed = Address::from_low_u64(0xD00D);
    let mut genesis = funded(owner);
    let mut contract = Account::with_code(
        Asm::new().push_address(owner).op(op::SELFDESTRUCT).build(),
    );
    contract.balance = U256::from(777u64);
    contract.storage.insert(U256::ONE, U256::from(9u64));
    genesis.put_account(doomed, contract);

    let mut node = tape_node::Node::new(genesis.clone(), Env::default());
    let mut device = HarDTape::new(
        ServiceConfig { oram_height: 10, ..ServiceConfig::at_level(SecurityConfig::Full) },
        Env::default(),
        &genesis,
    ).expect("device boots");
    let mut user = device.connect_user(b"sd sync").unwrap();

    // The kill transaction lands on-chain.
    let mut kill = Transaction::call(owner, doomed, vec![]);
    kill.gas_limit = 200_000;
    let block = node.produce_block(vec![kill]);
    assert!(block.receipts[0].success);
    assert!(node.state().account(&doomed).is_none());

    let header = node.head().unwrap().header.clone();
    let delta = node.head_state_delta().unwrap();
    assert!(delta.deleted.iter().any(|d| d.address == doomed));
    device.sync_block(&header, &delta).unwrap();

    // Pre-execution no longer sees the account: calling it is a plain
    // transfer to empty code, and its old storage is gone.
    let probe_code = Asm::new()
        .push_address(doomed)
        .op(op::EXTCODESIZE)
        .ret_top()
        .build();
    let prober = Address::from_low_u64(0x9806);
    let mut genesis2 = node.state().clone();
    genesis2.put_account(prober, Account::with_code(probe_code));
    // Probe through the device that synced the deletion.
    let tx = Transaction::call(owner, doomed, vec![]);
    let report = device.pre_execute(&mut user, &Bundle::single(tx)).unwrap();
    assert!(report.results[0].success);
    assert_eq!(report.results[0].gas_used, 21_000, "no code left to run");
}

/// A forged deletion (claiming a live account died) is rejected.
#[test]
fn forged_deletion_rejected() {
    let owner = Address::from_low_u64(0xA11CE);
    let bystander = Address::from_low_u64(0xB15);
    let mut genesis = funded(owner);
    genesis.put_account(bystander, Account::with_balance(U256::from(5u64)));

    let mut node = tape_node::Node::new(genesis.clone(), Env::default());
    node.produce_block(vec![Transaction::transfer(owner, bystander, U256::ONE)]);
    let header = node.head().unwrap().header.clone();
    let mut delta = node.head_state_delta().unwrap();
    // The SP claims the (live) bystander was deleted, reusing its
    // presence proof.
    delta.deleted.push(tape_node::DeletedAccount {
        address: bystander,
        proof: delta.accounts.iter().find(|a| a.address == bystander).unwrap().proof.clone(),
    });
    let mut device = HarDTape::new(
        ServiceConfig { oram_height: 10, ..ServiceConfig::at_level(SecurityConfig::Full) },
        Env::default(),
        &genesis,
    ).expect("device boots");
    assert!(device.sync_block(&header, &delta).is_err());
}

/// Re-syncing an account whose storage group emptied must clear the
/// stale ORAM page.
#[test]
fn stale_storage_group_cleared_on_resync() {
    let addr = Address::from_low_u64(0x57A1E);
    let config = OramConfig { block_size: 1024, bucket_capacity: 4, height: 8 };
    let state = ObliviousState::new(
        OramClient::new(config.clone(), &[1u8; 16], SecureRng::from_seed(b"stale")),
        OramServer::new(config),
        Clock::new(),
        CostModel::default(),
    );

    let mut account = Account::with_balance(U256::ONE);
    account.storage.insert(U256::from(5u64), U256::from(99u64));
    state.sync_account(&addr, &account).unwrap();
    assert_eq!(state.storage(&addr, &U256::from(5u64)), U256::from(99u64));

    // The slot is cleared on-chain; the group vanishes from the account.
    account.storage.clear();
    state.sync_account(&addr, &account).unwrap();
    state.clear_cache();
    assert_eq!(
        state.storage(&addr, &U256::from(5u64)),
        U256::ZERO,
        "stale group page served old data"
    );

    // Full removal wipes the meta page too.
    state.remove_account(&addr).unwrap();
    assert!(state.account(&addr).is_none());
}

/// Two ORAM clients sharing the fleet key must never reuse an AES-GCM
/// nonce: their nonce prefixes are drawn from their own RNGs.
#[test]
fn shared_key_clients_use_disjoint_nonce_spaces() {
    let config = OramConfig { block_size: 64, bucket_capacity: 4, height: 5 };
    let key = [7u8; 16];
    let clock = Clock::new();
    let cost = CostModel::default();

    // Client A encrypts a known block; client B (same key, same counter
    // sequence) encrypts a different block. With prefix-less counters
    // these would collide on (key, nonce).
    let mut server_a = OramServer::new(config.clone());
    let mut a = OramClient::new(config.clone(), &key, SecureRng::from_seed(b"client a"));
    let id = tape_crypto::keccak256(b"block");
    a.write(&mut server_a, &clock, &cost, &id, vec![0xAA; 64]).unwrap();

    let mut server_b = OramServer::new(config.clone());
    let mut b = OramClient::new(config, &key, SecureRng::from_seed(b"client b"));
    b.write(&mut server_b, &clock, &cost, &id, vec![0xBB; 64]).unwrap();

    // Indirect but sufficient check: both clients still decrypt their own
    // data correctly, and their wire ciphertexts for the same logical
    // write differ in the nonce field (first 12 bytes of every slot).
    let path_a = server_a.read_path(0, 0);
    let path_b = server_b.read_path(0, 0);
    let nonces = |slots: &[Vec<u8>]| -> Vec<Vec<u8>> {
        slots.iter().filter(|s| !s.is_empty()).map(|s| s[..12].to_vec()).collect()
    };
    for na in nonces(&path_a) {
        for nb in nonces(&path_b) {
            assert_ne!(na, nb, "nonce collision across clients sharing the ORAM key");
        }
    }
}

/// Calldata reads near `usize::MAX` zero-pad instead of wrapping to the
/// start of the buffer (release-mode correctness).
#[test]
fn calldataload_at_max_offset_reads_zero() {
    let sender = Address::from_low_u64(0xAA);
    let target = Address::from_low_u64(0xC0DE);
    // CALLDATALOAD(2^64 - 16): half the word is beyond usize range.
    let code = Asm::new()
        .push(U256::from(u64::MAX - 15))
        .op(op::CALLDATALOAD)
        .ret_top()
        .build();
    let mut backend = funded(sender);
    backend.put_account(target, Account::with_code(code));
    let input = vec![0xFFu8; 64]; // nonzero: a wraparound would read 0xFF

    let mut reference = Evm::new(Env::default(), &backend);
    let r = reference.transact(&Transaction::call(sender, target, input.clone())).unwrap();
    assert!(r.success);
    assert_eq!(U256::from_be_slice(&r.output), U256::ZERO);

    let mut hevm = Hevm::new(HevmConfig::default(), Env::default(), &backend, Clock::new());
    let h = hevm.transact(&Transaction::call(sender, target, input)).unwrap();
    assert_eq!(r, h);
}

/// The device signature now commits to log topics: tampering a topic
/// breaks verification.
#[test]
fn trace_signature_covers_log_topics() {
    let owner = Address::from_low_u64(0xA11CE);
    let emitter = Address::from_low_u64(0xE1117);
    let mut genesis = funded(owner);
    genesis.put_account(
        emitter,
        Account::with_code(
            Asm::new()
                .push(0x7071Cu64) // topic
                .push(0u64) // len
                .push(0u64) // offset
                .op(op::LOG1)
                .stop()
                .build(),
        ),
    );
    let mut device = HarDTape::new(
        ServiceConfig { oram_height: 10, ..ServiceConfig::at_level(SecurityConfig::Es) },
        Env::default(),
        &genesis,
    ).expect("device boots");
    let mut user = device.connect_user(b"topics").unwrap();
    let mut tx = Transaction::call(owner, emitter, vec![]);
    tx.gas_limit = 100_000;
    let report = device.pre_execute(&mut user, &Bundle::single(tx)).unwrap();
    let sig = report.signature.unwrap();
    tape_tee::channel::verify_bundle(&user.device_key(), &report.encode(), &sig).unwrap();

    let mut forged = report.clone();
    forged.results[0].logs[0].topics[0] = tape_primitives::B256::new([0xEE; 32]);
    assert!(
        tape_tee::channel::verify_bundle(&user.device_key(), &forged.encode(), &sig).is_err(),
        "signature must commit to log topics"
    );
}
