//! Umbrella crate for the HarDTAPE reproduction workspace.
//!
//! This crate exists to host the cross-crate integration tests in `tests/`
//! and the runnable examples in `examples/`. The actual library surface
//! lives in the `hardtape` crate and its substrate crates (`tape-*`).

#![forbid(unsafe_code)]

pub use hardtape;
pub use tape_analysis as analysis;
pub use tape_crypto as crypto;
pub use tape_evm as evm;
pub use tape_hevm as hevm;
pub use tape_mpt as mpt;
pub use tape_node as node;
pub use tape_oram as oram;
pub use tape_primitives as primitives;
pub use tape_sim as sim;
pub use tape_state as state;
pub use tape_tee as tee;
pub use tape_workload as workload;
