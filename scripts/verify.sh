#!/usr/bin/env bash
# Full verification gate for the HarDTAPE reproduction.
#
#   scripts/verify.sh [--soak] [--bench] [--lint]
#
# Runs, in order:
#   1. release build of the whole workspace
#   2. the root-package test suite (the tier-1 gate; includes the
#      static-analyzer self-tests via the workspace run below)
#   3. the full workspace test suite
#   4. clippy over EVERY workspace crate with warnings denied and
#      `.unwrap()` forbidden. Any allow-listed exception must carry a
#      justifying comment at the allow site.
#   5. an `#![forbid(unsafe_code)]` assertion: every crate root must
#      carry the attribute, so no `unsafe` block can enter the TCB
#      without flipping a tracked line in review.
#
# With --lint, stops after the static gates (4 and 5) — no build or
# test run. Useful as a fast pre-commit hook.
#
# With --soak, additionally replays the gateway chaos soak under three
# fixed seeds, running each seed in two separate processes and failing
# if the schedule digests differ — cross-process nondeterminism (hash
# ordering, ambient randomness) has nowhere to hide. The soak digest
# now covers the telemetry stream too, and each run asserts the §IV-D
# leakage auditor passes on the soak workload. The same discipline is
# applied to the seeded reorg schedule (REORG_DIGEST): a mid-run
# depth-3 reorg must shed/re-pin queued work exactly-once and replay
# byte-identically across processes. A third schedule arms the gas-bomb
# adversary against a gas-sliced gateway (PREEMPT_DIGEST): preempted
# bundles must resume, complete exactly-once, pass the §IV-D segment
# audit, and replay byte-identically across processes. A fourth
# schedule runs the fleet chaos soak (FLEET_DIGEST): ~10³ tenants
# rendezvous-sharded over 4 devices, seeded DeviceHang faults, a
# mid-soak crash of 1 of 4 devices with live migration, and a mid-soak
# reorg — every admitted bundle must resolve exactly-once, survivors
# must converge on one head, and the fleet-wide digest must replay
# byte-identically across processes.
#
# With --bench, runs the deterministic pre-execution benchmark under
# its fixed baked-in seed, writing BENCH_pre_execute.json. The binary
# fails if the telemetry digest drifts between two in-process runs or
# the leakage auditor reports violations, and — when a committed
# BENCH_pre_execute.json exists — if ORAM queries per bundle regress
# more than 10% against it. Two negative controls prove the auditor
# has teeth: --starve (prefetcher starvation, pre-fix pipeline) and
# --omit-plan (a prefetch plan mis-advertising one page) must each
# *fail* the audit. The fleet benchmark (BENCH_fleet.json) runs under
# the same discipline: latency vs device count, shard fairness,
# staleness, and the kill-one-device degradation curve, with the
# one-device-loss honest p99 bounded in-process (3x no-loss) and
# guarded against >10% regression when a committed baseline exists.
#
# Everything is hermetic: no network access is required.

set -euo pipefail
cd "$(dirname "$0")/.."

RUN_SOAK=0
RUN_BENCH=0
LINT_ONLY=0
for arg in "$@"; do
    case "$arg" in
        --soak) RUN_SOAK=1 ;;
        --bench) RUN_BENCH=1 ;;
        --lint) LINT_ONLY=1 ;;
        *) echo "usage: scripts/verify.sh [--soak] [--bench] [--lint]" >&2; exit 2 ;;
    esac
done

lint_gates() {
    echo "==> cargo clippy --workspace (deny warnings + unwrap_used, all crates)"
    cargo clippy --workspace -- -D warnings -D clippy::unwrap_used

    echo "==> forbid(unsafe_code) in every crate root"
    missing=0
    for root in src/lib.rs crates/*/src/lib.rs; do
        if ! grep -q '^#!\[forbid(unsafe_code)\]' "$root"; then
            echo "missing #![forbid(unsafe_code)]: $root" >&2
            missing=1
        fi
    done
    if [[ "$missing" -ne 0 ]]; then
        exit 1
    fi
}

if [[ "$LINT_ONLY" -eq 1 ]]; then
    lint_gates
    echo "==> verify --lint: static gates passed"
    exit 0
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

lint_gates

soak_digest() {
    # Prints the SOAK_DIGEST line for one fresh-process chaos run.
    HARDTAPE_SOAK_SEED="$1" cargo test -q --test soak \
        chaos_soak_is_deterministic_and_exactly_once -- --nocapture \
        | grep -E '^SOAK_DIGEST '
}

reorg_digest() {
    # Prints the REORG_DIGEST line for one fresh-process reorg-schedule
    # run (depth-3 reorg mid-schedule, exactly-once asserted in-test).
    HARDTAPE_SOAK_SEED="$1" cargo test -q --test soak \
        seeded_reorg_schedule_is_deterministic_and_exactly_once -- --nocapture \
        | grep -E '^REORG_DIGEST '
}

preempt_digest() {
    # Prints the PREEMPT_DIGEST line for one fresh-process preemption
    # soak (gas-bomb adversary armed on a gas-sliced gateway;
    # exactly-once + segment audit asserted in-test).
    HARDTAPE_SOAK_SEED="$1" cargo test -q --test soak \
        seeded_preemption_schedule_is_deterministic_and_exactly_once -- --nocapture \
        | grep -E '^PREEMPT_DIGEST '
}

fleet_digest() {
    # Prints the FLEET_DIGEST line for one fresh-process fleet chaos
    # soak (4 devices, mid-soak crash + migration + reorg;
    # exactly-once, head convergence, and the §IV-D audit asserted
    # in-test).
    HARDTAPE_SOAK_SEED="$1" cargo test -q --test fleet \
        fleet_chaos_soak_is_deterministic_and_survives_device_loss -- --nocapture \
        | grep -E '^FLEET_DIGEST '
}

if [[ "$RUN_SOAK" -eq 1 ]]; then
    echo "==> gateway chaos soak (determinism across processes)"
    for seed in 1337 424242 12648430; do
        first="$(soak_digest "$seed")"
        second="$(soak_digest "$seed")"
        if [[ "$first" != "$second" ]]; then
            echo "soak: NONDETERMINISM at seed $seed" >&2
            echo "  run 1: $first" >&2
            echo "  run 2: $second" >&2
            exit 1
        fi
        echo "seed $seed: $first"
    done
    echo "==> reorg schedule soak (byte-identical digests across a depth-3 reorg)"
    for seed in 1337 424242 12648430; do
        first="$(reorg_digest "$seed")"
        second="$(reorg_digest "$seed")"
        if [[ "$first" != "$second" ]]; then
            echo "reorg soak: NONDETERMINISM at seed $seed" >&2
            echo "  run 1: $first" >&2
            echo "  run 2: $second" >&2
            exit 1
        fi
        echo "seed $seed: $first"
    done
    echo "==> preemption soak (gas-bomb adversary, byte-identical preempted schedules)"
    for seed in 1337 424242 12648430; do
        first="$(preempt_digest "$seed")"
        second="$(preempt_digest "$seed")"
        if [[ "$first" != "$second" ]]; then
            echo "preempt soak: NONDETERMINISM at seed $seed" >&2
            echo "  run 1: $first" >&2
            echo "  run 2: $second" >&2
            exit 1
        fi
        echo "seed $seed: $first"
    done
    echo "==> fleet chaos soak (device crash + migration, byte-identical fleet digests)"
    for seed in 1337 424242 12648430; do
        first="$(fleet_digest "$seed")"
        second="$(fleet_digest "$seed")"
        if [[ "$first" != "$second" ]]; then
            echo "fleet soak: NONDETERMINISM at seed $seed" >&2
            echo "  run 1: $first" >&2
            echo "  run 2: $second" >&2
            exit 1
        fi
        echo "seed $seed: $first"
    done
fi

if [[ "$RUN_BENCH" -eq 1 ]]; then
    echo "==> pre-execution benchmark (digest drift + leakage audit + regression guard)"
    # The committed report is the regression baseline: a fresh run may
    # not add more than 10% ORAM queries per bundle. The binary reads
    # the baseline before overwriting it.
    BASELINE_ARGS=()
    if git ls-files --error-unmatch BENCH_pre_execute.json >/dev/null 2>&1; then
        BASELINE_ARGS=(--baseline BENCH_pre_execute.json)
    fi
    cargo run -q --release -p tape-bench --bin bench_pre_execute -- \
        --out BENCH_pre_execute.json "${BASELINE_ARGS[@]}"
    echo "==> starvation ablation (the auditor must detect the leak)"
    cargo run -q --release -p tape-bench --bin bench_pre_execute -- \
        --starve --out target/BENCH_pre_execute.starve.json
    echo "==> plan-omission ablation (the auditor must detect the leak)"
    cargo run -q --release -p tape-bench --bin bench_pre_execute -- \
        --omit-plan --out target/BENCH_pre_execute.omit_plan.json
    echo "==> fleet benchmark (scaling + degradation curve + regression guard)"
    FLEET_BASELINE_ARGS=()
    if git ls-files --error-unmatch BENCH_fleet.json >/dev/null 2>&1; then
        FLEET_BASELINE_ARGS=(--baseline BENCH_fleet.json)
    fi
    cargo run -q --release -p tape-bench --bin bench_fleet -- \
        --out BENCH_fleet.json "${FLEET_BASELINE_ARGS[@]}"
fi

echo "==> verify: all gates passed"
