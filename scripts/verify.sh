#!/usr/bin/env bash
# Full verification gate for the HarDTAPE reproduction.
#
#   scripts/verify.sh
#
# Runs, in order:
#   1. release build of the whole workspace
#   2. the root-package test suite (the tier-1 gate)
#   3. the full workspace test suite
#   4. clippy with warnings denied and `.unwrap()` forbidden in the
#      crates that sit on untrusted boundaries (tape-oram, tape-tee,
#      hardtape). Any allow-listed exception must carry a justifying
#      comment at the allow site.
#
# Everything is hermetic: no network access is required.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy (deny warnings + unwrap_used in boundary crates)"
cargo clippy -p tape-oram -p tape-tee -p hardtape -- \
    -D warnings -D clippy::unwrap_used

echo "==> verify: all gates passed"
