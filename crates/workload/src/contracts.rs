//! Hand-assembled EVM contracts — the reproduction's stand-ins for the
//! Solidity contracts dominating the paper's evaluation set: an ERC-20
//! token, a router that swaps through two tokens (depth 2–3 calls), a
//! deep self-caller, a memory-stress contract, and a roll-up style batch
//! storage writer.
//!
//! Storage layouts follow Solidity conventions (mapping slots via
//! `keccak256(key . slot)`), so the ORAM's consecutive-key grouping sees
//! realistic key distributions.

use tape_crypto::keccak256;
use tape_evm::asm::Asm;
use tape_evm::opcode::op;
use tape_primitives::{Address, U256};

/// First four bytes of `keccak256(signature)` as a `u32`.
pub fn selector(signature: &str) -> u32 {
    let digest = keccak256(signature.as_bytes());
    u32::from_be_bytes(digest.as_bytes()[..4].try_into().expect("4 bytes"))
}

/// ERC-20 function selectors.
pub mod sel {
    use super::selector;

    /// `transfer(address,uint256)`
    pub fn transfer() -> u32 {
        selector("transfer(address,uint256)")
    }
    /// `balanceOf(address)`
    pub fn balance_of() -> u32 {
        selector("balanceOf(address)")
    }
    /// `approve(address,uint256)`
    pub fn approve() -> u32 {
        selector("approve(address,uint256)")
    }
    /// `transferFrom(address,address,uint256)`
    pub fn transfer_from() -> u32 {
        selector("transferFrom(address,address,uint256)")
    }
    /// `totalSupply()`
    pub fn total_supply() -> u32 {
        selector("totalSupply()")
    }
    /// `swap(address,address,uint256)`
    pub fn swap() -> u32 {
        selector("swap(address,address,uint256)")
    }
}

/// Storage slot of `balances[holder]` (mapping at slot 1).
pub fn balance_slot(holder: &Address) -> U256 {
    let mut buf = [0u8; 64];
    buf[..32].copy_from_slice(&holder.into_word().to_be_bytes());
    buf[32..].copy_from_slice(&U256::ONE.to_be_bytes());
    keccak256(buf).into_u256()
}

/// Storage slot of `allowance[owner][spender]` (mapping at slot 2).
pub fn allowance_slot(owner: &Address, spender: &Address) -> U256 {
    let mut inner = [0u8; 64];
    inner[..32].copy_from_slice(&owner.into_word().to_be_bytes());
    inner[32..].copy_from_slice(&U256::from(2u64).to_be_bytes());
    let inner = keccak256(inner);
    let mut outer = [0u8; 64];
    outer[..32].copy_from_slice(&spender.into_word().to_be_bytes());
    outer[32..].copy_from_slice(inner.as_bytes());
    keccak256(outer).into_u256()
}

/// ABI-encodes a call with up to three word arguments.
pub fn encode_call(selector: u32, args: &[U256]) -> Vec<u8> {
    let mut data = selector.to_be_bytes().to_vec();
    for arg in args {
        data.extend_from_slice(&arg.to_be_bytes());
    }
    data
}

/// Appends unreachable filler so the runtime reaches `target_size` bytes
/// — calibrating frame *code sizes* to the Table I distribution without
/// changing behavior (real DeFi contracts are 1–64 KB; our hand-written
/// logic alone is a few hundred bytes).
pub fn pad_code(mut code: Vec<u8>, target_size: usize) -> Vec<u8> {
    while code.len() < target_size {
        code.push(op::JUMPDEST); // inert filler, never reached
    }
    code
}

/// Computes `keccak256(mem[96..160])` of `(word_at_96, word_at_128)` —
/// the mapping-slot idiom. Consumes `[key]`, leaves `[slot]`; the second
/// word must already be stored at 128.
fn hash_slot(asm: Asm) -> Asm {
    asm.push(96u64)
        .op(op::MSTORE)
        .push(64u64)
        .push(96u64)
        .op(op::KECCAK256)
}

/// Consumes `[holder]`, leaves `[balance_slot(holder)]`.
fn balance_slot_asm(asm: Asm) -> Asm {
    let asm = asm
        .push(1u64)
        .push(128u64)
        .op(op::MSTORE); // mapping index 1
    hash_slot(asm)
}

/// Builds the ERC-20 runtime bytecode.
///
/// Layout: slot 0 = totalSupply, slot 1 mapping = balances,
/// slot 2 mapping = allowances. Reverts on unknown selectors and on
/// insufficient balance/allowance. Emits `Transfer` logs.
pub fn erc20_runtime() -> Vec<u8> {
    let transfer_topic = keccak256(b"Transfer(address,address,uint256)").into_u256();

    let mut a = Asm::new()
        // selector = calldata[0] >> 224
        .push(0u64)
        .op(op::CALLDATALOAD)
        .push(224u64)
        .op(op::SHR)
        .op(op::DUP1)
        .push(sel::transfer() as u64)
        .op(op::EQ)
        .jumpi("transfer")
        .op(op::DUP1)
        .push(sel::balance_of() as u64)
        .op(op::EQ)
        .jumpi("balanceOf")
        .op(op::DUP1)
        .push(sel::approve() as u64)
        .op(op::EQ)
        .jumpi("approve")
        .op(op::DUP1)
        .push(sel::transfer_from() as u64)
        .op(op::EQ)
        .jumpi("transferFrom")
        .op(op::DUP1)
        .push(sel::total_supply() as u64)
        .op(op::EQ)
        .jumpi("totalSupply")
        .jump("reject");

    // --- transfer(address to, uint256 amount) ---
    a = a
        .label("transfer")
        .op(op::POP)
        .push(36u64)
        .op(op::CALLDATALOAD)
        .push(64u64)
        .op(op::MSTORE) // mem[64] = amount
        .op(op::CALLER);
    a = balance_slot_asm(a); // [fromSlot]
    a = a
        .op(op::DUP1)
        .op(op::SLOAD) // [fromSlot, fromBal]
        .op(op::DUP1)
        .push(64u64)
        .op(op::MLOAD)
        .op(op::GT) // amount > fromBal ?
        .jumpi("reject")
        .push(64u64)
        .op(op::MLOAD)
        .op(op::SWAP1)
        .op(op::SUB) // [fromSlot, fromBal - amount]
        .op(op::SWAP1)
        .op(op::SSTORE)
        .push(4u64)
        .op(op::CALLDATALOAD); // [to]
    a = balance_slot_asm(a); // [toSlot]
    a = a
        .op(op::DUP1)
        .op(op::SLOAD)
        .push(64u64)
        .op(op::MLOAD)
        .op(op::ADD)
        .op(op::SWAP1)
        .op(op::SSTORE)
        // LOG3 Transfer(caller, to, amount)
        .push(64u64)
        .op(op::MLOAD)
        .push(0u64)
        .op(op::MSTORE) // data = amount
        .push(4u64)
        .op(op::CALLDATALOAD) // topic3 = to
        .op(op::CALLER) // topic2 = from
        .push(transfer_topic) // topic1 = event sig
        .push(32u64)
        .push(0u64)
        .op(op::LOG3)
        .push(1u64)
        .ret_top();

    // --- balanceOf(address) ---
    a = a.label("balanceOf").op(op::POP).push(4u64).op(op::CALLDATALOAD);
    a = balance_slot_asm(a);
    a = a.op(op::SLOAD).ret_top();

    // --- approve(address spender, uint256 amount) ---
    a = a
        .label("approve")
        .op(op::POP)
        // inner = keccak(caller . 2)
        .op(op::CALLER)
        .push(96u64)
        .op(op::MSTORE)
        .push(2u64)
        .push(128u64)
        .op(op::MSTORE)
        .push(64u64)
        .push(96u64)
        .op(op::KECCAK256)
        .push(128u64)
        .op(op::MSTORE) // mem[128] = inner
        .push(4u64)
        .op(op::CALLDATALOAD)
        .push(96u64)
        .op(op::MSTORE) // mem[96] = spender
        .push(64u64)
        .push(96u64)
        .op(op::KECCAK256) // [slot]
        .push(36u64)
        .op(op::CALLDATALOAD) // [slot, amount]
        .op(op::SWAP1)
        .op(op::SSTORE)
        .push(1u64)
        .ret_top();

    // --- transferFrom(address from, address to, uint256 amount) ---
    a = a
        .label("transferFrom")
        .op(op::POP)
        .push(68u64)
        .op(op::CALLDATALOAD)
        .push(64u64)
        .op(op::MSTORE) // mem[64] = amount
        // allowance slot = keccak(caller . keccak(from . 2))
        .push(4u64)
        .op(op::CALLDATALOAD)
        .push(96u64)
        .op(op::MSTORE)
        .push(2u64)
        .push(128u64)
        .op(op::MSTORE)
        .push(64u64)
        .push(96u64)
        .op(op::KECCAK256)
        .push(128u64)
        .op(op::MSTORE)
        .op(op::CALLER)
        .push(96u64)
        .op(op::MSTORE)
        .push(64u64)
        .push(96u64)
        .op(op::KECCAK256) // [aSlot]
        .op(op::DUP1)
        .op(op::SLOAD) // [aSlot, allowance]
        .op(op::DUP1)
        .push(64u64)
        .op(op::MLOAD)
        .op(op::GT)
        .jumpi("reject")
        .push(64u64)
        .op(op::MLOAD)
        .op(op::SWAP1)
        .op(op::SUB)
        .op(op::SWAP1)
        .op(op::SSTORE)
        // from balance
        .push(4u64)
        .op(op::CALLDATALOAD);
    a = balance_slot_asm(a);
    a = a
        .op(op::DUP1)
        .op(op::SLOAD)
        .op(op::DUP1)
        .push(64u64)
        .op(op::MLOAD)
        .op(op::GT)
        .jumpi("reject")
        .push(64u64)
        .op(op::MLOAD)
        .op(op::SWAP1)
        .op(op::SUB)
        .op(op::SWAP1)
        .op(op::SSTORE)
        // to balance
        .push(36u64)
        .op(op::CALLDATALOAD);
    a = balance_slot_asm(a);
    a = a
        .op(op::DUP1)
        .op(op::SLOAD)
        .push(64u64)
        .op(op::MLOAD)
        .op(op::ADD)
        .op(op::SWAP1)
        .op(op::SSTORE)
        .push(1u64)
        .ret_top();

    // --- totalSupply() ---
    a = a
        .label("totalSupply")
        .op(op::POP)
        .push(0u64)
        .op(op::SLOAD)
        .ret_top();

    a = a.label("reject").push(0u64).push(0u64).op(op::REVERT);
    a.build()
}

/// Builds the router: `swap(tokenIn, tokenOut, amount)` pulls `amount`
/// of `tokenIn` via `transferFrom`, updates its two reserve slots, and
/// pays out `amount` of `tokenOut` via `transfer` — a 1:1 constant-sum
/// pool producing realistic depth-2 call trees.
pub fn router_runtime() -> Vec<u8> {
    let mut a = Asm::new()
        .push(0u64)
        .op(op::CALLDATALOAD)
        .push(224u64)
        .op(op::SHR)
        .op(op::DUP1)
        .push(sel::swap() as u64)
        .op(op::EQ)
        .jumpi("swap")
        .jump("reject");

    a = a
        .label("swap")
        .op(op::POP)
        // Build transferFrom(caller, this, amount) at mem[200..].
        .push(sel::transfer_from() as u64)
        .push(224u64)
        .op(op::SHL)
        .push(200u64)
        .op(op::MSTORE)
        .op(op::CALLER)
        .push(204u64)
        .op(op::MSTORE)
        .op(op::ADDRESS)
        .push(236u64)
        .op(op::MSTORE)
        .push(68u64)
        .op(op::CALLDATALOAD)
        .push(268u64)
        .op(op::MSTORE)
        .push(32u64) // ret len
        .push(0u64) // ret offset
        .push(100u64) // args len
        .push(200u64) // args offset
        .push(0u64) // value
        .push(4u64)
        .op(op::CALLDATALOAD) // tokenIn
        .op(op::GAS)
        .op(op::CALL)
        .op(op::ISZERO)
        .jumpi("reject")
        // Pool bookkeeping: reserves (slots 0/1), cumulative volume,
        // price accumulators, and a k-checkpoint (slots 2-5) — six
        // storage records per swap frame, like real AMM pools.
        .push(0u64)
        .op(op::SLOAD)
        .push(68u64)
        .op(op::CALLDATALOAD)
        .op(op::ADD)
        .push(0u64)
        .op(op::SSTORE)
        .push(1u64)
        .op(op::SLOAD)
        .push(68u64)
        .op(op::CALLDATALOAD)
        .op(op::SWAP1)
        .op(op::SUB)
        .push(1u64)
        .op(op::SSTORE)
        .push(2u64)
        .op(op::SLOAD)
        .push(68u64)
        .op(op::CALLDATALOAD)
        .op(op::ADD)
        .push(2u64)
        .op(op::SSTORE)
        .push(3u64)
        .op(op::SLOAD)
        .push(1u64)
        .op(op::ADD)
        .push(3u64)
        .op(op::SSTORE)
        .push(0u64)
        .op(op::SLOAD)
        .push(4u64)
        .op(op::SSTORE)
        .push(1u64)
        .op(op::SLOAD)
        .push(5u64)
        .op(op::SSTORE)
        // Build transfer(caller, amount) at mem[200..].
        .push(sel::transfer() as u64)
        .push(224u64)
        .op(op::SHL)
        .push(200u64)
        .op(op::MSTORE)
        .op(op::CALLER)
        .push(204u64)
        .op(op::MSTORE)
        .push(68u64)
        .op(op::CALLDATALOAD)
        .push(236u64)
        .op(op::MSTORE)
        .push(32u64)
        .push(0u64)
        .push(68u64)
        .push(200u64)
        .push(0u64)
        .push(36u64)
        .op(op::CALLDATALOAD) // tokenOut
        .op(op::GAS)
        .op(op::CALL)
        .op(op::ISZERO)
        .jumpi("reject")
        .push(1u64)
        .ret_top();

    a = a.label("reject").push(0u64).push(0u64).op(op::REVERT);
    a.build()
}

/// A contract that self-calls `n` times (calldata word 0 = n), producing
/// call depth `n + 1` — the Table I depth-distribution driver.
pub fn hopper_runtime() -> Vec<u8> {
    Asm::new()
        .push(0u64)
        .op(op::CALLDATALOAD) // [n]
        .op(op::DUP1)
        .op(op::ISZERO)
        .jumpi("base")
        .push(1u64)
        .op(op::SWAP1)
        .op(op::SUB) // [n-1]
        .push(0u64)
        .op(op::MSTORE)
        .push(32u64) // ret len
        .push(0u64) // ret offset
        .push(32u64) // args len
        .push(0u64) // args offset
        .push(0u64) // value
        .op(op::ADDRESS)
        .op(op::GAS)
        .op(op::CALL)
        .op(op::POP)
        .push(1u64)
        .ret_top()
        .label("base")
        .op(op::POP)
        .push(1u64)
        .ret_top()
        .build()
}

/// A contract that expands Memory to `calldata[0]` bytes and hashes it —
/// the memory-size distribution driver.
pub fn memhog_runtime() -> Vec<u8> {
    Asm::new()
        .push(0xFFu64) // value for MSTORE8
        .push(0u64)
        .op(op::CALLDATALOAD) // offset = n
        .op(op::MSTORE8)
        .op(op::MSIZE)
        .push(0u64)
        .op(op::KECCAK256)
        .ret_top()
        .build()
}

/// A gas bomb: spins a tight compute loop for `calldata[0]` iterations
/// (~26 gas each), then returns 1. Calibrated with more iterations than
/// the gas limit covers, it is a *well-formed* transaction that burns
/// its entire budget and monopolizes an HEVM core unless execution is
/// sliced — the resource-exhaustion adversary
/// ([`tape_sim::fault::FaultKind::GasBomb`]) made concrete.
pub fn gasbomb_runtime() -> Vec<u8> {
    Asm::new()
        .push(0u64)
        .op(op::CALLDATALOAD) // [n]
        .op(op::DUP1)
        .op(op::ISZERO)
        .jumpi("done")
        .label("loop")
        .push(1u64)
        .op(op::SWAP1)
        .op(op::SUB)
        .op(op::DUP1)
        .jumpi("loop")
        .label("done")
        .op(op::POP)
        .push(1u64)
        .ret_top()
        .build()
}

/// A roll-up style batcher: writes `calldata[0]` storage slots starting
/// at base `calldata[32]` — the storage-keys-per-frame tail driver.
pub fn batcher_runtime() -> Vec<u8> {
    Asm::new()
        .push(0u64)
        .op(op::CALLDATALOAD) // [count]
        .label("loop")
        .op(op::DUP1)
        .op(op::ISZERO)
        .jumpi("done")
        .op(op::DUP1)
        .push(32u64)
        .op(op::CALLDATALOAD)
        .op(op::ADD) // [count, base+count]
        .op(op::DUP2) // [count, slot, count]
        .op(op::SWAP1) // [count, count, slot]
        .op(op::SSTORE)
        .push(1u64)
        .op(op::SWAP1)
        .op(op::SUB)
        .jump("loop")
        .label("done")
        .op(op::POP)
        .push(1u64)
        .ret_top()
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tape_evm::{Env, Evm, Transaction};
    use tape_state::{Account, InMemoryState, StateReader};

    fn alice() -> Address {
        Address::from_low_u64(0xA11CE)
    }

    fn bob() -> Address {
        Address::from_low_u64(0xB0B)
    }

    fn token() -> Address {
        Address::from_low_u64(0x70CE)
    }

    fn setup_token() -> InMemoryState {
        let mut state = InMemoryState::new();
        state.put_account(alice(), Account::with_balance(U256::from(u64::MAX)));
        state.put_account(bob(), Account::with_balance(U256::from(u64::MAX)));
        let mut t = Account::with_code(erc20_runtime());
        t.storage.insert(U256::ZERO, U256::from(1_000_000u64)); // totalSupply
        t.storage.insert(balance_slot(&alice()), U256::from(1_000u64));
        state.put_account(token(), t);
        state
    }

    fn call_ok(evm: &mut Evm<&InMemoryState>, from: Address, to: Address, data: Vec<u8>) -> Vec<u8> {
        let result = evm.transact(&Transaction::call(from, to, data)).unwrap();
        assert!(result.success, "call failed: {:?}", result.halt);
        result.output
    }

    #[test]
    fn selector_values() {
        // The canonical ERC-20 selector everyone knows by heart.
        assert_eq!(sel::transfer(), 0xa9059cbb);
        assert_eq!(sel::balance_of(), 0x70a08231);
        assert_eq!(sel::approve(), 0x095ea7b3);
        assert_eq!(sel::transfer_from(), 0x23b872dd);
        assert_eq!(sel::total_supply(), 0x18160ddd);
    }

    #[test]
    fn erc20_transfer_and_balance() {
        let state = setup_token();
        let mut evm = Evm::new(Env::default(), &state);

        let out = call_ok(
            &mut evm,
            alice(),
            token(),
            encode_call(sel::transfer(), &[bob().into_word(), U256::from(300u64)]),
        );
        assert_eq!(U256::from_be_slice(&out), U256::ONE);

        let out = call_ok(
            &mut evm,
            alice(),
            token(),
            encode_call(sel::balance_of(), &[alice().into_word()]),
        );
        assert_eq!(U256::from_be_slice(&out), U256::from(700u64));
        let out = call_ok(
            &mut evm,
            alice(),
            token(),
            encode_call(sel::balance_of(), &[bob().into_word()]),
        );
        assert_eq!(U256::from_be_slice(&out), U256::from(300u64));
    }

    #[test]
    fn erc20_insufficient_balance_reverts() {
        let state = setup_token();
        let mut evm = Evm::new(Env::default(), &state);
        let result = evm
            .transact(&Transaction::call(
                bob(),
                token(),
                encode_call(sel::transfer(), &[alice().into_word(), U256::from(1u64)]),
            ))
            .unwrap();
        assert!(!result.success);
    }

    #[test]
    fn erc20_transfer_emits_log() {
        let state = setup_token();
        let mut evm = Evm::new(Env::default(), &state);
        let result = evm
            .transact(&Transaction::call(
                alice(),
                token(),
                encode_call(sel::transfer(), &[bob().into_word(), U256::from(5u64)]),
            ))
            .unwrap();
        assert!(result.success);
        assert_eq!(result.logs.len(), 1);
        let log = &result.logs[0];
        assert_eq!(log.topics.len(), 3);
        assert_eq!(
            log.topics[0],
            keccak256(b"Transfer(address,address,uint256)")
        );
        assert_eq!(U256::from_be_slice(&log.data), U256::from(5u64));
    }

    #[test]
    fn erc20_approve_and_transfer_from() {
        let state = setup_token();
        let mut evm = Evm::new(Env::default(), &state);

        // alice approves bob for 100.
        call_ok(
            &mut evm,
            alice(),
            token(),
            encode_call(sel::approve(), &[bob().into_word(), U256::from(100u64)]),
        );
        // bob pulls 60 from alice to himself.
        call_ok(
            &mut evm,
            bob(),
            token(),
            encode_call(
                sel::transfer_from(),
                &[alice().into_word(), bob().into_word(), U256::from(60u64)],
            ),
        );
        let out = call_ok(
            &mut evm,
            bob(),
            token(),
            encode_call(sel::balance_of(), &[bob().into_word()]),
        );
        assert_eq!(U256::from_be_slice(&out), U256::from(60u64));

        // Pulling beyond the remaining allowance (40) reverts.
        let result = evm
            .transact(&Transaction::call(
                bob(),
                token(),
                encode_call(
                    sel::transfer_from(),
                    &[alice().into_word(), bob().into_word(), U256::from(50u64)],
                ),
            ))
            .unwrap();
        assert!(!result.success);
    }

    #[test]
    fn erc20_total_supply_and_unknown_selector() {
        let state = setup_token();
        let mut evm = Evm::new(Env::default(), &state);
        let out = call_ok(&mut evm, alice(), token(), encode_call(sel::total_supply(), &[]));
        assert_eq!(U256::from_be_slice(&out), U256::from(1_000_000u64));

        let result = evm
            .transact(&Transaction::call(alice(), token(), vec![0xde, 0xad, 0xbe, 0xef]))
            .unwrap();
        assert!(!result.success);
    }

    #[test]
    fn router_swap_moves_tokens() {
        let mut state = setup_token();
        let token_b = Address::from_low_u64(0x70CF);
        let router = Address::from_low_u64(0xDE);

        let mut tb = Account::with_code(erc20_runtime());
        tb.storage.insert(balance_slot(&router), U256::from(10_000u64));
        state.put_account(token_b, tb);
        let mut r = Account::with_code(router_runtime());
        r.storage.insert(U256::ZERO, U256::from(50_000u64));
        r.storage.insert(U256::ONE, U256::from(50_000u64));
        state.put_account(router, r);

        let mut evm = Evm::new(Env::default(), &state);
        // alice approves the router on token A, then swaps 200 A -> B.
        call_ok(
            &mut evm,
            alice(),
            token(),
            encode_call(sel::approve(), &[router.into_word(), U256::from(500u64)]),
        );
        call_ok(
            &mut evm,
            alice(),
            router,
            encode_call(
                sel::swap(),
                &[token().into_word(), token_b.into_word(), U256::from(200u64)],
            ),
        );

        // alice: 800 A, 200 B. Router: 200 A. Reserves adjusted.
        let bal = |evm: &mut Evm<&InMemoryState>, t: Address, who: Address| {
            let out = call_ok(evm, alice(), t, encode_call(sel::balance_of(), &[who.into_word()]));
            U256::from_be_slice(&out)
        };
        assert_eq!(bal(&mut evm, token(), alice()), U256::from(800u64));
        assert_eq!(bal(&mut evm, token(), router), U256::from(200u64));
        assert_eq!(bal(&mut evm, token_b, alice()), U256::from(200u64));
        assert_eq!(
            evm.state_mut().sload(&router, &U256::ZERO).value,
            U256::from(50_200u64)
        );
        assert_eq!(
            evm.state_mut().sload(&router, &U256::ONE).value,
            U256::from(49_800u64)
        );
    }

    #[test]
    fn router_swap_without_approval_reverts() {
        let mut state = setup_token();
        let router = Address::from_low_u64(0xDE);
        state.put_account(router, Account::with_code(router_runtime()));
        let mut evm = Evm::new(Env::default(), &state);
        let result = evm
            .transact(&Transaction::call(
                alice(),
                router,
                encode_call(
                    sel::swap(),
                    &[token().into_word(), token().into_word(), U256::from(5u64)],
                ),
            ))
            .unwrap();
        assert!(!result.success);
    }

    #[test]
    fn hopper_reaches_requested_depth() {
        let mut state = InMemoryState::new();
        state.put_account(alice(), Account::with_balance(U256::from(u64::MAX)));
        let hopper = Address::from_low_u64(0x40B);
        state.put_account(hopper, Account::with_code(hopper_runtime()));

        let mut evm = tape_evm::Evm::with_inspector(
            Env::default(),
            &state,
            tape_evm::StructTracer::without_stack(),
        );
        let mut tx = Transaction::call(alice(), hopper, U256::from(4u64).to_be_bytes().to_vec());
        tx.gas_limit = 3_000_000;
        let result = evm.transact(&tx).unwrap();
        assert!(result.success);
        let max_depth = evm.inspector().calls().iter().map(|c| c.depth).max().unwrap();
        assert_eq!(max_depth, 5); // n = 4 -> depth 5
    }

    #[test]
    fn memhog_expands_memory() {
        let mut state = InMemoryState::new();
        state.put_account(alice(), Account::with_balance(U256::from(u64::MAX)));
        let hog = Address::from_low_u64(0x406);
        state.put_account(hog, Account::with_code(memhog_runtime()));

        let mut evm = Evm::new(Env::default(), &state);
        let mut tx =
            Transaction::call(alice(), hog, U256::from(3000u64).to_be_bytes().to_vec());
        tx.gas_limit = 3_000_000;
        let result = evm.transact(&tx).unwrap();
        assert!(result.success, "halt: {:?}", result.halt);
    }

    #[test]
    fn batcher_writes_n_slots() {
        let mut state = InMemoryState::new();
        state.put_account(alice(), Account::with_balance(U256::from(u64::MAX)));
        let batcher = Address::from_low_u64(0xBA7);
        state.put_account(batcher, Account::with_code(batcher_runtime()));

        let mut evm = Evm::new(Env::default(), &state);
        let mut data = U256::from(10u64).to_be_bytes().to_vec(); // count
        data.extend_from_slice(&U256::from(1000u64).to_be_bytes()); // base
        let mut tx = Transaction::call(alice(), batcher, data);
        tx.gas_limit = 5_000_000;
        let result = evm.transact(&tx).unwrap();
        assert!(result.success);
        assert_eq!(evm.state().changes().storage.len(), 10);
        assert_eq!(
            evm.state_mut().sload(&batcher, &U256::from(1001u64)).value,
            U256::ONE
        );
        assert_eq!(
            evm.state_mut().sload(&batcher, &U256::from(1010u64)).value,
            U256::from(10u64)
        );
    }

    #[test]
    fn padding_preserves_behavior() {
        let mut state = setup_token();
        let padded = Address::from_low_u64(0x7ADE);
        let mut t = Account::with_code(pad_code(erc20_runtime(), 24_000));
        t.storage.insert(balance_slot(&alice()), U256::from(50u64));
        state.put_account(padded, t);
        assert_eq!(state.code(&padded).len(), 24_000);

        let mut evm = Evm::new(Env::default(), &state);
        let out = call_ok(
            &mut evm,
            alice(),
            padded,
            encode_call(sel::balance_of(), &[alice().into_word()]),
        );
        assert_eq!(U256::from_be_slice(&out), U256::from(50u64));
    }

    #[test]
    fn storage_slots_match_solidity_rules() {
        // balance_slot = keccak(pad(addr) ++ pad(1))
        let manual = {
            let mut buf = [0u8; 64];
            buf[..32].copy_from_slice(&alice().into_word().to_be_bytes());
            buf[63] = 1;
            keccak256(buf).into_u256()
        };
        assert_eq!(balance_slot(&alice()), manual);
        assert_ne!(balance_slot(&alice()), balance_slot(&bob()));
        assert_ne!(
            allowance_slot(&alice(), &bob()),
            allowance_slot(&bob(), &alice())
        );
    }
}
