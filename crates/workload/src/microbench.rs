//! Microbenchmark bytecode for Figure 5: per-operation cost of
//! arithmetic, (warm) local storage access, and an ERC-20 Transfer, run
//! on Geth / TSC-VEE / HarDTAPE with all data warmed to the lowest cache.

use tape_evm::asm::Asm;
use tape_evm::opcode::op;

/// A loop executing `iterations` rounds of ALU work (ADD, MUL, XOR) —
/// the Fig. 5 "Arithmetic" benchmark.
pub fn arithmetic_loop(iterations: u64) -> Vec<u8> {
    Asm::new()
        .push(0x1234_5678u64) // accumulator
        .push(iterations) // counter
        .label("loop")
        .op(op::DUP1)
        .op(op::ISZERO)
        .jumpi("done")
        // acc = (acc * 3 + counter) ^ 0x5555
        .op(op::SWAP1)
        .push(3u64)
        .op(op::MUL)
        .op(op::DUP2)
        .op(op::ADD)
        .push(0x5555u64)
        .op(op::XOR)
        .op(op::SWAP1)
        .push(1u64)
        .op(op::SWAP1)
        .op(op::SUB)
        .jump("loop")
        .label("done")
        .op(op::POP)
        .ret_top()
        .build()
}

/// A loop performing `iterations` warm SLOAD+SSTORE pairs on one slot —
/// the Fig. 5 "Storage" benchmark (all accesses warm after the first).
pub fn storage_loop(iterations: u64) -> Vec<u8> {
    Asm::new()
        .push(iterations)
        .label("loop")
        .op(op::DUP1)
        .op(op::ISZERO)
        .jumpi("done")
        // slot7 = slot7 + 1
        .push(7u64)
        .op(op::SLOAD)
        .push(1u64)
        .op(op::ADD)
        .push(7u64)
        .op(op::SSTORE)
        .push(1u64)
        .op(op::SWAP1)
        .op(op::SUB)
        .jump("loop")
        .label("done")
        .op(op::POP)
        .push(7u64)
        .op(op::SLOAD)
        .ret_top()
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tape_evm::{Env, Evm, Transaction};
    use tape_primitives::{Address, U256};
    use tape_state::{Account, InMemoryState};

    fn run(code: Vec<u8>) -> U256 {
        let sender = Address::from_low_u64(1);
        let target = Address::from_low_u64(2_000);
        let mut state = InMemoryState::new();
        state.put_account(sender, Account::with_balance(U256::from(u64::MAX)));
        state.put_account(target, Account::with_code(code));
        let mut evm = Evm::new(Env::default(), &state);
        let mut tx = Transaction::call(sender, target, vec![]);
        tx.gas_limit = 10_000_000;
        let result = evm.transact(&tx).unwrap();
        assert!(result.success, "halt: {:?}", result.halt);
        U256::from_be_slice(&result.output)
    }

    #[test]
    fn arithmetic_loop_terminates() {
        let v10 = run(arithmetic_loop(10));
        let v20 = run(arithmetic_loop(20));
        assert_ne!(v10, v20);
        assert_eq!(run(arithmetic_loop(10)), v10); // deterministic
    }

    #[test]
    fn storage_loop_counts() {
        assert_eq!(run(storage_loop(5)), U256::from(5u64));
        assert_eq!(run(storage_loop(32)), U256::from(32u64));
    }
}
