//! The Table I statistics collector: per-frame memory-like sizes,
//! storage records per frame, and call depth per transaction.

use std::collections::HashSet;
use tape_evm::{FrameEnd, FrameStart, Inspector, StateAccess, StepInfo};
use tape_primitives::{Address, U256};
use tape_sim::stats::Histogram;

/// Measurements of one completed execution frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameRecord {
    /// Code size in bytes.
    pub code: usize,
    /// Input (calldata) size in bytes.
    pub input: usize,
    /// Peak Memory size in bytes.
    pub memory: usize,
    /// Peak ReturnData size in bytes (largest sub-call output received).
    pub return_data: usize,
    /// Distinct storage records accessed.
    pub storage_keys: usize,
}

#[derive(Debug, Default)]
struct OpenFrame {
    code: usize,
    input: usize,
    memory: usize,
    return_data: usize,
    keys: HashSet<(Address, U256)>,
}

/// An [`Inspector`] that aggregates the paper's Table I distributions.
///
/// Attach it to either engine, run transactions, call
/// [`finish_transaction`](Self::finish_transaction) after each, then
/// render with [`table_one`].
#[derive(Debug, Default)]
pub struct TableOneCollector {
    open: Vec<OpenFrame>,
    /// Completed frame records.
    pub frames: Vec<FrameRecord>,
    /// Max call depth of each completed transaction.
    pub depths: Vec<usize>,
    current_max_depth: usize,
}

impl TableOneCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the end of a transaction (closes the depth sample).
    pub fn finish_transaction(&mut self) {
        if self.current_max_depth > 0 {
            self.depths.push(self.current_max_depth);
        }
        self.current_max_depth = 0;
        self.open.clear();
    }
}

impl Inspector for TableOneCollector {
    fn step(&mut self, step: &StepInfo<'_>) {
        if let Some(top) = self.open.last_mut() {
            top.memory = top.memory.max(step.memory_size);
        }
    }

    fn call_start(&mut self, frame: &FrameStart) {
        self.current_max_depth = self.current_max_depth.max(frame.depth);
        self.open.push(OpenFrame {
            code: frame.code_len,
            input: frame.input_len,
            ..Default::default()
        });
    }

    fn call_end(&mut self, end: &FrameEnd) {
        if let Some(done) = self.open.pop() {
            self.frames.push(FrameRecord {
                code: done.code,
                input: done.input,
                memory: done.memory,
                return_data: done.return_data,
                storage_keys: done.keys.len(),
            });
        }
        if let Some(parent) = self.open.last_mut() {
            parent.return_data = parent.return_data.max(end.output_len);
        }
    }

    fn state_access(&mut self, access: &StateAccess) {
        if let Some(top) = self.open.last_mut() {
            match access {
                StateAccess::StorageRead(addr, key) | StateAccess::StorageWrite(addr, key, _) => {
                    top.keys.insert((*addr, *key));
                }
                _ => {}
            }
        }
    }
}

/// The rendered Table I: bucket shares per column.
#[derive(Debug, Clone)]
pub struct TableOne {
    /// Bucket shares for code size per frame: <1k, 1–4k, 4–12k, 12–64k, >64k.
    pub code: Vec<f64>,
    /// Same buckets for Input size.
    pub input: Vec<f64>,
    /// Same buckets for peak Memory size.
    pub memory: Vec<f64>,
    /// Same buckets for peak ReturnData size.
    pub return_data: Vec<f64>,
    /// Storage records per frame: ≤4, 5–16, 17–64, >64.
    pub storage_keys: Vec<f64>,
    /// Call depth per transaction: 1, 2–5, 6–10, >10.
    pub depth: Vec<f64>,
    /// Number of frames sampled.
    pub frame_count: usize,
    /// Number of transactions sampled.
    pub tx_count: usize,
}

/// Size buckets used by the paper (upper bounds, inclusive).
pub const SIZE_BOUNDS: [u64; 4] = [1024 - 1, 4 * 1024 - 1, 12 * 1024 - 1, 64 * 1024 - 1];
/// Storage-record buckets (≤4, 5–16, 17–64, >64).
pub const KEY_BOUNDS: [u64; 3] = [4, 16, 64];
/// Call-depth buckets (1, 2–5, 6–10, >10).
pub const DEPTH_BOUNDS: [u64; 3] = [1, 5, 10];

/// Renders collected frames and depths into Table I shares.
pub fn table_one(collector: &TableOneCollector) -> TableOne {
    let size_hist = |f: &dyn Fn(&FrameRecord) -> usize| {
        let mut h = Histogram::new(SIZE_BOUNDS.to_vec());
        for frame in &collector.frames {
            h.record(f(frame) as u64);
        }
        h.shares()
    };
    let mut keys = Histogram::new(KEY_BOUNDS.to_vec());
    for frame in &collector.frames {
        keys.record(frame.storage_keys as u64);
    }
    let mut depth = Histogram::new(DEPTH_BOUNDS.to_vec());
    for &d in &collector.depths {
        depth.record(d as u64);
    }
    TableOne {
        code: size_hist(&|f| f.code),
        input: size_hist(&|f| f.input),
        memory: size_hist(&|f| f.memory),
        return_data: size_hist(&|f| f.return_data),
        storage_keys: keys.shares(),
        depth: depth.shares(),
        frame_count: collector.frames.len(),
        tx_count: collector.depths.len(),
    }
}

impl TableOne {
    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let pct = |v: f64| format!("{:>6.1}%", v * 100.0);
        let mut out = String::new();
        out.push_str("(a) Memory-like size by type in bytes per frame\n");
        out.push_str("          code    input   memory   return\n");
        let labels = ["<1k", "1-4k", "4-12k", "12-64k", ">64k"];
        for (i, label) in labels.iter().enumerate() {
            out.push_str(&format!(
                "{label:>7} {} {} {} {}\n",
                pct(self.code[i]),
                pct(self.input[i]),
                pct(self.memory[i]),
                pct(self.return_data[i]),
            ));
        }
        out.push_str("\n(b) storage records per frame   (c) call depth per tx\n");
        let key_labels = ["<=4", "5-16", "17-64", ">64"];
        let depth_labels = ["1", "2-5", "6-10", ">10"];
        for i in 0..4 {
            out.push_str(&format!(
                "{:>7} {}          {:>7} {}\n",
                key_labels[i],
                pct(self.storage_keys[i]),
                depth_labels[i],
                pct(self.depth[i]),
            ));
        }
        out.push_str(&format!(
            "\n({} frames over {} transactions)\n",
            self.frame_count, self.tx_count
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contracts;
    use tape_evm::{Env, Evm, Transaction};
    use tape_state::{Account, InMemoryState};

    #[test]
    fn collector_measures_erc20_transfer() {
        let alice = Address::from_low_u64(1);
        let token = Address::from_low_u64(2000);
        let mut state = InMemoryState::new();
        state.put_account(alice, Account::with_balance(U256::from(u64::MAX)));
        let mut t = Account::with_code(contracts::erc20_runtime());
        t.storage
            .insert(contracts::balance_slot(&alice), U256::from(100u64));
        state.put_account(token, t);

        let mut evm = Evm::with_inspector(Env::default(), &state, TableOneCollector::new());
        let tx = Transaction::call(
            alice,
            token,
            contracts::encode_call(
                contracts::sel::transfer(),
                &[Address::from_low_u64(3).into_word(), U256::from(10u64)],
            ),
        );
        evm.transact(&tx).unwrap();
        evm.inspector_mut().finish_transaction();
        let collector = evm.into_inspector();

        assert_eq!(collector.frames.len(), 1);
        let frame = &collector.frames[0];
        assert_eq!(frame.input, 68); // selector + 2 words
        assert_eq!(frame.code, contracts::erc20_runtime().len());
        assert_eq!(frame.storage_keys, 2); // two balance slots
        assert!(frame.memory > 0 && frame.memory < 4096);
        assert_eq!(collector.depths, vec![1]);
    }

    #[test]
    fn table_renders_with_buckets() {
        let mut collector = TableOneCollector::new();
        collector.frames.push(FrameRecord {
            code: 500,
            input: 68,
            memory: 200,
            return_data: 0,
            storage_keys: 2,
        });
        collector.frames.push(FrameRecord {
            code: 20_000,
            input: 5000,
            memory: 2000,
            return_data: 32,
            storage_keys: 30,
        });
        collector.depths.extend([1, 3, 7]);
        let table = table_one(&collector);
        assert_eq!(table.frame_count, 2);
        assert_eq!(table.tx_count, 3);
        assert!((table.code[0] - 0.5).abs() < 1e-9);
        assert!((table.code[3] - 0.5).abs() < 1e-9);
        assert!((table.storage_keys[0] - 0.5).abs() < 1e-9);
        assert!((table.depth[0] - 1.0 / 3.0).abs() < 1e-9);
        let rendered = table.render();
        assert!(rendered.contains("code"));
        assert!(rendered.contains("12-64k"));
    }

    #[test]
    fn nested_calls_attribute_to_frames() {
        // Router swap: the collector should see 3 frames (router + two
        // token calls) with return data flowing up.
        let alice = Address::from_low_u64(1);
        let token_a = Address::from_low_u64(2000);
        let token_b = Address::from_low_u64(2001);
        let router = Address::from_low_u64(3000);
        let mut state = InMemoryState::new();
        state.put_account(alice, Account::with_balance(U256::from(u64::MAX)));
        let mut ta = Account::with_code(contracts::erc20_runtime());
        ta.storage
            .insert(contracts::balance_slot(&alice), U256::from(1000u64));
        ta.storage.insert(
            contracts::allowance_slot(&alice, &router),
            U256::from(1000u64),
        );
        state.put_account(token_a, ta);
        let mut tb = Account::with_code(contracts::erc20_runtime());
        tb.storage
            .insert(contracts::balance_slot(&router), U256::from(1000u64));
        state.put_account(token_b, tb);
        state.put_account(router, Account::with_code(contracts::router_runtime()));

        let mut evm = Evm::with_inspector(Env::default(), &state, TableOneCollector::new());
        let tx = Transaction::call(
            alice,
            router,
            contracts::encode_call(
                contracts::sel::swap(),
                &[token_a.into_word(), token_b.into_word(), U256::from(10u64)],
            ),
        );
        let result = evm.transact(&tx).unwrap();
        assert!(result.success);
        evm.inspector_mut().finish_transaction();
        let collector = evm.into_inspector();

        assert_eq!(collector.frames.len(), 3);
        assert_eq!(collector.depths, vec![2]);
        // The router frame (last to close) received 32-byte returns.
        let router_frame = collector.frames.last().unwrap();
        assert_eq!(router_frame.return_data, 32);
    }
}
