//! # tape-workload
//!
//! Synthetic workload generation: the reproduction's stand-in for the
//! paper's evaluation set (Ethereum Mainnet blocks #19145194–#19145293).
//!
//! * [`contracts`] — hand-assembled EVM contracts (ERC-20, swap router,
//!   deep caller, memory stress, roll-up batcher) with Solidity-style
//!   storage layouts.
//! * [`evalset`] — the deterministic block/transaction generator,
//!   calibrated to Table I's published marginals.
//! * [`stats`] — the Table I collector ([`stats::TableOneCollector`])
//!   that measures per-frame memory-like sizes, storage records, and
//!   call depths from live execution.
//! * [`microbench`] — Figure 5's per-operation benchmarks.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contracts;
pub mod evalset;
pub mod microbench;
pub mod stats;

pub use evalset::{EvalSet, EvalSetConfig};
pub use stats::{table_one, TableOne, TableOneCollector};
