//! The synthetic evaluation set: a deterministic stand-in for Ethereum
//! Mainnet blocks #19145194–#19145293 (the paper's workload), calibrated
//! so its Table I marginals match the published distributions.
//!
//! See DESIGN.md for the substitution argument: the paper consumes its
//! evaluation set only through these statistics and the opcode mix, so a
//! generator matching the marginals exercises the same code paths.

use crate::contracts;
use tape_crypto::SecureRng;
use tape_evm::{Env, Transaction};
use tape_primitives::{Address, U256};
use tape_state::{Account, InMemoryState};

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct EvalSetConfig {
    /// Number of blocks (paper: 100).
    pub blocks: usize,
    /// Transactions per block (mainnet: ~200).
    pub txs_per_block: usize,
    /// Number of user EOAs.
    pub users: usize,
    /// Number of ERC-20 tokens.
    pub tokens: usize,
    /// RNG seed (the evaluation set is fully deterministic).
    pub seed: u64,
}

impl Default for EvalSetConfig {
    fn default() -> Self {
        EvalSetConfig { blocks: 100, txs_per_block: 200, users: 64, tokens: 8, seed: 19_145_194 }
    }
}

impl EvalSetConfig {
    /// A small configuration for unit tests and quick runs.
    pub fn small() -> Self {
        EvalSetConfig { blocks: 4, txs_per_block: 25, users: 12, tokens: 4, seed: 7 }
    }
}

/// The generated evaluation set.
#[derive(Debug)]
pub struct EvalSet {
    /// Genesis world state (users funded, tokens seeded, approvals set).
    pub genesis: InMemoryState,
    /// Execution environment of the first block.
    pub env: Env,
    /// Transactions per block.
    pub blocks: Vec<Vec<Transaction>>,
    /// User EOAs.
    pub users: Vec<Address>,
    /// Token contracts.
    pub tokens: Vec<Address>,
    /// The swap router.
    pub router: Address,
    /// The deep self-caller used for shallow call chains (depth 2–5).
    pub hopper: Address,
    /// The deep self-caller used for deep call chains (depth 6–10);
    /// padded larger, calibrating the code-size column.
    pub deep_hopper: Address,
    /// The settlement contract writing 5–16 storage records per frame.
    pub settler: Address,
    /// The memory-stress contract.
    pub memhog: Address,
    /// The roll-up style batch writer.
    pub batcher: Address,
    /// The gas-bomb contract: a compute loop that burns a whole gas
    /// limit. Never drawn by [`sample_transaction`](EvalSet::generate)
    /// — adversarial tenants request it explicitly via
    /// [`EvalSet::gas_bomb_tx`].
    pub gasbomb: Address,
}

/// Code sizes assigned to the token fleet, drawn to reproduce Table I's
/// code-size column (<1k: ~10%, 1–4k: ~25%, 4–12k: ~40%, 12–64k: ~25%).
const TOKEN_SIZES: [usize; 8] = [600, 2_500, 3_500, 8_000, 9_000, 10_000, 24_000, 30_000];

impl EvalSet {
    /// Generates the evaluation set deterministically from the config.
    pub fn generate(config: &EvalSetConfig) -> EvalSet {
        let mut rng = SecureRng::from_seed(&config.seed.to_be_bytes());
        let mut genesis = InMemoryState::new();

        let users: Vec<Address> =
            (0..config.users).map(|i| Address::from_low_u64(0x1000 + i as u64)).collect();
        let tokens: Vec<Address> =
            (0..config.tokens).map(|i| Address::from_low_u64(0x20_0000 + i as u64)).collect();
        let router = Address::from_low_u64(0x30_0000);
        let hopper = Address::from_low_u64(0x30_0001);
        let memhog = Address::from_low_u64(0x30_0002);
        let batcher = Address::from_low_u64(0x30_0003);
        let deep_hopper = Address::from_low_u64(0x30_0004);
        let settler = Address::from_low_u64(0x30_0005);
        let gasbomb = Address::from_low_u64(0x30_0006);

        let eth = U256::from(10_000_000_000_000_000_000u64); // 10 ETH
        for user in &users {
            genesis.put_account(*user, Account::with_balance(eth));
        }

        let token_funds = U256::from(1_000_000_000_000u64);
        let huge = U256::from(u64::MAX);
        for (i, token) in tokens.iter().enumerate() {
            let size = TOKEN_SIZES[i % TOKEN_SIZES.len()];
            let mut account =
                Account::with_code(contracts::pad_code(contracts::erc20_runtime(), size));
            account.storage.insert(U256::ZERO, huge); // totalSupply
            for user in &users {
                account
                    .storage
                    .insert(contracts::balance_slot(user), token_funds);
                account
                    .storage
                    .insert(contracts::allowance_slot(user, &router), huge);
            }
            // The router holds inventory of every token for payouts.
            account
                .storage
                .insert(contracts::balance_slot(&router), token_funds);
            genesis.put_account(*token, account);
        }

        let mut router_account =
            Account::with_code(contracts::pad_code(contracts::router_runtime(), 2_500));
        router_account.storage.insert(U256::ZERO, token_funds);
        router_account.storage.insert(U256::ONE, token_funds);
        genesis.put_account(router, router_account);
        genesis.put_account(
            hopper,
            Account::with_code(contracts::pad_code(contracts::hopper_runtime(), 8_000)),
        );
        genesis.put_account(
            deep_hopper,
            Account::with_code(contracts::pad_code(contracts::hopper_runtime(), 24_000)),
        );
        genesis.put_account(
            settler,
            Account::with_code(contracts::pad_code(contracts::batcher_runtime(), 2_500)),
        );
        genesis.put_account(memhog, Account::with_code(contracts::memhog_runtime()));
        genesis.put_account(batcher, Account::with_code(contracts::batcher_runtime()));
        genesis.put_account(gasbomb, Account::with_code(contracts::gasbomb_runtime()));

        let mut set = EvalSet {
            genesis,
            env: Env::default(),
            blocks: Vec::with_capacity(config.blocks),
            users,
            tokens,
            router,
            hopper,
            deep_hopper,
            settler,
            memhog,
            batcher,
            gasbomb,
        };
        for _ in 0..config.blocks {
            let block = (0..config.txs_per_block)
                .map(|_| set.sample_transaction(&mut rng))
                .collect();
            set.blocks.push(block);
        }
        set
    }

    /// Total transactions across all blocks.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(Vec::len).sum()
    }

    /// `true` when no transactions were generated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flattened view of every transaction.
    pub fn all_transactions(&self) -> impl Iterator<Item = &Transaction> {
        self.blocks.iter().flatten()
    }

    /// A gas-bomb transaction from `from`: the loop count is calibrated
    /// to *overshoot* `gas_limit` (~26 gas per iteration, requested at
    /// one iteration per 20 gas), so the transaction is well-formed but
    /// reliably burns its entire budget before halting out-of-gas. One
    /// such transaction pins an HEVM core for `gas_limit` worth of
    /// virtual time unless execution is sliced.
    pub fn gas_bomb_tx(&self, from: Address, gas_limit: u64) -> Transaction {
        let iterations = gas_limit / 20;
        Transaction {
            gas_limit,
            ..Transaction::call(
                from,
                self.gasbomb,
                U256::from(iterations).to_be_bytes().to_vec(),
            )
        }
    }

    /// A saturation bundle for one adversarial tenant: `count` gas
    /// bombs of `gas_limit` each — the load shape of the bounded-tail
    /// acceptance test (one bomb tenant vs. several honest ones).
    pub fn gas_bomb_bundle(
        &self,
        from: Address,
        count: usize,
        gas_limit: u64,
    ) -> Vec<Transaction> {
        (0..count).map(|_| self.gas_bomb_tx(from, gas_limit)).collect()
    }

    fn pick_user(&self, rng: &mut SecureRng) -> Address {
        self.users[rng.next_below(self.users.len() as u64) as usize]
    }

    fn pick_token(&self, rng: &mut SecureRng) -> Address {
        self.tokens[rng.next_below(self.tokens.len() as u64) as usize]
    }

    /// Draws one transaction from the calibrated mix.
    fn sample_transaction(&self, rng: &mut SecureRng) -> Transaction {
        let from = self.pick_user(rng);
        let roll = rng.next_below(100);
        match roll {
            // 20%: direct ERC-20 transfer (depth 1, 2 storage records).
            0..=19 => {
                let to = self.pick_user(rng);
                let token = self.pick_token(rng);
                let amount = U256::from(1 + rng.next_below(1_000));
                Transaction {
                    gas_limit: 300_000,
                    ..Transaction::call(
                        from,
                        token,
                        contracts::encode_call(
                            contracts::sel::transfer(),
                            &[to.into_word(), amount],
                        ),
                    )
                }
            }
            // 6%: plain ETH transfer.
            20..=25 => {
                let to = self.pick_user(rng);
                Transaction::transfer(from, to, U256::from(1 + rng.next_below(10_000)))
            }
            // 6%: balanceOf queries (depth 1, read-only).
            26..=31 => {
                let who = self.pick_user(rng);
                let token = self.pick_token(rng);
                Transaction {
                    gas_limit: 100_000,
                    ..Transaction::call(
                        from,
                        token,
                        contracts::encode_call(
                            contracts::sel::balance_of(),
                            &[who.into_word()],
                        ),
                    )
                }
            }
            // 3%: approvals.
            32..=34 => {
                let spender = self.pick_user(rng);
                let token = self.pick_token(rng);
                Transaction {
                    gas_limit: 150_000,
                    ..Transaction::call(
                        from,
                        token,
                        contracts::encode_call(
                            contracts::sel::approve(),
                            &[spender.into_word(), U256::from(rng.next_below(1 << 30))],
                        ),
                    )
                }
            }
            // 4%: settlements writing 5-16 storage records.
            35..=38 => {
                let count = 5 + rng.next_below(12);
                let base = rng.next_below(1 << 40);
                let mut data = U256::from(count).to_be_bytes().to_vec();
                data.extend_from_slice(&U256::from(base).to_be_bytes());
                Transaction {
                    gas_limit: 2_000_000,
                    ..Transaction::call(from, self.settler, data)
                }
            }
            // 2%: memory stress (1-8 KB expansions).
            39..=40 => {
                let size = 1_024 + rng.next_below(7 * 1024);
                Transaction {
                    gas_limit: 2_000_000,
                    ..Transaction::call(
                        from,
                        self.memhog,
                        U256::from(size).to_be_bytes().to_vec(),
                    )
                }
            }
            // 1%: roll-up style batches (17-64 storage records).
            41 => {
                let count = 17 + rng.next_below(48);
                let base = rng.next_below(1 << 40);
                let mut data = U256::from(count).to_be_bytes().to_vec();
                data.extend_from_slice(&U256::from(base).to_be_bytes());
                Transaction {
                    gas_limit: 5_000_000,
                    ..Transaction::call(from, self.batcher, data)
                }
            }
            // 36%: router swap (depth 2; 6 pool records + token records).
            42..=77 => {
                let token_in = self.pick_token(rng);
                let mut token_out = self.pick_token(rng);
                if token_out == token_in {
                    token_out = self.tokens[(self
                        .tokens
                        .iter()
                        .position(|t| *t == token_in)
                        .expect("token from fleet")
                        + 1)
                        % self.tokens.len()];
                }
                let amount = U256::from(1 + rng.next_below(500));
                Transaction {
                    gas_limit: 600_000,
                    ..Transaction::call(
                        from,
                        self.router,
                        contracts::encode_call(
                            contracts::sel::swap(),
                            &[token_in.into_word(), token_out.into_word(), amount],
                        ),
                    )
                }
            }
            // 16%: shallow hops (depth 2-5).
            78..=93 => {
                let n = 1 + rng.next_below(4);
                Transaction {
                    gas_limit: 2_000_000,
                    ..Transaction::call(
                        from,
                        self.hopper,
                        U256::from(n).to_be_bytes().to_vec(),
                    )
                }
            }
            // 6%: deep hops (depth 6-10).
            _ => {
                let n = 5 + rng.next_below(5);
                Transaction {
                    gas_limit: 3_000_000,
                    ..Transaction::call(
                        from,
                        self.deep_hopper,
                        U256::from(n).to_be_bytes().to_vec(),
                    )
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tape_evm::Evm;

    #[test]
    fn generation_is_deterministic() {
        let a = EvalSet::generate(&EvalSetConfig::small());
        let b = EvalSet::generate(&EvalSetConfig::small());
        assert_eq!(a.len(), b.len());
        for (ta, tb) in a.all_transactions().zip(b.all_transactions()) {
            assert_eq!(ta.hash(), tb.hash());
        }
        let c = EvalSet::generate(&EvalSetConfig { seed: 8, ..EvalSetConfig::small() });
        let differs = a
            .all_transactions()
            .zip(c.all_transactions())
            .any(|(x, y)| x.hash() != y.hash());
        assert!(differs);
    }

    #[test]
    fn configured_shape() {
        let config = EvalSetConfig::small();
        let set = EvalSet::generate(&config);
        assert_eq!(set.blocks.len(), config.blocks);
        assert_eq!(set.len(), config.blocks * config.txs_per_block);
        assert_eq!(set.users.len(), config.users);
        assert_eq!(set.tokens.len(), config.tokens);
    }

    #[test]
    fn every_transaction_executes_successfully() {
        let set = EvalSet::generate(&EvalSetConfig::small());
        let mut evm = Evm::new(set.env.clone(), &set.genesis);
        let mut failures = 0;
        for tx in set.all_transactions() {
            let result = evm.transact(tx).expect("valid tx");
            if !result.success {
                failures += 1;
            }
        }
        assert_eq!(failures, 0, "{failures} of {} txs failed", set.len());
    }

    #[test]
    fn mix_has_variety() {
        let set = EvalSet::generate(&EvalSetConfig::small());
        let to_router = set.all_transactions().filter(|t| t.to == Some(set.router)).count();
        let to_hopper = set.all_transactions().filter(|t| t.to == Some(set.hopper)).count();
        let to_tokens = set
            .all_transactions()
            .filter(|t| t.to.map(|to| set.tokens.contains(&to)).unwrap_or(false))
            .count();
        assert!(to_router > 0);
        assert!(to_hopper > 0);
        assert!(to_tokens > 0);
    }

    #[test]
    fn gas_bomb_burns_its_entire_limit() {
        let set = EvalSet::generate(&EvalSetConfig::small());
        let tx = set.gas_bomb_tx(set.users[0], 2_000_000);
        let mut evm = Evm::new(set.env.clone(), &set.genesis);
        let result = evm.transact(&tx).expect("well-formed tx");
        // The bomb overshoots: it halts out-of-gas with zero gas left,
        // having monopolized the core for the whole budget.
        assert!(!result.success);
        assert_eq!(result.gas_used, tx.gas_limit);
    }

    #[test]
    fn token_code_sizes_span_buckets() {
        let set = EvalSet::generate(&EvalSetConfig::small());
        use tape_state::StateReader;
        let sizes: Vec<usize> = set.tokens.iter().map(|t| set.genesis.code(t).len()).collect();
        assert!(sizes.iter().any(|&s| s < 1024));
        assert!(sizes.iter().any(|&s| s >= 1024));
    }
}
