//! Adversarial tests for query obliviousness (threat A7) and ORAM
//! integrity (threat A6).

use tape_crypto::{keccak256, SecureRng};
use tape_oram::{ObliviousState, OramClient, OramConfig, OramError, OramServer, PageKey};
use tape_primitives::{Address, U256};
use tape_sim::{Clock, CostModel};
use tape_state::{Account, StateReader};

fn setup(seed: &[u8], height: u32) -> (OramServer, OramClient, Clock, CostModel) {
    let config = OramConfig { block_size: 64, bucket_capacity: 4, height };
    (
        OramServer::new(config.clone()),
        OramClient::new(config, &[1u8; 16], SecureRng::from_seed(seed)),
        Clock::new(),
        CostModel::default(),
    )
}

/// Observed leaves are uniformly distributed even when the client hammers
/// one single logical block.
#[test]
fn repeated_access_to_one_block_looks_uniform() {
    let (mut server, mut client, clock, cost) = setup(b"uniform", 6);
    let id = keccak256(b"hot block");
    client.write(&mut server, &clock, &cost, &id, vec![1; 64]).unwrap();
    for _ in 0..2000 {
        client.read(&mut server, &clock, &cost, &id).unwrap();
    }
    let leaves: Vec<u64> = server.observed().iter().map(|a| a.leaf).collect();
    let n_leaves = 1u64 << 6;
    let mut counts = vec![0u64; n_leaves as usize];
    for &l in &leaves {
        counts[l as usize] += 1;
    }
    let expected = leaves.len() as f64 / n_leaves as f64; // ≈ 31
    // Chi-square-style sanity bound: every leaf within 4x of expectation
    // and no leaf starved entirely.
    for (leaf, &c) in counts.iter().enumerate() {
        assert!(
            (c as f64) < expected * 4.0,
            "leaf {leaf} over-represented: {c} vs {expected}"
        );
    }
    let zeros = counts.iter().filter(|&&c| c == 0).count();
    assert!(zeros <= 2, "{zeros} leaves never touched in 2000 accesses");
}

/// Two *different* logical access patterns of equal length produce leaf
/// sequences with statistically indistinguishable marginals.
#[test]
fn different_patterns_have_indistinguishable_leaf_statistics() {
    let run = |pattern: &[u64]| -> Vec<u64> {
        let (mut server, mut client, clock, cost) = setup(b"patterns", 6);
        for i in 0..16u64 {
            client
                .write(&mut server, &clock, &cost, &keccak256(i.to_be_bytes()), vec![0; 64])
                .unwrap();
        }
        let skip = server.observed().len();
        for &p in pattern {
            client
                .read(&mut server, &clock, &cost, &keccak256(p.to_be_bytes()))
                .unwrap();
        }
        server.observed()[skip..].iter().map(|a| a.leaf).collect()
    };

    // Pattern A: sequential sweep; Pattern B: hammer one block.
    let a: Vec<u64> = (0..1000).map(|i| run_pattern_a(i)).collect();
    let b: Vec<u64> = vec![7; 1000];
    let leaves_a = run(&a);
    let leaves_b = run(&b);

    let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
    let uniform_mean = ((1u64 << 6) - 1) as f64 / 2.0;
    assert!((mean(&leaves_a) - uniform_mean).abs() < 4.0, "A mean skewed");
    assert!((mean(&leaves_b) - uniform_mean).abs() < 4.0, "B mean skewed");
    // Neither sequence repeats leaves at a rate that would fingerprint
    // the hot-block pattern: compare adjacent-repeat frequencies.
    let repeats = |v: &[u64]| v.windows(2).filter(|w| w[0] == w[1]).count() as f64 / v.len() as f64;
    assert!((repeats(&leaves_a) - repeats(&leaves_b)).abs() < 0.05);
}

fn run_pattern_a(i: u64) -> u64 {
    i % 16
}

/// The wire format never reveals whether a query was for code, storage,
/// or account metadata: all three produce exactly one path access of
/// identical shape.
#[test]
fn query_types_produce_identical_wire_shape() {
    let config = OramConfig { block_size: 1024, bucket_capacity: 4, height: 8 };
    let server = OramServer::new(config.clone());
    let client = OramClient::new(config, &[2u8; 16], SecureRng::from_seed(b"shape"));
    let state = ObliviousState::new(client, server, Clock::new(), CostModel::default());

    let addr = Address::from_low_u64(1);
    let mut account = Account::with_code(vec![0xCC; 1000]);
    account.balance = U256::from(5u64);
    account.storage.insert(U256::ONE, U256::ONE);
    state.sync_account(&addr, &account).unwrap();
    state.clear_cache();

    let t0 = state.observed_accesses().len();
    state.storage(&addr, &U256::ONE); // K-V query
    let t1 = state.observed_accesses().len();
    state.account(&addr); // K-V query (meta)
    let t2 = state.observed_accesses().len();
    state.prefetch_page(PageKey::CodePage(addr, 0)); // Code query
    let t3 = state.observed_accesses().len();

    // Each logical query = exactly one path access; nothing else leaks.
    assert_eq!(t1 - t0, 1);
    assert_eq!(t2 - t1, 1);
    assert_eq!(t3 - t2, 1);
}

/// A6: the ORAM detects any server-side forgery, so fake on-chain data
/// cannot be served to the pre-executor.
#[test]
fn forged_block_cannot_be_injected() {
    let (mut server, mut client, clock, cost) = setup(b"forge", 5);
    let id = keccak256(b"victim");
    client.write(&mut server, &clock, &cost, &id, vec![9; 64]).unwrap();

    // The adversary replaces the whole tree with ciphertexts encrypted
    // under its own key.
    let mut adversary_server = OramServer::new(server.config().clone());
    let mut adversary_client = OramClient::new(
        server.config().clone(),
        &[0xEE; 16], // not the Hypervisor's ORAM key
        SecureRng::from_seed(b"adversary"),
    );
    adversary_client
        .write(&mut adversary_server, &clock, &cost, &id, vec![6; 64])
        .unwrap();

    // Splice adversary ciphertexts into the honest client's view by
    // swapping servers entirely: reads must fail authentication, never
    // return the forged value.
    let result = client.read(&mut adversary_server, &clock, &cost, &id);
    match result {
        Err(OramError::Tampered) => {}
        Ok(None) => {} // path missed the forged block: nothing leaked
        Ok(Some(v)) => panic!("forged data accepted: {v:?}"),
        Err(e) => panic!("unexpected error {e:?}"),
    }
}

/// Stash occupancy stays O(log n)-ish across a long random workload —
/// the classic Path ORAM stash bound, checked empirically.
#[test]
fn stash_stays_bounded_under_load() {
    let (mut server, mut client, clock, cost) = setup(b"stash", 8);
    let mut rng = SecureRng::from_seed(b"workload");
    let n_blocks = 600u64; // ~60% of leaf capacity (Z=4, 256 leaves)
    for i in 0..n_blocks {
        client
            .write(&mut server, &clock, &cost, &keccak256(i.to_be_bytes()), vec![0; 64])
            .unwrap();
    }
    for _ in 0..5_000 {
        let i = rng.next_below(n_blocks);
        client.read(&mut server, &clock, &cost, &keccak256(i.to_be_bytes())).unwrap();
    }
    // height 8 → a stash of a few dozen blocks is the expected regime.
    assert!(
        client.max_stash_seen() < 100,
        "stash high-water {} suggests eviction is broken",
        client.max_stash_seen()
    );
}

/// Timing side channel: the virtual cost of an ORAM query is constant,
/// independent of which block is accessed or whether it exists.
#[test]
fn per_query_time_is_constant() {
    let (mut server, mut client, clock, cost) = setup(b"timing", 7);
    let id = keccak256(b"x");
    client.write(&mut server, &clock, &cost, &id, vec![0; 64]).unwrap();

    let mut deltas = Vec::new();
    for i in 0..50u64 {
        let before = clock.now();
        if i % 2 == 0 {
            client.read(&mut server, &clock, &cost, &id).unwrap();
        } else {
            client.read(&mut server, &clock, &cost, &keccak256(i.to_be_bytes())).unwrap();
        }
        deltas.push(clock.now() - before);
    }
    assert!(deltas.windows(2).all(|w| w[0] == w[1]), "query times vary: {deltas:?}");
}
