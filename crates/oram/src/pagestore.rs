//! The paged world state: reassembling Ethereum's irregular data into
//! fixed-size ORAM *blocks* (paper §IV-D).
//!
//! * Contract bytecode is split into 1 KB **code pages**.
//! * Storage records are grouped **32 consecutive keys per page**
//!   (Solidity assigns variables and array elements consecutive slots,
//!   so groups have high locality).
//! * Account headers (balance, nonce, code hash, code length) form
//!   **meta pages**.
//!
//! All three page kinds share one block size, so their ORAM responses
//! are indistinguishable — solving the paper's problems (1) and (2).

use crate::path_oram::{BlockId, OramClient, OramError, OramServer};
use crate::prefetch::{CodePrefetcher, PrefetchStats};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;
use tape_crypto::{Keccak256, SecureRng};
use tape_primitives::{Address, B256, U256};
use tape_sim::fault::FaultPlan;
use tape_sim::telemetry::{CounterId, GaugeId, HistId, QueryKind, Telemetry, TelemetryEvent};
use tape_sim::{Clock, CostModel, Nanos};
use tape_state::{Account, AccountInfo, StateReader};

/// Records per storage group: 1024-byte page / 32-byte value.
pub const RECORDS_PER_GROUP: u64 = 32;

/// A logical page of the world state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageKey {
    /// Account header page.
    AccountMeta(Address),
    /// The `index`-th 1 KB page of an account's bytecode.
    CodePage(Address, u32),
    /// The group of storage records with keys
    /// `[group*32, group*32 + 31]`. Non-contiguous (hash-derived) keys
    /// land in the group of `key >> 5` like any other key.
    StorageGroup(Address, U256),
}

impl PageKey {
    /// The ORAM block id for this page: a domain-separated hash, so the
    /// adversary cannot relate ids to addresses.
    pub fn block_id(&self) -> BlockId {
        let mut h = Keccak256::new();
        match self {
            PageKey::AccountMeta(addr) => {
                h.update(b"meta");
                h.update(addr.as_bytes());
            }
            PageKey::CodePage(addr, index) => {
                h.update(b"code");
                h.update(addr.as_bytes());
                h.update(&index.to_be_bytes());
            }
            PageKey::StorageGroup(addr, group) => {
                h.update(b"stor");
                h.update(addr.as_bytes());
                h.update(&group.to_be_bytes());
            }
        }
        h.finalize()
    }

    /// The storage group that contains `key`.
    pub fn group_of(key: &U256) -> U256 {
        key.shr_word(5)
    }

    /// Index of `key` within its group.
    pub fn index_in_group(key: &U256) -> usize {
        (key.low_u64() & (RECORDS_PER_GROUP - 1)) as usize
    }
}

/// Encodes an account header into a page.
fn encode_meta(info: &AccountInfo, page_size: usize) -> Vec<u8> {
    let mut page = vec![0u8; page_size];
    page[0] = 1; // exists
    page[1..33].copy_from_slice(&info.balance.to_be_bytes());
    page[33..41].copy_from_slice(&info.nonce.to_be_bytes());
    page[41..73].copy_from_slice(info.code_hash.as_bytes());
    page[73..81].copy_from_slice(&(info.code_len as u64).to_be_bytes());
    page
}

fn decode_meta(page: &[u8]) -> Option<AccountInfo> {
    if page[0] == 0 {
        return None;
    }
    Some(AccountInfo {
        balance: U256::from_be_slice(&page[1..33]),
        nonce: u64::from_be_bytes(page[33..41].try_into().expect("fixed layout")),
        code_hash: B256::from_slice(&page[41..73]),
        code_len: u64::from_be_bytes(page[73..81].try_into().expect("fixed layout")) as usize,
    })
}

/// Statistics of what the oblivious store fetched, split by the paper's
/// two query types.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// K-V style queries (account meta + storage groups).
    pub kv_queries: u64,
    /// Code page queries.
    pub code_queries: u64,
    /// Prefetch (dummy) queries issued by the prefetcher.
    pub prefetch_queries: u64,
}

impl QueryStats {
    /// All queries combined.
    pub fn total(&self) -> u64 {
        self.kv_queries + self.code_queries + self.prefetch_queries
    }
}

/// The ORAM-backed oblivious world state: a [`StateReader`] whose every
/// miss turns into an indistinguishable fixed-size ORAM query.
///
/// Pages fetched once stay in an on-chip page cache (the layer-1
/// world-state cache of §IV-B), so "users frequently calling the same
/// contract" hit locally — the Fig. 5 warm case.
pub struct ObliviousState {
    inner: RefCell<Inner>,
}

struct Inner {
    client: OramClient,
    server: OramServer,
    clock: Clock,
    cost: CostModel,
    /// On-chip page cache: fetched pages for the current bundle.
    cache: HashMap<PageKey, Option<Vec<u8>>>,
    /// Storage groups synced per account, so a later sync can zero groups
    /// that no longer exist (stale pages would otherwise serve old data).
    /// BTree collections keep every write sequence deterministic.
    synced_groups: std::collections::BTreeMap<Address, std::collections::BTreeSet<U256>>,
    stats: QueryStats,
    page_size: usize,
    /// Static page-reachability plans, per contract: only planned code
    /// pages are ever fetched; unplanned ones are served as zero pages
    /// (zero bytes decode as `STOP`, so a sound plan can never change
    /// execution — and an unsound one fails safe). Addresses without a
    /// plan fetch every page, the pre-analysis behaviour.
    plans: HashMap<Address, std::collections::BTreeSet<u32>>,
    /// Advertise plans to telemetry minus their last page (negative
    /// control: the auditor must flag the resulting unplanned fetch).
    plan_ablation: bool,
    /// The §IV-D code prefetcher, when enabled (`-full` only).
    prefetcher: Option<CodePrefetcher>,
    /// Drives the prefetcher with the legacy unconditionally-re-arming
    /// `on_query` (the starvation bug) and skips demand-fetch pacing —
    /// the leakage auditor's negative control.
    starve_ablation: bool,
    /// Telemetry sink, when attached.
    telemetry: Option<Telemetry>,
    /// Start time of the previous wire query (for the gap histogram).
    last_wire_at: Option<Nanos>,
    /// First integrity failure observed during the current bundle.
    ///
    /// [`StateReader`] returns plain values, so a mid-execution ORAM
    /// integrity violation cannot propagate as a `Result`; it is
    /// captured here (reads degrade to "absent page") and the service
    /// collects it via [`ObliviousState::take_fault`] to abort the
    /// bundle with a typed error instead of panicking.
    fault: Option<OramError>,
}

impl core::fmt::Debug for ObliviousState {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("ObliviousState")
            .field("cached_pages", &inner.cache.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl ObliviousState {
    /// Wraps a populated ORAM in a state reader.
    pub fn new(client: OramClient, server: OramServer, clock: Clock, cost: CostModel) -> Self {
        let page_size = client.config().block_size;
        ObliviousState {
            inner: RefCell::new(Inner {
                client,
                server,
                clock,
                cost,
                cache: HashMap::new(),
                synced_groups: std::collections::BTreeMap::new(),
                stats: QueryStats::default(),
                page_size,
                plans: HashMap::new(),
                plan_ablation: false,
                prefetcher: None,
                starve_ablation: false,
                telemetry: None,
                last_wire_at: None,
                fault: None,
            }),
        }
    }

    /// Enables the §IV-D code prefetcher with its own DRBG stream and an
    /// initial inter-query gap estimate (typically the cost model's
    /// per-query wire time).
    pub fn enable_prefetch(&self, rng: SecureRng, initial_gap_ns: Nanos) {
        self.inner.borrow_mut().prefetcher = Some(CodePrefetcher::new(rng, initial_gap_ns));
    }

    /// Switches the prefetcher driver to the pre-fix starving behaviour
    /// (ablation for the leakage auditor's negative control).
    pub fn set_prefetch_ablation(&self, on: bool) {
        self.inner.borrow_mut().starve_ablation = on;
    }

    /// Attaches a telemetry sink; every wire query, prefetch drain, and
    /// stash sample is recorded there from now on.
    pub fn set_telemetry(&self, telemetry: Telemetry) {
        self.inner.borrow_mut().telemetry = Some(telemetry);
    }

    /// Queues `pages` code pages of `address` for background prefetch
    /// (no-op until [`enable_prefetch`](Self::enable_prefetch)).
    pub fn schedule_prefetch(&self, address: Address, pages: u32) {
        if let Some(pf) = self.inner.borrow_mut().prefetcher.as_mut() {
            pf.schedule(address, pages);
        }
    }

    /// Queues an explicit set of code pages — a static reachability
    /// plan — for background prefetch (no-op until
    /// [`enable_prefetch`](Self::enable_prefetch)).
    pub fn schedule_prefetch_pages(&self, address: Address, pages: &[u32]) {
        if let Some(pf) = self.inner.borrow_mut().prefetcher.as_mut() {
            pf.schedule_pages(address, pages);
        }
    }

    /// Installs the static page-reachability plan for `address` (sorted
    /// page indices) and advertises it to telemetry as
    /// [`TelemetryEvent::PlanPage`] events, one per planned page.
    ///
    /// [`code`](StateReader::code) fetches for `address` then touch
    /// *only* planned pages; unplanned ones are served as zero pages
    /// (zeros decode as `STOP`, so a sound plan never changes
    /// execution). Plans last until [`clear_cache`](Self::clear_cache) —
    /// one bundle, like the page cache itself.
    pub fn set_code_plan(&self, address: Address, pages: &[u32]) {
        let mut inner = self.inner.borrow_mut();
        let plan: std::collections::BTreeSet<u32> = pages.iter().copied().collect();
        if let Some(t) = &inner.telemetry {
            // The ablation mis-advertises: the last planned page is
            // replaced by a decoy index while the operational plan stays
            // complete, so execution is unchanged, the contract still
            // counts as planned, and the auditor must report the true
            // page's fetch as unplanned — the negative control's leak.
            // (Dropping the page outright would make single-page
            // contracts *unplanned*, which the auditor rightly exempts.)
            let mut advertised: Vec<u32> = plan.iter().copied().collect();
            if inner.plan_ablation {
                if let Some(last) = advertised.last_mut() {
                    *last = last.wrapping_add(0x4000_0000);
                }
            }
            let at = inner.clock.now();
            t.count(CounterId::PlannedPages, advertised.len() as u64);
            for page in advertised {
                t.record(TelemetryEvent::PlanPage {
                    at,
                    address: address.into_bytes(),
                    page,
                });
            }
        }
        inner.plans.insert(address, plan);
    }

    /// Turns the plan-advertisement ablation on or off (the auditor's
    /// plan-vs-observed negative control).
    pub fn set_plan_ablation(&self, on: bool) {
        self.inner.borrow_mut().plan_ablation = on;
    }

    /// The prefetcher's lifetime stats, when one is enabled.
    pub fn prefetch_stats(&self) -> Option<PrefetchStats> {
        self.inner.borrow().prefetcher.as_ref().map(|pf| pf.stats())
    }

    /// Arms the underlying (untrusted) ORAM server with an adversarial
    /// fault plan; see [`OramServer::arm_faults`].
    pub fn arm_faults(&self, plan: FaultPlan) {
        self.inner.borrow_mut().server.arm_faults(plan);
    }

    /// Takes the first ORAM integrity failure captured since the last
    /// call, if any. The service checks this after every bundle: a
    /// `Some` means reads were served degraded (as absent pages) and the
    /// bundle's outcome must be discarded.
    pub fn take_fault(&self) -> Option<OramError> {
        self.inner.borrow_mut().fault.take()
    }

    /// Builds the ORAM content from a full world state — the paper's
    /// block-synchronization step 11 (in production this happens
    /// incrementally per block; see `tape-node`).
    ///
    /// # Errors
    ///
    /// Propagates [`OramError`] from the underlying writes.
    pub fn sync_full_state(
        &self,
        accounts: impl Iterator<Item = (Address, Account)>,
    ) -> Result<(), OramError> {
        for (address, account) in accounts {
            self.sync_account(&address, &account)?;
        }
        Ok(())
    }

    /// Writes one account's meta page, code pages, and storage groups
    /// into the ORAM. Returns the number of pages written (rollback
    /// telemetry advertises these).
    ///
    /// # Errors
    ///
    /// Propagates [`OramError`] from the underlying writes.
    pub fn sync_account(&self, address: &Address, account: &Account) -> Result<u64, OramError> {
        let mut inner = self.inner.borrow_mut();
        let page_size = inner.page_size;
        let mut pages = 0u64;

        let meta = encode_meta(&account.info(), page_size);
        inner.write_page(PageKey::AccountMeta(*address), meta)?;
        pages += 1;

        for (i, chunk) in account.code.chunks(page_size).enumerate() {
            let mut page = vec![0u8; page_size];
            page[..chunk.len()].copy_from_slice(chunk);
            inner.write_page(PageKey::CodePage(*address, i as u32), page)?;
            pages += 1;
        }

        // Group storage records 32-per-page. BTreeMap: write order must
        // be deterministic so ORAM layouts are reproducible across runs.
        let mut groups: std::collections::BTreeMap<U256, Vec<(usize, U256)>> =
            std::collections::BTreeMap::new();
        for (key, value) in &account.storage {
            groups
                .entry(PageKey::group_of(key))
                .or_default()
                .push((PageKey::index_in_group(key), *value));
        }
        let new_groups: std::collections::BTreeSet<U256> = groups.keys().copied().collect();
        for (group, records) in groups {
            let mut page = vec![0u8; page_size];
            for (index, value) in records {
                page[index * 32..(index + 1) * 32].copy_from_slice(&value.to_be_bytes());
            }
            inner.write_page(PageKey::StorageGroup(*address, group), page)?;
            pages += 1;
        }
        // Zero out groups whose last record was cleared on-chain; a stale
        // page would otherwise keep serving the old values.
        let old_groups = inner.synced_groups.remove(address).unwrap_or_default();
        for stale in old_groups.difference(&new_groups) {
            inner.write_page(PageKey::StorageGroup(*address, *stale), vec![0u8; page_size])?;
            pages += 1;
        }
        inner.synced_groups.insert(*address, new_groups);
        Ok(pages)
    }

    /// Removes an account (on-chain SELFDESTRUCT observed during block
    /// sync): the meta page is rewritten as nonexistent and every synced
    /// storage group is zeroed. Returns the number of pages written
    /// (always at least the meta page, so even a removal is visible to
    /// the rollback-coverage audit).
    ///
    /// # Errors
    ///
    /// Propagates [`OramError`] from the underlying writes.
    pub fn remove_account(&self, address: &Address) -> Result<u64, OramError> {
        let mut inner = self.inner.borrow_mut();
        let page_size = inner.page_size;
        let mut pages = 0u64;
        // Meta page with the `exists` byte clear: reads decode to None.
        inner.write_page(PageKey::AccountMeta(*address), vec![0u8; page_size])?;
        pages += 1;
        let groups = inner.synced_groups.remove(address).unwrap_or_default();
        for group in groups {
            inner.write_page(PageKey::StorageGroup(*address, group), vec![0u8; page_size])?;
            pages += 1;
        }
        // Invalidate any cached pages of the account.
        inner.cache.retain(|key, _| match key {
            PageKey::AccountMeta(a) | PageKey::CodePage(a, _) | PageKey::StorageGroup(a, _) => {
                a != address
            }
        });
        Ok(pages)
    }

    /// Fetch statistics by query type.
    pub fn stats(&self) -> QueryStats {
        self.inner.borrow().stats
    }

    /// Clears the on-chip page cache (end of a bundle, paper step 10)
    /// and drains any still-pending prefetch pages — counted in the
    /// `drained` stat and recorded as a [`TelemetryEvent::PrefetchDrained`],
    /// since pages bypassing the timer are exactly what the leakage
    /// auditor needs to see.
    pub fn clear_cache(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.cache.clear();
        inner.plans.clear();
        let drained = match inner.prefetcher.as_mut() {
            Some(pf) => pf.drain().len(),
            None => 0,
        };
        if drained > 0 {
            if let Some(t) = &inner.telemetry {
                t.count(CounterId::PrefetchDrained, drained as u64);
                t.record(TelemetryEvent::PrefetchDrained {
                    at: inner.clock.now(),
                    pages: drained as u32,
                });
            }
        }
    }

    /// The adversary's view: every `(time, leaf)` the server observed.
    pub fn observed_accesses(&self) -> Vec<crate::path_oram::ObservedAccess> {
        self.inner.borrow().server.observed().to_vec()
    }

    /// Issues one prefetch query for a code page (driven by the
    /// [`CodePrefetcher`](crate::CodePrefetcher)).
    pub fn prefetch_page(&self, key: PageKey) {
        self.inner.borrow_mut().issue_prefetch(key);
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> Clock {
        self.inner.borrow().clock.clone()
    }
}

impl Inner {
    fn write_page(&mut self, key: PageKey, page: Vec<u8>) -> Result<(), OramError> {
        let id = key.block_id();
        self.client
            .write(&mut self.server, &self.clock, &self.cost, &id, page)?;
        self.record_sync_write();
        Ok(())
    }

    /// Records one sync-path page write. Sync writes share the uniform
    /// wire shape (one block each) but stay out of the gap/burst
    /// bookkeeping on purpose: they happen between bundles, and the
    /// §IV-D statistics describe query traffic, not synchronization —
    /// a rollback must look exactly like forward sync, and neither may
    /// skew the demand-path gap histogram.
    fn record_sync_write(&mut self) {
        let Some(t) = &self.telemetry else {
            return;
        };
        t.count(CounterId::OramSync, 1);
        t.record(TelemetryEvent::OramQuery {
            at: self.clock.now(),
            kind: QueryKind::Sync,
            bytes: self.page_size as u32,
        });
    }

    fn fetch_raw(&mut self, id: &BlockId) -> Option<Vec<u8>> {
        match self.client.read(&mut self.server, &self.clock, &self.cost, id) {
            Ok(page) => page,
            Err(err) => {
                // Keep the *first* failure: it names the root cause.
                self.fault.get_or_insert(err);
                None
            }
        }
    }

    fn fetch_page_uncached(&mut self, key: PageKey) -> Option<Vec<u8>> {
        // Real code-page fetches (demand, paced, or prefetch — never the
        // cached-hit dummy) are individually visible to the auditor's
        // plan-vs-observed cross-check.
        if let PageKey::CodePage(addr, page) = key {
            if let Some(t) = &self.telemetry {
                t.record(TelemetryEvent::CodePageFetch {
                    at: self.clock.now(),
                    address: addr.into_bytes(),
                    page,
                });
            }
        }
        let id = key.block_id();
        let page = self.fetch_raw(&id);
        self.cache.insert(key, page.clone());
        page
    }

    /// Records one wire query of `kind` in the telemetry stream (at the
    /// query's start time, before the wire cost is charged).
    fn record_query(&mut self, kind: QueryKind) {
        let Some(t) = &self.telemetry else {
            return;
        };
        let at = self.clock.now();
        t.count(
            match kind {
                QueryKind::Kv => CounterId::OramKv,
                QueryKind::Code => CounterId::OramCode,
                QueryKind::Prefetch => CounterId::OramPrefetch,
                QueryKind::Sync => unreachable!("sync writes use record_sync_write"),
            },
            1,
        );
        if let Some(last) = self.last_wire_at {
            t.observe(HistId::OramGapNs, at.saturating_sub(last));
        }
        self.last_wire_at = Some(at);
        t.record(TelemetryEvent::OramQuery { at, kind, bytes: self.page_size as u32 });
        t.gauge(GaugeId::OramStash, self.client.len() as u64);
    }

    /// One prefetch query on the wire: the real page when it is not yet
    /// on-chip, a dummy query otherwise (the wire pattern must not
    /// reveal cache hits).
    fn issue_prefetch(&mut self, key: PageKey) {
        self.stats.prefetch_queries += 1;
        self.record_query(QueryKind::Prefetch);
        if self.cache.contains_key(&key) {
            let dummy = PageKey::CodePage(Address::ZERO, u32::MAX).block_id();
            let _ = self.fetch_raw(&dummy);
        } else {
            let _ = self.fetch_page_uncached(key);
        }
    }

    /// Drives the prefetcher at a real-query point: updates its gap
    /// estimate, then issues at most one due page. With the starvation
    /// ablation on, uses the legacy re-arming driver (which never lets
    /// the timer fire in this call order).
    fn drive_prefetch(&mut self, now: Nanos) {
        let due = match self.prefetcher.as_mut() {
            Some(pf) => {
                if self.starve_ablation {
                    pf.on_query_rearming(now);
                } else {
                    pf.on_query(now);
                }
                let due = pf.poll(now);
                if due.is_some() {
                    if let Some(t) = &self.telemetry {
                        t.count(CounterId::PrefetchIssued, 1);
                        t.gauge(GaugeId::PrefetchGapEmaNs, pf.avg_gap_ns());
                    }
                }
                due
            }
            None => None,
        };
        if let Some(page) = due {
            self.issue_prefetch(page);
        }
    }

    /// Cached fetch, counting the query type and driving the prefetcher
    /// at every miss (a miss is a real wire query — a query point).
    fn fetch_page(&mut self, key: PageKey) -> Option<Vec<u8>> {
        if let Some(page) = self.cache.get(&key) {
            return page.clone();
        }
        let kind = match key {
            PageKey::CodePage(..) => {
                self.stats.code_queries += 1;
                QueryKind::Code
            }
            _ => {
                self.stats.kv_queries += 1;
                QueryKind::Kv
            }
        };
        self.record_query(kind);
        let page = self.fetch_page_uncached(key);
        let now = self.clock.now();
        self.drive_prefetch(now);
        page
    }

    /// `true` when demand code fetches must be paced onto the prefetch
    /// cadence (prefetcher enabled, ablation off).
    fn pacing_active(&self) -> bool {
        self.prefetcher.is_some() && !self.starve_ablation
    }

    /// A demand code fetch disguised as a timer prefetch: stall for the
    /// prefetcher's randomized delay before touching the wire, so a
    /// cold contract call does not collapse into the back-to-back burst
    /// §IV-D forbids.
    fn paced_code_fetch(&mut self, key: PageKey) -> Option<Vec<u8>> {
        if let Some(pf) = self.prefetcher.as_mut() {
            let wait = pf.pace();
            self.clock.advance(wait);
            // The timer no longer owes this page.
            pf.acknowledge(key);
        }
        self.stats.code_queries += 1;
        self.record_query(QueryKind::Code);
        let page = self.fetch_page_uncached(key);
        let after = self.clock.now();
        self.drive_prefetch(after);
        page
    }
}

impl StateReader for ObliviousState {
    fn account(&self, address: &Address) -> Option<AccountInfo> {
        let mut inner = self.inner.borrow_mut();
        let page = inner.fetch_page(PageKey::AccountMeta(*address))?;
        decode_meta(&page)
    }

    fn code(&self, address: &Address) -> Arc<Vec<u8>> {
        let mut inner = self.inner.borrow_mut();
        let Some(meta_page) = inner.fetch_page(PageKey::AccountMeta(*address)) else {
            return Arc::default();
        };
        let Some(info) = decode_meta(&meta_page) else {
            return Arc::default();
        };
        if info.code_len == 0 {
            return Arc::default();
        }
        let page_size = inner.page_size;
        let pages = info.code_len.div_ceil(page_size);
        let plan = inner.plans.get(address).cloned();
        let mut code = Vec::with_capacity(info.code_len);
        for i in 0..pages {
            let key = PageKey::CodePage(*address, i as u32);
            // Statically unreachable pages (per the analyzer's plan) are
            // never fetched: the zero fill decodes as STOP, so a sound
            // plan cannot change execution, and skipping the queries is
            // the plan's whole traffic win. Unplanned addresses keep
            // the fetch-everything behaviour.
            let planned = plan.as_ref().is_none_or(|p| p.contains(&(i as u32)));
            let page = if !planned {
                Some(vec![0u8; page_size])
            } else if inner.pacing_active() && !inner.cache.contains_key(&key) {
                // Pages the prefetcher has not delivered yet are fetched
                // on demand — but *paced* onto the prefetch cadence,
                // otherwise a cold call would emit `pages` back-to-back
                // code queries (the burst the starved prefetcher used to
                // produce, which the ablation mode deliberately
                // reproduces).
                inner.paced_code_fetch(key)
            } else {
                inner.fetch_page(key)
            }
            .unwrap_or_else(|| vec![0u8; page_size]);
            code.extend_from_slice(&page);
        }
        code.truncate(info.code_len);
        Arc::new(code)
    }

    fn storage(&self, address: &Address, key: &U256) -> U256 {
        let mut inner = self.inner.borrow_mut();
        let group = PageKey::group_of(key);
        match inner.fetch_page(PageKey::StorageGroup(*address, group)) {
            Some(page) => {
                let idx = PageKey::index_in_group(key);
                U256::from_be_slice(&page[idx * 32..(idx + 1) * 32])
            }
            None => U256::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path_oram::OramConfig;
    use tape_crypto::SecureRng;

    fn oblivious_with(accounts: Vec<(Address, Account)>) -> ObliviousState {
        let config = OramConfig { block_size: 1024, bucket_capacity: 4, height: 8 };
        let server = OramServer::new(config.clone());
        let client = OramClient::new(config, &[3u8; 16], SecureRng::from_seed(b"pagestore"));
        let state = ObliviousState::new(client, server, Clock::new(), CostModel::default());
        state.sync_full_state(accounts.into_iter()).unwrap();
        state
    }

    #[test]
    fn page_key_ids_distinct() {
        let a = Address::from_low_u64(1);
        let ids = [
            PageKey::AccountMeta(a).block_id(),
            PageKey::CodePage(a, 0).block_id(),
            PageKey::CodePage(a, 1).block_id(),
            PageKey::StorageGroup(a, U256::ZERO).block_id(),
            PageKey::AccountMeta(Address::from_low_u64(2)).block_id(),
        ];
        for i in 0..ids.len() {
            for j in i + 1..ids.len() {
                assert_ne!(ids[i], ids[j]);
            }
        }
    }

    #[test]
    fn grouping_arithmetic() {
        assert_eq!(PageKey::group_of(&U256::from(0u64)), U256::ZERO);
        assert_eq!(PageKey::group_of(&U256::from(31u64)), U256::ZERO);
        assert_eq!(PageKey::group_of(&U256::from(32u64)), U256::ONE);
        assert_eq!(PageKey::index_in_group(&U256::from(33u64)), 1);
        assert_eq!(PageKey::index_in_group(&U256::from(31u64)), 31);
    }

    #[test]
    fn account_roundtrip() {
        let addr = Address::from_low_u64(5);
        let mut account = Account::with_code(vec![0xAB; 3000]); // 3 code pages
        account.balance = U256::from(12345u64);
        account.nonce = 7;
        account.storage.insert(U256::from(3u64), U256::from(0x33u64));
        account.storage.insert(U256::from(40u64), U256::from(0x44u64));

        let state = oblivious_with(vec![(addr, account.clone())]);
        let info = state.account(&addr).unwrap();
        assert_eq!(info.balance, U256::from(12345u64));
        assert_eq!(info.nonce, 7);
        assert_eq!(info.code_len, 3000);
        assert_eq!(state.code(&addr).as_slice(), &vec![0xAB; 3000][..]);
        assert_eq!(state.storage(&addr, &U256::from(3u64)), U256::from(0x33u64));
        assert_eq!(state.storage(&addr, &U256::from(40u64)), U256::from(0x44u64));
        assert_eq!(state.storage(&addr, &U256::from(4u64)), U256::ZERO); // same group, unset
        assert_eq!(state.storage(&addr, &U256::from(999u64)), U256::ZERO); // absent group
    }

    #[test]
    fn absent_account() {
        let state = oblivious_with(vec![]);
        let ghost = Address::from_low_u64(9);
        assert!(state.account(&ghost).is_none());
        assert!(state.code(&ghost).is_empty());
        assert_eq!(state.storage(&ghost, &U256::ONE), U256::ZERO);
    }

    #[test]
    fn cache_avoids_repeat_queries() {
        let addr = Address::from_low_u64(5);
        let state = oblivious_with(vec![(addr, Account::with_balance(U256::ONE))]);
        let before = state.stats();
        state.account(&addr);
        state.account(&addr);
        state.account(&addr);
        let after = state.stats();
        assert_eq!(after.kv_queries - before.kv_queries, 1);

        state.clear_cache();
        state.account(&addr);
        assert_eq!(state.stats().kv_queries - after.kv_queries, 1);
    }

    #[test]
    fn code_and_kv_queries_counted_separately() {
        let addr = Address::from_low_u64(5);
        let mut account = Account::with_code(vec![1u8; 2500]); // 3 pages
        account.balance = U256::ONE;
        let state = oblivious_with(vec![(addr, account)]);
        state.code(&addr);
        let stats = state.stats();
        assert_eq!(stats.kv_queries, 1); // the meta page
        assert_eq!(stats.code_queries, 3);
    }

    #[test]
    fn prefetch_counts_and_hits_wire() {
        let addr = Address::from_low_u64(5);
        let account = Account::with_code(vec![1u8; 2048]);
        let state = oblivious_with(vec![(addr, account)]);
        let wire_before = state.observed_accesses().len();
        state.prefetch_page(PageKey::CodePage(addr, 0));
        state.prefetch_page(PageKey::CodePage(addr, 0)); // cached -> dummy query
        assert_eq!(state.stats().prefetch_queries, 2);
        // Both prefetches produced real wire traffic.
        assert_eq!(state.observed_accesses().len() - wire_before, 2);
    }

    #[test]
    fn telemetry_records_uniform_queries_and_prefetch_interleaves() {
        let addr = Address::from_low_u64(5);
        let mut account = Account::with_code(vec![1u8; 2500]); // 3 pages
        account.storage.insert(U256::ONE, U256::ONE);
        let state = oblivious_with(vec![(addr, account)]);
        let t = Telemetry::new();
        state.set_telemetry(t.clone());
        state.enable_prefetch(SecureRng::from_seed(b"pf"), 2_300_000);
        state.schedule_prefetch(addr, 3);

        state.account(&addr); // kv query point
        state.storage(&addr, &U256::ONE); // kv query point, timer can fire
        state.code(&addr); // remaining pages are paced demand fetches

        assert_eq!(t.counter(CounterId::OramKv), 2);
        let covered = t.counter(CounterId::OramCode) + t.counter(CounterId::OramPrefetch);
        assert!(covered >= 3, "all 3 code pages hit the wire, covered={covered}");
        // Every wire query is one uniform block.
        let events = t.events();
        let queries: Vec<_> = events
            .iter()
            .filter_map(|ev| match ev {
                TelemetryEvent::OramQuery { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .collect();
        assert!(queries.iter().all(|&b| b == 1024));
        assert_eq!(queries.len() as u64, t.counter(CounterId::OramKv) + covered);
        // Nothing left to drain: demand fetches acknowledged their keys.
        state.clear_cache();
        assert_eq!(t.counter(CounterId::PrefetchDrained), 0);
        let stats = state.prefetch_stats().expect("prefetcher enabled");
        assert_eq!(stats.pending, 0);
    }

    #[test]
    fn starvation_ablation_drains_instead_of_issuing() {
        let addr = Address::from_low_u64(5);
        let account = Account::with_code(vec![1u8; 2500]); // 3 pages
        let state = oblivious_with(vec![(addr, account)]);
        let t = Telemetry::new();
        state.set_telemetry(t.clone());
        state.enable_prefetch(SecureRng::from_seed(b"pf"), 2_300_000);
        state.set_prefetch_ablation(true);
        state.schedule_prefetch(addr, 3);

        state.account(&addr);
        state.code(&addr); // back-to-back demand fetches: the burst

        assert_eq!(t.counter(CounterId::OramPrefetch), 0, "timer never fires");
        assert_eq!(t.counter(CounterId::OramCode), 3);
        state.clear_cache();
        assert_eq!(t.counter(CounterId::PrefetchDrained), 3, "starved pages drain");
        let stats = state.prefetch_stats().expect("prefetcher enabled");
        assert_eq!((stats.issued, stats.drained), (0, 3));
    }

    #[test]
    fn sync_writes_emit_sync_telemetry_without_gap_pollution() {
        let state = oblivious_with(vec![]);
        let t = Telemetry::new();
        state.set_telemetry(t.clone());

        let addr = Address::from_low_u64(5);
        let mut account = Account::with_code(vec![1u8; 2048]); // 2 code pages
        account.storage.insert(U256::ONE, U256::from(9u64));
        let pages = state.sync_account(&addr, &account).unwrap();
        assert_eq!(pages, 4, "meta + 2 code + 1 storage group");
        assert_eq!(t.counter(CounterId::OramSync), 4);
        let sync_events = t
            .events()
            .iter()
            .filter(|ev| {
                matches!(
                    ev,
                    TelemetryEvent::OramQuery { kind: QueryKind::Sync, bytes: 1024, .. }
                )
            })
            .count();
        assert_eq!(sync_events, 4, "each sync write is one uniform wire block");
        // Sync writes are invisible to the demand-path statistics: no
        // kv/code counters, and no gap sample even for the first demand
        // query that follows.
        assert_eq!(t.counter(CounterId::OramKv), 0);
        state.account(&addr);
        assert_eq!(t.counter(CounterId::OramKv), 1);
        assert_eq!(t.hist(HistId::OramGapNs).count(), 0);

        // Removal rewrites the meta page and zeroes the one group.
        let removed = state.remove_account(&addr).unwrap();
        assert_eq!(removed, 2);
        assert_eq!(t.counter(CounterId::OramSync), 6);
    }

    #[test]
    fn response_sizes_indistinguishable() {
        // Code pages and storage groups produce identical wire traffic:
        // each access reads+writes exactly blocks_per_access ciphertexts
        // of identical size. We verify via the server's uniform geometry.
        let addr = Address::from_low_u64(5);
        let mut account = Account::with_code(vec![9u8; 1024]);
        account.storage.insert(U256::ONE, U256::ONE);
        let state = oblivious_with(vec![(addr, account)]);
        state.code(&addr);
        state.storage(&addr, &U256::ONE);
        // Both paths hit the same server; nothing but the leaf differs.
        let accesses = state.observed_accesses();
        assert!(accesses.len() >= 4);
    }
}
