//! # tape-oram
//!
//! Access-pattern protection for the Ethereum world state (paper §IV-D):
//!
//! * [`OramClient`] / [`OramServer`] — Path ORAM with AES-GCM
//!   randomized re-encryption; the server observes only uniformly random
//!   `(leaf, fixed-size-ciphertext)` traffic.
//! * [`PageKey`] / [`ObliviousState`] — the world state reassembled into
//!   1 KB pages: code split pagewise, storage records grouped 32 per page
//!   by consecutive keys, account headers in meta pages — all with
//!   identical wire format so query *types* are indistinguishable.
//! * [`CodePrefetcher`] — pagewise code prefetching on a randomized
//!   interval timer, hiding the burst pattern of code fetches.
//!
//! # Examples
//!
//! ```
//! use tape_crypto::SecureRng;
//! use tape_oram::{OramClient, OramConfig, OramServer};
//! use tape_sim::{Clock, CostModel};
//!
//! let config = OramConfig { block_size: 64, bucket_capacity: 4, height: 6 };
//! let mut server = OramServer::new(config.clone());
//! let mut client = OramClient::new(config, &[0u8; 16], SecureRng::from_seed(b"doc"));
//! let (clock, cost) = (Clock::new(), CostModel::default());
//!
//! let id = tape_crypto::keccak256(b"my-page");
//! client.write(&mut server, &clock, &cost, &id, vec![42u8; 64])?;
//! assert_eq!(client.read(&mut server, &clock, &cost, &id)?, Some(vec![42u8; 64]));
//! # Ok::<(), tape_oram::OramError>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pagestore;
mod path_oram;
mod prefetch;
mod recursive;

pub use pagestore::{ObliviousState, PageKey, QueryStats, RECORDS_PER_GROUP};
pub use path_oram::{BlockId, ObservedAccess, OramClient, OramConfig, OramError, OramServer};
pub use prefetch::{CodePrefetcher, PrefetchStats};
pub use recursive::RecursiveOram;
