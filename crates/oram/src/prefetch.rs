//! Pagewise code prefetching (paper §IV-D, problem (3)).
//!
//! Fetching a contract's code pages in a burst would let the adversary
//! distinguish Code queries from sporadic K-V queries. Instead, the
//! prefetcher spreads code-page fetches among the other queries: after
//! every ORAM access it arms a timer with a random delay of roughly half
//! the observed average inter-query gap, and fetches the next pending
//! code page when the timer fires — so the adversary sees approximately
//! evenly spaced, type-less queries.

use crate::pagestore::PageKey;
use std::collections::VecDeque;
use tape_crypto::SecureRng;
use tape_sim::Nanos;

/// The code prefetch scheduler.
#[derive(Debug)]
pub struct CodePrefetcher {
    pending: VecDeque<PageKey>,
    rng: SecureRng,
    /// Exponential moving average of the gap between real queries.
    avg_gap_ns: u64,
    last_query_at: Option<Nanos>,
    deadline: Option<Nanos>,
    issued: u64,
}

impl CodePrefetcher {
    /// Creates a prefetcher with an initial gap estimate.
    pub fn new(rng: SecureRng, initial_gap_ns: u64) -> Self {
        CodePrefetcher {
            pending: VecDeque::new(),
            rng,
            avg_gap_ns: initial_gap_ns.max(1),
            last_query_at: None,
            deadline: None,
            issued: 0,
        }
    }

    /// Queues the code pages of a contract for background fetching.
    pub fn schedule(&mut self, address: tape_primitives::Address, pages: u32) {
        for i in 0..pages {
            self.pending.push_back(PageKey::CodePage(address, i));
        }
    }

    /// Number of pages still pending.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Total prefetch queries issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Records that a *real* query happened at `now`, updating the gap
    /// estimate and (re)arming the timer.
    pub fn on_query(&mut self, now: Nanos) {
        if let Some(last) = self.last_query_at {
            let gap = now.saturating_sub(last).max(1);
            // EMA with α = 1/4.
            self.avg_gap_ns = (3 * self.avg_gap_ns + gap) / 4;
        }
        self.last_query_at = Some(now);
        self.arm(now);
    }

    /// Arms the timer: a random delay around half the average gap
    /// ("approximately half of the global average gap between queries").
    fn arm(&mut self, now: Nanos) {
        if self.pending.is_empty() {
            self.deadline = None;
            return;
        }
        let half = (self.avg_gap_ns / 2).max(1);
        // Uniform in [half/2, 3*half/2): random but centered on half.
        let jitter = self.rng.next_below(half.max(1));
        self.deadline = Some(now + half / 2 + jitter);
    }

    /// Returns the next page to prefetch if the timer has expired at
    /// `now`; the caller performs the actual ORAM query.
    pub fn poll(&mut self, now: Nanos) -> Option<PageKey> {
        match self.deadline {
            Some(deadline) if now >= deadline => {
                let page = self.pending.pop_front();
                if page.is_some() {
                    self.issued += 1;
                }
                self.arm(now);
                page
            }
            _ => None,
        }
    }

    /// Drains every pending page (used at frame end when the code must
    /// be complete before execution can continue).
    pub fn drain(&mut self) -> Vec<PageKey> {
        self.deadline = None;
        self.pending.drain(..).collect()
    }

    /// Current average-gap estimate (for tests and the evaluation
    /// harness).
    pub fn avg_gap_ns(&self) -> u64 {
        self.avg_gap_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tape_primitives::Address;

    fn prefetcher() -> CodePrefetcher {
        CodePrefetcher::new(SecureRng::from_seed(b"prefetch"), 1_000_000)
    }

    #[test]
    fn schedule_and_drain() {
        let mut p = prefetcher();
        p.schedule(Address::from_low_u64(1), 3);
        assert_eq!(p.pending(), 3);
        let drained = p.drain();
        assert_eq!(drained.len(), 3);
        assert_eq!(drained[0], PageKey::CodePage(Address::from_low_u64(1), 0));
        assert_eq!(p.pending(), 0);
    }

    #[test]
    fn timer_fires_after_half_gap() {
        let mut p = prefetcher();
        p.schedule(Address::from_low_u64(1), 2);
        p.on_query(0);
        // Before any plausible deadline: nothing.
        assert_eq!(p.poll(1), None);
        // Far past the deadline: one page, then the timer re-arms.
        let page = p.poll(10_000_000);
        assert!(page.is_some());
        assert_eq!(p.pending(), 1);
        assert_eq!(p.issued(), 1);
    }

    #[test]
    fn gap_estimate_tracks_queries() {
        let mut p = prefetcher();
        p.schedule(Address::from_low_u64(1), 1);
        let initial = p.avg_gap_ns();
        // A run of tightly spaced queries shrinks the estimate.
        for i in 0..20u64 {
            p.on_query(i * 10_000);
        }
        assert!(p.avg_gap_ns() < initial);
        // Spaced-out queries grow it back.
        let mut t = 1_000_000;
        for _ in 0..20 {
            t += 5_000_000;
            p.on_query(t);
        }
        assert!(p.avg_gap_ns() > 1_000_000);
    }

    #[test]
    fn no_deadline_without_pending_pages() {
        let mut p = prefetcher();
        p.on_query(100);
        assert_eq!(p.poll(u64::MAX), None);
        assert_eq!(p.issued(), 0);
    }

    #[test]
    fn deadlines_are_randomized() {
        // Two prefetchers with different RNG seeds arm different
        // deadlines for the same query pattern.
        let mut a = CodePrefetcher::new(SecureRng::from_seed(b"a"), 1_000_000);
        let mut b = CodePrefetcher::new(SecureRng::from_seed(b"b"), 1_000_000);
        a.schedule(Address::from_low_u64(1), 8);
        b.schedule(Address::from_low_u64(1), 8);
        let mut fire_a = Vec::new();
        let mut fire_b = Vec::new();
        let mut t = 0;
        for _ in 0..8 {
            a.on_query(t);
            b.on_query(t);
            // Scan forward to see when each fires.
            for probe in (t..t + 2_000_000).step_by(10_000) {
                if fire_a.len() < fire_b.len() + 2 && a.poll(probe).is_some() {
                    fire_a.push(probe);
                    break;
                }
            }
            for probe in (t..t + 2_000_000).step_by(10_000) {
                if b.poll(probe).is_some() {
                    fire_b.push(probe);
                    break;
                }
            }
            t += 1_000_000;
        }
        assert_ne!(fire_a, fire_b);
    }
}
