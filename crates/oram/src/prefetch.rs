//! Pagewise code prefetching (paper §IV-D, problem (3)).
//!
//! Fetching a contract's code pages in a burst would let the adversary
//! distinguish Code queries from sporadic K-V queries. Instead, the
//! prefetcher spreads code-page fetches among the other queries: after
//! every ORAM access it arms a timer with a random delay of roughly half
//! the observed average inter-query gap, and fetches the next pending
//! code page when the timer fires — so the adversary sees approximately
//! evenly spaced, type-less queries.

use crate::pagestore::PageKey;
use std::collections::VecDeque;
use tape_crypto::SecureRng;
use tape_sim::Nanos;

/// The code prefetch scheduler.
#[derive(Debug)]
pub struct CodePrefetcher {
    pending: VecDeque<PageKey>,
    rng: SecureRng,
    /// Exponential moving average of the gap between real queries.
    avg_gap_ns: u64,
    /// Floor for the demand-fetch stall ([`pace`](Self::pace)): a
    /// quarter of the construction-time gap estimate (the per-query
    /// wire cost), so a paced fetch is guaranteed to trail the previous
    /// query by ≥ 1.25x the wire cost — above any burst threshold
    /// derived from that cost — without paying the full EMA half-gap.
    min_stall_ns: u64,
    last_query_at: Option<Nanos>,
    deadline: Option<Nanos>,
    issued: u64,
    drained: u64,
}

/// Lifetime prefetcher instrumentation, exported through telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Pages issued through the randomized timer ([`CodePrefetcher::poll`]).
    pub issued: u64,
    /// Pages released by [`CodePrefetcher::drain`] without riding the
    /// timer — frame-end bursts the §IV-D discipline tries to avoid.
    pub drained: u64,
    /// Pages still queued.
    pub pending: usize,
    /// Current inter-query gap estimate.
    pub avg_gap_ns: u64,
}

impl CodePrefetcher {
    /// Creates a prefetcher with an initial gap estimate.
    pub fn new(rng: SecureRng, initial_gap_ns: u64) -> Self {
        CodePrefetcher {
            pending: VecDeque::new(),
            rng,
            avg_gap_ns: initial_gap_ns.max(1),
            min_stall_ns: (initial_gap_ns / 4).max(1),
            last_query_at: None,
            deadline: None,
            issued: 0,
            drained: 0,
        }
    }

    /// Queues the code pages of a contract for background fetching.
    pub fn schedule(&mut self, address: tape_primitives::Address, pages: u32) {
        for i in 0..pages {
            self.pending.push_back(PageKey::CodePage(address, i));
        }
    }

    /// Queues an explicit page set — the static analyzer's reachability
    /// plan — instead of the dense `0..pages` prefix. Order is the
    /// caller's (plans arrive sorted, so fetch order stays
    /// deterministic).
    pub fn schedule_pages(&mut self, address: tape_primitives::Address, pages: &[u32]) {
        for &i in pages {
            self.pending.push_back(PageKey::CodePage(address, i));
        }
    }

    /// Number of pages still pending.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Total prefetch queries issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Total pages released by [`drain`](Self::drain) instead of the
    /// timer.
    pub fn drained(&self) -> u64 {
        self.drained
    }

    /// Snapshot of the lifetime counters and the current gap estimate.
    pub fn stats(&self) -> PrefetchStats {
        PrefetchStats {
            issued: self.issued,
            drained: self.drained,
            pending: self.pending.len(),
            avg_gap_ns: self.avg_gap_ns,
        }
    }

    /// Records that a *real* query happened at `now`, updating the gap
    /// estimate and arming the timer if it is not already due.
    ///
    /// An already-expired deadline is deliberately *preserved* so the
    /// caller's next [`poll`](Self::poll) fires it. Re-arming here
    /// (the pre-fix behaviour, kept as
    /// [`on_query_rearming`](Self::on_query_rearming)) pushed the
    /// deadline into the future at every query point before it could be
    /// observed, starving the queue until `drain()` released it as
    /// exactly the frame-end burst §IV-D exists to prevent.
    pub fn on_query(&mut self, now: Nanos) {
        self.note_query(now);
        match self.deadline {
            // Due and payload available: leave it for poll().
            Some(deadline) if deadline <= now && !self.pending.is_empty() => {}
            _ => self.arm(now),
        }
    }

    /// The pre-fix `on_query` that unconditionally re-arms the timer,
    /// kept only as an ablation hook so the leakage auditor's negative
    /// control can reproduce the starvation burst.
    pub fn on_query_rearming(&mut self, now: Nanos) {
        self.note_query(now);
        self.arm(now);
    }

    /// Updates the inter-query gap EMA for a real query at `now`.
    fn note_query(&mut self, now: Nanos) {
        if let Some(last) = self.last_query_at {
            let gap = now.saturating_sub(last).max(1);
            // EMA with α = 1/4.
            self.avg_gap_ns = (3 * self.avg_gap_ns + gap) / 4;
        }
        self.last_query_at = Some(now);
    }

    /// Returns how long a *demand* code fetch should stall before
    /// touching the wire. The stall only has to break burst adjacency —
    /// put a randomized gap of at least a quarter wire-cost between
    /// consecutive code queries — not mimic the timer's half-EMA
    /// cadence, which would multiply `-full` latency for no extra
    /// indistinguishability (the gap distribution stays randomized
    /// either way). Uniform in `[min_stall, 2*min_stall)`. Any armed
    /// timer deadline is consumed: the demand fetch satisfies the
    /// page the timer owed (the caller [`acknowledge`](Self::acknowledge)s
    /// it) and the timer re-arms at the next [`on_query`](Self::on_query).
    pub fn pace(&mut self) -> Nanos {
        self.deadline = None;
        self.min_stall_ns + self.rng.next_below(self.min_stall_ns)
    }

    /// Arms the timer: a random delay around half the average gap
    /// ("approximately half of the global average gap between queries").
    fn arm(&mut self, now: Nanos) {
        if self.pending.is_empty() {
            self.deadline = None;
            return;
        }
        let half = (self.avg_gap_ns / 2).max(1);
        // Uniform in [half/2, 3*half/2): random but centered on half.
        let jitter = self.rng.next_below(half.max(1));
        self.deadline = Some(now + half / 2 + jitter);
    }

    /// Returns the next page to prefetch if the timer has expired at
    /// `now`; the caller performs the actual ORAM query.
    pub fn poll(&mut self, now: Nanos) -> Option<PageKey> {
        match self.deadline {
            Some(deadline) if now >= deadline => {
                let page = self.pending.pop_front();
                if page.is_some() {
                    self.issued += 1;
                }
                self.arm(now);
                page
            }
            _ => None,
        }
    }

    /// Removes `key` from the pending queue — the page was satisfied by
    /// a (paced) demand fetch, so the timer no longer owes it. Returns
    /// `true` when the key was queued.
    pub fn acknowledge(&mut self, key: PageKey) -> bool {
        if let Some(pos) = self.pending.iter().position(|k| *k == key) {
            self.pending.remove(pos);
            if self.pending.is_empty() {
                self.deadline = None;
            }
            true
        } else {
            false
        }
    }

    /// Drains every pending page (used at frame end when the code must
    /// be complete before execution can continue). Drained pages are
    /// counted in the separate [`drained`](Self::drained) stat, not
    /// [`issued`](Self::issued): they bypassed the timer, and the
    /// evaluation harness must be able to see that.
    pub fn drain(&mut self) -> Vec<PageKey> {
        self.deadline = None;
        let pages: Vec<PageKey> = self.pending.drain(..).collect();
        self.drained += pages.len() as u64;
        pages
    }

    /// Current average-gap estimate (for tests and the evaluation
    /// harness).
    pub fn avg_gap_ns(&self) -> u64 {
        self.avg_gap_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tape_primitives::Address;

    fn prefetcher() -> CodePrefetcher {
        CodePrefetcher::new(SecureRng::from_seed(b"prefetch"), 1_000_000)
    }

    #[test]
    fn schedule_and_drain() {
        let mut p = prefetcher();
        p.schedule(Address::from_low_u64(1), 3);
        assert_eq!(p.pending(), 3);
        let drained = p.drain();
        assert_eq!(drained.len(), 3);
        assert_eq!(drained[0], PageKey::CodePage(Address::from_low_u64(1), 0));
        assert_eq!(p.pending(), 0);
    }

    #[test]
    fn timer_fires_after_half_gap() {
        let mut p = prefetcher();
        p.schedule(Address::from_low_u64(1), 2);
        p.on_query(0);
        // Before any plausible deadline: nothing.
        assert_eq!(p.poll(1), None);
        // Far past the deadline: one page, then the timer re-arms.
        let page = p.poll(10_000_000);
        assert!(page.is_some());
        assert_eq!(p.pending(), 1);
        assert_eq!(p.issued(), 1);
    }

    #[test]
    fn gap_estimate_tracks_queries() {
        let mut p = prefetcher();
        p.schedule(Address::from_low_u64(1), 1);
        let initial = p.avg_gap_ns();
        // A run of tightly spaced queries shrinks the estimate.
        for i in 0..20u64 {
            p.on_query(i * 10_000);
        }
        assert!(p.avg_gap_ns() < initial);
        // Spaced-out queries grow it back.
        let mut t = 1_000_000;
        for _ in 0..20 {
            t += 5_000_000;
            p.on_query(t);
        }
        assert!(p.avg_gap_ns() > 1_000_000);
    }

    #[test]
    fn no_deadline_without_pending_pages() {
        let mut p = prefetcher();
        p.on_query(100);
        assert_eq!(p.poll(u64::MAX), None);
        assert_eq!(p.issued(), 0);
    }

    #[test]
    fn on_query_before_poll_does_not_starve_pending_pages() {
        // Regression: the integration calls on_query *before* poll at
        // every query point. The pre-fix on_query unconditionally
        // re-armed the deadline, so it was always in the future when
        // poll ran and no page ever issued without drain().
        let mut p = prefetcher();
        p.schedule(Address::from_low_u64(1), 4);
        let mut t = 0;
        for _ in 0..64 {
            t += 2_000_000; // well past any armed deadline
            p.on_query(t);
            let _ = p.poll(t);
        }
        assert!(
            p.issued() >= 4,
            "pages must issue through on_query→poll without drain(); issued={}",
            p.issued()
        );
        assert_eq!(p.pending(), 0);
        assert_eq!(p.drain().len(), 0, "nothing left for a frame-end burst");
    }

    #[test]
    fn rearming_ablation_hook_reproduces_starvation() {
        // The legacy behaviour must stay reproducible for the leakage
        // auditor's negative control: same driver order, zero issues.
        let mut p = prefetcher();
        p.schedule(Address::from_low_u64(1), 4);
        let mut t = 0;
        for _ in 0..64 {
            t += 2_000_000;
            p.on_query_rearming(t);
            let _ = p.poll(t);
        }
        assert_eq!(p.issued(), 0, "rearming hook must starve the queue");
        assert_eq!(p.pending(), 4);
        let burst = p.drain();
        assert_eq!(burst.len(), 4, "starved pages surface as the drain burst");
        assert_eq!(p.drained(), 4);
    }

    #[test]
    fn drain_counts_separately_from_issued() {
        let mut p = prefetcher();
        p.schedule(Address::from_low_u64(1), 3);
        p.on_query(0);
        assert!(p.poll(10_000_000).is_some());
        assert_eq!(p.issued(), 1);
        assert_eq!(p.drained(), 0);
        let rest = p.drain();
        assert_eq!(rest.len(), 2);
        assert_eq!(p.issued(), 1, "drain must not inflate issued");
        assert_eq!(p.drained(), 2);
        let stats = p.stats();
        assert_eq!((stats.issued, stats.drained, stats.pending), (1, 2, 0));
    }

    #[test]
    fn pace_consumes_deadline_and_stalls_within_the_floor_band() {
        let mut p = prefetcher(); // initial gap 1 ms -> floor 250 us
        p.schedule(Address::from_low_u64(1), 2);
        p.on_query(0);
        // Pace consumes the armed deadline: poll cannot double-fire it.
        let wait = p.pace();
        assert!((250_000..500_000).contains(&wait), "stall {wait} outside floor band");
        assert_eq!(p.poll(u64::MAX), None);
        // Repeated draws stay in [floor, 2*floor) and vary (jitter).
        let draws: Vec<Nanos> = (0..16).map(|_| p.pace()).collect();
        assert!(draws.iter().all(|w| (250_000..500_000).contains(w)));
        assert!(draws.windows(2).any(|w| w[0] != w[1]), "stall must be randomized");
    }

    #[test]
    fn deadlines_are_randomized() {
        // Two prefetchers with different RNG seeds arm different
        // deadlines for the same query pattern.
        let mut a = CodePrefetcher::new(SecureRng::from_seed(b"a"), 1_000_000);
        let mut b = CodePrefetcher::new(SecureRng::from_seed(b"b"), 1_000_000);
        a.schedule(Address::from_low_u64(1), 8);
        b.schedule(Address::from_low_u64(1), 8);
        let mut fire_a = Vec::new();
        let mut fire_b = Vec::new();
        let mut t = 0;
        for _ in 0..8 {
            a.on_query(t);
            b.on_query(t);
            // Scan forward to see when each fires.
            for probe in (t..t + 2_000_000).step_by(10_000) {
                if fire_a.len() < fire_b.len() + 2 && a.poll(probe).is_some() {
                    fire_a.push(probe);
                    break;
                }
            }
            for probe in (t..t + 2_000_000).step_by(10_000) {
                if b.poll(probe).is_some() {
                    fire_b.push(probe);
                    break;
                }
            }
            t += 1_000_000;
        }
        assert_ne!(fire_a, fire_b);
    }
}
