//! Path ORAM (Stefanov & Shi) with AES-GCM re-encryption.
//!
//! The client hides which logical block it touches: every access reads
//! and rewrites one whole root-to-leaf path of randomized-encrypted
//! buckets, and the accessed block is remapped to a fresh uniformly
//! random leaf. The server (run by the untrusted SP) sees only
//! `(leaf, ciphertexts)` pairs — the access-pattern protection of paper
//! §IV-D.

use std::collections::HashMap;
use tape_crypto::{AesGcm, SecureRng};
use tape_primitives::B256;
use tape_sim::fault::{FaultKind, FaultPlan, FaultSite};
use tape_sim::{Clock, CostModel};

/// Logical block identifier (a hash of the page key).
pub type BlockId = B256;

/// Tree and block geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OramConfig {
    /// Payload bytes per *block* (paper: 1 KB).
    pub block_size: usize,
    /// Blocks per bucket (Z; the classic choice is 4).
    pub bucket_capacity: usize,
    /// Tree height: leaves = `2^height`, buckets = `2^(height+1) - 1`.
    pub height: u32,
}

impl Default for OramConfig {
    fn default() -> Self {
        // A laptop-scale tree. The paper's 1.1 TB world state corresponds
        // to height ≈ 30 (n ≈ 10⁹ blocks); experiments scale the height
        // and extrapolate (see EXPERIMENTS.md).
        OramConfig { block_size: 1024, bucket_capacity: 4, height: 12 }
    }
}

impl OramConfig {
    /// Number of leaves.
    pub fn leaves(&self) -> u64 {
        1 << self.height
    }

    /// Total bucket count.
    pub fn buckets(&self) -> u64 {
        (1 << (self.height + 1)) - 1
    }

    /// Buckets on one root-to-leaf path.
    pub fn path_len(&self) -> u64 {
        self.height as u64 + 1
    }

    /// Blocks touched per access (read + rewrite of one path).
    pub fn blocks_per_access(&self) -> u64 {
        self.path_len() * self.bucket_capacity as u64
    }

    /// Bucket index of the node at `level` on the path to `leaf`
    /// (level 0 = root).
    fn bucket_index(&self, leaf: u64, level: u32) -> usize {
        debug_assert!(leaf < self.leaves());
        debug_assert!(level <= self.height);
        // Root is index 0; the node at `level` on the path to `leaf` is
        // found by following the high bits of the leaf number.
        let prefix = leaf >> (self.height - level);
        (((1u64 << level) - 1) + prefix) as usize
    }
}

/// One access observed by the server: everything the adversary sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObservedAccess {
    /// Virtual time of the query.
    pub at: tape_sim::Nanos,
    /// The leaf whose path was read and rewritten.
    pub leaf: u64,
}

/// The untrusted ORAM server: stores opaque fixed-size ciphertexts and
/// records the access pattern it can observe.
#[derive(Debug)]
pub struct OramServer {
    config: OramConfig,
    /// `buckets[i][j]` = ciphertext of slot j in bucket i.
    buckets: Vec<Vec<Vec<u8>>>,
    log: Vec<ObservedAccess>,
    queries: u64,
    /// When armed, the server misbehaves per the plan's schedule —
    /// wrong paths, dropped write-backs, tampered ciphertexts.
    faults: Option<FaultPlan>,
}

impl OramServer {
    /// Creates a server with every slot holding an (uninitialized) empty
    /// ciphertext marker.
    pub fn new(config: OramConfig) -> Self {
        let buckets = (0..config.buckets())
            .map(|_| vec![Vec::new(); config.bucket_capacity])
            .collect();
        OramServer { config, buckets, log: Vec::new(), queries: 0, faults: None }
    }

    /// The server's geometry.
    pub fn config(&self) -> &OramConfig {
        &self.config
    }

    /// Makes the server adversarial: it consults `plan` at
    /// [`FaultSite::OramServer`] on every path read and write.
    pub fn arm_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// Reads all ciphertexts on the path to `leaf`, logging the access.
    ///
    /// An armed adversarial server may serve a *different* path
    /// ([`FaultKind::WrongPath`]) or flip a bit in one returned
    /// ciphertext ([`FaultKind::BitFlip`]) — the access log still
    /// records the leaf the client asked for, exactly as a dishonest
    /// provider would report it.
    pub fn read_path(&mut self, leaf: u64, at: tape_sim::Nanos) -> Vec<Vec<u8>> {
        self.queries += 1;
        self.log.push(ObservedAccess { at, leaf });
        let mut served_leaf = leaf;
        let mut flip: Option<u64> = None;
        if let Some(plan) = &self.faults {
            if let Some(decision) =
                plan.decide_for(FaultSite::OramServer, &[FaultKind::WrongPath, FaultKind::BitFlip])
            {
                match decision.kind {
                    FaultKind::WrongPath => {
                        // Serve some other path; skew by 1 so the fault
                        // never degenerates into the honest answer.
                        served_leaf = (leaf + 1 + decision.param % (self.config.leaves() - 1))
                            % self.config.leaves();
                    }
                    _ => flip = Some(decision.param),
                }
            }
        }
        let mut out = Vec::with_capacity(self.config.blocks_per_access() as usize);
        for level in 0..=self.config.height {
            let idx = self.config.bucket_index(served_leaf, level);
            for slot in &self.buckets[idx] {
                out.push(slot.clone());
            }
        }
        if let Some(param) = flip {
            let slot = (param % out.len() as u64) as usize;
            if !out[slot].is_empty() {
                let byte = ((param >> 16) % out[slot].len() as u64) as usize;
                out[slot][byte] ^= 1 << ((param >> 32) % 8);
            }
        }
        out
    }

    /// Overwrites the path to `leaf` with fresh ciphertexts
    /// (`blocks.len()` must equal [`OramConfig::blocks_per_access`]).
    ///
    /// An armed adversarial server may silently discard the write-back
    /// ([`FaultKind::DropWrite`]) while still reporting success.
    ///
    /// # Errors
    ///
    /// [`OramError::BadPathLength`] when the block count does not match
    /// the path geometry.
    pub fn write_path(&mut self, leaf: u64, blocks: Vec<Vec<u8>>) -> Result<(), OramError> {
        if blocks.len() as u64 != self.config.blocks_per_access() {
            return Err(OramError::BadPathLength {
                expected: self.config.blocks_per_access(),
                actual: blocks.len() as u64,
            });
        }
        if let Some(plan) = &self.faults {
            if plan.decide_for(FaultSite::OramServer, &[FaultKind::DropWrite]).is_some() {
                // The dishonest server acknowledges but stores nothing.
                return Ok(());
            }
        }
        let mut it = blocks.into_iter();
        for level in 0..=self.config.height {
            let idx = self.config.bucket_index(leaf, level);
            for slot in self.buckets[idx].iter_mut() {
                *slot = it.next().ok_or(OramError::BadPathLength {
                    expected: self.config.blocks_per_access(),
                    actual: 0,
                })?;
            }
        }
        Ok(())
    }

    /// Every access the server has observed — the adversary's view.
    pub fn observed(&self) -> &[ObservedAccess] {
        &self.log
    }

    /// Total queries served.
    pub fn queries(&self) -> u64 {
        self.queries
    }
}

/// Why an ORAM operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OramError {
    /// A ciphertext failed authentication — the server tampered with it
    /// (attack A6).
    Tampered,
    /// A plaintext block had the wrong size.
    BadBlockSize {
        /// The configured block size.
        expected: usize,
        /// The payload length supplied.
        actual: usize,
    },
    /// A block the position map says exists was not found on its path —
    /// the server served a wrong path or dropped a write-back (attack
    /// A5: dishonest path service).
    MissingBlock(BlockId),
    /// A path write-back carried the wrong number of blocks.
    BadPathLength {
        /// Blocks one path must carry ([`OramConfig::blocks_per_access`]).
        expected: u64,
        /// Blocks actually supplied.
        actual: u64,
    },
    /// A recursive-ORAM access targeted an index beyond the capacity
    /// fixed at construction.
    IndexOutOfRange {
        /// The requested index.
        index: u64,
        /// The configured capacity.
        capacity: u64,
    },
}

impl core::fmt::Display for OramError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OramError::Tampered => write!(f, "ORAM block failed authentication"),
            OramError::BadBlockSize { expected, actual } => {
                write!(f, "bad block size: expected {expected}, got {actual}")
            }
            OramError::MissingBlock(id) => {
                write!(f, "mapped ORAM block {id} missing from its path")
            }
            OramError::BadPathLength { expected, actual } => {
                write!(f, "bad path length: expected {expected} blocks, got {actual}")
            }
            OramError::IndexOutOfRange { index, capacity } => {
                write!(f, "recursive ORAM index {index} out of range (capacity {capacity})")
            }
        }
    }
}

impl std::error::Error for OramError {}

/// A stash entry: a decrypted real block waiting for eviction, carrying
/// its embedded leaf assignment (kept in the ciphertext so eviction never
/// needs the position map — the property recursion relies on).
#[derive(Debug, Clone)]
struct StashEntry {
    data: Vec<u8>,
    leaf: u64,
}

/// The trusted Path ORAM client (runs inside the Hypervisor).
///
/// Holds the position map and stash on-chip; every access produces one
/// uniformly random path read + rewrite on the server, independent of
/// the logical block touched.
pub struct OramClient {
    config: OramConfig,
    cipher: AesGcm,
    rng: SecureRng,
    position: HashMap<BlockId, u64>,
    stash: HashMap<BlockId, StashEntry>,
    /// Random per-client nonce prefix: clients in a fleet share the ORAM
    /// key (paper §IV-D), so each client must own a disjoint nonce space
    /// or AES-GCM security collapses on the first counter collision.
    nonce_prefix: [u8; 4],
    nonce_counter: u64,
    max_stash: usize,
}

impl core::fmt::Debug for OramClient {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("OramClient")
            .field("positions", &self.position.len())
            .field("stash", &self.stash.len())
            .finish()
    }
}

impl OramClient {
    /// Creates a client sharing `key` (the ORAM key held by the
    /// Hypervisors, paper §IV-D) and a seeded RNG.
    pub fn new(config: OramConfig, key: &[u8; 16], mut rng: SecureRng) -> Self {
        let mut nonce_prefix = [0u8; 4];
        rng.fill_bytes(&mut nonce_prefix);
        OramClient {
            config,
            cipher: AesGcm::new(key),
            rng,
            position: HashMap::new(),
            stash: HashMap::new(),
            nonce_prefix,
            nonce_counter: 0,
            max_stash: 0,
        }
    }

    /// The client's geometry.
    pub fn config(&self) -> &OramConfig {
        &self.config
    }

    /// Number of mapped blocks.
    pub fn len(&self) -> usize {
        self.position.len()
    }

    /// Returns `true` if no blocks are mapped.
    pub fn is_empty(&self) -> bool {
        self.position.is_empty()
    }

    /// High-water mark of the stash (for the O(log n) bound checks).
    pub fn max_stash_seen(&self) -> usize {
        self.max_stash
    }

    fn next_nonce(&mut self) -> [u8; 12] {
        self.nonce_counter += 1;
        let mut nonce = [0u8; 12];
        nonce[..4].copy_from_slice(&self.nonce_prefix);
        nonce[4..].copy_from_slice(&self.nonce_counter.to_be_bytes());
        nonce
    }

    fn encrypt_slot(&mut self, id: Option<(&BlockId, u64, &[u8])>) -> Vec<u8> {
        // Slot plaintext: 1 validity byte + 32-byte id + 8-byte leaf +
        // payload. The embedded leaf makes eviction position-map-free.
        let mut plain = Vec::with_capacity(41 + self.config.block_size);
        match id {
            Some((id, leaf, data)) => {
                plain.push(1);
                plain.extend_from_slice(id.as_bytes());
                plain.extend_from_slice(&leaf.to_be_bytes());
                plain.extend_from_slice(data);
            }
            None => {
                plain.push(0);
                plain.extend_from_slice(&[0u8; 40]);
                plain.extend(std::iter::repeat_n(0u8, self.config.block_size));
            }
        }
        let nonce = self.next_nonce();
        let mut out = nonce.to_vec();
        out.extend(self.cipher.seal(&nonce, b"oram", &plain));
        out
    }

    fn decrypt_slot(&self, slot: &[u8]) -> Result<Option<(BlockId, u64, Vec<u8>)>, OramError> {
        if slot.is_empty() {
            // Never-written slot: treated as a dummy.
            return Ok(None);
        }
        if slot.len() < 12 {
            return Err(OramError::Tampered);
        }
        let nonce: [u8; 12] = slot[..12].try_into().expect("length checked");
        let plain = self
            .cipher
            .open(&nonce, b"oram", &slot[12..])
            .map_err(|_| OramError::Tampered)?;
        if plain.len() != 41 + self.config.block_size {
            return Err(OramError::Tampered);
        }
        if plain[0] == 0 {
            return Ok(None);
        }
        let id = B256::from_slice(&plain[1..33]);
        let leaf = u64::from_be_bytes(plain[33..41].try_into().expect("fixed layout"));
        Ok(Some((id, leaf, plain[41..].to_vec())))
    }

    /// Reads a block; `None` if the id was never written.
    ///
    /// # Errors
    ///
    /// [`OramError::Tampered`] if the server returned forged ciphertexts.
    pub fn read(
        &mut self,
        server: &mut OramServer,
        clock: &Clock,
        cost: &CostModel,
        id: &BlockId,
    ) -> Result<Option<Vec<u8>>, OramError> {
        self.access(server, clock, cost, id, None)
    }

    /// Writes a block (creating it if new) and returns its old contents.
    ///
    /// # Errors
    ///
    /// [`OramError`] on tampering or a wrong-size payload.
    pub fn write(
        &mut self,
        server: &mut OramServer,
        clock: &Clock,
        cost: &CostModel,
        id: &BlockId,
        data: Vec<u8>,
    ) -> Result<Option<Vec<u8>>, OramError> {
        if data.len() != self.config.block_size {
            return Err(OramError::BadBlockSize {
                expected: self.config.block_size,
                actual: data.len(),
            });
        }
        self.access(server, clock, cost, id, Some(data))
    }

    /// The Path ORAM access procedure: remap, read path into stash,
    /// update, evict greedily, rewrite path. The internal position map
    /// supplies the leaves; [`access_at`](Self::access_at) is the
    /// map-free variant recursion builds on.
    fn access(
        &mut self,
        server: &mut OramServer,
        clock: &Clock,
        cost: &CostModel,
        id: &BlockId,
        new_data: Option<Vec<u8>>,
    ) -> Result<Option<Vec<u8>>, OramError> {
        let leaves = self.config.leaves();
        let known = self.position.contains_key(id);
        let old_leaf = match self.position.get(id) {
            Some(&leaf) => leaf,
            None => self.rng.next_below(leaves),
        };
        let new_leaf = self.rng.next_below(leaves);

        let is_write = new_data.is_some();
        let old = self.access_at(server, clock, cost, id, old_leaf, new_leaf, |existing| {
            match new_data {
                Some(data) => Some(data),
                None => existing,
            }
        })?;

        // An honest server always returns a mapped block: it is either
        // on its path or already in the stash. A miss means the server
        // served the wrong path or dropped an earlier write-back.
        if known && old.is_none() {
            return Err(OramError::MissingBlock(*id));
        }

        // Maintain the map: real blocks get the fresh leaf; a read miss
        // leaves no mapping behind.
        if is_write || old.is_some() || known {
            self.position.insert(*id, new_leaf);
        }
        Ok(old)
    }

    /// The map-free access primitive: the caller supplies the current and
    /// next leaf of the target block (recursive position maps do exactly
    /// this). `update` receives the block's current contents (`None` when
    /// absent) and returns what to store (`None` deletes/keeps absent).
    /// Returns the previous contents.
    ///
    /// # Errors
    ///
    /// [`OramError::Tampered`] if the server returned forged ciphertexts.
    #[allow(clippy::too_many_arguments)]
    pub fn access_at(
        &mut self,
        server: &mut OramServer,
        clock: &Clock,
        cost: &CostModel,
        id: &BlockId,
        old_leaf: u64,
        new_leaf: u64,
        update: impl FnOnce(Option<Vec<u8>>) -> Option<Vec<u8>>,
    ) -> Result<Option<Vec<u8>>, OramError> {
        // Read the whole path into the stash; embedded leaves ride along.
        let slots = server.read_path(old_leaf, clock.now());
        for slot in &slots {
            if let Some((slot_id, leaf, data)) = self.decrypt_slot(slot)? {
                self.stash.entry(slot_id).or_insert(StashEntry { data, leaf });
            }
        }

        // Serve the request from the stash, remapping the target.
        let old = self.stash.get(id).map(|e| e.data.clone());
        match update(old.clone()) {
            Some(data) => {
                self.stash.insert(*id, StashEntry { data, leaf: new_leaf });
            }
            None => {
                self.stash.remove(id);
            }
        }

        // Greedy eviction: walk the path leaf-to-root, placing stash
        // blocks into the deepest bucket whose subtree contains their
        // embedded leaf.
        let mut path_buckets: Vec<Vec<(BlockId, u64, Vec<u8>)>> =
            vec![Vec::new(); self.config.path_len() as usize];
        let stash_ids: Vec<BlockId> = self.stash.keys().copied().collect();
        for level in (0..=self.config.height).rev() {
            let capacity = self.config.bucket_capacity;
            for sid in &stash_ids {
                if path_buckets[level as usize].len() >= capacity {
                    break;
                }
                let Some(entry) = self.stash.get(sid) else { continue };
                // The block can live at `level` iff the path to its leaf
                // passes through the same bucket.
                let shift = self.config.height - level;
                if entry.leaf >> shift == old_leaf >> shift {
                    if let Some(entry) = self.stash.remove(sid) {
                        path_buckets[level as usize].push((*sid, entry.leaf, entry.data));
                    }
                }
            }
        }

        // Re-encrypt the full path (real blocks + dummies).
        let mut out = Vec::with_capacity(self.config.blocks_per_access() as usize);
        for bucket in path_buckets {
            let mut written = 0;
            for (bid, leaf, data) in &bucket {
                out.push(self.encrypt_slot(Some((bid, *leaf, data))));
                written += 1;
            }
            for _ in written..self.config.bucket_capacity {
                out.push(self.encrypt_slot(None));
            }
        }
        server.write_path(old_leaf, out)?;

        self.max_stash = self.max_stash.max(self.stash.len());
        clock.advance(cost.oram_query_ns(self.config.blocks_per_access()));
        Ok(old)
    }

    /// A fresh uniform leaf from the client's secure RNG.
    pub fn random_leaf(&mut self) -> u64 {
        let leaves = self.config.leaves();
        self.rng.next_below(leaves)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tape_crypto::keccak256;

    fn setup() -> (OramServer, OramClient, Clock, CostModel) {
        let config = OramConfig { block_size: 64, bucket_capacity: 4, height: 6 };
        let server = OramServer::new(config.clone());
        let client = OramClient::new(config, &[7u8; 16], SecureRng::from_seed(b"oram test"));
        (server, client, Clock::new(), CostModel::default())
    }

    fn bid(n: u64) -> BlockId {
        keccak256(n.to_be_bytes())
    }

    fn block(config_size: usize, fill: u8) -> Vec<u8> {
        vec![fill; config_size]
    }

    #[test]
    fn bucket_index_geometry() {
        let c = OramConfig { block_size: 1, bucket_capacity: 1, height: 2 };
        // Tree: root 0; level 1: 1,2; level 2 (leaves): 3,4,5,6.
        assert_eq!(c.bucket_index(0, 0), 0);
        assert_eq!(c.bucket_index(3, 0), 0);
        assert_eq!(c.bucket_index(0, 1), 1);
        assert_eq!(c.bucket_index(1, 1), 1);
        assert_eq!(c.bucket_index(2, 1), 2);
        assert_eq!(c.bucket_index(0, 2), 3);
        assert_eq!(c.bucket_index(3, 2), 6);
        assert_eq!(c.buckets(), 7);
        assert_eq!(c.path_len(), 3);
    }

    #[test]
    fn write_read_roundtrip() {
        let (mut server, mut client, clock, cost) = setup();
        let data = block(64, 0xAB);
        assert_eq!(
            client.write(&mut server, &clock, &cost, &bid(1), data.clone()).unwrap(),
            None
        );
        assert_eq!(
            client.read(&mut server, &clock, &cost, &bid(1)).unwrap(),
            Some(data)
        );
        assert_eq!(client.read(&mut server, &clock, &cost, &bid(99)).unwrap(), None);
    }

    #[test]
    fn overwrite_returns_old() {
        let (mut server, mut client, clock, cost) = setup();
        client.write(&mut server, &clock, &cost, &bid(1), block(64, 1)).unwrap();
        let old = client
            .write(&mut server, &clock, &cost, &bid(1), block(64, 2))
            .unwrap();
        assert_eq!(old, Some(block(64, 1)));
        assert_eq!(
            client.read(&mut server, &clock, &cost, &bid(1)).unwrap(),
            Some(block(64, 2))
        );
    }

    #[test]
    fn many_blocks_survive_shuffling() {
        let (mut server, mut client, clock, cost) = setup();
        for i in 0..100u64 {
            client
                .write(&mut server, &clock, &cost, &bid(i), block(64, i as u8))
                .unwrap();
        }
        // Interleaved reads in a scrambled order.
        for i in (0..100u64).rev().step_by(3) {
            assert_eq!(
                client.read(&mut server, &clock, &cost, &bid(i)).unwrap(),
                Some(block(64, i as u8)),
                "block {i}"
            );
        }
        // Stash stays small (O(log n) with Z=4).
        assert!(client.max_stash_seen() < 40, "stash blew up: {}", client.max_stash_seen());
    }

    #[test]
    fn wrong_block_size_rejected() {
        let (mut server, mut client, clock, cost) = setup();
        let err = client
            .write(&mut server, &clock, &cost, &bid(1), vec![0; 63])
            .unwrap_err();
        assert_eq!(err, OramError::BadBlockSize { expected: 64, actual: 63 });
    }

    #[test]
    fn server_tampering_detected() {
        let (mut server, mut client, clock, cost) = setup();
        client.write(&mut server, &clock, &cost, &bid(1), block(64, 5)).unwrap();
        // Corrupt every non-empty slot ciphertext.
        for bucket in &mut server.buckets {
            for slot in bucket.iter_mut() {
                if !slot.is_empty() {
                    let last = slot.len() - 1;
                    slot[last] ^= 0xFF;
                }
            }
        }
        let err = client.read(&mut server, &clock, &cost, &bid(1)).unwrap_err();
        assert_eq!(err, OramError::Tampered);
    }

    #[test]
    fn access_advances_clock() {
        let (mut server, mut client, clock, cost) = setup();
        client.write(&mut server, &clock, &cost, &bid(1), block(64, 1)).unwrap();
        let per_access = cost.oram_query_ns(client.config().blocks_per_access());
        assert_eq!(clock.now(), per_access);
        client.read(&mut server, &clock, &cost, &bid(1)).unwrap();
        assert_eq!(clock.now(), 2 * per_access);
    }

    #[test]
    fn server_logs_every_access() {
        let (mut server, mut client, clock, cost) = setup();
        for i in 0..10u64 {
            client.write(&mut server, &clock, &cost, &bid(i), block(64, 0)).unwrap();
        }
        assert_eq!(server.observed().len(), 10);
        assert_eq!(server.queries(), 10);
    }
}
