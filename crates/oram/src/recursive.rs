//! Recursive Path ORAM: the position map stored in higher-level ORAMs
//! (paper §II-C: "The position map can be stored in higher-level ORAMs
//! recursively if it is too big").
//!
//! For the paper's 1.1 TB world state (n ≈ 10⁹ blocks) a flat position
//! map needs ~8 GB — far beyond on-chip memory. Recursion packs 128
//! leaf pointers per 1 KB map block, shrinking the map by 128× per
//! level until the top level fits on-chip. Every level is a full Path
//! ORAM sharing the same wire format, so the adversary still sees only
//! uniformly random path accesses.
//!
//! The address space is dense (`0..capacity`): the paged world state
//! assigns page indices at (public) block-sync time, so the index
//! dictionary is public data and needs no protection.

use crate::path_oram::{OramClient, OramConfig, OramError, OramServer};
use std::collections::HashMap;
use tape_crypto::{Keccak256, SecureRng};
use tape_primitives::B256;
use tape_sim::{Clock, CostModel};

/// Pointers per map block: `block_size / 8`.
fn entries_per_block(config: &OramConfig) -> u64 {
    (config.block_size / 8) as u64
}

fn level_block_id(level: usize, index: u64) -> B256 {
    let mut h = Keccak256::new();
    h.update(b"recursive-oram");
    h.update(&(level as u64).to_be_bytes());
    h.update(&index.to_be_bytes());
    h.finalize()
}

struct Level {
    client: OramClient,
    server: OramServer,
}

/// A recursive Path ORAM over a dense index space.
///
/// Level 0 stores the data blocks; level `k` stores the position map of
/// level `k-1`, packed as big-endian `leaf + 1` entries (0 = absent).
/// The top level's position map is small enough to live on-chip.
///
/// # Examples
///
/// ```
/// use tape_crypto::SecureRng;
/// use tape_oram::{OramConfig, RecursiveOram};
/// use tape_sim::{Clock, CostModel};
///
/// let config = OramConfig { block_size: 64, bucket_capacity: 4, height: 8 };
/// let mut oram = RecursiveOram::new(
///     config,
///     1 << 8,  // capacity: 256 data blocks
///     4,       // at most 4 on-chip map entries -> forces recursion
///     &[0u8; 16],
///     SecureRng::from_seed(b"doc"),
/// );
/// let (clock, cost) = (Clock::new(), CostModel::default());
/// oram.write(&clock, &cost, 42, vec![7u8; 64])?;
/// assert_eq!(oram.read(&clock, &cost, 42)?, Some(vec![7u8; 64]));
/// assert!(oram.levels() >= 2); // recursion actually engaged
/// # Ok::<(), tape_oram::OramError>(())
/// ```
pub struct RecursiveOram {
    levels: Vec<Level>,
    /// Positions of the top level's blocks (the only map held on-chip).
    top_map: HashMap<u64, u64>,
    capacity: u64,
}

impl core::fmt::Debug for RecursiveOram {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RecursiveOram")
            .field("levels", &self.levels.len())
            .field("capacity", &self.capacity)
            .field("top_map", &self.top_map.len())
            .finish()
    }
}

impl RecursiveOram {
    /// Builds the level stack: data at level 0, then map levels until at
    /// most `on_chip_limit` entries remain for the on-chip map.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `on_chip_limit` is zero.
    pub fn new(
        data_config: OramConfig,
        capacity: u64,
        on_chip_limit: u64,
        key: &[u8; 16],
        mut rng: SecureRng,
    ) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(on_chip_limit > 0, "on-chip limit must be positive");
        let packing = entries_per_block(&data_config);
        assert!(packing >= 2, "block size too small to pack pointers");

        let mut levels = Vec::new();
        let mut blocks = capacity;
        let mut config = data_config;
        loop {
            let level_rng = SecureRng::from_seed(&{
                let mut seed = Vec::from(&b"recursive-level"[..]);
                seed.extend_from_slice(&(levels.len() as u64).to_be_bytes());
                let mut base = [0u8; 32];
                rng.fill_bytes(&mut base);
                seed.extend_from_slice(&base);
                seed
            });
            levels.push(Level {
                server: OramServer::new(config.clone()),
                client: OramClient::new(config.clone(), key, level_rng),
            });
            if blocks <= on_chip_limit {
                break;
            }
            blocks = blocks.div_ceil(packing);
            // Map levels shrink: a tree with ~blocks/Z leaves suffices.
            let needed_leaves = blocks.div_ceil(config.bucket_capacity as u64).max(2);
            let height = 64 - (needed_leaves - 1).leading_zeros();
            config = OramConfig { height: height.max(2), ..config };
        }
        let _ = rng; // consumed above to seed the per-level RNGs
        RecursiveOram { levels, top_map: HashMap::new(), capacity }
    }

    /// Number of ORAM levels (1 = no recursion engaged).
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// Entries currently held in the on-chip top map.
    pub fn top_map_len(&self) -> usize {
        self.top_map.len()
    }

    /// Total server queries across every level (each data access costs
    /// one query per level — the classic recursion overhead).
    pub fn total_queries(&self) -> u64 {
        self.levels.iter().map(|l| l.server.queries()).sum()
    }

    /// Reads data block `index`.
    ///
    /// # Errors
    ///
    /// [`OramError`] on tampering or an out-of-range index.
    pub fn read(
        &mut self,
        clock: &Clock,
        cost: &CostModel,
        index: u64,
    ) -> Result<Option<Vec<u8>>, OramError> {
        self.access(clock, cost, index, None)
    }

    /// Writes data block `index`, returning the previous contents.
    ///
    /// # Errors
    ///
    /// [`OramError`] on tampering, a wrong block size, or an
    /// out-of-range index.
    pub fn write(
        &mut self,
        clock: &Clock,
        cost: &CostModel,
        index: u64,
        data: Vec<u8>,
    ) -> Result<Option<Vec<u8>>, OramError> {
        let expected = self.levels[0].client.config().block_size;
        if data.len() != expected {
            return Err(OramError::BadBlockSize { expected, actual: data.len() });
        }
        self.access(clock, cost, index, Some(data))
    }

    fn access(
        &mut self,
        clock: &Clock,
        cost: &CostModel,
        index: u64,
        new_data: Option<Vec<u8>>,
    ) -> Result<Option<Vec<u8>>, OramError> {
        if index >= self.capacity {
            return Err(OramError::IndexOutOfRange { index, capacity: self.capacity });
        }
        let depth = self.levels.len();
        let packing = entries_per_block(self.levels[0].client.config());

        // Block index at each level.
        let mut idx = vec![0u64; depth];
        idx[0] = index;
        for k in 1..depth {
            idx[k] = idx[k - 1] / packing;
        }

        // Fresh leaves for every level's accessed block.
        let new_leaf: Vec<u64> =
            (0..depth).map(|k| self.levels[k].client.random_leaf()).collect();

        // Top level: the on-chip map supplies (and receives) the leaf.
        let top = depth - 1;
        let mut cur_leaf: Option<u64> = self.top_map.get(&idx[top]).copied();
        self.top_map.insert(idx[top], new_leaf[top]);

        // Walk down through the map levels, reading the child pointer and
        // installing the child's fresh leaf in one access.
        for k in (1..depth).rev() {
            let level = &mut self.levels[k];
            let old_leaf = match cur_leaf {
                Some(leaf) => leaf,
                // Absent map block: dummy-read a random path; the update
                // callback materializes the block.
                None => level.client.random_leaf(),
            };
            let entry = (idx[k - 1] % packing) as usize;
            let child_new = new_leaf[k - 1];
            let block_size = level.client.config().block_size;
            let mut child_old: Option<u64> = None;
            level.client.access_at(
                &mut level.server,
                clock,
                cost,
                &level_block_id(k, idx[k]),
                old_leaf,
                new_leaf[k],
                |existing| {
                    let mut page = existing.unwrap_or_else(|| vec![0u8; block_size]);
                    let at = entry * 8;
                    let raw =
                        u64::from_be_bytes(page[at..at + 8].try_into().expect("in range"));
                    if raw != 0 {
                        child_old = Some(raw - 1);
                    }
                    page[at..at + 8].copy_from_slice(&(child_new + 1).to_be_bytes());
                    Some(page)
                },
            )?;
            cur_leaf = child_old;
        }

        // Level 0: the data itself.
        let level = &mut self.levels[0];
        let old_leaf = match cur_leaf {
            Some(leaf) => leaf,
            None => level.client.random_leaf(),
        };
        let was_present = cur_leaf.is_some();
        level.client.access_at(
            &mut level.server,
            clock,
            cost,
            &level_block_id(0, idx[0]),
            old_leaf,
            new_leaf[0],
            |existing| match new_data {
                Some(data) => Some(data),
                None => existing,
            },
        )
        .map(|old| if was_present { old } else { None })
    }

    /// The leaves observed by the adversary at every level, flattened —
    /// the complete wire view.
    pub fn observed_leaves(&self) -> Vec<(usize, u64)> {
        let mut out = Vec::new();
        for (k, level) in self.levels.iter().enumerate() {
            for access in level.server.observed() {
                out.push((k, access.leaf));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oram(capacity: u64, on_chip: u64) -> (RecursiveOram, Clock, CostModel) {
        let config = OramConfig { block_size: 64, bucket_capacity: 4, height: 8 };
        (
            RecursiveOram::new(config, capacity, on_chip, &[3u8; 16], SecureRng::from_seed(b"rec")),
            Clock::new(),
            CostModel::default(),
        )
    }

    #[test]
    fn level_sizing() {
        // 64-byte blocks pack 8 pointers. 4096 blocks / 8 = 512 / 8 = 64
        // / 8 = 8 <= 16 on-chip: levels = data + 3 maps.
        let (oram, _, _) = oram(4096, 16);
        assert_eq!(oram.levels(), 4);
        // Everything fits on-chip: single level.
        let (flat, _, _) = self::oram(10, 16);
        assert_eq!(flat.levels(), 1);
    }

    #[test]
    fn write_read_roundtrip_through_recursion() {
        let (mut oram, clock, cost) = oram(512, 4);
        assert!(oram.levels() >= 3);
        for i in 0..64u64 {
            assert_eq!(oram.write(&clock, &cost, i, vec![i as u8; 64]).unwrap(), None);
        }
        for i in (0..64u64).rev() {
            assert_eq!(
                oram.read(&clock, &cost, i).unwrap(),
                Some(vec![i as u8; 64]),
                "block {i}"
            );
        }
        // Unwritten indices read as absent.
        assert_eq!(oram.read(&clock, &cost, 300).unwrap(), None);
    }

    #[test]
    fn overwrite_returns_old() {
        let (mut oram, clock, cost) = oram(128, 4);
        oram.write(&clock, &cost, 7, vec![1u8; 64]).unwrap();
        let old = oram.write(&clock, &cost, 7, vec![2u8; 64]).unwrap();
        assert_eq!(old, Some(vec![1u8; 64]));
        assert_eq!(oram.read(&clock, &cost, 7).unwrap(), Some(vec![2u8; 64]));
    }

    #[test]
    fn on_chip_map_stays_bounded() {
        let (mut oram, clock, cost) = oram(4096, 16);
        for i in 0..256u64 {
            oram.write(&clock, &cost, i * 16, vec![0u8; 64]).unwrap();
        }
        // The on-chip map only tracks top-level blocks.
        assert!(
            oram.top_map_len() as u64 <= 16,
            "top map grew to {}",
            oram.top_map_len()
        );
    }

    #[test]
    fn each_access_costs_one_query_per_level() {
        let (mut oram, clock, cost) = oram(512, 4);
        let levels = oram.levels() as u64;
        let before = oram.total_queries();
        oram.write(&clock, &cost, 1, vec![0u8; 64]).unwrap();
        oram.read(&clock, &cost, 1).unwrap();
        assert_eq!(oram.total_queries() - before, 2 * levels);
    }

    #[test]
    fn leaves_remain_uniform_under_hammering() {
        let (mut oram, clock, cost) = oram(512, 4);
        oram.write(&clock, &cost, 5, vec![9u8; 64]).unwrap();
        for _ in 0..400 {
            oram.read(&clock, &cost, 5).unwrap();
        }
        // Data-level (level 0, height 8) leaves must span the space.
        let leaves: Vec<u64> = oram
            .observed_leaves()
            .into_iter()
            .filter(|(k, _)| *k == 0)
            .map(|(_, l)| l)
            .collect();
        let distinct: std::collections::HashSet<_> = leaves.iter().collect();
        assert!(distinct.len() > 100, "only {} distinct leaves", distinct.len());
        let mean = leaves.iter().sum::<u64>() as f64 / leaves.len() as f64;
        let uniform = 255.0 / 2.0 * 2.0; // 2^8 leaves -> mean ~127.5... adjusted below
        let expected = ((1u64 << 8) - 1) as f64 / 2.0;
        assert!((mean - expected).abs() < expected * 0.25, "mean {mean} vs {expected}");
        let _ = uniform;
    }

    #[test]
    fn deterministic_under_seed() {
        let run = || {
            let (mut oram, clock, cost) = oram(256, 4);
            for i in 0..32u64 {
                oram.write(&clock, &cost, i, vec![i as u8; 64]).unwrap();
            }
            oram.observed_leaves()
        };
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod stash_probe {
    use super::*;

    #[test]
    fn map_level_stash_under_full_occupancy() {
        let config = OramConfig { block_size: 64, bucket_capacity: 4, height: 8 };
        let mut oram = RecursiveOram::new(config, 4096, 16, &[3u8; 16], SecureRng::from_seed(b"probe"));
        let (clock, cost) = (Clock::new(), CostModel::default());
        for i in 0..4096u64 {
            oram.write(&clock, &cost, i, vec![1u8; 64]).unwrap();
            if i % 512 == 511 {
                for (k, level) in oram.levels.iter().enumerate() {
                    eprintln!("after {} writes: level {} height {} leaves {} max_stash {}",
                        i + 1, k, level.client.config().height,
                        level.client.config().leaves(), level.client.max_stash_seen());
                }
            }
        }
        // extra accesses after full occupancy
        for i in 0..2048u64 {
            oram.read(&clock, &cost, i * 2).unwrap();
        }
        for (k, level) in oram.levels.iter().enumerate() {
            eprintln!("final: level {} max_stash {}", k, level.client.max_stash_seen());
        }
    }
}
