//! Per-device health: the fleet's view of whether a HarDTAPE device
//! should be handed work.
//!
//! The state machine reuses the battle-tested
//! [`CircuitBreaker`](tape_node::CircuitBreaker) from the block-feed
//! path — same thresholds, same pure-state-machine discipline (time is
//! passed in from the device's own virtual clock) — and renames its
//! states into fleet vocabulary:
//!
//! | breaker state            | fleet state   | dispatch? |
//! |--------------------------|---------------|-----------|
//! | Closed, streak = 0       | `Healthy`     | yes       |
//! | Closed, streak > 0       | `Suspect`     | yes       |
//! | Open                     | `Quarantined` | no        |
//! | HalfOpen                 | `Probation`   | probe     |
//!
//! On top of the breaker sits one terminal state the feed path never
//! needed: `Failed`. A crashed device does not cool down — its sessions
//! and checkpoints are gone, and the router's only move is migration.

use tape_node::{BreakerState, CircuitBreaker};
use tape_sim::Nanos;

/// The fleet-facing health of one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Serving normally; no open strikes.
    Healthy,
    /// Serving, but with at least one recent strike (a hang, an
    /// all-cores-quarantined round). Clears on the next clean round.
    Suspect,
    /// Struck out: no work is dispatched until the cooldown elapses.
    Quarantined,
    /// Cooldown elapsed: the next round is a probe. Success heals the
    /// device; failure re-quarantines it with a fresh cooldown.
    Probation,
    /// Crashed, permanently. Sessions, queues, and checkpoints on the
    /// device are lost; only migration serves its tenants now.
    Failed,
}

impl core::fmt::Display for HealthState {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HealthState::Healthy => write!(f, "healthy"),
            HealthState::Suspect => write!(f, "suspect"),
            HealthState::Quarantined => write!(f, "quarantined"),
            HealthState::Probation => write!(f, "probation"),
            HealthState::Failed => write!(f, "failed"),
        }
    }
}

/// Health tracking for one device: a [`CircuitBreaker`] plus the
/// terminal crash latch.
#[derive(Debug, Clone)]
pub struct DeviceHealth {
    breaker: CircuitBreaker,
    failed: bool,
}

impl DeviceHealth {
    /// A healthy device that quarantines after `failure_threshold`
    /// consecutive strikes and probes after `cooldown_ns` of the
    /// device's virtual time.
    ///
    /// # Panics
    ///
    /// Panics if `failure_threshold` is zero (inherited from
    /// [`CircuitBreaker::new`]).
    pub fn new(failure_threshold: u32, cooldown_ns: Nanos) -> Self {
        DeviceHealth { breaker: CircuitBreaker::new(failure_threshold, cooldown_ns), failed: false }
    }

    /// The current state at `now` (the device's own clock), applying
    /// any pending Quarantined → Probation cooldown transition.
    pub fn state(&mut self, now: Nanos) -> HealthState {
        if self.failed {
            return HealthState::Failed;
        }
        match self.breaker.state(now) {
            BreakerState::Closed if self.breaker.consecutive_failures() == 0 => {
                HealthState::Healthy
            }
            BreakerState::Closed => HealthState::Suspect,
            BreakerState::Open => HealthState::Quarantined,
            BreakerState::HalfOpen => HealthState::Probation,
        }
    }

    /// Records one strike (missed round, device-grade error) at `now`.
    /// No-op once failed.
    pub fn strike(&mut self, now: Nanos) {
        if !self.failed {
            self.breaker.record_failure(now);
        }
    }

    /// Records a clean round: clears the strike streak (Suspect →
    /// Healthy) or passes the probation probe (Probation → Healthy).
    pub fn healed(&mut self) {
        if !self.failed {
            self.breaker.record_success();
        }
    }

    /// Latches the terminal crash state.
    pub fn fail(&mut self) {
        self.failed = true;
    }

    /// Whether the device has crashed (terminal).
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Whether new work (sessions, bundles) may be routed to the
    /// device at `now`: true in Healthy, Suspect, and Probation.
    pub fn eligible(&mut self, now: Nanos) -> bool {
        !self.failed && self.breaker.call_permitted(now)
    }

    /// Time left on the quarantine clock at `now` (0 unless
    /// quarantined); a natural `retry_after` hint for rejected work.
    pub fn retry_after(&mut self, now: Nanos) -> Nanos {
        self.breaker.retry_after(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strikes_walk_healthy_suspect_quarantined_probation() {
        let mut health = DeviceHealth::new(2, 1_000);
        assert_eq!(health.state(0), HealthState::Healthy);
        health.strike(10);
        assert_eq!(health.state(10), HealthState::Suspect);
        health.strike(20);
        assert_eq!(health.state(20), HealthState::Quarantined);
        assert!(!health.eligible(500));
        assert_eq!(health.state(1_020), HealthState::Probation);
        assert!(health.eligible(1_020), "probation admits the probe");
        health.healed();
        assert_eq!(health.state(1_020), HealthState::Healthy);
    }

    #[test]
    fn clean_round_clears_a_suspect_streak() {
        let mut health = DeviceHealth::new(2, 1_000);
        health.strike(10);
        health.healed();
        health.strike(20);
        assert_eq!(health.state(20), HealthState::Suspect, "streak restarted, not resumed");
    }

    #[test]
    fn failed_probe_requarantines_with_a_fresh_cooldown() {
        let mut health = DeviceHealth::new(1, 1_000);
        health.strike(0);
        assert_eq!(health.state(1_000), HealthState::Probation);
        health.strike(1_100);
        assert_eq!(health.state(1_100), HealthState::Quarantined);
        assert_eq!(health.state(2_000), HealthState::Quarantined, "cooldown restarted");
        assert_eq!(health.state(2_100), HealthState::Probation);
    }

    #[test]
    fn failure_is_terminal() {
        let mut health = DeviceHealth::new(3, 1_000);
        health.fail();
        assert!(health.is_failed());
        assert_eq!(health.state(u64::MAX), HealthState::Failed, "no cooldown revives a crash");
        assert!(!health.eligible(u64::MAX));
        health.healed();
        health.strike(0);
        assert_eq!(health.state(0), HealthState::Failed);
    }
}
