#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Fault-tolerant HarDTAPE fleet: a router fronting K devices with
//! rendezvous-hashed tenant sharding, per-device health/quarantine, and
//! live session migration on device failure.
//!
//! The paper evaluates a single HarDTAPE board; a deployment fronts
//! many. This crate adds the layer the paper leaves implicit: what
//! happens when one of K devices wedges or dies. The contract the
//! router keeps is the same one the single-device gateway keeps —
//! every admitted bundle resolves to exactly one typed completion —
//! extended across device failure via migration (tenants re-attest on
//! a survivor, readable thanks to the fleet ORAM-key escrow) and typed
//! shedding of in-flight work whose execution state died with the
//! device.
//!
//! Entry point: [`FleetRouter`].

pub mod health;
pub mod router;

pub use health::{DeviceHealth, HealthState};
pub use router::{
    FleetCompletion, FleetConfig, FleetError, FleetRouter, FleetStats, FleetSyncReport,
};
