//! The fleet router: one front door over K HarDTAPE devices.
//!
//! The router owns a vector of [`Gateway`]-wrapped devices and presents
//! the same connect/submit/run/sync surface a single gateway does, with
//! three fleet-only behaviours layered on top:
//!
//! * **Sharding** — tenants are pinned to a home device by rendezvous
//!   (highest-random-weight) hashing over the eligible device set, so
//!   adding or losing a device only moves the tenants that must move.
//! * **Health** — every device carries a [`DeviceHealth`] state machine
//!   fed by watchdog strikes (missed rounds, device-grade errors) and
//!   seeded availability faults ([`FaultKind::DeviceCrash`] /
//!   [`FaultKind::DeviceHang`] at [`FaultSite::Device`]). Quarantined
//!   devices are skipped; crashed devices are failed over.
//! * **Migration** — when a device fails, its tenants re-attest on the
//!   surviving device their rendezvous weight now elects (the fleet
//!   ORAM-key escrow makes the survivor's world state readable), queued
//!   bundles are resubmitted under their original fleet tickets, and
//!   in-flight paused work — whose [`hardtape::BundlePause`] lived only
//!   on the dead device and is not `Clone` by construction — is shed
//!   with a typed [`FleetError::DeviceFailed`] completion. Every
//!   admitted fleet ticket still resolves to exactly one
//!   [`FleetCompletion`].
//!
//! The router also owns fleet-wide chain sync: all devices sync from
//! the *same* [`FeedSet`] and are expected to adopt the same head;
//! [`FleetRouter::converged_head`] turns disagreement into a typed
//! [`FleetError::SplitHead`].

use std::collections::HashMap;

use hardtape::{
    Bundle, BundleReport, Completion, Gateway, GatewayError, ServiceError, SyncOutcome,
};
use tape_crypto::keccak256;
use tape_node::FeedSet;
use tape_primitives::B256;
use tape_sim::fault::{FaultKind, FaultPlan, FaultSite};
use tape_sim::queue::EventLog;
use tape_sim::telemetry::{CounterId, Telemetry};
use tape_sim::Nanos;

use crate::health::{DeviceHealth, HealthState};

/// Tuning knobs for the fleet's health policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Consecutive strikes before a device is quarantined.
    pub failure_threshold: u32,
    /// Virtual time (on the struck device's own clock) a quarantine
    /// lasts before the device earns a probation probe.
    pub cooldown_ns: Nanos,
    /// Virtual time a skipped device (hung or quarantined) burns per
    /// round. Without this a quarantined device's clock would freeze —
    /// it only advances while executing — and its cooldown would never
    /// elapse.
    pub idle_tick_ns: Nanos,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            failure_threshold: 3,
            cooldown_ns: 2_000_000_000,  // 2 s of device time
            idle_tick_ns: 500_000_000,   // 500 ms per skipped round
        }
    }
}

/// Typed fleet-level failures. Gateway-level errors pass through in
/// [`FleetError::Gateway`]; the other variants only the router can
/// produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// The tenant's device crashed with this work in flight; the paused
    /// execution state died with it and cannot be replayed elsewhere.
    DeviceFailed {
        /// Index of the crashed device.
        device: usize,
    },
    /// No device in the fleet is currently eligible for new work.
    NoEligibleDevice,
    /// The fleet session id is not registered with the router.
    UnknownSession(u64),
    /// Surviving devices disagree on the adopted chain head.
    SplitHead {
        /// `(device index, adopted head)` for every surviving device.
        heads: Vec<(usize, Option<B256>)>,
    },
    /// An error surfaced by the tenant's home gateway.
    Gateway(GatewayError),
}

impl core::fmt::Display for FleetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FleetError::DeviceFailed { device } => {
                write!(f, "device {device} failed with this work in flight")
            }
            FleetError::NoEligibleDevice => write!(f, "no eligible device in the fleet"),
            FleetError::UnknownSession(session) => write!(f, "unknown fleet session {session}"),
            FleetError::SplitHead { heads } => {
                write!(f, "fleet head divergence across {} devices", heads.len())
            }
            FleetError::Gateway(err) => write!(f, "gateway: {err}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<GatewayError> for FleetError {
    fn from(err: GatewayError) -> Self {
        FleetError::Gateway(err)
    }
}

/// One finished unit of fleet work: exactly one per admitted fleet
/// ticket, success or typed failure.
#[derive(Debug, Clone)]
pub struct FleetCompletion {
    /// Fleet-wide ticket (router-issued; device tickets are private).
    pub ticket: u64,
    /// Fleet session the work belonged to.
    pub session: u64,
    /// Device that resolved the ticket (for a failover shed, the dead
    /// device the work was lost on).
    pub device: usize,
    /// The signed report, or a typed reason there is none.
    pub outcome: Result<BundleReport, FleetError>,
}

/// Aggregate router counters (instrumentation for tests and ops).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Fleet tickets admitted (queued on some device).
    pub admitted: u64,
    /// Submissions rejected (overload, unknown session, no device).
    pub rejected: u64,
    /// Completions with a signed report.
    pub completed_ok: u64,
    /// Completions with a typed error.
    pub completed_err: u64,
    /// Tenant sessions re-attested onto a surviving device.
    pub migrations: u64,
    /// In-flight paused bundles shed with `DeviceFailed` on a crash.
    pub shed_on_failure: u64,
    /// Devices latched into the terminal `Failed` state.
    pub device_failures: u64,
}

/// Outcome of a fleet-wide sync pass against one [`FeedSet`].
#[derive(Debug)]
pub struct FleetSyncReport {
    /// Per surviving device: the chain outcome of its sync, in device
    /// order.
    pub outcomes: Vec<(usize, Result<SyncOutcome, GatewayError>)>,
    /// Reorg-shed completions across the fleet (typed, exactly-once).
    pub shed: Vec<FleetCompletion>,
}

/// A tenant's routing record.
#[derive(Debug, Clone)]
struct TenantRecord {
    /// Attestation seed, retained so the router can re-attest the
    /// tenant on a survivor during migration.
    seed: Vec<u8>,
    /// Home device index.
    device: usize,
    /// The home gateway's session id for this tenant.
    device_session: u64,
    /// How many times this tenant has been migrated.
    generation: u32,
    /// True once the tenant's device failed with no eligible survivor;
    /// later submissions get `NoEligibleDevice`.
    orphaned: bool,
}

/// The fleet router. See the [module docs](self) for the design.
pub struct FleetRouter {
    gateways: Vec<Gateway>,
    config: FleetConfig,
    health: Vec<DeviceHealth>,
    last_health: Vec<HealthState>,
    /// fleet session → routing record.
    tenants: HashMap<u64, TenantRecord>,
    /// (device index, device ticket) → (fleet ticket, fleet session).
    /// Entries move between devices on failover and are removed when
    /// the completion is adopted — exactly-once by construction.
    tickets: HashMap<(usize, u64), (u64, u64)>,
    next_session: u64,
    next_ticket: u64,
    round: u64,
    faults: Option<FaultPlan>,
    fleet_key: [u8; 16],
    log: EventLog,
    telemetry: Telemetry,
    stats: FleetStats,
}

impl FleetRouter {
    /// Builds a router over `gateways` and establishes the fleet
    /// ORAM-key escrow: device 0's key is shared to every other device
    /// so any survivor can serve a migrated tenant's world state.
    ///
    /// # Panics
    ///
    /// Panics if `gateways` is empty.
    pub fn new(mut gateways: Vec<Gateway>, config: FleetConfig) -> Self {
        assert!(!gateways.is_empty(), "a fleet needs at least one device");
        let fleet_key = gateways[0].device().oram_key();
        for gateway in gateways.iter_mut().skip(1) {
            gateway.device_mut().share_oram_key(fleet_key);
        }
        let count = gateways.len();
        let mut log = EventLog::new();
        log.record(format!("r=0 fleet-boot devices={count}"));
        FleetRouter {
            health: (0..count)
                .map(|_| DeviceHealth::new(config.failure_threshold, config.cooldown_ns))
                .collect(),
            last_health: vec![HealthState::Healthy; count],
            gateways,
            config,
            tenants: HashMap::new(),
            tickets: HashMap::new(),
            next_session: 1,
            next_ticket: 1,
            round: 0,
            faults: None,
            fleet_key,
            log,
            telemetry: Telemetry::new(),
            stats: FleetStats::default(),
        }
    }

    /// Arms a seeded fault plan; the router consults
    /// [`FaultSite::Device`] once per live device per round.
    pub fn arm_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// Number of devices (including failed ones; indices are stable).
    pub fn device_count(&self) -> usize {
        self.gateways.len()
    }

    /// Read access to one device's gateway.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn gateway(&self, device: usize) -> &Gateway {
        &self.gateways[device]
    }

    /// Mutable access to one device's gateway (test rigs poke devices
    /// directly; routed traffic should use the router surface).
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn gateway_mut(&mut self, device: usize) -> &mut Gateway {
        &mut self.gateways[device]
    }

    /// The current health of one device, on that device's clock.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn health_state(&mut self, device: usize) -> HealthState {
        let now = self.gateways[device].device().clock().now();
        self.health[device].state(now)
    }

    /// The router's own event log (device gateways keep their own).
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// The router's telemetry registry (fleet counters live here).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Aggregate router counters.
    pub fn stats(&self) -> FleetStats {
        self.stats
    }

    /// Bundles queued across all surviving devices.
    pub fn queued_total(&self) -> usize {
        self.gateways
            .iter()
            .zip(&self.health)
            .filter(|(_, health)| !health.is_failed())
            .map(|(gateway, _)| gateway.queued())
            .sum()
    }

    /// The tenant's current home device, if the session is known.
    pub fn tenant_device(&self, session: u64) -> Option<usize> {
        self.tenants.get(&session).map(|record| record.device)
    }

    /// Deterministic fleet digest: the router's log and telemetry plus
    /// every device's gateway log and device telemetry, in device
    /// order. Two runs with the same seeds must produce the same value.
    pub fn digest(&self) -> String {
        let mut parts = vec![self.log.digest(), self.telemetry.digest()];
        for gateway in &self.gateways {
            parts.push(gateway.log().digest());
            parts.push(gateway.device().telemetry().digest());
        }
        parts.join(":")
    }

    /// Rendezvous (highest-random-weight) election among currently
    /// eligible devices: weight = keccak(seed ‖ "/hrw/" ‖ index), the
    /// winner is the highest weight. Losing a device re-elects only
    /// that device's tenants; everyone else's maximum is unchanged.
    fn rendezvous(&mut self, seed: &[u8]) -> Option<usize> {
        let mut best: Option<(B256, usize)> = None;
        for index in 0..self.gateways.len() {
            if !self.device_eligible(index) {
                continue;
            }
            let mut material = Vec::with_capacity(seed.len() + 14);
            material.extend_from_slice(seed);
            material.extend_from_slice(b"/hrw/");
            material.extend_from_slice(&(index as u64).to_be_bytes());
            let weight = keccak256(&material);
            if best.as_ref().is_none_or(|(top, _)| weight.as_bytes() > top.as_bytes()) {
                best = Some((weight, index));
            }
        }
        best.map(|(_, index)| index)
    }

    fn device_eligible(&mut self, device: usize) -> bool {
        let now = self.gateways[device].device().clock().now();
        self.health[device].eligible(now)
    }

    /// Records a health transition (if any) in the log and telemetry.
    fn note_health(&mut self, device: usize) {
        let now = self.gateways[device].device().clock().now();
        let state = self.health[device].state(now);
        if state != self.last_health[device] {
            self.telemetry.count(CounterId::FleetHealthTransitions, 1);
            self.log.record(format!(
                "r={} health device={device} {} -> {}",
                self.round, self.last_health[device], state
            ));
            self.last_health[device] = state;
        }
    }

    fn strike(&mut self, device: usize, reason: &str) {
        let now = self.gateways[device].device().clock().now();
        self.health[device].strike(now);
        self.log.record(format!("r={} strike device={device} reason={reason}", self.round));
        self.note_health(device);
    }

    /// Attests a new tenant, pinning it to its rendezvous-elected home
    /// device, and returns the fleet session id.
    pub fn connect(&mut self, user_seed: &[u8]) -> Result<u64, FleetError> {
        let device = self.rendezvous(user_seed).ok_or(FleetError::NoEligibleDevice)?;
        let device_session = self.gateways[device].connect(user_seed)?;
        let session = self.next_session;
        self.next_session += 1;
        self.tenants.insert(
            session,
            TenantRecord {
                seed: user_seed.to_vec(),
                device,
                device_session,
                generation: 0,
                orphaned: false,
            },
        );
        self.log.record(format!("r={} connect session={session} device={device}", self.round));
        Ok(session)
    }

    /// Re-attests a tenant on its current home device (e.g. after a
    /// channel-tamper revocation), keeping the fleet session id.
    pub fn reconnect(&mut self, session: u64, user_seed: &[u8]) -> Result<u64, FleetError> {
        let record = self.tenants.get(&session).ok_or(FleetError::UnknownSession(session))?;
        if record.orphaned {
            return Err(FleetError::NoEligibleDevice);
        }
        let (device, device_session) = (record.device, record.device_session);
        let fresh = self.gateways[device].reconnect(device_session, user_seed)?;
        if let Some(record) = self.tenants.get_mut(&session) {
            record.device_session = fresh;
            record.seed = user_seed.to_vec();
        }
        self.log.record(format!("r={} reconnect session={session} device={device}", self.round));
        Ok(session)
    }

    /// Submits a bundle for the tenant's home device and returns the
    /// fleet ticket. On overload the retry hint is fleet-aware: the
    /// minimum [`Gateway::retry_after_hint`] over all eligible devices,
    /// so a caller backs off only as long as the least-loaded device
    /// needs, not as long as its own congested home does.
    pub fn submit(&mut self, session: u64, bundle: Bundle) -> Result<u64, FleetError> {
        let record = self.tenants.get(&session).ok_or(FleetError::UnknownSession(session))?;
        if record.orphaned {
            self.stats.rejected += 1;
            return Err(FleetError::NoEligibleDevice);
        }
        let (device, device_session) = (record.device, record.device_session);
        if self.health[device].is_failed() {
            self.stats.rejected += 1;
            return Err(FleetError::DeviceFailed { device });
        }
        if !self.device_eligible(device) {
            // Quarantined home: the bundle would sit un-dispatched, so
            // reject with the time left on the quarantine clock.
            let now = self.gateways[device].device().clock().now();
            self.stats.rejected += 1;
            return Err(FleetError::Gateway(GatewayError::Overloaded {
                retry_after: self.health[device].retry_after(now),
            }));
        }
        match self.gateways[device].submit(device_session, bundle) {
            Ok(device_ticket) => {
                let ticket = self.next_ticket;
                self.next_ticket += 1;
                self.tickets.insert((device, device_ticket), (ticket, session));
                self.stats.admitted += 1;
                Ok(ticket)
            }
            Err(GatewayError::Overloaded { retry_after }) => {
                // Clamped to 1ns: an idle sibling estimates a zero
                // drain, but a zero hint reads as "not a hint".
                let hint = self.fleet_retry_hint().unwrap_or(retry_after).max(1);
                self.stats.rejected += 1;
                Err(FleetError::Gateway(GatewayError::Overloaded { retry_after: hint }))
            }
            Err(other) => {
                self.stats.rejected += 1;
                Err(FleetError::Gateway(other))
            }
        }
    }

    /// Minimum backlog-drain estimate across eligible devices.
    fn fleet_retry_hint(&mut self) -> Option<Nanos> {
        let mut best = None;
        for index in 0..self.gateways.len() {
            if !self.device_eligible(index) {
                continue;
            }
            let hint = self.gateways[index].retry_after_hint();
            if best.is_none_or(|current| hint < current) {
                best = Some(hint);
            }
        }
        best
    }

    /// Runs one scheduling round on every live device, in device order,
    /// consulting the armed fault plan per device first. Returns the
    /// round's fleet completions (including failover sheds if a device
    /// crashed mid-round).
    pub fn run_round(&mut self) -> Vec<FleetCompletion> {
        self.round += 1;
        let mut out = Vec::new();
        for device in 0..self.gateways.len() {
            if self.health[device].is_failed() {
                continue;
            }
            let decision = self
                .faults
                .as_ref()
                .and_then(|plan| {
                    plan.decide_for(
                        FaultSite::Device,
                        &[FaultKind::DeviceCrash, FaultKind::DeviceHang],
                    )
                });
            match decision.map(|d| d.kind) {
                Some(FaultKind::DeviceCrash) => {
                    self.log.record(format!("r={} fault device={device} kind=crash", self.round));
                    out.extend(self.fail_device(device));
                    continue;
                }
                Some(FaultKind::DeviceHang) => {
                    // A wedged round: the watchdog sees nothing come
                    // back and strikes; device time still passes.
                    self.log.record(format!("r={} fault device={device} kind=hang", self.round));
                    self.strike(device, "hang");
                    self.gateways[device].device().clock().advance(self.config.idle_tick_ns);
                    continue;
                }
                _ => {}
            }
            // Apply any pending cooldown transition before deciding.
            self.note_health(device);
            let now = self.gateways[device].device().clock().now();
            let state = self.health[device].state(now);
            if state == HealthState::Quarantined {
                // Skipped round: burn idle time so the cooldown elapses.
                self.gateways[device].device().clock().advance(self.config.idle_tick_ns);
                continue;
            }
            let completions = self.gateways[device].run_round();
            let device_grade = completions.iter().any(|completion| {
                matches!(
                    completion.outcome,
                    Err(GatewayError::Service(ServiceError::AllCoresQuarantined))
                )
            });
            if device_grade {
                self.strike(device, "all-cores-quarantined");
            } else if matches!(state, HealthState::Suspect | HealthState::Probation) {
                self.health[device].healed();
                self.note_health(device);
            }
            for completion in completions {
                out.push(self.adopt_completion(device, completion));
            }
        }
        out
    }

    /// Drains the fleet: rounds until no surviving device has queued
    /// work. Terminates even through quarantines because skipped rounds
    /// advance the skipped device's clock (see
    /// [`FleetConfig::idle_tick_ns`]).
    pub fn run_until_idle(&mut self) -> Vec<FleetCompletion> {
        let mut out = Vec::new();
        while self.queued_total() > 0 {
            out.extend(self.run_round());
        }
        out
    }

    /// Translates a device completion into the fleet's ticket space and
    /// retires the ticket mapping (exactly-once).
    fn adopt_completion(&mut self, device: usize, completion: Completion) -> FleetCompletion {
        let (ticket, session) = self
            .tickets
            .remove(&(device, completion.ticket))
            .unwrap_or_else(|| {
                unreachable!("completion for unmapped device ticket {}", completion.ticket)
            });
        match completion.outcome {
            Ok(report) => {
                self.stats.completed_ok += 1;
                FleetCompletion { ticket, session, device, outcome: Ok(report) }
            }
            Err(err) => {
                self.stats.completed_err += 1;
                FleetCompletion { ticket, session, device, outcome: Err(FleetError::Gateway(err)) }
            }
        }
    }

    /// Latches `device` as failed and performs failover:
    ///
    /// 1. Tenants homed on the device re-attest on the survivor their
    ///    rendezvous weight elects (readable thanks to the fleet
    ///    ORAM-key escrow), or are orphaned if no device is eligible.
    /// 2. Queued-but-unstarted bundles are resubmitted on the tenant's
    ///    new home under their original fleet tickets.
    /// 3. In-flight paused bundles — whose execution state died with
    ///    the device — are shed with one typed
    ///    [`FleetError::DeviceFailed`] completion each.
    ///
    /// Public so a test rig or operator can kill a device directly; the
    /// seeded [`FaultKind::DeviceCrash`] path goes through here too.
    /// No-op (empty vec) if the device is already failed.
    pub fn fail_device(&mut self, device: usize) -> Vec<FleetCompletion> {
        if self.health[device].is_failed() {
            return Vec::new();
        }
        self.health[device].fail();
        self.stats.device_failures += 1;
        self.log.record(format!("r={} device-failed device={device}", self.round));
        self.note_health(device);

        let drained = self.gateways[device].drain_for_failover();

        // Migrate every tenant homed here, in fleet-session order so
        // survivor-side attestation order is deterministic.
        let mut sessions: Vec<u64> = self
            .tenants
            .iter()
            .filter(|(_, record)| record.device == device && !record.orphaned)
            .map(|(&session, _)| session)
            .collect();
        sessions.sort_unstable();
        for session in sessions {
            self.migrate(session, device);
        }

        // Resolve drained work: resubmit fresh bundles on the new home,
        // shed paused ones. Either way each fleet ticket stays on track
        // for exactly one completion.
        let mut out = Vec::new();
        for entry in drained {
            let (ticket, session) = self
                .tickets
                .remove(&(device, entry.ticket))
                .unwrap_or_else(|| {
                    unreachable!("drained device ticket {} has no fleet mapping", entry.ticket)
                });
            if entry.was_paused {
                // The BundlePause died with the device; there is no
                // checkpoint to replay. Typed shed, never silently
                // dropped and never double-executed.
                self.telemetry.count(CounterId::FleetShedOnFailure, 1);
                self.stats.shed_on_failure += 1;
                self.stats.completed_err += 1;
                self.log.record(format!(
                    "r={} shed-on-failure ticket={ticket} session={session}",
                    self.round
                ));
                out.push(FleetCompletion {
                    ticket,
                    session,
                    device,
                    outcome: Err(FleetError::DeviceFailed { device }),
                });
                continue;
            }
            let target = self.tenants.get(&session).and_then(|record| {
                (!record.orphaned).then_some((record.device, record.device_session))
            });
            match target {
                Some((new_device, device_session)) => {
                    match self.gateways[new_device].submit(device_session, entry.bundle) {
                        Ok(device_ticket) => {
                            self.tickets.insert((new_device, device_ticket), (ticket, session));
                            self.log.record(format!(
                                "r={} resubmit ticket={ticket} session={session} device={new_device}",
                                self.round
                            ));
                        }
                        Err(err) => {
                            // The survivor refused (e.g. overload): the
                            // refusal is this ticket's one completion.
                            self.stats.completed_err += 1;
                            out.push(FleetCompletion {
                                ticket,
                                session,
                                device: new_device,
                                outcome: Err(FleetError::Gateway(err)),
                            });
                        }
                    }
                }
                None => {
                    self.stats.completed_err += 1;
                    out.push(FleetCompletion {
                        ticket,
                        session,
                        device,
                        outcome: Err(FleetError::NoEligibleDevice),
                    });
                }
            }
        }
        out
    }

    /// Re-homes one tenant after its device failed: rendezvous over the
    /// survivors, re-attest there with the retained seed, bump the
    /// migration generation. Orphans the tenant if no device is
    /// eligible or the survivor refuses the attestation.
    fn migrate(&mut self, session: u64, from: usize) {
        let seed = match self.tenants.get(&session) {
            Some(record) => record.seed.clone(),
            None => return,
        };
        let Some(new_device) = self.rendezvous(&seed) else {
            if let Some(record) = self.tenants.get_mut(&session) {
                record.orphaned = true;
            }
            self.log.record(format!("r={} orphaned session={session}", self.round));
            return;
        };
        assert_eq!(
            self.gateways[new_device].device().oram_key(),
            self.fleet_key,
            "survivor missing the fleet ORAM-key escrow"
        );
        match self.gateways[new_device].connect(&seed) {
            Ok(device_session) => {
                if let Some(record) = self.tenants.get_mut(&session) {
                    record.device = new_device;
                    record.device_session = device_session;
                    record.generation += 1;
                }
                self.telemetry.count(CounterId::FleetMigrations, 1);
                self.stats.migrations += 1;
                self.log.record(format!(
                    "r={} migrate session={session} device={from}->{new_device}",
                    self.round
                ));
            }
            Err(err) => {
                if let Some(record) = self.tenants.get_mut(&session) {
                    record.orphaned = true;
                }
                self.log.record(format!(
                    "r={} orphaned session={session} attest-err={err}",
                    self.round
                ));
            }
        }
    }

    /// Syncs every surviving device against the same [`FeedSet`], in
    /// device order. Safe to share one feed set: the Byzantine quorum
    /// only strikes feeds whose head *lags* the best claim, so honest
    /// feeds re-serving the winning head to each device in turn are
    /// never penalised, and re-serving the same claim is not
    /// equivocation.
    pub fn sync_all(&mut self, feeds: &mut FeedSet) -> FleetSyncReport {
        let mut outcomes = Vec::new();
        let mut shed = Vec::new();
        for device in 0..self.gateways.len() {
            if self.health[device].is_failed() {
                continue;
            }
            match self.gateways[device].sync_set(feeds) {
                Ok(report) => {
                    for completion in report.shed {
                        shed.push(self.adopt_completion(device, completion));
                    }
                    outcomes.push((device, Ok(report.outcome)));
                }
                Err(err) => outcomes.push((device, Err(err))),
            }
            let head = self.gateways[device].device().head();
            self.log.record(format!(
                "r={} sync device={device} head={}",
                self.round,
                head.map_or_else(|| "none".to_string(), |h| format!("{h:?}"))
            ));
        }
        FleetSyncReport { outcomes, shed }
    }

    /// `(device index, adopted head)` for every surviving device.
    pub fn heads(&self) -> Vec<(usize, Option<B256>)> {
        self.gateways
            .iter()
            .enumerate()
            .zip(&self.health)
            .filter(|(_, health)| !health.is_failed())
            .map(|((device, gateway), _)| (device, gateway.device().head()))
            .collect()
    }

    /// The head all surviving devices agree on, or a typed
    /// [`FleetError::SplitHead`] carrying every device's view.
    pub fn converged_head(&self) -> Result<Option<B256>, FleetError> {
        let heads = self.heads();
        match heads.split_first() {
            None => Err(FleetError::NoEligibleDevice),
            Some(((_, first), rest)) => {
                if rest.iter().all(|(_, head)| head == first) {
                    Ok(*first)
                } else {
                    Err(FleetError::SplitHead { heads })
                }
            }
        }
    }
}
