//! End-to-end EVM semantics tests: every instruction family exercised
//! through real bytecode, plus gas accounting against known constants.

use tape_evm::asm::Asm;
use tape_evm::opcode::op;
use tape_evm::{create2_address, create_address, Env, Evm, Transaction, TxError, VmError};
use tape_primitives::{Address, B256, U256};
use tape_state::{Account, InMemoryState, StateReader};

const FUND: u64 = u64::MAX;

fn sender() -> Address {
    Address::from_low_u64(0xAA)
}

fn contract_addr() -> Address {
    Address::from_low_u64(0xC0DE)
}

/// Deploys `code` at a fixed address with a funded sender.
fn backend_with(code: Vec<u8>) -> InMemoryState {
    let mut backend = InMemoryState::new();
    backend.put_account(sender(), Account::with_balance(U256::from(FUND)));
    backend.put_account(contract_addr(), Account::with_code(code));
    backend
}

/// Runs `code` as a call from the funded sender and returns the result.
fn run(code: Vec<u8>) -> tape_evm::TxResult {
    run_with_input(code, vec![])
}

fn run_with_input(code: Vec<u8>, input: Vec<u8>) -> tape_evm::TxResult {
    let backend = backend_with(code);
    let mut evm = Evm::new(Env::default(), &backend);
    evm.transact(&Transaction::call(sender(), contract_addr(), input))
        .expect("tx valid")
}

/// Runs code that returns one word; asserts success and returns the word.
fn run_word(code: Vec<u8>) -> U256 {
    let result = run(code);
    assert!(result.success, "execution failed: {:?}", result.halt);
    assert_eq!(result.output.len(), 32, "expected a single word");
    U256::from_be_slice(&result.output)
}

fn u(v: u64) -> U256 {
    U256::from(v)
}

// --- arithmetic through bytecode -------------------------------------------

#[test]
fn arithmetic_family() {
    // Stack order reminder: ops take (top, next), e.g. SUB = top - next.
    let cases: Vec<(Vec<u8>, u64)> = vec![
        (Asm::new().push(3u64).push(2u64).op(op::ADD).ret_top().build(), 5),
        (Asm::new().push(3u64).push(10u64).op(op::SUB).ret_top().build(), 7),
        (Asm::new().push(6u64).push(7u64).op(op::MUL).ret_top().build(), 42),
        (Asm::new().push(5u64).push(17u64).op(op::DIV).ret_top().build(), 3),
        (Asm::new().push(5u64).push(17u64).op(op::MOD).ret_top().build(), 2),
        (Asm::new().push(0u64).push(17u64).op(op::DIV).ret_top().build(), 0),
        (Asm::new().push(8u64).push(5u64).push(9u64).op(op::ADDMOD).ret_top().build(), 6),
        (Asm::new().push(8u64).push(5u64).push(9u64).op(op::MULMOD).ret_top().build(), 5),
        (Asm::new().push(10u64).push(2u64).op(op::EXP).ret_top().build(), 1024),
        (Asm::new().push(3u64).push(5u64).op(op::LT).ret_top().build(), 0),
        (Asm::new().push(5u64).push(3u64).op(op::LT).ret_top().build(), 1),
        (Asm::new().push(3u64).push(5u64).op(op::GT).ret_top().build(), 1),
        (Asm::new().push(5u64).push(5u64).op(op::EQ).ret_top().build(), 1),
        (Asm::new().push(0u64).op(op::ISZERO).ret_top().build(), 1),
        (Asm::new().push(0b1100u64).push(0b1010u64).op(op::AND).ret_top().build(), 0b1000),
        (Asm::new().push(0b1100u64).push(0b1010u64).op(op::OR).ret_top().build(), 0b1110),
        (Asm::new().push(0b1100u64).push(0b1010u64).op(op::XOR).ret_top().build(), 0b0110),
        (Asm::new().push(1u64).push(4u64).op(op::SHL).ret_top().build(), 16),
        (Asm::new().push(16u64).push(4u64).op(op::SHR).ret_top().build(), 1),
    ];
    for (i, (code, expected)) in cases.into_iter().enumerate() {
        assert_eq!(run_word(code), u(expected), "case {i}");
    }
}

#[test]
fn signed_arithmetic_through_bytecode() {
    // -10 / 3 == -3 (SDIV truncates toward zero)
    let neg10 = U256::from(10u64).wrapping_neg();
    let neg3 = U256::from(3u64).wrapping_neg();
    let code = Asm::new().push(3u64).push(neg10).op(op::SDIV).ret_top().build();
    assert_eq!(run_word(code), neg3);

    // SLT: -1 < 1
    let code = Asm::new()
        .push(1u64)
        .push(U256::MAX)
        .op(op::SLT)
        .ret_top()
        .build();
    assert_eq!(run_word(code), U256::ONE);

    // SAR of -16 by 2 is -4.
    let neg16 = U256::from(16u64).wrapping_neg();
    let code = Asm::new().push(neg16).push(2u64).op(op::SAR).ret_top().build();
    assert_eq!(run_word(code), U256::from(4u64).wrapping_neg());

    // SIGNEXTEND byte 0 of 0xFF -> -1.
    let code = Asm::new().push(0xFFu64).push(0u64).op(op::SIGNEXTEND).ret_top().build();
    assert_eq!(run_word(code), U256::MAX);
}

#[test]
fn not_and_byte() {
    let code = Asm::new().push(0u64).op(op::NOT).ret_top().build();
    assert_eq!(run_word(code), U256::MAX);
    // BYTE 31 of 0x1234 is 0x34.
    let code = Asm::new().push(0x1234u64).push(31u64).op(op::BYTE).ret_top().build();
    assert_eq!(run_word(code), u(0x34));
}

// --- keccak, memory ----------------------------------------------------------

#[test]
fn keccak256_of_memory() {
    // keccak("") with zero-length memory range.
    let code = Asm::new().push(0u64).push(0u64).op(op::KECCAK256).ret_top().build();
    assert_eq!(
        B256::from(run_word(code)),
        tape_crypto::keccak256([])
    );
    // keccak of one stored word.
    let code = Asm::new()
        .push(0xdeadu64)
        .push(0u64)
        .op(op::MSTORE)
        .push(32u64)
        .push(0u64)
        .op(op::KECCAK256)
        .ret_top()
        .build();
    assert_eq!(
        B256::from(run_word(code)),
        tape_crypto::keccak256(U256::from(0xdeadu64).to_be_bytes())
    );
}

#[test]
fn memory_ops_and_msize() {
    // MSTORE8 then MLOAD.
    let code = Asm::new()
        .push(0xABu64)
        .push(31u64)
        .op(op::MSTORE8)
        .push(0u64)
        .op(op::MLOAD)
        .ret_top()
        .build();
    assert_eq!(run_word(code), u(0xAB));

    // MSIZE after touching offset 100.
    let code = Asm::new()
        .push(100u64)
        .op(op::MLOAD)
        .op(op::POP)
        .op(op::MSIZE)
        .ret_top()
        .build();
    assert_eq!(run_word(code), u(160));
}

#[test]
fn mcopy_moves_data() {
    let code = Asm::new()
        .push(0x11u64)
        .push(0u64)
        .op(op::MSTORE)
        .push(32u64) // len
        .push(0u64) // src
        .push(64u64) // dst
        .op(op::MCOPY)
        .push(64u64)
        .op(op::MLOAD)
        .ret_top()
        .build();
    assert_eq!(run_word(code), u(0x11));
}

#[test]
fn calldata_ops() {
    // Return CALLDATALOAD(0).
    let code = Asm::new().push(0u64).op(op::CALLDATALOAD).ret_top().build();
    let mut input = vec![0u8; 32];
    input[31] = 0x42;
    let result = run_with_input(code, input);
    assert!(result.success);
    assert_eq!(U256::from_be_slice(&result.output), u(0x42));

    // CALLDATASIZE.
    let code = Asm::new().op(op::CALLDATASIZE).ret_top().build();
    let result = run_with_input(code, vec![1, 2, 3]);
    assert_eq!(U256::from_be_slice(&result.output), u(3));

    // CALLDATACOPY with padding past the end.
    let code = Asm::new()
        .push(32u64) // len
        .push(0u64) // src
        .push(0u64) // dst
        .op(op::CALLDATACOPY)
        .push(0u64)
        .op(op::MLOAD)
        .ret_top()
        .build();
    let result = run_with_input(code, vec![0xFF]);
    // 0xFF at the most significant byte, rest zero-padded.
    assert_eq!(result.output[0], 0xFF);
    assert!(result.output[1..].iter().all(|&b| b == 0));
}

// --- environment -------------------------------------------------------------

#[test]
fn environment_opcodes() {
    let env = Env::default();
    let cases: Vec<(u8, U256)> = vec![
        (op::ADDRESS, contract_addr().into_word()),
        (op::ORIGIN, sender().into_word()),
        (op::CALLER, sender().into_word()),
        (op::CALLVALUE, U256::ZERO),
        (op::NUMBER, u(env.block_number)),
        (op::TIMESTAMP, u(env.timestamp)),
        (op::CHAINID, u(env.chain_id)),
        (op::GASLIMIT, u(env.gas_limit)),
        (op::COINBASE, env.coinbase.into_word()),
        (op::BASEFEE, env.base_fee),
        (op::CODESIZE, u(38)), // the ret_top suffix is 7 bytes + 1 op + 30? computed below
    ];
    for (opcode, expected) in cases {
        let code = Asm::new().op(opcode).ret_top().build();
        if opcode == op::CODESIZE {
            assert_eq!(run_word(code.clone()), u(code.len() as u64));
        } else {
            assert_eq!(run_word(code), expected, "opcode 0x{opcode:02x}");
        }
    }
}

#[test]
fn balance_and_selfbalance() {
    let code = Asm::new()
        .push_address(sender())
        .op(op::BALANCE)
        .ret_top()
        .build();
    let backend = backend_with(code);
    let mut evm = Evm::new(Env::default(), &backend);
    let result = evm
        .transact(&Transaction::call(sender(), contract_addr(), vec![]))
        .unwrap();
    // Sender balance at read time = FUND - gas purchase.
    let expected = U256::from(FUND)
        .wrapping_sub(U256::from(1_000_000u64).wrapping_mul(U256::from(10_000_000_000u64)));
    assert_eq!(U256::from_be_slice(&result.output), expected);

    let code = Asm::new().op(op::SELFBALANCE).ret_top().build();
    assert_eq!(run_word(code), U256::ZERO);
}

// --- storage -------------------------------------------------------------------

#[test]
fn sstore_sload_roundtrip() {
    let code = Asm::new()
        .push(0x99u64)
        .push(7u64)
        .op(op::SSTORE)
        .push(7u64)
        .op(op::SLOAD)
        .ret_top()
        .build();
    assert_eq!(run_word(code), u(0x99));
}

#[test]
fn sstore_gas_cold_set() {
    // SSTORE of a fresh slot: 20000 (set) + 2100 (cold) on top of pushes.
    let code = Asm::new()
        .push(1u64)
        .push(0u64)
        .op(op::SSTORE)
        .stop()
        .build();
    let result = run(code);
    assert!(result.success);
    // 21000 intrinsic + PUSH1(3) + PUSH0(2) + 22100.
    assert_eq!(result.gas_used, 21_000 + 3 + 2 + 22_100);
}

#[test]
fn sload_warm_vs_cold_gas() {
    // Two loads of the same slot: first cold (2100), second warm (100).
    let code = Asm::new()
        .push(5u64)
        .op(op::SLOAD)
        .op(op::POP)
        .push(5u64)
        .op(op::SLOAD)
        .op(op::POP)
        .stop()
        .build();
    let result = run(code);
    assert!(result.success);
    assert_eq!(result.gas_used, 21_000 + 2 * (3 + 2) + 2_200 + 100);
}

#[test]
fn sstore_refund_on_clear() {
    // Pre-set slot 1 = 5; clearing it refunds 4800 (capped at gas_used/5).
    let mut backend = backend_with(
        Asm::new().push(0u64).push(1u64).op(op::SSTORE).stop().build(),
    );
    backend.set_storage(contract_addr(), U256::ONE, u(5));
    let mut evm = Evm::new(Env::default(), &backend);
    let result = evm
        .transact(&Transaction::call(sender(), contract_addr(), vec![]))
        .unwrap();
    assert!(result.success);
    // Pre-refund: 21000 + 2 + 3 + (2100 cold + 2900 reset) = 26005.
    // Refund min(4800, 26005/5 = 5201) = 4800.
    assert_eq!(result.gas_used, 26_005 - 4_800);
}

#[test]
fn transient_storage_isolated_per_tx() {
    let code = Asm::new()
        .push(0xAAu64)
        .push(1u64)
        .op(op::TSTORE)
        .push(1u64)
        .op(op::TLOAD)
        .ret_top()
        .build();
    assert_eq!(run_word(code.clone()), u(0xAA));

    // A second transaction sees cleared transient storage.
    let read_only = Asm::new().push(1u64).op(op::TLOAD).ret_top().build();
    let mut backend = backend_with(code);
    backend.put_account(Address::from_low_u64(0xC1), Account::with_code(read_only));
    let mut evm = Evm::new(Env::default(), &backend);
    evm.transact(&Transaction::call(sender(), contract_addr(), vec![])).unwrap();
    let second = evm
        .transact(&Transaction::call(sender(), Address::from_low_u64(0xC1), vec![]))
        .unwrap();
    assert_eq!(U256::from_be_slice(&second.output), U256::ZERO);
}

// --- control flow ---------------------------------------------------------------

#[test]
fn jump_and_jumpi() {
    // Unconditional jump over a revert.
    let code = Asm::new()
        .jump("ok")
        .push(0u64)
        .push(0u64)
        .op(op::REVERT)
        .label("ok")
        .push(1u64)
        .ret_top()
        .build();
    assert_eq!(run_word(code), U256::ONE);

    // Conditional: loop summing 1..=5.
    let code = Asm::new()
        .push(0u64) // sum
        .push(5u64) // i
        .label("loop")
        // stack: [sum, i]
        .op(op::DUP1)
        .jumpi("body")
        .jump("done")
        .label("body")
        // sum += i; i -= 1
        .op(op::DUP1) // [sum, i, i]
        .op(op::SWAP2) // [i, i, sum]
        .op(op::ADD) // [i, sum']
        .op(op::SWAP1) // [sum', i]
        .push(1u64)
        .op(op::SWAP1)
        .op(op::SUB) // [sum', i-1]
        .jump("loop")
        .label("done")
        .op(op::POP)
        .ret_top()
        .build();
    assert_eq!(run_word(code), u(15));
}

#[test]
fn invalid_jump_halts() {
    let code = Asm::new().push(1u64).op(op::JUMP).build();
    let result = run(code);
    assert!(!result.success);
    assert_eq!(result.halt, Some(VmError::InvalidJump));
    // Halt consumes all gas.
    assert_eq!(result.gas_used, 1_000_000);
}

#[test]
fn jump_into_push_data_rejected() {
    // PUSH2 embeds a 0x5b byte; jumping at it must fail.
    let code = Asm::new()
        .push(3u64) // target = offset of the 0x5b inside PUSH2 data
        .op(op::JUMP)
        .op(op::PUSH2)
        .ops(&[0x5b, 0x5b])
        .build();
    let result = run(code);
    assert_eq!(result.halt, Some(VmError::InvalidJump));
}

#[test]
fn pc_and_gas_opcodes() {
    let code = Asm::new().op(op::PC).ret_top().build();
    assert_eq!(run_word(code), U256::ZERO);
    // GAS pushes remaining gas; just check it's nonzero and below limit.
    let code = Asm::new().op(op::GAS).ret_top().build();
    let v = run_word(code);
    assert!(v > U256::ZERO && v < u(1_000_000));
}

#[test]
fn stack_errors() {
    let code = Asm::new().op(op::ADD).build();
    assert_eq!(run(code).halt, Some(VmError::StackUnderflow));

    // Push 1025 values.
    let mut asm = Asm::new();
    for _ in 0..1025 {
        asm = asm.push(1u64);
    }
    assert_eq!(run(asm.build()).halt, Some(VmError::StackOverflow));
}

#[test]
fn invalid_opcode_and_running_off_code() {
    let code = vec![op::INVALID];
    assert_eq!(run(code).halt, Some(VmError::InvalidOpcode(op::INVALID)));
    // Undefined opcode.
    let code = vec![0x0c];
    assert_eq!(run(code).halt, Some(VmError::InvalidOpcode(0x0c)));
    // Running off the end acts as STOP.
    let code = Asm::new().push(1u64).build();
    let result = run(code);
    assert!(result.success);
}

#[test]
fn out_of_gas() {
    // An infinite loop runs out of gas.
    let code = Asm::new().label("top").jump("top").build();
    let result = run(code);
    assert!(!result.success);
    assert_eq!(result.halt, Some(VmError::OutOfGas));
    assert_eq!(result.gas_used, 1_000_000);
}

// --- logs ------------------------------------------------------------------------

#[test]
fn logs_with_topics() {
    let code = Asm::new()
        .push(0xCAFEu64)
        .push(0u64)
        .op(op::MSTORE)
        .push(0x11u64) // topic2
        .push(0x22u64) // topic1
        .push(32u64) // len
        .push(0u64) // offset
        .op(op::LOG2)
        .stop()
        .build();
    let result = run(code);
    assert!(result.success);
    assert_eq!(result.logs.len(), 1);
    let log = &result.logs[0];
    assert_eq!(log.address, contract_addr());
    assert_eq!(log.topics.len(), 2);
    assert_eq!(log.topics[0], B256::from(u(0x22)));
    assert_eq!(log.topics[1], B256::from(u(0x11)));
    assert_eq!(U256::from_be_slice(&log.data), u(0xCAFE));
}

#[test]
fn reverted_tx_discards_logs() {
    let code = Asm::new()
        .push(0u64)
        .push(0u64)
        .op(op::LOG0)
        .push(0u64)
        .push(0u64)
        .op(op::REVERT)
        .build();
    let result = run(code);
    assert!(!result.success);
    assert!(result.logs.is_empty());
}

// --- calls ------------------------------------------------------------------------

/// Deploys `callee_code` at 0xCA11 and `caller_code` at the main address.
fn backend_with_two(caller_code: Vec<u8>, callee_code: Vec<u8>) -> InMemoryState {
    let mut backend = backend_with(caller_code);
    backend.put_account(Address::from_low_u64(0xCA11), Account::with_code(callee_code));
    backend
}

fn callee() -> Address {
    Address::from_low_u64(0xCA11)
}

/// CALL with no value and full output copy; pushes success flag.
fn call_code(target: Address, out_len: u64) -> Asm {
    Asm::new()
        .push(out_len) // out len
        .push(0u64) // out offset
        .push(0u64) // in len
        .push(0u64) // in offset
        .push(0u64) // value
        .push_address(target)
        .push(100_000u64) // gas
        .op(op::CALL)
}

#[test]
fn call_returns_data_and_success() {
    let callee_code = Asm::new().push(0x77u64).ret_top().build();
    let caller_code = call_code(callee(), 32)
        .ret_top() // returns the success flag? No: returns memory[0..32] which holds callee output...
        .build();
    // Rebuild properly: return memory word 0 (the copied output), dropping
    // the success flag.
    let caller_code2 = call_code(callee(), 32)
        .op(op::POP)
        .push(0u64)
        .op(op::MLOAD)
        .ret_top()
        .build();
    let _ = caller_code;
    let backend = backend_with_two(caller_code2, callee_code);
    let mut evm = Evm::new(Env::default(), &backend);
    let result = evm
        .transact(&Transaction::call(sender(), contract_addr(), vec![]))
        .unwrap();
    assert!(result.success);
    assert_eq!(U256::from_be_slice(&result.output), u(0x77));
}

#[test]
fn call_to_reverting_callee() {
    // Callee stores then reverts with a payload; caller checks flag == 0
    // and that its own storage write survives.
    let callee_code = Asm::new()
        .push(1u64)
        .push(1u64)
        .op(op::SSTORE)
        .push(0xEEu64)
        .push(0u64)
        .op(op::MSTORE)
        .push(32u64)
        .push(0u64)
        .op(op::REVERT)
        .build();
    let caller_code = Asm::new()
        .push(0xABu64)
        .push(9u64)
        .op(op::SSTORE) // caller's own write
        .ops(&call_code(callee(), 0).build())
        .ret_top() // return the success flag
        .build();
    let backend = backend_with_two(caller_code, callee_code);
    let mut evm = Evm::new(Env::default(), &backend);
    let result = evm
        .transact(&Transaction::call(sender(), contract_addr(), vec![]))
        .unwrap();
    assert!(result.success);
    assert_eq!(U256::from_be_slice(&result.output), U256::ZERO); // callee failed
    // Caller's storage write survived; callee's was reverted.
    let changes = evm.state().changes();
    assert_eq!(changes.storage.len(), 1);
    assert_eq!(changes.storage[0], (contract_addr(), u(9), u(0xAB)));
}

#[test]
fn returndatasize_and_copy() {
    let callee_code = Asm::new().push(0x1234u64).ret_top().build();
    let caller_code = call_code(callee(), 0)
        .op(op::POP)
        .op(op::RETURNDATASIZE) // 32
        .push(0u64)
        .op(op::MSTORE)
        .push(32u64)
        .push(0u64)
        .op(op::RETURN)
        .build();
    let backend = backend_with_two(caller_code, callee_code);
    let mut evm = Evm::new(Env::default(), &backend);
    let result = evm
        .transact(&Transaction::call(sender(), contract_addr(), vec![]))
        .unwrap();
    assert_eq!(U256::from_be_slice(&result.output), u(32));
}

#[test]
fn returndatacopy_out_of_bounds_halts() {
    let callee_code = Asm::new().stop().build(); // empty return data
    let caller_code = call_code(callee(), 0)
        .op(op::POP)
        .push(1u64) // len
        .push(0u64) // src
        .push(0u64) // dst
        .op(op::RETURNDATACOPY)
        .stop()
        .build();
    let backend = backend_with_two(caller_code, callee_code);
    let mut evm = Evm::new(Env::default(), &backend);
    let result = evm
        .transact(&Transaction::call(sender(), contract_addr(), vec![]))
        .unwrap();
    assert!(!result.success);
    assert_eq!(result.halt, Some(VmError::ReturnDataOutOfBounds));
}

#[test]
fn staticcall_blocks_writes() {
    let callee_code = Asm::new().push(1u64).push(1u64).op(op::SSTORE).stop().build();
    let caller_code = Asm::new()
        .push(0u64)
        .push(0u64)
        .push(0u64)
        .push(0u64)
        .push_address(callee())
        .push(100_000u64)
        .op(op::STATICCALL)
        .ret_top()
        .build();
    let backend = backend_with_two(caller_code, callee_code);
    let mut evm = Evm::new(Env::default(), &backend);
    let result = evm
        .transact(&Transaction::call(sender(), contract_addr(), vec![]))
        .unwrap();
    assert!(result.success);
    // Inner static call failed.
    assert_eq!(U256::from_be_slice(&result.output), U256::ZERO);
    assert!(evm.state().changes().storage.is_empty());
}

#[test]
fn delegatecall_uses_caller_storage() {
    // Callee writes 0x55 to slot 3; under DELEGATECALL the write lands in
    // the *caller's* storage.
    let callee_code = Asm::new().push(0x55u64).push(3u64).op(op::SSTORE).stop().build();
    let caller_code = Asm::new()
        .push(0u64)
        .push(0u64)
        .push(0u64)
        .push(0u64)
        .push_address(callee())
        .push(100_000u64)
        .op(op::DELEGATECALL)
        .ret_top()
        .build();
    let backend = backend_with_two(caller_code, callee_code);
    let mut evm = Evm::new(Env::default(), &backend);
    let result = evm
        .transact(&Transaction::call(sender(), contract_addr(), vec![]))
        .unwrap();
    assert!(result.success);
    assert_eq!(U256::from_be_slice(&result.output), U256::ONE);
    let changes = evm.state().changes();
    assert_eq!(changes.storage, vec![(contract_addr(), u(3), u(0x55))]);
}

#[test]
fn call_transfers_value() {
    let caller_code = Asm::new()
        .push(0u64)
        .push(0u64)
        .push(0u64)
        .push(0u64)
        .push(500u64) // value
        .push_address(Address::from_low_u64(0xBEEF))
        .push(100_000u64)
        .op(op::CALL)
        .ret_top()
        .build();
    let mut backend = backend_with(caller_code);
    backend.account_mut(contract_addr()).balance = u(1_000);
    let mut evm = Evm::new(Env::default(), &backend);
    let result = evm
        .transact(&Transaction::call(sender(), contract_addr(), vec![]))
        .unwrap();
    assert!(result.success);
    assert_eq!(U256::from_be_slice(&result.output), U256::ONE);
    assert_eq!(evm.state_mut().balance(&Address::from_low_u64(0xBEEF)), u(500));
    assert_eq!(evm.state_mut().balance(&contract_addr()), u(500));
}

#[test]
fn call_insufficient_balance_pushes_zero() {
    let caller_code = Asm::new()
        .push(0u64)
        .push(0u64)
        .push(0u64)
        .push(0u64)
        .push(500u64) // value the contract does not have
        .push_address(Address::from_low_u64(0xBEEF))
        .push(100_000u64)
        .op(op::CALL)
        .ret_top()
        .build();
    let backend = backend_with(caller_code);
    let mut evm = Evm::new(Env::default(), &backend);
    let result = evm
        .transact(&Transaction::call(sender(), contract_addr(), vec![]))
        .unwrap();
    assert!(result.success);
    assert_eq!(U256::from_be_slice(&result.output), U256::ZERO);
}

#[test]
fn call_depth_limit() {
    // A contract that calls itself forever: depth 1024 stops the
    // recursion, everything succeeds (each frame sees a failed inner call).
    let self_call = Asm::new()
        .push(0u64)
        .push(0u64)
        .push(0u64)
        .push(0u64)
        .push(0u64)
        .push_address(contract_addr())
        .op(op::GAS) // forward everything
        .op(op::CALL)
        .stop()
        .build();
    let backend = backend_with(self_call);
    let mut evm = Evm::new(Env::default(), &backend);
    let tx = Transaction {
        gas_limit: 10_000_000,
        ..Transaction::call(sender(), contract_addr(), vec![])
    };
    let result = evm.transact(&tx).unwrap();
    // With 63/64ths forwarding the gas dies out long before depth 1024,
    // but either way the top level succeeds.
    assert!(result.success);
}

// --- create -----------------------------------------------------------------------

#[test]
fn create_deploys_runtime() {
    let runtime = Asm::new().push(0x99u64).ret_top().build();
    let initcode = Asm::deploy_wrapper(&runtime);
    let backend = {
        let mut b = InMemoryState::new();
        b.put_account(sender(), Account::with_balance(U256::from(FUND)));
        b
    };
    let mut evm = Evm::new(Env::default(), &backend);
    let result = evm.transact(&Transaction::create(sender(), initcode)).unwrap();
    assert!(result.success, "create failed: {:?}", result.halt);
    let created = result.created.expect("created address");
    assert_eq!(created, create_address(&sender(), 0));
    assert_eq!(evm.state_mut().code(&created).as_slice(), &runtime[..]);

    // Calling the deployed contract works.
    let call = evm.transact(&Transaction::call(sender(), created, vec![])).unwrap();
    assert!(call.success);
    assert_eq!(U256::from_be_slice(&call.output), u(0x99));
}

#[test]
fn create_from_contract_and_create2() {
    // A factory that CREATE2s a trivial contract (runtime = STOP).
    let runtime = vec![op::STOP];
    let initcode = Asm::deploy_wrapper(&runtime);
    // Store initcode in memory via CODECOPY of the factory's own tail.
    // Simpler: embed initcode as push bytes through MSTORE8s.
    let mut asm = Asm::new();
    for (i, &b) in initcode.iter().enumerate() {
        asm = asm.push(b as u64).push(i as u64).op(op::MSTORE8);
    }
    let factory_code = asm
        .push(0x5A17u64) // salt
        .push(initcode.len() as u64)
        .push(0u64)
        .push(0u64) // value
        .op(op::CREATE2)
        .ret_top()
        .build();
    let backend = backend_with(factory_code);
    let mut evm = Evm::new(Env::default(), &backend);
    let result = evm
        .transact(&Transaction::call(sender(), contract_addr(), vec![]))
        .unwrap();
    assert!(result.success);
    let reported = Address::from_word(U256::from_be_slice(&result.output));
    let expected = create2_address(&contract_addr(), &u(0x5A17), &initcode);
    assert_eq!(reported, expected);
    assert_eq!(evm.state_mut().code(&expected).as_slice(), &runtime[..]);
}

#[test]
fn create_reverting_initcode_pushes_zero() {
    let initcode = Asm::new().push(0u64).push(0u64).op(op::REVERT).build();
    let mut asm = Asm::new();
    for (i, &b) in initcode.iter().enumerate() {
        asm = asm.push(b as u64).push(i as u64).op(op::MSTORE8);
    }
    let factory = asm
        .push(initcode.len() as u64)
        .push(0u64)
        .push(0u64)
        .op(op::CREATE)
        .ret_top()
        .build();
    let backend = backend_with(factory);
    let mut evm = Evm::new(Env::default(), &backend);
    let result = evm
        .transact(&Transaction::call(sender(), contract_addr(), vec![]))
        .unwrap();
    assert!(result.success);
    assert_eq!(U256::from_be_slice(&result.output), U256::ZERO);
}

#[test]
fn deployed_code_starting_with_ef_rejected() {
    let bad_runtime = vec![0xEF, 0x00];
    let initcode = Asm::deploy_wrapper(&bad_runtime);
    let backend = {
        let mut b = InMemoryState::new();
        b.put_account(sender(), Account::with_balance(U256::from(FUND)));
        b
    };
    let mut evm = Evm::new(Env::default(), &backend);
    let result = evm.transact(&Transaction::create(sender(), initcode)).unwrap();
    assert!(!result.success);
    assert_eq!(result.halt, Some(VmError::InvalidDeployedCode));
}

// --- selfdestruct ------------------------------------------------------------------

#[test]
fn selfdestruct_sends_balance() {
    let code = Asm::new()
        .push_address(Address::from_low_u64(0xDEAD))
        .op(op::SELFDESTRUCT)
        .build();
    let mut backend = backend_with(code);
    backend.account_mut(contract_addr()).balance = u(777);
    let mut evm = Evm::new(Env::default(), &backend);
    let result = evm
        .transact(&Transaction::call(sender(), contract_addr(), vec![]))
        .unwrap();
    assert!(result.success);
    assert_eq!(evm.state_mut().balance(&Address::from_low_u64(0xDEAD)), u(777));
    assert!(evm.state().changes().selfdestructs.contains(&contract_addr()));
}

// --- transaction-level validation ---------------------------------------------------

#[test]
fn nonce_checked_when_present() {
    let backend = backend_with(vec![op::STOP]);
    let mut evm = Evm::new(Env::default(), &backend);
    let mut tx = Transaction::call(sender(), contract_addr(), vec![]);
    tx.nonce = Some(5);
    assert_eq!(
        evm.transact(&tx),
        Err(TxError::NonceMismatch { expected: 5, actual: 0 })
    );
    tx.nonce = Some(0);
    assert!(evm.transact(&tx).unwrap().success);
    // Nonce advanced; replay fails.
    tx.nonce = Some(0);
    assert!(matches!(evm.transact(&tx), Err(TxError::NonceMismatch { .. })));
}

#[test]
fn insufficient_funds_rejected() {
    let mut backend = InMemoryState::new();
    backend.put_account(sender(), Account::with_balance(u(1_000)));
    let mut evm = Evm::new(Env::default(), &backend);
    let tx = Transaction::transfer(sender(), Address::from_low_u64(0xB0B), U256::ONE);
    assert_eq!(evm.transact(&tx), Err(TxError::InsufficientFunds));
}

#[test]
fn intrinsic_gas_enforced() {
    let backend = backend_with(vec![op::STOP]);
    let mut evm = Evm::new(Env::default(), &backend);
    let mut tx = Transaction::call(sender(), contract_addr(), vec![1; 100]);
    tx.gas_limit = 21_001;
    assert!(matches!(
        evm.transact(&tx),
        Err(TxError::IntrinsicGasTooLow { .. })
    ));
}

#[test]
fn plain_transfer_uses_exactly_21000() {
    let mut backend = InMemoryState::new();
    backend.put_account(sender(), Account::with_balance(U256::from(FUND)));
    let mut evm = Evm::new(Env::default(), &backend);
    let result = evm
        .transact(&Transaction::transfer(sender(), Address::from_low_u64(0xB0B), u(123)))
        .unwrap();
    assert!(result.success);
    assert_eq!(result.gas_used, 21_000);
    assert_eq!(evm.state_mut().balance(&Address::from_low_u64(0xB0B)), u(123));
}

#[test]
fn access_list_prewarms() {
    // With slot 5 in the access list, the first SLOAD is warm.
    let code = Asm::new().push(5u64).op(op::SLOAD).op(op::POP).stop().build();
    let backend = backend_with(code);
    let mut evm = Evm::new(Env::default(), &backend);
    let mut tx = Transaction::call(sender(), contract_addr(), vec![]);
    tx.access_list = vec![(contract_addr(), vec![u(5)])];
    let result = evm.transact(&tx).unwrap();
    // intrinsic 21000 + 2400 + 1900, then PUSH(3)+SLOAD(100 warm)+POP(2).
    assert_eq!(result.gas_used, 21_000 + 2_400 + 1_900 + 3 + 100 + 2);
}

#[test]
fn precompiles_callable_from_bytecode() {
    // Call identity(0x4) copying 4 bytes through.
    let code = Asm::new()
        .push(0xDEADBEEFu64)
        .push(0u64)
        .op(op::MSTORE)
        .push(32u64) // out len
        .push(32u64) // out offset
        .push(32u64) // in len
        .push(0u64) // in offset
        .push(0u64) // value
        .push_address(Address::from_low_u64(4))
        .push(10_000u64)
        .op(op::CALL)
        .op(op::POP)
        .push(32u64)
        .op(op::MLOAD)
        .ret_top()
        .build();
    assert_eq!(run_word(code), u(0xDEADBEEF));
}

#[test]
fn extcode_family() {
    let callee_code = vec![op::STOP, op::STOP, op::STOP];
    let caller = Asm::new()
        .push_address(callee())
        .op(op::EXTCODESIZE)
        .ret_top()
        .build();
    let backend = backend_with_two(caller, callee_code.clone());
    let mut evm = Evm::new(Env::default(), &backend);
    let result = evm
        .transact(&Transaction::call(sender(), contract_addr(), vec![]))
        .unwrap();
    assert_eq!(U256::from_be_slice(&result.output), u(3));

    // EXTCODEHASH of the callee equals keccak(code).
    let caller = Asm::new()
        .push_address(callee())
        .op(op::EXTCODEHASH)
        .ret_top()
        .build();
    let backend = backend_with_two(caller, callee_code.clone());
    let mut evm = Evm::new(Env::default(), &backend);
    let result = evm
        .transact(&Transaction::call(sender(), contract_addr(), vec![]))
        .unwrap();
    assert_eq!(
        B256::from(U256::from_be_slice(&result.output)),
        tape_crypto::keccak256(&callee_code)
    );
}

#[test]
fn gas_used_identical_across_runs() {
    // Determinism check: the same transaction costs the same gas twice.
    let code = Asm::new()
        .push(3u64)
        .push(4u64)
        .op(op::MUL)
        .push(2u64)
        .op(op::SSTORE)
        .stop()
        .build();
    let backend = backend_with(code);
    let run_once = || {
        let mut evm = Evm::new(Env::default(), &backend);
        evm.transact(&Transaction::call(sender(), contract_addr(), vec![]))
            .unwrap()
            .gas_used
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn changes_survive_across_bundle_transactions() {
    // Two txs in one Evm instance (same overlay): the second sees the
    // first's storage write — bundle semantics. The contract returns the
    // old value of slot 1, then writes 0x42 to it.
    let code = Asm::new()
        .push(1u64)
        .op(op::SLOAD) // [old]
        .push(0x42u64)
        .push(1u64)
        .op(op::SSTORE)
        .ret_top() // return old
        .build();
    let backend = backend_with(code);
    let mut evm = Evm::new(Env::default(), &backend);
    let first = evm.transact(&Transaction::call(sender(), contract_addr(), vec![])).unwrap();
    assert_eq!(U256::from_be_slice(&first.output), U256::ZERO);
    let second = evm
        .transact(&Transaction::call(sender(), contract_addr(), vec![]))
        .unwrap();
    assert_eq!(U256::from_be_slice(&second.output), u(0x42));
    // But the backend itself is untouched.
    assert_eq!(backend.storage(&contract_addr(), &U256::ONE), U256::ZERO);
}
