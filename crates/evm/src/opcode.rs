//! The EVM instruction set: opcode bytes, mnemonics, stack arities, base
//! gas, and functional categories.
//!
//! The category taxonomy follows the paper's Figure 2 grouping
//! (ARITHMETIC, JUMP, STACK, MEMORY, STORAGE, CALL-RETURN, frame-state
//! queries); the HEVM pipeline model keys its cycle costs off it.

/// Functional category of an instruction (paper Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpCategory {
    /// Arithmetic / comparison / bitwise ALU work.
    Arithmetic,
    /// KECCAK256 hashing.
    Keccak,
    /// Frame-state queries (opcodes 0x30–0x4A: ADDRESS, CODESIZE, ...).
    FrameState,
    /// Runtime stack manipulation (PUSH/DUP/SWAP/POP).
    Stack,
    /// Memory-like accesses (Memory, Code, Input, ReturnData).
    Memory,
    /// Persistent storage (SLOAD/SSTORE) and transient storage.
    Storage,
    /// Control flow (JUMP/JUMPI/PC/JUMPDEST/STOP).
    Flow,
    /// Log emission.
    Log,
    /// CALL-RETURN family: calls, creates, returns, selfdestruct.
    CallReturn,
    /// Unassigned/invalid opcodes.
    Invalid,
}

/// Static metadata for one opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpInfo {
    /// Mnemonic, e.g. `"ADD"`.
    pub name: &'static str,
    /// Words popped from the stack.
    pub inputs: u8,
    /// Words pushed to the stack.
    pub outputs: u8,
    /// Static base gas (dynamic parts are added by the interpreter).
    pub base_gas: u64,
    /// Functional category.
    pub category: OpCategory,
    /// `true` if the opcode is defined in the supported ruleset.
    pub defined: bool,
}

const UNDEFINED: OpInfo = OpInfo {
    name: "INVALID",
    inputs: 0,
    outputs: 0,
    base_gas: 0,
    category: OpCategory::Invalid,
    defined: false,
};

macro_rules! optable {
    ($($byte:literal => $name:ident, $in:literal, $out:literal, $gas:literal, $cat:ident;)*) => {
        /// Opcode byte constants.
        pub mod op {
            $(#[doc = concat!("The `", stringify!($name), "` opcode.")]
              pub const $name: u8 = $byte;)*
        }

        /// The static opcode metadata table, indexed by opcode byte.
        pub static OPCODES: [OpInfo; 256] = {
            let mut table = [UNDEFINED; 256];
            $(table[$byte] = OpInfo {
                name: stringify!($name),
                inputs: $in,
                outputs: $out,
                base_gas: $gas,
                category: OpCategory::$cat,
                defined: true,
            };)*
            table
        };
    };
}

optable! {
    0x00 => STOP, 0, 0, 0, Flow;
    0x01 => ADD, 2, 1, 3, Arithmetic;
    0x02 => MUL, 2, 1, 5, Arithmetic;
    0x03 => SUB, 2, 1, 3, Arithmetic;
    0x04 => DIV, 2, 1, 5, Arithmetic;
    0x05 => SDIV, 2, 1, 5, Arithmetic;
    0x06 => MOD, 2, 1, 5, Arithmetic;
    0x07 => SMOD, 2, 1, 5, Arithmetic;
    0x08 => ADDMOD, 3, 1, 8, Arithmetic;
    0x09 => MULMOD, 3, 1, 8, Arithmetic;
    0x0a => EXP, 2, 1, 10, Arithmetic;
    0x0b => SIGNEXTEND, 2, 1, 5, Arithmetic;
    0x10 => LT, 2, 1, 3, Arithmetic;
    0x11 => GT, 2, 1, 3, Arithmetic;
    0x12 => SLT, 2, 1, 3, Arithmetic;
    0x13 => SGT, 2, 1, 3, Arithmetic;
    0x14 => EQ, 2, 1, 3, Arithmetic;
    0x15 => ISZERO, 1, 1, 3, Arithmetic;
    0x16 => AND, 2, 1, 3, Arithmetic;
    0x17 => OR, 2, 1, 3, Arithmetic;
    0x18 => XOR, 2, 1, 3, Arithmetic;
    0x19 => NOT, 1, 1, 3, Arithmetic;
    0x1a => BYTE, 2, 1, 3, Arithmetic;
    0x1b => SHL, 2, 1, 3, Arithmetic;
    0x1c => SHR, 2, 1, 3, Arithmetic;
    0x1d => SAR, 2, 1, 3, Arithmetic;
    0x20 => KECCAK256, 2, 1, 30, Keccak;
    0x30 => ADDRESS, 0, 1, 2, FrameState;
    0x31 => BALANCE, 1, 1, 0, FrameState;
    0x32 => ORIGIN, 0, 1, 2, FrameState;
    0x33 => CALLER, 0, 1, 2, FrameState;
    0x34 => CALLVALUE, 0, 1, 2, FrameState;
    0x35 => CALLDATALOAD, 1, 1, 3, Memory;
    0x36 => CALLDATASIZE, 0, 1, 2, FrameState;
    0x37 => CALLDATACOPY, 3, 0, 3, Memory;
    0x38 => CODESIZE, 0, 1, 2, FrameState;
    0x39 => CODECOPY, 3, 0, 3, Memory;
    0x3a => GASPRICE, 0, 1, 2, FrameState;
    0x3b => EXTCODESIZE, 1, 1, 0, FrameState;
    0x3c => EXTCODECOPY, 4, 0, 0, Memory;
    0x3d => RETURNDATASIZE, 0, 1, 2, FrameState;
    0x3e => RETURNDATACOPY, 3, 0, 3, Memory;
    0x3f => EXTCODEHASH, 1, 1, 0, FrameState;
    0x40 => BLOCKHASH, 1, 1, 20, FrameState;
    0x41 => COINBASE, 0, 1, 2, FrameState;
    0x42 => TIMESTAMP, 0, 1, 2, FrameState;
    0x43 => NUMBER, 0, 1, 2, FrameState;
    0x44 => PREVRANDAO, 0, 1, 2, FrameState;
    0x45 => GASLIMIT, 0, 1, 2, FrameState;
    0x46 => CHAINID, 0, 1, 2, FrameState;
    0x47 => SELFBALANCE, 0, 1, 5, FrameState;
    0x48 => BASEFEE, 0, 1, 2, FrameState;
    0x50 => POP, 1, 0, 2, Stack;
    0x51 => MLOAD, 1, 1, 3, Memory;
    0x52 => MSTORE, 2, 0, 3, Memory;
    0x53 => MSTORE8, 2, 0, 3, Memory;
    0x54 => SLOAD, 1, 1, 0, Storage;
    0x55 => SSTORE, 2, 0, 0, Storage;
    0x56 => JUMP, 1, 0, 8, Flow;
    0x57 => JUMPI, 2, 0, 10, Flow;
    0x58 => PC, 0, 1, 2, Flow;
    0x59 => MSIZE, 0, 1, 2, FrameState;
    0x5a => GAS, 0, 1, 2, FrameState;
    0x5b => JUMPDEST, 0, 0, 1, Flow;
    0x5c => TLOAD, 1, 1, 100, Storage;
    0x5d => TSTORE, 2, 0, 100, Storage;
    0x5e => MCOPY, 3, 0, 3, Memory;
    0x5f => PUSH0, 0, 1, 2, Stack;
    0x60 => PUSH1, 0, 1, 3, Stack;
    0x61 => PUSH2, 0, 1, 3, Stack;
    0x62 => PUSH3, 0, 1, 3, Stack;
    0x63 => PUSH4, 0, 1, 3, Stack;
    0x64 => PUSH5, 0, 1, 3, Stack;
    0x65 => PUSH6, 0, 1, 3, Stack;
    0x66 => PUSH7, 0, 1, 3, Stack;
    0x67 => PUSH8, 0, 1, 3, Stack;
    0x68 => PUSH9, 0, 1, 3, Stack;
    0x69 => PUSH10, 0, 1, 3, Stack;
    0x6a => PUSH11, 0, 1, 3, Stack;
    0x6b => PUSH12, 0, 1, 3, Stack;
    0x6c => PUSH13, 0, 1, 3, Stack;
    0x6d => PUSH14, 0, 1, 3, Stack;
    0x6e => PUSH15, 0, 1, 3, Stack;
    0x6f => PUSH16, 0, 1, 3, Stack;
    0x70 => PUSH17, 0, 1, 3, Stack;
    0x71 => PUSH18, 0, 1, 3, Stack;
    0x72 => PUSH19, 0, 1, 3, Stack;
    0x73 => PUSH20, 0, 1, 3, Stack;
    0x74 => PUSH21, 0, 1, 3, Stack;
    0x75 => PUSH22, 0, 1, 3, Stack;
    0x76 => PUSH23, 0, 1, 3, Stack;
    0x77 => PUSH24, 0, 1, 3, Stack;
    0x78 => PUSH25, 0, 1, 3, Stack;
    0x79 => PUSH26, 0, 1, 3, Stack;
    0x7a => PUSH27, 0, 1, 3, Stack;
    0x7b => PUSH28, 0, 1, 3, Stack;
    0x7c => PUSH29, 0, 1, 3, Stack;
    0x7d => PUSH30, 0, 1, 3, Stack;
    0x7e => PUSH31, 0, 1, 3, Stack;
    0x7f => PUSH32, 0, 1, 3, Stack;
    0x80 => DUP1, 1, 2, 3, Stack;
    0x81 => DUP2, 2, 3, 3, Stack;
    0x82 => DUP3, 3, 4, 3, Stack;
    0x83 => DUP4, 4, 5, 3, Stack;
    0x84 => DUP5, 5, 6, 3, Stack;
    0x85 => DUP6, 6, 7, 3, Stack;
    0x86 => DUP7, 7, 8, 3, Stack;
    0x87 => DUP8, 8, 9, 3, Stack;
    0x88 => DUP9, 9, 10, 3, Stack;
    0x89 => DUP10, 10, 11, 3, Stack;
    0x8a => DUP11, 11, 12, 3, Stack;
    0x8b => DUP12, 12, 13, 3, Stack;
    0x8c => DUP13, 13, 14, 3, Stack;
    0x8d => DUP14, 14, 15, 3, Stack;
    0x8e => DUP15, 15, 16, 3, Stack;
    0x8f => DUP16, 16, 17, 3, Stack;
    0x90 => SWAP1, 2, 2, 3, Stack;
    0x91 => SWAP2, 3, 3, 3, Stack;
    0x92 => SWAP3, 4, 4, 3, Stack;
    0x93 => SWAP4, 5, 5, 3, Stack;
    0x94 => SWAP5, 6, 6, 3, Stack;
    0x95 => SWAP6, 7, 7, 3, Stack;
    0x96 => SWAP7, 8, 8, 3, Stack;
    0x97 => SWAP8, 9, 9, 3, Stack;
    0x98 => SWAP9, 10, 10, 3, Stack;
    0x99 => SWAP10, 11, 11, 3, Stack;
    0x9a => SWAP11, 12, 12, 3, Stack;
    0x9b => SWAP12, 13, 13, 3, Stack;
    0x9c => SWAP13, 14, 14, 3, Stack;
    0x9d => SWAP14, 15, 15, 3, Stack;
    0x9e => SWAP15, 16, 16, 3, Stack;
    0x9f => SWAP16, 17, 17, 3, Stack;
    0xa0 => LOG0, 2, 0, 375, Log;
    0xa1 => LOG1, 3, 0, 750, Log;
    0xa2 => LOG2, 4, 0, 1125, Log;
    0xa3 => LOG3, 5, 0, 1500, Log;
    0xa4 => LOG4, 6, 0, 1875, Log;
    0xf0 => CREATE, 3, 1, 32000, CallReturn;
    0xf1 => CALL, 7, 1, 0, CallReturn;
    0xf2 => CALLCODE, 7, 1, 0, CallReturn;
    0xf3 => RETURN, 2, 0, 0, CallReturn;
    0xf4 => DELEGATECALL, 6, 1, 0, CallReturn;
    0xf5 => CREATE2, 4, 1, 32000, CallReturn;
    0xfa => STATICCALL, 6, 1, 0, CallReturn;
    0xfd => REVERT, 2, 0, 0, CallReturn;
    0xfe => INVALID, 0, 0, 0, Invalid;
    0xff => SELFDESTRUCT, 1, 0, 5000, CallReturn;
}

/// Looks up opcode metadata.
#[inline]
pub fn info(opcode: u8) -> &'static OpInfo {
    &OPCODES[opcode as usize]
}

/// Returns `true` for PUSH1..PUSH32.
#[inline]
pub fn is_push(opcode: u8) -> bool {
    (op::PUSH1..=op::PUSH32).contains(&opcode)
}

/// Number of immediate data bytes following the opcode (PUSH only).
#[inline]
pub fn immediate_len(opcode: u8) -> usize {
    if is_push(opcode) {
        (opcode - op::PUSH1 + 1) as usize
    } else {
        0
    }
}

/// Precomputed set of valid `JUMPDEST` positions for a code blob
/// (positions inside PUSH immediates are excluded).
#[derive(Debug, Clone, Default)]
pub struct JumpTable {
    valid: Vec<bool>,
}

impl JumpTable {
    /// Analyzes `code`.
    pub fn analyze(code: &[u8]) -> Self {
        let mut valid = vec![false; code.len()];
        let mut pc = 0;
        while pc < code.len() {
            let opcode = code[pc];
            if opcode == op::JUMPDEST {
                valid[pc] = true;
            }
            pc += 1 + immediate_len(opcode);
        }
        JumpTable { valid }
    }

    /// Returns `true` if `target` is a valid jump destination.
    pub fn is_valid(&self, target: usize) -> bool {
        self.valid.get(target).copied().unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_well_formed() {
        assert_eq!(info(op::ADD).name, "ADD");
        assert_eq!(info(op::ADD).inputs, 2);
        assert_eq!(info(op::PUSH32).name, "PUSH32");
        assert!(info(op::STOP).defined);
        assert!(!info(0x0c).defined);
        assert!(!info(0x21).defined);
        assert_eq!(info(0xfe).name, "INVALID");
    }

    #[test]
    fn categories_match_paper_figure_2() {
        assert_eq!(info(op::ADD).category, OpCategory::Arithmetic);
        assert_eq!(info(op::JUMP).category, OpCategory::Flow);
        assert_eq!(info(op::SLOAD).category, OpCategory::Storage);
        assert_eq!(info(op::CALL).category, OpCategory::CallReturn);
        assert_eq!(info(op::ADDRESS).category, OpCategory::FrameState);
        assert_eq!(info(op::MLOAD).category, OpCategory::Memory);
        assert_eq!(info(op::DUP1).category, OpCategory::Stack);
    }

    #[test]
    fn push_immediates() {
        assert_eq!(immediate_len(op::PUSH1), 1);
        assert_eq!(immediate_len(op::PUSH32), 32);
        assert_eq!(immediate_len(op::ADD), 0);
        assert!(is_push(op::PUSH7));
        assert!(!is_push(op::PUSH0));
        assert!(!is_push(op::DUP1));
    }

    #[test]
    fn jump_table_skips_push_data() {
        // PUSH2 0x5b5b JUMPDEST — the two 0x5b bytes inside the push are
        // NOT valid destinations; the trailing one is.
        let code = [op::PUSH2, 0x5b, 0x5b, op::JUMPDEST];
        let table = JumpTable::analyze(&code);
        assert!(!table.is_valid(1));
        assert!(!table.is_valid(2));
        assert!(table.is_valid(3));
        assert!(!table.is_valid(4));
        assert!(!table.is_valid(999));
    }

    #[test]
    fn jump_table_truncated_push() {
        // PUSH32 with only 3 bytes of code left must not panic.
        let code = [op::JUMPDEST, op::PUSH32, 0x5b];
        let table = JumpTable::analyze(&code);
        assert!(table.is_valid(0));
        assert!(!table.is_valid(2));
    }
}
