//! A small EVM assembler: builds bytecode programmatically with labels,
//! forward jumps, and minimal-width pushes.
//!
//! Used by the test suites, the synthetic workload generator, and the
//! examples — the reproduction's stand-in for Solidity-compiled
//! contracts.

use crate::opcode::op;
use std::collections::HashMap;
use tape_primitives::U256;

/// A bytecode assembler.
///
/// # Examples
///
/// Build and run `2 + 3`, returning the result:
///
/// ```
/// use tape_evm::asm::Asm;
/// use tape_primitives::U256;
///
/// let code = Asm::new()
///     .push(2u64)
///     .push(3u64)
///     .op(tape_evm::opcode::op::ADD)
///     .ret_top()
///     .build();
/// assert!(!code.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Asm {
    bytes: Vec<u8>,
    /// label -> position
    labels: HashMap<&'static str, usize>,
    /// (patch position, label) for 2-byte forward references
    fixups: Vec<(usize, &'static str)>,
}

impl Asm {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a raw opcode byte.
    pub fn op(mut self, opcode: u8) -> Self {
        self.bytes.push(opcode);
        self
    }

    /// Appends several raw opcode bytes.
    pub fn ops(mut self, opcodes: &[u8]) -> Self {
        self.bytes.extend_from_slice(opcodes);
        self
    }

    /// Appends a minimal-width PUSH of the value (PUSH0 for zero).
    pub fn push(mut self, value: impl Into<U256>) -> Self {
        let value: U256 = value.into();
        if value.is_zero() {
            self.bytes.push(op::PUSH0);
            return self;
        }
        let bytes = value.to_be_bytes_trimmed();
        self.bytes.push(op::PUSH1 + (bytes.len() - 1) as u8);
        self.bytes.extend_from_slice(&bytes);
        self
    }

    /// Appends a PUSH of exactly `width` bytes (useful for deterministic
    /// code sizes).
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 32, or the value does not fit.
    pub fn push_width(mut self, value: impl Into<U256>, width: usize) -> Self {
        assert!((1..=32).contains(&width), "push width must be 1..=32");
        let value: U256 = value.into();
        let be = value.to_be_bytes();
        assert!(
            be[..32 - width].iter().all(|&b| b == 0),
            "value does not fit in {width} bytes"
        );
        self.bytes.push(op::PUSH1 + (width - 1) as u8);
        self.bytes.extend_from_slice(&be[32 - width..]);
        self
    }

    /// Appends a PUSH20 of an address.
    pub fn push_address(self, address: tape_primitives::Address) -> Self {
        self.push_width(address.into_word(), 20)
    }

    /// Defines a label at the current position and emits a `JUMPDEST`.
    ///
    /// # Panics
    ///
    /// Panics if the label was already defined.
    pub fn label(mut self, name: &'static str) -> Self {
        let previous = self.labels.insert(name, self.bytes.len());
        assert!(previous.is_none(), "label {name:?} defined twice");
        self.bytes.push(op::JUMPDEST);
        self
    }

    /// Pushes the (2-byte) position of a label; resolved at
    /// [`build`](Self::build) time, so forward references work.
    pub fn push_label(mut self, name: &'static str) -> Self {
        self.bytes.push(op::PUSH2);
        self.fixups.push((self.bytes.len(), name));
        self.bytes.extend_from_slice(&[0, 0]);
        self
    }

    /// `push_label` + `JUMP`.
    pub fn jump(self, name: &'static str) -> Self {
        self.push_label(name).op(op::JUMP)
    }

    /// `push_label` + `JUMPI` (consumes the condition already on the
    /// stack).
    pub fn jumpi(self, name: &'static str) -> Self {
        self.push_label(name).op(op::JUMPI)
    }

    /// Stores the top of the stack at memory 0 and returns the 32-byte
    /// word — the common "return the result" epilogue.
    pub fn ret_top(self) -> Self {
        self.push(0u64)
            .op(op::MSTORE)
            .push(32u64)
            .push(0u64)
            .op(op::RETURN)
    }

    /// `STOP`.
    pub fn stop(self) -> Self {
        self.op(op::STOP)
    }

    /// Current length of the emitted code.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Returns `true` if no bytes were emitted.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Finalizes the bytecode, resolving label fixups.
    ///
    /// # Panics
    ///
    /// Panics on an undefined label or a label beyond 65535.
    pub fn build(mut self) -> Vec<u8> {
        for (pos, name) in &self.fixups {
            let target = *self
                .labels
                .get(name)
                .unwrap_or_else(|| panic!("undefined label {name:?}"));
            assert!(target <= u16::MAX as usize, "label {name:?} out of PUSH2 range");
            self.bytes[*pos..pos + 2].copy_from_slice(&(target as u16).to_be_bytes());
        }
        self.bytes
    }

    /// Wraps `runtime` code in a standard deployment initcode: the
    /// constructor copies the runtime to memory and returns it.
    pub fn deploy_wrapper(runtime: &[u8]) -> Vec<u8> {
        // PUSH2 len, PUSH2 offset, PUSH0, CODECOPY, PUSH2 len, PUSH0, RETURN
        let mut init = Asm::new()
            .push_width(runtime.len() as u64, 2)
            .push_width(0u64, 2) // patched below: runtime offset
            .push(0u64)
            .op(op::CODECOPY)
            .push_width(runtime.len() as u64, 2)
            .push(0u64)
            .op(op::RETURN)
            .build();
        let offset = init.len() as u16;
        // Patch the second push (bytes 3..5 hold the offset operand).
        init[4..6].copy_from_slice(&offset.to_be_bytes());
        init.extend_from_slice(runtime);
        init
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_width_push() {
        assert_eq!(Asm::new().push(0u64).build(), vec![op::PUSH0]);
        assert_eq!(Asm::new().push(0xffu64).build(), vec![op::PUSH1, 0xff]);
        assert_eq!(Asm::new().push(0x100u64).build(), vec![op::PUSH2, 0x01, 0x00]);
        assert_eq!(Asm::new().push(U256::MAX).build().len(), 33);
    }

    #[test]
    fn fixed_width_push() {
        assert_eq!(Asm::new().push_width(5u64, 4).build(), vec![op::PUSH4, 0, 0, 0, 5]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn fixed_width_overflow_panics() {
        let _ = Asm::new().push_width(0x1_0000u64, 2).build();
    }

    #[test]
    fn labels_and_forward_jumps() {
        let code = Asm::new()
            .jump("end") // forward reference
            .push(1u64)
            .label("end")
            .stop()
            .build();
        // PUSH2 <pos> JUMP PUSH1 1 JUMPDEST STOP
        assert_eq!(code[0], op::PUSH2);
        let target = u16::from_be_bytes([code[1], code[2]]) as usize;
        assert_eq!(code[target], op::JUMPDEST);
    }

    #[test]
    #[should_panic(expected = "undefined label")]
    fn undefined_label_panics() {
        let _ = Asm::new().jump("nowhere").build();
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn duplicate_label_panics() {
        let _ = Asm::new().label("a").label("a").build();
    }

    #[test]
    fn deploy_wrapper_layout() {
        let runtime = vec![op::PUSH1, 7, op::STOP];
        let init = Asm::deploy_wrapper(&runtime);
        assert!(init.ends_with(&runtime));
        // The wrapper references the correct offset.
        let offset = u16::from_be_bytes([init[4], init[5]]) as usize;
        assert_eq!(&init[offset..], &runtime[..]);
    }
}
