//! The reference EVM: interpreter loop and transaction executor.
//!
//! This is the "Geth-equivalent" engine of the reproduction — it defines
//! ground truth for §VI-B correctness comparisons and serves as the Geth
//! performance baseline in Figures 4 and 5. The independently-implemented
//! hardware EVM (`tape-hevm`) is differentially tested against it.

use crate::gas::{self, Gas};
use crate::memory::Memory;
use crate::opcode::{self, op, JumpTable};
use crate::precompile;
use crate::stack::{Stack, StackError};
use crate::types::{
    Env, FrameEnd, FrameStart, Inspector, StateAccess, StepInfo, Transaction, TxError, TxResult,
    VmError,
};
use std::sync::Arc;
use tape_primitives::{rlp, Address, B256, U256};
use tape_state::{JournaledState, Log, StateReader};

impl From<StackError> for VmError {
    fn from(e: StackError) -> Self {
        match e {
            StackError::Underflow => VmError::StackUnderflow,
            StackError::Overflow => VmError::StackOverflow,
        }
    }
}

/// One execution frame: the paper's §II-A context (runtime stack,
/// memory-likes, frame state, and a view of the world-state version via
/// the journal checkpoint held by the caller).
struct Frame {
    code: Arc<Vec<u8>>,
    jump_table: JumpTable,
    pc: usize,
    stack: Stack,
    memory: Memory,
    input: Vec<u8>,
    return_data: Vec<u8>,
    /// Storage / balance context.
    address: Address,
    caller: Address,
    value: U256,
    gas: Gas,
    is_static: bool,
    depth: usize,
}

/// How a frame ended.
enum FrameOutcome {
    Stop,
    Return(Vec<u8>),
    Revert(Vec<u8>),
    SelfDestruct,
    Halt(VmError),
}

/// What the interpreter wants next after a step: keep going, end the
/// frame, or descend into a sub-frame. The explicit action type keeps the
/// engine iterative — the call stack is a `Vec`, not native recursion,
/// mirroring the paper's explicit layer-2 call stack.
enum StepAction {
    Continue,
    Done(FrameOutcome),
    SubCall {
        msg: CallMsg,
        out_offset: usize,
        out_len: usize,
    },
    SubCreate {
        created: Address,
        value: U256,
        initcode: Vec<u8>,
        gas: u64,
    },
}

/// How to resume a parent frame once its child completes.
enum Resume {
    Call { out_offset: usize, out_len: usize },
    Create { created: Address },
}

/// A frame prepared for execution together with its journal scope.
struct FrameJob {
    frame: Frame,
    checkpoint: tape_state::Checkpoint,
    refund_snapshot: i64,
    /// `Some(address)` when this job is a CREATE initcode run.
    create: Option<Address>,
}

/// Outcome of preparing a call/create: either a frame to run, or an
/// immediately-known result (precompile, plain transfer, collision, ...).
enum Prepared {
    Job(Box<FrameJob>),
    Immediate(CallOutcome),
}

/// Result of a completed sub-call, as seen by the parent frame.
struct CallOutcome {
    success: bool,
    gas_left: u64,
    output: Vec<u8>,
    halt: Option<VmError>,
    created: Option<Address>,
}

struct CallMsg {
    caller: Address,
    /// Storage context of the callee frame.
    address: Address,
    /// Whose code to run.
    code_address: Address,
    value: U256,
    transfers_value: bool,
    input: Vec<u8>,
    gas: u64,
    is_static: bool,
    depth: usize,
}

/// The EVM executor: owns the journaled state overlay and drives
/// transactions through the interpreter.
///
/// # Examples
///
/// ```
/// use tape_evm::{Env, Evm, Transaction};
/// use tape_primitives::{Address, U256};
/// use tape_state::{Account, InMemoryState};
///
/// let mut backend = InMemoryState::new();
/// let alice = Address::from_low_u64(1);
/// backend.put_account(alice, Account::with_balance(U256::from(10u64).wrapping_pow(U256::from(18u64))));
///
/// let mut evm = Evm::new(Env::default(), &backend);
/// let tx = Transaction::transfer(alice, Address::from_low_u64(0xB0B), U256::from(1_000u64));
/// let result = evm.transact(&tx)?;
/// assert!(result.success);
/// assert_eq!(result.gas_used, 21_000);
/// # Ok::<(), tape_evm::TxError>(())
/// ```
pub struct Evm<R, I = crate::types::NoopInspector> {
    /// Block environment.
    pub env: Env,
    state: JournaledState<R>,
    inspector: I,
    refund: i64,
    origin: Address,
    gas_price: U256,
}

impl<R: StateReader> Evm<R> {
    /// Creates an executor with no inspector.
    pub fn new(env: Env, reader: R) -> Self {
        Self::with_inspector(env, reader, crate::types::NoopInspector)
    }
}

impl<R: StateReader, I: Inspector> Evm<R, I> {
    /// Creates an executor with an inspector attached.
    pub fn with_inspector(env: Env, reader: R, inspector: I) -> Self {
        Evm {
            env,
            state: JournaledState::new(reader),
            inspector,
            refund: 0,
            origin: Address::ZERO,
            gas_price: U256::ZERO,
        }
    }

    /// The journaled overlay (bundle-lifetime state).
    pub fn state(&self) -> &JournaledState<R> {
        &self.state
    }

    /// Mutable access to the overlay (for bundle-level setup).
    pub fn state_mut(&mut self) -> &mut JournaledState<R> {
        &mut self.state
    }

    /// The attached inspector.
    pub fn inspector(&self) -> &I {
        &self.inspector
    }

    /// Mutable access to the attached inspector.
    pub fn inspector_mut(&mut self) -> &mut I {
        &mut self.inspector
    }

    /// Consumes the executor, returning the inspector.
    pub fn into_inspector(self) -> I {
        self.inspector
    }

    /// Executes one transaction against the overlay. World-state changes
    /// stay in the overlay (pre-execution semantics).
    ///
    /// # Errors
    ///
    /// Returns [`TxError`] when the transaction is invalid before
    /// execution starts (bad nonce, unfundable, intrinsic gas).
    pub fn transact(&mut self, tx: &Transaction) -> Result<TxResult, TxError> {
        self.state.begin_transaction();
        self.refund = 0;
        self.origin = tx.from;
        self.gas_price = tx.gas_price;

        let (sender, _) = self.state.load_account(tx.from);
        self.inspector.state_access(&StateAccess::Account(tx.from));
        if let Some(nonce) = tx.nonce {
            if nonce != sender.nonce {
                return Err(TxError::NonceMismatch { expected: nonce, actual: sender.nonce });
            }
        }

        let is_create = tx.to.is_none();
        if is_create && tx.data.len() > gas::MAX_INITCODE_SIZE {
            return Err(TxError::InitcodeTooLarge);
        }
        let al_keys = tx.access_list.iter().map(|(_, k)| k.len()).sum();
        let intrinsic = gas::intrinsic_gas(&tx.data, is_create, tx.access_list.len(), al_keys);
        if tx.gas_limit < intrinsic {
            return Err(TxError::IntrinsicGasTooLow { needed: intrinsic });
        }

        let gas_cost = U256::from(tx.gas_limit)
            .checked_mul(tx.gas_price)
            .ok_or(TxError::InsufficientFunds)?;
        let upfront = gas_cost.checked_add(tx.value).ok_or(TxError::InsufficientFunds)?;
        if sender.balance < upfront {
            return Err(TxError::InsufficientFunds);
        }

        // Buy gas and bump the nonce. The balance was checked above,
        // but the boundary discipline is typed errors over panics.
        self.state
            .sub_balance(&tx.from, gas_cost)
            .map_err(|_| TxError::InsufficientFunds)?;
        self.state.inc_nonce(&tx.from);

        // EIP-2929 pre-warming: sender, target, coinbase, precompiles,
        // access list.
        self.state.warm_address(tx.from);
        if let Some(to) = tx.to {
            self.state.warm_address(to);
        }
        self.state.warm_address(self.env.coinbase);
        for n in 1..=precompile::PRECOMPILE_COUNT {
            self.state.warm_address(Address::from_low_u64(n));
        }
        for (addr, keys) in &tx.access_list {
            self.state.warm_address(*addr);
            for key in keys {
                // Warm the slot by touching it through the journal.
                let _ = self.state.sload(addr, key);
            }
        }

        let mut gas = Gas::new(tx.gas_limit);
        assert!(gas.charge(intrinsic), "intrinsic fits: checked above");

        let (outcome, created) = if let Some(to) = tx.to {
            let msg = CallMsg {
                caller: tx.from,
                address: to,
                code_address: to,
                value: tx.value,
                transfers_value: true,
                input: tx.data.clone(),
                gas: gas.remaining(),
                is_static: false,
                depth: 1,
            };
            let out = match self.prepare_call(msg) {
                Prepared::Immediate(out) => out,
                Prepared::Job(job) => self.run_job(*job),
            };
            (out, None)
        } else {
            let nonce = self.state.nonce(&tx.from) - 1; // already bumped
            let created = create_address(&tx.from, nonce);
            let out = match self.prepare_create(
                tx.from,
                created,
                tx.value,
                tx.data.clone(),
                gas.remaining(),
                1,
            ) {
                Prepared::Immediate(out) => out,
                Prepared::Job(job) => self.run_job(*job),
            };
            let created = out.created;
            (out, created)
        };

        // Settle gas: the frame consumed (gas.remaining - gas_left).
        let frame_gas = gas.remaining();
        assert!(gas.charge(frame_gas - outcome.gas_left), "frame gas accounted");

        let refund_cap = gas.used() / 5;
        let refund = (self.refund.max(0) as u64).min(refund_cap);
        gas.reclaim(refund);

        let gas_used = gas.used();
        // Reimburse the sender for unused gas; pay the coinbase.
        let reimbursement = U256::from(gas.remaining()).wrapping_mul(tx.gas_price);
        self.state.add_balance(&tx.from, reimbursement);
        let tip = U256::from(gas_used)
            .wrapping_mul(tx.gas_price.saturating_sub(self.env.base_fee));
        self.state.add_balance(&self.env.coinbase, tip);

        let mut logs = self.state.take_logs();
        if !outcome.success {
            logs.clear();
        }

        Ok(TxResult {
            success: outcome.success,
            gas_used,
            output: outcome.output,
            logs,
            created,
            halt: outcome.halt,
        })
    }

    /// Prepares a call message: value transfer, precompile dispatch, or a
    /// full interpreter frame.
    fn prepare_call(&mut self, msg: CallMsg) -> Prepared {
        self.inspector.state_access(&StateAccess::Account(msg.code_address));
        let code = self.state.code(&msg.code_address);
        self.inspector.call_start(&FrameStart {
            depth: msg.depth,
            code_address: msg.code_address,
            address: msg.address,
            caller: msg.caller,
            value: msg.value,
            input_len: msg.input.len(),
            code_len: code.len(),
            gas: msg.gas,
        });

        let checkpoint = self.state.checkpoint();
        let refund_snapshot = self.refund;

        if msg.transfers_value
            && !msg.value.is_zero()
            && self.state.transfer(&msg.caller, &msg.address, msg.value).is_err()
        {
            // Balance was validated by the caller opcode; a failure here
            // means the top-level sender cannot pay.
            self.state.revert(checkpoint);
            self.inspector.call_end(&FrameEnd {
                depth: msg.depth,
                committed: false,
                output_len: 0,
                gas_left: msg.gas,
            });
            return Prepared::Immediate(CallOutcome {
                success: false,
                gas_left: msg.gas,
                output: Vec::new(),
                halt: None,
                created: None,
            });
        }

        // Precompile dispatch.
        if precompile::is_precompile(&msg.code_address) {
            let out = precompile::run(&msg.code_address, &msg.input, msg.gas);
            let (success, gas_left) = if out.success {
                (true, msg.gas - out.gas_used)
            } else {
                (false, 0)
            };
            if success {
                self.state.commit(checkpoint);
            } else {
                self.state.revert(checkpoint);
                self.refund = refund_snapshot;
            }
            self.inspector.call_end(&FrameEnd {
                depth: msg.depth,
                committed: success,
                output_len: out.output.len(),
                gas_left,
            });
            return Prepared::Immediate(CallOutcome {
                success,
                gas_left,
                output: out.output,
                halt: None,
                created: None,
            });
        }

        if code.is_empty() {
            // Plain transfer to an EOA.
            self.state.commit(checkpoint);
            self.inspector.call_end(&FrameEnd {
                depth: msg.depth,
                committed: true,
                output_len: 0,
                gas_left: msg.gas,
            });
            return Prepared::Immediate(CallOutcome {
                success: true,
                gas_left: msg.gas,
                output: Vec::new(),
                halt: None,
                created: None,
            });
        }

        self.inspector.state_access(&StateAccess::Code(msg.code_address, code.len()));
        let jump_table = JumpTable::analyze(&code);
        let frame = Frame {
            code,
            jump_table,
            pc: 0,
            stack: Stack::new(),
            memory: Memory::new(),
            input: msg.input,
            return_data: Vec::new(),
            address: msg.address,
            caller: msg.caller,
            value: msg.value,
            gas: Gas::new(msg.gas),
            is_static: msg.is_static,
            depth: msg.depth,
        };
        Prepared::Job(Box::new(FrameJob { frame, checkpoint, refund_snapshot, create: None }))
    }

    /// Prepares a CREATE/CREATE2 initcode run.
    fn prepare_create(
        &mut self,
        creator: Address,
        created: Address,
        value: U256,
        initcode: Vec<u8>,
        gas: u64,
        depth: usize,
    ) -> Prepared {
        self.inspector.call_start(&FrameStart {
            depth,
            code_address: created,
            address: created,
            caller: creator,
            value,
            input_len: 0,
            code_len: initcode.len(),
            gas,
        });

        // Collision check (EIP-684).
        let (info, _) = self.state.load_account(created);
        if info.has_code() || info.nonce != 0 {
            self.inspector.call_end(&FrameEnd { depth, committed: false, output_len: 0, gas_left: 0 });
            return Prepared::Immediate(CallOutcome {
                success: false,
                gas_left: 0,
                output: Vec::new(),
                halt: Some(VmError::CreateCollision),
                created: None,
            });
        }

        let checkpoint = self.state.checkpoint();
        let refund_snapshot = self.refund;

        // The new account starts at nonce 1 (EIP-161).
        self.state.inc_nonce(&created);
        if !value.is_zero() && self.state.transfer(&creator, &created, value).is_err() {
            self.state.revert(checkpoint);
            self.inspector.call_end(&FrameEnd { depth, committed: false, output_len: 0, gas_left: gas });
            return Prepared::Immediate(CallOutcome {
                success: false,
                gas_left: gas,
                output: Vec::new(),
                halt: None,
                created: None,
            });
        }

        let code = Arc::new(initcode);
        let jump_table = JumpTable::analyze(&code);
        let frame = Frame {
            code,
            jump_table,
            pc: 0,
            stack: Stack::new(),
            memory: Memory::new(),
            input: Vec::new(),
            return_data: Vec::new(),
            address: created,
            caller: creator,
            value,
            gas: Gas::new(gas),
            is_static: false,
            depth,
        };
        Prepared::Job(Box::new(FrameJob {
            frame,
            checkpoint,
            refund_snapshot,
            create: Some(created),
        }))
    }

    /// Drives a prepared frame to completion with an explicit call stack —
    /// no native recursion, so depth 1024 is safe on any host stack.
    fn run_job(&mut self, root: FrameJob) -> CallOutcome {
        let mut parents: Vec<(FrameJob, Resume)> = Vec::new();
        let mut current = root;
        loop {
            // Each arm either finishes the frame (Done), resolves a
            // sub-frame request immediately, or yields the prepared
            // sub-job to descend into — no partially-filled outcome.
            let (job, resume) = match self.run_frame(&mut current.frame) {
                StepAction::Done(outcome) => {
                    let call_outcome = self.finish_job(current, outcome);
                    match parents.pop() {
                        Some((mut parent, resume)) => {
                            apply_resume(&mut parent.frame, &resume, call_outcome);
                            current = parent;
                            continue;
                        }
                        None => return call_outcome,
                    }
                }
                StepAction::SubCall { msg, out_offset, out_len } => {
                    let resume = Resume::Call { out_offset, out_len };
                    match self.prepare_call(msg) {
                        Prepared::Immediate(out) => {
                            apply_resume(&mut current.frame, &resume, out);
                            continue;
                        }
                        Prepared::Job(job) => (job, resume),
                    }
                }
                StepAction::SubCreate { created, value, initcode, gas } => {
                    let prepared = self.prepare_create(
                        current.frame.address,
                        created,
                        value,
                        initcode,
                        gas,
                        current.frame.depth + 1,
                    );
                    match prepared {
                        Prepared::Immediate(out) => {
                            apply_resume(&mut current.frame, &Resume::Create { created }, out);
                            continue;
                        }
                        Prepared::Job(job) => (job, Resume::Create { created }),
                    }
                }
                StepAction::Continue => unreachable!("run_frame never yields Continue"),
            };
            parents.push((current, resume));
            current = *job;
        }
    }

    /// Steps a frame until it ends or requests a sub-frame.
    fn run_frame(&mut self, frame: &mut Frame) -> StepAction {
        loop {
            match self.step(frame) {
                Ok(StepAction::Continue) => {}
                Ok(action) => return action,
                Err(err) => {
                    frame.gas.consume_all();
                    return StepAction::Done(FrameOutcome::Halt(err));
                }
            }
        }
    }

    /// Settles a finished job: CREATE deployment epilogue, journal
    /// commit/revert, and the inspector report.
    fn finish_job(&mut self, mut job: FrameJob, mut outcome: FrameOutcome) -> CallOutcome {
        let mut created_out = None;
        if let Some(created) = job.create {
            // STOP (or running off the end) in initcode is a successful
            // deployment of *empty* code, per the EVM spec.
            if matches!(outcome, FrameOutcome::Stop) {
                outcome = FrameOutcome::Return(Vec::new());
            }
            if let FrameOutcome::Return(deployed) = outcome {
                // Deployment epilogue: validate and charge the deposit.
                outcome = if deployed.len() > gas::MAX_CODE_SIZE {
                    job.frame.gas.consume_all();
                    FrameOutcome::Halt(VmError::CodeSizeExceeded)
                } else if deployed.first() == Some(&0xEF) {
                    job.frame.gas.consume_all();
                    FrameOutcome::Halt(VmError::InvalidDeployedCode)
                } else if !job
                    .frame
                    .gas
                    .charge(gas::CODE_DEPOSIT_BYTE * deployed.len() as u64)
                {
                    FrameOutcome::Halt(VmError::OutOfGas)
                } else {
                    self.state.set_code(&created, deployed);
                    created_out = Some(created);
                    // A successful create yields the address, not bytes.
                    FrameOutcome::Stop
                };
            }
        }

        let (success, gas_left, output, halt) = match outcome {
            FrameOutcome::Stop | FrameOutcome::SelfDestruct => {
                (true, job.frame.gas.remaining(), Vec::new(), None)
            }
            FrameOutcome::Return(data) => (true, job.frame.gas.remaining(), data, None),
            FrameOutcome::Revert(data) => (false, job.frame.gas.remaining(), data, None),
            FrameOutcome::Halt(err) => (false, 0, Vec::new(), Some(err)),
        };
        if success {
            self.state.commit(job.checkpoint);
        } else {
            self.state.revert(job.checkpoint);
            self.refund = job.refund_snapshot;
        }
        self.inspector.call_end(&FrameEnd {
            depth: job.frame.depth,
            committed: success,
            output_len: output.len(),
            gas_left,
        });
        CallOutcome { success, gas_left, output, halt, created: created_out }
    }

    /// Executes a single instruction.
    fn step(&mut self, frame: &mut Frame) -> Result<StepAction, VmError> {
        let Some(&opcode) = frame.code.get(frame.pc) else {
            // Running off the end of the code is an implicit STOP.
            return Ok(StepAction::Done(FrameOutcome::Stop));
        };
        let info = opcode::info(opcode);
        if !info.defined {
            return Err(VmError::InvalidOpcode(opcode));
        }

        self.inspector.step(&StepInfo {
            pc: frame.pc,
            opcode,
            gas_remaining: frame.gas.remaining(),
            depth: frame.depth,
            stack: frame.stack.as_slice(),
            memory_size: frame.memory.size(),
            address: frame.address,
        });

        if !frame.gas.charge(info.base_gas) {
            return Err(VmError::OutOfGas);
        }

        let pc = frame.pc;
        frame.pc += 1; // default advance; PUSH/JUMP adjust below

        match opcode {
            op::STOP => return Ok(StepAction::Done(FrameOutcome::Stop)),

            // --- Arithmetic -------------------------------------------------
            op::ADD => binary(frame, |a, b| a.wrapping_add(b))?,
            op::MUL => binary(frame, |a, b| a.wrapping_mul(b))?,
            op::SUB => binary(frame, |a, b| a.wrapping_sub(b))?,
            op::DIV => binary(frame, |a, b| a.div_evm(b))?,
            op::SDIV => binary(frame, |a, b| a.sdiv_evm(b))?,
            op::MOD => binary(frame, |a, b| a.rem_evm(b))?,
            op::SMOD => binary(frame, |a, b| a.smod_evm(b))?,
            op::ADDMOD => ternary(frame, |a, b, m| a.add_mod(b, m))?,
            op::MULMOD => ternary(frame, |a, b, m| a.mul_mod(b, m))?,
            op::EXP => {
                let base = frame.stack.pop()?;
                let exponent = frame.stack.pop()?;
                if !frame.gas.charge(gas::exp_cost(&exponent)) {
                    return Err(VmError::OutOfGas);
                }
                frame.stack.push(base.wrapping_pow(exponent))?;
            }
            op::SIGNEXTEND => binary(frame, |b, x| x.sign_extend(b))?,

            // --- Comparison / bitwise --------------------------------------
            op::LT => binary(frame, |a, b| U256::from(a < b))?,
            op::GT => binary(frame, |a, b| U256::from(a > b))?,
            op::SLT => binary(frame, |a, b| {
                U256::from(a.signed_cmp(&b) == core::cmp::Ordering::Less)
            })?,
            op::SGT => binary(frame, |a, b| {
                U256::from(a.signed_cmp(&b) == core::cmp::Ordering::Greater)
            })?,
            op::EQ => binary(frame, |a, b| U256::from(a == b))?,
            op::ISZERO => {
                let a = frame.stack.pop()?;
                frame.stack.push(U256::from(a.is_zero()))?;
            }
            op::AND => binary(frame, |a, b| a & b)?,
            op::OR => binary(frame, |a, b| a | b)?,
            op::XOR => binary(frame, |a, b| a ^ b)?,
            op::NOT => {
                let a = frame.stack.pop()?;
                frame.stack.push(!a)?;
            }
            op::BYTE => binary(frame, |i, x| x.byte_be(i))?,
            op::SHL => binary(frame, |shift, v| {
                v.shl_word(shift.try_into_u64().map(|s| s.min(256) as u32).unwrap_or(256))
            })?,
            op::SHR => binary(frame, |shift, v| {
                v.shr_word(shift.try_into_u64().map(|s| s.min(256) as u32).unwrap_or(256))
            })?,
            op::SAR => binary(frame, |shift, v| {
                v.sar_word(shift.try_into_u64().map(|s| s.min(256) as u32).unwrap_or(256))
            })?,

            // --- Keccak -----------------------------------------------------
            op::KECCAK256 => {
                let offset = frame.stack.pop()?;
                let len = frame.stack.pop()?;
                let (offset, len) = charge_memory(frame, offset, len)?;
                if !frame.gas.charge(gas::keccak_cost(len)) {
                    return Err(VmError::OutOfGas);
                }
                let data = frame.memory.load_slice(offset, len);
                frame.stack.push(tape_crypto::keccak256(&data).into_u256())?;
            }

            // --- Frame state / environment ---------------------------------
            op::ADDRESS => frame.stack.push(frame.address.into_word())?,
            op::BALANCE => {
                let addr = Address::from_word(frame.stack.pop()?);
                let (info, is_cold) = self.state.load_account(addr);
                self.inspector.state_access(&StateAccess::Account(addr));
                if !frame.gas.charge(gas::account_access_cost(is_cold)) {
                    return Err(VmError::OutOfGas);
                }
                frame.stack.push(info.balance)?;
            }
            op::ORIGIN => frame.stack.push(self.origin.into_word())?,
            op::CALLER => frame.stack.push(frame.caller.into_word())?,
            op::CALLVALUE => frame.stack.push(frame.value)?,
            op::CALLDATALOAD => {
                let offset = frame.stack.pop()?;
                let mut word = [0u8; 32];
                if let Some(off) = offset.try_into_usize() {
                    for (i, byte) in word.iter_mut().enumerate() {
                        *byte = off
                            .checked_add(i)
                            .and_then(|p| frame.input.get(p))
                            .copied()
                            .unwrap_or(0);
                    }
                }
                frame.stack.push(U256::from_be_bytes(word))?;
            }
            op::CALLDATASIZE => frame.stack.push(U256::from(frame.input.len()))?,
            op::CALLDATACOPY => {
                let (dst, src, len) = copy_params(frame)?;
                let input = std::mem::take(&mut frame.input);
                frame.memory.store_slice_padded(dst, &input, src, len);
                frame.input = input;
            }
            op::CODESIZE => frame.stack.push(U256::from(frame.code.len()))?,
            op::CODECOPY => {
                let (dst, src, len) = copy_params(frame)?;
                let code = Arc::clone(&frame.code);
                frame.memory.store_slice_padded(dst, &code, src, len);
            }
            op::GASPRICE => frame.stack.push(self.gas_price)?,
            op::EXTCODESIZE => {
                let addr = Address::from_word(frame.stack.pop()?);
                let (info, is_cold) = self.state.load_account(addr);
                self.inspector.state_access(&StateAccess::Account(addr));
                if !frame.gas.charge(gas::account_access_cost(is_cold)) {
                    return Err(VmError::OutOfGas);
                }
                frame.stack.push(U256::from(info.code_len))?;
            }
            op::EXTCODECOPY => {
                let addr = Address::from_word(frame.stack.pop()?);
                let (_, is_cold) = self.state.load_account(addr);
                if !frame.gas.charge(gas::account_access_cost(is_cold)) {
                    return Err(VmError::OutOfGas);
                }
                let (dst, src, len) = copy_params(frame)?;
                let code = self.state.code(&addr);
                self.inspector.state_access(&StateAccess::Code(addr, code.len()));
                frame.memory.store_slice_padded(dst, &code, src, len);
            }
            op::RETURNDATASIZE => frame.stack.push(U256::from(frame.return_data.len()))?,
            op::RETURNDATACOPY => {
                let dst = frame.stack.pop()?;
                let src = frame.stack.pop()?;
                let len = frame.stack.pop()?;
                let src = src.try_into_usize().ok_or(VmError::ReturnDataOutOfBounds)?;
                let len_usize = len.try_into_usize().ok_or(VmError::ReturnDataOutOfBounds)?;
                if src.saturating_add(len_usize) > frame.return_data.len() {
                    return Err(VmError::ReturnDataOutOfBounds);
                }
                let (dst, len) = charge_memory(frame, dst, len)?;
                if !frame.gas.charge(gas::copy_cost(len)) {
                    return Err(VmError::OutOfGas);
                }
                let data = std::mem::take(&mut frame.return_data);
                frame.memory.store_slice_padded(dst, &data, src, len);
                frame.return_data = data;
            }
            op::EXTCODEHASH => {
                let addr = Address::from_word(frame.stack.pop()?);
                let (_, is_cold) = self.state.load_account(addr);
                self.inspector.state_access(&StateAccess::Account(addr));
                if !frame.gas.charge(gas::account_access_cost(is_cold)) {
                    return Err(VmError::OutOfGas);
                }
                frame.stack.push(self.state.code_hash(&addr).into_u256())?;
            }
            op::BLOCKHASH => {
                let number = frame.stack.pop()?;
                let hash = match number.try_into_u64() {
                    Some(n)
                        if n < self.env.block_number
                            && self.env.block_number - n <= 256 =>
                    {
                        self.state.reader().block_hash(n)
                    }
                    _ => B256::ZERO,
                };
                frame.stack.push(hash.into_u256())?;
            }
            op::COINBASE => frame.stack.push(self.env.coinbase.into_word())?,
            op::TIMESTAMP => frame.stack.push(U256::from(self.env.timestamp))?,
            op::NUMBER => frame.stack.push(U256::from(self.env.block_number))?,
            op::PREVRANDAO => frame.stack.push(self.env.prevrandao.into_u256())?,
            op::GASLIMIT => frame.stack.push(U256::from(self.env.gas_limit))?,
            op::CHAINID => frame.stack.push(U256::from(self.env.chain_id))?,
            op::SELFBALANCE => {
                let balance = self.state.balance(&frame.address);
                frame.stack.push(balance)?;
            }
            op::BASEFEE => frame.stack.push(self.env.base_fee)?,

            // --- Stack ------------------------------------------------------
            op::POP => {
                frame.stack.pop()?;
            }
            op::PUSH0 => frame.stack.push(U256::ZERO)?,
            _ if opcode::is_push(opcode) => {
                let n = opcode::immediate_len(opcode);
                let start = (pc + 1).min(frame.code.len());
                let end = (pc + 1 + n).min(frame.code.len());
                let bytes = &frame.code[start..end];
                // Truncated push data is zero-padded on the right.
                let mut word = [0u8; 32];
                word[32 - n..32 - n + bytes.len()].copy_from_slice(bytes);
                frame.stack.push(U256::from_be_bytes(word))?;
                frame.pc = pc + 1 + n;
            }
            _ if (op::DUP1..=op::DUP16).contains(&opcode) => {
                frame.stack.dup((opcode - op::DUP1 + 1) as usize)?;
            }
            _ if (op::SWAP1..=op::SWAP16).contains(&opcode) => {
                frame.stack.swap((opcode - op::SWAP1 + 1) as usize)?;
            }

            // --- Memory -----------------------------------------------------
            op::MLOAD => {
                let offset = frame.stack.pop()?;
                let (offset, _) = charge_memory(frame, offset, U256::from(32u64))?;
                let word = frame.memory.load_word(offset);
                frame.stack.push(word)?;
            }
            op::MSTORE => {
                let offset = frame.stack.pop()?;
                let value = frame.stack.pop()?;
                let (offset, _) = charge_memory(frame, offset, U256::from(32u64))?;
                frame.memory.store_word(offset, value);
            }
            op::MSTORE8 => {
                let offset = frame.stack.pop()?;
                let value = frame.stack.pop()?;
                let (offset, _) = charge_memory(frame, offset, U256::ONE)?;
                frame.memory.store_byte(offset, value.low_u64() as u8);
            }
            op::MSIZE => frame.stack.push(U256::from(frame.memory.size()))?,
            op::MCOPY => {
                let dst = frame.stack.pop()?;
                let src = frame.stack.pop()?;
                let len = frame.stack.pop()?;
                if !len.is_zero() {
                    let max = if dst > src { dst } else { src };
                    let (_, len_usize) = charge_memory(frame, max, len)?;
                    if !frame.gas.charge(gas::copy_cost(len_usize)) {
                        return Err(VmError::OutOfGas);
                    }
                    let dst = dst.try_into_usize().ok_or(VmError::MemoryOverflow)?;
                    let src = src.try_into_usize().ok_or(VmError::MemoryOverflow)?;
                    frame.memory.copy_within(dst, src, len_usize);
                }
            }

            // --- Storage ----------------------------------------------------
            op::SLOAD => {
                let key = frame.stack.pop()?;
                let result = self.state.sload(&frame.address, &key);
                self.inspector
                    .state_access(&StateAccess::StorageRead(frame.address, key));
                if !frame.gas.charge(gas::sload_cost(result.is_cold)) {
                    return Err(VmError::OutOfGas);
                }
                frame.stack.push(result.value)?;
            }
            op::SSTORE => {
                if frame.is_static {
                    return Err(VmError::StaticViolation);
                }
                if frame.gas.remaining() <= gas::SSTORE_SENTRY {
                    return Err(VmError::OutOfGas);
                }
                let key = frame.stack.pop()?;
                let value = frame.stack.pop()?;
                let result = self.state.sstore(&frame.address, &key, value);
                self.inspector
                    .state_access(&StateAccess::StorageWrite(frame.address, key, value));
                let (cost, refund) =
                    gas::sstore_cost(result.original, result.current, result.new, result.is_cold);
                if !frame.gas.charge(cost) {
                    return Err(VmError::OutOfGas);
                }
                self.refund += refund;
            }
            op::TLOAD => {
                let key = frame.stack.pop()?;
                let value = self.state.tload(&frame.address, &key);
                frame.stack.push(value)?;
            }
            op::TSTORE => {
                if frame.is_static {
                    return Err(VmError::StaticViolation);
                }
                let key = frame.stack.pop()?;
                let value = frame.stack.pop()?;
                self.state.tstore(&frame.address, &key, value);
            }

            // --- Control flow -----------------------------------------------
            op::JUMP => {
                let target = frame.stack.pop()?;
                frame.pc = validate_jump(frame, target)?;
            }
            op::JUMPI => {
                let target = frame.stack.pop()?;
                let condition = frame.stack.pop()?;
                if !condition.is_zero() {
                    frame.pc = validate_jump(frame, target)?;
                }
            }
            op::PC => frame.stack.push(U256::from(pc))?,
            op::GAS => frame.stack.push(U256::from(frame.gas.remaining()))?,
            op::JUMPDEST => {}

            // --- Logs -------------------------------------------------------
            _ if (op::LOG0..=op::LOG4).contains(&opcode) => {
                if frame.is_static {
                    return Err(VmError::StaticViolation);
                }
                let topic_count = (opcode - op::LOG0) as usize;
                let offset = frame.stack.pop()?;
                let len = frame.stack.pop()?;
                let mut topics = Vec::with_capacity(topic_count);
                for _ in 0..topic_count {
                    topics.push(B256::from(frame.stack.pop()?));
                }
                let (offset, len) = charge_memory(frame, offset, len)?;
                if !frame.gas.charge(gas::LOG_DATA_BYTE * len as u64) {
                    return Err(VmError::OutOfGas);
                }
                let data = frame.memory.load_slice(offset, len);
                self.state.log(Log { address: frame.address, topics, data });
            }

            // --- CALL-RETURN family ------------------------------------------
            op::RETURN => {
                let offset = frame.stack.pop()?;
                let len = frame.stack.pop()?;
                let (offset, len) = charge_memory(frame, offset, len)?;
                let data = frame.memory.load_slice(offset, len);
                return Ok(StepAction::Done(FrameOutcome::Return(data)));
            }
            op::REVERT => {
                let offset = frame.stack.pop()?;
                let len = frame.stack.pop()?;
                let (offset, len) = charge_memory(frame, offset, len)?;
                let data = frame.memory.load_slice(offset, len);
                return Ok(StepAction::Done(FrameOutcome::Revert(data)));
            }
            op::INVALID => return Err(VmError::InvalidOpcode(op::INVALID)),
            op::SELFDESTRUCT => {
                if frame.is_static {
                    return Err(VmError::StaticViolation);
                }
                let beneficiary = Address::from_word(frame.stack.pop()?);
                let (info, is_cold) = self.state.load_account(beneficiary);
                let mut cost = 0u64;
                if is_cold {
                    cost += gas::COLD_ACCOUNT_ACCESS;
                }
                let balance = self.state.balance(&frame.address);
                if info.is_empty() && !balance.is_zero() {
                    cost += gas::SELFDESTRUCT_NEW_ACCOUNT;
                }
                if !frame.gas.charge(cost) {
                    return Err(VmError::OutOfGas);
                }
                self.state.selfdestruct(&frame.address, &beneficiary);
                return Ok(StepAction::Done(FrameOutcome::SelfDestruct));
            }
            op::CALL | op::CALLCODE | op::DELEGATECALL | op::STATICCALL => {
                return self.op_call(frame, opcode);
            }
            op::CREATE | op::CREATE2 => {
                return self.op_create(frame, opcode);
            }

            _ => return Err(VmError::InvalidOpcode(opcode)),
        }

        Ok(StepAction::Continue)
    }

    /// CALL / CALLCODE / DELEGATECALL / STATICCALL: validates, charges
    /// gas, and yields a [`StepAction::SubCall`] for the iterative driver.
    fn op_call(&mut self, frame: &mut Frame, opcode: u8) -> Result<StepAction, VmError> {
        let gas_requested = frame.stack.pop()?;
        let target = Address::from_word(frame.stack.pop()?);
        let value = match opcode {
            op::CALL | op::CALLCODE => frame.stack.pop()?,
            _ => U256::ZERO,
        };
        let in_offset = frame.stack.pop()?;
        let in_len = frame.stack.pop()?;
        let out_offset = frame.stack.pop()?;
        let out_len = frame.stack.pop()?;

        if opcode == op::CALL && !value.is_zero() && frame.is_static {
            return Err(VmError::StaticViolation);
        }

        // Memory for both input and output ranges.
        let (in_offset, in_len) = charge_memory(frame, in_offset, in_len)?;
        let (out_offset, out_len) = charge_memory(frame, out_offset, out_len)?;
        let input = frame.memory.load_slice(in_offset, in_len);

        // EIP-2929 account access.
        let (target_info, is_cold) = self.state.load_account(target);
        if !frame.gas.charge(gas::account_access_cost(is_cold)) {
            return Err(VmError::OutOfGas);
        }

        let mut extra = 0u64;
        let mut stipend = 0u64;
        if !value.is_zero() {
            extra += gas::CALL_VALUE;
            stipend = gas::CALL_STIPEND;
            if opcode == op::CALL && target_info.is_empty() && !self.state.exists(target) {
                extra += gas::CALL_NEW_ACCOUNT;
            }
        }
        if !frame.gas.charge(extra) {
            return Err(VmError::OutOfGas);
        }

        // EIP-150 gas forwarding.
        let forwardable = frame.gas.forwardable();
        let child_gas = match gas_requested.try_into_u64() {
            Some(g) => g.min(forwardable),
            None => forwardable,
        };
        if !frame.gas.charge(child_gas) {
            return Err(VmError::OutOfGas);
        }
        let child_gas = child_gas + stipend;

        // Depth limit and balance check: fail the call without executing.
        if frame.depth >= gas::CALL_DEPTH_LIMIT
            || (!value.is_zero() && self.state.balance(&frame.address) < value)
        {
            frame.gas.reclaim(child_gas - stipend);
            frame.return_data.clear();
            frame.stack.push(U256::ZERO)?;
            return Ok(StepAction::Continue);
        }

        let msg = match opcode {
            op::CALL => CallMsg {
                caller: frame.address,
                address: target,
                code_address: target,
                value,
                transfers_value: true,
                input,
                gas: child_gas,
                is_static: frame.is_static,
                depth: frame.depth + 1,
            },
            op::CALLCODE => CallMsg {
                caller: frame.address,
                address: frame.address,
                code_address: target,
                value,
                transfers_value: false,
                input,
                gas: child_gas,
                is_static: frame.is_static,
                depth: frame.depth + 1,
            },
            op::DELEGATECALL => CallMsg {
                caller: frame.caller,
                address: frame.address,
                code_address: target,
                value: frame.value,
                transfers_value: false,
                input,
                gas: child_gas,
                is_static: frame.is_static,
                depth: frame.depth + 1,
            },
            _ => CallMsg {
                caller: frame.address,
                address: target,
                code_address: target,
                value: U256::ZERO,
                transfers_value: false,
                input,
                gas: child_gas,
                is_static: true,
                depth: frame.depth + 1,
            },
        };
        Ok(StepAction::SubCall { msg, out_offset, out_len })
    }

    /// CREATE / CREATE2: validates, charges gas, and yields a
    /// [`StepAction::SubCreate`] for the iterative driver.
    fn op_create(&mut self, frame: &mut Frame, opcode: u8) -> Result<StepAction, VmError> {
        if frame.is_static {
            return Err(VmError::StaticViolation);
        }
        let value = frame.stack.pop()?;
        let offset = frame.stack.pop()?;
        let len = frame.stack.pop()?;
        let salt = if opcode == op::CREATE2 { Some(frame.stack.pop()?) } else { None };

        let (offset, len) = charge_memory(frame, offset, len)?;
        if len > gas::MAX_INITCODE_SIZE {
            return Err(VmError::InitcodeSizeExceeded);
        }
        // EIP-3860 initcode metering, plus hashing for CREATE2.
        if !frame.gas.charge(gas::INITCODE_WORD * gas::words(len)) {
            return Err(VmError::OutOfGas);
        }
        if salt.is_some() && !frame.gas.charge(gas::keccak_cost(len)) {
            return Err(VmError::OutOfGas);
        }
        let initcode = frame.memory.load_slice(offset, len);

        // Forward all-but-1/64th.
        let child_gas = frame.gas.forwardable();
        if !frame.gas.charge(child_gas) {
            return Err(VmError::OutOfGas);
        }

        if frame.depth >= gas::CALL_DEPTH_LIMIT
            || self.state.balance(&frame.address) < value
        {
            frame.gas.reclaim(child_gas);
            frame.return_data.clear();
            frame.stack.push(U256::ZERO)?;
            return Ok(StepAction::Continue);
        }

        let nonce = self.state.inc_nonce(&frame.address);
        let created = match salt {
            Some(salt) => create2_address(&frame.address, &salt, &initcode),
            None => create_address(&frame.address, nonce),
        };

        Ok(StepAction::SubCreate { created, value, initcode, gas: child_gas })
    }
}

/// Applies a completed child's outcome to its parent frame: reclaims
/// leftover gas, installs ReturnData, copies output into memory, and
/// pushes the result word. The pushes cannot overflow: the triggering
/// opcode popped at least three words.
fn apply_resume(frame: &mut Frame, resume: &Resume, outcome: CallOutcome) {
    frame.gas.reclaim(outcome.gas_left);
    // The result-word pushes below cannot fail: CALL/CREATE popped at
    // least three operands, so a slot is free. A push onto a full stack
    // would be an interpreter bug, not a recoverable condition, and the
    // next pop would surface it as a stack underflow — so the result is
    // deliberately discarded rather than panicking mid-bundle.
    match resume {
        Resume::Call { out_offset, out_len } => {
            let copy_len = (*out_len).min(outcome.output.len());
            if copy_len > 0 {
                frame.memory.store_slice(*out_offset, &outcome.output[..copy_len]);
            }
            frame.return_data = outcome.output;
            let _ = frame.stack.push(U256::from(outcome.success));
        }
        Resume::Create { created } => {
            if outcome.success {
                frame.return_data.clear();
                let _ = frame.stack.push(created.into_word());
            } else {
                // Revert payload becomes ReturnData; halts leave it empty.
                frame.return_data = outcome.output;
                let _ = frame.stack.push(U256::ZERO);
            }
        }
    }
}

/// `keccak256(rlp([sender, nonce]))[12..]` — the CREATE address rule.
pub fn create_address(sender: &Address, nonce: u64) -> Address {
    let encoded = rlp::encode_list(&[rlp::encode_address(sender), rlp::encode_u64(nonce)]);
    Address::from_slice(&tape_crypto::keccak256(encoded).as_bytes()[12..])
}

/// `keccak256(0xff ++ sender ++ salt ++ keccak256(initcode))[12..]` —
/// the CREATE2 address rule.
pub fn create2_address(sender: &Address, salt: &U256, initcode: &[u8]) -> Address {
    let mut buf = Vec::with_capacity(85);
    buf.push(0xff);
    buf.extend_from_slice(sender.as_bytes());
    buf.extend_from_slice(&salt.to_be_bytes());
    buf.extend_from_slice(tape_crypto::keccak256(initcode).as_bytes());
    Address::from_slice(&tape_crypto::keccak256(buf).as_bytes()[12..])
}

fn binary(frame: &mut Frame, f: impl FnOnce(U256, U256) -> U256) -> Result<(), VmError> {
    let a = frame.stack.pop()?;
    let b = frame.stack.pop()?;
    frame.stack.push(f(a, b))?;
    Ok(())
}

fn ternary(frame: &mut Frame, f: impl FnOnce(U256, U256, U256) -> U256) -> Result<(), VmError> {
    let a = frame.stack.pop()?;
    let b = frame.stack.pop()?;
    let c = frame.stack.pop()?;
    frame.stack.push(f(a, b, c))?;
    Ok(())
}

/// Charges memory-expansion gas for `offset..offset+len` and expands the
/// frame memory. Returns the resolved `(offset, len)` in `usize`.
fn charge_memory(frame: &mut Frame, offset: U256, len: U256) -> Result<(usize, usize), VmError> {
    let len = len.try_into_usize().ok_or(VmError::MemoryOverflow)?;
    if len == 0 {
        return Ok((0, 0));
    }
    let offset = offset.try_into_usize().ok_or(VmError::MemoryOverflow)?;
    // Cap metering at 2^37 bytes: expansion gas past that exceeds any
    // realistic gas limit anyway, and this guards usize arithmetic.
    let end = offset.checked_add(len).ok_or(VmError::MemoryOverflow)?;
    if end > (1usize << 37) {
        return Err(VmError::MemoryOverflow);
    }
    let cost = gas::memory_expansion_cost(frame.memory.size(), frame.memory.required_size(offset, len));
    if !frame.gas.charge(cost) {
        return Err(VmError::OutOfGas);
    }
    frame.memory.expand(offset, len);
    Ok((offset, len))
}

/// Pops and validates the operands of a copy instruction
/// (CALLDATACOPY/CODECOPY), charging memory and per-word copy gas.
fn copy_params(frame: &mut Frame) -> Result<(usize, usize, usize), VmError> {
    let dst = frame.stack.pop()?;
    let src = frame.stack.pop()?;
    let len = frame.stack.pop()?;
    let (dst, len) = charge_memory(frame, dst, len)?;
    if !frame.gas.charge(gas::copy_cost(len)) {
        return Err(VmError::OutOfGas);
    }
    // A huge source offset with zero/padded reads is fine: reads past the
    // end produce zeros.
    let src = src.try_into_usize().unwrap_or(usize::MAX);
    Ok((dst, src, len))
}

fn validate_jump(frame: &Frame, target: U256) -> Result<usize, VmError> {
    let target = target.try_into_usize().ok_or(VmError::InvalidJump)?;
    if !frame.jump_table.is_valid(target) {
        return Err(VmError::InvalidJump);
    }
    Ok(target)
}
