//! Precompiled contracts at addresses 0x1–0x9.
//!
//! Implemented: `ecrecover` (0x1), `sha256` (0x2), `identity` (0x4) —
//! the three that real-world transaction mixes exercise most. The
//! remaining addresses are treated as empty accounts (documented
//! substitution in DESIGN.md).

use tape_crypto::{secp, sha256};
use tape_primitives::{Address, B256, U256};

/// Highest precompile address considered warm at transaction start.
pub const PRECOMPILE_COUNT: u64 = 9;

/// Returns `true` if `address` designates a precompiled contract.
pub fn is_precompile(address: &Address) -> bool {
    let word = address.into_word();
    !word.is_zero() && word <= U256::from(PRECOMPILE_COUNT)
}

/// Output of a precompile run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrecompileOutput {
    /// Gas consumed.
    pub gas_used: u64,
    /// Returned bytes (empty on soft failure, e.g. bad ecrecover input).
    pub output: Vec<u8>,
    /// `false` only when the provided gas was insufficient.
    pub success: bool,
}

/// Executes the precompile at `address`.
///
/// Unimplemented precompile addresses behave as empty accounts: success,
/// no output, no gas beyond the call itself.
pub fn run(address: &Address, input: &[u8], gas_limit: u64) -> PrecompileOutput {
    match address.into_word().try_into_u64() {
        Some(1) => ecrecover(input, gas_limit),
        Some(2) => sha256_precompile(input, gas_limit),
        Some(4) => identity(input, gas_limit),
        _ => PrecompileOutput { gas_used: 0, output: Vec::new(), success: true },
    }
}

fn out_of_gas() -> PrecompileOutput {
    PrecompileOutput { gas_used: 0, output: Vec::new(), success: false }
}

fn ecrecover(input: &[u8], gas_limit: u64) -> PrecompileOutput {
    const GAS: u64 = 3_000;
    if gas_limit < GAS {
        return out_of_gas();
    }
    // Input: 32-byte hash, 32-byte v (27/28), 32-byte r, 32-byte s —
    // right-padded with zeros.
    let mut buf = [0u8; 128];
    let take = input.len().min(128);
    buf[..take].copy_from_slice(&input[..take]);

    let digest = B256::from_slice(&buf[..32]);
    let v_word = U256::from_be_slice(&buf[32..64]);
    let r = U256::from_be_slice(&buf[64..96]);
    let s = U256::from_be_slice(&buf[96..128]);

    let empty = PrecompileOutput { gas_used: GAS, output: Vec::new(), success: true };
    let v = match v_word.try_into_u64() {
        Some(27) => 0u8,
        Some(28) => 1u8,
        _ => return empty,
    };
    let sig = secp::Signature { r, s, v };
    match secp::recover(&digest, &sig) {
        Ok(pk) => {
            let mut output = vec![0u8; 32];
            output[12..].copy_from_slice(pk.to_eth_address().as_bytes());
            PrecompileOutput { gas_used: GAS, output, success: true }
        }
        Err(_) => empty,
    }
}

fn sha256_precompile(input: &[u8], gas_limit: u64) -> PrecompileOutput {
    let gas = 60 + 12 * crate::gas::words(input.len());
    if gas_limit < gas {
        return out_of_gas();
    }
    PrecompileOutput {
        gas_used: gas,
        output: sha256(input).as_bytes().to_vec(),
        success: true,
    }
}

fn identity(input: &[u8], gas_limit: u64) -> PrecompileOutput {
    let gas = 15 + 3 * crate::gas::words(input.len());
    if gas_limit < gas {
        return out_of_gas();
    }
    PrecompileOutput { gas_used: gas, output: input.to_vec(), success: true }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tape_crypto::{keccak256, SecretKey};

    fn precompile_addr(n: u64) -> Address {
        Address::from_low_u64(n)
    }

    #[test]
    fn address_classification() {
        assert!(is_precompile(&precompile_addr(1)));
        assert!(is_precompile(&precompile_addr(9)));
        assert!(!is_precompile(&precompile_addr(0)));
        assert!(!is_precompile(&precompile_addr(10)));
        assert!(!is_precompile(&Address::from_low_u64(0xdead)));
    }

    #[test]
    fn identity_copies() {
        let out = run(&precompile_addr(4), b"hello", 1_000);
        assert!(out.success);
        assert_eq!(out.output, b"hello");
        assert_eq!(out.gas_used, 15 + 3);
        // Insufficient gas.
        assert!(!run(&precompile_addr(4), b"hello", 10).success);
    }

    #[test]
    fn sha256_matches_library() {
        let out = run(&precompile_addr(2), b"abc", 1_000);
        assert!(out.success);
        assert_eq!(out.output, sha256(b"abc").as_bytes());
        assert_eq!(out.gas_used, 72);
    }

    #[test]
    fn ecrecover_roundtrip() {
        let sk = SecretKey::from_seed(b"precompile test");
        let digest = keccak256(b"message");
        let sig = sk.sign(&digest);

        let mut input = Vec::with_capacity(128);
        input.extend_from_slice(digest.as_bytes());
        let mut v = [0u8; 32];
        v[31] = 27 + sig.v;
        input.extend_from_slice(&v);
        input.extend_from_slice(&sig.r.to_be_bytes());
        input.extend_from_slice(&sig.s.to_be_bytes());

        let out = run(&precompile_addr(1), &input, 10_000);
        assert!(out.success);
        let expected = sk.public_key().to_eth_address();
        assert_eq!(&out.output[12..], expected.as_bytes());
        assert_eq!(&out.output[..12], &[0u8; 12]);
    }

    #[test]
    fn ecrecover_bad_v_returns_empty() {
        let mut input = vec![0u8; 128];
        input[63] = 29; // invalid v
        let out = run(&precompile_addr(1), &input, 10_000);
        assert!(out.success);
        assert!(out.output.is_empty());
        assert_eq!(out.gas_used, 3_000);
    }

    #[test]
    fn ecrecover_short_input_padded() {
        let out = run(&precompile_addr(1), &[1, 2, 3], 10_000);
        assert!(out.success);
        assert!(out.output.is_empty());
    }

    #[test]
    fn unimplemented_precompiles_act_empty() {
        for n in [3u64, 5, 6, 7, 8, 9] {
            let out = run(&precompile_addr(n), b"data", 100);
            assert!(out.success);
            assert!(out.output.is_empty());
            assert_eq!(out.gas_used, 0);
        }
    }
}
