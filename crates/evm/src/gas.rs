//! Gas metering: constants and dynamic-cost helpers.
//!
//! Ruleset: "Cancun-lite" — EIP-2929 warm/cold access lists, EIP-2200 +
//! EIP-3529 SSTORE metering and refunds, EIP-3860 initcode metering,
//! EIP-1153 transient storage, EIP-5656 MCOPY. Gas maintenance is the
//! paper's §IV-B "Gas maintenance": costs accrue as instructions are
//! interpreted, with dynamic parts driven by memory growth and warm/cold
//! state.

use tape_primitives::U256;

/// Base transaction cost.
pub const TX_BASE: u64 = 21_000;
/// Extra base cost of a contract-creating transaction.
pub const TX_CREATE: u64 = 32_000;
/// Calldata cost per zero byte.
pub const TX_DATA_ZERO: u64 = 4;
/// Calldata cost per nonzero byte.
pub const TX_DATA_NONZERO: u64 = 16;
/// Access-list: cost per address (EIP-2930).
pub const TX_ACCESS_LIST_ADDRESS: u64 = 2_400;
/// Access-list: cost per storage key (EIP-2930).
pub const TX_ACCESS_LIST_KEY: u64 = 1_900;
/// Initcode cost per 32-byte word (EIP-3860).
pub const INITCODE_WORD: u64 = 2;
/// Maximum initcode size (EIP-3860).
pub const MAX_INITCODE_SIZE: usize = 49_152;
/// Maximum deployed-code size (EIP-170).
pub const MAX_CODE_SIZE: usize = 24_576;

/// Warm state access (EIP-2929).
pub const WARM_ACCESS: u64 = 100;
/// Cold account access (EIP-2929).
pub const COLD_ACCOUNT_ACCESS: u64 = 2_600;
/// Cold storage-slot access (EIP-2929).
pub const COLD_SLOAD: u64 = 2_100;

/// SSTORE: setting a zero slot to nonzero.
pub const SSTORE_SET: u64 = 20_000;
/// SSTORE: changing an existing nonzero slot.
pub const SSTORE_RESET: u64 = 2_900;
/// Minimum gas that must remain for SSTORE (EIP-2200 sentry).
pub const SSTORE_SENTRY: u64 = 2_300;
/// Refund for clearing a slot to zero (EIP-3529).
pub const SSTORE_CLEARS_SCHEDULE: u64 = 4_800;

/// keccak256 cost per 32-byte word.
pub const KECCAK_WORD: u64 = 6;
/// Copy cost per 32-byte word.
pub const COPY_WORD: u64 = 3;
/// LOG cost per payload byte.
pub const LOG_DATA_BYTE: u64 = 8;
/// EXP cost per significant exponent byte.
pub const EXP_BYTE: u64 = 50;

/// Value-bearing call surcharge.
pub const CALL_VALUE: u64 = 9_000;
/// Gas stipend forwarded with a value-bearing call.
pub const CALL_STIPEND: u64 = 2_300;
/// Surcharge for calling into a nonexistent account with value.
pub const CALL_NEW_ACCOUNT: u64 = 25_000;
/// Surcharge when SELFDESTRUCT sends funds to a new account.
pub const SELFDESTRUCT_NEW_ACCOUNT: u64 = 25_000;
/// Per-byte cost of deployed code (CREATE data gas).
pub const CODE_DEPOSIT_BYTE: u64 = 200;
/// Maximum call depth.
pub const CALL_DEPTH_LIMIT: usize = 1024;

/// Number of 32-byte words needed to hold `bytes` bytes.
#[inline]
pub fn words(bytes: usize) -> u64 {
    (bytes as u64).div_ceil(32)
}

/// Total memory cost for a memory of `size` bytes:
/// `3·w + w²/512` where `w` is the word count.
#[inline]
pub fn memory_cost(size: usize) -> u64 {
    // u128 intermediates: `w * w` overflows u64 at w = 2^32 (a size the
    // metering cap permits an adversarial gas limit to reach).
    let w = words(size) as u128;
    (3 * w + w * w / 512).min(u64::MAX as u128) as u64
}

/// Marginal cost of growing memory from `current` to `target` bytes.
///
/// Saturation is sticky: once the target's total cost clamps at
/// `u64::MAX`, the marginal cost is `u64::MAX` too. Subtracting the
/// (possibly also clamped) current cost instead would report 0 —
/// making every expansion past the saturation point free rather than
/// unpayable.
#[inline]
pub fn memory_expansion_cost(current: usize, target: usize) -> u64 {
    if target <= current {
        return 0;
    }
    let target_cost = memory_cost(target);
    if target_cost == u64::MAX {
        u64::MAX
    } else {
        target_cost - memory_cost(current)
    }
}

/// Dynamic cost of `KECCAK256` over `len` bytes (excluding the base 30).
#[inline]
pub fn keccak_cost(len: usize) -> u64 {
    KECCAK_WORD * words(len)
}

/// Dynamic cost of a copy instruction over `len` bytes.
#[inline]
pub fn copy_cost(len: usize) -> u64 {
    COPY_WORD * words(len)
}

/// Dynamic cost of `EXP` for the given exponent.
#[inline]
pub fn exp_cost(exponent: &U256) -> u64 {
    let bytes = exponent.bits().div_ceil(8) as u64;
    EXP_BYTE * bytes
}

/// EIP-2929 account-access cost (BALANCE, EXTCODESIZE, CALL target, ...).
#[inline]
pub fn account_access_cost(is_cold: bool) -> u64 {
    if is_cold {
        COLD_ACCOUNT_ACCESS
    } else {
        WARM_ACCESS
    }
}

/// SLOAD cost under EIP-2929.
#[inline]
pub fn sload_cost(is_cold: bool) -> u64 {
    if is_cold {
        COLD_SLOAD + WARM_ACCESS
    } else {
        WARM_ACCESS
    }
}

/// SSTORE gas and refund delta under EIP-2200 + EIP-3529 + EIP-2929.
///
/// Returns `(gas_cost, refund_delta)`; the refund delta may be negative
/// (refund clawback when a previously-cleared slot is re-set).
pub fn sstore_cost(
    original: U256,
    current: U256,
    new: U256,
    is_cold: bool,
) -> (u64, i64) {
    let mut gas = if is_cold { COLD_SLOAD } else { 0 };
    let mut refund: i64 = 0;

    if current == new {
        gas += WARM_ACCESS; // no-op store
    } else if original == current {
        if original.is_zero() {
            gas += SSTORE_SET;
        } else {
            gas += SSTORE_RESET;
            if new.is_zero() {
                refund += SSTORE_CLEARS_SCHEDULE as i64;
            }
        }
    } else {
        gas += WARM_ACCESS; // dirty slot
        if !original.is_zero() {
            if current.is_zero() {
                refund -= SSTORE_CLEARS_SCHEDULE as i64;
            }
            if new.is_zero() {
                refund += SSTORE_CLEARS_SCHEDULE as i64;
            }
        }
        if original == new {
            if original.is_zero() {
                refund += (SSTORE_SET - WARM_ACCESS) as i64;
            } else {
                refund += (SSTORE_RESET - WARM_ACCESS) as i64;
            }
        }
    }
    (gas, refund)
}

/// Intrinsic gas of a transaction: base + calldata + create + access list.
pub fn intrinsic_gas(
    data: &[u8],
    is_create: bool,
    access_list_addresses: usize,
    access_list_keys: usize,
) -> u64 {
    let mut gas = TX_BASE;
    for &b in data {
        gas += if b == 0 { TX_DATA_ZERO } else { TX_DATA_NONZERO };
    }
    if is_create {
        gas += TX_CREATE + INITCODE_WORD * words(data.len());
    }
    gas += TX_ACCESS_LIST_ADDRESS * access_list_addresses as u64;
    gas += TX_ACCESS_LIST_KEY * access_list_keys as u64;
    gas
}

/// The gas counter for one frame: remaining gas plus the transaction-wide
/// refund accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gas {
    remaining: u64,
    limit: u64,
    refunded: i64,
}

impl Gas {
    /// A counter with the given limit, all of it remaining.
    pub fn new(limit: u64) -> Self {
        Gas { remaining: limit, limit, refunded: 0 }
    }

    /// Gas still available.
    #[inline]
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// The frame's gas limit.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Gas consumed so far.
    pub fn used(&self) -> u64 {
        self.limit - self.remaining
    }

    /// Accumulated refund (clamped at payout time).
    pub fn refunded(&self) -> i64 {
        self.refunded
    }

    /// Charges `amount`; returns `false` (leaving the counter untouched
    /// except for zeroing) on out-of-gas.
    #[inline]
    #[must_use]
    pub fn charge(&mut self, amount: u64) -> bool {
        if let Some(rest) = self.remaining.checked_sub(amount) {
            self.remaining = rest;
            true
        } else {
            self.remaining = 0;
            false
        }
    }

    /// Adds a refund delta.
    pub fn refund(&mut self, delta: i64) {
        self.refunded += delta;
    }

    /// Returns unused gas from a completed child frame.
    pub fn reclaim(&mut self, returned: u64) {
        self.remaining += returned;
    }

    /// Consumes everything (on exceptional halt).
    pub fn consume_all(&mut self) {
        self.remaining = 0;
    }

    /// EIP-150: the caller keeps 1/64th — the maximum gas forwardable to
    /// a child call.
    pub fn forwardable(&self) -> u64 {
        self.remaining - self.remaining / 64
    }

    /// Final refund payout per EIP-3529: at most `used / 5`.
    pub fn effective_refund(&self) -> u64 {
        let cap = self.used() / 5;
        (self.refunded.max(0) as u64).min(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_cost_quadratic() {
        assert_eq!(memory_cost(0), 0);
        assert_eq!(memory_cost(32), 3);
        assert_eq!(memory_cost(64), 6);
        // 1024 words = 32 KB: 3*1024 + 1024²/512 = 3072 + 2048 = 5120.
        assert_eq!(memory_cost(32 * 1024), 5120);
        assert_eq!(memory_expansion_cost(32, 64), 3);
        assert_eq!(memory_expansion_cost(64, 32), 0);
    }

    #[test]
    fn memory_expansion_saturation_is_sticky() {
        // The clamp engages near w ≈ 2^32·√(512)/√(1) … concretely,
        // 3·w + w²/512 > u64::MAX once w exceeds ~9.7e10 words. Any
        // size that large must cost u64::MAX in total…
        let saturated = usize::MAX;
        assert_eq!(memory_cost(saturated), u64::MAX);
        // …and growing *within* the saturated region must stay
        // unpayable, not become free because both endpoints clamp.
        assert_eq!(memory_expansion_cost(saturated - 64, saturated), u64::MAX);
        assert_eq!(memory_expansion_cost(0, saturated), u64::MAX);
        // Shrinking or standing still is still free.
        assert_eq!(memory_expansion_cost(saturated, saturated), 0);
        assert_eq!(memory_expansion_cost(saturated, saturated - 64), 0);
        // Unsaturated growth keeps the exact quadratic delta.
        assert_eq!(memory_expansion_cost(32, 64), 3);
    }

    #[test]
    fn word_rounding() {
        assert_eq!(words(0), 0);
        assert_eq!(words(1), 1);
        assert_eq!(words(32), 1);
        assert_eq!(words(33), 2);
    }

    #[test]
    fn exp_cost_by_exponent_width() {
        assert_eq!(exp_cost(&U256::ZERO), 0);
        assert_eq!(exp_cost(&U256::from(255u64)), 50);
        assert_eq!(exp_cost(&U256::from(256u64)), 100);
        assert_eq!(exp_cost(&U256::MAX), 50 * 32);
    }

    #[test]
    fn sstore_fresh_set_and_clear() {
        let z = U256::ZERO;
        let one = U256::ONE;
        // 0 -> 1 on a warm slot: SET.
        assert_eq!(sstore_cost(z, z, one, false), (SSTORE_SET, 0));
        // 1 -> 0: RESET + clear refund.
        assert_eq!(
            sstore_cost(one, one, z, false),
            (SSTORE_RESET, SSTORE_CLEARS_SCHEDULE as i64)
        );
        // no-op: warm access only.
        assert_eq!(sstore_cost(one, one, one, false), (WARM_ACCESS, 0));
        // cold adds COLD_SLOAD.
        assert_eq!(sstore_cost(z, z, one, true), (COLD_SLOAD + SSTORE_SET, 0));
    }

    #[test]
    fn sstore_dirty_slot_refund_dance() {
        let z = U256::ZERO;
        let one = U256::ONE;
        let two = U256::from(2u64);
        // original=1, current=0 (was cleared earlier), new=2:
        // clawback of the earlier clear refund.
        assert_eq!(
            sstore_cost(one, z, two, false),
            (WARM_ACCESS, -(SSTORE_CLEARS_SCHEDULE as i64))
        );
        // original=1, current=2, new=1: restored to original -> RESET-100 refund.
        assert_eq!(
            sstore_cost(one, two, one, false),
            (WARM_ACCESS, (SSTORE_RESET - WARM_ACCESS) as i64)
        );
        // original=0, current=1, new=0: restored to zero -> SET-100 refund
        // plus the clears refund does not apply (original was zero).
        assert_eq!(
            sstore_cost(z, one, z, false),
            (WARM_ACCESS, (SSTORE_SET - WARM_ACCESS) as i64)
        );
    }

    #[test]
    fn intrinsic_gas_examples() {
        assert_eq!(intrinsic_gas(&[], false, 0, 0), 21_000);
        assert_eq!(intrinsic_gas(&[0, 0, 1], false, 0, 0), 21_000 + 4 + 4 + 16);
        assert_eq!(
            intrinsic_gas(&[1; 32], true, 0, 0),
            21_000 + 32 * 16 + 32_000 + 2
        );
        assert_eq!(
            intrinsic_gas(&[], false, 2, 3),
            21_000 + 2 * 2_400 + 3 * 1_900
        );
    }

    #[test]
    fn gas_counter_mechanics() {
        let mut gas = Gas::new(100);
        assert!(gas.charge(40));
        assert_eq!(gas.remaining(), 60);
        assert_eq!(gas.used(), 40);
        assert!(!gas.charge(100));
        assert_eq!(gas.remaining(), 0);
        gas.reclaim(30);
        assert_eq!(gas.remaining(), 30);
    }

    #[test]
    fn forwardable_keeps_64th() {
        let gas = Gas::new(6400);
        assert_eq!(gas.forwardable(), 6400 - 100);
    }

    #[test]
    fn refund_cap() {
        let mut gas = Gas::new(1000);
        assert!(gas.charge(500));
        gas.refund(1_000_000);
        assert_eq!(gas.effective_refund(), 100); // 500 / 5
        gas.refund(-2_000_000);
        assert_eq!(gas.effective_refund(), 0); // negative clamps to zero
    }
}
