//! The byte-addressed EVM memory ("Memory" in the paper's memory-like
//! taxonomy): arbitrary length, unaligned access allowed, volatile.

use tape_primitives::U256;

/// EVM memory for one execution frame, growing in 32-byte words.
///
/// # Examples
///
/// ```
/// use tape_evm::Memory;
/// use tape_primitives::U256;
///
/// let mut mem = Memory::new();
/// mem.store_word(0, U256::from(0xABu64));
/// assert_eq!(mem.load_word(0), U256::from(0xABu64));
/// assert_eq!(mem.size(), 32);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memory {
    data: Vec<u8>,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Memory { data: Vec::new() }
    }

    /// Current size in bytes (always a multiple of 32).
    #[inline]
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Size needed (word-aligned) to access `offset..offset+len`; equals
    /// the current size when no growth is needed or `len == 0`.
    pub fn required_size(&self, offset: usize, len: usize) -> usize {
        if len == 0 {
            return self.data.len();
        }
        let end = offset.saturating_add(len);
        let aligned = end.div_ceil(32) * 32;
        aligned.max(self.data.len())
    }

    /// Grows memory to cover `offset..offset+len` (no-op for `len == 0`).
    pub fn expand(&mut self, offset: usize, len: usize) {
        let required = self.required_size(offset, len);
        if required > self.data.len() {
            self.data.resize(required, 0);
        }
    }

    /// Loads the 32-byte word at `offset`, expanding as needed.
    pub fn load_word(&mut self, offset: usize) -> U256 {
        self.expand(offset, 32);
        let mut buf = [0u8; 32];
        buf.copy_from_slice(&self.data[offset..offset + 32]);
        U256::from_be_bytes(buf)
    }

    /// Stores a 32-byte word at `offset`, expanding as needed.
    pub fn store_word(&mut self, offset: usize, value: U256) {
        self.expand(offset, 32);
        self.data[offset..offset + 32].copy_from_slice(&value.to_be_bytes());
    }

    /// Stores a single byte (`MSTORE8`).
    pub fn store_byte(&mut self, offset: usize, value: u8) {
        self.expand(offset, 1);
        self.data[offset] = value;
    }

    /// Copies a slice into memory, expanding as needed.
    pub fn store_slice(&mut self, offset: usize, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        self.expand(offset, data.len());
        self.data[offset..offset + data.len()].copy_from_slice(data);
    }

    /// Copies from an external buffer with zero-fill past its end — the
    /// semantics of `CALLDATACOPY`/`CODECOPY`/`EXTCODECOPY`.
    pub fn store_slice_padded(&mut self, offset: usize, src: &[u8], src_offset: usize, len: usize) {
        if len == 0 {
            return;
        }
        self.expand(offset, len);
        for i in 0..len {
            // checked_add: a sentinel src_offset of usize::MAX must read
            // as zero-padding, not wrap around to the buffer start.
            self.data[offset + i] = src_offset
                .checked_add(i)
                .and_then(|p| src.get(p))
                .copied()
                .unwrap_or(0);
        }
    }

    /// Reads `len` bytes starting at `offset`, expanding as needed.
    pub fn load_slice(&mut self, offset: usize, len: usize) -> Vec<u8> {
        if len == 0 {
            return Vec::new();
        }
        self.expand(offset, len);
        self.data[offset..offset + len].to_vec()
    }

    /// `MCOPY`: overlapping-safe memory-to-memory copy.
    pub fn copy_within(&mut self, dst: usize, src: usize, len: usize) {
        if len == 0 {
            return;
        }
        let needed = dst.max(src);
        self.expand(needed, len);
        self.data.copy_within(src..src + len, dst);
    }

    /// A view of the raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_roundtrip_and_alignment() {
        let mut m = Memory::new();
        m.store_word(5, U256::from(0xFFu64)); // unaligned store
        assert_eq!(m.load_word(5), U256::from(0xFFu64));
        // 5 + 32 = 37 -> rounded up to 64.
        assert_eq!(m.size(), 64);
    }

    #[test]
    fn zero_length_access_does_not_expand() {
        let mut m = Memory::new();
        m.expand(1_000_000, 0);
        assert_eq!(m.size(), 0);
        assert_eq!(m.required_size(1_000_000, 0), 0);
        m.store_slice(500, &[]);
        assert_eq!(m.size(), 0);
    }

    #[test]
    fn fresh_memory_reads_zero() {
        let mut m = Memory::new();
        assert_eq!(m.load_word(100), U256::ZERO);
        assert_eq!(m.size(), 160); // 132 -> 160
    }

    #[test]
    fn store_byte() {
        let mut m = Memory::new();
        m.store_byte(31, 0xAA);
        assert_eq!(m.load_word(0), U256::from(0xAAu64));
        assert_eq!(m.size(), 32);
    }

    #[test]
    fn padded_copy_zero_fills() {
        let mut m = Memory::new();
        let src = [1u8, 2, 3];
        m.store_slice_padded(0, &src, 1, 5); // reads [2, 3, 0, 0, 0]
        assert_eq!(&m.as_bytes()[..5], &[2, 3, 0, 0, 0]);
        m.store_slice_padded(10, &src, 100, 3); // fully past the end
        assert_eq!(&m.as_bytes()[10..13], &[0, 0, 0]);
    }

    #[test]
    fn copy_within_overlapping() {
        let mut m = Memory::new();
        m.store_slice(0, &[1, 2, 3, 4, 5]);
        m.copy_within(2, 0, 5); // forward overlap
        assert_eq!(&m.as_bytes()[..7], &[1, 2, 1, 2, 3, 4, 5]);
        m.copy_within(0, 2, 5); // backward overlap
        assert_eq!(&m.as_bytes()[..5], &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn load_slice_expands() {
        let mut m = Memory::new();
        let bytes = m.load_slice(10, 10);
        assert_eq!(bytes, vec![0u8; 10]);
        assert_eq!(m.size(), 32);
        assert!(m.load_slice(0, 0).is_empty());
    }
}
