//! The EVM runtime stack: 1024 slots of 256-bit words.
//!
//! The paper dedicates the whole 32 KB stack to the HEVM's layer-1 cache
//! "because almost every EVM instruction fetches operands from and writes
//! results to the runtime stack" (§IV-B).

use tape_primitives::U256;

/// Maximum stack depth mandated by the EVM specification.
pub const STACK_LIMIT: usize = 1024;

/// Error produced by stack operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackError {
    /// Pop or peek on too few elements.
    Underflow,
    /// Push beyond [`STACK_LIMIT`].
    Overflow,
}

impl core::fmt::Display for StackError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StackError::Underflow => write!(f, "stack underflow"),
            StackError::Overflow => write!(f, "stack overflow"),
        }
    }
}

impl std::error::Error for StackError {}

/// The EVM operand stack.
///
/// # Examples
///
/// ```
/// use tape_evm::Stack;
/// use tape_primitives::U256;
///
/// let mut stack = Stack::new();
/// stack.push(U256::from(2u64))?;
/// stack.push(U256::from(3u64))?;
/// assert_eq!(stack.pop()?, U256::from(3u64));
/// # Ok::<(), tape_evm::StackError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Stack {
    data: Vec<U256>,
}

impl Stack {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Stack { data: Vec::with_capacity(64) }
    }

    /// Current depth.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Pushes a word.
    ///
    /// # Errors
    ///
    /// [`StackError::Overflow`] past 1024 entries.
    #[inline]
    pub fn push(&mut self, value: U256) -> Result<(), StackError> {
        if self.data.len() >= STACK_LIMIT {
            return Err(StackError::Overflow);
        }
        self.data.push(value);
        Ok(())
    }

    /// Pops a word.
    ///
    /// # Errors
    ///
    /// [`StackError::Underflow`] when empty.
    #[inline]
    pub fn pop(&mut self) -> Result<U256, StackError> {
        self.data.pop().ok_or(StackError::Underflow)
    }

    /// Peeks at the `n`-th word from the top (0 = top).
    ///
    /// # Errors
    ///
    /// [`StackError::Underflow`] when fewer than `n + 1` entries exist.
    #[inline]
    pub fn peek(&self, n: usize) -> Result<U256, StackError> {
        if n >= self.data.len() {
            return Err(StackError::Underflow);
        }
        Ok(self.data[self.data.len() - 1 - n])
    }

    /// `DUPn`: duplicates the `n`-th word from the top (1-based, like the
    /// opcode family).
    ///
    /// # Errors
    ///
    /// [`StackError`] on underflow or overflow.
    pub fn dup(&mut self, n: usize) -> Result<(), StackError> {
        let value = self.peek(n - 1)?;
        self.push(value)
    }

    /// `SWAPn`: swaps the top with the `n`-th word below it (1-based).
    ///
    /// # Errors
    ///
    /// [`StackError::Underflow`] when fewer than `n + 1` entries exist.
    pub fn swap(&mut self, n: usize) -> Result<(), StackError> {
        let len = self.data.len();
        if n >= len {
            return Err(StackError::Underflow);
        }
        self.data.swap(len - 1, len - 1 - n);
        Ok(())
    }

    /// The stack contents, bottom first (for tracing).
    pub fn as_slice(&self) -> &[U256] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> U256 {
        U256::from(v)
    }

    #[test]
    fn push_pop_lifo() {
        let mut s = Stack::new();
        s.push(u(1)).unwrap();
        s.push(u(2)).unwrap();
        assert_eq!(s.pop().unwrap(), u(2));
        assert_eq!(s.pop().unwrap(), u(1));
        assert_eq!(s.pop(), Err(StackError::Underflow));
    }

    #[test]
    fn overflow_at_limit() {
        let mut s = Stack::new();
        for i in 0..STACK_LIMIT {
            s.push(u(i as u64)).unwrap();
        }
        assert_eq!(s.push(u(0)), Err(StackError::Overflow));
        assert_eq!(s.len(), STACK_LIMIT);
    }

    #[test]
    fn peek_indexing() {
        let mut s = Stack::new();
        s.push(u(10)).unwrap();
        s.push(u(20)).unwrap();
        assert_eq!(s.peek(0).unwrap(), u(20));
        assert_eq!(s.peek(1).unwrap(), u(10));
        assert_eq!(s.peek(2), Err(StackError::Underflow));
    }

    #[test]
    fn dup_and_swap() {
        let mut s = Stack::new();
        s.push(u(1)).unwrap();
        s.push(u(2)).unwrap();
        s.dup(2).unwrap(); // duplicate the 2nd from top (1)
        assert_eq!(s.peek(0).unwrap(), u(1));
        s.swap(2).unwrap(); // swap top with 3rd
        assert_eq!(s.peek(0).unwrap(), u(1));
        assert_eq!(s.peek(2).unwrap(), u(1));
        assert_eq!(s.peek(1).unwrap(), u(2));
        assert_eq!(s.swap(5), Err(StackError::Underflow));
        assert_eq!(Stack::new().dup(1), Err(StackError::Underflow));
    }
}
