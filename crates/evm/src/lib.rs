//! # tape-evm
//!
//! A from-scratch Ethereum Virtual Machine: the reference interpreter of
//! the HarDTAPE reproduction ("functionally equivalent to the interpreter
//! module of Geth", paper §IV-B). It provides:
//!
//! * the full instruction set with "Cancun-lite" gas rules
//!   ([`opcode`], [`gas`]),
//! * a transaction executor over journaled state ([`Evm`]),
//! * precompiles 0x1/0x2/0x4 ([`precompile`]),
//! * structured tracing equivalent to `debug_traceTransaction`
//!   ([`StructTracer`]), and
//! * the [`Inspector`] hook surface used by the Table-I statistics
//!   collector and the HEVM timing model.
//!
//! This engine plays two roles in the evaluation: ground truth for the
//! §VI-B correctness comparison against the independently implemented
//! hardware EVM, and the "Geth" baseline for Figures 4 and 5.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod gas;
mod interp;
mod memory;
pub mod opcode;
pub mod precompile;
mod stack;
mod tracer;
mod types;

pub use interp::{create2_address, create_address, Evm};
pub use memory::Memory;
pub use stack::{Stack, StackError, STACK_LIMIT};
pub use tracer::{StructTracer, TraceCall, TraceStep};
pub use types::{
    Env, FrameEnd, FrameStart, Inspector, NoopInspector, StateAccess, StepInfo, Transaction,
    TxError, TxResult, VmError,
};

impl<T: Inspector + ?Sized> Inspector for &mut T {
    fn step(&mut self, step: &StepInfo<'_>) {
        (**self).step(step);
    }
    fn call_start(&mut self, frame: &FrameStart) {
        (**self).call_start(frame);
    }
    fn call_end(&mut self, end: &FrameEnd) {
        (**self).call_end(end);
    }
    fn state_access(&mut self, access: &StateAccess) {
        (**self).state_access(access);
    }
}
