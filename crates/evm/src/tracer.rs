//! Structured execution tracing — the reproduction's
//! `debug_traceTransaction` (paper §VI-B uses quicknode's RPC of the same
//! name as ground truth; here the reference EVM produces it).

use crate::types::{FrameEnd, FrameStart, Inspector, StepInfo};
use tape_crypto::Keccak256;
use tape_primitives::{Address, B256, U256};

/// One interpreter step, mirroring a Geth struct-log entry: step-by-step
/// PC, opcode, remaining gas, stack contents, and call depth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// Program counter.
    pub pc: usize,
    /// Opcode byte.
    pub opcode: u8,
    /// Mnemonic.
    pub op_name: &'static str,
    /// Gas remaining before the step.
    pub gas: u64,
    /// Call depth (1 = top frame).
    pub depth: usize,
    /// Stack, bottom first.
    pub stack: Vec<U256>,
    /// Memory size in bytes.
    pub memory_size: usize,
    /// Executing contract.
    pub address: Address,
}

/// A call-tree node summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceCall {
    /// Depth of the frame.
    pub depth: usize,
    /// Code owner.
    pub code_address: Address,
    /// Storage context.
    pub address: Address,
    /// Caller.
    pub caller: Address,
    /// Value transferred.
    pub value: U256,
    /// Input length.
    pub input_len: usize,
    /// `true` once the frame committed; `false` if reverted/halted.
    pub committed: bool,
    /// ReturnData length.
    pub output_len: usize,
}

/// Collects a full structured trace.
///
/// # Examples
///
/// ```
/// use tape_evm::{Env, Evm, StructTracer, Transaction};
/// use tape_primitives::{Address, U256};
/// use tape_state::{Account, InMemoryState};
///
/// let mut backend = InMemoryState::new();
/// let alice = Address::from_low_u64(1);
/// backend.put_account(alice, Account::with_balance(U256::from(10u64).wrapping_pow(U256::from(18u64))));
///
/// let mut evm = Evm::with_inspector(Env::default(), &backend, StructTracer::new());
/// let tx = Transaction::transfer(alice, Address::from_low_u64(0xB0B), U256::ONE);
/// evm.transact(&tx)?;
/// let tracer = evm.into_inspector();
/// assert!(tracer.steps().is_empty()); // pure transfers execute no opcodes
/// # Ok::<(), tape_evm::TxError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct StructTracer {
    steps: Vec<TraceStep>,
    calls: Vec<TraceCall>,
    open_calls: Vec<usize>,
    capture_stack: bool,
}

impl StructTracer {
    /// A tracer capturing steps and stacks.
    pub fn new() -> Self {
        StructTracer { capture_stack: true, ..Default::default() }
    }

    /// A cheaper tracer that skips stack snapshots.
    pub fn without_stack() -> Self {
        StructTracer { capture_stack: false, ..Default::default() }
    }

    /// The recorded steps.
    pub fn steps(&self) -> &[TraceStep] {
        &self.steps
    }

    /// The recorded call tree (pre-order).
    pub fn calls(&self) -> &[TraceCall] {
        &self.calls
    }

    /// Clears the trace for reuse across transactions.
    pub fn clear(&mut self) {
        self.steps.clear();
        self.calls.clear();
        self.open_calls.clear();
    }

    /// A digest of the whole trace (PC, opcode, gas, depth, stack at each
    /// step) — two engines produce equal digests iff they executed
    /// identically.
    pub fn digest(&self) -> B256 {
        let mut h = Keccak256::new();
        for step in &self.steps {
            h.update(&(step.pc as u64).to_be_bytes());
            h.update(&[step.opcode, step.depth as u8]);
            h.update(&step.gas.to_be_bytes());
            for word in &step.stack {
                h.update(&word.to_be_bytes());
            }
        }
        for call in &self.calls {
            h.update(call.code_address.as_bytes());
            h.update(&[call.depth as u8, call.committed as u8]);
            h.update(&(call.output_len as u64).to_be_bytes());
        }
        h.finalize()
    }

    /// First step at which this trace diverges from `other`, if any.
    /// `None` means the traces are identical step-for-step.
    pub fn first_divergence(&self, other: &StructTracer) -> Option<usize> {
        let n = self.steps.len().min(other.steps.len());
        for i in 0..n {
            if self.steps[i] != other.steps[i] {
                return Some(i);
            }
        }
        if self.steps.len() != other.steps.len() {
            return Some(n);
        }
        None
    }
}

impl Inspector for StructTracer {
    fn step(&mut self, step: &StepInfo<'_>) {
        self.steps.push(TraceStep {
            pc: step.pc,
            opcode: step.opcode,
            op_name: crate::opcode::info(step.opcode).name,
            gas: step.gas_remaining,
            depth: step.depth,
            stack: if self.capture_stack { step.stack.to_vec() } else { Vec::new() },
            memory_size: step.memory_size,
            address: step.address,
        });
    }

    fn call_start(&mut self, frame: &FrameStart) {
        self.open_calls.push(self.calls.len());
        self.calls.push(TraceCall {
            depth: frame.depth,
            code_address: frame.code_address,
            address: frame.address,
            caller: frame.caller,
            value: frame.value,
            input_len: frame.input_len,
            committed: false,
            output_len: 0,
        });
    }

    fn call_end(&mut self, end: &FrameEnd) {
        if let Some(idx) = self.open_calls.pop() {
            let call = &mut self.calls[idx];
            call.committed = end.committed;
            call.output_len = end.output_len;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::op;
    use crate::types::{Env, Transaction};
    use crate::Evm;
    use tape_state::{Account, InMemoryState};

    fn funded_backend() -> (InMemoryState, Address) {
        let mut backend = InMemoryState::new();
        let sender = Address::from_low_u64(0xAA);
        backend.put_account(sender, Account::with_balance(U256::from(10u64).wrapping_pow(U256::from(19u64))));
        (backend, sender)
    }

    #[test]
    fn traces_simple_bytecode() {
        let (mut backend, sender) = funded_backend();
        let contract = Address::from_low_u64(0xC0);
        // PUSH1 2, PUSH1 3, ADD, STOP
        backend.put_account(
            contract,
            Account::with_code(vec![op::PUSH1, 2, op::PUSH1, 3, op::ADD, op::STOP]),
        );

        let mut evm = Evm::with_inspector(Env::default(), &backend, StructTracer::new());
        let result = evm.transact(&Transaction::call(sender, contract, vec![])).unwrap();
        assert!(result.success);
        let tracer = evm.into_inspector();
        let names: Vec<&str> = tracer.steps().iter().map(|s| s.op_name).collect();
        assert_eq!(names, vec!["PUSH1", "PUSH1", "ADD", "STOP"]);
        // Stack before ADD holds [2, 3].
        assert_eq!(tracer.steps()[2].stack, vec![U256::from(2u64), U256::from(3u64)]);
        assert_eq!(tracer.calls().len(), 1);
        assert!(tracer.calls()[0].committed);
    }

    #[test]
    fn digest_detects_divergence() {
        let (mut backend, sender) = funded_backend();
        let a = Address::from_low_u64(0xC1);
        let b = Address::from_low_u64(0xC2);
        backend.put_account(a, Account::with_code(vec![op::PUSH1, 2, op::STOP]));
        backend.put_account(b, Account::with_code(vec![op::PUSH1, 3, op::STOP]));

        let run = |target| {
            let mut evm = Evm::with_inspector(Env::default(), &backend, StructTracer::new());
            evm.transact(&Transaction::call(sender, target, vec![])).unwrap();
            evm.into_inspector()
        };
        let ta = run(a);
        let tb = run(b);
        let ta2 = run(a);
        assert_eq!(ta.digest(), ta2.digest());
        assert_ne!(ta.digest(), tb.digest());
        assert_eq!(ta.first_divergence(&ta2), None);
        // The executing address differs from the very first step.
        assert_eq!(ta.first_divergence(&tb), Some(0));
    }

    #[test]
    fn without_stack_skips_snapshots() {
        let (mut backend, sender) = funded_backend();
        let c = Address::from_low_u64(0xC3);
        backend.put_account(c, Account::with_code(vec![op::PUSH1, 9, op::STOP]));
        let mut evm = Evm::with_inspector(Env::default(), &backend, StructTracer::without_stack());
        evm.transact(&Transaction::call(sender, c, vec![])).unwrap();
        let tracer = evm.into_inspector();
        assert!(tracer.steps().iter().all(|s| s.stack.is_empty()));
    }

    #[test]
    fn clear_resets() {
        let mut t = StructTracer::new();
        t.steps.push(TraceStep {
            pc: 0,
            opcode: 0,
            op_name: "STOP",
            gas: 0,
            depth: 1,
            stack: vec![],
            memory_size: 0,
            address: Address::ZERO,
        });
        t.clear();
        assert!(t.steps().is_empty());
    }
}
