//! Execution environment, transactions, results, and the inspector hooks.

use tape_primitives::{rlp, Address, B256, U256};
use tape_state::Log;

/// Block-level execution environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Env {
    /// Current block number.
    pub block_number: u64,
    /// Block timestamp (seconds).
    pub timestamp: u64,
    /// Fee recipient.
    pub coinbase: Address,
    /// Block gas limit.
    pub gas_limit: u64,
    /// EIP-1559 base fee.
    pub base_fee: U256,
    /// Post-merge randomness beacon value.
    pub prevrandao: B256,
    /// Chain id (1 = mainnet).
    pub chain_id: u64,
}

impl Default for Env {
    fn default() -> Self {
        Env {
            block_number: 19_145_194, // first block of the paper's evaluation set
            timestamp: 1_706_000_000,
            coinbase: Address::from_low_u64(0xC0FFEE),
            gas_limit: 30_000_000,
            base_fee: U256::from(10_000_000_000u64), // 10 gwei
            prevrandao: B256::ZERO,
            chain_id: 1,
        }
    }
}

/// A transaction to pre-execute (or apply on-chain).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// Sender address (signature recovery is out of scope for the
    /// simulator; senders are authenticated at the bundle layer).
    pub from: Address,
    /// Recipient; `None` deploys a contract.
    pub to: Option<Address>,
    /// Wei transferred.
    pub value: U256,
    /// Calldata (or initcode for creation).
    pub data: Vec<u8>,
    /// Gas limit.
    pub gas_limit: u64,
    /// Gas price in wei.
    pub gas_price: U256,
    /// Expected sender nonce; `None` skips the check (pre-execution
    /// convenience).
    pub nonce: Option<u64>,
    /// EIP-2930 access list: `(address, storage_keys)`.
    pub access_list: Vec<(Address, Vec<U256>)>,
}

impl Default for Transaction {
    fn default() -> Self {
        Transaction {
            from: Address::ZERO,
            to: None,
            value: U256::ZERO,
            data: Vec::new(),
            gas_limit: 1_000_000,
            gas_price: U256::from(10_000_000_000u64),
            nonce: None,
            access_list: Vec::new(),
        }
    }
}

impl Transaction {
    /// A simple call transaction.
    pub fn call(from: Address, to: Address, data: Vec<u8>) -> Self {
        Transaction { from, to: Some(to), data, ..Default::default() }
    }

    /// A plain value transfer.
    pub fn transfer(from: Address, to: Address, value: U256) -> Self {
        Transaction { from, to: Some(to), value, gas_limit: 21_000, ..Default::default() }
    }

    /// A contract-creation transaction.
    pub fn create(from: Address, initcode: Vec<u8>) -> Self {
        Transaction { from, to: None, data: initcode, gas_limit: 5_000_000, ..Default::default() }
    }

    /// Content hash of the transaction (used as its identifier).
    pub fn hash(&self) -> B256 {
        let mut fields = vec![
            rlp::encode_address(&self.from),
            match &self.to {
                Some(to) => rlp::encode_address(to),
                None => rlp::encode_bytes(&[]),
            },
            rlp::encode_u256(&self.value),
            rlp::encode_bytes(&self.data),
            rlp::encode_u64(self.gas_limit),
            rlp::encode_u256(&self.gas_price),
            rlp::encode_u64(self.nonce.unwrap_or(0)),
        ];
        for (addr, keys) in &self.access_list {
            fields.push(rlp::encode_address(addr));
            for k in keys {
                fields.push(rlp::encode_u256(k));
            }
        }
        tape_crypto::keccak256(rlp::encode_list(&fields))
    }
}

/// Why a frame (or transaction) halted exceptionally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// Ran out of gas.
    OutOfGas,
    /// Stack underflow.
    StackUnderflow,
    /// Stack overflow (beyond 1024).
    StackOverflow,
    /// Jump to a non-JUMPDEST target.
    InvalidJump,
    /// Undefined opcode, or the designated `INVALID` (0xFE).
    InvalidOpcode(u8),
    /// State-changing operation inside a STATICCALL.
    StaticViolation,
    /// RETURNDATACOPY past the end of the return buffer.
    ReturnDataOutOfBounds,
    /// Deployed code larger than the EIP-170 limit.
    CodeSizeExceeded,
    /// Initcode larger than the EIP-3860 limit.
    InitcodeSizeExceeded,
    /// CREATE address collision.
    CreateCollision,
    /// Deployed code starts with the reserved 0xEF byte (EIP-3541).
    InvalidDeployedCode,
    /// Memory request too large to even meter.
    MemoryOverflow,
}

impl core::fmt::Display for VmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VmError::OutOfGas => write!(f, "out of gas"),
            VmError::StackUnderflow => write!(f, "stack underflow"),
            VmError::StackOverflow => write!(f, "stack overflow"),
            VmError::InvalidJump => write!(f, "invalid jump destination"),
            VmError::InvalidOpcode(op) => write!(f, "invalid opcode 0x{op:02x}"),
            VmError::StaticViolation => write!(f, "state change in static context"),
            VmError::ReturnDataOutOfBounds => write!(f, "return data out of bounds"),
            VmError::CodeSizeExceeded => write!(f, "deployed code size exceeds limit"),
            VmError::InitcodeSizeExceeded => write!(f, "initcode size exceeds limit"),
            VmError::CreateCollision => write!(f, "create address collision"),
            VmError::InvalidDeployedCode => write!(f, "deployed code starts with 0xEF"),
            VmError::MemoryOverflow => write!(f, "memory request overflows"),
        }
    }
}

impl std::error::Error for VmError {}

/// Why a transaction was rejected before execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxError {
    /// Sender nonce mismatch.
    NonceMismatch {
        /// Nonce the transaction declared.
        expected: u64,
        /// Sender's actual nonce.
        actual: u64,
    },
    /// Sender cannot cover `gas_limit * gas_price + value`.
    InsufficientFunds,
    /// `gas_limit` below the intrinsic cost.
    IntrinsicGasTooLow {
        /// The computed intrinsic cost.
        needed: u64,
    },
    /// Initcode beyond the EIP-3860 limit.
    InitcodeTooLarge,
}

impl core::fmt::Display for TxError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TxError::NonceMismatch { expected, actual } => {
                write!(f, "nonce mismatch: tx has {expected}, account at {actual}")
            }
            TxError::InsufficientFunds => write!(f, "insufficient funds for gas and value"),
            TxError::IntrinsicGasTooLow { needed } => {
                write!(f, "gas limit below intrinsic cost {needed}")
            }
            TxError::InitcodeTooLarge => write!(f, "initcode exceeds EIP-3860 limit"),
        }
    }
}

impl std::error::Error for TxError {}

/// Outcome of one executed transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxResult {
    /// `true` if the top-level frame succeeded.
    pub success: bool,
    /// Total gas consumed (after refunds).
    pub gas_used: u64,
    /// ReturnData of the top-level frame (revert payload on failure).
    pub output: Vec<u8>,
    /// Logs emitted (empty if reverted).
    pub logs: Vec<Log>,
    /// Address of the deployed contract for creation transactions.
    pub created: Option<Address>,
    /// The halt reason when `success == false` and the frame did not
    /// REVERT cleanly.
    pub halt: Option<VmError>,
}

/// Per-step information passed to [`Inspector::step`].
#[derive(Debug)]
pub struct StepInfo<'a> {
    /// Program counter before executing the instruction.
    pub pc: usize,
    /// Opcode byte.
    pub opcode: u8,
    /// Gas remaining before the instruction. Tracers derive per-step cost
    /// by diffing consecutive values (the same way Geth structlogs are
    /// consumed).
    pub gas_remaining: u64,
    /// Call depth (1 = top-level frame, matching Table I's taxonomy).
    pub depth: usize,
    /// Stack contents, bottom first.
    pub stack: &'a [U256],
    /// Current Memory size in bytes.
    pub memory_size: usize,
    /// The executing contract (storage context).
    pub address: Address,
}

/// Frame-boundary information passed to [`Inspector::call_start`].
#[derive(Debug, Clone)]
pub struct FrameStart {
    /// Call depth of the new frame.
    pub depth: usize,
    /// Code owner.
    pub code_address: Address,
    /// Storage context.
    pub address: Address,
    /// Caller.
    pub caller: Address,
    /// Value transferred.
    pub value: U256,
    /// Input size in bytes.
    pub input_len: usize,
    /// Code size in bytes.
    pub code_len: usize,
    /// Gas given to the frame.
    pub gas: u64,
}

/// Frame-boundary information passed to [`Inspector::call_end`].
#[derive(Debug, Clone)]
pub struct FrameEnd {
    /// Depth of the frame that ended.
    pub depth: usize,
    /// `true` if the frame committed (RETURN/STOP), `false` on revert or
    /// halt.
    pub committed: bool,
    /// ReturnData size.
    pub output_len: usize,
    /// Gas left in the frame at exit.
    pub gas_left: u64,
}

/// A world-state access event (the paper's query taxonomy: K-V style
/// queries vs Code queries, §IV-D).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateAccess {
    /// Account header read (balance / nonce / code hash / code length) —
    /// a K-V style query.
    Account(Address),
    /// Contract code fetch of the given length — a Code query.
    Code(Address, usize),
    /// Storage slot read — a K-V style query.
    StorageRead(Address, U256),
    /// Storage slot write (stays in the overlay; never reaches the ORAM).
    StorageWrite(Address, U256, U256),
}

/// Observation hooks for execution.
///
/// Implemented by the structured tracer, the Table-I statistics
/// collector, and the HEVM timing model. All methods default to no-ops.
pub trait Inspector {
    /// Called before each instruction executes.
    fn step(&mut self, _step: &StepInfo<'_>) {}
    /// Called when a new frame (call or create) starts.
    fn call_start(&mut self, _frame: &FrameStart) {}
    /// Called when a frame ends.
    fn call_end(&mut self, _end: &FrameEnd) {}
    /// Called on world-state accesses.
    fn state_access(&mut self, _access: &StateAccess) {}
}

/// The do-nothing inspector.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopInspector;

impl Inspector for NoopInspector {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_hash_distinguishes_fields() {
        let base = Transaction::call(Address::from_low_u64(1), Address::from_low_u64(2), vec![1]);
        let mut other = base.clone();
        other.value = U256::ONE;
        assert_ne!(base.hash(), other.hash());
        assert_eq!(base.hash(), base.clone().hash());
        let create = Transaction::create(Address::from_low_u64(1), vec![1]);
        assert_ne!(base.hash(), create.hash());
    }

    #[test]
    fn constructors() {
        let t = Transaction::transfer(Address::from_low_u64(1), Address::from_low_u64(2), U256::ONE);
        assert_eq!(t.gas_limit, 21_000);
        assert!(t.data.is_empty());
        let c = Transaction::create(Address::from_low_u64(1), vec![0x60]);
        assert!(c.to.is_none());
    }

    #[test]
    fn default_env_matches_evaluation_set() {
        let env = Env::default();
        assert_eq!(env.block_number, 19_145_194);
        assert_eq!(env.chain_id, 1);
    }
}
