//! Criterion micro-benchmarks over every substrate: real wall-clock cost
//! of the building blocks (the virtual-time figures are produced by the
//! `fig4`/`fig5` binaries; these benches characterize the implementation
//! itself).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;
use tape_crypto::{keccak256, AesGcm, SecretKey, SecureRng};
use tape_evm::{Env, Evm, Transaction};
use tape_hevm::{Hevm, HevmConfig};
use tape_mpt::MerkleTrie;
use tape_oram::{OramClient, OramConfig, OramServer};
use tape_primitives::{Address, U256};
use tape_sim::{Clock, CostModel};
use tape_state::{Account, InMemoryState};
use tape_workload::contracts;

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    let data_1k = vec![0xABu8; 1024];

    group.throughput(Throughput::Bytes(1024));
    group.bench_function("keccak256/1KiB", |b| {
        b.iter(|| keccak256(black_box(&data_1k)));
    });

    let gcm = AesGcm::new(&[7u8; 16]);
    group.bench_function("aes_gcm_seal/1KiB", |b| {
        b.iter(|| gcm.seal(black_box(&[0u8; 12]), b"", black_box(&data_1k)));
    });

    group.throughput(Throughput::Elements(1));
    let sk = SecretKey::from_seed(b"bench");
    let digest = keccak256(b"message");
    group.bench_function("ecdsa_sign", |b| {
        b.iter(|| sk.sign(black_box(&digest)));
    });
    let pk = sk.public_key();
    let sig = sk.sign(&digest);
    group.bench_function("ecdsa_verify", |b| {
        b.iter(|| pk.verify(black_box(&digest), black_box(&sig)));
    });
    group.finish();
}

fn bench_u256(c: &mut Criterion) {
    let mut group = c.benchmark_group("u256");
    let a = U256::from_limbs([0x1234, 0x5678, 0x9abc, 0xdef0]);
    let b_ = U256::from_limbs([0x1111, 0x2222, 0x3333, 0x4444]);
    group.bench_function("mul", |b| b.iter(|| black_box(a).wrapping_mul(black_box(b_))));
    group.bench_function("div", |b| {
        b.iter(|| black_box(a).checked_div_rem(black_box(b_)))
    });
    group.bench_function("mulmod", |b| {
        b.iter(|| black_box(a).mul_mod(black_box(b_), black_box(U256::MAX)))
    });
    group.finish();
}

fn bench_mpt(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpt");
    group.bench_function("insert_1000_and_root", |b| {
        b.iter_batched(
            MerkleTrie::new,
            |mut trie| {
                for i in 0u32..1000 {
                    trie.insert(&i.to_be_bytes(), b"value");
                }
                trie.root_hash()
            },
            BatchSize::SmallInput,
        );
    });

    let mut trie = MerkleTrie::new();
    for i in 0u32..1000 {
        trie.insert(&i.to_be_bytes(), b"value");
    }
    group.bench_function("prove", |b| {
        b.iter(|| trie.prove(black_box(&500u32.to_be_bytes())));
    });
    group.finish();
}

fn bench_oram(c: &mut Criterion) {
    let mut group = c.benchmark_group("oram");
    group.sample_size(20);
    let config = OramConfig { block_size: 1024, bucket_capacity: 4, height: 12 };
    let mut server = OramServer::new(config.clone());
    let mut client = OramClient::new(config, &[1u8; 16], SecureRng::from_seed(b"bench"));
    let clock = Clock::new();
    let cost = CostModel::default();
    for i in 0u64..256 {
        client
            .write(&mut server, &clock, &cost, &keccak256(i.to_be_bytes()), vec![0; 1024])
            .unwrap();
    }
    let mut i = 0u64;
    group.bench_function("access/height12_1KiB", |b| {
        b.iter(|| {
            i = (i + 1) % 256;
            client
                .read(&mut server, &clock, &cost, &keccak256(i.to_be_bytes()))
                .unwrap()
        });
    });
    group.finish();
}

fn erc20_fixture() -> (InMemoryState, Transaction) {
    let sender = Address::from_low_u64(1);
    let token = Address::from_low_u64(0x70CE);
    let mut state = InMemoryState::new();
    state.put_account(sender, Account::with_balance(U256::from(u64::MAX)));
    let mut t = Account::with_code(contracts::erc20_runtime());
    t.storage
        .insert(contracts::balance_slot(&sender), U256::from(u64::MAX));
    state.put_account(token, t);
    // Zero gas price: criterion runs millions of iterations and a real
    // gas price would drain the sender's balance mid-benchmark.
    let tx = Transaction {
        gas_limit: 300_000,
        gas_price: tape_primitives::U256::ZERO,
        ..Transaction::call(
            sender,
            token,
            contracts::encode_call(
                contracts::sel::transfer(),
                &[Address::from_low_u64(2).into_word(), U256::ONE],
            ),
        )
    };
    (state, tx)
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engines");
    let (state, tx) = erc20_fixture();

    group.bench_function("reference_evm/erc20_transfer", |b| {
        let mut evm = Evm::new(Env::default(), &state);
        b.iter(|| evm.transact(black_box(&tx)).unwrap());
    });

    group.bench_function("hevm/erc20_transfer", |b| {
        let mut hevm = Hevm::new(HevmConfig::default(), Env::default(), &state, Clock::new());
        b.iter(|| hevm.transact(black_box(&tx)).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_crypto, bench_u256, bench_mpt, bench_oram, bench_engines);
criterion_main!(benches);
