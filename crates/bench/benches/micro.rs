//! Micro-benchmarks over every substrate: real wall-clock cost of the
//! building blocks (the virtual-time figures are produced by the
//! `fig4`/`fig5` binaries; these benches characterize the implementation
//! itself).
//!
//! This is a plain `harness = false` binary (no criterion — the
//! workspace builds hermetically offline): each benchmark warms up,
//! then reports mean ns/op over a fixed iteration count. Run with
//! `cargo bench -p tape-bench`.

use std::hint::black_box;
use std::time::Instant;
use tape_crypto::{keccak256, AesGcm, SecretKey, SecureRng};
use tape_evm::{Env, Evm, Transaction};
use tape_hevm::{Hevm, HevmConfig};
use tape_mpt::MerkleTrie;
use tape_oram::{OramClient, OramConfig, OramServer};
use tape_primitives::{Address, U256};
use tape_sim::{Clock, CostModel};
use tape_state::{Account, InMemoryState};
use tape_workload::contracts;

/// Times `f` over `iters` iterations (after `iters / 10 + 1` warm-up
/// runs) and prints the mean wall-clock ns/op.
fn bench<T>(name: &str, iters: u64, mut f: impl FnMut() -> T) {
    for _ in 0..iters / 10 + 1 {
        black_box(f());
    }
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let elapsed = start.elapsed();
    let per_op = elapsed.as_nanos() / iters as u128;
    println!("{name:<40} {per_op:>12} ns/op   ({iters} iters)");
}

fn bench_crypto() {
    let data_1k = vec![0xABu8; 1024];
    bench("crypto/keccak256_1KiB", 2_000, || keccak256(black_box(&data_1k)));

    let gcm = AesGcm::new(&[7u8; 16]);
    bench("crypto/aes_gcm_seal_1KiB", 2_000, || {
        gcm.seal(black_box(&[0u8; 12]), b"", black_box(&data_1k))
    });

    let sk = SecretKey::from_seed(b"bench");
    let digest = keccak256(b"message");
    bench("crypto/ecdsa_sign", 200, || sk.sign(black_box(&digest)));
    let pk = sk.public_key();
    let sig = sk.sign(&digest);
    bench("crypto/ecdsa_verify", 200, || pk.verify(black_box(&digest), black_box(&sig)));
}

fn bench_u256() {
    let a = U256::from_limbs([0x1234, 0x5678, 0x9abc, 0xdef0]);
    let b = U256::from_limbs([0x1111, 0x2222, 0x3333, 0x4444]);
    bench("u256/mul", 1_000_000, || black_box(a).wrapping_mul(black_box(b)));
    bench("u256/div", 1_000_000, || black_box(a).checked_div_rem(black_box(b)));
    bench("u256/mulmod", 500_000, || {
        black_box(a).mul_mod(black_box(b), black_box(U256::MAX))
    });
}

fn bench_mpt() {
    bench("mpt/insert_1000_and_root", 50, || {
        let mut trie = MerkleTrie::new();
        for i in 0u32..1000 {
            trie.insert(&i.to_be_bytes(), b"value");
        }
        trie.root_hash()
    });

    let mut trie = MerkleTrie::new();
    for i in 0u32..1000 {
        trie.insert(&i.to_be_bytes(), b"value");
    }
    bench("mpt/prove", 5_000, || trie.prove(black_box(&500u32.to_be_bytes())));
}

fn bench_oram() {
    let config = OramConfig { block_size: 1024, bucket_capacity: 4, height: 12 };
    let mut server = OramServer::new(config.clone());
    let mut client = OramClient::new(config, &[1u8; 16], SecureRng::from_seed(b"bench"));
    let clock = Clock::new();
    let cost = CostModel::default();
    for i in 0u64..256 {
        client
            .write(&mut server, &clock, &cost, &keccak256(i.to_be_bytes()), vec![0; 1024])
            .unwrap();
    }
    let mut i = 0u64;
    bench("oram/access_height12_1KiB", 200, || {
        i = (i + 1) % 256;
        client
            .read(&mut server, &clock, &cost, &keccak256(i.to_be_bytes()))
            .unwrap()
    });
}

fn erc20_fixture() -> (InMemoryState, Transaction) {
    let sender = Address::from_low_u64(1);
    let token = Address::from_low_u64(0x70CE);
    let mut state = InMemoryState::new();
    state.put_account(sender, Account::with_balance(U256::from(u64::MAX)));
    let mut t = Account::with_code(contracts::erc20_runtime());
    t.storage
        .insert(contracts::balance_slot(&sender), U256::from(u64::MAX));
    state.put_account(token, t);
    // Zero gas price: many iterations with a real gas price would drain
    // the sender's balance mid-benchmark.
    let tx = Transaction {
        gas_limit: 300_000,
        gas_price: tape_primitives::U256::ZERO,
        ..Transaction::call(
            sender,
            token,
            contracts::encode_call(
                contracts::sel::transfer(),
                &[Address::from_low_u64(2).into_word(), U256::ONE],
            ),
        )
    };
    (state, tx)
}

fn bench_engines() {
    let (state, tx) = erc20_fixture();

    let mut evm = Evm::new(Env::default(), &state);
    bench("engines/reference_evm_erc20_transfer", 2_000, || {
        evm.transact(black_box(&tx)).unwrap()
    });

    let mut hevm = Hevm::new(HevmConfig::default(), Env::default(), &state, Clock::new());
    bench("engines/hevm_erc20_transfer", 500, || {
        hevm.transact(black_box(&tx)).unwrap()
    });
}

fn main() {
    println!("{:-<72}", "");
    bench_crypto();
    bench_u256();
    bench_mpt();
    bench_oram();
    bench_engines();
    println!("{:-<72}", "");
}
