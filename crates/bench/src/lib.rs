//! # tape-bench
//!
//! The evaluation harness: shared plumbing for the binaries that
//! regenerate every table and figure of the paper (see DESIGN.md's
//! experiment index) and for the Criterion micro-benchmarks.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tape_evm::{FrameStart, Inspector, StateAccess, StepInfo};
use tape_sim::{Clock, CostModel};

/// An [`Inspector`] that charges the *Geth software baseline* cost model
/// to a virtual clock — the "Geth" series of Figures 4 and 5.
#[derive(Debug)]
pub struct GethTimer {
    clock: Clock,
    cost: CostModel,
}

impl GethTimer {
    /// Creates a timer charging `clock`.
    pub fn new(clock: Clock, cost: CostModel) -> Self {
        GethTimer { clock, cost }
    }

    /// The underlying clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Adds the fixed per-transaction overhead (RPC handling, setup).
    pub fn charge_tx_overhead(&self) {
        self.clock.advance(self.cost.geth_tx_overhead_ns);
    }
}

impl Inspector for GethTimer {
    fn step(&mut self, step: &StepInfo<'_>) {
        self.clock.advance(self.cost.geth_instruction_ns(step.opcode));
    }

    fn call_start(&mut self, frame: &FrameStart) {
        // Geth allocates an interpreter + EVM object per contract frame;
        // plain value transfers skip it.
        if frame.code_len > 0 {
            self.clock.advance(self.cost.geth_frame_setup_ns);
        }
    }

    fn state_access(&mut self, access: &StateAccess) {
        match access {
            StateAccess::Account(_) | StateAccess::StorageRead(..) | StateAccess::Code(..) => {
                self.clock.advance(self.cost.geth_state_access_ns);
            }
            StateAccess::StorageWrite(..) => {}
        }
    }
}

/// Evaluation-set scale from the `TAPE_EVAL_SCALE` environment variable:
/// `full` (100×200, the paper's size), `medium` (20×50), anything else /
/// unset → `small` (8×25). All sizes use the same generator seed.
pub fn eval_config() -> tape_workload::EvalSetConfig {
    let scale = std::env::var("TAPE_EVAL_SCALE").unwrap_or_default();
    match scale.as_str() {
        "full" => tape_workload::EvalSetConfig::default(),
        "medium" => tape_workload::EvalSetConfig {
            blocks: 20,
            txs_per_block: 50,
            ..tape_workload::EvalSetConfig::default()
        },
        _ => tape_workload::EvalSetConfig {
            blocks: 8,
            txs_per_block: 25,
            ..tape_workload::EvalSetConfig::default()
        },
    }
}

/// Pretty-prints a virtual-nanosecond mean as milliseconds.
pub fn ms(ns: f64) -> String {
    format!("{:8.2} ms", ns / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tape_evm::{Env, Evm, Transaction};
    use tape_primitives::{Address, U256};
    use tape_state::{Account, InMemoryState};

    #[test]
    fn geth_timer_charges_per_step() {
        let mut state = InMemoryState::new();
        let sender = Address::from_low_u64(1);
        state.put_account(sender, Account::with_balance(U256::from(u64::MAX)));
        let target = Address::from_low_u64(0xC0);
        state.put_account(
            target,
            Account::with_code(vec![0x60, 0x01, 0x60, 0x02, 0x01, 0x00]), // PUSH PUSH ADD STOP
        );
        let clock = Clock::new();
        let timer = GethTimer::new(clock.clone(), CostModel::default());
        let mut evm = Evm::with_inspector(Env::default(), &state, timer);
        evm.transact(&Transaction::call(sender, target, vec![])).unwrap();
        assert!(clock.now() > 0);
        assert!(clock.now() < 1_000_000); // far below a millisecond
    }

    #[test]
    fn scale_parsing_defaults_small() {
        let config = eval_config();
        assert!(config.blocks <= 100);
    }
}
