//! Regenerates the **§VI-D scalability estimate**: chip throughput vs
//! Ethereum's ~17 tx/s, and the number of full-load HEVMs one ORAM
//! server supports, from quantities measured on the `-full`
//! configuration.

use hardtape::{estimate, Bundle, HarDTape, SecurityConfig, ServiceConfig, ETHEREUM_TPS};
use tape_sim::CostModel;
use tape_workload::EvalSet;

fn main() {
    let mut config = tape_bench::eval_config();
    config.blocks = config.blocks.min(4); // scalability needs a sample, not the full set
    let set = EvalSet::generate(&config);

    let service_config = ServiceConfig { oram_height: 14, ..ServiceConfig::at_level(SecurityConfig::Full) };
    let hevm_count = service_config.hevm_count;
    let mut device = HarDTape::new(service_config, set.env.clone(), &set.genesis).expect("device boots");
    let mut user = device.connect_user(b"scalability").expect("attestation");

    let sync_queries = device.oram_stats().expect("full config has an ORAM").total();
    let started = device.clock().now();
    let mut total_ns = 0u64;
    let mut executed = 0u64;
    for tx in set.all_transactions() {
        let report = device
            .pre_execute(&mut user, &Bundle::single(tx.clone()))
            .expect("bundle accepted");
        total_ns += report.total_ns;
        executed += 1;
    }
    let elapsed = device.clock().now() - started;
    let queries = device.oram_stats().expect("oram").total() - sync_queries;
    let per_tx_ns = total_ns / executed;
    // Average gap between ORAM queries from one full-load HEVM.
    let query_gap_ns = elapsed.checked_div(queries).unwrap_or(u64::MAX);

    let cost = CostModel::default();
    let report = estimate(per_tx_ns, hevm_count, cost.oram_server_op_ns, query_gap_ns);

    println!("§VI-D scalability ({executed} txs measured)\n");
    println!("  per-tx end-to-end:      {:>10.2} ms", report.per_tx_ns as f64 / 1e6);
    println!("  HEVMs per chip:         {:>10}", report.hevm_count);
    println!("  chip throughput:        {:>10.2} tx/s", report.chip_tps);
    println!("  Ethereum Mainnet:       {:>10.2} tx/s", ETHEREUM_TPS);
    println!(
        "  keeps up with Mainnet:  {:>10}",
        if report.keeps_up_with_ethereum { "yes" } else { "no" }
    );
    println!("  ORAM queries issued:    {:>10}", queries);
    println!("  avg query gap:          {:>10.1} us  (paper: 630 us)", report.query_gap_ns as f64 / 1e3);
    println!("  server time per query:  {:>10.1} us  (paper: 25 us)", report.server_op_ns as f64 / 1e3);
    println!("  max HEVMs per server:   {:>10}  (paper: 25)", report.max_hevms_per_server);
    println!("  max chips per server:   {:>10}", report.max_chips_per_server);

    println!(
        "\nShape: {}",
        if report.keeps_up_with_ethereum && report.max_hevms_per_server >= hevm_count as u64 {
            "REPRODUCED (one chip covers Mainnet; one ORAM server feeds multiple chips)"
        } else {
            "DRIFTED"
        }
    );
}
