//! Deterministic pre-execution benchmark: runs the evaluation set
//! through a `-full` HarDTAPE device twice in-process, checks that the
//! telemetry digests agree (replay determinism), runs the §IV-D leakage
//! auditor over the recorded event stream, and emits
//! `BENCH_pre_execute.json` with bundle-latency percentiles, chip TPS,
//! and ORAM traffic per bundle.
//!
//! Flags:
//!
//! * `--starve` — negative control: re-arms the prefetcher deadline on
//!   every real query (the pre-fix starvation bug) and *expects the
//!   auditor to fail*. Exit code 0 means the leak was detected.
//! * `--omit-plan` — negative control for the plan-coverage check: the
//!   device withholds the last advertised page of every static prefetch
//!   plan (execution is untouched) and *expects the auditor to flag the
//!   unadvertised fetch*. Exit code 0 means the gap was detected.
//! * `--out PATH` — output path (default `BENCH_pre_execute.json`).
//! * `--baseline PATH` — regression guard: reads `queries_per_bundle`
//!   and (when present) the preemption section's `short_p99` from a
//!   previously committed report and fails (exit 1) when the fresh run
//!   regresses by more than 10% on either — an accidental extra ORAM
//!   round-trip per bundle, or a scheduling change that re-inflates the
//!   honest tail under gas-bomb load, cannot land silently. The
//!   baseline is read before the output is written, so `--baseline`
//!   and `--out` may name the same file.
//!
//! Besides the `-full` latency sweep, the report carries a
//! `preemption` section: one saturating gas-bomb tenant against three
//! honest tenants on a gas-sliced `-ES` gateway, with the honest
//! short-bundle p50/p99 under load next to the no-adversary baseline.
//! The binary enforces the tail-latency acceptance bound in-process
//! (honest p99 within 2x the unloaded baseline) — the committed JSON
//! is the measured evidence.
//!
//! Scale follows `TAPE_EVAL_SCALE` (small unless set).

use hardtape::{
    Bundle, Gateway, GatewayConfig, GatewayError, HarDTape, SecurityConfig, ServiceConfig,
};
use std::collections::HashMap;
use tape_evm::{Env, Transaction};
use tape_oram::OramConfig;
use tape_primitives::{Address, U256};
use tape_sim::queue::EventLog;
use tape_sim::telemetry::audit::{audit_events, AuditConfig, AuditReport};
use tape_sim::telemetry::{GaugeId, HistId};
use tape_sim::CostModel;
use tape_state::{Account, InMemoryState};
use tape_workload::{contracts, EvalSet};

struct RunOutcome {
    latencies: Vec<u64>,
    chip_ns: u64,
    txs: u64,
    bundles: u64,
    kv_queries: u64,
    code_queries: u64,
    prefetch_queries: u64,
    prefetch_issued: u64,
    prefetch_drained: u64,
    gap_ema_ns: u64,
    execute_mean_ns: f64,
    bundle_mean_ns: f64,
    digest: String,
    audit: AuditReport,
}

fn run(set: &EvalSet, starve: bool, omit_plan: bool, audit_cfg: &AuditConfig) -> RunOutcome {
    let config = ServiceConfig {
        oram_height: 14,
        ..ServiceConfig::at_level(SecurityConfig::Full)
    };
    let mut device = HarDTape::new(config, set.env.clone(), &set.genesis).expect("device boots");
    device.set_prefetch_ablation(starve);
    device.set_plan_ablation(omit_plan);
    let mut user = device.connect_user(b"bench user").expect("attestation");

    let mut latencies = Vec::new();
    let mut chip_ns = 0u64;
    let mut txs = 0u64;
    for block in &set.blocks {
        for tx in block {
            let report = device
                .pre_execute(&mut user, &Bundle::single(tx.clone()))
                .expect("bundle accepted");
            latencies.push(report.total_ns);
            chip_ns += report.total_ns;
            txs += 1;
        }
    }

    let t = device.telemetry().clone();
    let audit = audit_events(&t.events(), t.dropped(), audit_cfg);
    let stats = device.oram_stats().expect("full device has ORAM");
    let (issued, drained) = device
        .prefetch_stats()
        .map(|p| (p.issued, p.drained))
        .unwrap_or((0, 0));
    RunOutcome {
        latencies,
        chip_ns,
        txs,
        bundles: txs,
        kv_queries: stats.kv_queries,
        code_queries: stats.code_queries,
        prefetch_queries: stats.prefetch_queries,
        prefetch_issued: issued,
        prefetch_drained: drained,
        gap_ema_ns: t.gauge_cell(GaugeId::PrefetchGapEmaNs).value,
        execute_mean_ns: t.hist(HistId::ExecuteNs).mean(),
        bundle_mean_ns: t.hist(HistId::BundleLatencyNs).mean(),
        digest: t.digest(),
        audit,
    }
}

/// Tail-latency scenario sizing (mirrors `tests/preempt.rs`): a short
/// `-ES` bundle costs ~80M virtual ns of fixed service overhead, so the
/// bomb's execution (60M gas ≈ 300M ns) dwarfs it, and a 2M-gas slice
/// (~10M ns per segment) keeps segment counts moderate.
const TAIL_BOMB_GAS: u64 = 60_000_000;
const TAIL_SLICE: u64 = 2_000_000;

fn tail_tenant(i: u64) -> Address {
    Address::from_low_u64(0xBE00 + i)
}

fn tail_sink(i: u64) -> Address {
    Address::from_low_u64(0xEE00 + i)
}

fn tail_bomb_contract() -> Address {
    Address::from_low_u64(0x6A5B)
}

fn tail_bomb_tx() -> Transaction {
    let mut tx = Transaction::call(
        tail_tenant(3),
        tail_bomb_contract(),
        U256::from(TAIL_BOMB_GAS / 20).to_be_bytes().to_vec(),
    );
    tx.gas_limit = TAIL_BOMB_GAS;
    tx
}

/// Admit→complete virtual latencies for `sessions`, parsed from the
/// gateway's deterministic event log.
fn tail_latencies(log: &EventLog, sessions: &[u64]) -> Vec<u64> {
    let mut admits: HashMap<u64, u64> = HashMap::new();
    let mut out = Vec::new();
    for line in log.lines() {
        let mut parts = line.split_whitespace();
        let Some(t) = parts
            .next()
            .and_then(|p| p.strip_prefix("t="))
            .and_then(|v| v.parse::<u64>().ok())
        else {
            continue;
        };
        let Some(verb) = parts.next() else { continue };
        let Some(session) = parts
            .next()
            .and_then(|p| p.strip_prefix("session="))
            .and_then(|v| v.parse::<u64>().ok())
        else {
            continue;
        };
        let ticket = parts
            .next()
            .and_then(|p| p.strip_prefix("ticket="))
            .and_then(|v| v.parse::<u64>().ok());
        match (verb, ticket) {
            ("admit", Some(k)) => {
                admits.insert(k, t);
            }
            ("complete", Some(k)) if sessions.contains(&session) => {
                if let Some(&at) = admits.get(&k) {
                    out.push(t - at);
                }
            }
            _ => {}
        }
    }
    out
}

struct TailOutcome {
    latencies: Vec<u64>,
    preempted: u64,
}

/// One deterministic gas-bomb load schedule on a gas-sliced `-ES`
/// gateway: the bomber connects FIRST (DRR serves it ahead of honest
/// tenants inside each round — the worst case for honest latency) and
/// keeps its queue saturated while three honest tenants each submit ten
/// short bundles. Returns the honest admit→complete latencies.
fn tail_run(bombs: bool) -> TailOutcome {
    let mut genesis = InMemoryState::new();
    for i in 0..4u64 {
        genesis.put_account(tail_tenant(i), Account::with_balance(U256::from(u64::MAX)));
    }
    genesis.put_account(tail_bomb_contract(), Account::with_code(contracts::gasbomb_runtime()));
    let mut config =
        ServiceConfig { oram_height: 10, ..ServiceConfig::at_level(SecurityConfig::Es) };
    config.hevm.gas_slice = Some(TAIL_SLICE);
    let device = HarDTape::new(config, Env::default(), &genesis).expect("tail device boots");
    let mut gateway = Gateway::new(
        device,
        GatewayConfig { queue_depth: 8, admission_budget: 40, ..GatewayConfig::default() },
    );
    let bomber = gateway.connect(b"bench tail bomber").expect("attestation");
    let honest: Vec<u64> = (0..3u64)
        .map(|i| {
            gateway
                .connect(format!("bench tail honest {i}").as_bytes())
                .expect("attestation")
        })
        .collect();

    for step in 0..10u64 {
        if bombs {
            // A round retires at most one bomb segment, so one refill
            // per step saturates; tenant-local overload is expected.
            match gateway.submit(bomber, Bundle::single(tail_bomb_tx())) {
                Ok(_) | Err(GatewayError::Overloaded { .. }) => {}
                Err(other) => {
                    eprintln!("FAIL: unexpected bomber submit error: {other}");
                    std::process::exit(1);
                }
            }
        }
        for (i, &session) in honest.iter().enumerate() {
            let bundle = Bundle::single(Transaction::transfer(
                tail_tenant(i as u64),
                tail_sink(i as u64),
                U256::from(1 + step),
            ));
            gateway.submit(session, bundle).expect("honest short bundle admitted");
        }
        gateway.run_round();
    }
    gateway.run_until_idle();
    TailOutcome {
        latencies: tail_latencies(gateway.log(), &honest),
        preempted: gateway.stats().preempted,
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Minimal JSON string escape (the only dynamic strings are digests and
/// violation messages — no exotic code points expected, but stay safe).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Extracts a `"<key>": <number>` value from a previously written
/// report, by hand — the workspace is hermetic (no serde).
fn baseline_field(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)?;
    let rest = &text[at + needle.len()..];
    let end = rest
        .find(|c: char| c != ' ' && c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Baseline guard inputs: `queries_per_bundle` is mandatory (every
/// committed report has it); `short_p99` is optional so the guard
/// tolerates a pre-preemption baseline.
struct Baseline {
    queries_per_bundle: f64,
    short_p99: Option<f64>,
}

fn read_baseline(path: &str) -> Baseline {
    let text = std::fs::read_to_string(path).unwrap_or_else(|err| {
        eprintln!("--baseline: cannot read {path}: {err}");
        std::process::exit(2);
    });
    let Some(queries_per_bundle) = baseline_field(&text, "queries_per_bundle") else {
        eprintln!("--baseline: {path} has no usable queries_per_bundle field");
        std::process::exit(2);
    };
    Baseline { queries_per_bundle, short_p99: baseline_field(&text, "short_p99") }
}

fn main() {
    let mut starve = false;
    let mut omit_plan = false;
    let mut out_path = String::from("BENCH_pre_execute.json");
    let mut baseline_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--starve" => starve = true,
            "--omit-plan" => omit_plan = true,
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
            }
            "--baseline" => {
                baseline_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--baseline requires a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!(
                    "usage: bench_pre_execute [--starve] [--omit-plan] [--out PATH] \
                     [--baseline PATH] (got {other:?})"
                );
                std::process::exit(2);
            }
        }
    }
    // Read the baseline up front: the fresh report may overwrite it.
    let baseline = baseline_path.as_deref().map(read_baseline);

    let set = EvalSet::generate(&tape_bench::eval_config());
    println!(
        "bench_pre_execute: {} txs, -full, starve={starve}, omit_plan={omit_plan}",
        set.len()
    );

    // Burst threshold derived from the cost model: a paced fetch stalls
    // at least ~avg_gap/4 beyond the bare wire cost, so anything under
    // 1.15x the per-query cost is "back-to-back" (a drain burst).
    let cost = CostModel::default();
    let oram_config = OramConfig { block_size: 1024, bucket_capacity: 4, height: 14 };
    let query_ns = cost.oram_query_ns(oram_config.blocks_per_access());
    let audit_cfg = AuditConfig {
        burst_gap_ns: query_ns + query_ns * 15 / 100,
        ..AuditConfig::default()
    };

    let first = run(&set, starve, omit_plan, &audit_cfg);
    let second = run(&set, starve, omit_plan, &audit_cfg);
    let digests_match = first.digest == second.digest;

    // Gas-bomb tail scenario (skipped on ablation runs — those are
    // negative controls for the auditor, not latency measurements).
    let tail = if starve || omit_plan {
        None
    } else {
        println!("  tail scenario: 1 gas-bomb tenant vs 3 honest, gas_slice={TAIL_SLICE}");
        let unloaded = tail_run(false);
        let loaded = tail_run(true);
        if loaded.preempted == 0 {
            eprintln!("FAIL: gas bombs never preempted under slicing");
            std::process::exit(1);
        }
        Some((unloaded, loaded))
    };
    let mut preempt_json = String::from("\"measured\": false");
    let mut tail_guard: Option<(u64, u64)> = None;
    if let Some((unloaded, loaded)) = &tail {
        let mut base = unloaded.latencies.clone();
        base.sort_unstable();
        let mut load = loaded.latencies.clone();
        load.sort_unstable();
        let baseline_p50 = percentile(&base, 50.0);
        let baseline_p99 = percentile(&base, 99.0);
        let short_p50 = percentile(&load, 50.0);
        let short_p99 = percentile(&load, 99.0);
        let ratio_x100 = short_p99.saturating_mul(100) / baseline_p99.max(1);
        preempt_json = format!(
            "\"measured\": true, \"gas_slice\": {TAIL_SLICE}, \"bomb_gas\": {TAIL_BOMB_GAS}, \
             \"honest_bundles\": {n}, \"preempted_segments\": {pre}, \
             \"short_p50\": {short_p50}, \"short_p99\": {short_p99}, \
             \"baseline_p50\": {baseline_p50}, \"baseline_p99\": {baseline_p99}, \
             \"p99_ratio_x100\": {ratio_x100}",
            n = load.len(),
            pre = loaded.preempted,
        );
        tail_guard = Some((short_p99, baseline_p99));
    }

    let mut sorted = first.latencies.clone();
    sorted.sort_unstable();
    let p50 = percentile(&sorted, 50.0);
    let p90 = percentile(&sorted, 90.0);
    let p99 = percentile(&sorted, 99.0);
    // Chip throughput: one chip runs `hevm_count` cores in parallel
    // (the §VI-D estimate), each at 1/mean-latency bundles per second.
    let cores = ServiceConfig::at_level(SecurityConfig::Full).hevm_count as f64;
    let tps = cores * first.txs as f64 * 1e9 / first.chip_ns.max(1) as f64;
    let oram_total = first.kv_queries + first.code_queries + first.prefetch_queries;
    let queries_per_bundle = oram_total as f64 / first.bundles.max(1) as f64;

    let mut violations_json = String::new();
    for (i, v) in first.audit.violations.iter().enumerate() {
        if i > 0 {
            violations_json.push(',');
        }
        violations_json.push('"');
        violations_json.push_str(&json_escape(&v.to_string()));
        violations_json.push('"');
    }

    let stats = &first.audit.stats;
    let json = format!(
        concat!(
            "{{\n",
            "  \"workload\": {{ \"transactions\": {txs}, \"bundles\": {bundles}, \"security\": \"-full\", \"starve_ablation\": {starve} }},\n",
            "  \"bundle_latency_ns\": {{ \"p50\": {p50}, \"p90\": {p90}, \"p99\": {p99}, \"mean\": {mean:.0} }},\n",
            "  \"chip_tps\": {tps:.3},\n",
            "  \"oram\": {{ \"kv_queries\": {kv}, \"code_queries\": {code}, \"prefetch_queries\": {pf}, \"queries_per_bundle\": {qpb:.2} }},\n",
            "  \"prefetch\": {{ \"issued\": {issued}, \"drained\": {drained}, \"gap_ema_ns\": {ema} }},\n",
            "  \"preemption\": {{ {preempt} }},\n",
            "  \"plan\": {{ \"omit_plan_ablation\": {omit_plan}, \"planned_pages\": {planned}, \"code_page_fetches\": {cpf}, \"unplanned_fetches\": {unplanned} }},\n",
            "  \"phase_means_ns\": {{ \"execute\": {exec_mean:.0}, \"bundle\": {bundle_mean:.0} }},\n",
            "  \"audit\": {{ \"passed\": {passed}, \"longest_code_burst\": {burst}, \"real_gap_cv_x100\": {rcv}, \"prefetch_gap_cv_x100\": {pcv}, \"violations\": [{violations}] }},\n",
            "  \"determinism\": {{ \"digests_match\": {dmatch}, \"telemetry_digest\": \"{digest}\" }}\n",
            "}}\n"
        ),
        txs = first.txs,
        bundles = first.bundles,
        starve = starve,
        p50 = p50,
        p90 = p90,
        p99 = p99,
        mean = first.chip_ns as f64 / first.bundles.max(1) as f64,
        tps = tps,
        kv = first.kv_queries,
        code = first.code_queries,
        pf = first.prefetch_queries,
        qpb = queries_per_bundle,
        issued = first.prefetch_issued,
        drained = first.prefetch_drained,
        ema = first.gap_ema_ns,
        preempt = preempt_json,
        omit_plan = omit_plan,
        planned = stats.planned_pages,
        cpf = stats.code_page_fetches,
        unplanned = stats.unplanned_fetches,
        exec_mean = first.execute_mean_ns,
        bundle_mean = first.bundle_mean_ns,
        passed = first.audit.passed(),
        burst = stats.longest_code_burst,
        rcv = stats.real_gap_cv_x100,
        pcv = stats.prefetch_gap_cv_x100,
        violations = violations_json,
        dmatch = digests_match,
        digest = json_escape(&first.digest),
    );
    std::fs::write(&out_path, &json).expect("write benchmark output");

    println!("  p50/p90/p99 bundle latency: {p50}/{p90}/{p99} ns");
    println!("  chip TPS: {tps:.3}");
    println!("  ORAM queries/bundle: {queries_per_bundle:.2}");
    println!(
        "  prefetch issued={} drained={}",
        first.prefetch_issued, first.prefetch_drained
    );
    println!(
        "  plan: planned_pages={} code_page_fetches={} unplanned={}",
        stats.planned_pages, stats.code_page_fetches, stats.unplanned_fetches
    );
    println!("  audit passed: {}", first.audit.passed());
    for v in &first.audit.violations {
        println!("    violation: {v}");
    }
    println!("  telemetry digest: {}", first.digest);
    println!("  digests match across runs: {digests_match}");
    println!("  wrote {out_path}");

    if let Some((short_p99, baseline_p99)) = tail_guard {
        println!(
            "  gas-bomb tail: short p99 {short_p99} ns vs unloaded baseline {baseline_p99} ns"
        );
        // The ISSUE acceptance bound, measured and enforced here: one
        // saturating gas-bomb tenant must not push honest short-bundle
        // p99 past 2x the no-adversary baseline.
        if short_p99 > 2 * baseline_p99 {
            eprintln!(
                "FAIL: honest short-bundle p99 {short_p99} exceeds 2x the no-adversary \
                 baseline {baseline_p99} under gas-bomb load"
            );
            std::process::exit(1);
        }
        println!("OK: honest p99 within 2x baseline under gas-bomb saturation");
    }

    if !digests_match {
        eprintln!("FAIL: telemetry digest drifted between two in-process runs");
        std::process::exit(1);
    }
    if let Some(baseline) = baseline {
        let qpb = baseline.queries_per_bundle;
        let limit = qpb * 1.10;
        println!(
            "  baseline queries/bundle: {qpb:.2} (limit {limit:.2}, measured {queries_per_bundle:.2})"
        );
        if queries_per_bundle > limit {
            eprintln!(
                "FAIL: ORAM queries/bundle regressed >10%: {queries_per_bundle:.2} vs \
                 baseline {qpb:.2}"
            );
            std::process::exit(1);
        }
        match (baseline.short_p99, tail_guard) {
            (Some(base_p99), Some((short_p99, _))) => {
                let limit = base_p99 * 1.10;
                println!(
                    "  baseline short p99: {base_p99:.0} ns (limit {limit:.0}, measured {short_p99})"
                );
                if short_p99 as f64 > limit {
                    eprintln!(
                        "FAIL: honest short-bundle p99 regressed >10%: {short_p99} vs \
                         baseline {base_p99:.0}"
                    );
                    std::process::exit(1);
                }
            }
            (None, Some(_)) => {
                println!("  baseline has no short_p99 (pre-preemption report) — p99 guard skipped");
            }
            _ => {}
        }
    }
    if starve || omit_plan {
        if first.audit.passed() {
            let which = if starve { "starvation" } else { "plan-omission" };
            eprintln!("FAIL: {which} ablation was NOT detected by the leakage auditor");
            std::process::exit(1);
        }
        if omit_plan
            && !first
                .audit
                .violations
                .iter()
                .any(|v| matches!(v, tape_sim::telemetry::audit::Violation::UnplannedCodePage { .. }))
        {
            eprintln!("FAIL: plan omission detected, but not as an UnplannedCodePage violation");
            std::process::exit(1);
        }
        println!("OK: auditor detected the injected leak (negative control)");
    } else if !first.audit.passed() {
        eprintln!("FAIL: leakage auditor found violations on the fixed pipeline");
        std::process::exit(1);
    }
}
