//! Deterministic pre-execution benchmark: runs the evaluation set
//! through a `-full` HarDTAPE device twice in-process, checks that the
//! telemetry digests agree (replay determinism), runs the §IV-D leakage
//! auditor over the recorded event stream, and emits
//! `BENCH_pre_execute.json` with bundle-latency percentiles, chip TPS,
//! and ORAM traffic per bundle.
//!
//! Flags:
//!
//! * `--starve` — negative control: re-arms the prefetcher deadline on
//!   every real query (the pre-fix starvation bug) and *expects the
//!   auditor to fail*. Exit code 0 means the leak was detected.
//! * `--omit-plan` — negative control for the plan-coverage check: the
//!   device withholds the last advertised page of every static prefetch
//!   plan (execution is untouched) and *expects the auditor to flag the
//!   unadvertised fetch*. Exit code 0 means the gap was detected.
//! * `--out PATH` — output path (default `BENCH_pre_execute.json`).
//! * `--baseline PATH` — regression guard: reads `queries_per_bundle`
//!   from a previously committed report and fails (exit 1) when the
//!   fresh run regresses by more than 10% — an accidental extra ORAM
//!   round-trip per bundle cannot land silently. The baseline is read
//!   before the output is written, so `--baseline` and `--out` may
//!   name the same file.
//!
//! Scale follows `TAPE_EVAL_SCALE` (small unless set).

use hardtape::{Bundle, HarDTape, SecurityConfig, ServiceConfig};
use tape_oram::OramConfig;
use tape_sim::telemetry::audit::{audit_events, AuditConfig, AuditReport};
use tape_sim::telemetry::{GaugeId, HistId};
use tape_sim::CostModel;
use tape_workload::EvalSet;

struct RunOutcome {
    latencies: Vec<u64>,
    chip_ns: u64,
    txs: u64,
    bundles: u64,
    kv_queries: u64,
    code_queries: u64,
    prefetch_queries: u64,
    prefetch_issued: u64,
    prefetch_drained: u64,
    gap_ema_ns: u64,
    execute_mean_ns: f64,
    bundle_mean_ns: f64,
    digest: String,
    audit: AuditReport,
}

fn run(set: &EvalSet, starve: bool, omit_plan: bool, audit_cfg: &AuditConfig) -> RunOutcome {
    let config = ServiceConfig {
        oram_height: 14,
        ..ServiceConfig::at_level(SecurityConfig::Full)
    };
    let mut device = HarDTape::new(config, set.env.clone(), &set.genesis).expect("device boots");
    device.set_prefetch_ablation(starve);
    device.set_plan_ablation(omit_plan);
    let mut user = device.connect_user(b"bench user").expect("attestation");

    let mut latencies = Vec::new();
    let mut chip_ns = 0u64;
    let mut txs = 0u64;
    for block in &set.blocks {
        for tx in block {
            let report = device
                .pre_execute(&mut user, &Bundle::single(tx.clone()))
                .expect("bundle accepted");
            latencies.push(report.total_ns);
            chip_ns += report.total_ns;
            txs += 1;
        }
    }

    let t = device.telemetry().clone();
    let audit = audit_events(&t.events(), t.dropped(), audit_cfg);
    let stats = device.oram_stats().expect("full device has ORAM");
    let (issued, drained) = device
        .prefetch_stats()
        .map(|p| (p.issued, p.drained))
        .unwrap_or((0, 0));
    RunOutcome {
        latencies,
        chip_ns,
        txs,
        bundles: txs,
        kv_queries: stats.kv_queries,
        code_queries: stats.code_queries,
        prefetch_queries: stats.prefetch_queries,
        prefetch_issued: issued,
        prefetch_drained: drained,
        gap_ema_ns: t.gauge_cell(GaugeId::PrefetchGapEmaNs).value,
        execute_mean_ns: t.hist(HistId::ExecuteNs).mean(),
        bundle_mean_ns: t.hist(HistId::BundleLatencyNs).mean(),
        digest: t.digest(),
        audit,
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Minimal JSON string escape (the only dynamic strings are digests and
/// violation messages — no exotic code points expected, but stay safe).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Extracts the `"queries_per_bundle": <float>` value from a previously
/// written report, by hand — the workspace is hermetic (no serde).
fn baseline_queries_per_bundle(path: &str) -> f64 {
    let text = std::fs::read_to_string(path).unwrap_or_else(|err| {
        eprintln!("--baseline: cannot read {path}: {err}");
        std::process::exit(2);
    });
    let key = "\"queries_per_bundle\":";
    let Some(at) = text.find(key) else {
        eprintln!("--baseline: {path} has no queries_per_bundle field");
        std::process::exit(2);
    };
    let rest = &text[at + key.len()..];
    let end = rest
        .find(|c: char| c != ' ' && c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].trim().parse().unwrap_or_else(|err| {
        eprintln!("--baseline: {path} queries_per_bundle is not a number: {err}");
        std::process::exit(2);
    })
}

fn main() {
    let mut starve = false;
    let mut omit_plan = false;
    let mut out_path = String::from("BENCH_pre_execute.json");
    let mut baseline_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--starve" => starve = true,
            "--omit-plan" => omit_plan = true,
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
            }
            "--baseline" => {
                baseline_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--baseline requires a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!(
                    "usage: bench_pre_execute [--starve] [--omit-plan] [--out PATH] \
                     [--baseline PATH] (got {other:?})"
                );
                std::process::exit(2);
            }
        }
    }
    // Read the baseline up front: the fresh report may overwrite it.
    let baseline = baseline_path.as_deref().map(baseline_queries_per_bundle);

    let set = EvalSet::generate(&tape_bench::eval_config());
    println!(
        "bench_pre_execute: {} txs, -full, starve={starve}, omit_plan={omit_plan}",
        set.len()
    );

    // Burst threshold derived from the cost model: a paced fetch stalls
    // at least ~avg_gap/4 beyond the bare wire cost, so anything under
    // 1.15x the per-query cost is "back-to-back" (a drain burst).
    let cost = CostModel::default();
    let oram_config = OramConfig { block_size: 1024, bucket_capacity: 4, height: 14 };
    let query_ns = cost.oram_query_ns(oram_config.blocks_per_access());
    let audit_cfg = AuditConfig {
        burst_gap_ns: query_ns + query_ns * 15 / 100,
        ..AuditConfig::default()
    };

    let first = run(&set, starve, omit_plan, &audit_cfg);
    let second = run(&set, starve, omit_plan, &audit_cfg);
    let digests_match = first.digest == second.digest;

    let mut sorted = first.latencies.clone();
    sorted.sort_unstable();
    let p50 = percentile(&sorted, 50.0);
    let p90 = percentile(&sorted, 90.0);
    let p99 = percentile(&sorted, 99.0);
    // Chip throughput: one chip runs `hevm_count` cores in parallel
    // (the §VI-D estimate), each at 1/mean-latency bundles per second.
    let cores = ServiceConfig::at_level(SecurityConfig::Full).hevm_count as f64;
    let tps = cores * first.txs as f64 * 1e9 / first.chip_ns.max(1) as f64;
    let oram_total = first.kv_queries + first.code_queries + first.prefetch_queries;
    let queries_per_bundle = oram_total as f64 / first.bundles.max(1) as f64;

    let mut violations_json = String::new();
    for (i, v) in first.audit.violations.iter().enumerate() {
        if i > 0 {
            violations_json.push(',');
        }
        violations_json.push('"');
        violations_json.push_str(&json_escape(&v.to_string()));
        violations_json.push('"');
    }

    let stats = &first.audit.stats;
    let json = format!(
        concat!(
            "{{\n",
            "  \"workload\": {{ \"transactions\": {txs}, \"bundles\": {bundles}, \"security\": \"-full\", \"starve_ablation\": {starve} }},\n",
            "  \"bundle_latency_ns\": {{ \"p50\": {p50}, \"p90\": {p90}, \"p99\": {p99}, \"mean\": {mean:.0} }},\n",
            "  \"chip_tps\": {tps:.3},\n",
            "  \"oram\": {{ \"kv_queries\": {kv}, \"code_queries\": {code}, \"prefetch_queries\": {pf}, \"queries_per_bundle\": {qpb:.2} }},\n",
            "  \"prefetch\": {{ \"issued\": {issued}, \"drained\": {drained}, \"gap_ema_ns\": {ema} }},\n",
            "  \"plan\": {{ \"omit_plan_ablation\": {omit_plan}, \"planned_pages\": {planned}, \"code_page_fetches\": {cpf}, \"unplanned_fetches\": {unplanned} }},\n",
            "  \"phase_means_ns\": {{ \"execute\": {exec_mean:.0}, \"bundle\": {bundle_mean:.0} }},\n",
            "  \"audit\": {{ \"passed\": {passed}, \"longest_code_burst\": {burst}, \"real_gap_cv_x100\": {rcv}, \"prefetch_gap_cv_x100\": {pcv}, \"violations\": [{violations}] }},\n",
            "  \"determinism\": {{ \"digests_match\": {dmatch}, \"telemetry_digest\": \"{digest}\" }}\n",
            "}}\n"
        ),
        txs = first.txs,
        bundles = first.bundles,
        starve = starve,
        p50 = p50,
        p90 = p90,
        p99 = p99,
        mean = first.chip_ns as f64 / first.bundles.max(1) as f64,
        tps = tps,
        kv = first.kv_queries,
        code = first.code_queries,
        pf = first.prefetch_queries,
        qpb = queries_per_bundle,
        issued = first.prefetch_issued,
        drained = first.prefetch_drained,
        ema = first.gap_ema_ns,
        omit_plan = omit_plan,
        planned = stats.planned_pages,
        cpf = stats.code_page_fetches,
        unplanned = stats.unplanned_fetches,
        exec_mean = first.execute_mean_ns,
        bundle_mean = first.bundle_mean_ns,
        passed = first.audit.passed(),
        burst = stats.longest_code_burst,
        rcv = stats.real_gap_cv_x100,
        pcv = stats.prefetch_gap_cv_x100,
        violations = violations_json,
        dmatch = digests_match,
        digest = json_escape(&first.digest),
    );
    std::fs::write(&out_path, &json).expect("write benchmark output");

    println!("  p50/p90/p99 bundle latency: {p50}/{p90}/{p99} ns");
    println!("  chip TPS: {tps:.3}");
    println!("  ORAM queries/bundle: {queries_per_bundle:.2}");
    println!(
        "  prefetch issued={} drained={}",
        first.prefetch_issued, first.prefetch_drained
    );
    println!(
        "  plan: planned_pages={} code_page_fetches={} unplanned={}",
        stats.planned_pages, stats.code_page_fetches, stats.unplanned_fetches
    );
    println!("  audit passed: {}", first.audit.passed());
    for v in &first.audit.violations {
        println!("    violation: {v}");
    }
    println!("  telemetry digest: {}", first.digest);
    println!("  digests match across runs: {digests_match}");
    println!("  wrote {out_path}");

    if !digests_match {
        eprintln!("FAIL: telemetry digest drifted between two in-process runs");
        std::process::exit(1);
    }
    if let Some(baseline) = baseline {
        let limit = baseline * 1.10;
        println!(
            "  baseline queries/bundle: {baseline:.2} (limit {limit:.2}, measured {queries_per_bundle:.2})"
        );
        if queries_per_bundle > limit {
            eprintln!(
                "FAIL: ORAM queries/bundle regressed >10%: {queries_per_bundle:.2} vs \
                 baseline {baseline:.2}"
            );
            std::process::exit(1);
        }
    }
    if starve || omit_plan {
        if first.audit.passed() {
            let which = if starve { "starvation" } else { "plan-omission" };
            eprintln!("FAIL: {which} ablation was NOT detected by the leakage auditor");
            std::process::exit(1);
        }
        if omit_plan
            && !first
                .audit
                .violations
                .iter()
                .any(|v| matches!(v, tape_sim::telemetry::audit::Violation::UnplannedCodePage { .. }))
        {
            eprintln!("FAIL: plan omission detected, but not as an UnplannedCodePage violation");
            std::process::exit(1);
        }
        println!("OK: auditor detected the injected leak (negative control)");
    } else if !first.audit.passed() {
        eprintln!("FAIL: leakage auditor found violations on the fixed pipeline");
        std::process::exit(1);
    }
}
