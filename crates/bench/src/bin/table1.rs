//! Regenerates **Table I**: the distribution of memory-like sizes per
//! frame, storage records per frame, and call depth per transaction,
//! measured from live execution of the synthetic evaluation set.
//!
//! Run with `TAPE_EVAL_SCALE=full` for the paper-sized 100×200 workload.

use tape_evm::Evm;
use tape_workload::{table_one, EvalSet, TableOneCollector};

fn main() {
    let config = tape_bench::eval_config();
    println!(
        "Generating evaluation set: {} blocks x {} txs (seed {})",
        config.blocks, config.txs_per_block, config.seed
    );
    let set = EvalSet::generate(&config);

    let mut evm = Evm::with_inspector(set.env.clone(), &set.genesis, TableOneCollector::new());
    for tx in set.all_transactions() {
        let result = evm.transact(tx).expect("evaluation set txs are valid");
        assert!(result.success, "evaluation set tx failed");
        evm.inspector_mut().finish_transaction();
    }
    let table = table_one(evm.inspector());

    println!("\n=== Table I (measured from execution) ===\n");
    println!("{}", table.render());

    println!("=== Paper's published values (blocks #19145194-#19145293) ===\n");
    println!("(a) code: 9.5 / 25.3 / 39.6 / 25.6 / 0.0   input: 95.0 / 4.0 / 0.2 / 0.0 / 0.1");
    println!("    memory: 92.7 / 5.7 / 0.6 / 0.0 / 0.1   return: 100.0 / 0.0 / 0.0 / 0.0 / 0.0");
    println!("(b) keys <=4: 79.9  5-16: 19.0  17-64: 0.01  >64: 1.09");
    println!("(c) depth 1: 40.8  2-5: 52.6  6-10: 6.3  >10: 0.4");

    // Shape assertions: the generator is calibrated to the paper's
    // marginals; warn loudly if it drifts.
    let checks: [(&str, f64, f64, f64); 6] = [
        ("input <1k share", table.input[0], 0.85, 1.0),
        ("memory <1k share", table.memory[0], 0.80, 1.0),
        ("return <1k share", table.return_data[0], 0.95, 1.0),
        ("keys <=4 share", table.storage_keys[0], 0.60, 0.95),
        ("depth 1 share", table.depth[0], 0.25, 0.60),
        ("depth 2-5 share", table.depth[1], 0.35, 0.70),
    ];
    let mut ok = true;
    for (name, value, lo, hi) in checks {
        let status = if (lo..=hi).contains(&value) { "ok" } else { "OUT OF BAND" };
        if status != "ok" {
            ok = false;
        }
        println!("check {name}: {:.1}% [{:.0}%..{:.0}%] {status}", value * 100.0, lo * 100.0, hi * 100.0);
    }
    println!("\nTable I shape: {}", if ok { "REPRODUCED" } else { "DRIFTED" });
}
