//! ORAM design-choice ablations (paper §IV-D):
//!
//! 1. **Tree height sweep** — the O(log n) bandwidth claim, evaluated on
//!    the Ethereum-shaped workload and extrapolated to the paper's
//!    1.1 TB world state (n ≈ 10⁹ → height ≈ 30).
//! 2. **Block size** — why 1 KB: small blocks violate the Ω(log² n)-bit
//!    bound and multiply code-fetch queries; larger blocks waste
//!    bandwidth on K-V queries.
//! 3. **Recursion** — the cost of storing the position map in
//!    higher-level ORAMs instead of on-chip.

use tape_crypto::{keccak256, SecureRng};
use tape_oram::{OramClient, OramConfig, OramServer, RecursiveOram};
use tape_sim::{Clock, CostModel};

fn main() {
    let cost = CostModel::default();

    // ---- 1. height sweep -------------------------------------------------
    println!("=== Tree height sweep (1 KB blocks, Z=4) ===\n");
    println!("{:>7} {:>14} {:>14} {:>16}", "height", "blocks moved", "bytes/access", "virtual time");
    for height in [10u32, 14, 18, 22, 26, 30] {
        let config = OramConfig { block_size: 1024, bucket_capacity: 4, height };
        let per_access_blocks = config.blocks_per_access();
        let ns = cost.oram_query_ns(per_access_blocks);
        println!(
            "{height:>7} {per_access_blocks:>14} {:>14} {:>13.3} ms",
            per_access_blocks as usize * config.block_size,
            ns as f64 / 1e6,
        );
    }
    println!(
        "\nheight 30 ≈ the paper's 1.1 TB world state (n ≈ 10⁹ 1 KB blocks):\n\
         bandwidth grows linearly in height (O(log n)) while the 2 ms link\n\
         round-trip still dominates the latency — the paper's premise that\n\
         full-state ORAM is affordable."
    );

    // Measured (not just modeled): actual per-access wall behavior at two
    // heights on a live tree.
    println!("\nmeasured virtual time per access (live tree):");
    for height in [10u32, 16] {
        let config = OramConfig { block_size: 1024, bucket_capacity: 4, height };
        let mut server = OramServer::new(config.clone());
        let mut client = OramClient::new(config, &[1u8; 16], SecureRng::from_seed(b"sweep"));
        let clock = Clock::new();
        for i in 0..64u64 {
            client
                .write(&mut server, &clock, &cost, &keccak256(i.to_be_bytes()), vec![0; 1024])
                .expect("in-memory ORAM write");
        }
        let before = clock.now();
        for i in 0..64u64 {
            client
                .read(&mut server, &clock, &cost, &keccak256(i.to_be_bytes()))
                .expect("in-memory ORAM read");
        }
        println!("  height {height}: {:.3} ms/access", (clock.now() - before) as f64 / 64.0 / 1e6);
    }

    // ---- 2. block size ----------------------------------------------------
    println!("\n=== Block size ablation (height 20) ===\n");
    println!(
        "{:>8} {:>10} {:>12} {:>16} {:>16} {:>14}",
        "block", "bits", "log2(n)^2", "queries/10KB", "KV waste/query", "time/code-fetch"
    );
    let total_state: u64 = 1_100_000_000_000; // 1.1 TB
    for block in [32usize, 256, 1024, 4096] {
        let n = total_state / block as u64;
        let log2n = 64 - n.leading_zeros() as u64;
        let bound = log2n * log2n;
        let bits = (block * 8) as u64;
        let config = OramConfig { block_size: block, bucket_capacity: 4, height: 20 };
        // A 10 KB contract needs ceil(10240/block) code-page queries.
        // (At 32 B the "block" is a single storage record — the paper's
        // problem (1) example: 256 bits << log²n ≈ 1225.)
        let code_queries = 10_240usize.div_ceil(block);
        let fetch_ns = code_queries as u64 * cost.oram_query_ns(config.blocks_per_access());
        // A K-V query wants 32 bytes; the rest of the block is padding.
        let waste = block - 32;
        let meets = if bits >= bound { "ok" } else { "VIOLATES" };
        println!(
            "{block:>8} {bits:>10} {bound:>9} ({meets}) {code_queries:>12} {waste:>13} B {:>11.1} ms",
            fetch_ns as f64 / 1e6
        );
    }
    println!(
        "\n32 B blocks (one record per block) violate the Ω(log² n)-bit\n\
         bound — the paper's problem (1). 1 KB satisfies it, keeps a 10 KB\n\
         code fetch to 10 queries, and holds exactly 32 storage records —\n\
         the paper's choice; 4 KB wastes 4064/4096 of every K-V response."
    );

    // ---- 3. recursion -----------------------------------------------------
    println!("\n=== Recursive position map ablation ===\n");
    let config = OramConfig { block_size: 1024, bucket_capacity: 4, height: 12 };
    for (label, on_chip) in [("flat map (all on-chip)", u64::MAX), ("recursive (64 on-chip)", 64)] {
        let mut oram = RecursiveOram::new(
            config.clone(),
            1 << 16,
            on_chip.min(1 << 16),
            &[2u8; 16],
            SecureRng::from_seed(b"ablation"),
        );
        let clock = Clock::new();
        for i in 0..32u64 {
            oram.write(&clock, &CostModel::default(), i * 97, vec![0u8; 1024])
                .expect("recursive ORAM write");
        }
        let q0 = oram.total_queries();
        let t0 = clock.now();
        for i in 0..32u64 {
            oram.read(&clock, &CostModel::default(), i * 97).expect("recursive ORAM read");
        }
        println!(
            "  {label}: {} levels, {:.1} server queries/access, {:.2} ms/access",
            oram.levels(),
            (oram.total_queries() - q0) as f64 / 32.0,
            (clock.now() - t0) as f64 / 32.0 / 1e6
        );
    }
    println!(
        "\nRecursion multiplies queries by the level count — the price of an\n\
         O(1) on-chip map. The paper keeps the top map on-chip (1 MB stash\n\
         budget), i.e. the flat row; recursion is the documented scaling\n\
         path beyond that."
    );
}
