//! Regenerates the **§VI-B correctness experiment**: replays the
//! evaluation set on the HEVM (through the ORAM) and on the reference
//! engine (the node's ground truth), diffing structured traces
//! step-by-step — and demonstrates the Memory Overflow Error that
//! roll-up style frames trigger.

use hardtape::{HybridState, SecurityConfig};
use tape_evm::{Evm, StructTracer, Transaction};
use tape_hevm::{Hevm, HevmAbort, HevmConfig};
use tape_oram::{ObliviousState, OramClient, OramConfig, OramServer};
use tape_primitives::{Address, U256};
use tape_sim::resources::MemoryConfig;
use tape_sim::{Clock, CostModel};
use tape_state::{Account, InMemoryState};
use tape_workload::EvalSet;

fn main() {
    let config = tape_bench::eval_config();
    let set = EvalSet::generate(&config);
    println!("§VI-B correctness: {} transactions, trace-for-trace\n", set.len());

    // The HEVM runs in the -full posture: world state only via ORAM.
    let oram_config = OramConfig { block_size: 1024, bucket_capacity: 4, height: 14 };
    let server = OramServer::new(oram_config.clone());
    let client = OramClient::new(
        oram_config,
        &[0x0Au8; 16],
        tape_crypto::SecureRng::from_seed(b"vi-b"),
    );
    let oram = ObliviousState::new(client, server, Clock::new(), CostModel::default());
    oram.sync_full_state(set.genesis.iter().map(|(a, acc)| (*a, acc.clone())))
        .expect("sync");
    let empty_local = InMemoryState::new();
    let reader = HybridState::new(SecurityConfig::Full, &empty_local, Some(&oram));

    let mut reference = Evm::with_inspector(set.env.clone(), &set.genesis, StructTracer::new());
    let mut hevm = Hevm::with_inspector(
        HevmConfig { charge_local_fetch: false, ..HevmConfig::default() },
        set.env.clone(),
        reader,
        Clock::new(),
        StructTracer::new(),
    );

    let mut identical = 0usize;
    let mut divergent = 0usize;
    let mut steps_compared = 0usize;
    for (i, tx) in set.all_transactions().enumerate() {
        reference.inspector_mut().clear();
        hevm.inspector_mut().clear();
        let expected = reference.transact(tx).expect("ground truth accepts");
        let actual = hevm.transact(tx).expect("hevm accepts");
        steps_compared += reference.inspector().steps().len();
        let same_trace = reference.inspector().first_divergence(hevm.inspector()).is_none();
        if expected == actual && same_trace {
            identical += 1;
        } else {
            divergent += 1;
            println!("  DIVERGENCE at tx {i}");
        }
    }
    println!("  transactions identical: {identical}/{}", set.len());
    println!("  interpreter steps compared: {steps_compared}");
    println!("  divergences: {divergent}");

    // --- The roll-up caveat --------------------------------------------
    // Paper: "The Memory Overflow Error may occur when executing roll-up
    // transactions, which may exceed the layer 2 frame size limit."
    // Demonstrate with a memory-heavy frame against a reduced layer 2.
    println!("\nRoll-up style frame vs constrained layer 2:");
    let mut state = InMemoryState::new();
    let user = Address::from_low_u64(1);
    state.put_account(user, Account::with_balance(U256::from(u64::MAX)));
    let rollup = Address::from_low_u64(0xA0);
    state.put_account(
        rollup,
        Account::with_code(
            tape_evm::asm::Asm::new()
                .push(1u64)
                .push(200u64 * 1024)
                .op(tape_evm::opcode::op::MSTORE)
                .stop()
                .build(),
        ),
    );
    let constrained = HevmConfig {
        mem: MemoryConfig { layer2_bytes: 256 * 1024, ..MemoryConfig::default() },
        ..HevmConfig::default()
    };
    let mut hevm = Hevm::new(constrained, set.env.clone(), &state, Clock::new());
    let mut tx = Transaction::call(user, rollup, vec![]);
    tx.gas_limit = 10_000_000;
    match hevm.transact(&tx) {
        Err(HevmAbort::MemoryOverflow { frame_pages, limit_pages }) => println!(
            "  Memory Overflow Error raised: frame {frame_pages} pages > limit {limit_pages} pages (as in the paper)"
        ),
        other => println!("  unexpected: {other:?}"),
    }

    println!(
        "\nShape: {}",
        if divergent == 0 { "REPRODUCED (all traces identical to ground truth)" } else { "DRIFTED" }
    );
}
