//! Regenerates **Figure 4**: end-to-end per-transaction time of Geth and
//! HarDTAPE under `-raw`, `-E`, `-ES`, `-ESO`, `-full`, on the
//! evaluation set with each transaction as its own bundle.
//!
//! Expected shape (paper): Geth ≈ 1 ms; `-raw` +0.5 ms; `-E` +~3 ms;
//! `-ES` +80 ms (ECDSA); `-ESO` +~30 ms (K-V ORAM); `-full` +~50 ms
//! (code ORAM), totaling ≈ 164 ms — all under the 600 ms usability bound.

use hardtape::{Bundle, HarDTape, SecurityConfig, ServiceConfig};
use tape_bench::{ms, GethTimer};
use tape_evm::Evm;
use tape_sim::{Clock, CostModel};
use tape_workload::EvalSet;

fn main() {
    let config = tape_bench::eval_config();
    let set = EvalSet::generate(&config);
    let total = set.len();
    println!("Fig. 4 — end-to-end per-transaction time ({total} txs, 1-tx bundles)\n");

    // --- Geth baseline -------------------------------------------------
    let clock = Clock::new();
    let timer = GethTimer::new(clock.clone(), CostModel::default());
    let mut geth = Evm::with_inspector(set.env.clone(), &set.genesis, timer);
    let mut geth_total = 0u64;
    for tx in set.all_transactions() {
        let before = clock.now();
        geth.inspector().charge_tx_overhead();
        geth.transact(tx).expect("valid tx");
        geth_total += clock.now() - before;
    }
    let geth_mean = geth_total as f64 / total as f64;
    println!("  Geth        {}", ms(geth_mean));

    // --- HarDTAPE ladder ------------------------------------------------
    let mut means = vec![("Geth", geth_mean)];
    for level in SecurityConfig::ALL {
        let service_config = ServiceConfig {
            oram_height: 14,
            ..ServiceConfig::at_level(level)
        };
        let mut device = HarDTape::new(service_config, set.env.clone(), &set.genesis).expect("device boots");
        let mut user = device.connect_user(b"fig4 user").expect("attestation");
        let mut sum = 0u64;
        for tx in set.all_transactions() {
            let report = device
                .pre_execute(&mut user, &Bundle::single(tx.clone()))
                .expect("bundle accepted");
            sum += report.total_ns;
        }
        let mean = sum as f64 / total as f64;
        println!("  HarDTAPE{:5} {}", level.label(), ms(mean));
        means.push((level.label(), mean));
    }

    println!("\nIncremental cost of each security feature:");
    for pair in means.windows(2) {
        println!(
            "  {:>6} -> {:<6} +{}",
            pair[0].0,
            pair[1].0,
            ms(pair[1].1 - pair[0].1)
        );
    }

    let full = means.last().expect("full config ran").1;
    println!("\n-full mean: {}  (usability bound: 600 ms)", ms(full));
    println!(
        "Shape: {}",
        if full < 600_000_000.0 && means.windows(2).all(|w| w[0].1 < w[1].1) {
            "REPRODUCED (monotonic ladder, under the latency bound)"
        } else {
            "DRIFTED"
        }
    );
}
