//! Deterministic fleet benchmark: a [`FleetRouter`] fronting K `-ES`
//! HarDTAPE devices under a seeded honest workload, emitting
//! `BENCH_fleet.json` with:
//!
//! * **latency vs device count** — admit→complete virtual-latency
//!   percentiles and fleet makespan at K = 1, 2, 4 over the same
//!   tenant workload (the §VI-D horizontal-scaling claim, measured);
//! * **fairness** — rendezvous shard balance (tenants per device) and
//!   Jain's index over per-device completed bundles at K = 4;
//! * **staleness** — worst per-device head age and stale-served count
//!   at the end of the run (all devices sync from one `FeedSet`);
//! * **degradation curve** — the same K = 4 workload with 1 of 4
//!   devices crashed at 25% / 50% / 75% of the schedule: affected
//!   tenants migrate to survivors and their queued work is resubmitted,
//!   so every admitted bundle still resolves OK, at a tail-latency
//!   cost the curve records.
//!
//! The headline acceptance bound is enforced in-process: the honest
//! p99 with one device lost mid-run (the 50% kill point) must stay
//! within 3x the no-loss K = 4 p99. Losing a quarter of the fleet
//! costs tail latency — survivors absorb the migrated load — but it
//! must not cost completions (exactly-once is asserted) and must not
//! blow the tail unboundedly. The committed JSON is the measured
//! evidence; `scripts/verify.sh --bench` regenerates and re-checks it.
//!
//! A dead device's frozen log keeps its never-completed admits; work
//! resubmitted on a survivor is measured from its re-admission there.
//! The failover gap itself is visible in the makespan, not the
//! per-bundle latencies.
//!
//! Flags:
//!
//! * `--out PATH` — output path (default `BENCH_fleet.json`).
//! * `--baseline PATH` — regression guard: reads `no_loss_p99` and
//!   `one_loss_p99` from a previously committed report and fails
//!   (exit 1) when the fresh run regresses by more than 10% on either.
//!   Read before the output is written, so `--baseline` and `--out`
//!   may name the same file.
//!
//! The kill-at-50% scenario runs twice and the two router digests must
//! agree — the fleet schedule (sharding, migration, resubmission
//! order) is deterministic per seed, or the benchmark fails.

use std::collections::{BTreeMap, HashMap};

use hardtape::{Bundle, Gateway, GatewayConfig, GatewayError, HarDTape, SecurityConfig, ServiceConfig};
use tape_evm::{Env, Transaction};
use tape_fleet::{FleetConfig, FleetError, FleetRouter, FleetStats};
use tape_node::{BlockFeed, FeedSet, FeedSetConfig, Node};
use tape_primitives::{Address, U256};
use tape_sim::queue::{interleave, EventLog};
use tape_state::{Account, InMemoryState};

const SEED: u64 = 0xF1EE7;
const TENANTS: usize = 48;
const STEPS: usize = 4;
const FLEET_K: usize = 4;
/// The device the degradation scenarios crash (1 of 4).
const KILL_DEVICE: usize = 1;
/// Documented acceptance bound: one-device-loss honest p99 within 3x
/// the no-loss K = 4 p99.
const ONE_LOSS_P99_BOUND_X100: u64 = 300;

fn tenant_addr(i: usize) -> Address {
    Address::from_low_u64(0xB000 + i as u64)
}

fn sink_addr(i: usize) -> Address {
    Address::from_low_u64(0x3_0000 + i as u64)
}

/// Chain blocks spend from a non-tenant account so receipts depend
/// only on genesis + the tenant's own bundle (mirrors `tests/fleet.rs`).
fn chain_producer() -> Address {
    Address::from_low_u64(0xC0DE)
}

fn genesis() -> InMemoryState {
    let mut state = InMemoryState::new();
    for i in 0..TENANTS {
        state.put_account(tenant_addr(i), Account::with_balance(U256::from(u64::MAX)));
    }
    state.put_account(chain_producer(), Account::with_balance(U256::from(u64::MAX)));
    state
}

fn transfer(tenant: usize, step: usize) -> Bundle {
    Bundle::single(Transaction::transfer(
        tenant_addr(tenant),
        sink_addr(tenant),
        U256::from(1 + step as u64),
    ))
}

fn feedset() -> FeedSet {
    FeedSet::new(
        (0..3).map(|_| BlockFeed::new(Node::new(genesis(), Env::default()))).collect(),
        FeedSetConfig::default(),
    )
}

fn produce_on_all(feeds: &mut FeedSet, step: u64) {
    for i in 0..feeds.len() {
        feeds.feed_mut(i).expect("feed exists").node_mut().produce_block(vec![
            Transaction::transfer(chain_producer(), sink_addr(0), U256::from(900 + step)),
        ]);
    }
}

fn router(devices: usize, seed: u64) -> FleetRouter {
    let genesis = genesis();
    let gateways: Vec<Gateway> = (0..devices)
        .map(|d| {
            let service = ServiceConfig {
                oram_height: 10,
                seed: seed ^ (0xBE7C + d as u64),
                ..ServiceConfig::at_level(SecurityConfig::Es)
            };
            Gateway::new(
                HarDTape::new(service, Env::default(), &genesis).expect("device boots"),
                GatewayConfig { queue_depth: 8, admission_budget: 10_000, ..GatewayConfig::default() },
            )
        })
        .collect();
    FleetRouter::new(gateways, FleetConfig::default())
}

/// Admit→complete virtual latencies parsed from one gateway's event
/// log, plus the device's last completion timestamp (for makespan).
fn gateway_latencies(log: &EventLog) -> (Vec<u64>, u64) {
    let mut admits: HashMap<u64, u64> = HashMap::new();
    let mut out = Vec::new();
    let mut last_complete = 0u64;
    for line in log.lines() {
        let mut parts = line.split_whitespace();
        let Some(t) = parts
            .next()
            .and_then(|p| p.strip_prefix("t="))
            .and_then(|v| v.parse::<u64>().ok())
        else {
            continue;
        };
        let Some(verb) = parts.next() else { continue };
        let ticket = parts
            .nth(1)
            .and_then(|p| p.strip_prefix("ticket="))
            .and_then(|v| v.parse::<u64>().ok());
        match (verb, ticket) {
            ("admit", Some(k)) => {
                admits.insert(k, t);
            }
            ("complete", Some(k)) => {
                if let Some(&at) = admits.get(&k) {
                    out.push(t - at);
                    last_complete = last_complete.max(t);
                }
            }
            _ => {}
        }
    }
    (out, last_complete)
}

struct ScenarioOutcome {
    /// Sorted admit→complete latencies across all devices.
    latencies: Vec<u64>,
    /// Latest completion timestamp across the fleet (virtual makespan).
    makespan_ns: u64,
    digest: String,
    stats: FleetStats,
    /// Rendezvous shard sizes at connect time, per device.
    tenants_per_device: Vec<usize>,
    /// OK completions resolved per device.
    ok_per_device: Vec<u64>,
    /// Worst head age across surviving devices at the end of the run.
    staleness_max_ns: u64,
    served_stale: u64,
}

/// One seeded honest run: `TENANTS` tenants, `STEPS` bundles each in a
/// seeded interleave, rounds every 6 submissions, a fleet-wide quorum
/// sync every 48, and (when `kill_at` is set) a crash of `KILL_DEVICE`
/// at that point in the schedule.
fn run_scenario(devices: usize, seed: u64, kill_at: Option<usize>) -> ScenarioOutcome {
    let mut router = router(devices, seed);
    let mut feeds = feedset();
    produce_on_all(&mut feeds, 0);
    let boot_sync = router.sync_all(&mut feeds);
    for (device, outcome) in &boot_sync.outcomes {
        assert!(outcome.is_ok(), "boot sync on device {device}: {outcome:?}");
    }

    let mut sessions = Vec::with_capacity(TENANTS);
    let mut tenants_per_device = vec![0usize; devices];
    for i in 0..TENANTS {
        let session = router
            .connect(format!("fleet bench tenant {i}").as_bytes())
            .expect("attestation");
        tenants_per_device[router.tenant_device(session).expect("registered")] += 1;
        sessions.push(session);
    }

    let order = interleave(&vec![STEPS; TENANTS], seed);
    let kill_op = kill_at.unwrap_or(usize::MAX);
    let mut steps = vec![0usize; TENANTS];
    let mut admitted: BTreeMap<u64, usize> = BTreeMap::new();
    let mut completions = Vec::new();
    let mut produced = 0u64;

    for (op, &tenant) in order.iter().enumerate() {
        if op == kill_op {
            completions.extend(router.fail_device(KILL_DEVICE));
        }
        let step = steps[tenant];
        steps[tenant] += 1;
        let bundle = transfer(tenant, step);
        let ticket = match router.submit(sessions[tenant], bundle.clone()) {
            Ok(ticket) => ticket,
            Err(FleetError::Gateway(GatewayError::Overloaded { .. })) => {
                completions.extend(router.run_round());
                router.submit(sessions[tenant], bundle).expect("admits after a drain round")
            }
            Err(err) => panic!("honest submit refused: {err}"),
        };
        admitted.insert(ticket, tenant);
        if op % 6 == 5 {
            completions.extend(router.run_round());
        }
        // Offset from the round cadence so the run's tail executes
        // *after* the last sync — the staleness metric then measures a
        // real head age instead of a freshly-synced zero.
        if op % 48 == 23 {
            produced += 1;
            produce_on_all(&mut feeds, produced);
            let report = router.sync_all(&mut feeds);
            for (device, outcome) in &report.outcomes {
                assert!(outcome.is_ok(), "mid-run sync on device {device}: {outcome:?}");
            }
            completions.extend(report.shed);
        }
    }
    completions.extend(router.run_until_idle());

    // Exactly-once across the crash: every admitted fleet ticket
    // resolves once, and (honest workload, survivors available) OK.
    let mut seen: BTreeMap<u64, u32> = BTreeMap::new();
    let mut ok_per_device = vec![0u64; devices];
    for completion in &completions {
        assert!(admitted.contains_key(&completion.ticket), "unknown ticket completed");
        *seen.entry(completion.ticket).or_insert(0) += 1;
        match &completion.outcome {
            Ok(_) => ok_per_device[completion.device] += 1,
            Err(err) => panic!("honest bundle failed: {err}"),
        }
    }
    assert_eq!(seen.len(), admitted.len(), "every admitted ticket completes");
    assert!(seen.values().all(|&n| n == 1), "no ticket completes twice");
    assert_eq!(router.queued_total(), 0, "fleet drained");
    let stats = router.stats();
    assert_eq!(stats.completed_ok + stats.completed_err, stats.admitted);
    router.converged_head().expect("survivors agree on one head");

    let mut latencies = Vec::new();
    let mut makespan_ns = 0u64;
    let mut staleness_max_ns = 0u64;
    let mut served_stale = 0u64;
    for d in 0..devices {
        if kill_at.is_some() && d == KILL_DEVICE {
            continue; // frozen log: its resubmitted work is measured on survivors
        }
        let (device_latencies, last_complete) = gateway_latencies(router.gateway(d).log());
        latencies.extend(device_latencies);
        makespan_ns = makespan_ns.max(last_complete);
        staleness_max_ns = staleness_max_ns.max(router.gateway(d).staleness_ns());
        served_stale += router.gateway(d).stats().served_stale;
    }
    latencies.sort_unstable();
    ScenarioOutcome {
        latencies,
        makespan_ns,
        digest: router.digest(),
        stats,
        tenants_per_device,
        ok_per_device,
        staleness_max_ns,
        served_stale,
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Jain's fairness index over per-device completed-bundle counts:
/// 1.0 = perfectly even, 1/n = all work on one device.
fn jain_index(xs: &[u64]) -> f64 {
    let n = xs.len() as f64;
    let sum: f64 = xs.iter().map(|&x| x as f64).sum();
    let sum_sq: f64 = xs.iter().map(|&x| (x as f64) * (x as f64)).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n * sum_sq)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Extracts a `"<key>": <number>` value from a previously written
/// report, by hand — the workspace is hermetic (no serde).
fn baseline_field(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)?;
    let rest = &text[at + needle.len()..];
    let end = rest
        .find(|c: char| c != ' ' && c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

struct Baseline {
    no_loss_p99: f64,
    one_loss_p99: f64,
}

fn read_baseline(path: &str) -> Baseline {
    let text = std::fs::read_to_string(path).unwrap_or_else(|err| {
        eprintln!("--baseline: cannot read {path}: {err}");
        std::process::exit(2);
    });
    let (Some(no_loss_p99), Some(one_loss_p99)) =
        (baseline_field(&text, "no_loss_p99"), baseline_field(&text, "one_loss_p99"))
    else {
        eprintln!("--baseline: {path} lacks no_loss_p99 / one_loss_p99 fields");
        std::process::exit(2);
    };
    Baseline { no_loss_p99, one_loss_p99 }
}

fn main() {
    let mut out_path = String::from("BENCH_fleet.json");
    let mut baseline_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
            }
            "--baseline" => {
                baseline_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--baseline requires a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("usage: bench_fleet [--out PATH] [--baseline PATH] (got {other})");
                std::process::exit(2);
            }
        }
    }
    let baseline = baseline_path.as_deref().map(read_baseline);

    // Latency vs device count over the identical workload.
    let mut scaling = Vec::new();
    for &k in &[1usize, 2, 4] {
        let outcome = run_scenario(k, SEED, None);
        eprintln!(
            "K={k}: {} bundles, p50={} p99={} makespan={}",
            outcome.latencies.len(),
            percentile(&outcome.latencies, 50.0),
            percentile(&outcome.latencies, 99.0),
            outcome.makespan_ns,
        );
        scaling.push((k, outcome));
    }
    let no_loss = &scaling.iter().find(|(k, _)| *k == FLEET_K).expect("K=4 ran").1;
    let no_loss_p50 = percentile(&no_loss.latencies, 50.0);
    let no_loss_p99 = percentile(&no_loss.latencies, 99.0);

    // Kill-one-device degradation curve, with a determinism double-run
    // at the 50% point.
    let total_ops = TENANTS * STEPS;
    let mut curve = Vec::new();
    let mut mid_digest = String::new();
    for &frac in &[25usize, 50, 75] {
        let kill_at = total_ops * frac / 100;
        let outcome = run_scenario(FLEET_K, SEED, Some(kill_at));
        assert_eq!(outcome.stats.device_failures, 1);
        assert!(outcome.stats.migrations > 0, "kill@{frac}% migrates the dead device's tenants");
        eprintln!(
            "kill@{frac}%: p99={} migrations={} makespan={}",
            percentile(&outcome.latencies, 99.0),
            outcome.stats.migrations,
            outcome.makespan_ns,
        );
        if frac == 50 {
            mid_digest = outcome.digest.clone();
        }
        curve.push((frac, outcome));
    }
    let replay = run_scenario(FLEET_K, SEED, Some(total_ops * 50 / 100));
    let digests_match = replay.digest == mid_digest;
    if !digests_match {
        eprintln!("FAIL: kill@50% fleet digest drifted across in-process runs");
    }

    let one_loss = &curve.iter().find(|(f, _)| *f == 50).expect("50% ran").1;
    let one_loss_p99 = percentile(&one_loss.latencies, 99.0);
    let ratio_x100 = (one_loss_p99 * 100).checked_div(no_loss_p99).unwrap_or(0);
    let bound_ok = ratio_x100 <= ONE_LOSS_P99_BOUND_X100;
    if bound_ok {
        eprintln!(
            "OK: one-device-loss honest p99 {one_loss_p99} within {}x of no-loss {no_loss_p99} \
             (ratio {ratio_x100}/100)",
            ONE_LOSS_P99_BOUND_X100 / 100,
        );
    } else {
        eprintln!(
            "FAIL: one-device-loss honest p99 {one_loss_p99} exceeds {}x no-loss {no_loss_p99} \
             (ratio {ratio_x100}/100)",
            ONE_LOSS_P99_BOUND_X100 / 100,
        );
    }

    let fairness_jain = jain_index(&no_loss.ok_per_device);
    let shard_min = no_loss.tenants_per_device.iter().min().copied().unwrap_or(0);
    let shard_max = no_loss.tenants_per_device.iter().max().copied().unwrap_or(0);

    // Regression guard before writing, so --baseline and --out may
    // name the same file.
    let mut regressed = false;
    if let Some(base) = &baseline {
        for (name, fresh, base) in [
            ("no_loss_p99", no_loss_p99 as f64, base.no_loss_p99),
            ("one_loss_p99", one_loss_p99 as f64, base.one_loss_p99),
        ] {
            let limit = base * 1.10;
            if fresh > limit {
                eprintln!("FAIL: {name} {fresh:.0} exceeds baseline {base:.0} by >10%");
                regressed = true;
            } else {
                eprintln!("OK: {name} {fresh:.0} within 10% of baseline {base:.0}");
            }
        }
    }

    let scaling_json: Vec<String> = scaling
        .iter()
        .map(|(k, o)| {
            format!(
                "    {{ \"devices\": {k}, \"bundles\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \
                 \"p99_ns\": {}, \"makespan_ns\": {} }}",
                o.latencies.len(),
                percentile(&o.latencies, 50.0),
                percentile(&o.latencies, 90.0),
                percentile(&o.latencies, 99.0),
                o.makespan_ns,
            )
        })
        .collect();
    let curve_json: Vec<String> = curve
        .iter()
        .map(|(frac, o)| {
            format!(
                "    {{ \"kill_frac_pct\": {frac}, \"p50_ns\": {}, \"p99_ns\": {}, \
                 \"makespan_ns\": {}, \"migrations\": {}, \"shed_on_failure\": {} }}",
                percentile(&o.latencies, 50.0),
                percentile(&o.latencies, 99.0),
                o.makespan_ns,
                o.stats.migrations,
                o.stats.shed_on_failure,
            )
        })
        .collect();

    let json = format!(
        "{{\n\
         \x20 \"workload\": {{ \"tenants\": {TENANTS}, \"bundles_per_tenant\": {STEPS}, \
         \"security\": \"es\", \"seed\": {SEED} }},\n\
         \x20 \"latency_vs_devices\": [\n{}\n  ],\n\
         \x20 \"fairness\": {{ \"jain_x1000\": {}, \"tenants_per_device_min\": {shard_min}, \
         \"tenants_per_device_max\": {shard_max} }},\n\
         \x20 \"staleness\": {{ \"max_head_age_ns\": {}, \"served_stale\": {} }},\n\
         \x20 \"degradation\": {{\n\
         \x20   \"no_loss_p50\": {no_loss_p50},\n\
         \x20   \"no_loss_p99\": {no_loss_p99},\n\
         \x20   \"one_loss_p99\": {one_loss_p99},\n\
         \x20   \"bound_x100\": {ONE_LOSS_P99_BOUND_X100},\n\
         \x20   \"ratio_x100\": {ratio_x100},\n\
         \x20   \"curve\": [\n{}\n  ]\n\
         \x20 }},\n\
         \x20 \"determinism\": {{ \"digests_match\": {digests_match}, \"fleet_digest\": \"{}\" }}\n\
         }}\n",
        scaling_json.join(",\n"),
        (fairness_jain * 1000.0).round() as u64,
        no_loss.staleness_max_ns,
        no_loss.served_stale,
        curve_json.join(",\n"),
        json_escape(&mid_digest),
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|err| {
        eprintln!("cannot write {out_path}: {err}");
        std::process::exit(2);
    });
    eprintln!("wrote {out_path}");

    if !digests_match || !bound_ok || regressed {
        std::process::exit(1);
    }
}
