//! Regenerates the **§VI-A resource-utility table**: per-HEVM LUT/FF/
//! BlockRAM consumption, the 3-HEVM-per-chip LUT bottleneck, and the
//! Hypervisor's 248 KB memory footprint against the 256 KB OCM.
//!
//! BRAM is derived from the memory architecture; LUT/FF are the paper's
//! Vivado constants (synthesis cannot be re-run here — see DESIGN.md).

use tape_sim::resources::{report, ChipCapacity, MemoryConfig};

fn main() {
    let config = MemoryConfig::default();
    let chip = ChipCapacity::default();
    let r = report(&config, &chip);

    println!("=== §VI-A Resource utility (XCZU15EV) ===\n");
    println!("Per-HEVM memory architecture:");
    println!("  layer-1 code cache        {:>8} B", config.code_cache);
    println!("  layer-1 input cache       {:>8} B", config.input_cache);
    println!("  layer-1 memory cache      {:>8} B", config.memory_cache);
    println!("  layer-1 return cache      {:>8} B", config.return_cache);
    println!("  layer-1 world-state cache {:>8} B", config.state_cache);
    println!("  runtime stack             {:>8} B", config.stack_bytes);
    println!("  frame state               {:>8} B", config.frame_state_bytes);
    println!("  layer-2 BRAM window       {:>8} B", config.layer2_bram_window);
    println!("  tracer buffer             {:>8} B", config.tracer_bytes);
    println!("  misc/pipeline             {:>8} B", config.misc_bytes);
    println!("  layer-2 total ring        {:>8} B (1 MB; frame limit {} B)",
        config.layer2_bytes, config.frame_size_limit());

    println!("\nPer-HEVM consumption:");
    println!("  LUTs  {:>8}   (paper: 103388)", r.luts_per_hevm);
    println!("  FFs   {:>8}   (paper: 37104)", r.ffs_per_hevm);
    println!("  BRAM  {:>8} B (paper: 509 KB = {} B)", r.bram_per_hevm, 509 * 1024);

    println!("\nChip capacity: {} LUTs, {} FFs, {} B BRAM", chip.luts, chip.ffs, chip.bram_bytes);
    println!("Max HEVMs per chip: {}  (bottleneck: {})", r.max_hevms, r.bottleneck);

    println!("\nHypervisor memory:");
    println!("  binary {:>7} B   (paper: 156 KB)", r.hypervisor.binary_bytes);
    println!("  stack  {:>7} B   (paper: 92 KB)", r.hypervisor.stack_bytes);
    println!(
        "  total  {:>7} B vs {} B OCM -> fits: {}",
        r.hypervisor.total(),
        chip.hypervisor_ocm,
        r.hypervisor_fits
    );

    let reproduced = r.max_hevms == 3
        && r.bottleneck == "LUT"
        && r.bram_per_hevm == 509 * 1024
        && r.hypervisor_fits;
    println!("\nShape: {}", if reproduced { "REPRODUCED" } else { "DRIFTED" });
}
