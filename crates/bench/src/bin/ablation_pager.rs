//! Layer-3 pager ablation (paper §IV-B / threat A5): how much does the
//! random pre-evict/pre-load noise actually hide frame sizes?
//!
//! An adversary watches swap sizes and guesses each frame's true page
//! count (its best strategy against `observed = true + U[0, noise]` is
//! `observed - noise/2`, and with zero noise it reads sizes exactly).
//! We sweep the noise level and report the adversary's exact-hit rate
//! and mean absolute error — the quantified version of the paper's
//! "too imprecise to identify the running contract" argument.

use tape_crypto::SecureRng;
use tape_hevm::Layer3Pager;
use tape_sim::{Clock, CostModel};

fn main() {
    let cost = CostModel::default();
    println!("=== Pre-evict/pre-load noise vs adversary inference (A5) ===\n");
    println!(
        "{:>10} {:>14} {:>16} {:>18}",
        "max noise", "exact hits", "mean abs error", "distinct sizes seen"
    );

    // Frames of known true sizes the adversary tries to recover.
    let true_sizes: Vec<usize> = (0..400).map(|i| 2 + (i % 7)).collect(); // 2..=8 pages

    for max_noise in [0usize, 2, 4, 6, 10] {
        let mut pager = Layer3Pager::new(
            &[9u8; 16],
            SecureRng::from_seed(&(max_noise as u64).to_be_bytes()),
            1024,
            max_noise,
        );
        let clock = Clock::new();

        let mut exact = 0usize;
        let mut abs_err = 0usize;
        let mut seen = std::collections::HashSet::new();
        for &pages in &true_sizes {
            let frame = vec![0u8; pages * 1024];
            let handle = pager.swap_out(&frame, &clock, &cost);
            let observed = pager.swap_log().last().expect("logged").pages_out;
            seen.insert(observed);
            // Adversary's maximum-likelihood guess.
            let guess = observed.saturating_sub(max_noise / 2).max(1);
            if guess == pages {
                exact += 1;
            }
            abs_err += guess.abs_diff(pages);
            let _ = pager.swap_in(handle, &clock, &cost).expect("honest pager");
        }
        println!(
            "{max_noise:>10} {:>12.1} % {:>13.2} pages {:>18}",
            exact as f64 * 100.0 / true_sizes.len() as f64,
            abs_err as f64 / true_sizes.len() as f64,
            seen.len()
        );
    }

    println!(
        "\nWith zero noise the adversary reads every frame size exactly\n\
         (100% hits); at the default noise of ~6 pages the exact-hit rate\n\
         collapses toward guessing and the mean error exceeds the spread\n\
         of real frame sizes — sizes and depths become 'too rough to\n\
         identify the pre-executed contract' (paper §IV-B).\n"
    );

    // Latency cost of the noise: observed pages move, true work constant.
    println!("=== Cost of the noise ===\n");
    for max_noise in [0usize, 6, 12] {
        let mut pager = Layer3Pager::new(
            &[9u8; 16],
            SecureRng::from_seed(b"cost"),
            1024,
            max_noise,
        );
        let clock = Clock::new();
        let before = clock.now();
        for _ in 0..100 {
            let h = pager.swap_out(&vec![0u8; 4096], &clock, &cost);
            pager.swap_in(h, &clock, &cost).expect("honest pager");
        }
        println!(
            "  noise {max_noise:>2}: {:>8.3} ms per swap-out+in pair",
            (clock.now() - before) as f64 / 100.0 / 1e6
        );
    }
    println!("\nNoise costs microseconds per swap; swaps are rare (Table I).");
}
