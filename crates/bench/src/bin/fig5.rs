//! Regenerates **Figure 5**: execution time per operation (log scale) of
//! Geth, TSC-VEE, and HarDTAPE when all data is found locally (warm
//! caches, no ORAM): arithmetic ops, local storage accesses, and an
//! ERC-20 Transfer call.
//!
//! Expected shape (paper): no significant difference between the three
//! platforms, except Geth slower on Transfer (frame-setup overhead).

use tape_bench::GethTimer;
use tape_evm::{Env, Evm, Transaction};
use tape_hevm::{Hevm, HevmConfig};
use tape_primitives::{Address, U256};
use tape_sim::{Clock, CostModel};
use tape_state::{Account, InMemoryState};
use tape_workload::{contracts, microbench};

const ITERS: u64 = 2_000;

fn sender() -> Address {
    Address::from_low_u64(1)
}

fn state_with(code: Vec<u8>) -> (InMemoryState, Address) {
    let target = Address::from_low_u64(0xC0DE);
    let mut state = InMemoryState::new();
    state.put_account(sender(), Account::with_balance(U256::from(u64::MAX)));
    state.put_account(target, Account::with_code(code));
    (state, target)
}

fn erc20_state() -> (InMemoryState, Address, Vec<u8>) {
    let token = Address::from_low_u64(0x70CE);
    let mut state = InMemoryState::new();
    state.put_account(sender(), Account::with_balance(U256::from(u64::MAX)));
    let mut t = Account::with_code(contracts::erc20_runtime());
    t.storage
        .insert(contracts::balance_slot(&sender()), U256::from(u64::MAX));
    state.put_account(token, t);
    let calldata = contracts::encode_call(
        contracts::sel::transfer(),
        &[Address::from_low_u64(2).into_word(), U256::ONE],
    );
    (state, token, calldata)
}

/// A plain transfer used to measure and subtract the per-transaction
/// base cost (session handling, intrinsic processing), isolating the
/// per-operation time Fig. 5 reports.
fn baseline_tx(state: &InMemoryState) -> Transaction {
    let _ = state;
    Transaction::transfer(sender(), Address::from_low_u64(0xE0A), U256::ONE)
}

/// Runs `tx` twice on Geth (reference EVM + software cost model) and
/// returns the virtual time of the *second* (warm) run, minus the
/// plain-transfer baseline.
fn geth_time(state: &InMemoryState, tx: &Transaction) -> u64 {
    let clock = Clock::new();
    let timer = GethTimer::new(clock.clone(), CostModel::default());
    let mut evm = Evm::with_inspector(Env::default(), state, timer);
    let base = baseline_tx(state);
    evm.transact(&base).expect("baseline warmup");
    let b0 = clock.now();
    evm.transact(&base).expect("baseline");
    let base_ns = clock.now() - b0;
    evm.transact(tx).expect("warmup");
    let before = clock.now();
    evm.transact(tx).expect("measured run");
    (clock.now() - before).saturating_sub(base_ns)
}

/// Same on an HEVM; `local_fetch` distinguishes HarDTAPE (fetches from
/// untrusted memory on cold access) from TSC-VEE (everything prefetched
/// into secure memory).
fn hevm_time(state: &InMemoryState, tx: &Transaction, local_fetch: bool) -> u64 {
    let clock = Clock::new();
    let config = HevmConfig { charge_local_fetch: local_fetch, ..HevmConfig::default() };
    let mut hevm = Hevm::new(config, Env::default(), state, clock.clone());
    let base = baseline_tx(state);
    hevm.transact(&base).expect("baseline warmup");
    let b0 = clock.now();
    hevm.transact(&base).expect("baseline");
    let base_ns = clock.now() - b0;
    hevm.transact(tx).expect("warmup");
    let before = clock.now();
    hevm.transact(tx).expect("measured run");
    (clock.now() - before).saturating_sub(base_ns)
}

fn main() {
    println!("Fig. 5 — time per operation, all data local/warm (log scale in the paper)\n");
    println!("{:<12} {:>14} {:>14} {:>14}", "benchmark", "Geth", "TSC-VEE", "HarDTAPE");

    let mut rows = Vec::new();

    // Arithmetic: per ALU iteration (~6 ops each).
    {
        let (state, target) = state_with(microbench::arithmetic_loop(ITERS));
        let mut tx = Transaction::call(sender(), target, vec![]);
        tx.gas_limit = 10_000_000;
        let per = |total: u64| total as f64 / ITERS as f64;
        rows.push((
            "Arithmetic",
            per(geth_time(&state, &tx)),
            per(hevm_time(&state, &tx, false)),
            per(hevm_time(&state, &tx, true)),
        ));
    }

    // Storage: per warm SLOAD+SSTORE pair.
    {
        let (state, target) = state_with(microbench::storage_loop(ITERS));
        let mut tx = Transaction::call(sender(), target, vec![]);
        tx.gas_limit = 30_000_000;
        let per = |total: u64| total as f64 / ITERS as f64;
        rows.push((
            "Storage",
            per(geth_time(&state, &tx)),
            per(hevm_time(&state, &tx, false)),
            per(hevm_time(&state, &tx, true)),
        ));
    }

    // Transfer: one warm ERC-20 transfer call (per-tx overheads excluded:
    // we measure interpreter + state work only, so subtract the fixed
    // per-transaction base measured on an empty call).
    {
        let (state, token, calldata) = erc20_state();
        let mut tx = Transaction::call(sender(), token, calldata);
        tx.gas_limit = 300_000;
        rows.push((
            "Transfer",
            geth_time(&state, &tx) as f64,
            hevm_time(&state, &tx, false) as f64,
            hevm_time(&state, &tx, true) as f64,
        ));
    }

    for (name, geth, tsc, hardtape) in &rows {
        println!(
            "{:<12} {:>11.0} ns {:>11.0} ns {:>11.0} ns",
            name, geth, tsc, hardtape
        );
    }

    // Shape checks: parity within a small factor everywhere, except Geth
    // notably slower on Transfer (its per-call frame setup).
    let parity = |a: f64, b: f64| a / b < 8.0 && b / a < 8.0;
    let arithmetic_parity = parity(rows[0].1, rows[0].3) && parity(rows[0].2, rows[0].3);
    let storage_parity = parity(rows[1].1, rows[1].3) && parity(rows[1].2, rows[1].3);
    let transfer = &rows[2];
    // With per-tx base costs subtracted, Geth's per-frame software setup
    // shows: it is the slowest platform on Transfer (the paper's finding).
    let geth_slower_on_transfer = transfer.1 > transfer.2 && transfer.1 > transfer.3;

    println!(
        "\nShape: {}",
        if arithmetic_parity && storage_parity && geth_slower_on_transfer {
            "REPRODUCED (parity on local ops; Geth pays per-call overhead on Transfer)"
        } else {
            "DRIFTED"
        }
    );
}
