//! Pagewise code prefetching ablation (paper §IV-D problem (3)): without
//! it, code fetches arrive in bursts that fingerprint execution frames;
//! with it, the inter-query gaps observed by the adversary become
//! approximately uniform.
//!
//! We simulate a transaction's query schedule — sporadic K-V queries
//! with a contract call needing 8 code pages in the middle — and compare
//! the adversary-visible gap distribution with and without the
//! prefetcher.

use tape_crypto::SecureRng;
use tape_oram::{CodePrefetcher, PageKey};
use tape_primitives::Address;

/// K-V query times of a synthetic transaction (ns): sporadic accesses
/// roughly every ~600 µs, like the paper's full-load HEVM.
fn kv_schedule() -> Vec<u64> {
    let mut t = 0u64;
    let mut rng = SecureRng::from_seed(b"kv schedule");
    (0..24)
        .map(|_| {
            t += 300_000 + rng.next_below(600_000);
            t
        })
        .collect()
}

fn stats(mut times: Vec<u64>) -> (usize, f64, f64, f64) {
    times.sort_unstable();
    let gaps: Vec<f64> = times.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
    let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
    let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
    let burstiness = gaps.iter().filter(|&&g| g < mean / 10.0).count() as f64 / gaps.len() as f64;
    (times.len(), mean, var.sqrt(), burstiness)
}

fn main() {
    let kv = kv_schedule();
    let contract = Address::from_low_u64(0xC0DE);
    let code_pages = 8u32;

    // --- without prefetching: the code arrives as one burst -------------
    let mut naive = kv.clone();
    let call_at = kv[8]; // the CALL happens mid-transaction
    for i in 0..code_pages as u64 {
        naive.push(call_at + 1 + i); // back-to-back page fetches
    }
    let (n1, mean1, sd1, burst1) = stats(naive);

    // --- with the prefetcher: pages ride the randomized interval timer --
    let mut prefetcher = CodePrefetcher::new(SecureRng::from_seed(b"prefetch"), 600_000);
    prefetcher.schedule(contract, code_pages);
    let mut smoothed = Vec::new();
    let mut pending_fetches = 0u32;
    let mut clockwatch = 0u64;
    for &t in &kv {
        // Poll the timer densely between real queries (the Hypervisor's
        // idle loop).
        while clockwatch < t {
            clockwatch += 50_000;
            if let Some(PageKey::CodePage(..)) = prefetcher.poll(clockwatch) {
                smoothed.push(clockwatch);
                pending_fetches += 1;
            }
        }
        smoothed.push(t);
        prefetcher.on_query(t);
    }
    // Drain any stragglers after the last K-V query.
    while pending_fetches < code_pages {
        clockwatch += 50_000;
        if let Some(PageKey::CodePage(..)) = prefetcher.poll(clockwatch) {
            smoothed.push(clockwatch);
            pending_fetches += 1;
        }
    }
    let (n2, mean2, sd2, burst2) = stats(smoothed);

    println!("=== Inter-query gaps as seen by the adversary ===\n");
    println!(
        "{:<22} {:>8} {:>12} {:>12} {:>18}",
        "strategy", "queries", "mean gap", "stddev", "burst fraction"
    );
    println!(
        "{:<22} {:>8} {:>9.0} us {:>9.0} us {:>17.1} %",
        "burst (no prefetch)",
        n1,
        mean1 / 1e3,
        sd1 / 1e3,
        burst1 * 100.0
    );
    println!(
        "{:<22} {:>8} {:>9.0} us {:>9.0} us {:>17.1} %",
        "pagewise prefetch",
        n2,
        mean2 / 1e3,
        sd2 / 1e3,
        burst2 * 100.0
    );

    println!(
        "\nWithout prefetching, {:.0}% of gaps are a near-zero burst that\n\
         pinpoints the CALL and the contract's page count. The prefetcher\n\
         spreads the same {code_pages} fetches across the timeline: bursts \
         {}.",
        burst1 * 100.0,
        if burst2 < burst1 / 4.0 { "eliminated" } else { "reduced" }
    );
    assert!(burst2 < burst1 / 2.0, "prefetcher failed to smooth the bursts");
    println!("\nShape: REPRODUCED (prefetching makes query intervals approximately consistent)");
}
