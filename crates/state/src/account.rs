//! Account state: the four-field record of the Ethereum world state.

use tape_crypto::keccak256;
use tape_primitives::{rlp, B256, U256};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Hash of empty code: `keccak256("")`.
pub const EMPTY_CODE_HASH: B256 = B256::new([
    0xc5, 0xd2, 0x46, 0x01, 0x86, 0xf7, 0x23, 0x3c, 0x92, 0x7e, 0x7d, 0xb2, 0xdc, 0xc7, 0x03,
    0xc0, 0xe5, 0x00, 0xb6, 0x53, 0xca, 0x82, 0x27, 0x3b, 0x7b, 0xfa, 0xd8, 0x04, 0x5d, 0x85,
    0xa4, 0x70,
]);

/// A full account record: balance, nonce, contract code, and storage.
///
/// This is the materialized form used by the in-memory backend and the
/// node simulator; execution works against lighter [`AccountInfo`]
/// snapshots plus on-demand storage loads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Account {
    /// Wei balance.
    pub balance: U256,
    /// Transaction / creation count.
    pub nonce: u64,
    /// Contract bytecode (empty for externally owned accounts).
    pub code: Arc<Vec<u8>>,
    /// Contract storage. BTreeMap keeps iteration deterministic, which the
    /// ORAM page grouping (32 consecutive keys per *block*) relies on.
    pub storage: BTreeMap<U256, U256>,
}

impl Account {
    /// An externally owned account with the given balance.
    pub fn with_balance(balance: U256) -> Self {
        Account { balance, ..Default::default() }
    }

    /// A contract account with the given code.
    pub fn with_code(code: Vec<u8>) -> Self {
        Account { code: Arc::new(code), ..Default::default() }
    }

    /// keccak256 of the account's code.
    pub fn code_hash(&self) -> B256 {
        if self.code.is_empty() {
            EMPTY_CODE_HASH
        } else {
            keccak256(self.code.as_slice())
        }
    }

    /// Returns `true` if the account matches Ethereum's "empty" predicate
    /// (zero balance, zero nonce, no code).
    pub fn is_empty(&self) -> bool {
        self.balance.is_zero() && self.nonce == 0 && self.code.is_empty()
    }

    /// Computes the storage trie root for this account.
    pub fn storage_root(&self) -> B256 {
        let mut trie = tape_mpt::SecureTrie::new();
        for (key, value) in &self.storage {
            if !value.is_zero() {
                trie.insert(&key.to_be_bytes(), &rlp::encode_u256(value));
            }
        }
        trie.root_hash()
    }

    /// RLP encoding of the account record
    /// `[nonce, balance, storage_root, code_hash]`, as stored in the state
    /// trie.
    pub fn rlp_encode(&self) -> Vec<u8> {
        rlp::encode_list(&[
            rlp::encode_u64(self.nonce),
            rlp::encode_u256(&self.balance),
            rlp::encode_b256(&self.storage_root()),
            rlp::encode_b256(&self.code_hash()),
        ])
    }

    /// Lightweight header snapshot.
    pub fn info(&self) -> AccountInfo {
        AccountInfo {
            balance: self.balance,
            nonce: self.nonce,
            code_hash: self.code_hash(),
            code_len: self.code.len(),
        }
    }
}

/// The execution-facing account header: everything except code bytes and
/// storage, which are loaded on demand (and, in HarDTAPE, fetched through
/// the ORAM as fixed-size pages).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccountInfo {
    /// Wei balance.
    pub balance: U256,
    /// Transaction / creation count.
    pub nonce: u64,
    /// keccak256 of the code.
    pub code_hash: B256,
    /// Code length in bytes (a K-V style query in the paper's taxonomy).
    pub code_len: usize,
}

impl Default for AccountInfo {
    fn default() -> Self {
        AccountInfo { balance: U256::ZERO, nonce: 0, code_hash: EMPTY_CODE_HASH, code_len: 0 }
    }
}

impl AccountInfo {
    /// Returns `true` if the account has contract code.
    pub fn has_code(&self) -> bool {
        self.code_hash != EMPTY_CODE_HASH
    }

    /// Ethereum's "empty account" predicate.
    pub fn is_empty(&self) -> bool {
        self.balance.is_zero() && self.nonce == 0 && !self.has_code()
    }
}

/// A log record emitted by `LOG0`–`LOG4`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log {
    /// The emitting contract.
    pub address: tape_primitives::Address,
    /// Up to four indexed topics.
    pub topics: Vec<B256>,
    /// The unindexed payload.
    pub data: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tape_primitives::hex;

    #[test]
    fn empty_code_hash_constant() {
        assert_eq!(Account::default().code_hash(), EMPTY_CODE_HASH);
        assert_eq!(keccak256([]), EMPTY_CODE_HASH);
    }

    #[test]
    fn empty_account_predicate() {
        assert!(Account::default().is_empty());
        assert!(!Account::with_balance(U256::ONE).is_empty());
        assert!(!Account::with_code(vec![0x60]).is_empty());
        let mut a = Account::default();
        a.nonce = 1;
        assert!(!a.is_empty());
    }

    #[test]
    fn storage_root_ignores_zero_slots() {
        let mut a = Account::default();
        a.storage.insert(U256::from(1u64), U256::ZERO);
        assert_eq!(a.storage_root(), tape_mpt::EMPTY_ROOT);
        a.storage.insert(U256::from(2u64), U256::from(5u64));
        assert_ne!(a.storage_root(), tape_mpt::EMPTY_ROOT);
    }

    #[test]
    fn rlp_encoding_of_empty_account() {
        // [0, 0, EMPTY_ROOT, EMPTY_CODE_HASH] — a canonical constant.
        let enc = Account::default().rlp_encode();
        assert_eq!(
            hex::encode(&enc),
            "f8448080a056e81f171bcc55a6ff8345e692c0f86e5b48e01b996cadc001622fb5e363b421a0c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
        );
    }

    #[test]
    fn info_snapshot() {
        let mut a = Account::with_code(vec![1, 2, 3]);
        a.balance = U256::from(9u64);
        a.nonce = 4;
        let info = a.info();
        assert_eq!(info.balance, U256::from(9u64));
        assert_eq!(info.nonce, 4);
        assert_eq!(info.code_len, 3);
        assert!(info.has_code());
        assert!(!info.is_empty());
        assert!(AccountInfo::default().is_empty());
    }
}
