//! The journaled overlay state: execution-frame commit/revert semantics.
//!
//! Each EVM execution frame gets a checkpoint; `RETURN`/`STOP` commit the
//! frame's world-state modifications into the caller's version, `REVERT`
//! discards them (paper §II-A). All writes stay in this overlay — the
//! backing [`StateReader`] is never mutated, which is exactly the
//! pre-execution property HarDTAPE needs (world-state modifications are
//! temporary, paper §IV step 10).

use crate::account::{AccountInfo, Log};
use crate::backend::StateReader;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use tape_primitives::{Address, B256, U256};

/// Result of an `SLOAD`, carrying the EIP-2929 cold/warm flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloadResult {
    /// The slot value.
    pub value: U256,
    /// `true` if this was the first access to the slot in the transaction.
    pub is_cold: bool,
}

/// Result of an `SSTORE`, carrying everything EIP-2200 gas metering needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SstoreResult {
    /// Value at transaction start.
    pub original: U256,
    /// Value before this store.
    pub current: U256,
    /// Value being stored.
    pub new: U256,
    /// `true` if this was the first access to the slot in the transaction.
    pub is_cold: bool,
}

/// A checkpoint token returned by [`JournaledState::checkpoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint {
    journal_len: usize,
    log_len: usize,
}

/// Error produced by a failed balance transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsufficientBalance {
    /// The account that could not pay.
    pub address: Address,
    /// The amount requested.
    pub needed: U256,
    /// The balance actually available.
    pub available: U256,
}

impl core::fmt::Display for InsufficientBalance {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "insufficient balance in {}: needed {}, available {}",
            self.address, self.needed, self.available
        )
    }
}

impl std::error::Error for InsufficientBalance {}

#[derive(Debug, Clone)]
struct OverlayAccount {
    balance: U256,
    nonce: u64,
    code: Arc<Vec<u8>>,
    code_hash: B256,
    exists: bool,
}

impl OverlayAccount {
    fn nonexistent() -> Self {
        OverlayAccount {
            balance: U256::ZERO,
            nonce: 0,
            code: Arc::default(),
            code_hash: crate::account::EMPTY_CODE_HASH,
            exists: false,
        }
    }

    fn info(&self) -> AccountInfo {
        AccountInfo {
            balance: self.balance,
            nonce: self.nonce,
            code_hash: self.code_hash,
            code_len: self.code.len(),
        }
    }
}

#[derive(Debug)]
enum Entry {
    Balance { address: Address, prev: U256 },
    Nonce { address: Address, prev: u64 },
    Code { address: Address, prev_code: Arc<Vec<u8>>, prev_hash: B256 },
    Exists { address: Address, prev: bool },
    Storage { address: Address, key: U256, prev: Option<U256> },
    Transient { address: Address, key: U256, prev: U256 },
    Log,
    WarmAddress { address: Address },
    WarmSlot { address: Address, key: U256 },
    Selfdestruct { address: Address },
}

/// A summary of every modification a bundle made, for the user-facing
/// trace report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StateChanges {
    /// `(address, old_balance, new_balance)` for every balance change.
    pub balances: Vec<(Address, U256, U256)>,
    /// `(address, old_nonce, new_nonce)` for every nonce change.
    pub nonces: Vec<(Address, u64, u64)>,
    /// `(address, key, new_value)` for every written storage slot.
    pub storage: Vec<(Address, U256, U256)>,
    /// Addresses that received code in this bundle (CREATE).
    pub new_contracts: Vec<Address>,
    /// Addresses selfdestructed in this bundle.
    pub selfdestructs: Vec<Address>,
}

/// The reader-free remainder of a suspended [`JournaledState`]: every
/// overlay map, the journal itself, logs, and the per-transaction warm
/// sets, detached from the backing [`StateReader`].
///
/// Produced by [`JournaledState::suspend`] at a segment boundary so a
/// preempted execution can park its world-state view while the reader
/// (often a short-lived borrow of the device state) goes away, and
/// re-attached later with [`JournaledState::rehydrate`]. The fields are
/// moved, never cloned — journal entries are not `Clone` by design, so
/// a suspension cannot silently fork the overlay.
#[derive(Debug)]
pub struct JournalSuspend {
    accounts: HashMap<Address, OverlayAccount>,
    storage: HashMap<(Address, U256), U256>,
    storage_reads: HashMap<(Address, U256), U256>,
    original_storage: HashMap<(Address, U256), U256>,
    transient: HashMap<(Address, U256), U256>,
    journal: Vec<Entry>,
    logs: Vec<Log>,
    warm_addresses: HashSet<Address>,
    warm_slots: HashSet<(Address, U256)>,
    selfdestructed: HashSet<Address>,
}

/// The journaled overlay over a read-only state backend.
///
/// # Examples
///
/// ```
/// use tape_primitives::{Address, U256};
/// use tape_state::{Account, InMemoryState, JournaledState};
///
/// let mut backend = InMemoryState::new();
/// let alice = Address::from_low_u64(1);
/// let bob = Address::from_low_u64(2);
/// backend.put_account(alice, Account::with_balance(U256::from(100u64)));
///
/// let mut journal = JournaledState::new(&backend);
/// let frame = journal.checkpoint();
/// journal.transfer(&alice, &bob, U256::from(30u64))?;
/// journal.revert(frame);
/// assert_eq!(journal.balance(&alice), U256::from(100u64)); // reverted
/// # Ok::<(), tape_state::InsufficientBalance>(())
/// ```
#[derive(Debug)]
pub struct JournaledState<R> {
    reader: R,
    accounts: HashMap<Address, OverlayAccount>,
    storage: HashMap<(Address, U256), U256>,
    storage_reads: HashMap<(Address, U256), U256>,
    original_storage: HashMap<(Address, U256), U256>,
    transient: HashMap<(Address, U256), U256>,
    journal: Vec<Entry>,
    logs: Vec<Log>,
    warm_addresses: HashSet<Address>,
    warm_slots: HashSet<(Address, U256)>,
    selfdestructed: HashSet<Address>,
}

impl<R: StateReader> JournaledState<R> {
    /// Creates a fresh overlay over `reader`.
    pub fn new(reader: R) -> Self {
        JournaledState {
            reader,
            accounts: HashMap::new(),
            storage: HashMap::new(),
            storage_reads: HashMap::new(),
            original_storage: HashMap::new(),
            transient: HashMap::new(),
            journal: Vec::new(),
            logs: Vec::new(),
            warm_addresses: HashSet::new(),
            warm_slots: HashSet::new(),
            selfdestructed: HashSet::new(),
        }
    }

    /// Access to the underlying reader.
    pub fn reader(&self) -> &R {
        &self.reader
    }

    /// Detaches the overlay from its reader at a segment boundary:
    /// returns the reader and a [`JournalSuspend`] holding everything
    /// else (accounts, storage, journal entries, logs, warm sets). The
    /// pair [`suspend`](Self::suspend)/[`rehydrate`](Self::rehydrate)
    /// is a pure move — no entry is cloned or replayed — so a resumed
    /// execution observes byte-identical journal semantics.
    pub fn suspend(self) -> (R, JournalSuspend) {
        let JournaledState {
            reader,
            accounts,
            storage,
            storage_reads,
            original_storage,
            transient,
            journal,
            logs,
            warm_addresses,
            warm_slots,
            selfdestructed,
        } = self;
        (
            reader,
            JournalSuspend {
                accounts,
                storage,
                storage_reads,
                original_storage,
                transient,
                journal,
                logs,
                warm_addresses,
                warm_slots,
                selfdestructed,
            },
        )
    }

    /// Re-attaches a suspended overlay to a (possibly new instance of
    /// an equivalent) reader. The reader must serve the same world
    /// state the overlay was suspended over; cached reads
    /// (`storage_reads`, faulted-in accounts) are kept, so a reader
    /// that diverged mid-suspension would be partially shadowed — the
    /// service layer guarantees a bundle is never resumed across a
    /// head change without re-validation.
    pub fn rehydrate(reader: R, suspend: JournalSuspend) -> Self {
        let JournalSuspend {
            accounts,
            storage,
            storage_reads,
            original_storage,
            transient,
            journal,
            logs,
            warm_addresses,
            warm_slots,
            selfdestructed,
        } = suspend;
        JournaledState {
            reader,
            accounts,
            storage,
            storage_reads,
            original_storage,
            transient,
            journal,
            logs,
            warm_addresses,
            warm_slots,
            selfdestructed,
        }
    }

    /// Resets per-transaction state (warm sets, transient storage,
    /// original-value tracking) while keeping accumulated world-state
    /// modifications — bundles execute transactions sequentially over the
    /// same overlay.
    pub fn begin_transaction(&mut self) {
        self.warm_addresses.clear();
        self.warm_slots.clear();
        self.transient.clear();
        self.original_storage.clear();
        self.journal.clear();
        self.selfdestructed.retain(|_| true); // selfdestructs persist across txs in a bundle
    }

    /// Pre-warms an address (transaction sender/recipient and access-list
    /// entries start warm per EIP-2929).
    pub fn warm_address(&mut self, address: Address) {
        self.warm_addresses.insert(address);
    }

    /// Faults the account overlay in from the reader on first touch and
    /// hands back the (now guaranteed) overlay entry — so callers never
    /// need a fallible second lookup.
    fn ensure_account(&mut self, address: Address) -> &mut OverlayAccount {
        use std::collections::hash_map::Entry as Slot;
        match self.accounts.entry(address) {
            Slot::Occupied(occupied) => occupied.into_mut(),
            Slot::Vacant(vacant) => {
                let overlay = match self.reader.account(&address) {
                    Some(info) => OverlayAccount {
                        balance: info.balance,
                        nonce: info.nonce,
                        code: self.reader.code(&address),
                        code_hash: info.code_hash,
                        exists: true,
                    },
                    None => OverlayAccount::nonexistent(),
                };
                vacant.insert(overlay)
            }
        }
    }

    /// Loads the account header, returning the EIP-2929 cold flag.
    pub fn load_account(&mut self, address: Address) -> (AccountInfo, bool) {
        let is_cold = !self.warm_addresses.contains(&address);
        if is_cold {
            self.warm_addresses.insert(address);
            self.journal.push(Entry::WarmAddress { address });
        }
        (self.ensure_account(address).info(), is_cold)
    }

    /// Returns `true` if the account exists (has been created or is in
    /// the backend).
    pub fn exists(&mut self, address: Address) -> bool {
        self.ensure_account(address).exists
    }

    /// Current balance.
    pub fn balance(&mut self, address: &Address) -> U256 {
        self.ensure_account(*address).balance
    }

    /// Current nonce.
    pub fn nonce(&mut self, address: &Address) -> u64 {
        self.ensure_account(*address).nonce
    }

    /// Contract code.
    pub fn code(&mut self, address: &Address) -> Arc<Vec<u8>> {
        Arc::clone(&self.ensure_account(*address).code)
    }

    /// Code hash (`EMPTY_CODE_HASH` for code-less, zero for nonexistent
    /// accounts per `EXTCODEHASH` semantics).
    pub fn code_hash(&mut self, address: &Address) -> B256 {
        let acc = self.ensure_account(*address);
        if !acc.exists && acc.balance.is_zero() && acc.nonce == 0 {
            B256::ZERO
        } else {
            acc.code_hash
        }
    }

    fn set_balance_internal(&mut self, address: Address, new: U256) {
        let acc = self.ensure_account(address);
        let prev = acc.balance;
        let changed = prev != new;
        if changed {
            acc.balance = new;
        }
        let created = !acc.exists;
        if created {
            acc.exists = true;
        }
        if changed {
            self.journal.push(Entry::Balance { address, prev });
        }
        if created {
            self.journal.push(Entry::Exists { address, prev: false });
        }
    }

    /// Adds to a balance, implicitly creating the account.
    pub fn add_balance(&mut self, address: &Address, amount: U256) {
        let new = self.balance(address).wrapping_add(amount);
        self.set_balance_internal(*address, new);
    }

    /// Subtracts from a balance.
    ///
    /// # Errors
    ///
    /// Returns [`InsufficientBalance`] without modifying state if the
    /// account cannot cover `amount`.
    pub fn sub_balance(&mut self, address: &Address, amount: U256) -> Result<(), InsufficientBalance> {
        let available = self.balance(address);
        let new = available.checked_sub(amount).ok_or(InsufficientBalance {
            address: *address,
            needed: amount,
            available,
        })?;
        self.set_balance_internal(*address, new);
        Ok(())
    }

    /// Transfers value between accounts.
    ///
    /// # Errors
    ///
    /// Returns [`InsufficientBalance`] if `from` cannot cover `value`.
    pub fn transfer(
        &mut self,
        from: &Address,
        to: &Address,
        value: U256,
    ) -> Result<(), InsufficientBalance> {
        self.sub_balance(from, value)?;
        self.add_balance(to, value);
        Ok(())
    }

    /// Increments the nonce, returning the old value.
    pub fn inc_nonce(&mut self, address: &Address) -> u64 {
        let acc = self.ensure_account(*address);
        let prev = acc.nonce;
        acc.nonce += 1;
        let created = !acc.exists;
        if created {
            acc.exists = true;
        }
        self.journal.push(Entry::Nonce { address: *address, prev });
        if created {
            self.journal.push(Entry::Exists { address: *address, prev: false });
        }
        prev
    }

    /// Installs contract code (the tail of a CREATE).
    pub fn set_code(&mut self, address: &Address, code: Vec<u8>) {
        let hash = if code.is_empty() {
            crate::account::EMPTY_CODE_HASH
        } else {
            tape_crypto::keccak256(&code)
        };
        let acc = self.ensure_account(*address);
        let prev_code = std::mem::take(&mut acc.code);
        let prev_hash = acc.code_hash;
        acc.code = Arc::new(code);
        acc.code_hash = hash;
        let created = !acc.exists;
        if created {
            acc.exists = true;
        }
        self.journal.push(Entry::Code { address: *address, prev_code, prev_hash });
        if created {
            self.journal.push(Entry::Exists { address: *address, prev: false });
        }
    }

    /// Reads a storage slot with warm/cold tracking.
    pub fn sload(&mut self, address: &Address, key: &U256) -> SloadResult {
        let slot = (*address, *key);
        let is_cold = !self.warm_slots.contains(&slot);
        if is_cold {
            self.warm_slots.insert(slot);
            self.journal.push(Entry::WarmSlot { address: *address, key: *key });
        }
        let value = self.storage_value(address, key);
        self.original_storage.entry(slot).or_insert(value);
        SloadResult { value, is_cold }
    }

    fn storage_value(&mut self, address: &Address, key: &U256) -> U256 {
        let slot = (*address, *key);
        if let Some(v) = self.storage.get(&slot) {
            return *v;
        }
        if let Some(v) = self.storage_reads.get(&slot) {
            return *v;
        }
        let v = self.reader.storage(address, key);
        self.storage_reads.insert(slot, v);
        v
    }

    /// Writes a storage slot, returning the triple EIP-2200 needs.
    pub fn sstore(&mut self, address: &Address, key: &U256, value: U256) -> SstoreResult {
        let slot = (*address, *key);
        let is_cold = !self.warm_slots.contains(&slot);
        if is_cold {
            self.warm_slots.insert(slot);
            self.journal.push(Entry::WarmSlot { address: *address, key: *key });
        }
        let current = self.storage_value(address, key);
        let original = *self.original_storage.entry(slot).or_insert(current);
        let prev = self.storage.insert(slot, value);
        self.journal.push(Entry::Storage { address: *address, key: *key, prev });
        SstoreResult { original, current, new: value, is_cold }
    }

    /// Reads transient storage (EIP-1153 `TLOAD`).
    pub fn tload(&self, address: &Address, key: &U256) -> U256 {
        self.transient.get(&(*address, *key)).copied().unwrap_or(U256::ZERO)
    }

    /// Writes transient storage (EIP-1153 `TSTORE`).
    pub fn tstore(&mut self, address: &Address, key: &U256, value: U256) {
        let slot = (*address, *key);
        let prev = self.transient.insert(slot, value).unwrap_or(U256::ZERO);
        self.journal.push(Entry::Transient { address: *address, key: *key, prev });
    }

    /// Appends a log record.
    pub fn log(&mut self, log: Log) {
        self.logs.push(log);
        self.journal.push(Entry::Log);
    }

    /// Marks an account selfdestructed, moving its balance to the
    /// beneficiary. Returns the amount moved.
    pub fn selfdestruct(&mut self, address: &Address, beneficiary: &Address) -> U256 {
        let balance = self.balance(address);
        self.set_balance_internal(*address, U256::ZERO);
        if address != beneficiary {
            self.add_balance(beneficiary, balance);
        }
        if self.selfdestructed.insert(*address) {
            self.journal.push(Entry::Selfdestruct { address: *address });
        }
        balance
    }

    /// Returns `true` if the address was selfdestructed in this bundle.
    pub fn is_selfdestructed(&self, address: &Address) -> bool {
        self.selfdestructed.contains(address)
    }

    /// Opens a new frame; pair with [`commit`](Self::commit) or
    /// [`revert`](Self::revert).
    pub fn checkpoint(&mut self) -> Checkpoint {
        Checkpoint { journal_len: self.journal.len(), log_len: self.logs.len() }
    }

    /// Commits a frame: its writes become part of the caller's version.
    pub fn commit(&mut self, _checkpoint: Checkpoint) {
        // Nothing to do: entries simply stay in the journal, owned by the
        // enclosing frame.
    }

    /// Reverts a frame: undoes every write made since the checkpoint.
    pub fn revert(&mut self, checkpoint: Checkpoint) {
        while self.journal.len() > checkpoint.journal_len {
            // An account entry without its overlay would mean the
            // journal recorded a write that never happened; skipping it
            // degrades to an unrevertible no-op instead of a panic.
            let Some(entry) = self.journal.pop() else { break };
            match entry {
                Entry::Balance { address, prev } => {
                    if let Some(acc) = self.accounts.get_mut(&address) {
                        acc.balance = prev;
                    }
                }
                Entry::Nonce { address, prev } => {
                    if let Some(acc) = self.accounts.get_mut(&address) {
                        acc.nonce = prev;
                    }
                }
                Entry::Code { address, prev_code, prev_hash } => {
                    if let Some(acc) = self.accounts.get_mut(&address) {
                        acc.code = prev_code;
                        acc.code_hash = prev_hash;
                    }
                }
                Entry::Exists { address, prev } => {
                    if let Some(acc) = self.accounts.get_mut(&address) {
                        acc.exists = prev;
                    }
                }
                Entry::Storage { address, key, prev } => match prev {
                    Some(v) => {
                        self.storage.insert((address, key), v);
                    }
                    None => {
                        self.storage.remove(&(address, key));
                    }
                },
                Entry::Transient { address, key, prev } => {
                    if prev.is_zero() {
                        self.transient.remove(&(address, key));
                    } else {
                        self.transient.insert((address, key), prev);
                    }
                }
                Entry::Log => {
                    self.logs.pop();
                }
                Entry::WarmAddress { address } => {
                    self.warm_addresses.remove(&address);
                }
                Entry::WarmSlot { address, key } => {
                    self.warm_slots.remove(&(address, key));
                }
                Entry::Selfdestruct { address } => {
                    self.selfdestructed.remove(&address);
                }
            }
        }
        self.logs.truncate(checkpoint.log_len);
    }

    /// All logs emitted so far.
    pub fn logs(&self) -> &[Log] {
        &self.logs
    }

    /// Takes ownership of the emitted logs, clearing the buffer.
    pub fn take_logs(&mut self) -> Vec<Log> {
        std::mem::take(&mut self.logs)
    }

    /// Summarizes every modification relative to the backend, for the
    /// user-facing trace report.
    pub fn changes(&self) -> StateChanges {
        let mut changes = StateChanges::default();
        let mut balances: Vec<_> = self
            .accounts
            .iter()
            .filter_map(|(addr, acc)| {
                let before = self
                    .reader
                    .account(addr)
                    .map(|i| i.balance)
                    .unwrap_or(U256::ZERO);
                (before != acc.balance).then_some((*addr, before, acc.balance))
            })
            .collect();
        balances.sort_by_key(|(a, _, _)| *a);
        changes.balances = balances;

        let mut nonces: Vec<_> = self
            .accounts
            .iter()
            .filter_map(|(addr, acc)| {
                let before = self.reader.account(addr).map(|i| i.nonce).unwrap_or(0);
                (before != acc.nonce).then_some((*addr, before, acc.nonce))
            })
            .collect();
        nonces.sort_by_key(|(a, _, _)| *a);
        changes.nonces = nonces;

        let mut storage: Vec<_> = self
            .storage
            .iter()
            .filter_map(|((addr, key), value)| {
                let before = self.reader.storage(addr, key);
                (before != *value).then_some((*addr, *key, *value))
            })
            .collect();
        storage.sort_by_key(|entry| (entry.0, entry.1));
        changes.storage = storage;

        let mut contracts: Vec<_> = self
            .accounts
            .iter()
            .filter_map(|(addr, acc)| {
                let had_code = self
                    .reader
                    .account(addr)
                    .map(|i| i.has_code())
                    .unwrap_or(false);
                (!had_code && !acc.code.is_empty()).then_some(*addr)
            })
            .collect();
        contracts.sort();
        changes.new_contracts = contracts;

        let mut sd: Vec<_> = self.selfdestructed.iter().copied().collect();
        sd.sort();
        changes.selfdestructs = sd;
        changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::Account;
    use crate::backend::InMemoryState;

    fn setup() -> (InMemoryState, Address, Address) {
        let mut backend = InMemoryState::new();
        let alice = Address::from_low_u64(1);
        let bob = Address::from_low_u64(2);
        backend.put_account(alice, Account::with_balance(U256::from(1000u64)));
        backend.put_account(bob, Account::with_balance(U256::from(50u64)));
        (backend, alice, bob)
    }

    #[test]
    fn transfer_and_commit() {
        let (backend, alice, bob) = setup();
        let mut j = JournaledState::new(&backend);
        let cp = j.checkpoint();
        j.transfer(&alice, &bob, U256::from(100u64)).unwrap();
        j.commit(cp);
        assert_eq!(j.balance(&alice), U256::from(900u64));
        assert_eq!(j.balance(&bob), U256::from(150u64));
        // Backend untouched.
        use crate::backend::StateReader;
        assert_eq!(backend.account(&alice).unwrap().balance, U256::from(1000u64));
    }

    #[test]
    fn transfer_insufficient_fails_cleanly() {
        let (backend, alice, bob) = setup();
        let mut j = JournaledState::new(&backend);
        let err = j.transfer(&alice, &bob, U256::from(2000u64)).unwrap_err();
        assert_eq!(err.available, U256::from(1000u64));
        assert_eq!(j.balance(&alice), U256::from(1000u64));
        assert_eq!(j.balance(&bob), U256::from(50u64));
    }

    #[test]
    fn nested_frames_revert_inner_only() {
        let (backend, alice, bob) = setup();
        let mut j = JournaledState::new(&backend);
        let outer = j.checkpoint();
        j.transfer(&alice, &bob, U256::from(100u64)).unwrap();

        let inner = j.checkpoint();
        j.transfer(&alice, &bob, U256::from(200u64)).unwrap();
        j.sstore(&alice, &U256::ONE, U256::from(7u64));
        j.revert(inner);

        assert_eq!(j.balance(&alice), U256::from(900u64));
        assert_eq!(j.balance(&bob), U256::from(150u64));
        assert_eq!(j.sload(&alice, &U256::ONE).value, U256::ZERO);

        j.commit(outer);
        assert_eq!(j.balance(&alice), U256::from(900u64));
    }

    #[test]
    fn storage_original_current_new_tracking() {
        let mut backend = InMemoryState::new();
        let addr = Address::from_low_u64(5);
        backend.set_storage(addr, U256::ONE, U256::from(10u64));
        let mut j = JournaledState::new(&backend);

        let r1 = j.sstore(&addr, &U256::ONE, U256::from(20u64));
        assert_eq!(r1.original, U256::from(10u64));
        assert_eq!(r1.current, U256::from(10u64));
        assert_eq!(r1.new, U256::from(20u64));
        assert!(r1.is_cold);

        let r2 = j.sstore(&addr, &U256::ONE, U256::from(30u64));
        assert_eq!(r2.original, U256::from(10u64)); // original is per-tx
        assert_eq!(r2.current, U256::from(20u64));
        assert!(!r2.is_cold);
    }

    #[test]
    fn warm_cold_tracking_reverts() {
        let (backend, alice, _) = setup();
        let mut j = JournaledState::new(&backend);
        let cp = j.checkpoint();
        let (_, cold1) = j.load_account(alice);
        assert!(cold1);
        let (_, cold2) = j.load_account(alice);
        assert!(!cold2);
        j.revert(cp);
        // Warmth added inside the reverted frame is removed (EIP-2929).
        let (_, cold3) = j.load_account(alice);
        assert!(cold3);
    }

    #[test]
    fn prewarmed_addresses_stay_warm() {
        let (backend, alice, _) = setup();
        let mut j = JournaledState::new(&backend);
        j.warm_address(alice);
        let (_, cold) = j.load_account(alice);
        assert!(!cold);
    }

    #[test]
    fn transient_storage_reverts_and_clears() {
        let (backend, alice, _) = setup();
        let mut j = JournaledState::new(&backend);
        let cp = j.checkpoint();
        j.tstore(&alice, &U256::ONE, U256::from(9u64));
        assert_eq!(j.tload(&alice, &U256::ONE), U256::from(9u64));
        j.revert(cp);
        assert_eq!(j.tload(&alice, &U256::ONE), U256::ZERO);

        j.tstore(&alice, &U256::ONE, U256::from(5u64));
        j.begin_transaction();
        assert_eq!(j.tload(&alice, &U256::ONE), U256::ZERO);
    }

    #[test]
    fn logs_revert_with_frame() {
        let (backend, alice, _) = setup();
        let mut j = JournaledState::new(&backend);
        j.log(Log { address: alice, topics: vec![], data: vec![1] });
        let cp = j.checkpoint();
        j.log(Log { address: alice, topics: vec![], data: vec![2] });
        assert_eq!(j.logs().len(), 2);
        j.revert(cp);
        assert_eq!(j.logs().len(), 1);
        assert_eq!(j.take_logs().len(), 1);
        assert!(j.logs().is_empty());
    }

    #[test]
    fn nonce_and_code_revert() {
        let (backend, alice, _) = setup();
        let mut j = JournaledState::new(&backend);
        let cp = j.checkpoint();
        assert_eq!(j.inc_nonce(&alice), 0);
        j.set_code(&alice, vec![0x60, 0x00]);
        assert_eq!(j.nonce(&alice), 1);
        assert_eq!(j.code(&alice).as_slice(), &[0x60, 0x00]);
        j.revert(cp);
        assert_eq!(j.nonce(&alice), 0);
        assert!(j.code(&alice).is_empty());
    }

    #[test]
    fn account_creation_reverts_to_nonexistent() {
        let backend = InMemoryState::new();
        let ghost = Address::from_low_u64(99);
        let mut j = JournaledState::new(&backend);
        assert!(!j.exists(ghost));
        let cp = j.checkpoint();
        j.add_balance(&ghost, U256::from(5u64));
        assert!(j.exists(ghost));
        j.revert(cp);
        assert!(!j.exists(ghost));
        assert_eq!(j.balance(&ghost), U256::ZERO);
    }

    #[test]
    fn selfdestruct_moves_balance_and_reverts() {
        let (backend, alice, bob) = setup();
        let mut j = JournaledState::new(&backend);
        let cp = j.checkpoint();
        let moved = j.selfdestruct(&alice, &bob);
        assert_eq!(moved, U256::from(1000u64));
        assert_eq!(j.balance(&bob), U256::from(1050u64));
        assert!(j.is_selfdestructed(&alice));
        j.revert(cp);
        assert!(!j.is_selfdestructed(&alice));
        assert_eq!(j.balance(&alice), U256::from(1000u64));
        assert_eq!(j.balance(&bob), U256::from(50u64));
    }

    #[test]
    fn selfdestruct_to_self_burns() {
        let (backend, alice, _) = setup();
        let mut j = JournaledState::new(&backend);
        j.selfdestruct(&alice, &alice);
        assert_eq!(j.balance(&alice), U256::ZERO);
    }

    #[test]
    fn changes_summary() {
        let (backend, alice, bob) = setup();
        let mut j = JournaledState::new(&backend);
        j.transfer(&alice, &bob, U256::from(10u64)).unwrap();
        j.sstore(&alice, &U256::ONE, U256::from(3u64));
        j.inc_nonce(&alice);
        let changes = j.changes();
        assert_eq!(changes.balances.len(), 2);
        assert_eq!(changes.nonces, vec![(alice, 0, 1)]);
        assert_eq!(changes.storage, vec![(alice, U256::ONE, U256::from(3u64))]);
        assert!(changes.new_contracts.is_empty());
    }

    #[test]
    fn sstore_noop_not_reported_in_changes() {
        let mut backend = InMemoryState::new();
        let addr = Address::from_low_u64(3);
        backend.set_storage(addr, U256::ONE, U256::from(4u64));
        let mut j = JournaledState::new(&backend);
        j.sstore(&addr, &U256::ONE, U256::from(4u64));
        assert!(j.changes().storage.is_empty());
    }

    #[test]
    fn suspend_rehydrate_preserves_overlay_and_frames() {
        let (backend, alice, bob) = setup();
        let mut j = JournaledState::new(&backend);
        let outer = j.checkpoint();
        j.transfer(&alice, &bob, U256::from(100u64)).unwrap();
        j.sstore(&alice, &U256::ONE, U256::from(7u64));
        j.log(Log { address: alice, topics: vec![], data: vec![1] });
        let (_, cold_before) = j.load_account(bob);
        assert!(cold_before);

        // Park the overlay, drop the reader borrow, re-attach.
        let (reader, parked) = j.suspend();
        let mut j = JournaledState::rehydrate(reader, parked);

        // Overlay values, logs, and warmth all survive the round trip.
        assert_eq!(j.balance(&alice), U256::from(900u64));
        assert_eq!(j.sload(&alice, &U256::ONE).value, U256::from(7u64));
        assert_eq!(j.logs().len(), 1);
        let (_, cold_after) = j.load_account(bob);
        assert!(!cold_after, "warm set lost across suspend");

        // An open frame checkpoint taken before suspension still
        // reverts correctly after rehydration.
        j.revert(outer);
        assert_eq!(j.balance(&alice), U256::from(1000u64));
        assert!(j.logs().is_empty());
    }

    #[test]
    fn code_hash_semantics() {
        let (backend, alice, _) = setup();
        let ghost = Address::from_low_u64(77);
        let mut j = JournaledState::new(&backend);
        // Existing EOA: empty code hash.
        assert_eq!(j.code_hash(&alice), crate::account::EMPTY_CODE_HASH);
        // Nonexistent account: zero (EXTCODEHASH rule).
        assert_eq!(j.code_hash(&ghost), B256::ZERO);
    }
}
