//! Per-block undo deltas: the world-state pre-images needed to roll a
//! synchronized chain back to a fork point.
//!
//! Every applied block sync captures, *before* writing, the previous
//! record of each account the delta touches ([`UndoDelta`]). The deltas
//! live in a bounded [`UndoRing`]; its capacity is the deepest reorg the
//! service can recover from without a full resync (the finality depth
//! should therefore never exceed it).

use crate::Account;
use std::collections::VecDeque;
use tape_primitives::{Address, B256};

/// The pre-images of one applied block: everything needed to unapply it.
#[derive(Debug, Clone)]
pub struct UndoDelta {
    /// Height of the block this delta unapplies.
    pub height: u64,
    /// Hash of the block this delta unapplies.
    pub block_hash: B256,
    /// Pre-image of every account the block's sync delta touched:
    /// `Some(account)` restores the record, `None` removes an account
    /// the block created.
    pub pre: Vec<(Address, Option<Account>)>,
}

/// A bounded ring of [`UndoDelta`]s, newest last.
///
/// Heights are expected to be contiguous and increasing; pushing a
/// delta at a height already present (or below) drops the stale suffix
/// first, so the ring always describes one linear chain segment.
#[derive(Debug, Clone)]
pub struct UndoRing {
    deltas: VecDeque<UndoDelta>,
    capacity: usize,
}

impl UndoRing {
    /// A ring holding at most `capacity` block deltas (minimum 1).
    pub fn new(capacity: usize) -> Self {
        UndoRing { deltas: VecDeque::new(), capacity: capacity.max(1) }
    }

    /// Records the pre-images of a newly applied block, evicting the
    /// oldest delta when full and any stale delta at or above the same
    /// height (a replayed branch overwrites the orphaned one).
    pub fn push(&mut self, delta: UndoDelta) {
        while self.deltas.back().is_some_and(|d| d.height >= delta.height) {
            self.deltas.pop_back();
        }
        if self.deltas.len() == self.capacity {
            self.deltas.pop_front();
        }
        self.deltas.push_back(delta);
    }

    /// Pops every delta for heights strictly above `height`, newest
    /// first — the order rollback must apply them in. Returns `None`
    /// (and leaves the ring untouched) when the ring does not reach
    /// down to `height`: the requested fork point predates the retained
    /// window, so an in-place rollback is impossible.
    pub fn pop_above(&mut self, height: u64) -> Option<Vec<UndoDelta>> {
        // Heights are contiguous, so the window reaches `height` iff the
        // oldest retained delta is at `height + 1` or below.
        if self.deltas.front().is_some_and(|d| d.height > height + 1) {
            return None;
        }
        let mut popped = Vec::new();
        while self.deltas.back().is_some_and(|d| d.height > height) {
            popped.push(self.deltas.pop_back().expect("checked above"));
        }
        Some(popped)
    }

    /// The delta recorded for the newest block, if any.
    pub fn newest(&self) -> Option<&UndoDelta> {
        self.deltas.back()
    }

    /// Number of block deltas currently retained.
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// `true` when no deltas are retained.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Maximum deltas the ring retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tape_primitives::U256;

    fn hash(low: u64) -> B256 {
        let mut bytes = [0u8; 32];
        bytes[24..].copy_from_slice(&low.to_be_bytes());
        B256::new(bytes)
    }

    fn delta(height: u64) -> UndoDelta {
        UndoDelta {
            height,
            block_hash: hash(height),
            pre: vec![(
                Address::from_low_u64(height),
                Some(Account::with_balance(U256::from(height))),
            )],
        }
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut ring = UndoRing::new(3);
        for h in 1..=5 {
            ring.push(delta(h));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.newest().unwrap().height, 5);
        // Fork point 1 is below the retained window (2..=5 kept 3..=5).
        assert!(ring.pop_above(1).is_none());
    }

    #[test]
    fn pop_above_returns_newest_first() {
        let mut ring = UndoRing::new(8);
        for h in 1..=5 {
            ring.push(delta(h));
        }
        let popped = ring.pop_above(2).expect("fork point retained");
        let heights: Vec<u64> = popped.iter().map(|d| d.height).collect();
        assert_eq!(heights, vec![5, 4, 3]);
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.newest().unwrap().height, 2);
    }

    #[test]
    fn pop_above_head_is_empty() {
        let mut ring = UndoRing::new(4);
        ring.push(delta(1));
        assert_eq!(ring.pop_above(1).expect("no-op rollback").len(), 0);
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn replayed_branch_overwrites_orphaned_heights() {
        let mut ring = UndoRing::new(8);
        for h in 1..=4 {
            ring.push(delta(h));
        }
        // A reorg rolls back to 2, then replays 3 and 4 on the new
        // branch: pushing height 3 drops the stale 3 and 4 first.
        let mut replay = delta(3);
        replay.block_hash = hash(0x33);
        ring.push(replay);
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.newest().unwrap().block_hash, hash(0x33));
    }
}
