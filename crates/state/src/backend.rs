//! State backends: the [`StateReader`] abstraction and the in-memory
//! world state.
//!
//! The pre-executor never mutates a backend — all writes live in the
//! [`JournaledState`](crate::JournaledState) overlay and are discarded
//! when the bundle finishes (paper §IV, step 10). Backends only change
//! when the node applies a *block*.

use crate::account::{Account, AccountInfo};
use std::collections::HashMap;
use std::sync::Arc;
use tape_primitives::{Address, B256, U256};

/// Read-only access to a version of the world state.
///
/// Implementations include the plain in-memory map ([`InMemoryState`]),
/// the node simulator's canonical state, and HarDTAPE's ORAM-backed
/// oblivious store.
pub trait StateReader {
    /// Loads the account header; `None` if the account does not exist.
    fn account(&self, address: &Address) -> Option<AccountInfo>;

    /// Loads contract code. Empty slice for code-less accounts.
    fn code(&self, address: &Address) -> Arc<Vec<u8>>;

    /// Loads a storage slot (zero when absent).
    fn storage(&self, address: &Address, key: &U256) -> U256;

    /// Hash of a recent block by number, for the `BLOCKHASH` opcode.
    /// Backends that do not track history may return zero.
    fn block_hash(&self, _number: u64) -> B256 {
        B256::ZERO
    }
}

impl<T: StateReader + ?Sized> StateReader for &T {
    fn account(&self, address: &Address) -> Option<AccountInfo> {
        (**self).account(address)
    }
    fn code(&self, address: &Address) -> Arc<Vec<u8>> {
        (**self).code(address)
    }
    fn storage(&self, address: &Address, key: &U256) -> U256 {
        (**self).storage(address, key)
    }
    fn block_hash(&self, number: u64) -> B256 {
        (**self).block_hash(number)
    }
}

/// A plain in-memory world state.
///
/// # Examples
///
/// ```
/// use tape_primitives::{Address, U256};
/// use tape_state::{Account, InMemoryState, StateReader};
///
/// let mut state = InMemoryState::new();
/// let alice = Address::from_low_u64(1);
/// state.put_account(alice, Account::with_balance(U256::from(100u64)));
/// assert_eq!(state.account(&alice).unwrap().balance, U256::from(100u64));
/// ```
#[derive(Debug, Clone, Default)]
pub struct InMemoryState {
    accounts: HashMap<Address, Account>,
    block_hashes: HashMap<u64, B256>,
}

impl InMemoryState {
    /// Creates an empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces an account.
    pub fn put_account(&mut self, address: Address, account: Account) {
        self.accounts.insert(address, account);
    }

    /// Removes an account entirely.
    pub fn remove_account(&mut self, address: &Address) -> Option<Account> {
        self.accounts.remove(address)
    }

    /// Mutable access to an account, creating it if absent.
    pub fn account_mut(&mut self, address: Address) -> &mut Account {
        self.accounts.entry(address).or_default()
    }

    /// Shared access to the full account record.
    pub fn account_full(&self, address: &Address) -> Option<&Account> {
        self.accounts.get(address)
    }

    /// Sets a storage slot directly (test/setup convenience).
    pub fn set_storage(&mut self, address: Address, key: U256, value: U256) {
        let account = self.accounts.entry(address).or_default();
        if value.is_zero() {
            account.storage.remove(&key);
        } else {
            account.storage.insert(key, value);
        }
    }

    /// Registers a historical block hash for `BLOCKHASH`.
    pub fn put_block_hash(&mut self, number: u64, hash: B256) {
        self.block_hashes.insert(number, hash);
    }

    /// Iterates over all `(address, account)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Address, &Account)> {
        self.accounts.iter()
    }

    /// Number of accounts.
    pub fn len(&self) -> usize {
        self.accounts.len()
    }

    /// Returns `true` if no accounts exist.
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty()
    }

    /// Computes the Ethereum state root over all non-empty accounts.
    pub fn state_root(&self) -> B256 {
        let mut trie = tape_mpt::SecureTrie::new();
        for (address, account) in &self.accounts {
            if !account.is_empty() || !account.storage.is_empty() {
                trie.insert(address.as_bytes(), &account.rlp_encode());
            }
        }
        trie.root_hash()
    }
}

impl StateReader for InMemoryState {
    fn account(&self, address: &Address) -> Option<AccountInfo> {
        self.accounts.get(address).map(Account::info)
    }

    fn code(&self, address: &Address) -> Arc<Vec<u8>> {
        self.accounts
            .get(address)
            .map(|a| Arc::clone(&a.code))
            .unwrap_or_default()
    }

    fn storage(&self, address: &Address, key: &U256) -> U256 {
        self.accounts
            .get(address)
            .and_then(|a| a.storage.get(key).copied())
            .unwrap_or(U256::ZERO)
    }

    fn block_hash(&self, number: u64) -> B256 {
        self.block_hashes.get(&number).copied().unwrap_or(B256::ZERO)
    }
}

/// An empty state: every account is absent. Useful as the base of
/// synthetic tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct EmptyState;

impl StateReader for EmptyState {
    fn account(&self, _address: &Address) -> Option<AccountInfo> {
        None
    }
    fn code(&self, _address: &Address) -> Arc<Vec<u8>> {
        Arc::default()
    }
    fn storage(&self, _address: &Address, _key: &U256) -> U256 {
        U256::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut state = InMemoryState::new();
        let addr = Address::from_low_u64(7);
        let mut account = Account::with_balance(U256::from(55u64));
        account.storage.insert(U256::ONE, U256::from(99u64));
        state.put_account(addr, account);

        assert_eq!(state.account(&addr).unwrap().balance, U256::from(55u64));
        assert_eq!(state.storage(&addr, &U256::ONE), U256::from(99u64));
        assert_eq!(state.storage(&addr, &U256::from(2u64)), U256::ZERO);
        assert!(state.account(&Address::from_low_u64(8)).is_none());
        assert_eq!(state.len(), 1);
    }

    #[test]
    fn set_storage_zero_removes() {
        let mut state = InMemoryState::new();
        let addr = Address::from_low_u64(1);
        state.set_storage(addr, U256::ONE, U256::from(5u64));
        assert_eq!(state.storage(&addr, &U256::ONE), U256::from(5u64));
        state.set_storage(addr, U256::ONE, U256::ZERO);
        assert_eq!(state.storage(&addr, &U256::ONE), U256::ZERO);
        assert!(state.account_full(&addr).unwrap().storage.is_empty());
    }

    #[test]
    fn state_root_changes_with_content() {
        let mut state = InMemoryState::new();
        let empty_root = state.state_root();
        assert_eq!(empty_root, tape_mpt::EMPTY_ROOT);

        state.put_account(Address::from_low_u64(1), Account::with_balance(U256::ONE));
        let one = state.state_root();
        assert_ne!(one, empty_root);

        state.put_account(Address::from_low_u64(2), Account::with_balance(U256::ONE));
        let two = state.state_root();
        assert_ne!(two, one);

        // Removing gets back the earlier root.
        state.remove_account(&Address::from_low_u64(2));
        assert_eq!(state.state_root(), one);
    }

    #[test]
    fn empty_accounts_excluded_from_root() {
        let mut state = InMemoryState::new();
        state.put_account(Address::from_low_u64(1), Account::default());
        assert_eq!(state.state_root(), tape_mpt::EMPTY_ROOT);
    }

    #[test]
    fn block_hashes() {
        let mut state = InMemoryState::new();
        let h = B256::new([9; 32]);
        state.put_block_hash(100, h);
        assert_eq!(state.block_hash(100), h);
        assert_eq!(state.block_hash(101), B256::ZERO);
    }

    #[test]
    fn empty_state_reader() {
        let s = EmptyState;
        assert!(s.account(&Address::ZERO).is_none());
        assert!(s.code(&Address::ZERO).is_empty());
        assert!(s.storage(&Address::ZERO, &U256::ONE).is_zero());
    }
}
