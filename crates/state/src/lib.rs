//! # tape-state
//!
//! The Ethereum world state substrate: account records, read-only state
//! backends, and the journaled overlay that gives execution frames their
//! commit/revert semantics (paper §II-A, §IV-B).
//!
//! Pre-execution never mutates a backend: every write lands in a
//! [`JournaledState`] overlay and evaporates when the bundle finishes,
//! exactly as HarDTAPE discards world-state modifications at step 10 of
//! its lifecycle.
//!
//! # Examples
//!
//! ```
//! use tape_primitives::{Address, U256};
//! use tape_state::{Account, InMemoryState, JournaledState, StateReader};
//!
//! let mut backend = InMemoryState::new();
//! let user = Address::from_low_u64(0xA11CE);
//! backend.put_account(user, Account::with_balance(U256::from(1_000u64)));
//!
//! let mut overlay = JournaledState::new(&backend);
//! let frame = overlay.checkpoint();
//! overlay.sstore(&user, &U256::ONE, U256::from(42u64));
//! overlay.commit(frame);
//!
//! assert_eq!(overlay.sload(&user, &U256::ONE).value, U256::from(42u64));
//! assert_eq!(backend.storage(&user, &U256::ONE), U256::ZERO); // untouched
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod account;
mod backend;
mod journal;
mod undo;

pub use account::{Account, AccountInfo, Log, EMPTY_CODE_HASH};
pub use backend::{EmptyState, InMemoryState, StateReader};
pub use journal::{
    Checkpoint, InsufficientBalance, JournalSuspend, JournaledState, SloadResult, SstoreResult,
    StateChanges,
};
pub use undo::{UndoDelta, UndoRing};
