//! Property tests: the journaled overlay must behave exactly like a
//! model interpreter over (balance, storage) maps under random
//! operations with nested checkpoint/commit/revert.

use std::collections::HashMap;
use tape_crypto::prop::{check, Gen};
use tape_primitives::{Address, U256};
use tape_state::{Account, InMemoryState, JournaledState};

#[derive(Debug, Clone)]
enum Op {
    Transfer { from: u8, to: u8, amount: u64 },
    Store { who: u8, key: u8, value: u64 },
    IncNonce { who: u8 },
    Checkpoint,
    Commit,
    Revert,
}

fn arb_op(g: &mut Gen) -> Op {
    match g.below(6) {
        0 => Op::Transfer {
            from: g.below(4) as u8,
            to: g.below(4) as u8,
            amount: g.below(500),
        },
        1 => Op::Store {
            who: g.below(4) as u8,
            key: g.below(3) as u8,
            value: g.below(100),
        },
        2 => Op::IncNonce { who: g.below(4) as u8 },
        3 => Op::Checkpoint,
        4 => Op::Commit,
        _ => Op::Revert,
    }
}

fn addr(i: u8) -> Address {
    Address::from_low_u64(0x100 + i as u64)
}

/// A plain model of the overlay semantics.
#[derive(Debug, Clone, PartialEq)]
struct Model {
    balances: HashMap<u8, u64>,
    nonces: HashMap<u8, u64>,
    storage: HashMap<(u8, u8), u64>,
}

#[test]
fn journal_matches_model() {
    check("journal_matches_model", 128, |g| {
        let ops = g.vec_of(0, 80, arb_op);
        let mut backend = InMemoryState::new();
        for i in 0..4u8 {
            backend.put_account(addr(i), Account::with_balance(U256::from(1_000u64)));
        }

        let mut journal = JournaledState::new(&backend);
        let mut model = Model {
            balances: (0..4).map(|i| (i, 1_000u64)).collect(),
            nonces: HashMap::new(),
            storage: HashMap::new(),
        };
        // Parallel stacks: journal checkpoints and model snapshots.
        let mut checkpoints = Vec::new();
        let mut snapshots: Vec<Model> = Vec::new();

        for op in &ops {
            match op {
                Op::Transfer { from, to, amount } => {
                    let ok = journal
                        .transfer(&addr(*from), &addr(*to), U256::from(*amount))
                        .is_ok();
                    let model_ok = model.balances.get(from).copied().unwrap_or(0) >= *amount;
                    assert_eq!(ok, model_ok, "transfer feasibility");
                    if model_ok {
                        *model.balances.entry(*from).or_insert(0) -= amount;
                        *model.balances.entry(*to).or_insert(0) += amount;
                    }
                }
                Op::Store { who, key, value } => {
                    journal.sstore(&addr(*who), &U256::from(*key), U256::from(*value));
                    model.storage.insert((*who, *key), *value);
                }
                Op::IncNonce { who } => {
                    journal.inc_nonce(&addr(*who));
                    *model.nonces.entry(*who).or_insert(0) += 1;
                }
                Op::Checkpoint => {
                    checkpoints.push(journal.checkpoint());
                    snapshots.push(model.clone());
                }
                Op::Commit => {
                    if let Some(cp) = checkpoints.pop() {
                        journal.commit(cp);
                        snapshots.pop();
                    }
                }
                Op::Revert => {
                    if let Some(cp) = checkpoints.pop() {
                        journal.revert(cp);
                        model = snapshots.pop().expect("stacks in lockstep");
                    }
                }
            }
        }

        // The journal and the model agree on every observable.
        for i in 0..4u8 {
            assert_eq!(
                journal.balance(&addr(i)),
                U256::from(model.balances.get(&i).copied().unwrap_or(0)),
                "balance of {i}"
            );
            assert_eq!(
                journal.nonce(&addr(i)),
                model.nonces.get(&i).copied().unwrap_or(0),
                "nonce of {i}"
            );
            for key in 0..3u8 {
                assert_eq!(
                    journal.sload(&addr(i), &U256::from(key)).value,
                    U256::from(model.storage.get(&(i, key)).copied().unwrap_or(0)),
                    "storage ({i}, {key})"
                );
            }
        }
        // Total balance is conserved across any interleaving.
        let total: u64 = model.balances.values().sum();
        assert_eq!(total, 4_000);
    });
}
