//! An in-memory Ethereum Merkle Patricia Trie with proof support.

use crate::nibbles::{bytes_to_nibbles, common_prefix_len, hex_prefix_decode, hex_prefix_encode};
use tape_crypto::keccak256;
use tape_primitives::{rlp, B256};

/// The root hash of an empty trie: `keccak256(rlp(""))`.
pub const EMPTY_ROOT: B256 = B256::new([
    0x56, 0xe8, 0x1f, 0x17, 0x1b, 0xcc, 0x55, 0xa6, 0xff, 0x83, 0x45, 0xe6, 0x92, 0xc0, 0xf8,
    0x6e, 0x5b, 0x48, 0xe0, 0x1b, 0x99, 0x6c, 0xad, 0xc0, 0x01, 0x62, 0x2f, 0xb5, 0xe3, 0x63,
    0xb4, 0x21,
]);

#[derive(Debug, Clone, PartialEq, Eq)]
enum Node {
    Empty,
    Leaf { path: Vec<u8>, value: Vec<u8> },
    Ext { path: Vec<u8>, child: Box<Node> },
    Branch { children: Box<[Node; 16]>, value: Option<Vec<u8>> },
}

impl Node {
    fn empty_children() -> Box<[Node; 16]> {
        Box::new(core::array::from_fn(|_| Node::Empty))
    }

    fn is_empty(&self) -> bool {
        matches!(self, Node::Empty)
    }

    /// RLP encoding of this node.
    fn encode(&self) -> Vec<u8> {
        match self {
            Node::Empty => rlp::encode_bytes(&[]),
            Node::Leaf { path, value } => rlp::encode_list(&[
                rlp::encode_bytes(&hex_prefix_encode(path, true)),
                rlp::encode_bytes(value),
            ]),
            Node::Ext { path, child } => rlp::encode_list(&[
                rlp::encode_bytes(&hex_prefix_encode(path, false)),
                child.reference(),
            ]),
            Node::Branch { children, value } => {
                let mut items = Vec::with_capacity(17);
                for child in children.iter() {
                    if child.is_empty() {
                        items.push(rlp::encode_bytes(&[]));
                    } else {
                        items.push(child.reference());
                    }
                }
                items.push(rlp::encode_bytes(value.as_deref().unwrap_or(&[])));
                rlp::encode_list(&items)
            }
        }
    }

    /// The reference to this node as embedded in a parent: the encoding
    /// itself when shorter than 32 bytes, otherwise the keccak hash.
    fn reference(&self) -> Vec<u8> {
        let encoded = self.encode();
        if encoded.len() < 32 {
            encoded
        } else {
            rlp::encode_bytes(keccak256(&encoded).as_bytes())
        }
    }
}

/// A Merkle Patricia Trie mapping byte-string keys to byte-string values.
///
/// Node storage is in-memory; [`root_hash`](MerkleTrie::root_hash) and
/// [`prove`](MerkleTrie::prove) produce the exact hashes and proofs an
/// Ethereum node would.
///
/// # Examples
///
/// ```
/// use tape_mpt::MerkleTrie;
///
/// let mut trie = MerkleTrie::new();
/// trie.insert(b"dog", b"puppy");
/// assert_eq!(trie.get(b"dog"), Some(&b"puppy"[..]));
/// let root = trie.root_hash();
/// let proof = trie.prove(b"dog");
/// assert_eq!(
///     tape_mpt::verify_proof(root, b"dog", &proof).unwrap(),
///     Some(b"puppy".to_vec())
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleTrie {
    root: Node,
    len: usize,
}

impl Default for MerkleTrie {
    fn default() -> Self {
        Self::new()
    }
}

impl MerkleTrie {
    /// Creates an empty trie.
    pub fn new() -> Self {
        MerkleTrie { root: Node::Empty, len: 0 }
    }

    /// Number of key/value pairs stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the trie holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a key/value pair, returning the previous value if any.
    /// Inserting an empty value removes the key (Ethereum semantics).
    pub fn insert(&mut self, key: &[u8], value: &[u8]) -> Option<Vec<u8>> {
        if value.is_empty() {
            return self.remove(key);
        }
        let nibbles = bytes_to_nibbles(key);
        let root = std::mem::replace(&mut self.root, Node::Empty);
        let (root, old) = Self::insert_at(root, &nibbles, value.to_vec());
        self.root = root;
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn insert_at(node: Node, path: &[u8], value: Vec<u8>) -> (Node, Option<Vec<u8>>) {
        match node {
            Node::Empty => (Node::Leaf { path: path.to_vec(), value }, None),
            Node::Leaf { path: lpath, value: lvalue } => {
                let common = common_prefix_len(&lpath, path);
                if common == lpath.len() && common == path.len() {
                    return (Node::Leaf { path: lpath, value }, Some(lvalue));
                }
                // Split into a branch under a (possibly empty) extension.
                let mut children = Node::empty_children();
                let mut branch_value = None;
                if common == lpath.len() {
                    branch_value = Some(lvalue);
                } else {
                    children[lpath[common] as usize] = Node::Leaf {
                        path: lpath[common + 1..].to_vec(),
                        value: lvalue,
                    };
                }
                let mut branch = Node::Branch { children, value: branch_value };
                // Insert the new key into the branch.
                let (new_branch, _) = Self::insert_at(
                    std::mem::replace(&mut branch, Node::Empty),
                    &path[common..],
                    value,
                );
                let node = if common == 0 {
                    new_branch
                } else {
                    Node::Ext { path: path[..common].to_vec(), child: Box::new(new_branch) }
                };
                (node, None)
            }
            Node::Ext { path: epath, child } => {
                let common = common_prefix_len(&epath, path);
                if common == epath.len() {
                    let (new_child, old) = Self::insert_at(*child, &path[common..], value);
                    return (
                        Node::Ext { path: epath, child: Box::new(new_child) },
                        old,
                    );
                }
                // Split the extension.
                let mut children = Node::empty_children();
                let remaining = &epath[common + 1..];
                children[epath[common] as usize] = if remaining.is_empty() {
                    *child
                } else {
                    Node::Ext { path: remaining.to_vec(), child }
                };
                let branch = Node::Branch { children, value: None };
                let (new_branch, _) = Self::insert_at(branch, &path[common..], value);
                let node = if common == 0 {
                    new_branch
                } else {
                    Node::Ext { path: path[..common].to_vec(), child: Box::new(new_branch) }
                };
                (node, None)
            }
            Node::Branch { mut children, value: bvalue } => {
                if path.is_empty() {
                    let old = bvalue;
                    return (Node::Branch { children, value: Some(value) }, old);
                }
                let idx = path[0] as usize;
                let child = std::mem::replace(&mut children[idx], Node::Empty);
                let (new_child, old) = Self::insert_at(child, &path[1..], value);
                children[idx] = new_child;
                (Node::Branch { children, value: bvalue }, old)
            }
        }
    }

    /// Looks up a key.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        let nibbles = bytes_to_nibbles(key);
        Self::get_at(&self.root, &nibbles)
    }

    fn get_at<'a>(node: &'a Node, path: &[u8]) -> Option<&'a [u8]> {
        match node {
            Node::Empty => None,
            Node::Leaf { path: lpath, value } => {
                if lpath == path {
                    Some(value)
                } else {
                    None
                }
            }
            Node::Ext { path: epath, child } => {
                if path.len() >= epath.len() && &path[..epath.len()] == epath.as_slice() {
                    Self::get_at(child, &path[epath.len()..])
                } else {
                    None
                }
            }
            Node::Branch { children, value } => {
                if path.is_empty() {
                    value.as_deref()
                } else {
                    Self::get_at(&children[path[0] as usize], &path[1..])
                }
            }
        }
    }

    /// Returns `true` if the key is present.
    pub fn contains_key(&self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }

    /// Removes a key, returning the previous value if any.
    pub fn remove(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        let nibbles = bytes_to_nibbles(key);
        let root = std::mem::replace(&mut self.root, Node::Empty);
        let (root, old) = Self::remove_at(root, &nibbles);
        self.root = root;
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    fn remove_at(node: Node, path: &[u8]) -> (Node, Option<Vec<u8>>) {
        match node {
            Node::Empty => (Node::Empty, None),
            Node::Leaf { path: lpath, value } => {
                if lpath == path {
                    (Node::Empty, Some(value))
                } else {
                    (Node::Leaf { path: lpath, value }, None)
                }
            }
            Node::Ext { path: epath, child } => {
                if path.len() < epath.len() || &path[..epath.len()] != epath.as_slice() {
                    return (Node::Ext { path: epath, child }, None);
                }
                let (new_child, old) = Self::remove_at(*child, &path[epath.len()..]);
                (Self::collapse_ext(epath, new_child), old)
            }
            Node::Branch { mut children, value } => {
                let (children, value, old) = if path.is_empty() {
                    let old = value;
                    (children, None, old)
                } else {
                    let idx = path[0] as usize;
                    let child = std::mem::replace(&mut children[idx], Node::Empty);
                    let (new_child, old) = Self::remove_at(child, &path[1..]);
                    children[idx] = new_child;
                    (children, value, old)
                };
                (Self::collapse_branch(children, value), old)
            }
        }
    }

    /// After a removal, an extension whose child degenerated must be merged.
    fn collapse_ext(epath: Vec<u8>, child: Node) -> Node {
        match child {
            Node::Empty => Node::Empty,
            Node::Leaf { path, value } => {
                let mut merged = epath;
                merged.extend_from_slice(&path);
                Node::Leaf { path: merged, value }
            }
            Node::Ext { path, child } => {
                let mut merged = epath;
                merged.extend_from_slice(&path);
                Node::Ext { path: merged, child }
            }
            branch @ Node::Branch { .. } => Node::Ext { path: epath, child: Box::new(branch) },
        }
    }

    /// After a removal, a branch with a single remaining entry collapses.
    fn collapse_branch(mut children: Box<[Node; 16]>, value: Option<Vec<u8>>) -> Node {
        let occupied: Vec<usize> = (0..16).filter(|&i| !children[i].is_empty()).collect();
        match (occupied.len(), &value) {
            (0, None) => Node::Empty,
            (0, Some(_)) => Node::Leaf { path: Vec::new(), value: value.expect("checked") },
            (1, None) => {
                let idx = occupied[0];
                let child = std::mem::replace(&mut children[idx], Node::Empty);
                Self::collapse_ext(vec![idx as u8], child)
            }
            _ => Node::Branch { children, value },
        }
    }

    /// Computes the Merkle root hash.
    pub fn root_hash(&self) -> B256 {
        if self.root.is_empty() {
            return EMPTY_ROOT;
        }
        keccak256(self.root.encode())
    }

    /// Produces a Merkle proof for `key`: the list of RLP-encoded nodes
    /// on the lookup path whose encodings are at least 32 bytes (inline
    /// nodes are embedded in their parents), root node always included.
    ///
    /// The proof also serves as a proof of *absence* when the key is not
    /// in the trie.
    pub fn prove(&self, key: &[u8]) -> Vec<Vec<u8>> {
        let mut proof = Vec::new();
        if self.root.is_empty() {
            return proof;
        }
        let nibbles = bytes_to_nibbles(key);
        let mut node = &self.root;
        let mut path: &[u8] = &nibbles;
        loop {
            let encoded = node.encode();
            if encoded.len() >= 32 || proof.is_empty() {
                proof.push(encoded);
            }
            match node {
                Node::Empty | Node::Leaf { .. } => return proof,
                Node::Ext { path: epath, child } => {
                    if path.len() >= epath.len() && &path[..epath.len()] == epath.as_slice() {
                        path = &path[epath.len()..];
                        node = child;
                    } else {
                        return proof;
                    }
                }
                Node::Branch { children, .. } => {
                    if path.is_empty() {
                        return proof;
                    }
                    let child = &children[path[0] as usize];
                    if child.is_empty() {
                        return proof;
                    }
                    path = &path[1..];
                    node = child;
                }
            }
        }
    }

    /// Visits every `(key_nibbles, value)` pair in depth-first order.
    pub fn for_each(&self, mut f: impl FnMut(&[u8], &[u8])) {
        fn walk(node: &Node, prefix: &mut Vec<u8>, f: &mut impl FnMut(&[u8], &[u8])) {
            match node {
                Node::Empty => {}
                Node::Leaf { path, value } => {
                    prefix.extend_from_slice(path);
                    f(prefix, value);
                    prefix.truncate(prefix.len() - path.len());
                }
                Node::Ext { path, child } => {
                    prefix.extend_from_slice(path);
                    walk(child, prefix, f);
                    prefix.truncate(prefix.len() - path.len());
                }
                Node::Branch { children, value } => {
                    if let Some(v) = value {
                        f(prefix, v);
                    }
                    for (i, child) in children.iter().enumerate() {
                        prefix.push(i as u8);
                        walk(child, prefix, f);
                        prefix.pop();
                    }
                }
            }
        }
        let mut prefix = Vec::new();
        walk(&self.root, &mut prefix, &mut f);
    }
}

/// Error produced by [`verify_proof`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProofError {
    /// A referenced node is missing from the proof.
    MissingNode,
    /// A node failed to decode or had an invalid shape.
    MalformedNode,
    /// A node's hash did not match its reference.
    HashMismatch,
}

impl core::fmt::Display for ProofError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProofError::MissingNode => write!(f, "proof is missing a referenced node"),
            ProofError::MalformedNode => write!(f, "proof contains a malformed node"),
            ProofError::HashMismatch => write!(f, "proof node hash mismatch"),
        }
    }
}

impl std::error::Error for ProofError {}

/// Verifies a Merkle proof against a root hash.
///
/// Returns `Ok(Some(value))` when the proof shows `key` present with
/// `value`, `Ok(None)` when the proof shows the key absent, and an error
/// when the proof is inconsistent with `root`.
///
/// # Errors
///
/// Returns [`ProofError`] if any node is missing, malformed, or fails its
/// hash check.
pub fn verify_proof(
    root: B256,
    key: &[u8],
    proof: &[Vec<u8>],
) -> Result<Option<Vec<u8>>, ProofError> {
    if root == EMPTY_ROOT {
        return Ok(None);
    }
    let mut by_hash = std::collections::HashMap::new();
    for node in proof {
        by_hash.insert(keccak256(node), node.as_slice());
    }
    let nibbles = bytes_to_nibbles(key);
    let mut expected = root;
    let mut path: &[u8] = &nibbles;
    loop {
        let encoded = *by_hash.get(&expected).ok_or(ProofError::MissingNode)?;
        let mut item = rlp::decode(encoded).map_err(|_| ProofError::MalformedNode)?;
        // Walk inline (embedded) nodes without re-hashing.
        loop {
            let list = item.as_list().map_err(|_| ProofError::MalformedNode)?;
            match list.len() {
                2 => {
                    let hp = list[0].as_bytes().map_err(|_| ProofError::MalformedNode)?;
                    let (npath, is_leaf) =
                        hex_prefix_decode(hp).ok_or(ProofError::MalformedNode)?;
                    if is_leaf {
                        let value =
                            list[1].as_bytes().map_err(|_| ProofError::MalformedNode)?;
                        if npath == path {
                            return Ok(Some(value.to_vec()));
                        }
                        return Ok(None);
                    }
                    // Extension.
                    if path.len() < npath.len() || path[..npath.len()] != npath[..] {
                        return Ok(None);
                    }
                    path = &path[npath.len()..];
                    match &list[1] {
                        rlp::RlpItem::Bytes(h) if h.len() == 32 => {
                            expected = B256::from_slice(h);
                            break;
                        }
                        inline @ rlp::RlpItem::List(_) => {
                            item = inline.clone();
                            continue;
                        }
                        _ => return Err(ProofError::MalformedNode),
                    }
                }
                17 => {
                    if path.is_empty() {
                        let value =
                            list[16].as_bytes().map_err(|_| ProofError::MalformedNode)?;
                        if value.is_empty() {
                            return Ok(None);
                        }
                        return Ok(Some(value.to_vec()));
                    }
                    let idx = path[0] as usize;
                    path = &path[1..];
                    match &list[idx] {
                        rlp::RlpItem::Bytes(h) if h.is_empty() => return Ok(None),
                        rlp::RlpItem::Bytes(h) if h.len() == 32 => {
                            expected = B256::from_slice(h);
                            break;
                        }
                        inline @ rlp::RlpItem::List(_) => {
                            item = inline.clone();
                            continue;
                        }
                        _ => return Err(ProofError::MalformedNode),
                    }
                }
                _ => return Err(ProofError::MalformedNode),
            }
        }
    }
}
