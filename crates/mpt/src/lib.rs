//! # tape-mpt
//!
//! Ethereum Merkle Patricia Tries: the authenticated key-value structure
//! behind the world state (paper §II-A). HarDTAPE uses Merkle proofs to
//! authenticate world-state data fetched from the untrusted Node during
//! block synchronization (paper §IV-C): once verified, data is re-protected
//! by AES-GCM inside the ORAM, so proofs are *not* needed on the hot
//! pre-execution path.
//!
//! * [`MerkleTrie`] — the raw trie with insert/get/remove, root hashing,
//!   and proof generation.
//! * [`SecureTrie`] — the variant Ethereum uses for state and storage:
//!   keys are keccak-hashed before insertion.
//! * [`verify_proof`] — stateless proof verification against a root hash.
//!
//! # Examples
//!
//! ```
//! use tape_mpt::{SecureTrie, verify_proof};
//!
//! let mut state = SecureTrie::new();
//! state.insert(b"account-1", b"balance=100");
//! state.insert(b"account-2", b"balance=250");
//!
//! let root = state.root_hash();
//! let proof = state.prove(b"account-1");
//! let verified = verify_proof(root, &tape_crypto::keccak256(b"account-1").into_bytes(), &proof)?;
//! assert_eq!(verified, Some(b"balance=100".to_vec()));
//! # Ok::<(), tape_mpt::ProofError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod nibbles;
mod trie;

pub use trie::{verify_proof, MerkleTrie, ProofError, EMPTY_ROOT};

use tape_crypto::keccak256;
use tape_primitives::B256;

/// A "secure" trie: identical to [`MerkleTrie`] but all keys are
/// keccak-256 hashed first, matching Ethereum's state and storage tries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SecureTrie {
    inner: MerkleTrie,
}

impl SecureTrie {
    /// Creates an empty secure trie.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a key/value pair (the key is hashed).
    pub fn insert(&mut self, key: &[u8], value: &[u8]) -> Option<Vec<u8>> {
        self.inner.insert(keccak256(key).as_bytes(), value)
    }

    /// Looks up a key (the key is hashed).
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.inner.get(keccak256(key).as_bytes())
    }

    /// Removes a key (the key is hashed).
    pub fn remove(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        self.inner.remove(keccak256(key).as_bytes())
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Returns `true` if the trie holds no entries.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// The Merkle root hash.
    pub fn root_hash(&self) -> B256 {
        self.inner.root_hash()
    }

    /// Proof for a key. Verify with [`verify_proof`] against the *hashed*
    /// key (`keccak256(key)`).
    pub fn prove(&self, key: &[u8]) -> Vec<Vec<u8>> {
        self.inner.prove(keccak256(key).as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tape_primitives::hex;

    #[test]
    fn empty_root_constant() {
        assert_eq!(
            hex::encode(MerkleTrie::new().root_hash().as_bytes()),
            "56e81f171bcc55a6ff8345e692c0f86e5b48e01b996cadc001622fb5e363b421"
        );
    }

    #[test]
    fn yellow_paper_root_vector() {
        // The canonical {do, dog, doge, horse} vector from ethereum/tests.
        let mut trie = MerkleTrie::new();
        trie.insert(b"do", b"verb");
        trie.insert(b"dog", b"puppy");
        trie.insert(b"doge", b"coin");
        trie.insert(b"horse", b"stallion");
        assert_eq!(
            hex::encode(trie.root_hash().as_bytes()),
            "5991bb8c6514148a29db676a14ac506cd2cd5775ace63c30a4fe457715e9ac84"
        );
    }

    #[test]
    fn insertion_order_independence() {
        let pairs: Vec<(&[u8], &[u8])> = vec![
            (b"do", b"verb"),
            (b"dog", b"puppy"),
            (b"doge", b"coin"),
            (b"horse", b"stallion"),
            (b"dodge", b"car"),
        ];
        let mut forward = MerkleTrie::new();
        for (k, v) in &pairs {
            forward.insert(k, v);
        }
        let mut backward = MerkleTrie::new();
        for (k, v) in pairs.iter().rev() {
            backward.insert(k, v);
        }
        assert_eq!(forward.root_hash(), backward.root_hash());
    }

    #[test]
    fn overwrite_returns_old_value() {
        let mut trie = MerkleTrie::new();
        assert_eq!(trie.insert(b"k", b"v1"), None);
        assert_eq!(trie.insert(b"k", b"v2"), Some(b"v1".to_vec()));
        assert_eq!(trie.get(b"k"), Some(&b"v2"[..]));
        assert_eq!(trie.len(), 1);
    }

    #[test]
    fn remove_restores_previous_root() {
        let mut trie = MerkleTrie::new();
        trie.insert(b"do", b"verb");
        trie.insert(b"dog", b"puppy");
        let snapshot = trie.root_hash();
        trie.insert(b"doge", b"coin");
        assert_ne!(trie.root_hash(), snapshot);
        assert_eq!(trie.remove(b"doge"), Some(b"coin".to_vec()));
        assert_eq!(trie.root_hash(), snapshot);
        assert_eq!(trie.remove(b"missing"), None);
    }

    #[test]
    fn remove_all_yields_empty_root() {
        let mut trie = MerkleTrie::new();
        let keys: Vec<Vec<u8>> = (0u32..50).map(|i| i.to_be_bytes().to_vec()).collect();
        for k in &keys {
            trie.insert(k, b"value");
        }
        for k in &keys {
            assert!(trie.remove(k).is_some());
        }
        assert_eq!(trie.root_hash(), EMPTY_ROOT);
        assert!(trie.is_empty());
    }

    #[test]
    fn empty_value_deletes() {
        let mut trie = MerkleTrie::new();
        trie.insert(b"k", b"v");
        trie.insert(b"k", b"");
        assert_eq!(trie.get(b"k"), None);
        assert_eq!(trie.root_hash(), EMPTY_ROOT);
    }

    #[test]
    fn proof_of_presence_and_absence() {
        let mut trie = MerkleTrie::new();
        for i in 0u32..100 {
            trie.insert(&i.to_be_bytes(), format!("value-{i}").as_bytes());
        }
        let root = trie.root_hash();

        let proof = trie.prove(&5u32.to_be_bytes());
        assert_eq!(
            verify_proof(root, &5u32.to_be_bytes(), &proof).unwrap(),
            Some(b"value-5".to_vec())
        );

        let absent_key = 10_000u32.to_be_bytes();
        let absence = trie.prove(&absent_key);
        assert_eq!(verify_proof(root, &absent_key, &absence).unwrap(), None);
    }

    #[test]
    fn tampered_proof_rejected() {
        let mut trie = MerkleTrie::new();
        for i in 0u32..100 {
            trie.insert(&i.to_be_bytes(), format!("value-{i}").as_bytes());
        }
        let root = trie.root_hash();
        let mut proof = trie.prove(&7u32.to_be_bytes());
        // Corrupt a byte of the first (root) node.
        proof[0][5] ^= 0xff;
        assert!(verify_proof(root, &7u32.to_be_bytes(), &proof).is_err());
        // Drop a node from the proof.
        let mut short = trie.prove(&7u32.to_be_bytes());
        short.pop();
        let result = verify_proof(root, &7u32.to_be_bytes(), &short);
        assert!(matches!(result, Err(ProofError::MissingNode) | Ok(None)));
    }

    #[test]
    fn proof_cannot_claim_wrong_value() {
        let mut trie = MerkleTrie::new();
        trie.insert(b"key", b"honest");
        let root = trie.root_hash();

        let mut forged = MerkleTrie::new();
        forged.insert(b"key", b"forged");
        let forged_proof = forged.prove(b"key");
        assert!(verify_proof(root, b"key", &forged_proof).is_err());
    }

    #[test]
    fn single_entry_proof() {
        let mut trie = MerkleTrie::new();
        trie.insert(b"only", b"entry");
        let root = trie.root_hash();
        let proof = trie.prove(b"only");
        assert_eq!(verify_proof(root, b"only", &proof).unwrap(), Some(b"entry".to_vec()));
    }

    #[test]
    fn secure_trie_hashes_keys() {
        let mut secure = SecureTrie::new();
        secure.insert(b"account", b"data");
        assert_eq!(secure.get(b"account"), Some(&b"data"[..]));
        assert_eq!(secure.len(), 1);

        // The same data in a raw trie yields a different root because the
        // secure trie hashed the key.
        let mut raw = MerkleTrie::new();
        raw.insert(b"account", b"data");
        assert_ne!(secure.root_hash(), raw.root_hash());

        let root = secure.root_hash();
        let proof = secure.prove(b"account");
        let hashed = tape_crypto::keccak256(b"account");
        assert_eq!(
            verify_proof(root, hashed.as_bytes(), &proof).unwrap(),
            Some(b"data".to_vec())
        );
        assert_eq!(secure.remove(b"account"), Some(b"data".to_vec()));
        assert!(secure.is_empty());
    }

    #[test]
    fn for_each_visits_everything() {
        let mut trie = MerkleTrie::new();
        for i in 0u32..20 {
            trie.insert(&i.to_be_bytes(), b"x");
        }
        let mut count = 0;
        trie.for_each(|_, v| {
            assert_eq!(v, b"x");
            count += 1;
        });
        assert_eq!(count, 20);
    }
}
