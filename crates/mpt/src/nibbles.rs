//! Nibble-path utilities and the hex-prefix encoding used by trie nodes.

/// Expands bytes into nibbles (high nibble first).
pub fn bytes_to_nibbles(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(b >> 4);
        out.push(b & 0x0f);
    }
    out
}

/// Length of the shared prefix of two nibble slices.
pub fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// Hex-prefix encodes a nibble path. `is_leaf` selects the leaf (2) vs
/// extension (0) flag per the Ethereum yellow paper.
pub fn hex_prefix_encode(nibbles: &[u8], is_leaf: bool) -> Vec<u8> {
    let mut flag = if is_leaf { 2u8 } else { 0u8 };
    let odd = nibbles.len() % 2 == 1;
    if odd {
        flag += 1;
    }
    let mut out = Vec::with_capacity(nibbles.len() / 2 + 1);
    if odd {
        out.push((flag << 4) | nibbles[0]);
        for pair in nibbles[1..].chunks_exact(2) {
            out.push((pair[0] << 4) | pair[1]);
        }
    } else {
        out.push(flag << 4);
        for pair in nibbles.chunks_exact(2) {
            out.push((pair[0] << 4) | pair[1]);
        }
    }
    out
}

/// Decodes a hex-prefix encoding; returns `(nibbles, is_leaf)`, or `None`
/// on a malformed flag.
pub fn hex_prefix_decode(encoded: &[u8]) -> Option<(Vec<u8>, bool)> {
    let (&first, rest) = encoded.split_first()?;
    let flag = first >> 4;
    if flag > 3 {
        return None;
    }
    let is_leaf = flag >= 2;
    let odd = flag % 2 == 1;
    let mut nibbles = Vec::with_capacity(rest.len() * 2 + 1);
    if odd {
        nibbles.push(first & 0x0f);
    } else if first & 0x0f != 0 {
        return None; // padding nibble must be zero
    }
    for &b in rest {
        nibbles.push(b >> 4);
        nibbles.push(b & 0x0f);
    }
    Some((nibbles, is_leaf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nibble_expansion() {
        assert_eq!(bytes_to_nibbles(&[0xAB, 0xCD]), vec![0xA, 0xB, 0xC, 0xD]);
        assert!(bytes_to_nibbles(&[]).is_empty());
    }

    #[test]
    fn common_prefix() {
        assert_eq!(common_prefix_len(&[1, 2, 3], &[1, 2, 4]), 2);
        assert_eq!(common_prefix_len(&[1], &[2]), 0);
        assert_eq!(common_prefix_len(&[1, 2], &[1, 2]), 2);
    }

    #[test]
    fn hex_prefix_yellow_paper_examples() {
        // From the yellow paper appendix: [1,2,3,4,5] ext -> 0x112345
        assert_eq!(hex_prefix_encode(&[1, 2, 3, 4, 5], false), vec![0x11, 0x23, 0x45]);
        // [0,1,2,3,4,5] ext -> 0x00012345
        assert_eq!(
            hex_prefix_encode(&[0, 1, 2, 3, 4, 5], false),
            vec![0x00, 0x01, 0x23, 0x45]
        );
        // [0,f,1,c,b,8] leaf(0x20 flag even) -> 0x200f1cb8
        assert_eq!(
            hex_prefix_encode(&[0, 0xf, 1, 0xc, 0xb, 8], true),
            vec![0x20, 0x0f, 0x1c, 0xb8]
        );
        // [f,1,c,b,8] leaf odd -> 0x3f1cb8
        assert_eq!(
            hex_prefix_encode(&[0xf, 1, 0xc, 0xb, 8], true),
            vec![0x3f, 0x1c, 0xb8]
        );
    }

    #[test]
    fn hex_prefix_roundtrip() {
        for len in 0..8 {
            for leaf in [false, true] {
                let nibbles: Vec<u8> = (0..len).map(|i| (i % 16) as u8).collect();
                let enc = hex_prefix_encode(&nibbles, leaf);
                assert_eq!(hex_prefix_decode(&enc), Some((nibbles.clone(), leaf)));
            }
        }
    }

    #[test]
    fn hex_prefix_decode_rejects_bad_flag() {
        assert_eq!(hex_prefix_decode(&[0x40]), None);
        assert_eq!(hex_prefix_decode(&[0x01]), None); // nonzero padding
        assert_eq!(hex_prefix_decode(&[]), None);
    }
}
