//! Property tests: the trie must behave exactly like a HashMap while
//! producing order-independent roots and sound proofs.

use std::collections::HashMap;
use tape_crypto::prop::{check, Gen};
use tape_mpt::{verify_proof, MerkleTrie, EMPTY_ROOT};

const CASES: u32 = 64;

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>, Vec<u8>),
    Remove(Vec<u8>),
}

fn arb_key(g: &mut Gen) -> Vec<u8> {
    // Short keys collide on prefixes often, exercising branch/ext splits.
    g.vec_of(1, 6, |g| g.below(4) as u8)
}

fn arb_op(g: &mut Gen) -> Op {
    if g.bool() {
        Op::Insert(arb_key(g), g.bytes(1, 20))
    } else {
        Op::Remove(arb_key(g))
    }
}

fn arb_entries(g: &mut Gen, min: usize, max: usize) -> HashMap<Vec<u8>, Vec<u8>> {
    let target = g.range(min as u64, max as u64) as usize;
    let mut entries = HashMap::new();
    // Duplicate keys collapse, so loop until the map reaches the target.
    while entries.len() < target {
        entries.insert(arb_key(g), g.bytes(1, 10));
    }
    entries
}

#[test]
fn trie_matches_hashmap() {
    check("trie_matches_hashmap", CASES, |g| {
        let ops = g.vec_of(0, 120, arb_op);
        let mut trie = MerkleTrie::new();
        let mut map: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        for op in &ops {
            match op {
                Op::Insert(k, v) => {
                    assert_eq!(trie.insert(k, v), map.insert(k.clone(), v.clone()));
                }
                Op::Remove(k) => {
                    assert_eq!(trie.remove(k), map.remove(k));
                }
            }
        }
        assert_eq!(trie.len(), map.len());
        for (k, v) in &map {
            assert_eq!(trie.get(k), Some(v.as_slice()));
        }
        if map.is_empty() {
            assert_eq!(trie.root_hash(), EMPTY_ROOT);
        }
    });
}

#[test]
fn root_is_content_addressed() {
    check("root_is_content_addressed", CASES, |g| {
        // Applying the ops and then rebuilding from the final map in a
        // different order must give the same root.
        let ops = g.vec_of(0, 80, arb_op);
        let mut trie = MerkleTrie::new();
        let mut map: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        for op in &ops {
            match op {
                Op::Insert(k, v) => {
                    trie.insert(k, v);
                    map.insert(k.clone(), v.clone());
                }
                Op::Remove(k) => {
                    trie.remove(k);
                    map.remove(k);
                }
            }
        }
        let mut rebuilt = MerkleTrie::new();
        let mut entries: Vec<_> = map.into_iter().collect();
        entries.sort();
        entries.reverse();
        for (k, v) in entries {
            rebuilt.insert(&k, &v);
        }
        assert_eq!(trie.root_hash(), rebuilt.root_hash());
    });
}

#[test]
fn proofs_sound_for_all_keys() {
    check("proofs_sound_for_all_keys", CASES, |g| {
        let entries = arb_entries(g, 1, 40);
        let probe = arb_key(g);
        let mut trie = MerkleTrie::new();
        for (k, v) in &entries {
            trie.insert(k, v);
        }
        let root = trie.root_hash();

        // Every present key verifies to its value.
        for (k, v) in &entries {
            let proof = trie.prove(k);
            assert_eq!(verify_proof(root, k, &proof).unwrap(), Some(v.clone()));
        }

        // A probe key verifies to its map content (present or absent).
        let proof = trie.prove(&probe);
        assert_eq!(
            verify_proof(root, &probe, &proof).unwrap(),
            entries.get(&probe).cloned()
        );
    });
}

#[test]
fn proof_bound_to_root() {
    check("proof_bound_to_root", CASES, |g| {
        let entries = arb_entries(g, 2, 30);
        let mut trie = MerkleTrie::new();
        for (k, v) in &entries {
            trie.insert(k, v);
        }
        let root = trie.root_hash();
        let key = entries.keys().next().unwrap().clone();
        let proof = trie.prove(&key);

        // Mutate the trie: the old proof must not verify against the new root.
        trie.insert(&key, b"changed value xyz");
        let new_root = trie.root_hash();
        if new_root == root {
            return;
        }
        let result = verify_proof(new_root, &key, &proof);
        // Either an error (missing/mismatched node) or the proof simply
        // cannot produce the new value.
        match result {
            Ok(Some(v)) => assert_ne!(v, b"changed value xyz".to_vec()),
            Ok(None) | Err(_) => {}
        }
    });
}
