//! Property tests: the trie must behave exactly like a HashMap while
//! producing order-independent roots and sound proofs.

use proptest::prelude::*;
use std::collections::HashMap;
use tape_mpt::{verify_proof, MerkleTrie, EMPTY_ROOT};

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>, Vec<u8>),
    Remove(Vec<u8>),
}

fn arb_key() -> impl Strategy<Value = Vec<u8>> {
    // Short keys collide on prefixes often, exercising branch/ext splits.
    proptest::collection::vec(0u8..4, 1..6)
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_key(), proptest::collection::vec(any::<u8>(), 1..20))
            .prop_map(|(k, v)| Op::Insert(k, v)),
        arb_key().prop_map(Op::Remove),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn trie_matches_hashmap(ops in proptest::collection::vec(arb_op(), 0..120)) {
        let mut trie = MerkleTrie::new();
        let mut map: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        for op in &ops {
            match op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(trie.insert(k, v), map.insert(k.clone(), v.clone()));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(trie.remove(k), map.remove(k));
                }
            }
        }
        prop_assert_eq!(trie.len(), map.len());
        for (k, v) in &map {
            prop_assert_eq!(trie.get(k), Some(v.as_slice()));
        }
        if map.is_empty() {
            prop_assert_eq!(trie.root_hash(), EMPTY_ROOT);
        }
    }

    #[test]
    fn root_is_content_addressed(ops in proptest::collection::vec(arb_op(), 0..80)) {
        // Applying the ops and then rebuilding from the final map in a
        // different order must give the same root.
        let mut trie = MerkleTrie::new();
        let mut map: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        for op in &ops {
            match op {
                Op::Insert(k, v) => {
                    trie.insert(k, v);
                    map.insert(k.clone(), v.clone());
                }
                Op::Remove(k) => {
                    trie.remove(k);
                    map.remove(k);
                }
            }
        }
        let mut rebuilt = MerkleTrie::new();
        let mut entries: Vec<_> = map.into_iter().collect();
        entries.sort();
        entries.reverse();
        for (k, v) in entries {
            rebuilt.insert(&k, &v);
        }
        prop_assert_eq!(trie.root_hash(), rebuilt.root_hash());
    }

    #[test]
    fn proofs_sound_for_all_keys(
        entries in proptest::collection::hash_map(arb_key(), proptest::collection::vec(any::<u8>(), 1..10), 1..40),
        probe in arb_key(),
    ) {
        let mut trie = MerkleTrie::new();
        for (k, v) in &entries {
            trie.insert(k, v);
        }
        let root = trie.root_hash();

        // Every present key verifies to its value.
        for (k, v) in &entries {
            let proof = trie.prove(k);
            prop_assert_eq!(verify_proof(root, k, &proof).unwrap(), Some(v.clone()));
        }

        // A probe key verifies to its map content (present or absent).
        let proof = trie.prove(&probe);
        prop_assert_eq!(
            verify_proof(root, &probe, &proof).unwrap(),
            entries.get(&probe).cloned()
        );
    }

    #[test]
    fn proof_bound_to_root(
        entries in proptest::collection::hash_map(arb_key(), proptest::collection::vec(any::<u8>(), 1..10), 2..30),
    ) {
        let mut trie = MerkleTrie::new();
        for (k, v) in &entries {
            trie.insert(k, v);
        }
        let root = trie.root_hash();
        let key = entries.keys().next().unwrap().clone();
        let proof = trie.prove(&key);

        // Mutate the trie: the old proof must not verify against the new root.
        trie.insert(&key, b"changed value xyz");
        let new_root = trie.root_hash();
        prop_assume!(new_root != root);
        let result = verify_proof(new_root, &key, &proof);
        // Either an error (missing/mismatched node) or the proof simply
        // cannot produce the new value.
        match result {
            Ok(Some(v)) => prop_assert_ne!(v, b"changed value xyz".to_vec()),
            Ok(None) | Err(_) => {}
        }
    }
}
