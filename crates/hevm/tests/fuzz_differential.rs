//! Differential fuzzing: arbitrary byte soup and structured-random
//! programs must produce *identical* outcomes on the reference engine
//! and the HEVM — same success flag, gas, output, logs, state changes,
//! and structured trace. This is §VI-B pushed past the curated
//! evaluation set into the adversarial corner cases.

use tape_crypto::prop::check;
use tape_evm::asm::Asm;
use tape_evm::opcode::op;
use tape_evm::{Env, Evm, StructTracer, Transaction};
use tape_hevm::{Hevm, HevmConfig};
use tape_primitives::{Address, U256};
use tape_sim::Clock;
use tape_state::{Account, InMemoryState};

const CASES: u32 = 96;

fn sender() -> Address {
    Address::from_low_u64(0xAA)
}

fn target() -> Address {
    Address::from_low_u64(0xC0DE)
}

fn helper() -> Address {
    Address::from_low_u64(0xCA11)
}

fn run_both(code: Vec<u8>, helper_code: Vec<u8>, input: Vec<u8>, gas: u64) {
    let mut backend = InMemoryState::new();
    backend.put_account(sender(), Account::with_balance(U256::from(u64::MAX)));
    let mut main = Account::with_code(code);
    main.balance = U256::from(1_000u64);
    main.storage.insert(U256::ONE, U256::from(7u64));
    backend.put_account(target(), main);
    if !helper_code.is_empty() {
        backend.put_account(helper(), Account::with_code(helper_code));
    }

    let mut tx = Transaction::call(sender(), target(), input);
    tx.gas_limit = gas;

    let mut reference = Evm::with_inspector(Env::default(), &backend, StructTracer::new());
    let expected = reference.transact(&tx).expect("reference accepts");
    let mut hevm = Hevm::with_inspector(
        HevmConfig::default(),
        Env::default(),
        &backend,
        Clock::new(),
        StructTracer::new(),
    );
    let actual = hevm.transact(&tx).expect("hevm accepts");

    assert_eq!(expected, actual, "tx result");
    let ref_trace = reference.inspector();
    let hevm_trace = hevm.inspector();
    if let Some(step) = ref_trace.first_divergence(hevm_trace) {
        panic!(
            "trace diverges at step {step}:\n  ref:  {:?}\n  hevm: {:?}",
            ref_trace.steps().get(step),
            hevm_trace.steps().get(step)
        );
    }
    assert_eq!(reference.state().changes(), hevm.state().changes(), "state changes");
}

/// Pure byte soup: whatever it does — halt, revert, run off the end —
/// both engines must agree exactly.
#[test]
fn random_bytes_agree() {
    check("random_bytes_agree", CASES, |g| {
        let code = g.bytes(0, 200);
        let input = g.bytes(0, 64);
        run_both(code, vec![], input, 300_000);
    });
}

/// Byte soup biased toward defined opcodes (higher chance of real
/// execution paths than uniform bytes).
#[test]
fn biased_opcode_soup_agrees() {
    check("biased_opcode_soup_agrees", CASES, |g| {
        let ops = g.vec_of(1, 150, |g| g.below(0xA5) as u8);
        let input = g.bytes(0, 32);
        run_both(ops, vec![], input, 300_000);
    });
}

/// Structured programs: random straight-line stack/ALU/memory work
/// with a proper epilogue, so deep execution paths are exercised
/// (not just early halts).
#[test]
fn structured_programs_agree() {
    const ALU: &[u8] = &[
        op::ADD,
        op::MUL,
        op::SUB,
        op::DIV,
        op::SDIV,
        op::MOD,
        op::SMOD,
        op::AND,
        op::OR,
        op::XOR,
        op::LT,
        op::GT,
        op::SLT,
        op::SGT,
        op::EQ,
        op::SHL,
        op::SHR,
        op::SAR,
        op::BYTE,
        op::SIGNEXTEND,
    ];
    check("structured_programs_agree", CASES, |g| {
        let words = g.vec_of(1, 20, |g| g.u64());
        let alu = g.vec_of(0, 30, |g| *g.choose(ALU));
        let store_slot = g.u8();
        let mut asm = Asm::new();
        for w in &words {
            asm = asm.push(*w);
        }
        for binop in &alu {
            // Keep at least one operand on the stack: duplicate first.
            asm = asm.op(op::DUP1).op(*binop);
        }
        let code = asm
            .op(op::DUP1)
            .push(store_slot as u64)
            .op(op::SSTORE)
            .ret_top()
            .build();
        run_both(code, vec![], vec![], 500_000);
    });
}

/// Random cross-contract calls: the helper runs random (possibly
/// crashing) code; the caller forwards random gas and input, then
/// stores the success flag.
#[test]
fn random_subcalls_agree() {
    check("random_subcalls_agree", CASES, |g| {
        let helper_code = g.bytes(0, 100);
        let call_gas = g.below(200_000);
        let value = g.below(2_000);
        let out_len = g.below(64);
        let code = Asm::new()
            .push(out_len)
            .push(0u64)
            .push(4u64) // in len
            .push(0u64) // in offset
            .push(value)
            .push_address(helper())
            .push(call_gas)
            .op(op::CALL)
            .push(9u64)
            .op(op::SSTORE)
            .op(op::RETURNDATASIZE)
            .ret_top()
            .build();
        run_both(code, helper_code, vec![0xAB; 4], 400_000);
    });
}

/// Random memory traffic: MSTORE/MLOAD/MCOPY/KECCAK over arbitrary
/// (bounded) offsets, exercising expansion metering in both engines.
#[test]
fn random_memory_traffic_agrees() {
    check("random_memory_traffic_agrees", CASES, |g| {
        let ops = g.vec_of(1, 25, |g| (g.below(5) as u8, g.below(4096), g.below(4096)));
        let mut asm = Asm::new();
        for (kind, a, b) in &ops {
            asm = match kind {
                0 => asm.push(*a).push(*b).op(op::MSTORE),
                1 => asm.push(*a).op(op::MLOAD).op(op::POP),
                2 => asm.push(*a).push(*b).op(op::MSTORE8),
                3 => asm.push(64u64).push(*a).push(*b).op(op::MCOPY),
                _ => asm.push(32u64).push(*a).op(op::KECCAK256).op(op::POP),
            };
        }
        run_both(asm.op(op::MSIZE).ret_top().build(), vec![], vec![], 2_000_000);
    });
}

/// Tight gas limits: out-of-gas must strike at the same instruction
/// in both engines (verified via identical traces and gas_used).
#[test]
fn gas_exhaustion_agrees() {
    check("gas_exhaustion_agrees", CASES, |g| {
        let gas = g.range(21_000, 40_000);
        let spin = g.bool();
        let code = if spin {
            Asm::new().label("top").push(1u64).op(op::POP).jump("top").build()
        } else {
            // keccak-heavy straight line.
            let mut asm = Asm::new();
            for i in 0..50u64 {
                asm = asm.push(32u64).push(i * 32).op(op::KECCAK256).op(op::POP);
            }
            asm.stop().build()
        };
        run_both(code, vec![], vec![], gas);
    });
}
