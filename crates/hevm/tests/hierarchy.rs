//! Layer-2/3 behavior: Memory Overflow Error, swap-out/in of deep call
//! stacks, swap-size noise (A5), tamper detection (A4), and the timing
//! model.

use tape_evm::asm::Asm;
use tape_evm::opcode::op;
use tape_evm::{Env, Transaction};
use tape_hevm::{Hevm, HevmAbort, HevmConfig};
use tape_primitives::{Address, U256};
use tape_sim::resources::MemoryConfig;
use tape_sim::Clock;
use tape_state::{Account, InMemoryState};

fn sender() -> Address {
    Address::from_low_u64(0xAA)
}

fn contract() -> Address {
    Address::from_low_u64(0xC0DE)
}

fn backend(code: Vec<u8>) -> InMemoryState {
    let mut b = InMemoryState::new();
    b.put_account(sender(), Account::with_balance(U256::from(u64::MAX)));
    b.put_account(contract(), Account::with_code(code));
    b
}

/// A config with a tiny layer 2 so swaps/overflows trigger quickly.
fn tiny_layer2() -> HevmConfig {
    HevmConfig {
        mem: MemoryConfig {
            layer2_bytes: 128 * 1024, // frames are ≥37 KB; 3 don't fit
            ..MemoryConfig::default()
        },
        ..HevmConfig::default()
    }
}

/// Code that expands Memory to `kb` kilobytes then self-calls.
fn memory_hog(kb: u64) -> Vec<u8> {
    Asm::new()
        .push(1u64)
        .push(kb * 1024 - 32)
        .op(op::MSTORE) // expand memory to kb KB
        .push(0u64)
        .push(0u64)
        .push(0u64)
        .push(0u64)
        .push(0u64)
        .push_address(contract())
        .op(op::GAS)
        .op(op::CALL)
        .stop()
        .build()
}

#[test]
fn single_frame_overflow_aborts_bundle() {
    // One frame wanting > layer2/2 pages is treated as an attack.
    let config = tiny_layer2(); // limit = 64 KB -> 64 pages
    let code = Asm::new()
        .push(1u64)
        .push(100u64 * 1024) // expand Memory past 64 KB
        .op(op::MSTORE)
        .stop()
        .build();
    let b = backend(code);
    let mut hevm = Hevm::new(config, Env::default(), &b, Clock::new());
    let mut tx = Transaction::call(sender(), contract(), vec![]);
    tx.gas_limit = 5_000_000;
    let err = hevm.transact(&tx).unwrap_err();
    match err {
        HevmAbort::MemoryOverflow { frame_pages, limit_pages } => {
            assert_eq!(limit_pages, 64);
            assert!(frame_pages > 64);
        }
        other => panic!("expected MemoryOverflow, got {other:?}"),
    }
}

#[test]
fn deep_call_stack_swaps_to_layer3_and_completes() {
    let config = tiny_layer2();
    let b = backend(memory_hog(2));
    let mut hevm = Hevm::new(config, Env::default(), &b, Clock::new());
    let mut tx = Transaction::call(sender(), contract(), vec![]);
    tx.gas_limit = 8_000_000;
    let result = hevm.transact(&tx).unwrap();
    assert!(result.success, "halt: {:?}", result.halt);

    let stats = hevm.stats();
    assert!(stats.max_depth > 3, "recursion too shallow: {stats:?}");
    assert!(stats.swaps > 0, "layer 3 never used: {stats:?}");
    assert!(!hevm.swap_log().is_empty());
    // Swap-outs eventually matched by swap-ins (frames reloaded on
    // return).
    let ins: usize = hevm.swap_log().iter().map(|e| e.pages_in).sum();
    let outs: usize = hevm.swap_log().iter().map(|e| e.pages_out).sum();
    assert!(ins > 0 && outs > 0);
}

#[test]
fn swap_results_identical_to_reference_execution() {
    // Even with aggressive swapping, the final result matches the
    // reference engine (which has no memory hierarchy at all).
    let b = backend(memory_hog(2));
    let mut tx = Transaction::call(sender(), contract(), vec![]);
    tx.gas_limit = 8_000_000;

    let mut reference = tape_evm::Evm::new(Env::default(), &b);
    let expected = reference.transact(&tx).unwrap();

    let mut hevm = Hevm::new(tiny_layer2(), Env::default(), &b, Clock::new());
    let actual = hevm.transact(&tx).unwrap();
    assert_eq!(expected, actual);
}

#[test]
fn swap_sizes_are_noised_across_runs() {
    let b = backend(memory_hog(2));
    let mut tx = Transaction::call(sender(), contract(), vec![]);
    tx.gas_limit = 8_000_000;
    let mut hevm = Hevm::new(tiny_layer2(), Env::default(), &b, Clock::new());
    hevm.transact(&tx).unwrap();
    let outs: Vec<usize> = hevm
        .swap_log()
        .iter()
        .filter(|e| e.pages_out > 0)
        .map(|e| e.pages_out)
        .collect();
    assert!(outs.len() >= 3);
    // All frames have the same true size here, so any variation in the
    // observed sizes is pager noise.
    let distinct: std::collections::HashSet<_> = outs.iter().collect();
    assert!(distinct.len() > 1, "swap sizes constant: {outs:?}");
}

#[test]
fn layer3_tampering_aborts() {
    let b = backend(memory_hog(2));
    let mut tx = Transaction::call(sender(), contract(), vec![]);
    tx.gas_limit = 8_000_000;
    let mut hevm = Hevm::new(tiny_layer2(), Env::default(), &b, Clock::new());

    // The adversary flips bits in the first frame written to untrusted
    // memory, mid-execution.
    hevm.tamper_on_swap(0);
    let result = hevm.transact(&tx);
    match result {
        Err(HevmAbort::Layer3Tampered) => {}
        other => panic!("expected Layer3Tampered, got {other:?}"),
    }
}

#[test]
fn clock_advances_with_execution() {
    let clock = Clock::new();
    let code = Asm::new()
        .push(2u64)
        .push(3u64)
        .op(op::MUL)
        .ret_top()
        .build();
    let b = backend(code);
    let mut hevm = Hevm::new(HevmConfig::default(), Env::default(), &b, clock.clone());
    hevm.transact(&Transaction::call(sender(), contract(), vec![])).unwrap();
    // At least the per-tx overhead plus instruction time passed.
    assert!(clock.now() >= 1_000_000);
    let after_first = clock.now();
    hevm.transact(&Transaction::call(sender(), contract(), vec![])).unwrap();
    assert!(clock.now() > after_first);
}

#[test]
fn instruction_count_and_exceptions_tracked() {
    let code = Asm::new()
        .push(1u64)
        .op(op::SLOAD)
        .op(op::POP)
        .stop()
        .build();
    let b = backend(code);
    let mut hevm = Hevm::new(HevmConfig::default(), Env::default(), &b, Clock::new());
    hevm.transact(&Transaction::call(sender(), contract(), vec![])).unwrap();
    let stats = hevm.stats();
    assert_eq!(stats.instructions, 4);
    // Sender load + code-address load + cold SLOAD = 3 hypervisor
    // exceptions.
    assert!(stats.exceptions >= 3);
}

#[test]
fn within_capacity_no_swaps() {
    // Default 1 MB layer 2 holds a shallow two-frame stack without
    // swapping (frames are ~38 KB here).
    let aux = Address::from_low_u64(0xCA11);
    let code = Asm::new()
        .push(0u64)
        .push(0u64)
        .push(0u64)
        .push(0u64)
        .push(0u64)
        .push_address(aux)
        .push(50_000u64)
        .op(op::CALL)
        .stop()
        .build();
    let mut b = backend(code);
    b.put_account(aux, Account::with_code(vec![op::JUMPDEST, op::STOP]));
    let mut hevm = Hevm::new(HevmConfig::default(), Env::default(), &b, Clock::new());
    let mut tx = Transaction::call(sender(), contract(), vec![]);
    tx.gas_limit = 2_000_000;
    let result = hevm.transact(&tx).unwrap();
    assert!(result.success);
    assert_eq!(hevm.stats().max_depth, 2);
    assert_eq!(hevm.stats().swaps, 0);
    assert!(hevm.swap_log().is_empty());
}

#[test]
fn rollup_style_frame_hits_overflow_like_paper() {
    // Paper §VI-B: roll-up transactions may exceed the layer-2 frame
    // size limit. A frame with ~600 KB of Memory against the default
    // 1 MB layer 2 (512 KB frame limit) must abort.
    let code = Asm::new()
        .push(1u64)
        .push(600u64 * 1024)
        .op(op::MSTORE)
        .stop()
        .build();
    let b = backend(code);
    let mut hevm = Hevm::new(HevmConfig::default(), Env::default(), &b, Clock::new());
    let mut tx = Transaction::call(sender(), contract(), vec![]);
    tx.gas_limit = 10_000_000;
    assert!(matches!(
        hevm.transact(&tx),
        Err(HevmAbort::MemoryOverflow { .. })
    ));
}
