//! Segmented execution: gas-slice preemption, suspend/resume through a
//! typed [`Checkpoint`], checkpoint cover traffic, and the watchdog's
//! demotion to a per-segment backstop.

use tape_evm::asm::Asm;
use tape_evm::opcode::op;
use tape_evm::{Env, Transaction};
use tape_hevm::{Hevm, HevmAbort, HevmConfig, SliceOutcome};
use tape_primitives::{Address, U256};
use tape_sim::resources::MemoryConfig;
use tape_sim::Clock;
use tape_state::{Account, InMemoryState};

fn sender() -> Address {
    Address::from_low_u64(0xAA)
}

fn contract() -> Address {
    Address::from_low_u64(0xC0DE)
}

fn backend(code: Vec<u8>) -> InMemoryState {
    let mut b = InMemoryState::new();
    b.put_account(sender(), Account::with_balance(U256::from(u64::MAX)));
    b.put_account(contract(), Account::with_code(code));
    b
}

/// A compute burner: loops `n` times (~26 gas each), then writes a
/// storage slot, emits a log, and returns 42 — enough side effects to
/// make receipt comparison meaningful.
fn burner(n: u64) -> Vec<u8> {
    Asm::new()
        .push(n)
        .label("loop")
        .push(1u64)
        .op(op::SWAP1)
        .op(op::SUB)
        .op(op::DUP1)
        .jumpi("loop")
        .op(op::POP)
        .push(0xBEEFu64)
        .push(1u64)
        .op(op::SSTORE)
        .push(0u64)
        .push(0u64)
        .op(op::LOG0)
        .push(42u64)
        .ret_top()
        .build()
}

fn burner_tx() -> Transaction {
    let mut tx = Transaction::call(sender(), contract(), vec![]);
    tx.gas_limit = 2_000_000;
    tx
}

fn sliced(gas_slice: u64) -> HevmConfig {
    HevmConfig { gas_slice: Some(gas_slice), ..HevmConfig::default() }
}

/// A config with a tiny layer 2 so deep call stacks spill to layer 3.
fn tiny_layer2(gas_slice: Option<u64>) -> HevmConfig {
    HevmConfig {
        mem: MemoryConfig { layer2_bytes: 128 * 1024, ..MemoryConfig::default() },
        gas_slice,
        ..HevmConfig::default()
    }
}

/// Code that expands Memory to `kb` kilobytes then self-calls.
fn memory_hog(kb: u64) -> Vec<u8> {
    Asm::new()
        .push(1u64)
        .push(kb * 1024 - 32)
        .op(op::MSTORE)
        .push(0u64)
        .push(0u64)
        .push(0u64)
        .push(0u64)
        .push(0u64)
        .push_address(contract())
        .op(op::GAS)
        .op(op::CALL)
        .stop()
        .build()
}

#[test]
fn sliced_transact_matches_uninterrupted_receipt() {
    let b = backend(burner(40_000));
    let tx = burner_tx();

    let mut plain = Hevm::new(HevmConfig::default(), Env::default(), &b, Clock::new());
    let expected = plain.transact(&tx).unwrap();
    assert!(expected.success, "halt: {:?}", expected.halt);

    let mut segmented = Hevm::new(sliced(100_000), Env::default(), &b, Clock::new());
    let actual = segmented.transact(&tx).unwrap();
    assert_eq!(expected, actual);
}

#[test]
fn transact_sliced_yields_then_finishes_in_place() {
    let b = backend(burner(40_000));
    let tx = burner_tx();
    let mut hevm = Hevm::new(sliced(100_000), Env::default(), &b, Clock::new());

    let mut outcome = hevm.transact_sliced(&tx).unwrap();
    let mut segments = 1u32;
    let result = loop {
        match outcome {
            SliceOutcome::Done(result) => break result,
            SliceOutcome::Preempted { segment } => {
                assert_eq!(segment, segments, "segments count up from 1");
                segments += 1;
                outcome = hevm.continue_transact().unwrap();
            }
        }
    };
    assert!(result.success);
    // ~1M gas over 100k slices: many yields, not one lucky finish.
    assert!(segments >= 5, "only {segments} segments for a 1M-gas burner");
}

#[test]
fn suspend_resume_produces_byte_identical_receipt() {
    let b = backend(burner(40_000));
    let tx = burner_tx();

    let mut plain = Hevm::new(HevmConfig::default(), Env::default(), &b, Clock::new());
    let expected = plain.transact(&tx).unwrap();

    // Drive through suspend/resume at *every* slice boundary — the
    // harshest schedule — and require the identical receipt.
    let config = sliced(100_000);
    let clock = Clock::new();
    let mut hevm = Hevm::new(config.clone(), Env::default(), &b, clock.clone());
    let mut outcome = hevm.transact_sliced(&tx).unwrap();
    let mut suspensions = 0u32;
    let actual = loop {
        match outcome {
            SliceOutcome::Done(result) => break result,
            SliceOutcome::Preempted { .. } => {
                let (reader, checkpoint) = hevm.suspend();
                assert!(checkpoint.remaining_gas() > 0);
                suspensions += 1;
                hevm = Hevm::resume(
                    config.clone(),
                    Env::default(),
                    reader,
                    clock.clone(),
                    checkpoint,
                );
                outcome = hevm.continue_transact().unwrap();
            }
        }
    };
    assert!(suspensions >= 5, "only {suspensions} suspensions");
    assert_eq!(expected, actual);
}

#[test]
fn suspend_resume_with_deep_spilled_stack() {
    // A recursive memory hog over a tiny layer 2: the checkpoint must
    // carry frames that are *already* sealed in layer 3 alongside the
    // resident ones, and the sealed store must survive the hop.
    let b = backend(memory_hog(2));
    let mut tx = Transaction::call(sender(), contract(), vec![]);
    tx.gas_limit = 8_000_000;

    let mut plain = Hevm::new(tiny_layer2(None), Env::default(), &b, Clock::new());
    let expected = plain.transact(&tx).unwrap();

    let config = tiny_layer2(Some(50_000));
    let clock = Clock::new();
    let mut hevm = Hevm::new(config.clone(), Env::default(), &b, clock.clone());
    let mut outcome = hevm.transact_sliced(&tx).unwrap();
    let mut suspensions = 0u32;
    let actual = loop {
        match outcome {
            SliceOutcome::Done(result) => break result,
            SliceOutcome::Preempted { .. } => {
                let (reader, checkpoint) = hevm.suspend();
                suspensions += 1;
                hevm = Hevm::resume(
                    config.clone(),
                    Env::default(),
                    reader,
                    clock.clone(),
                    checkpoint,
                );
                outcome = hevm.continue_transact().unwrap();
            }
        }
    };
    assert!(suspensions >= 1, "hog never preempted");
    assert_eq!(expected, actual);
    assert!(hevm.stats().max_depth > 3);
}

#[test]
fn checkpoint_cover_seals_resident_frames() {
    let b = backend(burner(40_000));
    let tx = burner_tx();
    let mut hevm = Hevm::new(sliced(100_000), Env::default(), &b, Clock::new());

    let outcome = hevm.transact_sliced(&tx).unwrap();
    assert!(matches!(outcome, SliceOutcome::Preempted { .. }));
    let swaps_before = hevm.swap_log().len();
    let (_, mut checkpoint) = hevm.suspend();

    // The single resident frame was sealed out: one cover swap.
    assert_eq!(checkpoint.suspended_frames(), 1);
    assert_eq!(checkpoint.covered_frames(), 1);
    let log = checkpoint.take_swap_log();
    assert_eq!(log.len(), swaps_before + 1, "suspension must emit cover swaps");
    let boundary = log.last().unwrap();
    assert!(boundary.pages_out > 0 && boundary.true_pages_out > 0);
    // Noised like any ordinary spill: observed ≥ true.
    assert!(boundary.pages_out >= boundary.true_pages_out);
}

#[test]
fn checkpoint_cover_ablation_emits_no_swap_traffic() {
    let config = HevmConfig { checkpoint_cover: false, ..sliced(100_000) };
    let b = backend(burner(40_000));
    let tx = burner_tx();
    let mut hevm = Hevm::new(config, Env::default(), &b, Clock::new());

    let outcome = hevm.transact_sliced(&tx).unwrap();
    assert!(matches!(outcome, SliceOutcome::Preempted { .. }));
    let swaps_before = hevm.swap_log().len();
    let (_, mut checkpoint) = hevm.suspend();

    // Negative control: frames held in-enclave, zero bus events — the
    // adversary sees a silent gap the audit lens must flag. The
    // checkpoint still *advertises* the frame it owed cover for.
    assert_eq!(checkpoint.suspended_frames(), 1);
    assert_eq!(checkpoint.covered_frames(), 0);
    assert_eq!(checkpoint.take_swap_log().len(), swaps_before);
}

#[test]
fn watchdog_demoted_to_per_segment_backstop() {
    // A budget shorter than the whole burner but longer than any one
    // segment: un-sliced execution trips it, sliced execution does not —
    // the watchdog now catches stuck *segments*, not long transactions.
    let watchdog = Some(3_000_000);
    let b = backend(burner(40_000));
    let tx = burner_tx();

    let unsliced = HevmConfig { watchdog_ns: watchdog, ..HevmConfig::default() };
    let mut hevm = Hevm::new(unsliced, Env::default(), &b, Clock::new());
    assert!(matches!(hevm.transact(&tx), Err(HevmAbort::Watchdog { .. })));

    let segmented = HevmConfig { watchdog_ns: watchdog, ..sliced(100_000) };
    let mut hevm = Hevm::new(segmented, Env::default(), &b, Clock::new());
    let result = hevm.transact(&tx).unwrap();
    assert!(result.success);
}

#[test]
fn preempted_overlay_discard_is_clean() {
    // Dropping a preempted engine (shed bundle) must leave the backend
    // untouched — the journal overlay simply evaporates.
    let b = backend(burner(40_000));
    let tx = burner_tx();
    let mut hevm = Hevm::new(sliced(100_000), Env::default(), &b, Clock::new());
    let outcome = hevm.transact_sliced(&tx).unwrap();
    assert!(matches!(outcome, SliceOutcome::Preempted { .. }));
    drop(hevm);

    use tape_state::StateReader;
    assert_eq!(b.storage(&contract(), &U256::ONE), U256::ZERO);
}
