//! §VI-B correctness: the HEVM engine must produce the *identical*
//! structured trace (PC, opcode, gas, stack, depth per step) and the
//! identical transaction result as the reference engine for every
//! workload. This mirrors the paper's comparison against
//! `debug_traceTransaction` ground truth.

use tape_evm::asm::Asm;
use tape_evm::opcode::op;
use tape_evm::{Env, Evm, StructTracer, Transaction};
use tape_hevm::{Hevm, HevmConfig};
use tape_primitives::{Address, U256};
use tape_sim::Clock;
use tape_state::{Account, InMemoryState};

fn sender() -> Address {
    Address::from_low_u64(0xAA)
}

fn main_contract() -> Address {
    Address::from_low_u64(0xC0DE)
}

fn aux_contract() -> Address {
    Address::from_low_u64(0xCA11)
}

fn backend(main_code: Vec<u8>, aux_code: Vec<u8>) -> InMemoryState {
    let mut b = InMemoryState::new();
    b.put_account(sender(), Account::with_balance(U256::from(u64::MAX)));
    let mut main = Account::with_code(main_code);
    main.balance = U256::from(1_000_000u64);
    b.put_account(main_contract(), main);
    if !aux_code.is_empty() {
        b.put_account(aux_contract(), Account::with_code(aux_code));
    }
    b
}

/// Runs a transaction on both engines and asserts identical traces and
/// results.
fn assert_equivalent(backend: &InMemoryState, tx: &Transaction, label: &str) {
    let mut reference = Evm::with_inspector(Env::default(), backend, StructTracer::new());
    let ref_result = reference.transact(tx).expect("reference accepts tx");
    let ref_changes = reference.state().changes();
    let ref_trace = reference.into_inspector();

    let mut hevm = Hevm::with_inspector(
        HevmConfig::default(),
        Env::default(),
        backend,
        Clock::new(),
        StructTracer::new(),
    );
    let hevm_result = hevm.transact(tx).expect("hevm accepts tx");
    let hevm_changes = hevm.state().changes();
    let hevm_trace = hevm.into_inspector();

    if let Some(step) = ref_trace.first_divergence(&hevm_trace) {
        let r = ref_trace.steps().get(step);
        let h = hevm_trace.steps().get(step);
        panic!("{label}: trace diverges at step {step}:\n  reference: {r:?}\n  hevm:      {h:?}");
    }
    assert_eq!(ref_trace.digest(), hevm_trace.digest(), "{label}: digest");
    assert_eq!(ref_result, hevm_result, "{label}: tx result");
    assert_eq!(ref_changes, hevm_changes, "{label}: state changes");
}

fn call_tx(data: Vec<u8>) -> Transaction {
    Transaction::call(sender(), main_contract(), data)
}

#[test]
fn arithmetic_program() {
    let code = Asm::new()
        .push(7u64)
        .push(13u64)
        .op(op::MUL)
        .push(5u64)
        .op(op::SWAP1)
        .op(op::MOD)
        .push(100u64)
        .op(op::ADD)
        .push(3u64)
        .push(2u64)
        .op(op::ADDMOD)
        .push(2u64)
        .op(op::EXP)
        .ret_top()
        .build();
    assert_equivalent(&backend(code, vec![]), &call_tx(vec![]), "arithmetic");
}

#[test]
fn signed_and_bitwise_program() {
    let code = Asm::new()
        .push(10u64)
        .op(op::PUSH0)
        .op(op::SUB) // -10
        .push(3u64)
        .op(op::SWAP1)
        .op(op::SDIV)
        .push(0xF0u64)
        .op(op::AND)
        .push(2u64)
        .op(op::SAR)
        .op(op::NOT)
        .push(1u64)
        .op(op::SIGNEXTEND)
        .ret_top()
        .build();
    assert_equivalent(&backend(code, vec![]), &call_tx(vec![]), "signed/bitwise");
}

#[test]
fn memory_and_keccak_program() {
    let code = Asm::new()
        .push(0xDEADu64)
        .push(64u64)
        .op(op::MSTORE)
        .push(96u64)
        .push(0u64)
        .op(op::KECCAK256)
        .push(128u64)
        .op(op::MSTORE8)
        .op(op::MSIZE)
        .push(32u64) // len
        .push(0u64) // src
        .push(200u64) // dst
        .op(op::MCOPY)
        .ret_top()
        .build();
    assert_equivalent(&backend(code, vec![]), &call_tx(vec![]), "memory/keccak");
}

#[test]
fn calldata_program() {
    let code = Asm::new()
        .push(0u64)
        .op(op::CALLDATALOAD)
        .op(op::CALLDATASIZE)
        .op(op::ADD)
        .push(16u64) // len
        .push(2u64) // src
        .push(0u64) // dst
        .op(op::CALLDATACOPY)
        .push(0u64)
        .op(op::MLOAD)
        .op(op::ADD)
        .ret_top()
        .build();
    assert_equivalent(
        &backend(code, vec![]),
        &call_tx((0u8..40).collect()),
        "calldata",
    );
}

#[test]
fn storage_program() {
    let mut b = backend(
        Asm::new()
            .push(5u64)
            .op(op::SLOAD) // cold, pre-set
            .push(1u64)
            .op(op::ADD)
            .push(5u64)
            .op(op::SSTORE) // warm reset
            .push(0xAAu64)
            .push(77u64)
            .op(op::SSTORE) // cold set
            .push(0u64)
            .push(77u64)
            .op(op::SSTORE) // warm clear (refund)
            .push(5u64)
            .op(op::SLOAD)
            .ret_top()
            .build(),
        vec![],
    );
    b.set_storage(main_contract(), U256::from(5u64), U256::from(41u64));
    assert_equivalent(&b, &call_tx(vec![]), "storage");
}

#[test]
fn transient_storage_program() {
    let code = Asm::new()
        .push(0x11u64)
        .push(9u64)
        .op(op::TSTORE)
        .push(9u64)
        .op(op::TLOAD)
        .push(8u64)
        .op(op::TLOAD)
        .op(op::ADD)
        .ret_top()
        .build();
    assert_equivalent(&backend(code, vec![]), &call_tx(vec![]), "transient");
}

#[test]
fn environment_program() {
    let code = Asm::new()
        .op(op::ADDRESS)
        .op(op::ORIGIN)
        .op(op::CALLER)
        .op(op::CALLVALUE)
        .op(op::GASPRICE)
        .op(op::COINBASE)
        .op(op::TIMESTAMP)
        .op(op::NUMBER)
        .op(op::PREVRANDAO)
        .op(op::GASLIMIT)
        .op(op::CHAINID)
        .op(op::SELFBALANCE)
        .op(op::BASEFEE)
        .op(op::CODESIZE)
        .op(op::PC)
        .op(op::GAS)
        .op(op::MSIZE)
        .push(100u64)
        .op(op::BLOCKHASH)
        .op(op::XOR)
        .ret_top()
        .build();
    assert_equivalent(&backend(code, vec![]), &call_tx(vec![]), "environment");
}

#[test]
fn balance_and_extcode_program() {
    let aux = Asm::new().push(1u64).ret_top().build();
    let code = Asm::new()
        .push_address(aux_contract())
        .op(op::BALANCE)
        .push_address(aux_contract())
        .op(op::EXTCODESIZE)
        .op(op::ADD)
        .push_address(aux_contract())
        .op(op::EXTCODEHASH)
        .op(op::XOR)
        .push(8u64) // len
        .push(0u64) // src
        .push(0u64) // dst
        .push_address(aux_contract())
        .op(op::EXTCODECOPY)
        .push(0u64)
        .op(op::MLOAD)
        .op(op::ADD)
        .ret_top()
        .build();
    assert_equivalent(&backend(code, aux), &call_tx(vec![]), "balance/extcode");
}

#[test]
fn control_flow_loop_program() {
    // Sum 1..=20 with a JUMPI loop.
    let code = Asm::new()
        .push(0u64)
        .push(20u64)
        .label("loop")
        .op(op::DUP1)
        .jumpi("body")
        .jump("done")
        .label("body")
        .op(op::DUP1)
        .op(op::SWAP2)
        .op(op::ADD)
        .op(op::SWAP1)
        .push(1u64)
        .op(op::SWAP1)
        .op(op::SUB)
        .jump("loop")
        .label("done")
        .op(op::POP)
        .ret_top()
        .build();
    assert_equivalent(&backend(code, vec![]), &call_tx(vec![]), "loop");
}

#[test]
fn logs_program() {
    let code = Asm::new()
        .push(0xFEEDu64)
        .push(0u64)
        .op(op::MSTORE)
        .push(1u64)
        .push(2u64)
        .push(3u64)
        .push(4u64)
        .push(32u64)
        .push(0u64)
        .op(op::LOG4)
        .push(0u64)
        .push(0u64)
        .op(op::LOG0)
        .stop()
        .build();
    assert_equivalent(&backend(code, vec![]), &call_tx(vec![]), "logs");
}

#[test]
fn nested_call_program() {
    let aux = Asm::new()
        .push(0u64)
        .op(op::CALLDATALOAD)
        .push(2u64)
        .op(op::MUL)
        .ret_top()
        .build();
    let code = Asm::new()
        .push(21u64)
        .push(0u64)
        .op(op::MSTORE)
        .push(32u64) // out len
        .push(32u64) // out offset
        .push(32u64) // in len
        .push(0u64) // in offset
        .push(0u64) // value
        .push_address(aux_contract())
        .push(100_000u64)
        .op(op::CALL)
        .op(op::POP)
        .op(op::RETURNDATASIZE)
        .push(32u64)
        .op(op::MLOAD)
        .op(op::ADD)
        .ret_top()
        .build();
    assert_equivalent(&backend(code, aux), &call_tx(vec![]), "nested call");
}

#[test]
fn delegatecall_and_staticcall_program() {
    let aux = Asm::new().push(0x55u64).push(3u64).op(op::SSTORE).stop().build();
    let code = Asm::new()
        .push(0u64)
        .push(0u64)
        .push(0u64)
        .push(0u64)
        .push_address(aux_contract())
        .push(100_000u64)
        .op(op::DELEGATECALL)
        .push(0u64)
        .push(0u64)
        .push(0u64)
        .push(0u64)
        .push_address(aux_contract())
        .push(100_000u64)
        .op(op::STATICCALL) // fails: SSTORE in static context
        .op(op::ADD)
        .ret_top()
        .build();
    assert_equivalent(&backend(code, aux), &call_tx(vec![]), "delegate/static");
}

#[test]
fn value_call_and_revert_program() {
    let aux = Asm::new()
        .push(0xBAD_u64)
        .push(0u64)
        .op(op::MSTORE)
        .push(32u64)
        .push(0u64)
        .op(op::REVERT)
        .build();
    let code = Asm::new()
        .push(0u64)
        .push(0u64)
        .push(0u64)
        .push(0u64)
        .push(500u64) // value
        .push_address(aux_contract())
        .push(100_000u64)
        .op(op::CALL)
        .op(op::RETURNDATASIZE)
        .op(op::ADD)
        .ret_top()
        .build();
    assert_equivalent(&backend(code, aux), &call_tx(vec![]), "value call revert");
}

#[test]
fn create_and_create2_program() {
    // Factory deploys a one-byte STOP contract twice (CREATE + CREATE2).
    let initcode = Asm::deploy_wrapper(&[op::STOP]);
    let mut asm = Asm::new();
    for (i, &b) in initcode.iter().enumerate() {
        asm = asm.push(b as u64).push(i as u64).op(op::MSTORE8);
    }
    let code = asm
        .push(initcode.len() as u64)
        .push(0u64)
        .push(0u64)
        .op(op::CREATE)
        .push(0x5A17u64)
        .push(initcode.len() as u64)
        .push(0u64)
        .push(0u64)
        .op(op::CREATE2)
        .op(op::XOR)
        .ret_top()
        .build();
    assert_equivalent(&backend(code, vec![]), &call_tx(vec![]), "create family");
}

#[test]
fn create_transaction() {
    let runtime = Asm::new().push(0x33u64).ret_top().build();
    let initcode = Asm::deploy_wrapper(&runtime);
    let b = backend(vec![], vec![]);
    let tx = Transaction::create(sender(), initcode);
    assert_equivalent(&b, &tx, "create tx");
}

#[test]
fn halting_programs() {
    for (label, code) in [
        ("invalid opcode", vec![op::INVALID]),
        ("undefined opcode", vec![0x0c]),
        ("stack underflow", vec![op::ADD]),
        ("bad jump", Asm::new().push(1u64).op(op::JUMP).build()),
        (
            "returndata oob",
            Asm::new()
                .push(1u64)
                .push(0u64)
                .push(0u64)
                .op(op::RETURNDATACOPY)
                .build(),
        ),
        ("revert", Asm::new().push(0u64).push(0u64).op(op::REVERT).build()),
        ("implicit stop", Asm::new().push(1u64).build()),
    ] {
        assert_equivalent(&backend(code, vec![]), &call_tx(vec![]), label);
    }
}

#[test]
fn out_of_gas_program() {
    let code = Asm::new().label("spin").jump("spin").build();
    let mut tx = call_tx(vec![]);
    tx.gas_limit = 60_000;
    assert_equivalent(&backend(code, vec![]), &tx, "out of gas");
}

#[test]
fn selfdestruct_program() {
    let code = Asm::new()
        .push_address(Address::from_low_u64(0xDEAD))
        .op(op::SELFDESTRUCT)
        .build();
    assert_equivalent(&backend(code, vec![]), &call_tx(vec![]), "selfdestruct");
}

#[test]
fn precompile_calls_program() {
    let code = Asm::new()
        .push(0xABCDu64)
        .push(0u64)
        .op(op::MSTORE)
        // sha256 over the word
        .push(32u64)
        .push(32u64)
        .push(32u64)
        .push(0u64)
        .push(0u64)
        .push_address(Address::from_low_u64(2))
        .push(10_000u64)
        .op(op::CALL)
        // identity copy
        .push(32u64)
        .push(64u64)
        .push(32u64)
        .push(32u64)
        .push(0u64)
        .push_address(Address::from_low_u64(4))
        .push(10_000u64)
        .op(op::CALL)
        .op(op::ADD)
        .push(64u64)
        .op(op::MLOAD)
        .op(op::ADD)
        .ret_top()
        .build();
    assert_equivalent(&backend(code, vec![]), &call_tx(vec![]), "precompiles");
}

#[test]
fn plain_transfers() {
    let b = backend(vec![], vec![]);
    let tx = Transaction::transfer(sender(), Address::from_low_u64(0xB0B), U256::from(7u64));
    assert_equivalent(&b, &tx, "plain transfer");
    // Transfer to a contract with code executes it identically.
    let code = Asm::new().op(op::CALLVALUE).ret_top().build();
    let b = backend(code, vec![]);
    let mut tx = call_tx(vec![]);
    tx.value = U256::from(123u64);
    assert_equivalent(&b, &tx, "value call");
}

#[test]
fn deep_recursion_program() {
    // Self-call until gas runs down — exercises deep explicit stacks in
    // both engines.
    let code = Asm::new()
        .push(0u64)
        .push(0u64)
        .push(0u64)
        .push(0u64)
        .push(0u64)
        .push_address(main_contract())
        .op(op::GAS)
        .op(op::CALL)
        .ret_top()
        .build();
    let b = backend(code, vec![]);
    let mut tx = call_tx(vec![]);
    tx.gas_limit = 3_000_000;
    assert_equivalent(&b, &tx, "deep recursion");
}

#[test]
fn access_list_transaction() {
    let code = Asm::new()
        .push(5u64)
        .op(op::SLOAD)
        .push_address(aux_contract())
        .op(op::BALANCE)
        .op(op::ADD)
        .ret_top()
        .build();
    let b = backend(code, Asm::new().stop().build());
    let mut tx = call_tx(vec![]);
    tx.access_list = vec![
        (main_contract(), vec![U256::from(5u64)]),
        (aux_contract(), vec![]),
    ];
    assert_equivalent(&b, &tx, "access list");
}

#[test]
fn bundle_of_sequential_transactions_match() {
    // Run a 3-tx bundle on both engines, comparing cumulative state.
    let code = Asm::new()
        .push(1u64)
        .op(op::SLOAD)
        .push(1u64)
        .op(op::ADD)
        .push(1u64)
        .op(op::SSTORE)
        .push(1u64)
        .op(op::SLOAD)
        .ret_top()
        .build();
    let b = backend(code, vec![]);

    let mut reference = Evm::new(Env::default(), &b);
    let mut hevm = Hevm::new(HevmConfig::default(), Env::default(), &b, Clock::new());
    for i in 0..3u64 {
        let tx = call_tx(vec![]);
        let r = reference.transact(&tx).unwrap();
        let h = hevm.transact(&tx).unwrap();
        assert_eq!(r, h, "bundle tx {i}");
        assert_eq!(U256::from_be_slice(&r.output), U256::from(i + 1));
    }
    assert_eq!(reference.state().changes(), hevm.state().changes());
}
