//! Layer-2 call-stack paging and layer-3 untrusted memory (paper §IV-B).
//!
//! Layer 2 is a ring of 1 KB pages holding execution frames. When a new
//! frame does not fit, bottom pages are dumped to layer 3 — AES-GCM
//! protected (threat A4) and with random pre-evict/pre-load noise added
//! to the observable swap sizes (threat A5). Reloading verifies the
//! authentication tag and a strictly monotonic version to stop replays.

use tape_crypto::{AesGcm, SecureRng};
use tape_sim::fault::{FaultKind, FaultPlan, FaultSite};
use tape_sim::{Clock, CostModel, Nanos};

/// A swap event as *observed by the adversary* (sizes include noise),
/// plus the true sizes so the leakage auditor can verify the noise
/// actually covered them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapEvent {
    /// Virtual time of the swap.
    pub at: Nanos,
    /// Pages written to layer 3 (true + noise).
    pub pages_out: usize,
    /// Pages read back from layer 3 (true + noise).
    pub pages_in: usize,
    /// Pages actually written (no noise) — invisible to the adversary.
    pub true_pages_out: usize,
    /// Pages actually read back (no noise) — invisible to the adversary.
    pub true_pages_in: usize,
}

/// Error produced when layer-3 contents fail authentication (A4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layer3Tampered;

impl core::fmt::Display for Layer3Tampered {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "layer-3 page failed authentication")
    }
}

impl std::error::Error for Layer3Tampered {}

/// The untrusted layer-3 page store plus the pager that protects it.
pub struct Layer3Pager {
    cipher: AesGcm,
    rng: SecureRng,
    /// Sealed frames, keyed by a sequence id kept on-chip.
    store: Vec<Vec<u8>>,
    swap_log: Vec<SwapEvent>,
    nonce_counter: u64,
    /// Maximum extra pages of noise per swap.
    max_noise: usize,
    page_size: usize,
    /// When armed, stored ciphertexts are corrupted per the plan's
    /// schedule — the untrusted memory acting as the adversary.
    faults: Option<FaultPlan>,
}

impl core::fmt::Debug for Layer3Pager {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Layer3Pager")
            .field("stored_frames", &self.store.len())
            .field("swaps", &self.swap_log.len())
            .finish()
    }
}

/// Handle to a frame swapped out to layer 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwappedFrame {
    pub(crate) index: usize,
    /// True page count (kept on-chip; the adversary sees noisy sizes).
    pub pages: usize,
}

impl Layer3Pager {
    /// Creates a pager sealing pages under `key`.
    pub fn new(key: &[u8; 16], rng: SecureRng, page_size: usize, max_noise: usize) -> Self {
        Layer3Pager {
            cipher: AesGcm::new(key),
            rng,
            store: Vec::new(),
            swap_log: Vec::new(),
            nonce_counter: 0,
            max_noise,
            page_size,
            faults: None,
        }
    }

    /// Makes the layer-3 store adversarial: after every swap-out the
    /// plan may corrupt the stored ciphertext ([`FaultSite::PageStore`]
    /// with [`FaultKind::BitFlip`] / [`FaultKind::Truncate`] /
    /// [`FaultKind::Replay`]); the tamper surfaces as
    /// [`Layer3Tampered`] on the later swap-in.
    pub fn arm_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// Seals a serialized frame out to untrusted memory, logging a
    /// noisy swap size. Returns the on-chip handle.
    pub fn swap_out(
        &mut self,
        frame_bytes: &[u8],
        clock: &Clock,
        cost: &CostModel,
    ) -> SwappedFrame {
        let pages = frame_bytes.len().div_ceil(self.page_size).max(1);
        self.nonce_counter += 1;
        let mut nonce = [0u8; 12];
        nonce[4..].copy_from_slice(&self.nonce_counter.to_be_bytes());
        let aad = (self.store.len() as u64).to_be_bytes();
        let sealed = {
            let mut out = nonce.to_vec();
            out.extend(self.cipher.seal(&nonce, &aad, frame_bytes));
            out
        };
        let index = self.store.len();
        self.store.push(sealed);

        if let Some(plan) = &self.faults {
            if let Some(decision) = plan.decide_for(
                FaultSite::PageStore,
                &[FaultKind::BitFlip, FaultKind::Truncate, FaultKind::Replay],
            ) {
                match decision.kind {
                    FaultKind::BitFlip => {
                        let sealed = &mut self.store[index];
                        let byte = (decision.param % sealed.len() as u64) as usize;
                        sealed[byte] ^= 1 << ((decision.param >> 16) % 8);
                    }
                    FaultKind::Truncate => {
                        let sealed = &mut self.store[index];
                        let keep = (decision.param % 12) as usize;
                        sealed.truncate(keep);
                    }
                    // Replay: overwrite this slot with an earlier
                    // ciphertext (stale-page replay); the slot-index AAD
                    // makes the GCM open fail.
                    _ => {
                        if index > 0 {
                            let from = (decision.param % index as u64) as usize;
                            self.store[index] = self.store[from].clone();
                        } else {
                            // No earlier frame to replay; flip a bit
                            // instead so the armed fault still lands.
                            let sealed = &mut self.store[index];
                            let byte = (decision.param % sealed.len() as u64) as usize;
                            sealed[byte] ^= 0x01;
                        }
                    }
                }
            }
        }

        // Pre-evict noise: dump extra dummy pages.
        let noise = self.rng.next_below(self.max_noise as u64 + 1) as usize;
        let observed = pages + noise;
        clock.advance(cost.layer3_swap_page_ns * observed as u64);
        self.swap_log.push(SwapEvent {
            at: clock.now(),
            pages_out: observed,
            pages_in: 0,
            true_pages_out: pages,
            true_pages_in: 0,
        });
        SwappedFrame { index, pages }
    }

    /// Reloads and verifies a sealed frame, logging a noisy swap size.
    ///
    /// # Errors
    ///
    /// [`Layer3Tampered`] if the ciphertext fails authentication (bit
    /// flips, swapped slots, replays).
    pub fn swap_in(
        &mut self,
        handle: SwappedFrame,
        clock: &Clock,
        cost: &CostModel,
    ) -> Result<Vec<u8>, Layer3Tampered> {
        let sealed = self.store.get(handle.index).ok_or(Layer3Tampered)?;
        if sealed.len() < 12 {
            return Err(Layer3Tampered);
        }
        let nonce: [u8; 12] = sealed[..12].try_into().expect("length checked");
        let aad = (handle.index as u64).to_be_bytes();
        let bytes = self
            .cipher
            .open(&nonce, &aad, &sealed[12..])
            .map_err(|_| Layer3Tampered)?;

        let noise = self.rng.next_below(self.max_noise as u64 + 1) as usize;
        let observed = handle.pages + noise;
        clock.advance(cost.layer3_swap_page_ns * observed as u64);
        self.swap_log.push(SwapEvent {
            at: clock.now(),
            pages_out: 0,
            pages_in: observed,
            true_pages_out: 0,
            true_pages_in: handle.pages,
        });
        Ok(bytes)
    }

    /// The adversary's view of every swap.
    pub fn swap_log(&self) -> &[SwapEvent] {
        &self.swap_log
    }

    /// Drains the swap log, handing ownership of the recorded events to
    /// the caller. The segmented service flushes per segment — the
    /// pager (and therefore the log) survives inside a checkpoint, so
    /// without draining, a resumed bundle would re-report its history.
    pub fn take_swap_log(&mut self) -> Vec<SwapEvent> {
        std::mem::take(&mut self.swap_log)
    }

    /// Test hook: corrupts a stored ciphertext (simulates attack A4).
    pub fn tamper(&mut self, index: usize) {
        if let Some(sealed) = self.store.get_mut(index) {
            if let Some(last) = sealed.last_mut() {
                *last ^= 0xFF;
            }
        }
    }

    /// Test hook: replays an old ciphertext into another slot.
    pub fn replay(&mut self, from: usize, to: usize) {
        if from < self.store.len() && to < self.store.len() {
            let copy = self.store[from].clone();
            self.store[to] = copy;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pager() -> (Layer3Pager, Clock, CostModel) {
        (
            Layer3Pager::new(&[9u8; 16], SecureRng::from_seed(b"pager"), 1024, 4),
            Clock::new(),
            CostModel::default(),
        )
    }

    #[test]
    fn roundtrip() {
        let (mut p, clock, cost) = pager();
        let frame = vec![7u8; 3000];
        let handle = p.swap_out(&frame, &clock, &cost);
        assert_eq!(handle.pages, 3);
        assert_eq!(p.swap_in(handle, &clock, &cost).unwrap(), frame);
    }

    #[test]
    fn tamper_detected() {
        let (mut p, clock, cost) = pager();
        let handle = p.swap_out(&[1, 2, 3], &clock, &cost);
        p.tamper(handle.index);
        assert_eq!(p.swap_in(handle, &clock, &cost), Err(Layer3Tampered));
    }

    #[test]
    fn replay_detected() {
        let (mut p, clock, cost) = pager();
        let h0 = p.swap_out(&[0xAA; 100], &clock, &cost);
        let h1 = p.swap_out(&[0xBB; 100], &clock, &cost);
        // Adversary replaces frame 1's ciphertext with frame 0's.
        p.replay(h0.index, h1.index);
        // The AAD binds the slot index, so the replay fails to open.
        assert_eq!(p.swap_in(h1, &clock, &cost), Err(Layer3Tampered));
    }

    #[test]
    fn swap_sizes_are_noised() {
        let (mut p, clock, cost) = pager();
        // Swap the same 2-page frame repeatedly; observed sizes must vary
        // (noise) and never be below the true size.
        let mut observed = Vec::new();
        for _ in 0..40 {
            let h = p.swap_out(&vec![1u8; 2048], &clock, &cost);
            observed.push(p.swap_log().last().unwrap().pages_out);
            p.swap_in(h, &clock, &cost).unwrap();
        }
        assert!(observed.iter().all(|&o| o >= 2));
        assert!(observed.iter().any(|&o| o > 2), "no noise ever added");
        let distinct: std::collections::HashSet<_> = observed.iter().collect();
        assert!(distinct.len() > 1, "swap sizes constant: {observed:?}");
    }

    #[test]
    fn swap_advances_clock() {
        let (mut p, clock, cost) = pager();
        let h = p.swap_out(&[1u8; 1024], &clock, &cost);
        let after_out = clock.now();
        assert!(after_out >= cost.layer3_swap_page_ns);
        p.swap_in(h, &clock, &cost).unwrap();
        assert!(clock.now() > after_out);
    }
}
