//! # tape-hevm
//!
//! The hardware EVM emulator: the paper's four-stage pipelined HEVM
//! (§IV-B), reproduced as a second, independently organized EVM engine
//! over an explicit 3-layer memory hierarchy:
//!
//! * **Layer 1** — per-partition caches for Code / Input / Memory /
//!   ReturnData / world state / the full runtime stack, with miss
//!   accounting ([`MemLike`]).
//! * **Layer 2** — the explicit execution-frame vector, paged in 1 KB
//!   units inside a 1 MB ring; a single frame exceeding half the ring is
//!   stopped with a *Memory Overflow Error* ([`HevmAbort`]).
//! * **Layer 3** — untrusted memory: spilled frames are AES-GCM sealed
//!   and their observable swap sizes carry random pre-evict/pre-load
//!   noise ([`Layer3Pager`], [`SwapEvent`]).
//!
//! Every retired instruction advances the shared virtual clock by its
//! pipeline cost, making the engine the timing source for Figures 4/5.
//! Trace-for-trace equivalence with the reference engine (`tape-evm`) is
//! enforced by the §VI-B differential tests.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod layers;
mod memlike;

pub use engine::{Checkpoint, Hevm, HevmAbort, HevmConfig, HevmStats, SliceOutcome};
pub use layers::{Layer3Pager, Layer3Tampered, SwapEvent, SwappedFrame};
pub use memlike::MemLike;
