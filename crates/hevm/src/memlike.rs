//! The HEVM's memory-likes: Code, Input, Memory, ReturnData (paper
//! Fig. 2), with per-partition layer-1 cache accounting.
//!
//! Each memory-like tracks its byte contents plus how many 1 KB pages it
//! occupies in the execution frame; accesses beyond the layer-1 cache
//! partition are layer-2 hits and charged a miss penalty by the engine.

use tape_primitives::U256;

/// A byte-addressed, unaligned-access, volatile memory-like.
#[derive(Debug, Clone, Default)]
pub struct MemLike {
    data: Vec<u8>,
    /// Layer-1 cache partition size for this memory-like.
    cache_size: usize,
    /// Accesses that fell beyond the cache partition (layer-2 hits).
    l1_misses: u64,
}

impl MemLike {
    /// An empty memory-like with the given L1 partition size.
    pub fn new(cache_size: usize) -> Self {
        MemLike { data: Vec::new(), cache_size, l1_misses: 0 }
    }

    /// A memory-like pre-filled with `data` (Code and Input).
    pub fn with_data(data: Vec<u8>, cache_size: usize) -> Self {
        MemLike { data, cache_size, l1_misses: 0 }
    }

    /// Current length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Pages (1 KB) occupied in the execution frame.
    pub fn pages(&self, page_size: usize) -> usize {
        self.data.len().div_ceil(page_size)
    }

    /// Layer-1 misses recorded so far.
    pub fn l1_misses(&self) -> u64 {
        self.l1_misses
    }

    /// Raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Consumes into the raw bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.data
    }

    #[inline]
    fn note_access(&mut self, offset: usize, len: usize) {
        if offset.saturating_add(len) > self.cache_size {
            self.l1_misses += 1;
        }
    }

    /// Expands to cover `offset..offset+len` (32-byte word aligned), like
    /// the reference memory.
    pub fn expand(&mut self, offset: usize, len: usize) {
        if len == 0 {
            return;
        }
        let end = offset.saturating_add(len).div_ceil(32) * 32;
        if end > self.data.len() {
            self.data.resize(end, 0);
        }
    }

    /// Size after covering `offset..offset+len`, without mutating.
    pub fn required_size(&self, offset: usize, len: usize) -> usize {
        if len == 0 {
            return self.data.len();
        }
        (offset.saturating_add(len).div_ceil(32) * 32).max(self.data.len())
    }

    /// Reads a 32-byte word, expanding.
    pub fn load_word(&mut self, offset: usize) -> U256 {
        self.expand(offset, 32);
        self.note_access(offset, 32);
        let mut buf = [0u8; 32];
        buf.copy_from_slice(&self.data[offset..offset + 32]);
        U256::from_be_bytes(buf)
    }

    /// Writes a 32-byte word, expanding.
    pub fn store_word(&mut self, offset: usize, value: U256) {
        self.expand(offset, 32);
        self.note_access(offset, 32);
        self.data[offset..offset + 32].copy_from_slice(&value.to_be_bytes());
    }

    /// Writes one byte, expanding.
    pub fn store_byte(&mut self, offset: usize, value: u8) {
        self.expand(offset, 1);
        self.note_access(offset, 1);
        self.data[offset] = value;
    }

    /// Writes a slice, expanding.
    pub fn store_slice(&mut self, offset: usize, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        self.expand(offset, bytes.len());
        self.note_access(offset, bytes.len());
        self.data[offset..offset + bytes.len()].copy_from_slice(bytes);
    }

    /// Copy-in with zero padding past the source end.
    pub fn store_padded(&mut self, offset: usize, src: &[u8], src_offset: usize, len: usize) {
        if len == 0 {
            return;
        }
        self.expand(offset, len);
        self.note_access(offset, len);
        for i in 0..len {
            // checked_add: a sentinel src_offset of usize::MAX must read
            // as zero-padding, not wrap around to the buffer start.
            self.data[offset + i] = src_offset
                .checked_add(i)
                .and_then(|p| src.get(p))
                .copied()
                .unwrap_or(0);
        }
    }

    /// Reads `len` bytes, expanding.
    pub fn load_slice(&mut self, offset: usize, len: usize) -> Vec<u8> {
        if len == 0 {
            return Vec::new();
        }
        self.expand(offset, len);
        self.note_access(offset, len);
        self.data[offset..offset + len].to_vec()
    }

    /// Overlap-safe internal copy (MCOPY).
    pub fn copy_within(&mut self, dst: usize, src: usize, len: usize) {
        if len == 0 {
            return;
        }
        self.expand(dst.max(src), len);
        self.note_access(dst.max(src), len);
        self.data.copy_within(src..src + len, dst);
    }

    /// Reads a zero-padded byte at `offset` without expanding (code
    /// fetch).
    pub fn get(&self, offset: usize) -> Option<u8> {
        self.data.get(offset).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_and_word_ops_match_reference_semantics() {
        let mut m = MemLike::new(4096);
        m.store_word(5, U256::from(0xFFu64));
        assert_eq!(m.load_word(5), U256::from(0xFFu64));
        assert_eq!(m.len(), 64); // 37 -> aligned 64
        assert_eq!(m.pages(1024), 1);
    }

    #[test]
    fn l1_miss_counting() {
        let mut m = MemLike::new(64);
        m.store_word(0, U256::ONE); // within cache
        assert_eq!(m.l1_misses(), 0);
        m.store_word(100, U256::ONE); // beyond the 64-byte partition
        assert_eq!(m.l1_misses(), 1);
        m.load_word(100);
        assert_eq!(m.l1_misses(), 2);
    }

    #[test]
    fn padded_copy() {
        let mut m = MemLike::new(1024);
        m.store_padded(0, &[1, 2], 1, 4);
        assert_eq!(&m.as_bytes()[..4], &[2, 0, 0, 0]);
    }

    #[test]
    fn pages_accounting() {
        let mut m = MemLike::new(4096);
        assert_eq!(m.pages(1024), 0);
        m.expand(0, 1);
        assert_eq!(m.pages(1024), 1);
        m.expand(1024, 1);
        assert_eq!(m.pages(1024), 2);
    }

    #[test]
    fn zero_len_is_noop() {
        let mut m = MemLike::new(16);
        m.expand(1 << 40, 0);
        m.store_slice(1 << 40, &[]);
        assert_eq!(m.len(), 0);
        assert_eq!(m.l1_misses(), 0);
    }
}
