//! The HEVM engine: a second, independently organized EVM implementation
//! that executes bytecode directly over the 3-layer memory hierarchy
//! with a cycle-level timing model (paper §IV-B).
//!
//! Semantics are required to match `tape-evm` (the reference / "Geth")
//! bit-for-bit — §VI-B's correctness experiment diffs structured traces
//! between the two engines. Shared pieces are exactly what real hardware
//! would share with a software client: the ISA tables (`tape_evm::opcode`),
//! the consensus gas rules (`tape_evm::gas`), and 256-bit arithmetic
//! (`tape-primitives`). Dispatch, frame management, memory modeling, and
//! the call stack are implemented here from scratch — iteratively, on an
//! explicit frame vector that *is* the layer-2 call stack.

use crate::layers::{Layer3Pager, SwapEvent, SwappedFrame};
use crate::memlike::MemLike;
use std::sync::Arc;
use tape_crypto::SecureRng;
use tape_evm::gas::{self, Gas};
use tape_evm::opcode::{self, op, JumpTable};
use tape_evm::precompile;
use tape_evm::{
    create2_address, create_address, Env, FrameEnd, FrameStart, Inspector, NoopInspector, Stack,
    StateAccess, StepInfo, Transaction, TxError, TxResult, VmError,
};
use tape_primitives::{Address, B256, U256};
use tape_sim::resources::MemoryConfig;
use tape_sim::{Clock, CostModel, Nanos};
use tape_state::{Checkpoint as JournalMark, JournalSuspend, JournaledState, Log, StateReader};

/// HEVM configuration: memory partitioning and unit costs.
#[derive(Debug, Clone)]
pub struct HevmConfig {
    /// Layer-1/2 memory geometry (paper §IV-B defaults).
    pub mem: MemoryConfig,
    /// Calibrated unit costs.
    pub cost: CostModel,
    /// Charge `local_state_fetch_ns` for cold K-V state accesses
    /// (accounts, storage). Enabled when those queries are served from
    /// prefetched untrusted memory; ORAM-backed readers charge the clock
    /// themselves.
    pub charge_local_fetch: bool,
    /// Charge `local_state_fetch_ns` per code fetch served locally.
    /// Under `-ESO` the K-V queries go through the ORAM (which charges
    /// itself) while code stays local — this flag keeps code fetches
    /// accounted in that split configuration.
    pub charge_local_code: bool,
    /// AES-GCM key sealing layer-3 spills. Per the paper this is a
    /// session key; the service derives a fresh one per device from its
    /// secure RNG. The default is only for standalone/test use.
    pub layer3_key: [u8; 16],
    /// Seed for the pager's pre-evict/pre-load noise RNG.
    pub layer3_noise_seed: u64,
    /// Per-transaction virtual-time watchdog: if a single `transact`
    /// burns more than this many virtual nanoseconds, execution aborts
    /// with [`HevmAbort::Watchdog`] instead of spinning until the gas
    /// limit. `None` disables the watchdog.
    pub watchdog_ns: Option<tape_sim::Nanos>,
    /// Adversarial fault plan armed on the layer-3 page store
    /// (`FaultSite::PageStore`); `None` leaves the store honest.
    pub faults: Option<tape_sim::fault::FaultPlan>,
    /// Gas-slice budget for segmented execution: when set, a transaction
    /// driven through [`Hevm::transact_sliced`] yields
    /// ([`SliceOutcome::Preempted`]) after roughly this much gas has
    /// been executed in the current segment, instead of running to
    /// completion. `None` (the default) disables slicing entirely —
    /// [`Hevm::transact`] behaves exactly as before.
    pub gas_slice: Option<u64>,
    /// Checkpoint cover traffic: when `true` (default), a suspension
    /// seals every still-resident frame out through the layer-3 pager,
    /// so the segment boundary is observable only as ordinary noised
    /// swap traffic (§IV-D). `false` is the leakage auditor's negative
    /// control — frames are captured in-enclave, producing *no* swap
    /// events, which the segment-boundary audit lens must flag.
    pub checkpoint_cover: bool,
}

impl Default for HevmConfig {
    fn default() -> Self {
        HevmConfig {
            mem: MemoryConfig::default(),
            cost: CostModel::default(),
            charge_local_fetch: true,
            charge_local_code: true,
            layer3_key: [0x4C; 16],
            layer3_noise_seed: 0x4C4C,
            watchdog_ns: None,
            faults: None,
            gas_slice: None,
            checkpoint_cover: true,
        }
    }
}

/// A bundle-terminating failure (distinct from per-transaction reverts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HevmAbort {
    /// Transaction-level validation failed.
    Tx(TxError),
    /// One execution frame exceeded half the layer-2 capacity — treated
    /// as an attack and stopped (paper §IV-B).
    MemoryOverflow {
        /// Pages the offending frame wanted.
        frame_pages: usize,
        /// The configured limit in pages.
        limit_pages: usize,
    },
    /// Layer-3 contents failed authentication on reload (attack A4).
    Layer3Tampered,
    /// The per-transaction virtual-time watchdog fired: execution burned
    /// more than the configured budget without completing.
    Watchdog {
        /// The configured budget in virtual nanoseconds.
        budget_ns: tape_sim::Nanos,
    },
}

impl From<TxError> for HevmAbort {
    fn from(e: TxError) -> Self {
        HevmAbort::Tx(e)
    }
}

impl core::fmt::Display for HevmAbort {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HevmAbort::Tx(e) => write!(f, "transaction rejected: {e}"),
            HevmAbort::MemoryOverflow { frame_pages, limit_pages } => {
                write!(f, "Memory Overflow Error: frame needs {frame_pages} pages, limit {limit_pages}")
            }
            HevmAbort::Layer3Tampered => write!(f, "layer-3 memory failed authentication"),
            HevmAbort::Watchdog { budget_ns } => {
                write!(f, "watchdog fired: execution exceeded {budget_ns} virtual ns")
            }
        }
    }
}

impl std::error::Error for HevmAbort {}

/// Immutable (on-chip) frame metadata: base offsets and identities the
/// pager never exposes to untrusted memory.
#[derive(Clone)]
struct FrameMeta {
    code: Arc<Vec<u8>>,
    jump: Arc<JumpTable>,
    address: Address,
    caller: Address,
    value: U256,
    gas: Gas,
    is_static: bool,
    depth: usize,
    /// `Some(created)` for initcode frames.
    create: Option<Address>,
    checkpoint: JournalMark,
    refund_snapshot: i64,
    /// How the parent consumes this frame's result (set on the *parent*).
    resume: Option<Resume>,
}

/// Mutable frame data: everything that pages in/out of layer 2/3.
struct FrameData {
    pc: usize,
    stack: Stack,
    input: MemLike,
    memory: MemLike,
    ret: MemLike,
}

impl FrameData {
    fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.pc as u64).to_be_bytes());
        out.extend_from_slice(&(self.stack.len() as u64).to_be_bytes());
        for word in self.stack.as_slice() {
            out.extend_from_slice(&word.to_be_bytes());
        }
        for mem in [&self.input, &self.memory, &self.ret] {
            out.extend_from_slice(&(mem.len() as u64).to_be_bytes());
            out.extend_from_slice(mem.as_bytes());
        }
        out
    }

    fn deserialize(bytes: &[u8], mem_config: &MemoryConfig) -> Option<FrameData> {
        let mut cursor = 0usize;
        let read_u64 = |buf: &[u8], cursor: &mut usize| -> Option<u64> {
            let v = u64::from_be_bytes(buf.get(*cursor..*cursor + 8)?.try_into().ok()?);
            *cursor += 8;
            Some(v)
        };
        let pc = read_u64(bytes, &mut cursor)? as usize;
        let stack_len = read_u64(bytes, &mut cursor)? as usize;
        let mut stack = Stack::new();
        for _ in 0..stack_len {
            let word = U256::from_be_slice(bytes.get(cursor..cursor + 32)?);
            cursor += 32;
            stack.push(word).ok()?;
        }
        let mut mems = Vec::with_capacity(3);
        for cache in [mem_config.input_cache, mem_config.memory_cache, mem_config.return_cache] {
            let len = read_u64(bytes, &mut cursor)? as usize;
            let data = bytes.get(cursor..cursor + len)?.to_vec();
            cursor += len;
            mems.push(MemLike::with_data(data, cache));
        }
        let ret = mems.pop()?;
        let memory = mems.pop()?;
        let input = mems.pop()?;
        Some(FrameData { pc, stack, input, memory, ret })
    }
}

/// One layer-2 slot: a frame either resident on-chip or sealed out to
/// layer 3.
enum Slot {
    Resident { meta: FrameMeta, data: FrameData },
    Swapped { meta: FrameMeta, handle: SwappedFrame },
    /// Transient placeholder while a frame moves between layers.
    Moving,
}

impl Slot {
    fn meta(&self) -> &FrameMeta {
        match self {
            Slot::Resident { meta, .. } | Slot::Swapped { meta, .. } => meta,
            Slot::Moving => unreachable!("Moving is transient"),
        }
    }

    fn meta_mut(&mut self) -> &mut FrameMeta {
        match self {
            Slot::Resident { meta, .. } | Slot::Swapped { meta, .. } => meta,
            Slot::Moving => unreachable!("Moving is transient"),
        }
    }
}

#[derive(Clone)]
enum Resume {
    Call { out_offset: usize, out_len: usize },
    Create { created: Address },
}

/// How the current frame ended.
enum Ended {
    Stop,
    Return(Vec<u8>),
    Revert(Vec<u8>),
    SelfDestruct,
    Halt(VmError),
}

/// What the stepper asks the driver to do.
enum Next {
    Step,
    End(Ended),
    Call { msg: CallMsg, out_offset: usize, out_len: usize },
    Create { created: Address, value: U256, initcode: Vec<u8>, gas: u64 },
    /// The gas-slice budget for this segment ran out; the frame stack
    /// is intact and the driver must yield to the caller.
    Preempt,
}

/// How one pass of the frame driver ended.
enum Driven {
    Done(CallResult),
    Preempted,
}

struct CallMsg {
    caller: Address,
    address: Address,
    code_address: Address,
    value: U256,
    transfers_value: bool,
    input: Vec<u8>,
    gas: u64,
    is_static: bool,
    depth: usize,
}

struct CallResult {
    success: bool,
    gas_left: u64,
    output: Vec<u8>,
    halt: Option<VmError>,
    created: Option<Address>,
}

/// Where a checkpointed frame's mutable data lives while the engine is
/// suspended: sealed out to layer 3 (the normal path — one noised swap
/// per frame, so the boundary looks like ordinary spill traffic), or
/// captured raw in-enclave (the cover-traffic ablation: no swap events,
/// which the §IV-D segment-boundary audit lens must flag).
enum FrameHold {
    Sealed(SwappedFrame),
    InEnclave(Vec<u8>),
}

/// The in-flight transaction a preempted engine still owes an epilogue:
/// the tx-level gas counter plus the identities the epilogue settles
/// against (sender reimbursement, coinbase tip).
#[derive(Clone, Copy)]
struct PendingTx {
    counter: Gas,
    from: Address,
    segment: u32,
}

/// How one gas-slice segment of a transaction ended.
#[derive(Debug)]
pub enum SliceOutcome {
    /// The transaction ran to completion; the receipt is final.
    Done(TxResult),
    /// The segment's gas budget ran out mid-transaction. The engine
    /// holds the paused interpreter state: either call
    /// [`Hevm::continue_transact`] to run the next segment in place, or
    /// [`Hevm::suspend`] to detach a typed [`Checkpoint`] and release
    /// the core.
    Preempted {
        /// 1-based index of the segment that just yielded.
        segment: u32,
    },
}

/// A typed, self-contained checkpoint of a preempted transaction: the
/// interpreter stack ring (every frame's metadata plus its sealed or
/// captured data pages), the journal overlay detached from its reader,
/// the layer-3 pager (sealing key, nonce counter, noise DRBG, and the
/// sealed store itself), and the transaction-level gas bookkeeping the
/// epilogue needs. Re-entered with [`Hevm::resume`].
///
/// The checkpoint is deliberately *not* `Clone`: a paused execution can
/// be resumed exactly once, which is what the service's exactly-once
/// accounting for preempted bundles leans on.
pub struct Checkpoint {
    journal: JournalSuspend,
    /// Frames bottom-to-top, exactly the layer-2 slot order at yield.
    frames: Vec<(FrameMeta, FrameHold)>,
    pager: Layer3Pager,
    refund: i64,
    origin: Address,
    gas_price: U256,
    stats: HevmStats,
    swap_outs: u64,
    tamper_on_swap: Option<u64>,
    frame_misses_seen: u64,
    pending: PendingTx,
    root_gas: u64,
    /// Virtual time at which the slice yielded (before cover traffic).
    yield_at: Nanos,
    /// Resident frames captured out of layer 2 at suspension — the
    /// cover amount the suspension *owes*, whatever the cover mode.
    suspended_frames: u32,
    /// Frames actually sealed out at suspension (equals
    /// `suspended_frames` unless the cover ablation is on).
    covered_frames: u32,
    /// Gas still unexecuted across the frame stack at yield.
    remaining_gas: u64,
}

impl core::fmt::Debug for Checkpoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Checkpoint")
            .field("frames", &self.frames.len())
            .field("segment", &self.pending.segment)
            .field("remaining_gas", &self.remaining_gas)
            .finish()
    }
}

impl Checkpoint {
    /// 1-based index of the segment that produced this checkpoint.
    pub fn segment(&self) -> u32 {
        self.pending.segment
    }

    /// Virtual time at which the slice yielded, before the checkpoint
    /// cover traffic was emitted.
    pub fn yield_at(&self) -> Nanos {
        self.yield_at
    }

    /// How many resident frames the suspension captured out of layer 2
    /// — the cover amount the telemetry segment window advertises to
    /// the §IV-D auditor. This counts what the suspension *owes* the
    /// bus, not what it delivered, so the cover ablation still
    /// advertises a non-zero figure the auditor can hold it to.
    pub fn suspended_frames(&self) -> u32 {
        self.suspended_frames
    }

    /// How many frames were actually sealed out to layer 3 at
    /// suspension (equals [`suspended_frames`](Self::suspended_frames)
    /// unless the cover-traffic ablation is on).
    pub fn covered_frames(&self) -> u32 {
        self.covered_frames
    }

    /// Gas left unexecuted across the paused frame stack: the basis for
    /// remaining-segment estimates (gateway `retry_after` hints).
    pub fn remaining_gas(&self) -> u64 {
        self.remaining_gas
    }

    /// Drains the pager's swap log (the cover-traffic events emitted at
    /// suspension, plus any earlier spills not yet flushed).
    pub fn take_swap_log(&mut self) -> Vec<SwapEvent> {
        self.pager.take_swap_log()
    }
}

/// Execution statistics the Hypervisor and evaluation harness read out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HevmStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Exceptions raised to the Hypervisor (state queries + swaps).
    pub exceptions: u64,
    /// Layer-1 miss events.
    pub l1_misses: u64,
    /// Layer-3 swap events.
    pub swaps: u64,
    /// Peak layer-2 occupancy in pages.
    pub peak_l2_pages: usize,
    /// Maximum call-stack depth reached.
    pub max_depth: usize,
}

/// The hardware EVM emulator.
///
/// # Examples
///
/// ```
/// use tape_hevm::{Hevm, HevmConfig};
/// use tape_evm::{Env, Transaction};
/// use tape_primitives::{Address, U256};
/// use tape_sim::Clock;
/// use tape_state::{Account, InMemoryState};
///
/// let mut backend = InMemoryState::new();
/// let user = Address::from_low_u64(1);
/// backend.put_account(user, Account::with_balance(U256::from(u64::MAX)));
///
/// let mut hevm = Hevm::new(HevmConfig::default(), Env::default(), &backend, Clock::new());
/// let tx = Transaction::transfer(user, Address::from_low_u64(0xB0B), U256::ONE);
/// let result = hevm.transact(&tx)?;
/// assert!(result.success);
/// assert_eq!(result.gas_used, 21_000);
/// # Ok::<(), tape_hevm::HevmAbort>(())
/// ```
pub struct Hevm<R, I = NoopInspector> {
    config: HevmConfig,
    env: Env,
    clock: Clock,
    state: JournaledState<R>,
    inspector: I,
    pager: Layer3Pager,
    refund: i64,
    origin: Address,
    gas_price: U256,
    stats: HevmStats,
    /// The explicit layer-2 call stack.
    slots: Vec<Slot>,
    /// Test hook: corrupt the layer-3 ciphertext written by the n-th
    /// swap-out (0-based), simulating attack A4 mid-execution.
    tamper_on_swap: Option<u64>,
    swap_outs: u64,
    /// Cumulative miss count of the current top frame at the last step
    /// (for delta-based accumulation into `stats.l1_misses`).
    frame_misses_seen: u64,
    /// Virtual-clock deadline of the current *segment* (reset at every
    /// segment entry from `config.watchdog_ns`) — the watchdog bounds
    /// stuck segments, not whole transactions.
    watchdog_deadline: Option<tape_sim::Nanos>,
    /// The in-flight transaction when execution is preempted mid-way.
    pending: Option<PendingTx>,
    /// Gas handed to the root frame (after intrinsic); with the summed
    /// in-flight gas this yields gas-executed-so-far for slice checks.
    root_gas: u64,
    /// Gas-executed-so-far at the start of the current segment.
    slice_used_start: u64,
}

impl<R: StateReader> Hevm<R> {
    /// Creates an HEVM with no inspector attached.
    pub fn new(config: HevmConfig, env: Env, reader: R, clock: Clock) -> Self {
        Self::with_inspector(config, env, reader, clock, NoopInspector)
    }

    /// Re-enters a preempted transaction from a detached [`Checkpoint`]
    /// (the inverse of [`Hevm::suspend`]).
    ///
    /// The caller supplies a fresh reader over the same world state —
    /// the checkpoint carries the journal overlay, so every write from
    /// earlier segments is still visible — plus the shared virtual
    /// clock. `config` must describe the same device (memory geometry,
    /// cost model); the layer-3 sealing key is *not* re-derived: the
    /// checkpointed pager already holds the cipher that sealed the
    /// spilled frames.
    ///
    /// The watchdog deadline is rearmed by the next
    /// [`Hevm::continue_transact`], giving each segment a fresh budget.
    pub fn resume(
        config: HevmConfig,
        env: Env,
        reader: R,
        clock: Clock,
        checkpoint: Checkpoint,
    ) -> Self {
        let Checkpoint {
            journal,
            frames,
            pager,
            refund,
            origin,
            gas_price,
            stats,
            swap_outs,
            tamper_on_swap,
            frame_misses_seen,
            pending,
            root_gas,
            ..
        } = checkpoint;
        let slots = frames
            .into_iter()
            .map(|(meta, hold)| match hold {
                FrameHold::Sealed(handle) => Slot::Swapped { meta, handle },
                FrameHold::InEnclave(bytes) => {
                    let data = FrameData::deserialize(&bytes, &config.mem)
                        .expect("in-enclave checkpoint bytes round-trip");
                    Slot::Resident { meta, data }
                }
            })
            .collect();
        Hevm {
            config,
            env,
            clock,
            state: JournaledState::rehydrate(reader, journal),
            inspector: NoopInspector,
            pager,
            refund,
            origin,
            gas_price,
            stats,
            slots,
            tamper_on_swap,
            swap_outs,
            frame_misses_seen,
            watchdog_deadline: None,
            pending: Some(pending),
            root_gas,
            slice_used_start: 0,
        }
    }
}

impl<R: StateReader, I: Inspector> Hevm<R, I> {
    /// Creates an HEVM with an inspector attached.
    pub fn with_inspector(
        config: HevmConfig,
        env: Env,
        reader: R,
        clock: Clock,
        inspector: I,
    ) -> Self {
        let page = config.mem.page_size;
        let mut pager = Layer3Pager::new(
            &config.layer3_key,
            SecureRng::from_seed(&config.layer3_noise_seed.to_be_bytes()),
            page,
            6,
        );
        if let Some(plan) = &config.faults {
            pager.arm_faults(plan.clone());
        }
        Hevm {
            config,
            env,
            clock,
            state: JournaledState::new(reader),
            inspector,
            pager,
            refund: 0,
            origin: Address::ZERO,
            gas_price: U256::ZERO,
            stats: HevmStats::default(),
            slots: Vec::new(),
            tamper_on_swap: None,
            swap_outs: 0,
            frame_misses_seen: 0,
            watchdog_deadline: None,
            pending: None,
            root_gas: 0,
            slice_used_start: 0,
        }
    }

    /// The execution environment.
    pub fn env(&self) -> &Env {
        &self.env
    }

    /// The journaled overlay.
    pub fn state(&self) -> &JournaledState<R> {
        &self.state
    }

    /// Mutable overlay access (bundle setup).
    pub fn state_mut(&mut self) -> &mut JournaledState<R> {
        &mut self.state
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> HevmStats {
        self.stats
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The attached inspector.
    pub fn inspector(&self) -> &I {
        &self.inspector
    }

    /// Mutable access to the attached inspector.
    pub fn inspector_mut(&mut self) -> &mut I {
        &mut self.inspector
    }

    /// Consumes the HEVM, returning the inspector.
    pub fn into_inspector(self) -> I {
        self.inspector
    }

    /// The adversary-visible layer-3 swap log.
    pub fn swap_log(&self) -> &[SwapEvent] {
        self.pager.swap_log()
    }

    /// Test hook: tampers with layer-3 ciphertext `index` (attack A4).
    pub fn tamper_layer3(&mut self, index: usize) {
        self.pager.tamper(index);
    }

    /// Test hook: corrupts the ciphertext produced by the `nth` swap-out
    /// (0-based) as soon as it is written — an adversary flipping bits in
    /// untrusted memory mid-execution (attack A4).
    pub fn tamper_on_swap(&mut self, nth: u64) {
        self.tamper_on_swap = Some(nth);
    }

    fn charge_local_fetch(&mut self) {
        self.stats.exceptions += 1;
        if self.config.charge_local_fetch {
            self.clock.advance(self.config.cost.local_state_fetch_ns);
        }
    }

    fn charge_local_code_fetch(&mut self, code_len: usize) {
        if code_len == 0 {
            return;
        }
        self.stats.exceptions += 1;
        if self.config.charge_local_code {
            // One fetch per 1 KB page, mirroring the ORAM's paging.
            let pages = code_len.div_ceil(self.config.mem.page_size) as u64;
            self.clock
                .advance(self.config.cost.local_state_fetch_ns * pages);
        }
    }

    /// Executes one transaction of the bundle to completion.
    ///
    /// With `config.gas_slice` unset this is a single uninterrupted
    /// run; with it set, the transaction is internally driven through
    /// slice boundaries (identical semantics — segmentation never
    /// changes the receipt, only where the virtual clock is sampled).
    ///
    /// # Errors
    ///
    /// [`HevmAbort`] on transaction validation failure, layer-2 memory
    /// overflow (attack response), or layer-3 tampering.
    pub fn transact(&mut self, tx: &Transaction) -> Result<TxResult, HevmAbort> {
        let mut outcome = self.transact_sliced(tx)?;
        loop {
            match outcome {
                SliceOutcome::Done(result) => return Ok(result),
                SliceOutcome::Preempted { .. } => outcome = self.continue_transact()?,
            }
        }
    }

    /// Executes one transaction until it finishes *or* exhausts the
    /// configured gas slice ([`HevmConfig::gas_slice`]).
    ///
    /// On [`SliceOutcome::Preempted`] the engine holds the paused
    /// interpreter state: run the next segment in place with
    /// [`Hevm::continue_transact`], or detach a [`Checkpoint`] with
    /// [`Hevm::suspend`] and release the core.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Hevm::transact`].
    pub fn transact_sliced(&mut self, tx: &Transaction) -> Result<SliceOutcome, HevmAbort> {
        self.pending = None;
        self.state.begin_transaction();
        self.refund = 0;
        self.origin = tx.from;
        self.gas_price = tx.gas_price;
        self.slots.clear();
        self.watchdog_deadline = self.config.watchdog_ns.map(|w| self.clock.now() + w);

        let (sender, _) = self.state.load_account(tx.from);
        self.inspector.state_access(&StateAccess::Account(tx.from));
        self.charge_local_fetch();
        if let Some(nonce) = tx.nonce {
            if nonce != sender.nonce {
                return Err(TxError::NonceMismatch { expected: nonce, actual: sender.nonce }.into());
            }
        }

        let is_create = tx.to.is_none();
        if is_create && tx.data.len() > gas::MAX_INITCODE_SIZE {
            return Err(TxError::InitcodeTooLarge.into());
        }
        let al_keys = tx.access_list.iter().map(|(_, k)| k.len()).sum();
        let intrinsic = gas::intrinsic_gas(&tx.data, is_create, tx.access_list.len(), al_keys);
        if tx.gas_limit < intrinsic {
            return Err(TxError::IntrinsicGasTooLow { needed: intrinsic }.into());
        }

        let gas_cost = U256::from(tx.gas_limit)
            .checked_mul(tx.gas_price)
            .ok_or(HevmAbort::Tx(TxError::InsufficientFunds))?;
        let upfront = gas_cost
            .checked_add(tx.value)
            .ok_or(HevmAbort::Tx(TxError::InsufficientFunds))?;
        if sender.balance < upfront {
            return Err(TxError::InsufficientFunds.into());
        }

        self.state.sub_balance(&tx.from, gas_cost).expect("balance checked");
        self.state.inc_nonce(&tx.from);

        self.state.warm_address(tx.from);
        if let Some(to) = tx.to {
            self.state.warm_address(to);
        }
        self.state.warm_address(self.env.coinbase);
        for n in 1..=precompile::PRECOMPILE_COUNT {
            self.state.warm_address(Address::from_low_u64(n));
        }
        for (addr, keys) in &tx.access_list {
            self.state.warm_address(*addr);
            for key in keys {
                let _ = self.state.sload(addr, key);
            }
        }

        // Per-transaction session handling on the Hypervisor.
        self.clock.advance(self.config.cost.hevm_tx_overhead_ns);

        let mut counter = Gas::new(tx.gas_limit);
        assert!(counter.charge(intrinsic), "checked against the limit above");
        self.root_gas = counter.remaining();
        self.slice_used_start = 0;
        self.pending = Some(PendingTx { counter, from: tx.from, segment: 1 });

        let driven = if let Some(to) = tx.to {
            let msg = CallMsg {
                caller: tx.from,
                address: to,
                code_address: to,
                value: tx.value,
                transfers_value: true,
                input: tx.data.clone(),
                gas: counter.remaining(),
                is_static: false,
                depth: 1,
            };
            self.drive(Work::Call(msg))?
        } else {
            let nonce = self.state.nonce(&tx.from) - 1;
            let created = create_address(&tx.from, nonce);
            self.drive(Work::Create {
                creator: tx.from,
                created,
                value: tx.value,
                initcode: tx.data.clone(),
                gas: counter.remaining(),
                depth: 1,
            })?
        };
        self.settle(driven)
    }

    /// Runs the next gas-slice segment of a preempted transaction.
    ///
    /// Rearms the per-segment watchdog deadline and resets the slice
    /// accounting baseline, then drives the frame stack exactly where
    /// the previous segment left off.
    ///
    /// # Panics
    ///
    /// If no transaction is preempted (the engine owes no segment).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Hevm::transact`].
    pub fn continue_transact(&mut self) -> Result<SliceOutcome, HevmAbort> {
        let pending = self
            .pending
            .as_mut()
            .expect("continue_transact requires a preempted transaction");
        pending.segment += 1;
        self.watchdog_deadline = self.config.watchdog_ns.map(|w| self.clock.now() + w);
        self.slice_used_start = self.root_gas.saturating_sub(self.gas_in_flight());
        let driven = self.drive_loop()?;
        self.settle(driven)
    }

    /// The transaction epilogue, shared by every segment that reaches
    /// the end of the frame tree: gas settlement, refunds, sender
    /// reimbursement, and coinbase tip.
    fn settle(&mut self, driven: Driven) -> Result<SliceOutcome, HevmAbort> {
        let result = match driven {
            Driven::Preempted => {
                let segment = self.pending.as_ref().expect("pending while preempted").segment;
                return Ok(SliceOutcome::Preempted { segment });
            }
            Driven::Done(result) => result,
        };
        let PendingTx { mut counter, from, .. } =
            self.pending.take().expect("pending set by the prologue");

        let frame_gas = counter.remaining();
        assert!(counter.charge(frame_gas - result.gas_left), "frame gas accounted");
        let refund_cap = counter.used() / 5;
        let refund = (self.refund.max(0) as u64).min(refund_cap);
        counter.reclaim(refund);

        let gas_used = counter.used();
        let reimbursement = U256::from(counter.remaining()).wrapping_mul(self.gas_price);
        self.state.add_balance(&from, reimbursement);
        let tip = U256::from(gas_used)
            .wrapping_mul(self.gas_price.saturating_sub(self.env.base_fee));
        self.state.add_balance(&self.env.coinbase, tip);

        let mut logs = self.state.take_logs();
        if !result.success {
            logs.clear();
        }

        Ok(SliceOutcome::Done(TxResult {
            success: result.success,
            gas_used,
            output: result.output,
            logs,
            // Call roots always retire with `created: None`; create
            // roots carry the deployed address — so this covers both.
            created: result.created,
            halt: result.halt,
        }))
    }

    /// Detaches a preempted execution into a typed [`Checkpoint`],
    /// consuming the engine and returning the state reader.
    ///
    /// Every still-resident layer-2 frame is sealed out through the
    /// layer-3 pager (when `config.checkpoint_cover` is set), so the
    /// suspension is observable only as ordinary noised swap traffic —
    /// the §IV-D indistinguishability argument survives the segment
    /// boundary. With the cover ablation off, frames are captured
    /// in-enclave with *no* bus traffic: the leakage auditor's
    /// segment-boundary lens must flag that run.
    ///
    /// The attached inspector is discarded: checkpoints cross core
    /// assignments, and inspection is a per-run concern.
    ///
    /// # Panics
    ///
    /// If no transaction is preempted.
    pub fn suspend(mut self) -> (R, Checkpoint) {
        let pending = self
            .pending
            .take()
            .expect("suspend requires a preempted transaction");
        let yield_at = self.clock.now();
        let remaining_gas = self.gas_in_flight();

        let slots = std::mem::take(&mut self.slots);
        let mut frames = Vec::with_capacity(slots.len());
        let mut suspended = 0u32;
        let mut covered = 0u32;
        for slot in slots {
            match slot {
                Slot::Resident { meta, data } => {
                    suspended += 1;
                    let bytes = data.serialize();
                    let hold = if self.config.checkpoint_cover {
                        let handle = self.pager.swap_out(&bytes, &self.clock, &self.config.cost);
                        if self.tamper_on_swap == Some(self.swap_outs) {
                            self.pager.tamper(handle.index);
                        }
                        self.swap_outs += 1;
                        self.stats.swaps += 1;
                        self.stats.exceptions += 1;
                        covered += 1;
                        FrameHold::Sealed(handle)
                    } else {
                        FrameHold::InEnclave(bytes)
                    };
                    frames.push((meta, hold));
                }
                Slot::Swapped { meta, handle } => frames.push((meta, FrameHold::Sealed(handle))),
                Slot::Moving => unreachable!("Moving is transient"),
            }
        }

        let (reader, journal) = self.state.suspend();
        let checkpoint = Checkpoint {
            journal,
            frames,
            pager: self.pager,
            refund: self.refund,
            origin: self.origin,
            gas_price: self.gas_price,
            stats: self.stats,
            swap_outs: self.swap_outs,
            tamper_on_swap: self.tamper_on_swap,
            frame_misses_seen: self.frame_misses_seen,
            pending,
            root_gas: self.root_gas,
            yield_at,
            suspended_frames: suspended,
            covered_frames: covered,
            remaining_gas,
        };
        (reader, checkpoint)
    }

    /// Sum of unexecuted gas across the frame stack. Forwarded gas is
    /// charged on the parent and held by the child, so the sum counts
    /// each unit once: `root_gas - gas_in_flight()` is gas executed so
    /// far (modulo the 2300-gas call stipend, which is bonus gas — the
    /// slice check uses saturating arithmetic to absorb it).
    fn gas_in_flight(&self) -> u64 {
        self.slots.iter().map(|slot| slot.meta().gas.remaining()).sum()
    }
}

/// A unit of work for the driver.
enum Work {
    Call(CallMsg),
    Create {
        creator: Address,
        created: Address,
        value: U256,
        initcode: Vec<u8>,
        gas: u64,
        depth: usize,
    },
}

impl<R: StateReader, I: Inspector> Hevm<R, I> {
    /// The iterative frame driver over the layer-2 slot vector.
    fn drive(&mut self, root: Work) -> Result<Driven, HevmAbort> {
        // Seed the stack with the root frame (or resolve it immediately).
        match self.admit(root)? {
            Admitted::Done(result) => return Ok(Driven::Done(result)),
            Admitted::Pushed => {}
        }
        self.drive_loop()
    }

    /// Drives the existing frame stack until the root retires or the
    /// gas slice runs out. Re-entrant: a preempted engine (or one
    /// rebuilt via [`Hevm::resume`]) continues from here.
    fn drive_loop(&mut self) -> Result<Driven, HevmAbort> {
        loop {
            let next = self.execute_top()?;
            match next {
                Next::Step => unreachable!("execute_top runs to a boundary"),
                Next::Preempt => return Ok(Driven::Preempted),
                Next::End(ended) => {
                    let result = self.retire_top(ended)?;
                    // Deliver to the parent, or finish.
                    if self.slots.is_empty() {
                        return Ok(Driven::Done(result));
                    }
                    self.deliver(result)?;
                }
                Next::Call { msg, out_offset, out_len } => {
                    self.top_meta_mut().resume = Some(Resume::Call { out_offset, out_len });
                    match self.admit(Work::Call(msg))? {
                        Admitted::Done(result) => self.deliver(result)?,
                        Admitted::Pushed => {}
                    }
                }
                Next::Create { created, value, initcode, gas } => {
                    let creator = self.top_meta().address;
                    let depth = self.top_meta().depth + 1;
                    self.top_meta_mut().resume = Some(Resume::Create { created });
                    let work = Work::Create { creator, created, value, initcode, gas, depth };
                    match self.admit(work)? {
                        Admitted::Done(result) => self.deliver(result)?,
                        Admitted::Pushed => {}
                    }
                }
            }
        }
    }

    fn top_meta(&self) -> &FrameMeta {
        self.slots.last().expect("driver keeps a top frame").meta()
    }

    fn top_meta_mut(&mut self) -> &mut FrameMeta {
        self.slots.last_mut().expect("driver keeps a top frame").meta_mut()
    }

    /// Applies a finished child's result to the (new) top frame.
    fn deliver(&mut self, result: CallResult) -> Result<(), HevmAbort> {
        self.ensure_top_resident()?;
        let Slot::Resident { meta, data } = self.slots.last_mut().expect("non-empty") else {
            unreachable!("ensured resident");
        };
        meta.gas.reclaim(result.gas_left);
        match meta.resume.take().expect("parent armed a resume") {
            Resume::Call { out_offset, out_len } => {
                let copy = out_len.min(result.output.len());
                if copy > 0 {
                    data.memory.store_slice(out_offset, &result.output[..copy]);
                }
                data.ret = MemLike::with_data(result.output, self.config.mem.return_cache);
                data.stack
                    .push(U256::from(result.success))
                    .expect("call freed stack slots");
            }
            Resume::Create { created } => {
                if result.success {
                    data.ret = MemLike::new(self.config.mem.return_cache);
                    data.stack
                        .push(created.into_word())
                        .expect("create freed stack slots");
                } else {
                    data.ret = MemLike::with_data(result.output, self.config.mem.return_cache);
                    data.stack.push(U256::ZERO).expect("create freed stack slots");
                }
            }
        }
        Ok(())
    }

    /// Resolves a work item: either an immediate result or a new top
    /// frame on the layer-2 stack.
    fn admit(&mut self, work: Work) -> Result<Admitted, HevmAbort> {
        match work {
            Work::Call(msg) => self.admit_call(msg),
            Work::Create { creator, created, value, initcode, gas, depth } => {
                self.admit_create(creator, created, value, initcode, gas, depth)
            }
        }
    }

    fn admit_call(&mut self, msg: CallMsg) -> Result<Admitted, HevmAbort> {
        self.inspector.state_access(&StateAccess::Account(msg.code_address));
        self.charge_local_fetch();
        let code = self.state.code(&msg.code_address);
        self.inspector.call_start(&FrameStart {
            depth: msg.depth,
            code_address: msg.code_address,
            address: msg.address,
            caller: msg.caller,
            value: msg.value,
            input_len: msg.input.len(),
            code_len: code.len(),
            gas: msg.gas,
        });

        let checkpoint = self.state.checkpoint();
        let refund_snapshot = self.refund;

        if msg.transfers_value
            && !msg.value.is_zero()
            && self.state.transfer(&msg.caller, &msg.address, msg.value).is_err()
        {
            self.state.revert(checkpoint);
            self.inspector.call_end(&FrameEnd {
                depth: msg.depth,
                committed: false,
                output_len: 0,
                gas_left: msg.gas,
            });
            return Ok(Admitted::Done(CallResult {
                success: false,
                gas_left: msg.gas,
                output: Vec::new(),
                halt: None,
                created: None,
            }));
        }

        if precompile::is_precompile(&msg.code_address) {
            let out = precompile::run(&msg.code_address, &msg.input, msg.gas);
            let (success, gas_left) =
                if out.success { (true, msg.gas - out.gas_used) } else { (false, 0) };
            if success {
                self.state.commit(checkpoint);
            } else {
                self.state.revert(checkpoint);
                self.refund = refund_snapshot;
            }
            self.inspector.call_end(&FrameEnd {
                depth: msg.depth,
                committed: success,
                output_len: out.output.len(),
                gas_left,
            });
            return Ok(Admitted::Done(CallResult {
                success,
                gas_left,
                output: out.output,
                halt: None,
                created: None,
            }));
        }

        if code.is_empty() {
            self.state.commit(checkpoint);
            self.inspector.call_end(&FrameEnd {
                depth: msg.depth,
                committed: true,
                output_len: 0,
                gas_left: msg.gas,
            });
            return Ok(Admitted::Done(CallResult {
                success: true,
                gas_left: msg.gas,
                output: Vec::new(),
                halt: None,
                created: None,
            }));
        }

        self.inspector.state_access(&StateAccess::Code(msg.code_address, code.len()));
        self.charge_local_code_fetch(code.len());
        let jump = Arc::new(JumpTable::analyze(&code));
        let meta = FrameMeta {
            code,
            jump,
            address: msg.address,
            caller: msg.caller,
            value: msg.value,
            gas: Gas::new(msg.gas),
            is_static: msg.is_static,
            depth: msg.depth,
            create: None,
            checkpoint,
            refund_snapshot,
            resume: None,
        };
        let data = FrameData {
            pc: 0,
            stack: Stack::new(),
            input: MemLike::with_data(msg.input, self.config.mem.input_cache),
            memory: MemLike::new(self.config.mem.memory_cache),
            ret: MemLike::new(self.config.mem.return_cache),
        };
        self.push_frame(meta, data)?;
        Ok(Admitted::Pushed)
    }

    fn admit_create(
        &mut self,
        creator: Address,
        created: Address,
        value: U256,
        initcode: Vec<u8>,
        gas: u64,
        depth: usize,
    ) -> Result<Admitted, HevmAbort> {
        self.inspector.call_start(&FrameStart {
            depth,
            code_address: created,
            address: created,
            caller: creator,
            value,
            input_len: 0,
            code_len: initcode.len(),
            gas,
        });

        let (info, _) = self.state.load_account(created);
        if info.has_code() || info.nonce != 0 {
            self.inspector.call_end(&FrameEnd { depth, committed: false, output_len: 0, gas_left: 0 });
            return Ok(Admitted::Done(CallResult {
                success: false,
                gas_left: 0,
                output: Vec::new(),
                halt: Some(VmError::CreateCollision),
                created: None,
            }));
        }

        let checkpoint = self.state.checkpoint();
        let refund_snapshot = self.refund;
        self.state.inc_nonce(&created);
        if !value.is_zero() && self.state.transfer(&creator, &created, value).is_err() {
            self.state.revert(checkpoint);
            self.inspector.call_end(&FrameEnd { depth, committed: false, output_len: 0, gas_left: gas });
            return Ok(Admitted::Done(CallResult {
                success: false,
                gas_left: gas,
                output: Vec::new(),
                halt: None,
                created: None,
            }));
        }

        let code = Arc::new(initcode);
        let jump = Arc::new(JumpTable::analyze(&code));
        let meta = FrameMeta {
            code,
            jump,
            address: created,
            caller: creator,
            value,
            gas: Gas::new(gas),
            is_static: false,
            depth,
            create: Some(created),
            checkpoint,
            refund_snapshot,
            resume: None,
        };
        let data = FrameData {
            pc: 0,
            stack: Stack::new(),
            input: MemLike::new(self.config.mem.input_cache),
            memory: MemLike::new(self.config.mem.memory_cache),
            ret: MemLike::new(self.config.mem.return_cache),
        };
        self.push_frame(meta, data)?;
        Ok(Admitted::Pushed)
    }

    /// Finishes the top frame: CREATE epilogue, journal commit/revert,
    /// inspector report, and popping the layer-2 slot.
    fn retire_top(&mut self, mut ended: Ended) -> Result<CallResult, HevmAbort> {
        let Some(Slot::Resident { mut meta, .. }) = self.slots.pop() else {
            unreachable!("top frame is resident while executing");
        };

        let mut created_out = None;
        if let Some(created) = meta.create {
            // STOP (or running off the end) in initcode is a successful
            // deployment of *empty* code, per the EVM spec.
            if matches!(ended, Ended::Stop) {
                ended = Ended::Return(Vec::new());
            }
            if let Ended::Return(deployed) = ended {
                ended = if deployed.len() > gas::MAX_CODE_SIZE {
                    meta.gas.consume_all();
                    Ended::Halt(VmError::CodeSizeExceeded)
                } else if deployed.first() == Some(&0xEF) {
                    meta.gas.consume_all();
                    Ended::Halt(VmError::InvalidDeployedCode)
                } else if !meta.gas.charge(gas::CODE_DEPOSIT_BYTE * deployed.len() as u64) {
                    Ended::Halt(VmError::OutOfGas)
                } else {
                    self.state.set_code(&created, deployed);
                    created_out = Some(created);
                    Ended::Stop
                };
            }
        }

        // The next top frame's counters restart from its own history.
        self.frame_misses_seen = match self.slots.last() {
            Some(Slot::Resident { data, .. }) => {
                data.input.l1_misses() + data.memory.l1_misses() + data.ret.l1_misses()
            }
            _ => 0,
        };
        let (success, gas_left, output, halt) = match ended {
            Ended::Stop | Ended::SelfDestruct => (true, meta.gas.remaining(), Vec::new(), None),
            Ended::Return(data) => (true, meta.gas.remaining(), data, None),
            Ended::Revert(data) => (false, meta.gas.remaining(), data, None),
            Ended::Halt(err) => (false, 0, Vec::new(), Some(err)),
        };
        if success {
            self.state.commit(meta.checkpoint);
        } else {
            self.state.revert(meta.checkpoint);
            self.refund = meta.refund_snapshot;
        }
        self.inspector.call_end(&FrameEnd {
            depth: meta.depth,
            committed: success,
            output_len: output.len(),
            gas_left,
        });
        Ok(CallResult { success, gas_left, output, halt, created: created_out })
    }

    // ------------------------------------------------------------------
    // Layer-2 management
    // ------------------------------------------------------------------

    fn frame_pages(&self, meta: &FrameMeta, data: &FrameData) -> usize {
        let page = self.config.mem.page_size;
        // Stack (32 KB) + frame state (1 KB) + world-state cache (4 KB)
        // are fixed; memory-likes grow.
        let fixed = (self.config.mem.stack_bytes
            + self.config.mem.frame_state_bytes
            + self.config.mem.state_cache)
            .div_ceil(page);
        fixed
            + meta.code.len().div_ceil(page)
            + data.input.pages(page)
            + data.memory.pages(page)
            + data.ret.pages(page)
    }

    fn resident_pages(&self) -> usize {
        self.slots
            .iter()
            .map(|slot| match slot {
                Slot::Resident { meta, data } => self.frame_pages(meta, data),
                Slot::Swapped { .. } | Slot::Moving => 0,
            })
            .sum()
    }

    /// Pushes a new frame, swapping lower frames out as needed and
    /// enforcing the single-frame overflow limit.
    fn push_frame(&mut self, meta: FrameMeta, data: FrameData) -> Result<(), HevmAbort> {
        self.stats.max_depth = self.stats.max_depth.max(meta.depth);
        self.frame_misses_seen = 0; // fresh frame, fresh counters
        self.slots.push(Slot::Resident { meta, data });
        self.rebalance_layer2()
    }

    /// Enforces layer-2 capacity: the current frame must fit on-chip
    /// entirely (obliviousness argument of §IV-B); lower frames spill to
    /// layer 3, bottom-most first.
    fn rebalance_layer2(&mut self) -> Result<(), HevmAbort> {
        let page = self.config.mem.page_size;
        let capacity_pages = self.config.mem.layer2_bytes / page;
        let limit_pages = self.config.mem.frame_size_limit() / page;

        // Single-frame limit check on the current frame.
        if let Some(Slot::Resident { meta, data }) = self.slots.last() {
            let pages = self.frame_pages(meta, data);
            if pages > limit_pages {
                return Err(HevmAbort::MemoryOverflow { frame_pages: pages, limit_pages });
            }
        }

        // Spill bottom frames while over capacity (never the top).
        while self.resident_pages() > capacity_pages {
            let top = self.slots.len() - 1;
            let Some(victim_idx) = self
                .slots
                .iter()
                .position(|s| matches!(s, Slot::Resident { .. }))
                .filter(|&i| i < top)
            else {
                // Only the current frame is resident and it fits the
                // single-frame limit; nothing more to spill.
                break;
            };
            let slot = std::mem::replace(&mut self.slots[victim_idx], Slot::Moving);
            let Slot::Resident { meta, data } = slot else { unreachable!("position matched") };
            let bytes = data.serialize();
            let handle = self.pager.swap_out(&bytes, &self.clock, &self.config.cost);
            if self.tamper_on_swap == Some(self.swap_outs) {
                self.pager.tamper(handle.index);
            }
            self.swap_outs += 1;
            self.stats.swaps += 1;
            self.stats.exceptions += 1;
            self.slots[victim_idx] = Slot::Swapped { meta, handle };
        }

        self.stats.peak_l2_pages = self.stats.peak_l2_pages.max(self.resident_pages());
        Ok(())
    }

    /// Reloads the top frame from layer 3 if it was spilled.
    fn ensure_top_resident(&mut self) -> Result<(), HevmAbort> {
        let Some(top) = self.slots.last() else { return Ok(()) };
        if matches!(top, Slot::Resident { .. }) {
            return Ok(());
        }
        let Some(Slot::Swapped { meta, handle }) = self.slots.pop() else { unreachable!() };
        let bytes = self
            .pager
            .swap_in(handle, &self.clock, &self.config.cost)
            .map_err(|_| HevmAbort::Layer3Tampered)?;
        let data = FrameData::deserialize(&bytes, &self.config.mem)
            .ok_or(HevmAbort::Layer3Tampered)?;
        self.stats.swaps += 1;
        self.stats.exceptions += 1;
        self.slots.push(Slot::Resident { meta, data });
        self.rebalance_layer2()
    }

    // ------------------------------------------------------------------
    // The stepper
    // ------------------------------------------------------------------

    /// Runs the top frame until it ends or spawns a child.
    fn execute_top(&mut self) -> Result<Next, HevmAbort> {
        self.ensure_top_resident()?;
        loop {
            // A runaway execution (adversarial bytecode, a huge honest
            // loop, or an engine defect) must not stall the core: the
            // watchdog bounds each transaction in virtual time.
            if let Some(deadline) = self.watchdog_deadline {
                if self.clock.now() > deadline {
                    return Err(HevmAbort::Watchdog {
                        budget_ns: self.config.watchdog_ns.unwrap_or(0),
                    });
                }
            }
            // Gas-slice preemption: yield once this segment has executed
            // its budget. Checked at the same boundary as the watchdog,
            // with the frame stack fully materialized (top pushed back),
            // so the engine is suspendable right here.
            if let Some(slice) = self.config.gas_slice {
                if self.pending.is_some() {
                    let used = self.root_gas.saturating_sub(self.gas_in_flight());
                    if used.saturating_sub(self.slice_used_start) >= slice {
                        return Ok(Next::Preempt);
                    }
                }
            }
            // Temporarily detach the top slot to satisfy the borrow
            // checker; the stepper needs &mut self for state access.
            let Some(Slot::Resident { mut meta, mut data }) = self.slots.pop() else {
                unreachable!("ensured resident top");
            };
            let stepped = self.step(&mut meta, &mut data);
            let next = match stepped {
                Ok(Next::Step) => None,
                Ok(other) => Some(other),
                Err(err) => {
                    meta.gas.consume_all();
                    Some(Next::End(Ended::Halt(err)))
                }
            };
            let misses =
                data.input.l1_misses() + data.memory.l1_misses() + data.ret.l1_misses();
            // Accumulate only this step's delta: per-frame counters are
            // cumulative, and several frames contribute over a bundle.
            let delta = misses.saturating_sub(self.frame_misses_seen);
            self.stats.l1_misses += delta;
            self.frame_misses_seen = misses;
            self.slots.push(Slot::Resident { meta, data });
            if let Some(next) = next {
                // Growth may have changed the footprint.
                if !matches!(next, Next::End(_)) {
                    self.rebalance_layer2()?;
                }
                return Ok(next);
            }
            self.rebalance_layer2()?;
        }
    }

    /// Decode + execute one instruction (the fetch/decode stages of the
    /// four-stage pipeline; timing charged per retired instruction).
    fn step(&mut self, meta: &mut FrameMeta, data: &mut FrameData) -> Result<Next, VmError> {
        let Some(&byte) = meta.code.get(data.pc) else {
            return Ok(Next::End(Ended::Stop));
        };
        let info = opcode::info(byte);
        if !info.defined {
            return Err(VmError::InvalidOpcode(byte));
        }

        self.inspector.step(&StepInfo {
            pc: data.pc,
            opcode: byte,
            gas_remaining: meta.gas.remaining(),
            depth: meta.depth,
            stack: data.stack.as_slice(),
            memory_size: data.memory.len(),
            address: meta.address,
        });

        // Pipeline timing: every retired instruction advances the clock.
        self.stats.instructions += 1;
        self.clock.advance(self.config.cost.hevm_instruction_ns(byte));

        if !meta.gas.charge(info.base_gas) {
            return Err(VmError::OutOfGas);
        }

        let pc = data.pc;
        data.pc += 1;

        use tape_evm::opcode::OpCategory as C;
        match info.category {
            C::Arithmetic => exec_arithmetic(byte, meta, data)?,
            C::Keccak => {
                let offset = data.stack.pop()?;
                let len = data.stack.pop()?;
                let (offset, len) = mem_charge(meta, &mut data.memory, offset, len)?;
                if !meta.gas.charge(gas::keccak_cost(len)) {
                    return Err(VmError::OutOfGas);
                }
                let bytes = data.memory.load_slice(offset, len);
                data.stack.push(tape_crypto::keccak256(&bytes).into_u256())?;
            }
            C::FrameState => self.exec_frame_state(byte, meta, data)?,
            C::Stack => exec_stack(byte, pc, meta, data)?,
            C::Memory => self.exec_memory(byte, meta, data)?,
            C::Storage => self.exec_storage(byte, meta, data)?,
            C::Flow => match byte {
                op::STOP => return Ok(Next::End(Ended::Stop)),
                op::JUMP => {
                    let target = data.stack.pop()?;
                    data.pc = check_jump(meta, target)?;
                }
                op::JUMPI => {
                    let target = data.stack.pop()?;
                    let cond = data.stack.pop()?;
                    if !cond.is_zero() {
                        data.pc = check_jump(meta, target)?;
                    }
                }
                op::PC => data.stack.push(U256::from(pc))?,
                op::JUMPDEST => {}
                _ => return Err(VmError::InvalidOpcode(byte)),
            },
            C::Log => {
                if meta.is_static {
                    return Err(VmError::StaticViolation);
                }
                let topic_count = (byte - op::LOG0) as usize;
                let offset = data.stack.pop()?;
                let len = data.stack.pop()?;
                let mut topics = Vec::with_capacity(topic_count);
                for _ in 0..topic_count {
                    topics.push(B256::from(data.stack.pop()?));
                }
                let (offset, len) = mem_charge(meta, &mut data.memory, offset, len)?;
                if !meta.gas.charge(gas::LOG_DATA_BYTE * len as u64) {
                    return Err(VmError::OutOfGas);
                }
                let bytes = data.memory.load_slice(offset, len);
                self.state.log(Log { address: meta.address, topics, data: bytes });
            }
            C::CallReturn => return self.exec_call_return(byte, meta, data),
            C::Invalid => return Err(VmError::InvalidOpcode(byte)),
        }
        Ok(Next::Step)
    }

    fn exec_frame_state(
        &mut self,
        byte: u8,
        meta: &mut FrameMeta,
        data: &mut FrameData,
    ) -> Result<(), VmError> {
        let value = match byte {
            op::ADDRESS => meta.address.into_word(),
            op::ORIGIN => self.origin.into_word(),
            op::CALLER => meta.caller.into_word(),
            op::CALLVALUE => meta.value,
            op::CALLDATASIZE => U256::from(data.input.len()),
            op::CODESIZE => U256::from(meta.code.len()),
            op::GASPRICE => self.gas_price,
            op::RETURNDATASIZE => U256::from(data.ret.len()),
            op::COINBASE => self.env.coinbase.into_word(),
            op::TIMESTAMP => U256::from(self.env.timestamp),
            op::NUMBER => U256::from(self.env.block_number),
            op::PREVRANDAO => self.env.prevrandao.into_u256(),
            op::GASLIMIT => U256::from(self.env.gas_limit),
            op::CHAINID => U256::from(self.env.chain_id),
            op::BASEFEE => self.env.base_fee,
            op::MSIZE => U256::from(data.memory.len()),
            op::GAS => U256::from(meta.gas.remaining()),
            op::SELFBALANCE => self.state.balance(&meta.address),
            op::BALANCE => {
                let addr = Address::from_word(data.stack.pop()?);
                let (info, is_cold) = self.state.load_account(addr);
                self.inspector.state_access(&StateAccess::Account(addr));
                if is_cold {
                    self.charge_local_fetch();
                }
                if !meta.gas.charge(gas::account_access_cost(is_cold)) {
                    return Err(VmError::OutOfGas);
                }
                info.balance
            }
            op::EXTCODESIZE => {
                let addr = Address::from_word(data.stack.pop()?);
                let (info, is_cold) = self.state.load_account(addr);
                self.inspector.state_access(&StateAccess::Account(addr));
                if is_cold {
                    self.charge_local_fetch();
                }
                if !meta.gas.charge(gas::account_access_cost(is_cold)) {
                    return Err(VmError::OutOfGas);
                }
                U256::from(info.code_len)
            }
            op::EXTCODEHASH => {
                let addr = Address::from_word(data.stack.pop()?);
                let (_, is_cold) = self.state.load_account(addr);
                self.inspector.state_access(&StateAccess::Account(addr));
                if is_cold {
                    self.charge_local_fetch();
                }
                if !meta.gas.charge(gas::account_access_cost(is_cold)) {
                    return Err(VmError::OutOfGas);
                }
                self.state.code_hash(&addr).into_u256()
            }
            op::BLOCKHASH => {
                let number = data.stack.pop()?;
                match number.try_into_u64() {
                    Some(n)
                        if n < self.env.block_number && self.env.block_number - n <= 256 =>
                    {
                        self.state.reader().block_hash(n).into_u256()
                    }
                    _ => U256::ZERO,
                }
            }
            other => return Err(VmError::InvalidOpcode(other)),
        };
        data.stack.push(value)?;
        Ok(())
    }

    fn exec_memory(
        &mut self,
        byte: u8,
        meta: &mut FrameMeta,
        data: &mut FrameData,
    ) -> Result<(), VmError> {
        match byte {
            op::MLOAD => {
                let offset = data.stack.pop()?;
                let (offset, _) = mem_charge(meta, &mut data.memory, offset, U256::from(32u64))?;
                let word = data.memory.load_word(offset);
                data.stack.push(word)?;
            }
            op::MSTORE => {
                let offset = data.stack.pop()?;
                let value = data.stack.pop()?;
                let (offset, _) = mem_charge(meta, &mut data.memory, offset, U256::from(32u64))?;
                data.memory.store_word(offset, value);
            }
            op::MSTORE8 => {
                let offset = data.stack.pop()?;
                let value = data.stack.pop()?;
                let (offset, _) = mem_charge(meta, &mut data.memory, offset, U256::ONE)?;
                data.memory.store_byte(offset, value.low_u64() as u8);
            }
            op::MCOPY => {
                let dst = data.stack.pop()?;
                let src = data.stack.pop()?;
                let len = data.stack.pop()?;
                if !len.is_zero() {
                    let far = if dst > src { dst } else { src };
                    let (_, len_usize) = mem_charge(meta, &mut data.memory, far, len)?;
                    if !meta.gas.charge(gas::copy_cost(len_usize)) {
                        return Err(VmError::OutOfGas);
                    }
                    let dst = dst.try_into_usize().ok_or(VmError::MemoryOverflow)?;
                    let src = src.try_into_usize().ok_or(VmError::MemoryOverflow)?;
                    data.memory.copy_within(dst, src, len_usize);
                }
            }
            op::CALLDATALOAD => {
                let offset = data.stack.pop()?;
                let mut word = [0u8; 32];
                if let Some(off) = offset.try_into_usize() {
                    for (i, b) in word.iter_mut().enumerate() {
                        *b = off
                            .checked_add(i)
                            .and_then(|p| data.input.as_bytes().get(p))
                            .copied()
                            .unwrap_or(0);
                    }
                }
                data.stack.push(U256::from_be_bytes(word))?;
            }
            op::CALLDATACOPY => {
                let (dst, src, len) = copy_triplet(meta, data)?;
                let input = std::mem::take(&mut data.input);
                data.memory.store_padded(dst, input.as_bytes(), src, len);
                data.input = input;
            }
            op::CODECOPY => {
                let (dst, src, len) = copy_triplet(meta, data)?;
                let code = Arc::clone(&meta.code);
                data.memory.store_padded(dst, &code, src, len);
            }
            op::EXTCODECOPY => {
                let addr = Address::from_word(data.stack.pop()?);
                let (_, is_cold) = self.state.load_account(addr);
                if is_cold {
                    self.charge_local_fetch();
                }
                if !meta.gas.charge(gas::account_access_cost(is_cold)) {
                    return Err(VmError::OutOfGas);
                }
                let (dst, src, len) = copy_triplet(meta, data)?;
                let code = self.state.code(&addr);
                self.inspector.state_access(&StateAccess::Code(addr, code.len()));
                data.memory.store_padded(dst, &code, src, len);
            }
            op::RETURNDATACOPY => {
                let dst = data.stack.pop()?;
                let src = data.stack.pop()?;
                let len = data.stack.pop()?;
                let src = src.try_into_usize().ok_or(VmError::ReturnDataOutOfBounds)?;
                let len_usize = len.try_into_usize().ok_or(VmError::ReturnDataOutOfBounds)?;
                if src.saturating_add(len_usize) > data.ret.len() {
                    return Err(VmError::ReturnDataOutOfBounds);
                }
                let (dst, len) = mem_charge(meta, &mut data.memory, dst, len)?;
                if !meta.gas.charge(gas::copy_cost(len)) {
                    return Err(VmError::OutOfGas);
                }
                let ret = std::mem::take(&mut data.ret);
                data.memory.store_padded(dst, ret.as_bytes(), src, len);
                data.ret = ret;
            }
            other => return Err(VmError::InvalidOpcode(other)),
        }
        Ok(())
    }

    fn exec_storage(
        &mut self,
        byte: u8,
        meta: &mut FrameMeta,
        data: &mut FrameData,
    ) -> Result<(), VmError> {
        match byte {
            op::SLOAD => {
                let key = data.stack.pop()?;
                let result = self.state.sload(&meta.address, &key);
                self.inspector
                    .state_access(&StateAccess::StorageRead(meta.address, key));
                if result.is_cold {
                    self.charge_local_fetch();
                }
                if !meta.gas.charge(gas::sload_cost(result.is_cold)) {
                    return Err(VmError::OutOfGas);
                }
                data.stack.push(result.value)?;
            }
            op::SSTORE => {
                if meta.is_static {
                    return Err(VmError::StaticViolation);
                }
                if meta.gas.remaining() <= gas::SSTORE_SENTRY {
                    return Err(VmError::OutOfGas);
                }
                let key = data.stack.pop()?;
                let value = data.stack.pop()?;
                let result = self.state.sstore(&meta.address, &key, value);
                self.inspector
                    .state_access(&StateAccess::StorageWrite(meta.address, key, value));
                if result.is_cold {
                    self.charge_local_fetch();
                }
                let (cost, refund) =
                    gas::sstore_cost(result.original, result.current, result.new, result.is_cold);
                if !meta.gas.charge(cost) {
                    return Err(VmError::OutOfGas);
                }
                self.refund += refund;
            }
            op::TLOAD => {
                let key = data.stack.pop()?;
                let value = self.state.tload(&meta.address, &key);
                data.stack.push(value)?;
            }
            op::TSTORE => {
                if meta.is_static {
                    return Err(VmError::StaticViolation);
                }
                let key = data.stack.pop()?;
                let value = data.stack.pop()?;
                self.state.tstore(&meta.address, &key, value);
            }
            other => return Err(VmError::InvalidOpcode(other)),
        }
        Ok(())
    }

    fn exec_call_return(
        &mut self,
        byte: u8,
        meta: &mut FrameMeta,
        data: &mut FrameData,
    ) -> Result<Next, VmError> {
        match byte {
            op::RETURN => {
                let offset = data.stack.pop()?;
                let len = data.stack.pop()?;
                let (offset, len) = mem_charge(meta, &mut data.memory, offset, len)?;
                Ok(Next::End(Ended::Return(data.memory.load_slice(offset, len))))
            }
            op::REVERT => {
                let offset = data.stack.pop()?;
                let len = data.stack.pop()?;
                let (offset, len) = mem_charge(meta, &mut data.memory, offset, len)?;
                Ok(Next::End(Ended::Revert(data.memory.load_slice(offset, len))))
            }
            op::SELFDESTRUCT => {
                if meta.is_static {
                    return Err(VmError::StaticViolation);
                }
                let beneficiary = Address::from_word(data.stack.pop()?);
                let (info, is_cold) = self.state.load_account(beneficiary);
                let mut cost = 0u64;
                if is_cold {
                    cost += gas::COLD_ACCOUNT_ACCESS;
                    self.charge_local_fetch();
                }
                let balance = self.state.balance(&meta.address);
                if info.is_empty() && !balance.is_zero() {
                    cost += gas::SELFDESTRUCT_NEW_ACCOUNT;
                }
                if !meta.gas.charge(cost) {
                    return Err(VmError::OutOfGas);
                }
                self.state.selfdestruct(&meta.address, &beneficiary);
                Ok(Next::End(Ended::SelfDestruct))
            }
            op::CALL | op::CALLCODE | op::DELEGATECALL | op::STATICCALL => {
                self.decode_call(byte, meta, data)
            }
            op::CREATE | op::CREATE2 => self.decode_create(byte, meta, data),
            other => Err(VmError::InvalidOpcode(other)),
        }
    }

    fn decode_call(
        &mut self,
        byte: u8,
        meta: &mut FrameMeta,
        data: &mut FrameData,
    ) -> Result<Next, VmError> {
        let gas_req = data.stack.pop()?;
        let target = Address::from_word(data.stack.pop()?);
        let value = match byte {
            op::CALL | op::CALLCODE => data.stack.pop()?,
            _ => U256::ZERO,
        };
        let in_offset = data.stack.pop()?;
        let in_len = data.stack.pop()?;
        let out_offset = data.stack.pop()?;
        let out_len = data.stack.pop()?;

        if byte == op::CALL && !value.is_zero() && meta.is_static {
            return Err(VmError::StaticViolation);
        }

        let (in_offset, in_len) = mem_charge(meta, &mut data.memory, in_offset, in_len)?;
        let (out_offset, out_len) = mem_charge(meta, &mut data.memory, out_offset, out_len)?;
        let input = data.memory.load_slice(in_offset, in_len);

        let (target_info, is_cold) = self.state.load_account(target);
        if is_cold {
            self.charge_local_fetch();
        }
        if !meta.gas.charge(gas::account_access_cost(is_cold)) {
            return Err(VmError::OutOfGas);
        }

        let mut extra = 0u64;
        let mut stipend = 0u64;
        if !value.is_zero() {
            extra += gas::CALL_VALUE;
            stipend = gas::CALL_STIPEND;
            if byte == op::CALL && target_info.is_empty() && !self.state.exists(target) {
                extra += gas::CALL_NEW_ACCOUNT;
            }
        }
        if !meta.gas.charge(extra) {
            return Err(VmError::OutOfGas);
        }

        let forwardable = meta.gas.forwardable();
        let child_gas = match gas_req.try_into_u64() {
            Some(g) => g.min(forwardable),
            None => forwardable,
        };
        if !meta.gas.charge(child_gas) {
            return Err(VmError::OutOfGas);
        }
        let child_gas = child_gas + stipend;

        if meta.depth >= gas::CALL_DEPTH_LIMIT
            || (!value.is_zero() && self.state.balance(&meta.address) < value)
        {
            meta.gas.reclaim(child_gas - stipend);
            data.ret = MemLike::new(self.config.mem.return_cache);
            data.stack.push(U256::ZERO)?;
            return Ok(Next::Step);
        }

        let msg = CallMsg {
            caller: match byte {
                op::DELEGATECALL => meta.caller,
                _ => meta.address,
            },
            address: match byte {
                op::CALLCODE | op::DELEGATECALL => meta.address,
                _ => target,
            },
            code_address: target,
            value: match byte {
                op::DELEGATECALL => meta.value,
                op::STATICCALL => U256::ZERO,
                _ => value,
            },
            transfers_value: byte == op::CALL,
            input,
            gas: child_gas,
            is_static: meta.is_static || byte == op::STATICCALL,
            depth: meta.depth + 1,
        };
        Ok(Next::Call { msg, out_offset, out_len })
    }

    fn decode_create(
        &mut self,
        byte: u8,
        meta: &mut FrameMeta,
        data: &mut FrameData,
    ) -> Result<Next, VmError> {
        if meta.is_static {
            return Err(VmError::StaticViolation);
        }
        let value = data.stack.pop()?;
        let offset = data.stack.pop()?;
        let len = data.stack.pop()?;
        let salt = if byte == op::CREATE2 { Some(data.stack.pop()?) } else { None };

        let (offset, len) = mem_charge(meta, &mut data.memory, offset, len)?;
        if len > gas::MAX_INITCODE_SIZE {
            return Err(VmError::InitcodeSizeExceeded);
        }
        if !meta.gas.charge(gas::INITCODE_WORD * gas::words(len)) {
            return Err(VmError::OutOfGas);
        }
        if salt.is_some() && !meta.gas.charge(gas::keccak_cost(len)) {
            return Err(VmError::OutOfGas);
        }
        let initcode = data.memory.load_slice(offset, len);

        let child_gas = meta.gas.forwardable();
        if !meta.gas.charge(child_gas) {
            return Err(VmError::OutOfGas);
        }

        if meta.depth >= gas::CALL_DEPTH_LIMIT || self.state.balance(&meta.address) < value {
            meta.gas.reclaim(child_gas);
            data.ret = MemLike::new(self.config.mem.return_cache);
            data.stack.push(U256::ZERO)?;
            return Ok(Next::Step);
        }

        let nonce = self.state.inc_nonce(&meta.address);
        let created = match salt {
            Some(salt) => create2_address(&meta.address, &salt, &initcode),
            None => create_address(&meta.address, nonce),
        };
        Ok(Next::Create { created, value, initcode, gas: child_gas })
    }
}

enum Admitted {
    Pushed,
    Done(CallResult),
}

// ---------------------------------------------------------------------
// Pure instruction helpers (the ALU of the pipeline)
// ---------------------------------------------------------------------

fn exec_arithmetic(byte: u8, meta: &mut FrameMeta, data: &mut FrameData) -> Result<(), VmError> {
    use core::cmp::Ordering;
    let stack = &mut data.stack;
    let shift_amount = |s: U256| s.try_into_u64().map(|v| v.min(256) as u32).unwrap_or(256);
    match byte {
        op::ADD => bin(stack, |a, b| a.wrapping_add(b))?,
        op::MUL => bin(stack, |a, b| a.wrapping_mul(b))?,
        op::SUB => bin(stack, |a, b| a.wrapping_sub(b))?,
        op::DIV => bin(stack, |a, b| a.div_evm(b))?,
        op::SDIV => bin(stack, |a, b| a.sdiv_evm(b))?,
        op::MOD => bin(stack, |a, b| a.rem_evm(b))?,
        op::SMOD => bin(stack, |a, b| a.smod_evm(b))?,
        op::ADDMOD => tri(stack, |a, b, m| a.add_mod(b, m))?,
        op::MULMOD => tri(stack, |a, b, m| a.mul_mod(b, m))?,
        op::EXP => {
            let base = stack.pop()?;
            let exponent = stack.pop()?;
            if !meta.gas.charge(gas::exp_cost(&exponent)) {
                return Err(VmError::OutOfGas);
            }
            stack.push(base.wrapping_pow(exponent))?;
        }
        op::SIGNEXTEND => bin(stack, |b, x| x.sign_extend(b))?,
        op::LT => bin(stack, |a, b| U256::from(a < b))?,
        op::GT => bin(stack, |a, b| U256::from(a > b))?,
        op::SLT => bin(stack, |a, b| U256::from(a.signed_cmp(&b) == Ordering::Less))?,
        op::SGT => bin(stack, |a, b| U256::from(a.signed_cmp(&b) == Ordering::Greater))?,
        op::EQ => bin(stack, |a, b| U256::from(a == b))?,
        op::ISZERO => {
            let a = stack.pop()?;
            stack.push(U256::from(a.is_zero()))?;
        }
        op::AND => bin(stack, |a, b| a & b)?,
        op::OR => bin(stack, |a, b| a | b)?,
        op::XOR => bin(stack, |a, b| a ^ b)?,
        op::NOT => {
            let a = stack.pop()?;
            stack.push(!a)?;
        }
        op::BYTE => bin(stack, |i, x| x.byte_be(i))?,
        op::SHL => bin(stack, |s, v| v.shl_word(shift_amount(s)))?,
        op::SHR => bin(stack, |s, v| v.shr_word(shift_amount(s)))?,
        op::SAR => bin(stack, |s, v| v.sar_word(shift_amount(s)))?,
        other => return Err(VmError::InvalidOpcode(other)),
    }
    Ok(())
}

fn exec_stack(byte: u8, pc: usize, meta: &FrameMeta, data: &mut FrameData) -> Result<(), VmError> {
    match byte {
        op::POP => {
            data.stack.pop()?;
        }
        op::PUSH0 => data.stack.push(U256::ZERO)?,
        _ if opcode::is_push(byte) => {
            let n = opcode::immediate_len(byte);
            let start = (pc + 1).min(meta.code.len());
            let end = (pc + 1 + n).min(meta.code.len());
            let imm = &meta.code[start..end];
            let mut word = [0u8; 32];
            word[32 - n..32 - n + imm.len()].copy_from_slice(imm);
            data.stack.push(U256::from_be_bytes(word))?;
            data.pc = pc + 1 + n;
        }
        _ if (op::DUP1..=op::DUP16).contains(&byte) => {
            data.stack.dup((byte - op::DUP1 + 1) as usize)?;
        }
        _ if (op::SWAP1..=op::SWAP16).contains(&byte) => {
            data.stack.swap((byte - op::SWAP1 + 1) as usize)?;
        }
        other => return Err(VmError::InvalidOpcode(other)),
    }
    Ok(())
}

fn bin(stack: &mut Stack, f: impl FnOnce(U256, U256) -> U256) -> Result<(), VmError> {
    let a = stack.pop()?;
    let b = stack.pop()?;
    stack.push(f(a, b))?;
    Ok(())
}

fn tri(stack: &mut Stack, f: impl FnOnce(U256, U256, U256) -> U256) -> Result<(), VmError> {
    let a = stack.pop()?;
    let b = stack.pop()?;
    let c = stack.pop()?;
    stack.push(f(a, b, c))?;
    Ok(())
}

/// Memory expansion metering, identical to the reference engine's rules.
fn mem_charge(
    meta: &mut FrameMeta,
    memory: &mut MemLike,
    offset: U256,
    len: U256,
) -> Result<(usize, usize), VmError> {
    let len = len.try_into_usize().ok_or(VmError::MemoryOverflow)?;
    if len == 0 {
        return Ok((0, 0));
    }
    let offset = offset.try_into_usize().ok_or(VmError::MemoryOverflow)?;
    let end = offset.checked_add(len).ok_or(VmError::MemoryOverflow)?;
    if end > (1usize << 37) {
        return Err(VmError::MemoryOverflow);
    }
    let cost = gas::memory_expansion_cost(memory.len(), memory.required_size(offset, len));
    if !meta.gas.charge(cost) {
        return Err(VmError::OutOfGas);
    }
    memory.expand(offset, len);
    Ok((offset, len))
}

fn copy_triplet(meta: &mut FrameMeta, data: &mut FrameData) -> Result<(usize, usize, usize), VmError> {
    let dst = data.stack.pop()?;
    let src = data.stack.pop()?;
    let len = data.stack.pop()?;
    let (dst, len) = mem_charge(meta, &mut data.memory, dst, len)?;
    if !meta.gas.charge(gas::copy_cost(len)) {
        return Err(VmError::OutOfGas);
    }
    let src = src.try_into_usize().unwrap_or(usize::MAX);
    Ok((dst, src, len))
}

fn check_jump(meta: &FrameMeta, target: U256) -> Result<usize, VmError> {
    let target = target.try_into_usize().ok_or(VmError::InvalidJump)?;
    if !meta.jump.is_valid(target) {
        return Err(VmError::InvalidJump);
    }
    Ok(target)
}
