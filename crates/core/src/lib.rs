//! # hardtape
//!
//! The HarDTAPE pre-execution service (paper §III–§IV): a
//! hardware-dedicated trusted transaction pre-executor reproduced on
//! simulated hardware.
//!
//! One [`HarDTape`] device runs the full Fig. 3 lifecycle:
//!
//! 1. secure boot + remote attestation ([`HarDTape::connect_user`]),
//! 2. exclusive HEVM assignment per bundle,
//! 3. execution over the 3-layer memory hierarchy with the selected
//!    [`SecurityConfig`] (`-raw` … `-full`),
//! 4. ORAM-protected world-state queries,
//! 5. signed, encrypted trace reporting ([`BundleReport`]),
//! 6. proof-verified block synchronization ([`HarDTape::sync_block`]).
//!
//! # Examples
//!
//! ```
//! use hardtape::{Bundle, HarDTape, SecurityConfig, ServiceConfig};
//! use tape_evm::{Env, Transaction};
//! use tape_primitives::{Address, U256};
//! use tape_state::{Account, InMemoryState};
//!
//! let mut genesis = InMemoryState::new();
//! let user = Address::from_low_u64(1);
//! genesis.put_account(user, Account::with_balance(U256::from(u64::MAX)));
//!
//! let mut device = HarDTape::new(
//!     ServiceConfig::at_level(SecurityConfig::Es),
//!     Env::default(),
//!     &genesis,
//! )?;
//! let mut session = device.connect_user(b"doc user")?;
//! let bundle = Bundle::single(Transaction::transfer(
//!     user,
//!     Address::from_low_u64(0xB0B),
//!     U256::from(5u64),
//! ));
//! let report = device.pre_execute(&mut session, &bundle)?;
//! assert!(report.results[0].success);
//! assert!(report.signature.is_some());
//! # Ok::<(), hardtape::ServiceError>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod gateway;
mod reader;
pub mod scalability;
mod service;

pub use config::{BreakerConfig, GatewayConfig, SecurityConfig};
pub use gateway::{Completion, FailoverEntry, Gateway, GatewayError, GatewayStats, SyncReport};
pub use reader::HybridState;
pub use scalability::{estimate, ScalabilityReport, ETHEREUM_TPS};
pub use service::{
    Bundle, BundlePause, BundleReport, ForkPoint, HarDTape, PreExecOutcome, ServiceConfig,
    ServiceError, StalenessBound, SyncOutcome, UserHandle,
};
