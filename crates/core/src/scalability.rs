//! The §VI-D scalability estimator: chip throughput vs Ethereum's rate,
//! and how many full-load HEVMs one ORAM server sustains.

use tape_sim::Nanos;

/// Ethereum Mainnet's approximate throughput (paper: ~200 txs / 12 s).
pub const ETHEREUM_TPS: f64 = 17.0;

/// The scalability estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalabilityReport {
    /// Average end-to-end time per transaction.
    pub per_tx_ns: Nanos,
    /// HEVM cores per chip.
    pub hevm_count: usize,
    /// Transactions per second one chip sustains
    /// (`hevm_count / per_tx_seconds`).
    pub chip_tps: f64,
    /// `true` when one chip keeps up with Mainnet (needs ≥ 17 tx/s).
    pub keeps_up_with_ethereum: bool,
    /// ORAM server processing time per query.
    pub server_op_ns: Nanos,
    /// Average gap between queries from one full-load HEVM.
    pub query_gap_ns: Nanos,
    /// Full-load HEVMs one ORAM server supports
    /// (`⌊query_gap / server_op⌋`).
    pub max_hevms_per_server: u64,
    /// Chips one server supports (`max_hevms / hevm_count`).
    pub max_chips_per_server: u64,
}

/// Computes the report from measured quantities.
pub fn estimate(
    per_tx_ns: Nanos,
    hevm_count: usize,
    server_op_ns: Nanos,
    query_gap_ns: Nanos,
) -> ScalabilityReport {
    let chip_tps = hevm_count as f64 / (per_tx_ns as f64 / 1e9);
    let max_hevms_per_server = query_gap_ns.checked_div(server_op_ns).unwrap_or(u64::MAX);
    ScalabilityReport {
        per_tx_ns,
        hevm_count,
        chip_tps,
        keeps_up_with_ethereum: chip_tps >= ETHEREUM_TPS,
        server_op_ns,
        query_gap_ns,
        max_hevms_per_server,
        max_chips_per_server: max_hevms_per_server / hevm_count.max(1) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_reproduce() {
        // Paper §VI-D: 164.4 ms per tx, 3 HEVMs -> ~18 tx/s >= 17;
        // 25 µs server op, 630 µs gap -> 25 HEVMs per server.
        let report = estimate(164_400_000, 3, 25_000, 630_000);
        assert!((report.chip_tps - 18.25).abs() < 0.1);
        assert!(report.keeps_up_with_ethereum);
        assert_eq!(report.max_hevms_per_server, 25);
        assert_eq!(report.max_chips_per_server, 8);
    }

    #[test]
    fn slow_chip_fails_to_keep_up() {
        let report = estimate(600_000_000, 3, 25_000, 630_000);
        assert!(!report.keeps_up_with_ethereum);
    }

    #[test]
    fn zero_server_op_is_unbounded() {
        let report = estimate(1, 1, 0, 100);
        assert_eq!(report.max_hevms_per_server, u64::MAX);
    }

    #[test]
    fn zero_cores_yields_zero_throughput() {
        let report = estimate(164_400_000, 0, 25_000, 630_000);
        assert_eq!(report.chip_tps, 0.0);
        assert!(!report.keeps_up_with_ethereum);
        // No division by the zero core count: chips-per-server clamps.
        assert_eq!(report.max_chips_per_server, report.max_hevms_per_server);
    }

    #[test]
    fn zero_query_gap_supports_no_hevms() {
        // A server that is queried continuously can't host even one
        // full-load HEVM.
        let report = estimate(164_400_000, 3, 25_000, 0);
        assert_eq!(report.max_hevms_per_server, 0);
        assert_eq!(report.max_chips_per_server, 0);
        assert!(report.keeps_up_with_ethereum); // chip math unaffected
    }

    #[test]
    fn chip_tps_is_monotone_in_core_count() {
        tape_crypto::prop::check("chip_tps monotone in hevm_count", 256, |g| {
            let per_tx_ns = g.range(1, 10_000_000_000);
            let cores = g.range(0, 4096) as usize;
            let server_op_ns = g.below(1_000_000);
            let query_gap_ns = g.below(10_000_000);
            let lo = estimate(per_tx_ns, cores, server_op_ns, query_gap_ns);
            let hi = estimate(per_tx_ns, cores + 1, server_op_ns, query_gap_ns);
            assert!(
                hi.chip_tps > lo.chip_tps,
                "adding a core must raise throughput: {} cores {} tps vs {} cores {} tps",
                cores,
                lo.chip_tps,
                cores + 1,
                hi.chip_tps,
            );
            // The server-side bound is independent of the chip's core
            // count in HEVM units...
            assert_eq!(hi.max_hevms_per_server, lo.max_hevms_per_server);
            // ...so in chip units it can only shrink as chips widen.
            assert!(hi.max_chips_per_server <= lo.max_chips_per_server);
        });
    }
}
