//! The hybrid world-state reader: routes each query class to the ORAM or
//! to locally prefetched (untrusted) memory depending on the security
//! configuration — realizing the `-raw`/`-ESO`/`-full` distinctions of
//! Fig. 4.

use crate::config::SecurityConfig;
use std::sync::Arc;
use tape_oram::ObliviousState;
use tape_primitives::{Address, B256, U256};
use tape_state::{AccountInfo, InMemoryState, StateReader};

/// A reader that splits queries between the local mirror and the ORAM.
///
/// * `Raw`/`E`/`Es` — everything from the local mirror (the paper
///   prefetches the evaluation set into untrusted memory for these).
/// * `Eso` — accounts and storage (K-V queries) via ORAM; code local.
/// * `Full` — everything via ORAM.
pub struct HybridState<'a> {
    local: &'a InMemoryState,
    oram: Option<&'a ObliviousState>,
    config: SecurityConfig,
}

impl core::fmt::Debug for HybridState<'_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("HybridState")
            .field("config", &self.config)
            .field("oram", &self.oram.is_some())
            .finish()
    }
}

impl<'a> HybridState<'a> {
    /// Builds a reader for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration requires an ORAM but none is given.
    pub fn new(
        config: SecurityConfig,
        local: &'a InMemoryState,
        oram: Option<&'a ObliviousState>,
    ) -> Self {
        assert!(
            !config.oram_storage() || oram.is_some(),
            "{config} requires an ORAM backend"
        );
        HybridState { local, oram, config }
    }

    fn oram(&self) -> &ObliviousState {
        self.oram.expect("checked in constructor")
    }
}

impl StateReader for HybridState<'_> {
    fn account(&self, address: &Address) -> Option<AccountInfo> {
        if self.config.oram_storage() {
            self.oram().account(address)
        } else {
            self.local.account(address)
        }
    }

    fn code(&self, address: &Address) -> Arc<Vec<u8>> {
        if self.config.oram_code() {
            self.oram().code(address)
        } else {
            self.local.code(address)
        }
    }

    fn storage(&self, address: &Address, key: &U256) -> U256 {
        if self.config.oram_storage() {
            self.oram().storage(address, key)
        } else {
            self.local.storage(address, key)
        }
    }

    fn block_hash(&self, number: u64) -> B256 {
        // Block hashes are public chain data; always local.
        self.local.block_hash(number)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tape_crypto::SecureRng;
    use tape_oram::{OramClient, OramConfig, OramServer};
    use tape_sim::{Clock, CostModel};
    use tape_state::Account;

    fn oram_with(addr: Address, account: &Account) -> ObliviousState {
        let config = OramConfig { block_size: 1024, bucket_capacity: 4, height: 8 };
        let server = OramServer::new(config.clone());
        let client = OramClient::new(config, &[1u8; 16], SecureRng::from_seed(b"hybrid"));
        let state = ObliviousState::new(client, server, Clock::new(), CostModel::default());
        state.sync_account(&addr, account).unwrap();
        state
    }

    #[test]
    fn raw_reads_local_only() {
        let mut local = InMemoryState::new();
        let addr = Address::from_low_u64(1);
        local.put_account(addr, Account::with_balance(U256::from(7u64)));
        let reader = HybridState::new(SecurityConfig::Raw, &local, None);
        assert_eq!(reader.account(&addr).unwrap().balance, U256::from(7u64));
    }

    #[test]
    fn eso_routes_kv_to_oram_code_local() {
        let addr = Address::from_low_u64(1);
        let mut oram_account = Account::with_balance(U256::from(42u64));
        oram_account.storage.insert(U256::ONE, U256::from(9u64));
        let oram = oram_with(addr, &oram_account);

        // The local mirror holds the code (and a *different* balance so
        // we can tell who answered).
        let mut local = InMemoryState::new();
        let mut local_account = Account::with_code(vec![0xAB; 100]);
        local_account.balance = U256::from(1u64);
        local.put_account(addr, local_account);

        let reader = HybridState::new(SecurityConfig::Eso, &local, Some(&oram));
        assert_eq!(reader.account(&addr).unwrap().balance, U256::from(42u64)); // ORAM
        assert_eq!(reader.storage(&addr, &U256::ONE), U256::from(9u64)); // ORAM
        assert_eq!(reader.code(&addr).len(), 100); // local
        let stats = oram.stats();
        assert!(stats.kv_queries >= 2);
        assert_eq!(stats.code_queries, 0);
    }

    #[test]
    fn full_routes_everything_to_oram() {
        let addr = Address::from_low_u64(1);
        let mut account = Account::with_code(vec![0xCD; 2000]);
        account.balance = U256::from(5u64);
        let oram = oram_with(addr, &account);
        let local = InMemoryState::new(); // empty: proves nothing is local

        let reader = HybridState::new(SecurityConfig::Full, &local, Some(&oram));
        assert_eq!(reader.account(&addr).unwrap().balance, U256::from(5u64));
        assert_eq!(reader.code(&addr).len(), 2000);
        assert!(oram.stats().code_queries >= 2);
    }

    #[test]
    #[should_panic(expected = "requires an ORAM")]
    fn oram_config_without_oram_panics() {
        let local = InMemoryState::new();
        let _ = HybridState::new(SecurityConfig::Full, &local, None);
    }
}
