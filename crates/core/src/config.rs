//! Security configurations: the paper's `-raw`/`-E`/`-ES`/`-ESO`/`-full`
//! ladder (Fig. 4). Each level adds one protection on top of the last;
//! the SP deploys `Full`. Also the gateway's overload-policy knobs
//! ([`GatewayConfig`]): how much demand is admitted, how long admitted
//! work stays fresh, and when the full-node circuit breaker trips.

use crate::scalability::ScalabilityReport;
use tape_node::RetryPolicy;
use tape_sim::Nanos;

/// The cumulative security-feature ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SecurityConfig {
    /// All off-chip data protections disabled (baseline HEVM).
    Raw,
    /// + AES-GCM encryption of user inputs and returned traces.
    E,
    /// + ECDSA signature/verification of bundles.
    Es,
    /// + Path ORAM for storage and account (K-V style) queries.
    Eso,
    /// + Path ORAM for contract bytecode too — the production setting.
    Full,
}

impl SecurityConfig {
    /// All five configurations in the Fig. 4 order.
    pub const ALL: [SecurityConfig; 5] = [
        SecurityConfig::Raw,
        SecurityConfig::E,
        SecurityConfig::Es,
        SecurityConfig::Eso,
        SecurityConfig::Full,
    ];

    /// The paper's label for the configuration.
    pub fn label(&self) -> &'static str {
        match self {
            SecurityConfig::Raw => "-raw",
            SecurityConfig::E => "-E",
            SecurityConfig::Es => "-ES",
            SecurityConfig::Eso => "-ESO",
            SecurityConfig::Full => "-full",
        }
    }

    /// AES-GCM on user inputs and traces.
    pub fn encryption(&self) -> bool {
        !matches!(self, SecurityConfig::Raw)
    }

    /// ECDSA bundle signatures.
    pub fn signature(&self) -> bool {
        matches!(self, SecurityConfig::Es | SecurityConfig::Eso | SecurityConfig::Full)
    }

    /// K-V queries (accounts + storage) through the ORAM.
    pub fn oram_storage(&self) -> bool {
        matches!(self, SecurityConfig::Eso | SecurityConfig::Full)
    }

    /// Code queries through the ORAM.
    pub fn oram_code(&self) -> bool {
        matches!(self, SecurityConfig::Full)
    }
}

impl core::fmt::Display for SecurityConfig {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// Circuit-breaker policy for the full-node path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failed syncs before the breaker opens.
    pub failure_threshold: u32,
    /// Virtual time the breaker stays open before a half-open probe.
    pub cooldown_ns: Nanos,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        // Three strikes (matching the HEVM core-quarantine discipline),
        // then back off for one mainnet block interval of virtual time.
        BreakerConfig { failure_threshold: 3, cooldown_ns: 12_000_000_000 }
    }
}

/// Overload policy for the multi-tenant gateway: what gets admitted,
/// how long it stays fresh, and how tenants share the HEVM pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatewayConfig {
    /// Per-tenant bounded-FIFO depth.
    pub queue_depth: usize,
    /// Global cap on simultaneously queued bundles across all tenants
    /// (the admission budget; cores × queue depth when derived from a
    /// [`ScalabilityReport`]).
    pub admission_budget: usize,
    /// Virtual-time budget from admission to dequeue: work older than
    /// this is shed before it wastes a core.
    pub deadline_ns: Nanos,
    /// Deficit-round-robin quantum (cost units credited per round; a
    /// bundle costs its transaction count).
    pub quantum: u64,
    /// Estimated service time per bundle, used to size `retry_after`
    /// hints on shed load.
    pub per_bundle_estimate_ns: Nanos,
    /// Full-node circuit-breaker policy.
    pub breaker: BreakerConfig,
    /// Per-sync retry discipline (backoff inside one sync attempt).
    pub sync_retry: RetryPolicy,
    /// When a reorg orphans the block a queued bundle was admitted
    /// against, re-run admission against the new head instead of
    /// shedding it outright. Shedding (false) is the conservative
    /// policy: the tenant is told exactly why via a typed error.
    pub revalidate_on_reorg: bool,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            queue_depth: 8,
            // The default chip has 3 HEVM cores.
            admission_budget: 3 * 8,
            // Generous default: the ServiceConfig watchdog (30 virtual
            // seconds) per queue slot a bundle may wait behind.
            deadline_ns: 8 * 30_000_000_000,
            quantum: 1,
            // Paper §VI-D: 164.4 ms per transaction at `-full`.
            per_bundle_estimate_ns: 164_400_000,
            breaker: BreakerConfig::default(),
            sync_retry: RetryPolicy::default(),
            revalidate_on_reorg: true,
        }
    }
}

impl GatewayConfig {
    /// Derives the admission policy from a measured
    /// [`ScalabilityReport`]: the global budget is cores × queue depth,
    /// the per-bundle estimate is the measured per-transaction time,
    /// and the deadline is the time to drain a full backlog through the
    /// chip (so an admitted bundle is only shed when the gateway could
    /// not have reached it in time at measured throughput).
    pub fn from_report(report: &ScalabilityReport, queue_depth: usize) -> Self {
        let admission_budget = report.hevm_count.max(1) * queue_depth;
        GatewayConfig {
            queue_depth,
            admission_budget,
            deadline_ns: report
                .per_tx_ns
                .saturating_mul(admission_budget as u64)
                .max(1),
            per_bundle_estimate_ns: report.per_tx_ns.max(1),
            ..GatewayConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_cumulative() {
        use SecurityConfig::*;
        let features = |c: SecurityConfig| {
            [c.encryption(), c.signature(), c.oram_storage(), c.oram_code()]
        };
        assert_eq!(features(Raw), [false, false, false, false]);
        assert_eq!(features(E), [true, false, false, false]);
        assert_eq!(features(Es), [true, true, false, false]);
        assert_eq!(features(Eso), [true, true, true, false]);
        assert_eq!(features(Full), [true, true, true, true]);
        // Each level is a superset of the previous.
        for pair in SecurityConfig::ALL.windows(2) {
            for i in 0..4 {
                assert!(features(pair[0])[i] <= features(pair[1])[i]);
            }
        }
    }

    #[test]
    fn labels_match_paper() {
        let labels: Vec<&str> = SecurityConfig::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels, vec!["-raw", "-E", "-ES", "-ESO", "-full"]);
    }

    #[test]
    fn gateway_config_derives_from_scalability_report() {
        // Paper §VI-D numbers: 164.4 ms per tx, 3 HEVMs.
        let report = crate::scalability::estimate(164_400_000, 3, 25_000, 630_000);
        let config = GatewayConfig::from_report(&report, 8);
        assert_eq!(config.admission_budget, 24, "cores x queue depth");
        assert_eq!(config.per_bundle_estimate_ns, 164_400_000);
        assert_eq!(config.deadline_ns, 164_400_000 * 24, "full-backlog drain time");
    }

    #[test]
    fn gateway_config_survives_degenerate_report() {
        // A zero-core, zero-time report must still produce a usable
        // (non-zero) policy rather than a divide-by-zero or a gateway
        // that admits nothing and sheds everything instantly.
        let report = crate::scalability::estimate(0, 0, 0, 0);
        let config = GatewayConfig::from_report(&report, 4);
        assert_eq!(config.admission_budget, 4);
        assert!(config.deadline_ns >= 1);
        assert!(config.per_bundle_estimate_ns >= 1);
    }
}
