//! Security configurations: the paper's `-raw`/`-E`/`-ES`/`-ESO`/`-full`
//! ladder (Fig. 4). Each level adds one protection on top of the last;
//! the SP deploys `Full`.

/// The cumulative security-feature ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SecurityConfig {
    /// All off-chip data protections disabled (baseline HEVM).
    Raw,
    /// + AES-GCM encryption of user inputs and returned traces.
    E,
    /// + ECDSA signature/verification of bundles.
    Es,
    /// + Path ORAM for storage and account (K-V style) queries.
    Eso,
    /// + Path ORAM for contract bytecode too — the production setting.
    Full,
}

impl SecurityConfig {
    /// All five configurations in the Fig. 4 order.
    pub const ALL: [SecurityConfig; 5] = [
        SecurityConfig::Raw,
        SecurityConfig::E,
        SecurityConfig::Es,
        SecurityConfig::Eso,
        SecurityConfig::Full,
    ];

    /// The paper's label for the configuration.
    pub fn label(&self) -> &'static str {
        match self {
            SecurityConfig::Raw => "-raw",
            SecurityConfig::E => "-E",
            SecurityConfig::Es => "-ES",
            SecurityConfig::Eso => "-ESO",
            SecurityConfig::Full => "-full",
        }
    }

    /// AES-GCM on user inputs and traces.
    pub fn encryption(&self) -> bool {
        !matches!(self, SecurityConfig::Raw)
    }

    /// ECDSA bundle signatures.
    pub fn signature(&self) -> bool {
        matches!(self, SecurityConfig::Es | SecurityConfig::Eso | SecurityConfig::Full)
    }

    /// K-V queries (accounts + storage) through the ORAM.
    pub fn oram_storage(&self) -> bool {
        matches!(self, SecurityConfig::Eso | SecurityConfig::Full)
    }

    /// Code queries through the ORAM.
    pub fn oram_code(&self) -> bool {
        matches!(self, SecurityConfig::Full)
    }
}

impl core::fmt::Display for SecurityConfig {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_cumulative() {
        use SecurityConfig::*;
        let features = |c: SecurityConfig| {
            [c.encryption(), c.signature(), c.oram_storage(), c.oram_code()]
        };
        assert_eq!(features(Raw), [false, false, false, false]);
        assert_eq!(features(E), [true, false, false, false]);
        assert_eq!(features(Es), [true, true, false, false]);
        assert_eq!(features(Eso), [true, true, true, false]);
        assert_eq!(features(Full), [true, true, true, true]);
        // Each level is a superset of the previous.
        for pair in SecurityConfig::ALL.windows(2) {
            for i in 0..4 {
                assert!(features(pair[0])[i] <= features(pair[1])[i]);
            }
        }
    }

    #[test]
    fn labels_match_paper() {
        let labels: Vec<&str> = SecurityConfig::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels, vec!["-raw", "-E", "-ES", "-ESO", "-full"]);
    }
}
