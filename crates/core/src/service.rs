//! The pre-execution service: the full lifecycle of paper Fig. 3 —
//! boot, attestation, secure channel, bundle execution on a dedicated
//! HEVM, trace signing, release, and block synchronization.

use crate::config::SecurityConfig;
use crate::reader::HybridState;
use std::sync::Arc;
use tape_analysis::{AnalysisConfig, AnalysisReject, CodeAnalysis, Limits, LintFinding};
use tape_crypto::{PublicKey, SecretKey, SecureRng, Signature};
use tape_evm::{Env, Transaction, TxResult};
use tape_hevm::{Checkpoint, Hevm, HevmAbort, HevmConfig, HevmStats, SliceOutcome};
use tape_node::{BlockFeed, BlockHeader, FeedError, FeedSet, RetryPolicy, StateDelta};
use tape_oram::{ObliviousState, OramClient, OramConfig, OramError, OramServer};
use tape_primitives::{rlp, Address, B256};
use tape_sim::fault::{FaultKind, FaultPlan, FaultSite};
use tape_sim::telemetry::{
    CounterId, GaugeId, HistId, PhaseKind, Telemetry, TelemetryEvent,
};
use tape_sim::{Clock, CostModel, Nanos};
use tape_state::{InMemoryState, StateChanges, UndoDelta, UndoRing};
use tape_tee::attestation::{session_key, Attester, Manufacturer, Verifier};
use tape_tee::channel::{sign_bundle, verify_bundle, Channel};
use tape_tee::hypervisor::{Hypervisor, SlotError};

/// Service deployment parameters.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The security-feature ladder position.
    pub security: SecurityConfig,
    /// HEVM memory/timing configuration.
    pub hevm: HevmConfig,
    /// ORAM tree height (ignored for non-ORAM configurations).
    pub oram_height: u32,
    /// HEVM cores per chip (the XCZU15EV fits 3).
    pub hevm_count: usize,
    /// Deterministic seed for all device randomness.
    pub seed: u64,
    /// Deepest reorg the device will follow: a winning branch forking
    /// more than this many blocks below the head is refused with
    /// [`ServiceError::FinalityViolation`].
    pub finality_depth: u64,
    /// Block deltas retained for in-place rollback (the undo ring).
    /// Must be at least `finality_depth`, or deep-but-legal reorgs die
    /// on an exhausted window.
    pub undo_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        // Per-bundle watchdog: honest bundles finish in well under 30
        // virtual seconds; anything longer is a runaway execution and
        // gets aborted so the core returns to the pool.
        let hevm =
            HevmConfig { watchdog_ns: Some(30_000_000_000), ..HevmConfig::default() };
        ServiceConfig {
            security: SecurityConfig::Full,
            hevm,
            oram_height: 14,
            hevm_count: 3,
            seed: 0x7A9E,
            finality_depth: 8,
            undo_capacity: 16,
        }
    }
}

impl ServiceConfig {
    /// A configuration at a given security level with defaults otherwise.
    pub fn at_level(security: SecurityConfig) -> Self {
        ServiceConfig { security, ..Default::default() }
    }
}

/// A transaction bundle submitted by a user.
#[derive(Debug, Clone, Default)]
pub struct Bundle {
    /// The transactions to simulate, in order.
    pub transactions: Vec<Transaction>,
}

impl Bundle {
    /// A bundle of one transaction (the paper's Fig. 4 methodology).
    pub fn single(tx: Transaction) -> Self {
        Bundle { transactions: vec![tx] }
    }

    /// Canonical byte encoding: the full transaction bodies — this is
    /// what travels over the secure channel and what the user signs.
    pub fn encode(&self) -> Vec<u8> {
        let mut items = Vec::new();
        for tx in &self.transactions {
            items.push(rlp::encode_address(&tx.from));
            items.push(match &tx.to {
                Some(to) => rlp::encode_address(to),
                None => rlp::encode_bytes(&[]),
            });
            items.push(rlp::encode_u256(&tx.value));
            items.push(rlp::encode_bytes(&tx.data));
            items.push(rlp::encode_u64(tx.gas_limit));
            items.push(rlp::encode_u256(&tx.gas_price));
        }
        rlp::encode_list(&items)
    }
}

/// How stale the world state behind a report may be, measured against
/// the last successfully attested head.
///
/// Stamped onto a [`BundleReport`] by the gateway whenever the
/// block-feed circuit breaker is not closed: the device keeps serving
/// against its last verified head, but the user gets an explicit bound
/// instead of a silent lie about freshness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StalenessBound {
    /// The last attested head the bundle executed against (`None` when
    /// no block was ever synchronized).
    pub head: Option<B256>,
    /// Virtual time elapsed since that head was attested (since boot
    /// when `head` is `None`).
    pub age_ns: Nanos,
    /// When the degradation was caused by a reorg, the verified fork
    /// point the chain rolled back to; the world state behind the
    /// report is canonical only up to this block.
    pub fork_point: Option<ForkPoint>,
}

/// A verified position on the chain: the common ancestor a reorg rolled
/// the world state back to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForkPoint {
    /// The fork-point block number.
    pub height: u64,
    /// The fork-point block hash.
    pub hash: B256,
}

/// The outcome of one [`HarDTape::sync_from_feeds`] round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncOutcome {
    /// The quorum's head is already the device's head.
    AlreadySynced,
    /// The head extended the device's chain by `blocks` blocks.
    Advanced {
        /// Blocks applied (1 for a plain head sync, more for catch-up).
        blocks: usize,
    },
    /// The quorum's head lives on a different branch: the device rolled
    /// back to the fork point and replayed the winning branch.
    Reorged {
        /// The common ancestor the world state was rolled back to.
        fork: ForkPoint,
        /// Blocks unapplied below the old head.
        depth: u64,
        /// Hashes of the abandoned blocks, newest first.
        orphaned: Vec<B256>,
        /// The newly adopted head hash.
        adopted: B256,
    },
}

/// The per-bundle report returned to the user: per-transaction results
/// (ReturnData, gas, logs), the accumulated state modifications, timing,
/// and the device signature.
#[derive(Debug, Clone)]
pub struct BundleReport {
    /// Per-transaction outcomes.
    pub results: Vec<TxResult>,
    /// Accumulated world-state modifications of the whole bundle.
    pub changes: StateChanges,
    /// Virtual time consumed per transaction.
    pub per_tx_ns: Vec<Nanos>,
    /// End-to-end virtual time for the bundle (SP receive → trace sent).
    pub total_ns: Nanos,
    /// Device signature over the trace (`-ES` and above).
    pub signature: Option<Signature>,
    /// HEVM execution statistics.
    pub hevm_stats: HevmStats,
    /// Explicit staleness bound, present when the bundle was served
    /// while block synchronization was degraded (feed breaker open).
    pub staleness: Option<StalenessBound>,
    /// Secret-dependency lint findings from the static pass over every
    /// top-level callee: CALLDATA-derived storage keys, memory offsets,
    /// or branches. Sorted by `(address, finding)` so the encoding —
    /// and therefore the device signature — is deterministic.
    pub lints: Vec<(Address, LintFinding)>,
}

impl BundleReport {
    /// Canonical encoding of the trace (the signed payload). The device
    /// signature must commit to *every* reported field — outputs, logs
    /// (topics included), and all state changes — or the SP could tamper
    /// with the unsigned remainder.
    pub fn encode(&self) -> Vec<u8> {
        let mut items = Vec::new();
        for r in &self.results {
            items.push(rlp::encode_u64(r.success as u64));
            items.push(rlp::encode_u64(r.gas_used));
            items.push(rlp::encode_bytes(&r.output));
            for log in &r.logs {
                items.push(rlp::encode_address(&log.address));
                for topic in &log.topics {
                    items.push(rlp::encode_b256(topic));
                }
                items.push(rlp::encode_bytes(&log.data));
            }
        }
        for (addr, key, value) in &self.changes.storage {
            items.push(rlp::encode_address(addr));
            items.push(rlp::encode_u256(key));
            items.push(rlp::encode_u256(value));
        }
        for (addr, before, after) in &self.changes.balances {
            items.push(rlp::encode_address(addr));
            items.push(rlp::encode_u256(before));
            items.push(rlp::encode_u256(after));
        }
        for (addr, before, after) in &self.changes.nonces {
            items.push(rlp::encode_address(addr));
            items.push(rlp::encode_u64(*before));
            items.push(rlp::encode_u64(*after));
        }
        for addr in &self.changes.new_contracts {
            items.push(rlp::encode_address(addr));
        }
        for addr in &self.changes.selfdestructs {
            items.push(rlp::encode_address(addr));
        }
        for (addr, finding) in &self.lints {
            items.push(rlp::encode_address(addr));
            items.push(rlp::encode_u64(u64::from(finding.pc)));
            items.push(rlp::encode_bytes(finding.kind.to_string().as_bytes()));
        }
        rlp::encode_list(&items)
    }
}

/// How one preemptible pre-execution call ended.
// Variant sizes differ (a pause embeds the full checkpoint), but the
// outcome is a transient return value consumed at the call site —
// never stored in bulk — so boxing would only add an allocation per
// segment yield on the preemption hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum PreExecOutcome {
    /// The bundle ran to completion; the report is final and signed.
    Done(BundleReport),
    /// The current transaction's gas slice ran out. The core has been
    /// released; pass the pause back to
    /// [`HarDTape::pre_execute_preemptible`] to run the next segment.
    Preempted(BundlePause),
}

/// A paused, partially executed bundle: the engine's typed
/// [`Checkpoint`] plus the bundle-level progress (results of completed
/// transactions, per-transaction timing, lints, and the phase clock).
///
/// Deliberately *not* `Clone` — a pause resumes exactly once, which is
/// what the gateway's exactly-once accounting for preempted bundles
/// leans on. Dropping a pause discards the bundle cleanly (the journal
/// overlay simply evaporates).
#[derive(Debug)]
pub struct BundlePause {
    checkpoint: Checkpoint,
    hevm_config: HevmConfig,
    results: Vec<TxResult>,
    per_tx: Vec<Nanos>,
    /// Index of the transaction the checkpoint pauses.
    tx_index: usize,
    /// Execution time already spent on the paused transaction.
    tx_elapsed: Nanos,
    lints: Vec<(Address, LintFinding)>,
    /// Virtual time the bundle entered the service (for `total_ns`).
    started: Nanos,
    /// The submitting session; resume is refused for any other.
    session: u64,
}

impl BundlePause {
    /// 1-based index of the segment that yielded.
    pub fn segments(&self) -> u32 {
        self.checkpoint.segment()
    }

    /// Gas left unexecuted in the paused transaction plus the gas
    /// limits of the bundle's not-yet-started transactions: the basis
    /// for remaining-segment estimates (gateway `retry_after` hints).
    pub fn remaining_gas(&self, bundle: &Bundle) -> u64 {
        let rest: u64 = bundle
            .transactions
            .iter()
            .skip(self.tx_index + 1)
            .map(|tx| tx.gas_limit)
            .sum();
        self.checkpoint.remaining_gas().saturating_add(rest)
    }

    /// The session that submitted the paused bundle.
    pub fn session(&self) -> u64 {
        self.session
    }
}

/// How one `run_bundle_segment` call ended (internal).
// Same transient-return-value argument as `PreExecOutcome` for the
// variant-size disparity.
#[allow(clippy::type_complexity, clippy::large_enum_variant)]
enum SegmentOutcome {
    /// Every transaction retired; the bundle-level artifacts follow.
    Finished(Vec<TxResult>, StateChanges, Vec<Nanos>, HevmStats, Vec<(Address, LintFinding)>),
    /// The current transaction's gas slice ran out mid-execution.
    Yielded(BundlePause),
}

/// Service-level failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Attestation failed on the user side.
    Attestation(tape_tee::AttestError),
    /// Secure-channel failure.
    Channel(tape_tee::ChannelError),
    /// No idle HEVM.
    Busy,
    /// The HEVM aborted the bundle.
    Hevm(HevmAbort),
    /// A block-sync delta failed verification (attack A6).
    BadDelta(tape_node::DeltaError),
    /// Delta/header mismatch.
    HeaderMismatch,
    /// An ORAM integrity violation (tampered bucket, wrong path served,
    /// dropped write-back — attacks A5/A6 on the storage side).
    Oram(OramError),
    /// The session was revoked after an integrity failure; the user must
    /// re-attest (a fresh [`HarDTape::connect_user`]) before submitting
    /// further bundles.
    ReattestationRequired,
    /// The full node stayed unreachable through every retry.
    NodeUnavailable,
    /// The sync retry policy allows zero attempts — nothing was fetched.
    NoRetryBudget,
    /// Every HEVM core is quarantined; the device cannot serve bundles.
    AllCoresQuarantined,
    /// The static analyzer refused the bundle at admission: the callee's
    /// sound stack bound cannot fit the Layer-1/Layer-2 capacities, so
    /// execution would fault mid-bundle on a hardware limit.
    AnalysisReject {
        /// The callee contract that failed admission.
        address: Address,
        /// The typed admission verdict.
        reason: AnalysisReject,
    },
    /// A verified head does not extend the device's chain: the block at
    /// `height` is on a different branch. A single-feed sync refuses it
    /// outright; the multi-feed path resolves it via fork-choice,
    /// rollback, and replay.
    ReorgDetected {
        /// The head the device expected the new block to build on.
        expected: B256,
        /// The conflicting hash actually served (the block itself at or
        /// below the device's height, or its non-matching parent).
        got: B256,
        /// The height the conflict was observed at.
        height: u64,
    },
    /// A feed served two verified sibling heads at the same height —
    /// cryptographic evidence of Byzantine equivocation. Surfaced when
    /// the evidence leaves no verified winner to sync from.
    Equivocation {
        /// The contested height.
        height: u64,
        /// One verified head hash.
        a: B256,
        /// The other verified head hash.
        b: B256,
    },
    /// The winning branch forks deeper below the head than the
    /// configured finality depth (or below the retained undo window):
    /// following it would rewrite state the device treats as final.
    FinalityViolation {
        /// Blocks the branch would unapply.
        depth: u64,
        /// The configured finality depth it exceeds.
        finality: u64,
    },
}

impl core::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServiceError::Attestation(e) => write!(f, "attestation: {e}"),
            ServiceError::Channel(e) => write!(f, "channel: {e}"),
            ServiceError::Busy => write!(f, "all HEVMs busy"),
            ServiceError::Hevm(e) => write!(f, "hevm: {e}"),
            ServiceError::BadDelta(e) => write!(f, "block sync: {e}"),
            ServiceError::HeaderMismatch => write!(f, "delta does not match block header"),
            ServiceError::Oram(e) => write!(f, "oram integrity: {e}"),
            ServiceError::ReattestationRequired => {
                write!(f, "session revoked; re-attestation required")
            }
            ServiceError::NodeUnavailable => write!(f, "full node unavailable after retries"),
            ServiceError::NoRetryBudget => {
                write!(f, "sync retry policy allows zero attempts; nothing was fetched")
            }
            ServiceError::AllCoresQuarantined => {
                write!(f, "every HEVM core is quarantined; device needs service")
            }
            ServiceError::AnalysisReject { address, reason } => {
                write!(f, "static analysis rejected callee {address}: {reason}")
            }
            ServiceError::ReorgDetected { expected, got, height } => {
                write!(f, "reorg detected at height {height}: expected {expected}, got {got}")
            }
            ServiceError::Equivocation { height, a, b } => {
                write!(f, "feed equivocated at height {height}: {a} vs {b}")
            }
            ServiceError::FinalityViolation { depth, finality } => {
                write!(
                    f,
                    "branch forks {depth} blocks below the head, past finality depth {finality}"
                )
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<HevmAbort> for ServiceError {
    fn from(e: HevmAbort) -> Self {
        ServiceError::Hevm(e)
    }
}

/// A connected user: the user-side keys and channel state.
pub struct UserHandle {
    /// Hypervisor session id.
    pub session: u64,
    user_key: SecretKey,
    to_device: Channel,
    from_device: Channel,
    /// Device session secret and channels (held by the Hypervisor;
    /// co-located here because the simulation runs both endpoints
    /// in-process).
    device_key: SecretKey,
    device_rx: Channel,
    device_tx: Channel,
}

impl core::fmt::Debug for UserHandle {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("UserHandle").field("session", &self.session).finish()
    }
}

impl UserHandle {
    /// The user's verification key (the device checks bundle signatures
    /// against it).
    pub fn public_key(&self) -> PublicKey {
        self.user_key.public_key()
    }

    /// The device's attested session key (from the verified quote); the
    /// user checks trace signatures against it.
    pub fn device_key(&self) -> PublicKey {
        self.device_key.public_key()
    }
}

/// One HarDTAPE device running the pre-execution service.
pub struct HarDTape {
    config: ServiceConfig,
    env: Env,
    clock: Clock,
    cost: CostModel,
    hypervisor: Hypervisor,
    verifier: Verifier,
    rng: SecureRng,
    /// "Prefetched to untrusted memory": the local mirror used by
    /// ORAM-disabled configurations (and for code under `-ESO`).
    local: InMemoryState,
    oram: Option<ObliviousState>,
    expected_head: Option<B256>,
    /// Height of the expected head (`None` until the first sync).
    head_height: Option<u64>,
    /// Recently applied `(height, hash)` heads — the window a reorg's
    /// fork point is searched in. Bounded by `undo_capacity + 1`.
    recent_heads: Vec<(u64, B256)>,
    /// Per-block world-state pre-images enabling in-place rollback.
    undo: UndoRing,
    /// Rollback-ablation switch: restores only the local mirror during
    /// a rollback, skipping the ORAM writes while still advertising
    /// them — the §IV-D auditor's negative control (the reorg must be
    /// *observable* as missing sync traffic).
    rollback_ablation: std::cell::Cell<bool>,
    /// Deterministic adversary schedule, when armed (see [`FaultPlan`]).
    faults: Option<FaultPlan>,
    /// Sessions revoked after an integrity failure: their bundles are
    /// refused until the user re-attests.
    revoked: std::collections::HashSet<u64>,
    /// Deterministic telemetry sink shared with every layer.
    telemetry: Telemetry,
    /// Static analyses memoized by code hash — contract code is
    /// immutable, so one CFG/dataflow pass serves every bundle that
    /// calls the same code.
    analysis_cache: std::collections::HashMap<B256, Arc<CodeAnalysis>>,
    /// Starvation-ablation side switch: bundles use the legacy dense
    /// prefetch (no static plans), reproducing the pre-fix pipeline.
    legacy_prefetch: std::cell::Cell<bool>,
    /// Checkpoint-cover ablation switch: suspensions capture frames
    /// in-enclave with no swap traffic while the segment window still
    /// advertises them — the §IV-D segment lens's negative control.
    checkpoint_ablation: std::cell::Cell<bool>,
    /// Hardware capacities the admission gate checks stack bounds
    /// against (derived from the HEVM memory configuration).
    limits: Limits,
}

impl core::fmt::Debug for HarDTape {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("HarDTape")
            .field("security", &self.config.security)
            .field("accounts", &self.local.len())
            .finish()
    }
}

impl HarDTape {
    /// Boots a device, provisions it with a fresh Manufacturer, and
    /// synchronizes the genesis world state (into the ORAM when the
    /// configuration calls for one).
    ///
    /// # Errors
    ///
    /// [`ServiceError::Oram`] when the initial full-state sync hits an
    /// ORAM integrity failure — an undersized tree (genesis larger than
    /// the configured `oram_height` can hold) surfaces here as a typed
    /// error instead of a panic.
    pub fn new(
        config: ServiceConfig,
        env: Env,
        genesis: &InMemoryState,
    ) -> Result<Self, ServiceError> {
        let manufacturer = Manufacturer::new(&config.seed.to_be_bytes());
        let mut rng = SecureRng::from_seed(&(config.seed ^ 0xDE51u64).to_be_bytes());
        let firmware = b"hardtape hypervisor firmware v1.0";
        let (puf, cert) = manufacturer.provision(config.seed, &mut rng);
        let attester = Attester::new(puf, cert, firmware);
        let verifier =
            Verifier::new(manufacturer.public_key(), tape_crypto::keccak256(firmware));
        let hypervisor = Hypervisor::boot(attester, config.hevm_count, rng.clone());

        let clock = Clock::new();
        let cost = config.hevm.cost.clone();
        let telemetry = Telemetry::new();
        let oram = if config.security.oram_storage() {
            let oram_config = OramConfig {
                block_size: config.hevm.mem.page_size,
                bucket_capacity: 4,
                height: config.oram_height,
            };
            let server = OramServer::new(oram_config.clone());
            let client = OramClient::new(
                oram_config.clone(),
                &hypervisor.oram_key(),
                SecureRng::from_seed(&(config.seed ^ 0x04A8u64).to_be_bytes()),
            );
            let state = ObliviousState::new(client, server, clock.clone(), cost.clone());
            state.set_telemetry(telemetry.clone());
            if config.security.oram_code() {
                // §IV-D prefetcher: its own DRBG stream, seeded with the
                // wire cost of one query as the initial gap estimate.
                state.enable_prefetch(
                    SecureRng::from_seed(&(config.seed ^ 0x9EFEu64).to_be_bytes()),
                    cost.oram_query_ns(oram_config.blocks_per_access()),
                );
            }
            // Initial synchronization (step 11): the world state enters
            // the ORAM. Accounts are sorted so the layout (and therefore
            // every observable leaf sequence) is reproducible — HashMap
            // iteration order must not leak into results.
            let mut accounts: Vec<_> =
                genesis.iter().map(|(a, acc)| (*a, acc.clone())).collect();
            accounts.sort_by_key(|(a, _)| *a);
            state
                .sync_full_state(accounts.into_iter())
                .map_err(ServiceError::Oram)?;
            Some(state)
        } else {
            None
        };

        // Admission limits mirror the real hardware capacities: the
        // Layer-1 operand stack, plus per-frame bookkeeping (frame-state
        // registers + world-state cache) that swaps alongside it through
        // the Layer-2 ring. Requiring two resident worst-case frames is
        // exactly the engine's §IV-B single-frame rule (a frame larger
        // than half the ring aborts with `MemoryOverflow`); deeper call
        // stacks spill to layer 3 and need no admission headroom.
        let limits = Limits {
            stack_bytes: config.hevm.mem.stack_bytes,
            frame_overhead_bytes: config.hevm.mem.frame_state_bytes
                + config.hevm.mem.state_cache,
            layer2_bytes: config.hevm.mem.layer2_bytes,
            min_resident_frames: 2,
        };
        let undo = UndoRing::new(config.undo_capacity);
        Ok(HarDTape {
            config,
            env,
            clock,
            cost,
            hypervisor,
            verifier,
            rng,
            local: genesis.clone(),
            oram,
            expected_head: None,
            head_height: None,
            recent_heads: Vec::new(),
            undo,
            rollback_ablation: std::cell::Cell::new(false),
            faults: None,
            revoked: std::collections::HashSet::new(),
            telemetry,
            analysis_cache: std::collections::HashMap::new(),
            legacy_prefetch: std::cell::Cell::new(false),
            checkpoint_ablation: std::cell::Cell::new(false),
            limits,
        })
    }

    /// The device's telemetry sink (shared with the gateway and every
    /// instrumented layer).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Switches the code prefetcher to the pre-fix starving driver —
    /// the leakage auditor's negative control. No-op without an ORAM.
    pub fn set_prefetch_ablation(&self, on: bool) {
        // The ablation reproduces the *pre-fix* pipeline end to end:
        // besides the starving driver, bundles fall back to the legacy
        // dense prefetch (every code page, no static plans), so the
        // multi-page drain burst the auditor must catch is exactly what
        // the old system produced.
        self.legacy_prefetch.set(on);
        if let Some(oram) = &self.oram {
            oram.set_prefetch_ablation(on);
        }
    }

    /// Prefetcher lifetime stats (None without a code-ORAM prefetcher).
    pub fn prefetch_stats(&self) -> Option<tape_oram::PrefetchStats> {
        self.oram.as_ref().and_then(|o| o.prefetch_stats())
    }

    /// Switches checkpoint suspensions to in-enclave capture (no cover
    /// swap traffic, frames still advertised) — the §IV-D segment
    /// lens's negative control. Only observable when `gas_slice` is
    /// configured and bundles actually preempt.
    pub fn set_checkpoint_ablation(&self, on: bool) {
        self.checkpoint_ablation.set(on);
    }

    /// Replaces the last advertised page of every static prefetch plan
    /// with a decoy index while leaving the operational plan intact —
    /// the plan-coverage auditor's negative control. Execution is
    /// unchanged; the audit must flag the true page's fetch as
    /// unplanned. No-op without an ORAM.
    pub fn set_plan_ablation(&self, on: bool) {
        if let Some(oram) = &self.oram {
            oram.set_plan_ablation(on);
        }
    }

    /// The static analysis of `address`'s code, memoized by code hash
    /// (`None` for accounts without code). One CFG + dataflow pass per
    /// distinct bytecode, shared by every later bundle.
    pub fn analyze_code(&mut self, address: &Address) -> Option<Arc<CodeAnalysis>> {
        use tape_state::StateReader as _;
        let info = self.local.account(address)?;
        if info.code_len == 0 {
            return None;
        }
        if let Some(cached) = self.analysis_cache.get(&info.code_hash) {
            return Some(cached.clone());
        }
        let code = self.local.code(address);
        let limit_words = self.config.hevm.mem.stack_bytes / 32;
        let analysis = Arc::new(tape_analysis::analyze_with(
            &code,
            &AnalysisConfig {
                page_size: self.config.hevm.mem.page_size,
                // Widen well past the admission limit so linear code a
                // little over budget reports a precise StackOverflow
                // bound instead of degrading to "unbounded".
                max_stack_words: limit_words * 4,
            },
        ));
        self.analysis_cache.insert(info.code_hash, analysis.clone());
        Some(analysis)
    }

    /// The static admission gate: every top-level callee's sound stack
    /// bound must fit the Layer-1/Layer-2 capacities, or the bundle is
    /// refused here with a typed verdict instead of faulting mid-bundle
    /// on a hardware limit.
    ///
    /// # Errors
    ///
    /// [`ServiceError::AnalysisReject`] naming the first offending
    /// callee.
    pub fn admission_check(&mut self, bundle: &Bundle) -> Result<(), ServiceError> {
        let mut seen = std::collections::BTreeSet::new();
        for tx in &bundle.transactions {
            let Some(to) = tx.to else { continue };
            if !seen.insert(to) {
                continue;
            }
            if let Some(analysis) = self.analyze_code(&to) {
                if let Err(reason) = self.limits.admit(&analysis) {
                    self.telemetry.count(CounterId::AnalysisRejects, 1);
                    return Err(ServiceError::AnalysisReject { address: to, reason });
                }
            }
        }
        Ok(())
    }

    /// Arms a deterministic fault plan across the device's untrusted
    /// boundaries: the ORAM server starts misbehaving per the plan, the
    /// secure channel starts suffering injected replay/drop/tamper, and
    /// every HEVM's layer-3 page store turns adversarial. (The node feed
    /// is armed separately via [`BlockFeed::arm_faults`] — it lives
    /// outside the device.)
    pub fn arm_faults(&mut self, plan: FaultPlan) {
        if let Some(oram) = &self.oram {
            oram.arm_faults(plan.clone());
        }
        self.faults = Some(plan);
    }

    /// The security configuration.
    pub fn security(&self) -> SecurityConfig {
        self.config.security
    }

    /// The full deployment configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The Hypervisor's current ORAM bucket-encryption key. In a fleet
    /// this is the escrow that lets a surviving device serve a migrated
    /// tenant's world state: every device shares one key
    /// ([`Self::share_oram_key`]), exactly as the trusted
    /// device-to-device channel of the paper's §VI-D deployment would.
    pub fn oram_key(&self) -> [u8; 16] {
        self.hypervisor.oram_key()
    }

    /// Installs the fleet-shared ORAM key on this device's Hypervisor
    /// (the receiving end of the trusted device-to-device key share).
    /// The ORAM client copied its key at boot, so joining the fleet
    /// escrow never re-keys buckets already written.
    pub fn share_oram_key(&mut self, key: [u8; 16]) {
        self.hypervisor.share_oram_key(key);
    }

    /// The service-wide virtual clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The ORAM query statistics (None without an ORAM).
    pub fn oram_stats(&self) -> Option<tape_oram::QueryStats> {
        self.oram.as_ref().map(|o| o.stats())
    }

    /// The adversary's complete view of the ORAM wire: every
    /// `(time, leaf)` the untrusted server observed. Used by the
    /// obliviousness analyses and the front-running example.
    pub fn observed_oram_accesses(&self) -> Vec<tape_oram::ObservedAccess> {
        self.oram
            .as_ref()
            .map(|o| o.observed_accesses())
            .unwrap_or_default()
    }

    /// Runs the remote-attestation handshake for a new user and
    /// establishes the secure channel.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Attestation`] if the user rejects the quote.
    pub fn connect_user(&mut self, user_seed: &[u8]) -> Result<UserHandle, ServiceError> {
        let mut user_rng = SecureRng::from_seed(user_seed);
        let user_key = user_rng.next_secret_key();
        let nonce = user_rng.next_b256();

        let (quote, session, device_secret) = self.hypervisor.attest(nonce);
        self.verifier
            .verify(&quote, &nonce)
            .map_err(ServiceError::Attestation)?;

        // DHKE both ways.
        let user_session = user_rng.next_secret_key();
        let k_user = session_key(&user_session, &quote.session_key)
            .map_err(ServiceError::Attestation)?;
        let k_device = session_key(&device_secret, &user_session.public_key())
            .map_err(ServiceError::Attestation)?;
        debug_assert_eq!(k_user, k_device);

        Ok(UserHandle {
            session,
            user_key,
            to_device: Channel::new(&k_user, 0),
            from_device: Channel::new(&k_user, 1),
            device_key: device_secret,
            device_rx: Channel::new(&k_device, 0),
            device_tx: Channel::new(&k_device, 1),
        })
    }

    /// Pre-executes a bundle on a dedicated HEVM (paper Fig. 3 steps
    /// 3–10). World-state modifications are discarded at the end.
    ///
    /// When `hevm.gas_slice` is configured this drives the segmented
    /// engine back-to-back — every preemption is immediately resumed on
    /// the same device, with checkpoint cover traffic and segment
    /// telemetry at each boundary. Callers who want to interleave other
    /// work between segments (the gateway's preemption scheduler) use
    /// [`Self::pre_execute_preemptible`] directly.
    ///
    /// # Errors
    ///
    /// [`ServiceError`] on channel failures, busy devices, or HEVM
    /// aborts (memory overflow, layer-3 tampering).
    pub fn pre_execute(
        &mut self,
        user: &mut UserHandle,
        bundle: &Bundle,
    ) -> Result<BundleReport, ServiceError> {
        let mut outcome = self.pre_execute_preemptible(user, bundle, None)?;
        loop {
            match outcome {
                PreExecOutcome::Done(report) => return Ok(report),
                PreExecOutcome::Preempted(pause) => {
                    outcome = self.pre_execute_preemptible(user, bundle, Some(pause))?;
                }
            }
        }
    }

    /// Runs one gas-slice segment of a bundle: with `resume` absent the
    /// bundle enters the service (channel, signature, admission), takes
    /// a core, and executes until its current transaction's gas slice
    /// runs out or the whole bundle finishes; with `resume` present the
    /// paused bundle re-takes a core and continues. The core is
    /// released on *every* exit, so a preempted bundle never holds
    /// hardware while queued.
    ///
    /// Exactly-once: the [`BundlePause`] is consumed by value and is
    /// not `Clone`, so a segment can never be replayed. An error
    /// consumes the pause too — a failed bundle is dead, exactly like a
    /// failed un-segmented bundle.
    ///
    /// # Errors
    ///
    /// As [`Self::pre_execute`]. `resume` must carry a pause produced
    /// for the same `user` session and `bundle`.
    pub fn pre_execute_preemptible(
        &mut self,
        user: &mut UserHandle,
        bundle: &Bundle,
        resume: Option<BundlePause>,
    ) -> Result<PreExecOutcome, ServiceError> {
        if self.revoked.contains(&user.session) {
            return Err(ServiceError::ReattestationRequired);
        }
        let security = self.config.security;
        let (started, pause) = match resume {
            Some(pause) => {
                assert_eq!(
                    pause.session, user.session,
                    "pause resumed by a different session"
                );
                (pause.started, Some(pause))
            }
            None => {
                let started = self.clock.now();
                let payload = bundle.encode();

                // User → device: sign and seal the bundle. The wire
                // between the two is untrusted — an armed fault plan may
                // tamper, drop, or replay the sealed message in transit.
                let signature =
                    security.signature().then(|| sign_bundle(&user.user_key, &payload));
                if security.encryption() {
                    let opened = self.deliver_to_device(user, &payload)?;
                    debug_assert_eq!(opened, payload);
                }
                self.record_phase(PhaseKind::Receive, started);
                let decode_started = self.clock.now();
                if let Some(sig) = &signature {
                    // Device verifies the user's bundle signature on the A53.
                    self.clock.advance(self.cost.ecdsa_verify_ns);
                    verify_bundle(&user.public_key(), &payload, sig)
                        .map_err(ServiceError::Channel)?;
                }
                self.record_phase(PhaseKind::Decode, decode_started);

                // Static admission: refuse bundles whose callees cannot
                // fit the hardware stack capacities before a core is
                // even assigned.
                self.admission_check(bundle)?;
                (started, None)
            }
        };

        // Exclusive HEVM assignment (per segment: a paused bundle holds
        // no core).
        let slot = self.hypervisor.assign(user.session).map_err(|e| match e {
            SlotError::AllQuarantined => ServiceError::AllCoresQuarantined,
            _ => ServiceError::Busy,
        })?;

        let execute_started = self.clock.now();
        let outcome = self.run_bundle_segment(bundle, pause);
        self.record_phase(PhaseKind::Execute, execute_started);
        self.telemetry
            .observe(HistId::ExecuteNs, self.clock.now() - execute_started);

        // Hardware-level failures (layer-3 integrity violations, watchdog
        // trips) count against the core; three in a row quarantine it —
        // a quarantined core is pulled from rotation instead of released.
        // A preemption is a success: the core did its slice and returns
        // to the pool.
        let core_failure = matches!(
            &outcome,
            Err(ServiceError::Hevm(HevmAbort::Layer3Tampered | HevmAbort::Watchdog { .. }))
        );
        if core_failure {
            if !self.hypervisor.record_failure(slot) {
                self.hypervisor
                    .release(slot, user.session)
                    .expect("slot was assigned above");
            }
        } else {
            self.hypervisor.record_success(slot);
            self.hypervisor
                .release(slot, user.session)
                .expect("slot was assigned above");
        }
        if let Some(oram) = &self.oram {
            // Segment/bundle end: on-chip caches cleared before the core
            // can serve another tenant.
            oram.clear_cache();
        }
        // Integrity failures revoke the session: the bundle is aborted
        // and the user must re-attest before submitting another one.
        if matches!(
            &outcome,
            Err(ServiceError::Oram(_)) | Err(ServiceError::Hevm(HevmAbort::Layer3Tampered))
        ) {
            self.revoked.insert(user.session);
        }
        let (results, changes, per_tx_ns, hevm_stats, lints) = match outcome? {
            SegmentOutcome::Yielded(mut pause) => {
                pause.started = started;
                pause.session = user.session;
                return Ok(PreExecOutcome::Preempted(pause));
            }
            SegmentOutcome::Finished(results, changes, per_tx, stats, lints) => {
                (results, changes, per_tx, stats, lints)
            }
        };

        let mut report = BundleReport {
            results,
            changes,
            per_tx_ns,
            total_ns: 0,
            signature: None,
            hevm_stats,
            staleness: None,
            lints,
        };

        // Device → user: sign and seal the trace.
        let trace = report.encode();
        let sign_started = self.clock.now();
        if security.signature() {
            self.clock.advance(self.cost.ecdsa_sign_ns);
            // The device signs the trace with its attested session key;
            // the user verifies against the quote's session public key.
            report.signature = Some(sign_bundle(&user.device_key, &trace));
        }
        self.record_phase(PhaseKind::Sign, sign_started);
        let seal_started = self.clock.now();
        if security.encryption() {
            let sealed = user.device_tx.seal(&trace);
            self.clock.advance(self.cost.protected_message_ns(sealed.sealed.len()));
            let opened = user.from_device.open(&sealed).map_err(ServiceError::Channel)?;
            debug_assert_eq!(opened, trace);
        }
        self.record_phase(PhaseKind::Seal, seal_started);

        report.total_ns = self.clock.now() - started;
        self.telemetry.count(CounterId::Bundles, 1);
        self.telemetry
            .count(CounterId::Transactions, bundle.transactions.len() as u64);
        self.telemetry.observe(HistId::BundleLatencyNs, report.total_ns);
        Ok(PreExecOutcome::Done(report))
    }

    /// Records one completed service phase (duration since `started`).
    fn record_phase(&self, phase: PhaseKind, started: Nanos) {
        let at = self.clock.now();
        self.telemetry
            .record(TelemetryEvent::Phase { at, phase, ns: at - started });
    }

    /// Carries one sealed user→device message across the untrusted wire,
    /// applying any armed channel fault. Detected attacks (tamper,
    /// replay) revoke the session; a dropped message is recovered
    /// transparently by retransmission.
    fn deliver_to_device(
        &mut self,
        user: &mut UserHandle,
        payload: &[u8],
    ) -> Result<Vec<u8>, ServiceError> {
        let sealed = user.to_device.seal(payload);
        self.clock.advance(self.cost.protected_message_ns(sealed.sealed.len()));

        let fault = self.faults.as_ref().and_then(|plan| {
            plan.decide_for(
                FaultSite::Channel,
                &[FaultKind::ChannelTamper, FaultKind::ChannelDrop, FaultKind::ChannelReplay],
            )
        });
        match fault {
            Some(decision) if decision.kind == FaultKind::ChannelTamper => {
                // A3: ciphertext flipped in transit. GCM authentication
                // fails; the device treats the channel as compromised.
                let mut tampered = sealed.clone();
                let len = tampered.sealed.len() as u64;
                tampered.sealed[(decision.param % len) as usize] ^= 0x01;
                match user.device_rx.open(&tampered) {
                    Ok(opened) => Ok(opened),
                    Err(err) => {
                        self.revoked.insert(user.session);
                        Err(ServiceError::Channel(err))
                    }
                }
            }
            Some(decision) if decision.kind == FaultKind::ChannelDrop => {
                // The message is lost in transit; the user times out and
                // retransmits the identical sealed message. The sequence
                // number was never consumed, so the retry opens cleanly —
                // recovery is transparent, only (virtual) time is lost.
                self.clock
                    .advance(self.cost.protected_message_ns(sealed.sealed.len()));
                user.device_rx.open(&sealed).map_err(ServiceError::Channel)
            }
            Some(_) => {
                // ChannelReplay: the message is delivered once, then the
                // adversary re-sends the captured ciphertext. The second
                // open trips the sequence check — a detected replay
                // attack aborts the bundle and revokes the session (A3).
                user.device_rx.open(&sealed).map_err(ServiceError::Channel)?;
                let err = match user.device_rx.open(&sealed) {
                    Err(err) => err,
                    // A replay that opens means the sequence check is
                    // broken — fail loudly rather than proceed.
                    Ok(_) => tape_tee::ChannelError::Sealed,
                };
                self.revoked.insert(user.session);
                Err(ServiceError::Channel(err))
            }
            None => user.device_rx.open(&sealed).map_err(ServiceError::Channel),
        }
    }

    /// Executes one gas-slice segment of a bundle against the bundle's
    /// journal overlay: a fresh overlay when `resume` is `None`, the
    /// checkpointed one otherwise. Returns at the first preemption or
    /// when every transaction has retired.
    fn run_bundle_segment(
        &mut self,
        bundle: &Bundle,
        resume: Option<BundlePause>,
    ) -> Result<SegmentOutcome, ServiceError> {
        let segment_started = self.clock.now();
        if let Some(pause) = resume {
            // Re-dispatching a suspended context is not free: the
            // Hypervisor's scheduler restores the parked HEVM state
            // before the first cycle of the new slice executes. Charged
            // here (inside the segment window) so preemption's overhead
            // shows up in SliceNs and every latency built on it.
            self.clock.advance(self.cost.sched_dispatch_ns);
            let BundlePause {
                checkpoint,
                hevm_config,
                results,
                per_tx,
                tx_index,
                tx_elapsed,
                lints,
                ..
            } = pause;
            // The reader detached at suspension was just a view of the
            // device state; rebuild it fresh (the world may even have
            // advanced a block — pre-execution reads whatever the
            // device's current head serves, exactly like a bundle that
            // was still queued).
            let reader =
                HybridState::new(self.config.security, &self.local, self.oram.as_ref());
            let mut hevm = Hevm::resume(
                hevm_config.clone(),
                self.env.clone(),
                reader,
                self.clock.clone(),
                checkpoint,
            );
            let before = self.clock.now();
            let first = Some(hevm.continue_transact());
            return self.drive_segment(
                bundle,
                hevm,
                first,
                hevm_config,
                results,
                per_tx,
                tx_index,
                tx_elapsed,
                before,
                lints,
                segment_started,
                true,
            );
        }
        // Static pass over the bundle's top-level callees (§IV-D): the
        // decode phase already knows every `to` address, and the
        // analyzer's page-reachability sets turn the old dense prefetch
        // into a precise plan — only pages some execution path can
        // actually touch are prefetched, and the same sets are
        // advertised to the telemetry auditor as the per-contract plan
        // the observed code traffic must stay inside.
        let mut callees: Vec<(Address, Arc<CodeAnalysis>)> = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for tx in &bundle.transactions {
            let Some(to) = tx.to else { continue };
            if seen.insert(to) {
                if let Some(analysis) = self.analyze_code(&to) {
                    callees.push((to, analysis));
                }
            }
        }

        // Secret-dependency lints, surfaced per bundle in the signed
        // report (sorted for a deterministic encoding).
        let mut lints: Vec<(Address, LintFinding)> = Vec::new();
        for (addr, analysis) in &callees {
            lints.extend(analysis.lints.iter().map(|l| (*addr, *l)));
        }
        lints.sort_unstable();
        self.telemetry.count(CounterId::LintFindings, lints.len() as u64);

        // A callee with dynamic call targets (or foreign-code reads) can
        // reach any code-bearing account, so precise plans must cover
        // the whole mirror or the auditor would flag honest inner-call
        // fetches. Collect those extra analyses up front (full-page
        // plans where the analysis itself reads code dynamically).
        let plan_everything = callees
            .iter()
            .any(|(_, a)| a.dynamic_calls || a.reads_foreign_code);
        let mut extra_plans: Vec<(Address, Arc<CodeAnalysis>)> = Vec::new();
        if plan_everything && self.oram.is_some() && self.config.security.oram_code() {
            let others: Vec<Address> = self
                .local
                .iter()
                .filter(|(a, acc)| !acc.code.is_empty() && !seen.contains(*a))
                .map(|(a, _)| *a)
                .collect();
            for addr in others {
                if let Some(analysis) = self.analyze_code(&addr) {
                    extra_plans.push((addr, analysis));
                }
            }
        }

        if let Some(oram) = &self.oram {
            if self.config.security.oram_code() {
                if self.legacy_prefetch.get() {
                    // Pre-fix pipeline (starvation ablation): dense
                    // prefetch of every code page, no plans advertised.
                    use tape_state::StateReader as _;
                    let page_size = self.config.hevm.mem.page_size;
                    for (addr, _) in &callees {
                        let code_len =
                            self.local.account(addr).map(|i| i.code_len).unwrap_or(0);
                        if code_len > 0 {
                            oram.schedule_prefetch(*addr, code_len.div_ceil(page_size) as u32);
                        }
                    }
                } else {
                    for (addr, analysis) in &callees {
                        oram.set_code_plan(*addr, &analysis.reachable_pages);
                        // Prefetch stays limited to the top-level
                        // callees: inner-call pages are demand-paced,
                        // not drained.
                        oram.schedule_prefetch_pages(*addr, &analysis.reachable_pages);
                    }
                    for (addr, analysis) in &extra_plans {
                        oram.set_code_plan(*addr, &analysis.reachable_pages);
                    }
                }
            }
        }
        let reader = HybridState::new(self.config.security, &self.local, self.oram.as_ref());
        let mut hevm_config = self.config.hevm.clone();
        // Whatever the ORAM serves charges the clock itself; whatever
        // stays local is charged by the HEVM at local-fetch cost. Under
        // -ESO that split differs per query class: K-V via ORAM, code
        // local.
        hevm_config.charge_local_fetch = !self.config.security.oram_storage();
        hevm_config.charge_local_code = !self.config.security.oram_code();
        // Fresh session-local layer-3 sealing key and noise seed from the
        // device RNG (paper §IV-C: session keys differ per session).
        let mut layer3_key = [0u8; 16];
        self.rng.fill_bytes(&mut layer3_key);
        hevm_config.layer3_key = layer3_key;
        hevm_config.layer3_noise_seed = self.rng.next_u64();
        hevm_config.faults = self.faults.clone();
        hevm_config.checkpoint_cover = !self.checkpoint_ablation.get();
        let mut hevm =
            Hevm::new(hevm_config.clone(), self.env.clone(), reader, self.clock.clone());

        let before = self.clock.now();
        let first = bundle
            .transactions
            .first()
            .map(|tx| hevm.transact_sliced(tx));
        self.drive_segment(
            bundle,
            hevm,
            first,
            hevm_config,
            Vec::with_capacity(bundle.transactions.len()),
            Vec::with_capacity(bundle.transactions.len()),
            0,
            0,
            before,
            lints,
            segment_started,
            false,
        )
    }

    /// Drives an engine (fresh or resumed) until the slice yields or
    /// the bundle retires, flushing swap traffic and segment telemetry.
    #[allow(clippy::too_many_arguments)]
    fn drive_segment<'a>(
        &self,
        bundle: &Bundle,
        mut hevm: Hevm<HybridState<'a>>,
        first: Option<Result<SliceOutcome, HevmAbort>>,
        hevm_config: HevmConfig,
        mut results: Vec<TxResult>,
        mut per_tx: Vec<Nanos>,
        mut tx_index: usize,
        mut tx_elapsed: Nanos,
        mut before: Nanos,
        lints: Vec<(Address, LintFinding)>,
        segment_started: Nanos,
        resumed: bool,
    ) -> Result<SegmentOutcome, ServiceError> {
        let mut outcome = first;
        while let Some(current) = outcome.take() {
            // The StateReader interface cannot propagate ORAM failures,
            // so the pagestore parks the first one; collect it here. An
            // ORAM integrity violation is the root cause of whatever the
            // HEVM observed, so it outranks any secondary abort.
            if let Some(oram) = &self.oram {
                if let Some(err) = oram.take_fault() {
                    return Err(ServiceError::Oram(err));
                }
            }
            match current? {
                SliceOutcome::Done(result) => {
                    per_tx.push(tx_elapsed + (self.clock.now() - before));
                    tx_elapsed = 0;
                    results.push(result);
                    tx_index += 1;
                    if tx_index == bundle.transactions.len() {
                        break;
                    }
                    before = self.clock.now();
                    outcome = Some(hevm.transact_sliced(&bundle.transactions[tx_index]));
                }
                SliceOutcome::Preempted { segment } => {
                    tx_elapsed += self.clock.now() - before;
                    // Parking the context costs scheduler time on top of
                    // the cover swaps; charge it to the segment (not the
                    // transaction) so suspension is never free.
                    self.clock.advance(self.cost.sched_dispatch_ns);
                    let (_reader, mut checkpoint) = hevm.suspend();
                    let yield_at = checkpoint.yield_at();
                    let frames = checkpoint.suspended_frames();
                    let swaps = checkpoint.take_swap_log();
                    // Ordinary execution spills happened before the
                    // yield; the suspension's cover swaps after it. The
                    // segment window brackets exactly the cover traffic,
                    // which is what the §IV-D segment lens audits.
                    for swap in swaps.iter().filter(|s| s.at <= yield_at) {
                        self.record_swap(swap);
                    }
                    self.telemetry.record(TelemetryEvent::SegmentYield {
                        at: yield_at,
                        segment,
                        frames,
                    });
                    let mut cover = 0u32;
                    for swap in swaps.iter().filter(|s| s.at > yield_at) {
                        self.record_swap(swap);
                        cover += u32::from(swap.pages_out > 0);
                    }
                    self.telemetry.record(TelemetryEvent::SegmentEnd {
                        at: self.clock.now(),
                        swaps: cover,
                    });
                    self.telemetry.count(CounterId::Segments, 1);
                    self.telemetry.count(CounterId::Preemptions, 1);
                    self.telemetry
                        .observe(HistId::SliceNs, self.clock.now() - segment_started);
                    return Ok(SegmentOutcome::Yielded(BundlePause {
                        checkpoint,
                        hevm_config,
                        results,
                        per_tx,
                        tx_index,
                        tx_elapsed,
                        lints,
                        started: 0,
                        session: 0,
                    }));
                }
            }
        }
        let changes = hevm.state().changes();
        let stats = hevm.stats();
        // Swap traffic + occupancy into telemetry while the engine is
        // still alive (the swap log dies with it).
        for swap in hevm.swap_log() {
            self.record_swap(swap);
        }
        if resumed {
            // The closing segment of a bundle that was preempted at
            // least once.
            self.telemetry.count(CounterId::Segments, 1);
            self.telemetry
                .observe(HistId::SliceNs, self.clock.now() - segment_started);
        }
        self.telemetry.gauge(GaugeId::L2PeakPages, stats.peak_l2_pages as u64);
        self.telemetry.gauge(GaugeId::CallDepth, stats.max_depth as u64);
        if let Some(pf) = self.oram.as_ref().and_then(|o| o.prefetch_stats()) {
            self.telemetry.gauge(GaugeId::PrefetchGapEmaNs, pf.avg_gap_ns);
        }
        Ok(SegmentOutcome::Finished(results, changes, per_tx, stats, lints))
    }

    /// One layer-3 swap event into counters and the event stream.
    fn record_swap(&self, swap: &tape_hevm::SwapEvent) {
        let out = swap.pages_out > 0;
        let (observed, true_pages) = if out {
            (swap.pages_out, swap.true_pages_out)
        } else {
            (swap.pages_in, swap.true_pages_in)
        };
        self.telemetry.count(
            if out { CounterId::SwapOuts } else { CounterId::SwapIns },
            1,
        );
        self.telemetry.count(CounterId::SwapTruePages, true_pages as u64);
        self.telemetry
            .count(CounterId::SwapNoisePages, observed.saturating_sub(true_pages) as u64);
        self.telemetry.record(TelemetryEvent::Swap {
            at: swap.at,
            out,
            true_pages: true_pages as u32,
            observed_pages: observed as u32,
        });
    }

    /// Synchronizes a new block's state delta (paper step 11): verifies
    /// the Merkle proofs against the block header, checks that the block
    /// extends the device's chain, then updates the local mirror and the
    /// ORAM — capturing per-account pre-images in the undo ring first,
    /// so a later reorg can roll the block back in place.
    ///
    /// Re-syncing the current head is an idempotent no-op. A verified
    /// block at or below the device's height, or one whose parent does
    /// not match the expected head, is refused with
    /// [`ServiceError::ReorgDetected`] — the single-feed path cannot
    /// resolve forks; [`Self::sync_from_feeds`] can.
    ///
    /// # Errors
    ///
    /// [`ServiceError`] if the header or any proof fails verification,
    /// or the block conflicts with the device's chain — nothing is
    /// applied in either case (A6).
    pub fn sync_block(
        &mut self,
        header: &BlockHeader,
        delta: &StateDelta,
    ) -> Result<(), ServiceError> {
        if delta.block_hash != header.hash() || delta.state_root != header.state_root {
            return Err(ServiceError::HeaderMismatch);
        }
        delta.verify().map_err(ServiceError::BadDelta)?;

        let hash = header.hash();
        if self.expected_head == Some(hash) {
            // The quorum (or a recovered feed) re-served the current
            // head: already applied, nothing to do.
            return Ok(());
        }
        if let (Some(expected), Some(height)) = (self.expected_head, self.head_height) {
            if header.number <= height {
                // A verified sibling (or ancestor) of an applied block:
                // this branch conflicts with ours.
                return Err(ServiceError::ReorgDetected {
                    expected,
                    got: hash,
                    height: header.number,
                });
            }
            if header.number == height + 1 && header.parent_hash != expected {
                return Err(ServiceError::ReorgDetected {
                    expected,
                    got: header.parent_hash,
                    height,
                });
            }
            // `number > height + 1` is a gap: the device missed blocks
            // and this is plain catch-up — apply (legacy behaviour; the
            // multi-feed path downloads the gap instead).
        }
        self.apply_block(header, delta)
    }

    /// Applies a verified, chain-consistent block: captures undo
    /// pre-images, writes the delta through the local mirror and the
    /// ORAM, and advances the head bookkeeping.
    fn apply_block(
        &mut self,
        header: &BlockHeader,
        delta: &StateDelta,
    ) -> Result<(), ServiceError> {
        let hash = header.hash();
        // Pre-images first: everything this block is about to overwrite
        // (or delete), exactly what unapplying it must restore.
        let mut seen = std::collections::BTreeSet::new();
        let mut pre: Vec<(Address, Option<tape_state::Account>)> = Vec::new();
        for address in delta
            .accounts
            .iter()
            .map(|e| e.address)
            .chain(delta.deleted.iter().map(|e| e.address))
        {
            if seen.insert(address) {
                pre.push((address, self.local.account_full(&address).cloned()));
            }
        }

        for entry in &delta.accounts {
            self.local.put_account(entry.address, entry.account.clone());
            if let Some(oram) = &self.oram {
                oram.sync_account(&entry.address, &entry.account)
                    .map_err(ServiceError::Oram)?;
            }
        }
        for entry in &delta.deleted {
            self.local.remove_account(&entry.address);
            if let Some(oram) = &self.oram {
                oram.remove_account(&entry.address).map_err(ServiceError::Oram)?;
            }
        }
        self.undo.push(UndoDelta { height: header.number, block_hash: hash, pre });
        self.local.put_block_hash(header.number, hash);
        self.expected_head = Some(hash);
        self.head_height = Some(header.number);
        self.recent_heads.retain(|&(h, _)| h < header.number);
        self.recent_heads.push((header.number, hash));
        let cap = self.config.undo_capacity + 1;
        if self.recent_heads.len() > cap {
            let excess = self.recent_heads.len() - cap;
            self.recent_heads.drain(..excess);
        }
        Ok(())
    }

    /// Synchronizes from a Byzantine-tolerant [`FeedSet`]: polls every
    /// feed, lets the set quarantine forgers/equivocators/stalls, and
    /// follows the fork-choice winner — extending the chain, catching up
    /// over gaps, or rolling back to a verified fork point and replaying
    /// the winning branch (paper step 11, under threat A1/A6).
    ///
    /// The rollback travels through the normal ORAM sync path, so on the
    /// wire it is shaped exactly like forward synchronization (§IV-D);
    /// the telemetry auditor's reorg lens checks precisely that.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Equivocation`] when equivocation evidence leaves
    /// no verified winner; [`ServiceError::NodeUnavailable`] when no
    /// feed serves a verifiable head; [`ServiceError::FinalityViolation`]
    /// when the winning branch forks below the finality depth (or the
    /// undo window); any [`Self::sync_block`] error from the replay.
    pub fn sync_from_feeds(&mut self, feeds: &mut FeedSet) -> Result<SyncOutcome, ServiceError> {
        let report = feeds.poll();
        if !report.equivocations.is_empty() {
            self.telemetry
                .count(CounterId::EquivocationsDetected, report.equivocations.len() as u64);
        }
        if !report.newly_quarantined.is_empty() {
            self.telemetry
                .count(CounterId::FeedsQuarantined, report.newly_quarantined.len() as u64);
        }
        let Some((winner, header, delta)) = report.winner else {
            // No verified head. Equivocation evidence explains *why*
            // the quorum failed; surface it over a generic outage.
            if let Some(ev) = report.equivocations.first() {
                return Err(ServiceError::Equivocation { height: ev.height, a: ev.a, b: ev.b });
            }
            return Err(ServiceError::NodeUnavailable);
        };

        let adopted = header.hash();
        if self.expected_head == Some(adopted) {
            return Ok(SyncOutcome::AlreadySynced);
        }
        let (Some(expected), Some(height)) = (self.expected_head, self.head_height) else {
            // First sync ever: adopt the winner directly.
            self.apply_block(&header, &delta)?;
            return Ok(SyncOutcome::Advanced { blocks: 1 });
        };
        if header.number == height + 1 && header.parent_hash == expected {
            self.apply_block(&header, &delta)?;
            return Ok(SyncOutcome::Advanced { blocks: 1 });
        }

        // The winner is not a direct extension: walk its ancestry down
        // (verifying every block) until it attaches to our chain —
        // either at the head (pure catch-up) or at an earlier applied
        // block (reorg).
        let finality = self.config.finality_depth;
        let mut branch: Vec<(BlockHeader, StateDelta)> = vec![(header, delta)];
        let fork: ForkPoint = loop {
            let lowest = &branch.last().expect("branch starts non-empty").0;
            let parent = lowest.parent_hash;
            let Some(parent_number) = lowest.number.checked_sub(1) else {
                // Ran out of chain below the branch without attaching.
                return Err(ServiceError::FinalityViolation { depth: height, finality });
            };
            if parent == expected && parent_number == height {
                break ForkPoint { height, hash: expected };
            }
            if self
                .recent_heads
                .iter()
                .any(|&(h, hh)| h == parent_number && hh == parent)
            {
                break ForkPoint { height: parent_number, hash: parent };
            }
            // Refuse to dig below finality before fetching further.
            if parent_number < height.saturating_sub(finality) {
                return Err(ServiceError::FinalityViolation {
                    depth: height - parent_number,
                    finality,
                });
            }
            let (parent_header, parent_delta) = feeds
                .fetch_block(winner, parent_number)
                .map_err(|_| ServiceError::NodeUnavailable)?;
            if parent_header.hash() != parent {
                // The feed's history does not match the head it served.
                return Err(ServiceError::HeaderMismatch);
            }
            if parent_delta.block_hash != parent
                || parent_delta.state_root != parent_header.state_root
            {
                return Err(ServiceError::HeaderMismatch);
            }
            parent_delta.verify().map_err(ServiceError::BadDelta)?;
            branch.push((parent_header, parent_delta));
        };

        let depth = height - fork.height;
        if depth > finality {
            return Err(ServiceError::FinalityViolation { depth, finality });
        }
        let orphaned = if depth > 0 { self.rollback_to(&fork, depth)? } else { Vec::new() };

        // Replay the winning branch, oldest first, through the normal
        // sync path (each block re-captures undo pre-images).
        let blocks = branch.len();
        for (branch_header, branch_delta) in branch.iter().rev() {
            self.sync_block(branch_header, branch_delta)?;
        }
        if depth > 0 {
            Ok(SyncOutcome::Reorged { fork, depth, orphaned, adopted })
        } else {
            Ok(SyncOutcome::Advanced { blocks })
        }
    }

    /// Rolls the world state back to `fork` by replaying the undo ring's
    /// pre-images — through the normal ORAM write path, so rollback
    /// traffic is indistinguishable from forward sync. Returns the
    /// orphaned block hashes, newest first.
    fn rollback_to(&mut self, fork: &ForkPoint, depth: u64) -> Result<Vec<B256>, ServiceError> {
        let finality = self.config.finality_depth;
        let Some(popped) = self.undo.pop_above(fork.height) else {
            // The undo window no longer reaches the fork point.
            return Err(ServiceError::FinalityViolation { depth, finality });
        };
        let accounts: u32 = popped.iter().map(|d| d.pre.len() as u32).sum();
        // Advertise the ORAM coverage the rollback owes: zero without an
        // ORAM (nothing oblivious to restore). The ablation keeps the
        // honest advertisement while skipping the writes — the auditor
        // must catch the gap.
        let advertised = if self.oram.is_some() { accounts } else { 0 };
        self.telemetry.record(TelemetryEvent::RollbackBegin {
            at: self.clock.now(),
            height: fork.height,
            depth: depth as u32,
            accounts: advertised,
        });
        let mut pages = 0u64;
        for undo in &popped {
            for (address, pre) in &undo.pre {
                match pre {
                    Some(account) => {
                        self.local.put_account(*address, account.clone());
                        if let Some(oram) = &self.oram {
                            if !self.rollback_ablation.get() {
                                pages += oram
                                    .sync_account(address, account)
                                    .map_err(ServiceError::Oram)?;
                            }
                        }
                    }
                    None => {
                        self.local.remove_account(address);
                        if let Some(oram) = &self.oram {
                            if !self.rollback_ablation.get() {
                                pages += oram
                                    .remove_account(address)
                                    .map_err(ServiceError::Oram)?;
                            }
                        }
                    }
                }
            }
        }
        self.telemetry
            .record(TelemetryEvent::RollbackEnd { at: self.clock.now(), pages: pages as u32 });
        self.telemetry.observe(HistId::ReorgDepth, depth);
        self.telemetry.count(CounterId::ReorgsApplied, 1);

        self.expected_head = Some(fork.hash);
        self.head_height = Some(fork.height);
        self.recent_heads.retain(|&(h, _)| h <= fork.height);
        Ok(popped.iter().map(|d| d.block_hash).collect())
    }

    /// Switches the rollback to local-mirror-only (ORAM writes skipped
    /// while still advertised) — the reorg auditor's negative control.
    /// No-op for configurations without an ORAM.
    pub fn set_rollback_ablation(&self, on: bool) {
        self.rollback_ablation.set(on);
    }

    /// Pulls the head block from a (possibly adversarial, possibly
    /// flaky) [`BlockFeed`] and synchronizes it, retrying per the
    /// default [`RetryPolicy`]. See [`Self::sync_from_feed_with`].
    ///
    /// # Errors
    ///
    /// [`ServiceError::NodeUnavailable`] when the feed stays down
    /// through every retry (or has no block); any [`Self::sync_block`]
    /// error for forged responses.
    pub fn sync_from_feed(&mut self, feed: &mut BlockFeed) -> Result<(), ServiceError> {
        self.sync_from_feed_with(feed, &RetryPolicy::default())
    }

    /// Pulls the head block from a (possibly adversarial, possibly
    /// flaky) [`BlockFeed`] and synchronizes it. Transient
    /// unavailability is retried with `policy`'s capped exponential
    /// backoff on the virtual clock; forged responses are rejected by
    /// [`Self::sync_block`] without retrying — a forgery is an attack,
    /// not noise.
    ///
    /// # Errors
    ///
    /// [`ServiceError::NoRetryBudget`] — without touching the feed —
    /// when `policy.max_attempts` is zero;
    /// [`ServiceError::NodeUnavailable`] when the feed stays down
    /// through every retry (or has no block); any [`Self::sync_block`]
    /// error for forged responses.
    pub fn sync_from_feed_with(
        &mut self,
        feed: &mut BlockFeed,
        policy: &RetryPolicy,
    ) -> Result<(), ServiceError> {
        if policy.max_attempts == 0 {
            // Fail fast: a zero budget means "never fetch", and silently
            // reporting an outage (or looping) would mask the
            // misconfiguration.
            return Err(ServiceError::NoRetryBudget);
        }
        for attempt in 0..policy.max_attempts {
            match feed.fetch_head() {
                Ok((header, delta)) => return self.sync_block(&header, &delta),
                Err(FeedError::NoBlock | FeedError::NoRetryBudget) => {
                    return Err(ServiceError::NodeUnavailable)
                }
                Err(FeedError::Unavailable) if attempt + 1 < policy.max_attempts => {
                    let backoff = policy.backoff_ns(attempt);
                    self.telemetry.count(CounterId::NodeRetries, 1);
                    self.telemetry.record(TelemetryEvent::NodeRetry {
                        at: self.clock.now(),
                        attempt: attempt + 1,
                        backoff_ns: backoff,
                    });
                    self.clock.advance(backoff);
                }
                Err(FeedError::Unavailable) => return Err(ServiceError::NodeUnavailable),
            }
        }
        Err(ServiceError::NodeUnavailable)
    }

    /// The most recently synchronized block hash.
    pub fn head(&self) -> Option<B256> {
        self.expected_head
    }

    /// The most recently synchronized block height.
    pub fn head_height(&self) -> Option<u64> {
        self.head_height
    }

    /// Fresh randomness from the device RNG (used by examples).
    pub fn nonce(&mut self) -> B256 {
        self.rng.next_b256()
    }
}
